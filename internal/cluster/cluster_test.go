package cluster

import "testing"

func TestPaperTestbed(t *testing.T) {
	c := PaperTestbed()
	if c.Size() != 40 {
		t.Fatalf("size %d, want 40", c.Size())
	}
	counts := c.CountByType()
	if counts[CPU] != 20 || counts[GTX1080Ti] != 10 || counts[V100] != 10 {
		t.Fatalf("counts %v", counts)
	}
}

func TestDeviceIDsAreDense(t *testing.T) {
	c := PaperTestbed()
	for i, d := range c.Devices() {
		if d.ID != i {
			t.Fatalf("device %d has ID %d", i, d.ID)
		}
	}
}

func TestDeviceAccessor(t *testing.T) {
	c := New([]TypeCount{{Type: V100, Count: 2}})
	d := c.Device(1)
	if d.Spec.Type != V100 || d.Name != "v100-1" {
		t.Fatalf("unexpected device %+v", d)
	}
}

func TestDevicePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New([]TypeCount{{Type: CPU, Count: 1}}).Device(5)
}

func TestSpecPanicsOnUnknownType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Spec(DeviceType("tpu"))
}

func TestScaledTestbedRatio(t *testing.T) {
	c := ScaledTestbed(16)
	counts := c.CountByType()
	if counts[CPU] != 8 || counts[GTX1080Ti] != 4 || counts[V100] != 4 {
		t.Fatalf("counts %v", counts)
	}
	if ScaledTestbed(1).Size() != 4 {
		t.Fatal("minimum cluster must have 4 devices")
	}
}

func TestGroupByType(t *testing.T) {
	c := PaperTestbed()
	groups := c.GroupByType()
	if len(groups) != 3 {
		t.Fatalf("groups %d, want 3", len(groups))
	}
	total := 0
	seen := map[int]bool{}
	for _, g := range groups {
		total += len(g.Devices)
		for _, id := range g.Devices {
			if seen[id] {
				t.Fatalf("device %d appears in two groups", id)
			}
			seen[id] = true
			if c.Device(id).Spec != g.Spec {
				t.Fatalf("device %d spec mismatch", id)
			}
		}
	}
	if total != 40 {
		t.Fatalf("grouped %d devices, want 40", total)
	}
}

func TestGroupByTypeDeterministic(t *testing.T) {
	a := PaperTestbed().GroupByType()
	b := PaperTestbed().GroupByType()
	for i := range a {
		if a[i].Spec.Type != b[i].Spec.Type {
			t.Fatal("group order not deterministic")
		}
	}
}

func TestCustomSpecOverride(t *testing.T) {
	custom := TypeSpec{Type: "fpga", MemoryMB: 1024, FixedOverheadMS: 1, EffGFLOPsPerMS: 0.5}
	c := New([]TypeCount{{Type: "fpga", Count: 2, Spec: custom}})
	if c.Device(0).Spec != custom {
		t.Fatalf("custom spec not applied: %+v", c.Device(0).Spec)
	}
	groups := c.GroupByType()
	if len(groups) != 1 || len(groups[0].Devices) != 2 {
		t.Fatalf("grouping of custom spec wrong: %+v", groups)
	}
}

func TestDeviceTypeOrderingOfSpeed(t *testing.T) {
	// Sanity of built-in specs: V100 > 1080Ti > CPU in effective compute.
	if !(Spec(V100).EffGFLOPsPerMS > Spec(GTX1080Ti).EffGFLOPsPerMS &&
		Spec(GTX1080Ti).EffGFLOPsPerMS > Spec(CPU).EffGFLOPsPerMS) {
		t.Fatal("device speed ordering broken")
	}
	if Spec(CPU).MemoryMB <= Spec(V100).MemoryMB {
		t.Fatal("CPU workers must have the largest memory (they host the giant NLP models)")
	}
}
