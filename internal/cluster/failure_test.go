package cluster

import (
	"testing"
	"time"
)

func TestSpecForUnknownType(t *testing.T) {
	if _, err := SpecFor(DeviceType("tpu")); err == nil {
		t.Fatal("expected error for unknown type")
	}
	spec, err := SpecFor(V100)
	if err != nil || spec.Type != V100 {
		t.Fatalf("SpecFor(V100) = %+v, %v", spec, err)
	}
}

func TestNewFromSpec(t *testing.T) {
	c, err := NewFromSpec([]TypeCount{{Type: CPU, Count: 2}, {Type: V100, Count: 1}})
	if err != nil || c.Size() != 3 {
		t.Fatalf("NewFromSpec: %v (size %d)", err, c.Size())
	}
	for _, bad := range [][]TypeCount{
		nil,
		{{Type: DeviceType("tpu"), Count: 2}},
		{{Type: CPU, Count: -1}},
		{{Type: CPU, Count: 0}},
	} {
		if _, err := NewFromSpec(bad); err == nil {
			t.Fatalf("NewFromSpec(%v) should error", bad)
		}
	}
}

func TestWithHealth(t *testing.T) {
	c := ScaledTestbed(8)
	if c.HealthyCount() != c.Size() {
		t.Fatal("fresh cluster must be fully healthy")
	}
	down := make([]bool, c.Size())
	down[0], down[3] = true, true
	h := c.WithHealth(down)
	if c.HealthyCount() != c.Size() {
		t.Fatal("WithHealth must not mutate the original")
	}
	if h.Healthy(0) || h.Healthy(3) || !h.Healthy(1) {
		t.Fatal("health mask not applied")
	}
	if h.HealthyCount() != c.Size()-2 {
		t.Fatalf("healthy count %d, want %d", h.HealthyCount(), c.Size()-2)
	}
	if got := len(h.HealthyDevices()); got != c.Size()-2 {
		t.Fatalf("HealthyDevices returned %d", got)
	}
	// IDs stay dense and stable: device 1 is still device 1.
	if h.Device(1).ID != 1 || h.Size() != c.Size() {
		t.Fatal("health must not renumber devices")
	}
	// Short mask: unspecified devices are healthy; nil clears.
	if h2 := c.WithHealth([]bool{true}); h2.Healthy(0) || !h2.Healthy(c.Size()-1) {
		t.Fatal("short mask semantics")
	}
	if h3 := h.WithHealth(nil); h3.HealthyCount() != c.Size() {
		t.Fatal("nil mask must clear failures")
	}
	// Out-of-range IDs are never healthy.
	if h.Healthy(-1) || h.Healthy(c.Size()) {
		t.Fatal("out-of-range IDs must be unhealthy")
	}
}

func TestGroupByTypeExcludesDown(t *testing.T) {
	c := ScaledTestbed(8) // 4 CPU, 2 GTX, 2 V100
	total := 0
	for _, g := range c.GroupByType() {
		total += len(g.Devices)
	}
	if total != c.Size() {
		t.Fatalf("healthy groups cover %d devices, want %d", total, c.Size())
	}
	down := make([]bool, c.Size())
	down[0] = true
	h := c.WithHealth(down)
	total = 0
	for _, g := range h.GroupByType() {
		for _, d := range g.Devices {
			if d == 0 {
				t.Fatal("down device still grouped")
			}
			total++
		}
	}
	if total != c.Size()-1 {
		t.Fatalf("groups cover %d devices, want %d", total, c.Size()-1)
	}
}

func TestWithExtraPreservesHealth(t *testing.T) {
	c := ScaledTestbed(8)
	down := make([]bool, c.Size())
	down[2] = true
	h := c.WithHealth(down).WithExtra(V100)
	if h.Healthy(2) {
		t.Fatal("WithExtra dropped the health mask")
	}
	if !h.Healthy(h.Size() - 1) {
		t.Fatal("new device must start healthy")
	}
}

func TestFailureScheduleValidate(t *testing.T) {
	var nilSched *FailureSchedule
	if err := nilSched.Validate(4); err != nil {
		t.Fatalf("nil schedule must validate: %v", err)
	}
	if !nilSched.Empty() {
		t.Fatal("nil schedule must be empty")
	}
	good := &FailureSchedule{Events: []FailureEvent{
		{Device: 0, FailAt: time.Second, RecoverAt: 3 * time.Second},
		{Device: 1, FailAt: time.Second}, // never recovers
	}}
	if err := good.Validate(2); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	for _, bad := range []*FailureSchedule{
		{Events: []FailureEvent{{Device: 5, FailAt: time.Second}}},
		{Events: []FailureEvent{{Device: 0, FailAt: -time.Second}}},
		{Events: []FailureEvent{{Device: 0, FailAt: 2 * time.Second, RecoverAt: time.Second}}},
	} {
		if err := bad.Validate(2); err == nil {
			t.Fatalf("schedule %+v should be invalid", bad.Events)
		}
	}
}

func TestKillFraction(t *testing.T) {
	c := ScaledTestbed(8)
	s := KillFraction(c, 0.25, 10*time.Second, 20*time.Second)
	if len(s.Events) != 2 {
		t.Fatalf("25%% of 8 devices = 2 victims, got %d", len(s.Events))
	}
	if err := s.Validate(c.Size()); err != nil {
		t.Fatal(err)
	}
	for _, ev := range s.Events {
		if ev.FailAt != 10*time.Second || ev.RecoverAt != 20*time.Second {
			t.Fatalf("event times wrong: %+v", ev)
		}
	}
	// Deterministic: same inputs, same victims.
	s2 := KillFraction(c, 0.25, 10*time.Second, 20*time.Second)
	for i := range s.Events {
		if s.Events[i] != s2.Events[i] {
			t.Fatal("KillFraction is not deterministic")
		}
	}
	// Victims spread across type groups, not one pool.
	types := map[DeviceType]bool{}
	for _, ev := range s.Events {
		types[c.Device(ev.Device).Spec.Type] = true
	}
	if len(types) < 2 {
		t.Fatalf("victims all in one type group: %v", types)
	}
	if got := KillFraction(c, 0, 0, 0); !got.Empty() {
		t.Fatal("zero fraction must kill nothing")
	}
	if got := KillFraction(c, 0.01, 0, 0); len(got.Events) != 1 {
		t.Fatal("tiny positive fraction still kills one device")
	}
	if got := KillFraction(c, 2.0, 0, 0); len(got.Events) != c.Size() {
		t.Fatal("fraction above 1 kills everything")
	}
}

func TestRandomScheduleDeterministic(t *testing.T) {
	c := ScaledTestbed(8)
	cfg := RandomScheduleConfig{
		MTBF:    5 * time.Minute,
		MTTR:    time.Minute,
		Horizon: time.Hour,
		Seed:    7,
	}
	s1, err := RandomSchedule(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Validate(c.Size()); err != nil {
		t.Fatal(err)
	}
	if len(s1.Events) == 0 {
		t.Fatal("an hour at 5min MTBF over 8 devices must fail something")
	}
	s2, _ := RandomSchedule(c, cfg)
	if len(s1.Events) != len(s2.Events) {
		t.Fatal("same seed must reproduce the schedule")
	}
	for i := range s1.Events {
		if s1.Events[i] != s2.Events[i] {
			t.Fatal("same seed must reproduce the schedule")
		}
	}
	cfg.Seed = 8
	s3, _ := RandomSchedule(c, cfg)
	same := len(s3.Events) == len(s1.Events)
	if same {
		for i := range s1.Events {
			if s1.Events[i] != s3.Events[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
	if _, err := RandomSchedule(c, RandomScheduleConfig{MTTR: time.Second, Horizon: time.Hour}); err == nil {
		t.Fatal("missing MTBF must error")
	}
	if _, err := RandomSchedule(c, RandomScheduleConfig{MTBF: time.Second, MTTR: time.Second}); err == nil {
		t.Fatal("missing horizon must error")
	}
}
