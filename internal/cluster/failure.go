package cluster

import (
	"fmt"
	"sort"
	"time"

	"proteus/internal/numeric"
)

// FailureEvent takes one device down at FailAt and, when RecoverAt is
// positive, brings it back at RecoverAt. RecoverAt == 0 means the device
// never recovers within the run.
type FailureEvent struct {
	Device    int
	FailAt    time.Duration
	RecoverAt time.Duration
}

// FailureSchedule is a deterministic fault-injection plan: the same schedule
// drives simulation events in the discrete-event engine and real timers in
// the live cluster, so failure experiments replay identically in both modes.
type FailureSchedule struct {
	Events []FailureEvent
}

// Validate checks the schedule against a fleet of the given size.
func (s *FailureSchedule) Validate(size int) error {
	if s == nil {
		return nil
	}
	for i, ev := range s.Events {
		if ev.Device < 0 || ev.Device >= size {
			return fmt.Errorf("cluster: failure event %d targets device %d outside fleet [0,%d)", i, ev.Device, size)
		}
		if ev.FailAt < 0 {
			return fmt.Errorf("cluster: failure event %d has negative fail time %v", i, ev.FailAt)
		}
		if ev.RecoverAt != 0 && ev.RecoverAt <= ev.FailAt {
			return fmt.Errorf("cluster: failure event %d recovers at %v, not after its failure at %v", i, ev.RecoverAt, ev.FailAt)
		}
	}
	return nil
}

// Empty reports whether the schedule injects nothing.
func (s *FailureSchedule) Empty() bool { return s == nil || len(s.Events) == 0 }

// KillFraction builds a schedule that fails the given fraction of the
// cluster at `at`, spread proportionally across the device-type groups (so a
// 25% kill takes out a quarter of the CPUs and a quarter of each GPU tier,
// mirroring a rack or zone loss rather than one homogeneous pool). When
// recoverAt is positive all victims come back at that time.
func KillFraction(c *Cluster, frac float64, at, recoverAt time.Duration) *FailureSchedule {
	if frac <= 0 || c.Size() == 0 {
		return &FailureSchedule{}
	}
	if frac > 1 {
		frac = 1
	}
	victims := int(frac*float64(c.Size()) + 0.5)
	if victims < 1 {
		victims = 1
	}
	groups := c.GroupByType()
	s := &FailureSchedule{}
	// Round-robin over the groups, taking each group's highest-ID devices
	// first (deterministic, and leaves device 0 of every type alive for as
	// long as possible).
	taken := make([]int, len(groups))
	for len(s.Events) < victims {
		progressed := false
		for gi, g := range groups {
			if len(s.Events) >= victims {
				break
			}
			if taken[gi] >= len(g.Devices) {
				continue
			}
			d := g.Devices[len(g.Devices)-1-taken[gi]]
			taken[gi]++
			progressed = true
			s.Events = append(s.Events, FailureEvent{Device: d, FailAt: at, RecoverAt: recoverAt})
		}
		if !progressed {
			break
		}
	}
	sort.Slice(s.Events, func(i, j int) bool { return s.Events[i].Device < s.Events[j].Device })
	return s
}

// RandomScheduleConfig parameterizes seeded random fault injection.
type RandomScheduleConfig struct {
	// MTBF is the mean time between failures per device (exponential).
	MTBF time.Duration
	// MTTR is the mean time to repair per failure (exponential).
	MTTR time.Duration
	// Horizon bounds the schedule: no event fires at or after it.
	Horizon time.Duration
	// Seed drives the generator; the same seed reproduces the schedule.
	Seed uint64
}

// RandomSchedule draws a seeded fail/recover timeline per device with
// exponential MTBF/MTTR, the classic availability model. The result is a
// fixed, reproducible schedule: randomness lives in the generation, not in
// the replay.
func RandomSchedule(c *Cluster, cfg RandomScheduleConfig) (*FailureSchedule, error) {
	if cfg.MTBF <= 0 || cfg.MTTR <= 0 {
		return nil, fmt.Errorf("cluster: random schedule needs positive MTBF and MTTR (got %v, %v)", cfg.MTBF, cfg.MTTR)
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("cluster: random schedule needs a positive horizon")
	}
	rng := numeric.NewRNG(cfg.Seed)
	s := &FailureSchedule{}
	for _, dev := range c.Devices() {
		t := time.Duration(0)
		for {
			up := time.Duration(rng.Exp(1.0/cfg.MTBF.Seconds()) * float64(time.Second))
			failAt := t + up
			if failAt >= cfg.Horizon {
				break
			}
			down := time.Duration(rng.Exp(1.0/cfg.MTTR.Seconds()) * float64(time.Second))
			recoverAt := failAt + down
			if recoverAt >= cfg.Horizon {
				recoverAt = 0 // never recovers within the run
			}
			s.Events = append(s.Events, FailureEvent{Device: dev.ID, FailAt: failAt, RecoverAt: recoverAt})
			if recoverAt == 0 {
				break
			}
			t = recoverAt
		}
	}
	sort.Slice(s.Events, func(i, j int) bool {
		if s.Events[i].FailAt != s.Events[j].FailAt {
			return s.Events[i].FailAt < s.Events[j].FailAt
		}
		return s.Events[i].Device < s.Events[j].Device
	})
	return s, nil
}
