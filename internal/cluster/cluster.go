// Package cluster models the heterogeneous fixed-size device fleet that
// Proteus serves on: device types with distinct compute efficiency and
// memory, and clusters composed of counts of each type. The paper's testbed
// is 20 Intel Xeon Gold 6126 CPU workers, 10 NVIDIA GTX 1080 Ti workers and
// 10 NVIDIA V100 workers (§6.1.5).
package cluster

import (
	"fmt"
	"sort"
)

// DeviceType identifies a hardware class. All devices of a type are
// interchangeable: same memory, same performance profile.
type DeviceType string

// The paper's three device types.
const (
	CPU       DeviceType = "cpu"
	GTX1080Ti DeviceType = "gtx1080ti"
	V100      DeviceType = "v100"
)

// TypeSpec is the performance/capacity profile of a device type. The
// efficiency numbers are calibrated so that the synthetic model zoo in
// internal/models reproduces the accuracy-throughput curves of the paper's
// Figure 1a (see internal/profiles).
type TypeSpec struct {
	Type DeviceType
	// MemoryMB is the memory available for model weights and activations.
	MemoryMB float64
	// FixedOverheadMS is the per-batch fixed latency (framework dispatch,
	// kernel launch, transfer setup).
	FixedOverheadMS float64
	// EffGFLOPsPerMS is the effective compute rate applied to a variant's
	// scaled compute cost; see profiles.Latency.
	EffGFLOPsPerMS float64
}

// builtinSpecs holds the three standard device types.
var builtinSpecs = map[DeviceType]TypeSpec{
	CPU:       {Type: CPU, MemoryMB: 65536, FixedOverheadMS: 10, EffGFLOPsPerMS: 0.0067},
	GTX1080Ti: {Type: GTX1080Ti, MemoryMB: 11264, FixedOverheadMS: 22, EffGFLOPsPerMS: 0.173},
	V100:      {Type: V100, MemoryMB: 16384, FixedOverheadMS: 16, EffGFLOPsPerMS: 0.26},
}

// SpecFor returns the built-in spec for a device type, or an error on
// unknown types. Config-driven entry points (proteusd, proteus-sim) use it
// to surface typos as validation errors instead of panicking the daemon.
func SpecFor(t DeviceType) (TypeSpec, error) {
	s, ok := builtinSpecs[t]
	if !ok {
		return TypeSpec{}, fmt.Errorf("cluster: unknown device type %q (known: %v)", t, KnownTypes())
	}
	return s, nil
}

// Spec returns the built-in spec for a device type. It panics on unknown
// types, which indicate a programming error; validate config-driven types
// with SpecFor first.
func Spec(t DeviceType) TypeSpec {
	s, err := SpecFor(t)
	if err != nil {
		panic(err.Error())
	}
	return s
}

// KnownTypes returns the built-in device types in deterministic order.
func KnownTypes() []DeviceType {
	return []DeviceType{CPU, GTX1080Ti, V100}
}

// Device is one worker machine in the cluster.
type Device struct {
	ID   int
	Name string
	Spec TypeSpec
}

// Cluster is an ordered, fixed set of devices, with an optional
// health/availability dimension: devices can be marked down (failed) and the
// allocator then plans only over the healthy subset, while device IDs stay
// stable so worker arrays and allocation shapes never shift. A Cluster value
// is immutable — health changes produce a new view via WithHealth.
type Cluster struct {
	devices []Device
	// down[id] marks device id unavailable; nil means all healthy.
	down []bool
}

// New builds a cluster from per-type counts, ordering devices by the order
// of the counts slice and numbering them densely from zero.
func New(counts []TypeCount) *Cluster {
	c := &Cluster{}
	id := 0
	for _, tc := range counts {
		spec := tc.Spec
		if spec == (TypeSpec{}) {
			spec = Spec(tc.Type)
		}
		for i := 0; i < tc.Count; i++ {
			c.devices = append(c.devices, Device{
				ID:   id,
				Name: fmt.Sprintf("%s-%d", tc.Type, i),
				Spec: spec,
			})
			id++
		}
	}
	return c
}

// TypeCount is a homogeneous slice of a cluster: Count devices of Type.
// Spec optionally overrides the built-in TypeSpec (used by scalability
// benches to synthesize artificial heterogeneity).
type TypeCount struct {
	Type  DeviceType
	Count int
	Spec  TypeSpec
}

// PaperTestbed returns the paper's 40-device cluster:
// 20 CPUs, 10 GTX 1080 Tis, 10 V100s.
func PaperTestbed() *Cluster {
	return New([]TypeCount{{Type: CPU, Count: 20}, {Type: GTX1080Ti, Count: 10}, {Type: V100, Count: 10}})
}

// ScaledTestbed returns a cluster with the paper's 2:1:1 type ratio scaled
// to the given total size (rounded to multiples of four). Used as the
// default end-to-end experiment cluster so that exact MILP solves fit the
// control period with the pure-Go solver (see DESIGN.md).
func ScaledTestbed(total int) *Cluster {
	if total < 4 {
		total = 4
	}
	quarter := total / 4
	return New([]TypeCount{
		{Type: CPU, Count: 2 * quarter},
		{Type: GTX1080Ti, Count: quarter},
		{Type: V100, Count: quarter},
	})
}

// NewFromSpec builds a cluster from per-type counts like New, but validates
// device types and counts instead of panicking. Config-driven entry points
// use it so an unknown type in a config file surfaces as an error.
func NewFromSpec(counts []TypeCount) (*Cluster, error) {
	if len(counts) == 0 {
		return nil, fmt.Errorf("cluster: no device counts given")
	}
	for _, tc := range counts {
		if tc.Count < 0 {
			return nil, fmt.Errorf("cluster: negative count %d for device type %q", tc.Count, tc.Type)
		}
		if tc.Spec == (TypeSpec{}) {
			if _, err := SpecFor(tc.Type); err != nil {
				return nil, err
			}
		}
	}
	c := New(counts)
	if c.Size() == 0 {
		return nil, fmt.Errorf("cluster: all device counts are zero")
	}
	return c, nil
}

// Devices returns the devices in ID order, healthy or not. The returned
// slice must not be modified.
func (c *Cluster) Devices() []Device { return c.devices }

// WithHealth returns a view of the cluster with the given down-mask (true =
// failed). The device set and IDs are unchanged — only GroupByType,
// HealthyDevices and Healthy reflect the mask, so allocation shapes stay
// aligned with the full fleet. The mask is copied; a short mask leaves the
// remaining devices healthy, and nil clears all failures.
func (c *Cluster) WithHealth(down []bool) *Cluster {
	out := &Cluster{devices: c.devices}
	for id := range down {
		if id >= len(c.devices) {
			break
		}
		if down[id] {
			if out.down == nil {
				out.down = make([]bool, len(c.devices))
			}
			out.down[id] = true
		}
	}
	return out
}

// Healthy reports whether the device with the given ID is available.
// Out-of-range IDs are reported unhealthy.
func (c *Cluster) Healthy(id int) bool {
	if id < 0 || id >= len(c.devices) {
		return false
	}
	return c.down == nil || !c.down[id]
}

// HealthyCount returns the number of available devices.
func (c *Cluster) HealthyCount() int {
	if c.down == nil {
		return len(c.devices)
	}
	n := 0
	for id := range c.devices {
		if !c.down[id] {
			n++
		}
	}
	return n
}

// HealthyDevices returns the available devices in ID order.
func (c *Cluster) HealthyDevices() []Device {
	if c.down == nil {
		return c.devices
	}
	out := make([]Device, 0, len(c.devices))
	for _, d := range c.devices {
		if !c.down[d.ID] {
			out = append(out, d)
		}
	}
	return out
}

// WithExtra returns a new cluster with one additional device of the given
// type appended (IDs of existing devices are unchanged). Used by the §7
// hardware-scaling-in-tandem extension, where provisioned servers join the
// fleet after their start-up delay.
func (c *Cluster) WithExtra(t DeviceType) *Cluster {
	out := &Cluster{devices: make([]Device, len(c.devices), len(c.devices)+1)}
	copy(out.devices, c.devices)
	if c.down != nil {
		out.down = make([]bool, len(c.devices)+1)
		copy(out.down, c.down)
	}
	id := len(out.devices)
	out.devices = append(out.devices, Device{
		ID:   id,
		Name: fmt.Sprintf("%s-extra-%d", t, id),
		Spec: Spec(t),
	})
	return out
}

// Size returns the number of devices.
func (c *Cluster) Size() int { return len(c.devices) }

// Device returns the device with the given ID. It panics on out-of-range
// IDs.
func (c *Cluster) Device(id int) Device {
	if id < 0 || id >= len(c.devices) {
		panic(fmt.Sprintf("cluster: device id %d out of range [0,%d)", id, len(c.devices)))
	}
	return c.devices[id]
}

// TypeGroup is the set of device IDs sharing one TypeSpec.
type TypeGroup struct {
	Spec    TypeSpec
	Devices []int
}

// GroupByType partitions the *healthy* devices into groups with identical
// specs, in deterministic order. The resource allocator aggregates identical
// devices into one integer variable per group, which shrinks the MILP
// exactly (see DESIGN.md); excluding failed devices here means every
// group-based allocator automatically plans only over the available fleet.
func (c *Cluster) GroupByType() []TypeGroup {
	byKey := map[TypeSpec][]int{}
	var keys []TypeSpec
	for _, d := range c.devices {
		if !c.Healthy(d.ID) {
			continue
		}
		if _, ok := byKey[d.Spec]; !ok {
			keys = append(keys, d.Spec)
		}
		byKey[d.Spec] = append(byKey[d.Spec], d.ID)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Type != keys[j].Type {
			return keys[i].Type < keys[j].Type
		}
		return keys[i].EffGFLOPsPerMS < keys[j].EffGFLOPsPerMS
	})
	groups := make([]TypeGroup, 0, len(keys))
	for _, k := range keys {
		groups = append(groups, TypeGroup{Spec: k, Devices: byKey[k]})
	}
	return groups
}

// CountByType returns the number of devices of each built-in type.
func (c *Cluster) CountByType() map[DeviceType]int {
	out := map[DeviceType]int{}
	for _, d := range c.devices {
		out[d.Spec.Type]++
	}
	return out
}
