package controlplane

import (
	"testing"
	"time"

	"proteus/internal/allocator"
	"proteus/internal/cluster"
	"proteus/internal/models"
	"proteus/internal/profiles"
)

func fixture(t *testing.T) (*Controller, []models.Family) {
	t.Helper()
	var fams []models.Family
	for _, f := range models.Zoo() {
		if f.Name == "efficientnet" || f.Name == "mobilenet" {
			fams = append(fams, f)
		}
	}
	slos := make([]time.Duration, len(fams))
	for q, f := range fams {
		slos[q] = profiles.FamilySLO(f, 2)
	}
	a := allocator.NewMILP(&allocator.MILPOptions{TimeLimit: 300 * time.Millisecond, RelGap: 0.01})
	c := NewController(a, cluster.ScaledTestbed(8), fams, slos, 30*time.Second, 10*time.Second)
	return c, fams
}

func TestStats(t *testing.T) {
	s := NewStats(2, 10, 1.5)
	if len(s.Monitors) != 2 {
		t.Fatalf("monitors %d", len(s.Monitors))
	}
	for i := 0; i < 30; i++ {
		s.Observe(time.Duration(i)*100*time.Millisecond, 0) // 10 QPS for 3s
	}
	est := s.Estimates(3 * time.Second)
	if est[0] < 9 || est[0] > 11 {
		t.Fatalf("estimate %v, want ~10", est[0])
	}
	if est[1] != 0 {
		t.Fatalf("idle family estimate %v", est[1])
	}
}

func TestStatsBurstDetection(t *testing.T) {
	s := NewStats(2, 30, 1.5)
	s.SetPlanned([]float64{10, 1000})
	for i := 0; i < 40; i++ {
		s.Observe(time.Duration(i)*25*time.Millisecond, 0) // 40 QPS in second 0
	}
	if !s.AnyBurst(time.Second + time.Millisecond) {
		t.Fatal("40 QPS vs planned 10 must be a burst")
	}
	s2 := NewStats(1, 30, 1.5)
	s2.SetPlanned([]float64{1000})
	s2.Observe(0, 0)
	if s2.AnyBurst(time.Second) {
		t.Fatal("1 QPS vs planned 1000 must not be a burst")
	}
}

func TestControllerReallocateRecordsHistory(t *testing.T) {
	c, fams := fixture(t)
	if !c.Dynamic() {
		t.Fatal("MILP controller must be dynamic")
	}
	plan, err := c.Reallocate(0, []float64{20, 10}, "initial")
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil || len(plan.Hosted) == 0 {
		t.Fatal("no plan")
	}
	h := c.History()
	if len(h) != 1 || h[0].Trigger != "initial" || h[0].At != 0 {
		t.Fatalf("history %+v", h)
	}
	if len(h[0].HostedVariants) == 0 {
		t.Fatal("hosted variants not recorded")
	}
	if h[0].Demand[0] != 20 {
		t.Fatalf("demand not recorded: %v", h[0].Demand)
	}
	_ = fams
}

func TestControllerRejectsWrongDemandShape(t *testing.T) {
	c, _ := fixture(t)
	if _, err := c.Reallocate(0, []float64{1}, "periodic"); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestAllowBurstCooldown(t *testing.T) {
	c, _ := fixture(t)
	if !c.AllowBurst(0) {
		t.Fatal("first burst must be allowed")
	}
	if _, err := c.Reallocate(100*time.Second, []float64{20, 10}, "periodic"); err != nil {
		t.Fatal(err)
	}
	if c.AllowBurst(105 * time.Second) {
		t.Fatal("burst inside cooldown allowed")
	}
	if !c.AllowBurst(111 * time.Second) {
		t.Fatal("burst after cooldown denied")
	}
}

func TestDemandChanged(t *testing.T) {
	c, _ := fixture(t)
	if !c.DemandChanged([]float64{10, 10}, 0.1) {
		t.Fatal("no history must count as changed")
	}
	if _, err := c.Reallocate(0, []float64{100, 50}, "initial"); err != nil {
		t.Fatal(err)
	}
	if c.DemandChanged([]float64{105, 52}, 0.1) {
		t.Fatal("5% wiggle flagged as change")
	}
	if !c.DemandChanged([]float64{150, 50}, 0.1) {
		t.Fatal("50% jump not flagged")
	}
	// Absolute floor: tiny demands must not flag on tiny absolute moves.
	if _, err := c.Reallocate(0, []float64{0.5, 0.5}, "periodic"); err != nil {
		t.Fatal(err)
	}
	if c.DemandChanged([]float64{1.2, 0.5}, 0.1) {
		t.Fatal("sub-1-QPS move flagged as change")
	}
}

func TestControllerDefaults(t *testing.T) {
	a := allocator.NewInfaasAccuracy()
	c := NewController(a, cluster.ScaledTestbed(4), nil, nil, 0, 0)
	if c.Period != 30*time.Second || c.BurstCooldown != 10*time.Second {
		t.Fatalf("defaults %v %v", c.Period, c.BurstCooldown)
	}
	if c.Allocator() != a {
		t.Fatal("allocator accessor broken")
	}
}

func TestHistoryRingBounded(t *testing.T) {
	c, _ := fixture(t)
	c.SetHistoryLimit(2)
	for i := 0; i < 4; i++ {
		if _, err := c.Reallocate(time.Duration(i)*time.Second, []float64{20 + float64(i), 10}, "periodic"); err != nil {
			t.Fatal(err)
		}
	}
	h := c.History()
	if len(h) != 2 {
		t.Fatalf("history length %d, want 2", len(h))
	}
	// The newest records survive, oldest first.
	if h[0].At != 2*time.Second || h[1].At != 3*time.Second {
		t.Fatalf("wrong records retained: at=%v,%v", h[0].At, h[1].At)
	}
}

func TestSetHistoryLimitTrimsExisting(t *testing.T) {
	c, _ := fixture(t)
	for i := 0; i < 3; i++ {
		if _, err := c.Reallocate(time.Duration(i)*time.Second, []float64{20, 10}, "periodic"); err != nil {
			t.Fatal(err)
		}
	}
	c.SetHistoryLimit(1)
	h := c.History()
	if len(h) != 1 || h[0].At != 2*time.Second {
		t.Fatalf("trim kept %d records (at=%v), want newest only", len(h), h[0].At)
	}
	// Zero or negative restores the default.
	c.SetHistoryLimit(0)
	if got := c.HistoryLimit(); got != DefaultHistoryLimit {
		t.Fatalf("limit after reset = %d, want %d", got, DefaultHistoryLimit)
	}
}

// TestRecordHook asserts the hook fires once per plan record, after the
// controller's lock is released — a hook that calls back into History must
// not deadlock.
func TestRecordHook(t *testing.T) {
	c, _ := fixture(t)
	var got []PlanRecord
	c.SetRecordHook(func(rec PlanRecord) {
		_ = c.History() // re-entrant read: must not deadlock
		got = append(got, rec)
	})
	if _, err := c.Reallocate(0, []float64{20, 10}, "initial"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reallocate(10*time.Second, []float64{25, 10}, "periodic"); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("hook fired %d times, want 2", len(got))
	}
	if got[0].Trigger != "initial" || got[1].Trigger != "periodic" {
		t.Fatalf("hook records %q/%q", got[0].Trigger, got[1].Trigger)
	}
	if got[1].Stage != "primary" || len(got[1].HostedVariants) == 0 {
		t.Fatalf("hook record incomplete: %+v", got[1])
	}
}
