package controlplane

import (
	"errors"
	"strings"
	"testing"
	"time"

	"proteus/internal/allocator"
	"proteus/internal/cluster"
)

// failingAlloc always errors — the "MILP forced to error" stand-in.
type failingAlloc struct{}

func (failingAlloc) Name() string { return "ilp" }
func (failingAlloc) Allocate(*allocator.Input) (*allocator.Allocation, error) {
	return nil, errors.New("solver timeout")
}
func (failingAlloc) Dynamic() bool                { return true }
func (failingAlloc) Features() allocator.Features { return allocator.Features{} }

// flakyAlloc delegates for the first okCalls invocations, then errors.
type flakyAlloc struct {
	inner   allocator.Allocator
	okCalls int
	calls   int
}

func (f *flakyAlloc) Name() string { return f.inner.Name() }
func (f *flakyAlloc) Allocate(in *allocator.Input) (*allocator.Allocation, error) {
	f.calls++
	if f.calls > f.okCalls {
		return nil, errors.New("solver timeout")
	}
	return f.inner.Allocate(in)
}
func (f *flakyAlloc) Dynamic() bool                { return true }
func (f *flakyAlloc) Features() allocator.Features { return f.inner.Features() }

func maskedTestbed(t *testing.T, size int, downIDs ...int) *cluster.Cluster {
	t.Helper()
	c := cluster.ScaledTestbed(size)
	down := make([]bool, c.Size())
	for _, d := range downIDs {
		down[d] = true
	}
	return c.WithHealth(down)
}

func TestFallbackChainGreedyOnHealthySubset(t *testing.T) {
	_, fams := fixture(t)
	slos := make([]time.Duration, len(fams))
	for q := range fams {
		slos[q] = time.Second
	}
	cl := maskedTestbed(t, 8, 0, 4)
	c := NewController(failingAlloc{}, cl, fams, slos, 30*time.Second, 10*time.Second)

	plan, err := c.Reallocate(0, []float64{20, 10}, "failure")
	if err != nil {
		t.Fatalf("fallback should have rescued the failed solve: %v", err)
	}
	for d := range plan.Hosted {
		if !cl.Healthy(d) && plan.Hosted[d] != nil {
			t.Fatalf("fallback plan hosts %s on down device %d", plan.HostedID(d), d)
		}
	}
	in := &allocator.Input{Cluster: cl, Families: fams, SLOs: slos, Demand: []float64{20, 10}}
	if err := plan.Check(in); err != nil {
		t.Fatalf("fallback plan infeasible: %v", err)
	}
	h := c.History()
	if len(h) != 1 || h[0].Solver != "infaas_v2 (fallback)" {
		t.Fatalf("history should record the fallback solver: %+v", h)
	}
}

func TestFallbackChainCarryForward(t *testing.T) {
	c, fams := fixture(t)
	// Replace the primary with one that succeeds once then errors, and
	// disable the fallback so the carry-forward stage is reached.
	c.alloc = &flakyAlloc{inner: c.alloc, okCalls: 1}
	c.SetFallback(nil)

	if _, err := c.Reallocate(0, []float64{20, 10}, "initial"); err != nil {
		t.Fatal(err)
	}
	masked := maskedTestbed(t, 8, 1)
	c.SetCluster(masked)
	plan, err := c.Reallocate(40*time.Second, []float64{20, 10}, "failure")
	if err != nil {
		t.Fatalf("carry-forward should have rescued the failed solve: %v", err)
	}
	if plan.Hosted[1] != nil {
		t.Fatal("carry-forward plan still hosts on the down device")
	}
	for q := range fams {
		for d, y := range plan.Routing[q] {
			if y > 0 && !masked.Healthy(d) {
				t.Fatalf("carry-forward routes family %d to down device %d", q, d)
			}
		}
	}
	h := c.History()
	if len(h) != 2 || h[1].Solver != "carry-forward" {
		t.Fatalf("history should record carry-forward: %+v", h)
	}
}

func TestReallocateErrorRecordsAttemptTime(t *testing.T) {
	_, fams := fixture(t)
	slos := []time.Duration{time.Second, time.Second}
	c := NewController(failingAlloc{}, cluster.ScaledTestbed(8), fams, slos, 30*time.Second, 10*time.Second)
	c.SetFallback(failingAlloc{}) // both stages error; no lastPlan to carry

	_, err := c.Reallocate(100*time.Second, []float64{20, 10}, "periodic")
	if err == nil {
		t.Fatal("total failure must surface an error")
	}
	if !strings.Contains(err.Error(), "fallback") {
		t.Fatalf("error should name the fallback stage: %v", err)
	}
	// The failed attempt must arm the cooldown so erroring allocators are
	// not re-invoked at every tick.
	if c.AllowBurst(105 * time.Second) {
		t.Fatal("cooldown must apply to failed solves")
	}
	if rem := c.CooldownRemaining(105 * time.Second); rem != 5*time.Second {
		t.Fatalf("CooldownRemaining = %v, want 5s", rem)
	}
	if !c.AllowBurst(110 * time.Second) {
		t.Fatal("cooldown over, burst must be allowed")
	}
	// A demand-shape error is a caller bug, not a solve attempt: it must not
	// touch the cooldown state.
	before := c.CooldownRemaining(105 * time.Second)
	if _, err := c.Reallocate(109*time.Second, []float64{1}, "periodic"); err == nil {
		t.Fatal("expected shape error")
	}
	if got := c.CooldownRemaining(105 * time.Second); got != before {
		t.Fatal("shape error must not record an attempt")
	}
}

func TestAllocatorErrorMidRunFallsBack(t *testing.T) {
	c, _ := fixture(t)
	c.alloc = &flakyAlloc{inner: c.alloc, okCalls: 1}
	if _, err := c.Reallocate(0, []float64{20, 10}, "initial"); err != nil {
		t.Fatal(err)
	}
	plan, err := c.Reallocate(40*time.Second, []float64{25, 12}, "periodic")
	if err != nil || plan == nil {
		t.Fatalf("mid-run solver error must fall back, got %v", err)
	}
	h := c.History()
	if h[len(h)-1].Solver != "infaas_v2 (fallback)" {
		t.Fatalf("expected fallback solver in history, got %q", h[len(h)-1].Solver)
	}
	if h[0].Solver != "ilp" {
		t.Fatalf("first plan should record the primary solver, got %q", h[0].Solver)
	}
}

func TestSetPlannedLengthMismatch(t *testing.T) {
	s := NewStats(2, 10, 1.5)
	if err := s.SetPlanned([]float64{1, 2}); err != nil {
		t.Fatalf("matched length rejected: %v", err)
	}
	if err := s.SetPlanned([]float64{1}); err == nil {
		t.Fatal("short slice must error")
	}
	if err := s.SetPlanned([]float64{1, 2, 3}); err == nil {
		t.Fatal("long slice must error")
	}
}

func TestDemandChangedZeroPrior(t *testing.T) {
	c, _ := fixture(t)
	if _, err := c.Reallocate(0, []float64{0, 0}, "initial"); err != nil {
		t.Fatal(err)
	}
	// Moves under the 1 QPS absolute floor must not flag.
	if c.DemandChanged([]float64{0.9, 0}, 0.1) {
		t.Fatal("sub-floor move on zero prior flagged as change")
	}
	if !c.DemandChanged([]float64{5, 0}, 0.1) {
		t.Fatal("real demand appearing on zero prior not flagged")
	}
	// A changed family count always counts as changed.
	if !c.DemandChanged([]float64{0, 0, 0}, 0.1) {
		t.Fatal("changed family count not flagged")
	}
	if !c.DemandChanged([]float64{0}, 0.1) {
		t.Fatal("shrunk family count not flagged")
	}
}

func TestAllowBurstExactCooldownBoundary(t *testing.T) {
	c, _ := fixture(t)
	if _, err := c.Reallocate(100*time.Second, []float64{20, 10}, "initial"); err != nil {
		t.Fatal(err)
	}
	// now - last == cooldown: exactly at the boundary is allowed.
	if !c.AllowBurst(110 * time.Second) {
		t.Fatal("burst exactly at the cooldown boundary must be allowed")
	}
	if c.AllowBurst(110*time.Second - time.Nanosecond) {
		t.Fatal("burst one tick inside the cooldown must be denied")
	}
	if rem := c.CooldownRemaining(110 * time.Second); rem != 0 {
		t.Fatalf("CooldownRemaining at the boundary = %v, want 0", rem)
	}
}
