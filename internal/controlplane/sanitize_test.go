package controlplane

import (
	"testing"
	"time"

	"proteus/internal/allocator"
)

func TestSanitizePlanRecordUnbudgeted(t *testing.T) {
	r := PlanRecord{
		Seq:       3,
		SolveTime: 42 * time.Millisecond,
		Stats: allocator.SolverStats{
			Objective:   1.5,
			Bound:       1.6,
			RelGap:      0.05,
			Nodes:       17,
			Backoffs:    2,
			SolverTime:  40 * time.Millisecond,
			Parallelism: 4,
		},
	}
	SanitizePlanRecord(&r)
	if r.SolveTime != 0 || r.Stats.SolverTime != 0 {
		t.Fatalf("wall times not zeroed: %v / %v", r.SolveTime, r.Stats.SolverTime)
	}
	// Without a budget the proof-progress fields are deterministic and must
	// survive sanitization untouched.
	if r.Stats.Bound != 1.6 || r.Stats.Nodes != 17 || r.Stats.RelGap != 0.05 {
		t.Fatalf("unbudgeted proof fields changed: %+v", r.Stats)
	}
	if r.Stats.Objective != 1.5 || r.Stats.Backoffs != 2 || r.Stats.Parallelism != 4 || r.Seq != 3 {
		t.Fatalf("deterministic fields changed: %+v", r)
	}
}

func TestSanitizePlanRecordBudgeted(t *testing.T) {
	r := PlanRecord{
		SolveTime: time.Second,
		Stats: allocator.SolverStats{
			Objective:   2.0,
			Bound:       2.2,
			RelGap:      0.1,
			Nodes:       999,
			SolverTime:  time.Second,
			Budgeted:    true,
			TimeLimited: true,
		},
	}
	SanitizePlanRecord(&r)
	if r.SolveTime != 0 || r.Stats.SolverTime != 0 {
		t.Fatalf("wall times not zeroed: %v / %v", r.SolveTime, r.Stats.SolverTime)
	}
	// Under a budget, how far the optimality proof got is a race against
	// the clock; every timing-tainted field must be dropped.
	if r.Stats.Bound != 0 || r.Stats.Nodes != 0 || r.Stats.RelGap != -1 || r.Stats.TimeLimited {
		t.Fatalf("budgeted proof fields not dropped: %+v", r.Stats)
	}
	if r.Stats.Objective != 2.0 || !r.Stats.Budgeted {
		t.Fatalf("deterministic fields changed: %+v", r.Stats)
	}
}

func TestSanitizePlansInPlace(t *testing.T) {
	plans := []PlanRecord{
		{SolveTime: time.Millisecond},
		{SolveTime: time.Second, Stats: allocator.SolverStats{Budgeted: true, Nodes: 5}},
	}
	out := SanitizePlans(plans)
	if &out[0] != &plans[0] {
		t.Fatal("SanitizePlans must sanitize in place and return the same slice")
	}
	for i := range plans {
		if plans[i].SolveTime != 0 {
			t.Fatalf("plan %d: SolveTime not zeroed", i)
		}
	}
	if plans[1].Stats.Nodes != 0 {
		t.Fatal("budgeted plan Nodes not dropped")
	}
}
