// Package controlplane implements the Proteus controller logic (§3): the
// statistics collector that aggregates per-application demand from the load
// balancers' monitoring daemons, and the re-allocation policy — periodic
// MILP invocations (30 s in the paper) plus burst-triggered early
// re-allocations with a cooldown. The control path never blocks the data
// path; the hosting engine (simulator or live cluster) invokes it
// asynchronously.
package controlplane

import (
	"fmt"
	"sync"
	"time"

	"proteus/internal/allocator"
	"proteus/internal/cluster"
	"proteus/internal/models"
	"proteus/internal/router"
	"proteus/internal/telemetry"
)

// Stats is the statistics collector: one monitoring daemon per family.
type Stats struct {
	Monitors []*router.Monitor
}

// NewStats builds a collector with one monitor per family.
func NewStats(families, windowSeconds int, burstFactor float64) *Stats {
	s := &Stats{Monitors: make([]*router.Monitor, families)}
	for q := range s.Monitors {
		s.Monitors[q] = router.NewMonitor(windowSeconds, burstFactor)
	}
	return s
}

// Observe records an arrival of family q at time t.
func (s *Stats) Observe(t time.Duration, q int) { s.Monitors[q].Observe(t) }

// Estimates returns the current per-family demand estimates in QPS.
func (s *Stats) Estimates(t time.Duration) []float64 {
	out := make([]float64, len(s.Monitors))
	for q, m := range s.Monitors {
		out[q] = m.Rate(t)
	}
	return out
}

// AnyBurst reports whether any family's instantaneous demand exceeds its
// planned capacity by the burst factor.
func (s *Stats) AnyBurst(t time.Duration) bool {
	for _, m := range s.Monitors {
		if m.Burst(t) {
			return true
		}
	}
	return false
}

// SetPlanned records each family's planned serving capacity from a new
// allocation. The served slice must cover exactly the monitored families —
// a mismatched length means the plan and the monitor set disagree about the
// family space, which would silently mis-arm burst detection.
func (s *Stats) SetPlanned(served []float64) error {
	if len(served) != len(s.Monitors) {
		return fmt.Errorf("controlplane: planned capacities cover %d families, monitors cover %d",
			len(served), len(s.Monitors))
	}
	for q, m := range s.Monitors {
		m.SetPlanned(served[q])
	}
	return nil
}

// DeviceChange is one device's hosting transition in an allocation diff.
// Empty From/To mean the device was (or became) idle.
type DeviceChange struct {
	Device int    `json:"device"`
	From   string `json:"from"`
	To     string `json:"to"`
}

// SLOBurnRecord is one SLO burn-state transition observed between control
// periods: family's windowed violation ratio crossed (Start) or fell back
// under (end) the burn-rate alerting threshold. ShortBurn/LongBurn are the
// burn rates (window violation ratio over the target budget) at the
// transition.
type SLOBurnRecord struct {
	At        time.Duration `json:"at_ns"`
	Family    int           `json:"family"`
	Start     bool          `json:"start"`
	ShortBurn float64       `json:"short_burn"`
	LongBurn  float64       `json:"long_burn"`
}

// OverloadRecord is one overload-guard transition (emergency accuracy
// degradation opened, escalated, or restored) observed between control
// periods. Kind is "degrade", "escalate" or "restore"; Level is the
// degradation level after the transition (0 = planned routing restored).
type OverloadRecord struct {
	At     time.Duration `json:"at_ns"`
	Family int           `json:"family"`
	Kind   string        `json:"kind"`
	Level  int           `json:"level"`
	// Episode is the guard-global id of the degradation episode the
	// transition belongs to (0 on records from before episode tracking).
	Episode int    `json:"episode,omitempty"`
	Reason  string `json:"reason"`
}

// PlanRecord is one entry of the controller's decision audit log: what was
// decided, why (trigger), by which stage of the solver chain, at what
// solver cost, and how the fleet changed relative to the previous plan.
type PlanRecord struct {
	// Seq numbers audit records monotonically from 1 in append order
	// (error records included). Trace events stamp the sequence number of
	// the plan in force at enqueue, so latency attribution can tell which
	// control decision a query ran under; 0 on a trace event means no plan
	// had been applied yet.
	Seq               int           `json:"seq"`
	At                time.Duration `json:"at_ns"`
	Demand            []float64     `json:"demand"`
	PredictedAccuracy float64       `json:"predicted_accuracy"`
	DemandScale       float64       `json:"demand_scale"`
	SolveTime         time.Duration `json:"solve_time_ns"`
	Trigger           string        `json:"trigger"` // "initial", "periodic", "burst", "failure", "recovery", "slo_burn"
	// Solver names the allocator that produced the plan: the primary's name,
	// "<name> (fallback)" when the fallback stepped in, or "carry-forward"
	// when the last feasible plan was projected onto the surviving devices.
	Solver string `json:"solver"`
	// Stage identifies which link of the MILP → greedy → carry-forward chain
	// produced the plan: "primary", "fallback", "carry-forward", or "error"
	// for an audit record of a fully failed solve (no plan produced).
	Stage string `json:"stage"`
	// Err preserves the solve error for fallback / carry-forward / error
	// records.
	Err string `json:"error,omitempty"`
	// Stats carries branch-and-bound internals (objective, bound, gap,
	// nodes, backoffs) when an optimizing allocator produced the plan.
	Stats          allocator.SolverStats `json:"solver_stats"`
	HostedVariants map[string]int        `json:"hosted_variants"`
	// Changes lists every device whose hosted variant differs from the
	// previous plan (the whole fleet on the first plan). Loads counts
	// transitions onto a variant, Unloads transitions off one.
	Changes []DeviceChange `json:"changes,omitempty"`
	Loads   int            `json:"loads"`
	Unloads int            `json:"unloads"`
	// RoutingDelta is the total L1 distance between this plan's routing
	// matrix and the previous one — 0 for identical query assignment, up to
	// 2·families when every family moved all its traffic.
	RoutingDelta float64 `json:"routing_delta"`
	// SLOBurns lists the burn-state transitions the SLO monitor reported
	// since the previous audit record, so each control decision carries the
	// burn context it was made under.
	SLOBurns []SLOBurnRecord `json:"slo_burns,omitempty"`
	// Overloads lists the overload-guard transitions (emergency accuracy
	// degradations and restores) since the previous audit record.
	Overloads []OverloadRecord `json:"overloads,omitempty"`
}

// SanitizePlanRecord zeroes, in place, every field of a plan record that
// can differ between two same-seed runs, so that serialization surfaces
// (metrics dumps, incident bundles, debug endpoints, reports) stay
// byte-identical. Two classes of fields are affected:
//
//   - Wall-clock measurements (SolveTime, Stats.SolverTime) are always
//     zeroed — elapsed time is never deterministic.
//   - Solver proof-progress fields (Stats.Bound, Nodes, RelGap,
//     TimeLimited) are cleared only when the solve ran under a configured
//     wall-clock budget (Stats.Budgeted): a budget that fires truncates the
//     optimality proof at a timing-dependent point, so how far the proof
//     got is machine- and load-dependent. Budgeted is a property of the
//     configuration, not of whether the budget happened to fire, so the
//     decision to clear is itself deterministic.
//
// Every surface that serializes plan records must route them through this
// helper (or SanitizePlans) instead of zeroing fields ad hoc.
func SanitizePlanRecord(r *PlanRecord) {
	r.SolveTime = 0
	r.Stats.SolverTime = 0
	if r.Stats.Budgeted {
		r.Stats.Bound = 0
		r.Stats.Nodes = 0
		r.Stats.RelGap = -1
		r.Stats.TimeLimited = false
	}
}

// SanitizePlans applies SanitizePlanRecord to every record in place and
// returns the slice for call-site chaining. Callers pass a copy (e.g. the
// result of History()) when the original must stay untouched.
func SanitizePlans(recs []PlanRecord) []PlanRecord {
	for i := range recs {
		SanitizePlanRecord(&recs[i])
	}
	return recs
}

// Controller owns the allocator and the re-allocation schedule.
type Controller struct {
	// Period is the regular re-allocation interval (30 s in the paper).
	Period time.Duration
	// BurstCooldown is the minimum spacing of burst-triggered
	// re-allocations.
	BurstCooldown time.Duration

	alloc allocator.Allocator
	// fallback steps in when the primary allocator errors (MILP infeasible
	// past its back-off budget, solver timeout surfaced as an error): a
	// cheap heuristic restricted — like every allocator — to the cluster's
	// healthy subset. Defaults to the greedy INFaaS-Accuracy heuristic.
	fallback allocator.Allocator
	// lastPlan is the most recent feasible plan; when both allocators fail
	// it is projected onto the surviving devices instead of aborting.
	lastPlan *allocator.Allocation
	cluster  *cluster.Cluster
	families []models.Family
	slos     []time.Duration

	last    time.Duration
	started bool

	// mu guards history and pendingBurns: the control loop appends while
	// introspection endpoints (/debug/allocations) and the SLO monitor's
	// burn callback write concurrently.
	mu      sync.Mutex
	history []PlanRecord
	// seq is the monotone audit-record counter; unlike history it never
	// resets when the ring drops old records.
	seq int
	// historyLimit bounds the audit log: once it holds this many records
	// the oldest are dropped, so long live runs hold steady-state memory.
	historyLimit int
	// recordHook, when set, observes every appended audit record (the
	// flight recorder's allocator-fallback trigger). Called after the
	// history lock is released, so the hook may call History itself.
	recordHook func(PlanRecord)
	// pendingBurns buffers burn transitions until the next audit record
	// drains them into its SLOBurns field; pendingOverloads does the same
	// for overload-guard transitions.
	pendingBurns     []SLOBurnRecord
	pendingOverloads []OverloadRecord

	counters telemetry.ControlCounters
}

// NewController builds a controller. Period defaults to 30 s, cooldown to
// 10 s.
func NewController(a allocator.Allocator, c *cluster.Cluster, families []models.Family, slos []time.Duration, period, cooldown time.Duration) *Controller {
	if period <= 0 {
		period = 30 * time.Second
	}
	if cooldown <= 0 {
		cooldown = 10 * time.Second
	}
	ctl := &Controller{
		Period:        period,
		BurstCooldown: cooldown,
		alloc:         a,
		cluster:       c,
		families:      families,
		slos:          slos,
		historyLimit:  DefaultHistoryLimit,
	}
	if a == nil || a.Name() != "infaas_v2" {
		ctl.fallback = allocator.NewInfaasAccuracy()
	}
	return ctl
}

// Allocator returns the wrapped allocator.
func (c *Controller) Allocator() allocator.Allocator { return c.alloc }

// SetFallback replaces the fallback allocator used when the primary errors.
// Passing nil disables the fallback stage (the carry-forward stage remains).
func (c *Controller) SetFallback(a allocator.Allocator) { c.fallback = a }

// Instrument resolves the controller's counters from a telemetry registry
// (a nil registry leaves them inert). Call before the first Reallocate.
func (c *Controller) Instrument(r *telemetry.Registry) {
	c.counters = telemetry.NewControlCounters(r)
}

// SetCluster replaces the device fleet for subsequent re-allocations (the
// §7 hardware-scaling extension grows it when provisioned servers arrive).
func (c *Controller) SetCluster(cl *cluster.Cluster) { c.cluster = cl }

// Cluster returns the current device fleet.
func (c *Controller) Cluster() *cluster.Cluster { return c.cluster }

// Dynamic reports whether re-allocation over time is enabled.
func (c *Controller) Dynamic() bool { return c.alloc.Dynamic() }

// Reallocate invokes the allocator with the demand estimate and records the
// plan. Trigger labels the cause for the history. On a primary-allocator
// error the fallback chain engages: first the greedy fallback restricted to
// the healthy devices, then — if that errors too — the last feasible plan
// projected onto the survivors. Only when all three stages fail does
// Reallocate return an error, and even then the attempt time is recorded so
// the cooldown throttles erroring allocators like successful ones.
func (c *Controller) Reallocate(now time.Duration, demand []float64, trigger string) (*allocator.Allocation, error) {
	if len(demand) != len(c.families) {
		return nil, fmt.Errorf("controlplane: demand has %d entries, want %d", len(demand), len(c.families))
	}
	in := &allocator.Input{
		Cluster:  c.cluster,
		Families: c.families,
		SLOs:     c.slos,
		Demand:   demand,
	}
	plan, err := c.alloc.Allocate(in)
	solver, stage := c.alloc.Name(), "primary"
	var stageErr string
	if err != nil {
		solveErr := err
		stageErr = err.Error()
		plan = nil
		if c.fallback != nil {
			fb, ferr := c.fallback.Allocate(in)
			if ferr == nil {
				plan, solver, stage = fb, c.fallback.Name()+" (fallback)", "fallback"
				c.counters.FallbackPlans.Inc()
			} else {
				solveErr = fmt.Errorf("%w; fallback %s: %v", err, c.fallback.Name(), ferr)
				stageErr = solveErr.Error()
			}
		}
		if plan == nil && c.lastPlan != nil {
			plan, solver, stage = allocator.ProjectHealthy(c.lastPlan, in), "carry-forward", "carry-forward"
			c.counters.CarryForwardPlans.Inc()
		}
		if plan == nil {
			// Record the attempt so the cooldown applies to failed solves
			// too; without this an erroring allocator is re-invoked at every
			// tick with no backoff. The failed attempt still enters the audit
			// log (Stage "error") so operators can see every control period.
			c.last = now
			c.started = true
			c.counters.FailedSolves.Inc()
			c.append(PlanRecord{
				At:      now,
				Demand:  append([]float64(nil), demand...),
				Trigger: trigger,
				Solver:  "none",
				Stage:   "error",
				Err:     stageErr,
			})
			return nil, solveErr
		}
	}
	c.last = now
	c.started = true
	rec := PlanRecord{
		At:                now,
		Demand:            append([]float64(nil), demand...),
		PredictedAccuracy: plan.PredictedAccuracy,
		DemandScale:       plan.DemandScale,
		SolveTime:         plan.SolveTime,
		Trigger:           trigger,
		Solver:            solver,
		Stage:             stage,
		Err:               stageErr,
		Stats:             plan.Stats,
		HostedVariants:    map[string]int{},
	}
	for d := range plan.Hosted {
		if id := plan.HostedID(d); id != "" {
			rec.HostedVariants[id]++
		}
	}
	diffPlans(&rec, c.lastPlan, plan)
	c.lastPlan = plan
	c.counters.Reallocations.Inc()
	c.append(rec)
	return plan, nil
}

// diffPlans fills rec's allocation-diff fields (per-device hosting
// transitions, load/unload counts, routing L1 distance) comparing the new
// plan against the previous one. A nil previous plan diffs against an idle
// fleet, so the first plan's record lists every initial placement.
func diffPlans(rec *PlanRecord, prev, next *allocator.Allocation) {
	prevHosted := func(d int) string {
		if prev == nil || d >= len(prev.Hosted) {
			return ""
		}
		return prev.HostedID(d)
	}
	for d := range next.Hosted {
		from, to := prevHosted(d), next.HostedID(d)
		if from == to {
			continue
		}
		rec.Changes = append(rec.Changes, DeviceChange{Device: d, From: from, To: to})
		if to != "" {
			rec.Loads++
		}
		if from != "" {
			rec.Unloads++
		}
	}
	for q := range next.Routing {
		for d, y := range next.Routing[q] {
			old := 0.0
			if prev != nil && q < len(prev.Routing) && d < len(prev.Routing[q]) {
				old = prev.Routing[q][d]
			}
			diff := y - old
			if diff < 0 {
				diff = -diff
			}
			rec.RoutingDelta += diff
		}
	}
}

// DefaultHistoryLimit is the audit-log ring size when SetHistoryLimit is
// never called: generous enough that a simulated run or a day of 30 s
// control periods is fully retained, small enough to bound live memory.
const DefaultHistoryLimit = 256

// SetHistoryLimit resizes the audit-log ring (n <= 0 restores the
// default). Existing records beyond the new bound are dropped oldest-first.
func (c *Controller) SetHistoryLimit(n int) {
	if n <= 0 {
		n = DefaultHistoryLimit
	}
	c.mu.Lock()
	c.historyLimit = n
	if over := len(c.history) - n; over > 0 {
		c.history = append(c.history[:0], c.history[over:]...)
	}
	c.mu.Unlock()
}

// HistoryLimit returns the audit-log ring's current bound.
func (c *Controller) HistoryLimit() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.historyLimit
}

// SetRecordHook installs fn to observe every appended audit record. The
// hook runs on the control-loop goroutine after the history lock is
// released (it receives the final record, burn and overload context
// attached, and may safely call back into the controller).
func (c *Controller) SetRecordHook(fn func(PlanRecord)) {
	c.mu.Lock()
	c.recordHook = fn
	c.mu.Unlock()
}

// append adds a record to the audit log under the history lock, stamping
// its sequence number and attaching (and clearing) the burn transitions
// buffered since the last record.
func (c *Controller) append(rec PlanRecord) {
	c.mu.Lock()
	c.seq++
	rec.Seq = c.seq
	if len(c.pendingBurns) > 0 {
		rec.SLOBurns = c.pendingBurns
		c.pendingBurns = nil
	}
	if len(c.pendingOverloads) > 0 {
		rec.Overloads = c.pendingOverloads
		c.pendingOverloads = nil
	}
	c.history = append(c.history, rec)
	if over := len(c.history) - c.historyLimit; over > 0 {
		c.history = append(c.history[:0], c.history[over:]...)
	}
	hook := c.recordHook
	c.mu.Unlock()
	if hook != nil {
		hook(rec)
	}
}

// NoteBurn records an SLO burn-state transition for the next audit record.
// Safe to call concurrently with Reallocate and History.
func (c *Controller) NoteBurn(rec SLOBurnRecord) {
	c.mu.Lock()
	c.pendingBurns = append(c.pendingBurns, rec)
	c.mu.Unlock()
}

// NoteOverload records an overload-guard transition for the next audit
// record. Safe to call concurrently with Reallocate and History.
func (c *Controller) NoteOverload(rec OverloadRecord) {
	c.mu.Lock()
	c.pendingOverloads = append(c.pendingOverloads, rec)
	c.mu.Unlock()
}

// DemandChanged reports whether the demand estimate differs from the last
// plan's target by more than the relative threshold for any family (with an
// absolute floor of 1 QPS so idle families do not trigger churn).
func (c *Controller) DemandChanged(demand []float64, threshold float64) bool {
	c.mu.Lock()
	var last []float64
	// Error records audit failed attempts; no plan was produced for their
	// demand, so they don't count as the baseline.
	for i := len(c.history) - 1; i >= 0; i-- {
		if c.history[i].Stage != "error" {
			last = c.history[i].Demand
			break
		}
	}
	c.mu.Unlock()
	if last == nil {
		return true
	}
	if len(last) != len(demand) {
		return true
	}
	for q := range demand {
		diff := demand[q] - last[q]
		if diff < 0 {
			diff = -diff
		}
		if diff > threshold*last[q]+1 {
			return true
		}
	}
	return false
}

// AllowBurst reports whether a burst-triggered re-allocation is permitted
// at time now (outside the cooldown window of the last re-allocation).
func (c *Controller) AllowBurst(now time.Duration) bool {
	if !c.started {
		return true
	}
	return now-c.last >= c.BurstCooldown
}

// CooldownRemaining returns how long until a triggered re-allocation is
// permitted at time now (0 when one is allowed immediately). Callers that
// must not lose a trigger — a failure re-allocation arriving inside the
// cooldown window — use this to schedule a retry instead of dropping it.
func (c *Controller) CooldownRemaining(now time.Duration) time.Duration {
	if !c.started {
		return 0
	}
	rem := c.last + c.BurstCooldown - now
	if rem < 0 {
		return 0
	}
	return rem
}

// History returns a copy of the re-allocation audit log so far. Safe to
// call concurrently with Reallocate.
func (c *Controller) History() []PlanRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]PlanRecord(nil), c.history...)
}

// LastPlanSeq returns the sequence number of the most recent audit record
// that produced a plan (error records don't count; 0 before the first
// plan). Engines read it right after Reallocate returns and stamp it onto
// enqueue trace events.
func (c *Controller) LastPlanSeq() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := len(c.history) - 1; i >= 0; i-- {
		if c.history[i].Stage != "error" {
			return c.history[i].Seq
		}
	}
	return 0
}
