// Package controlplane implements the Proteus controller logic (§3): the
// statistics collector that aggregates per-application demand from the load
// balancers' monitoring daemons, and the re-allocation policy — periodic
// MILP invocations (30 s in the paper) plus burst-triggered early
// re-allocations with a cooldown. The control path never blocks the data
// path; the hosting engine (simulator or live cluster) invokes it
// asynchronously.
package controlplane

import (
	"fmt"
	"time"

	"proteus/internal/allocator"
	"proteus/internal/cluster"
	"proteus/internal/models"
	"proteus/internal/router"
)

// Stats is the statistics collector: one monitoring daemon per family.
type Stats struct {
	Monitors []*router.Monitor
}

// NewStats builds a collector with one monitor per family.
func NewStats(families, windowSeconds int, burstFactor float64) *Stats {
	s := &Stats{Monitors: make([]*router.Monitor, families)}
	for q := range s.Monitors {
		s.Monitors[q] = router.NewMonitor(windowSeconds, burstFactor)
	}
	return s
}

// Observe records an arrival of family q at time t.
func (s *Stats) Observe(t time.Duration, q int) { s.Monitors[q].Observe(t) }

// Estimates returns the current per-family demand estimates in QPS.
func (s *Stats) Estimates(t time.Duration) []float64 {
	out := make([]float64, len(s.Monitors))
	for q, m := range s.Monitors {
		out[q] = m.Rate(t)
	}
	return out
}

// AnyBurst reports whether any family's instantaneous demand exceeds its
// planned capacity by the burst factor.
func (s *Stats) AnyBurst(t time.Duration) bool {
	for _, m := range s.Monitors {
		if m.Burst(t) {
			return true
		}
	}
	return false
}

// SetPlanned records each family's planned serving capacity from a new
// allocation.
func (s *Stats) SetPlanned(served []float64) {
	for q, m := range s.Monitors {
		if q < len(served) {
			m.SetPlanned(served[q])
		}
	}
}

// PlanRecord summarizes one re-allocation for experiment reporting.
type PlanRecord struct {
	At                time.Duration
	Demand            []float64
	PredictedAccuracy float64
	DemandScale       float64
	SolveTime         time.Duration
	Trigger           string // "initial", "periodic", "burst"
	HostedVariants    map[string]int
}

// Controller owns the allocator and the re-allocation schedule.
type Controller struct {
	// Period is the regular re-allocation interval (30 s in the paper).
	Period time.Duration
	// BurstCooldown is the minimum spacing of burst-triggered
	// re-allocations.
	BurstCooldown time.Duration

	alloc    allocator.Allocator
	cluster  *cluster.Cluster
	families []models.Family
	slos     []time.Duration

	last    time.Duration
	started bool
	history []PlanRecord
}

// NewController builds a controller. Period defaults to 30 s, cooldown to
// 10 s.
func NewController(a allocator.Allocator, c *cluster.Cluster, families []models.Family, slos []time.Duration, period, cooldown time.Duration) *Controller {
	if period <= 0 {
		period = 30 * time.Second
	}
	if cooldown <= 0 {
		cooldown = 10 * time.Second
	}
	return &Controller{
		Period:        period,
		BurstCooldown: cooldown,
		alloc:         a,
		cluster:       c,
		families:      families,
		slos:          slos,
	}
}

// Allocator returns the wrapped allocator.
func (c *Controller) Allocator() allocator.Allocator { return c.alloc }

// SetCluster replaces the device fleet for subsequent re-allocations (the
// §7 hardware-scaling extension grows it when provisioned servers arrive).
func (c *Controller) SetCluster(cl *cluster.Cluster) { c.cluster = cl }

// Cluster returns the current device fleet.
func (c *Controller) Cluster() *cluster.Cluster { return c.cluster }

// Dynamic reports whether re-allocation over time is enabled.
func (c *Controller) Dynamic() bool { return c.alloc.Dynamic() }

// Reallocate invokes the allocator with the demand estimate and records the
// plan. Trigger labels the cause for the history.
func (c *Controller) Reallocate(now time.Duration, demand []float64, trigger string) (*allocator.Allocation, error) {
	if len(demand) != len(c.families) {
		return nil, fmt.Errorf("controlplane: demand has %d entries, want %d", len(demand), len(c.families))
	}
	in := &allocator.Input{
		Cluster:  c.cluster,
		Families: c.families,
		SLOs:     c.slos,
		Demand:   demand,
	}
	plan, err := c.alloc.Allocate(in)
	if err != nil {
		return nil, err
	}
	c.last = now
	c.started = true
	counts := map[string]int{}
	for d := range plan.Hosted {
		if id := plan.HostedID(d); id != "" {
			counts[id]++
		}
	}
	c.history = append(c.history, PlanRecord{
		At:                now,
		Demand:            append([]float64(nil), demand...),
		PredictedAccuracy: plan.PredictedAccuracy,
		DemandScale:       plan.DemandScale,
		SolveTime:         plan.SolveTime,
		Trigger:           trigger,
		HostedVariants:    counts,
	})
	return plan, nil
}

// DemandChanged reports whether the demand estimate differs from the last
// plan's target by more than the relative threshold for any family (with an
// absolute floor of 1 QPS so idle families do not trigger churn).
func (c *Controller) DemandChanged(demand []float64, threshold float64) bool {
	if len(c.history) == 0 {
		return true
	}
	last := c.history[len(c.history)-1].Demand
	if len(last) != len(demand) {
		return true
	}
	for q := range demand {
		diff := demand[q] - last[q]
		if diff < 0 {
			diff = -diff
		}
		if diff > threshold*last[q]+1 {
			return true
		}
	}
	return false
}

// AllowBurst reports whether a burst-triggered re-allocation is permitted
// at time now (outside the cooldown window of the last re-allocation).
func (c *Controller) AllowBurst(now time.Duration) bool {
	if !c.started {
		return true
	}
	return now-c.last >= c.BurstCooldown
}

// History returns the re-allocation records so far.
func (c *Controller) History() []PlanRecord { return c.history }
