// Package controlplane implements the Proteus controller logic (§3): the
// statistics collector that aggregates per-application demand from the load
// balancers' monitoring daemons, and the re-allocation policy — periodic
// MILP invocations (30 s in the paper) plus burst-triggered early
// re-allocations with a cooldown. The control path never blocks the data
// path; the hosting engine (simulator or live cluster) invokes it
// asynchronously.
package controlplane

import (
	"fmt"
	"time"

	"proteus/internal/allocator"
	"proteus/internal/cluster"
	"proteus/internal/models"
	"proteus/internal/router"
)

// Stats is the statistics collector: one monitoring daemon per family.
type Stats struct {
	Monitors []*router.Monitor
}

// NewStats builds a collector with one monitor per family.
func NewStats(families, windowSeconds int, burstFactor float64) *Stats {
	s := &Stats{Monitors: make([]*router.Monitor, families)}
	for q := range s.Monitors {
		s.Monitors[q] = router.NewMonitor(windowSeconds, burstFactor)
	}
	return s
}

// Observe records an arrival of family q at time t.
func (s *Stats) Observe(t time.Duration, q int) { s.Monitors[q].Observe(t) }

// Estimates returns the current per-family demand estimates in QPS.
func (s *Stats) Estimates(t time.Duration) []float64 {
	out := make([]float64, len(s.Monitors))
	for q, m := range s.Monitors {
		out[q] = m.Rate(t)
	}
	return out
}

// AnyBurst reports whether any family's instantaneous demand exceeds its
// planned capacity by the burst factor.
func (s *Stats) AnyBurst(t time.Duration) bool {
	for _, m := range s.Monitors {
		if m.Burst(t) {
			return true
		}
	}
	return false
}

// SetPlanned records each family's planned serving capacity from a new
// allocation. The served slice must cover exactly the monitored families —
// a mismatched length means the plan and the monitor set disagree about the
// family space, which would silently mis-arm burst detection.
func (s *Stats) SetPlanned(served []float64) error {
	if len(served) != len(s.Monitors) {
		return fmt.Errorf("controlplane: planned capacities cover %d families, monitors cover %d",
			len(served), len(s.Monitors))
	}
	for q, m := range s.Monitors {
		m.SetPlanned(served[q])
	}
	return nil
}

// PlanRecord summarizes one re-allocation for experiment reporting.
type PlanRecord struct {
	At                time.Duration
	Demand            []float64
	PredictedAccuracy float64
	DemandScale       float64
	SolveTime         time.Duration
	Trigger           string // "initial", "periodic", "burst", "failure", "recovery"
	// Solver names the allocator that produced the plan: the primary's name,
	// "<name> (fallback)" when the fallback stepped in, or "carry-forward"
	// when the last feasible plan was projected onto the surviving devices.
	Solver         string
	HostedVariants map[string]int
}

// Controller owns the allocator and the re-allocation schedule.
type Controller struct {
	// Period is the regular re-allocation interval (30 s in the paper).
	Period time.Duration
	// BurstCooldown is the minimum spacing of burst-triggered
	// re-allocations.
	BurstCooldown time.Duration

	alloc allocator.Allocator
	// fallback steps in when the primary allocator errors (MILP infeasible
	// past its back-off budget, solver timeout surfaced as an error): a
	// cheap heuristic restricted — like every allocator — to the cluster's
	// healthy subset. Defaults to the greedy INFaaS-Accuracy heuristic.
	fallback allocator.Allocator
	// lastPlan is the most recent feasible plan; when both allocators fail
	// it is projected onto the surviving devices instead of aborting.
	lastPlan *allocator.Allocation
	cluster  *cluster.Cluster
	families []models.Family
	slos     []time.Duration

	last    time.Duration
	started bool
	history []PlanRecord
}

// NewController builds a controller. Period defaults to 30 s, cooldown to
// 10 s.
func NewController(a allocator.Allocator, c *cluster.Cluster, families []models.Family, slos []time.Duration, period, cooldown time.Duration) *Controller {
	if period <= 0 {
		period = 30 * time.Second
	}
	if cooldown <= 0 {
		cooldown = 10 * time.Second
	}
	ctl := &Controller{
		Period:        period,
		BurstCooldown: cooldown,
		alloc:         a,
		cluster:       c,
		families:      families,
		slos:          slos,
	}
	if a == nil || a.Name() != "infaas_v2" {
		ctl.fallback = allocator.NewInfaasAccuracy()
	}
	return ctl
}

// Allocator returns the wrapped allocator.
func (c *Controller) Allocator() allocator.Allocator { return c.alloc }

// SetFallback replaces the fallback allocator used when the primary errors.
// Passing nil disables the fallback stage (the carry-forward stage remains).
func (c *Controller) SetFallback(a allocator.Allocator) { c.fallback = a }

// SetCluster replaces the device fleet for subsequent re-allocations (the
// §7 hardware-scaling extension grows it when provisioned servers arrive).
func (c *Controller) SetCluster(cl *cluster.Cluster) { c.cluster = cl }

// Cluster returns the current device fleet.
func (c *Controller) Cluster() *cluster.Cluster { return c.cluster }

// Dynamic reports whether re-allocation over time is enabled.
func (c *Controller) Dynamic() bool { return c.alloc.Dynamic() }

// Reallocate invokes the allocator with the demand estimate and records the
// plan. Trigger labels the cause for the history. On a primary-allocator
// error the fallback chain engages: first the greedy fallback restricted to
// the healthy devices, then — if that errors too — the last feasible plan
// projected onto the survivors. Only when all three stages fail does
// Reallocate return an error, and even then the attempt time is recorded so
// the cooldown throttles erroring allocators like successful ones.
func (c *Controller) Reallocate(now time.Duration, demand []float64, trigger string) (*allocator.Allocation, error) {
	if len(demand) != len(c.families) {
		return nil, fmt.Errorf("controlplane: demand has %d entries, want %d", len(demand), len(c.families))
	}
	in := &allocator.Input{
		Cluster:  c.cluster,
		Families: c.families,
		SLOs:     c.slos,
		Demand:   demand,
	}
	plan, err := c.alloc.Allocate(in)
	solver := c.alloc.Name()
	if err != nil {
		solveErr := err
		plan = nil
		if c.fallback != nil {
			fb, ferr := c.fallback.Allocate(in)
			if ferr == nil {
				plan, solver = fb, c.fallback.Name()+" (fallback)"
			} else {
				solveErr = fmt.Errorf("%w; fallback %s: %v", err, c.fallback.Name(), ferr)
			}
		}
		if plan == nil && c.lastPlan != nil {
			plan, solver = allocator.ProjectHealthy(c.lastPlan, in), "carry-forward"
		}
		if plan == nil {
			// Record the attempt so the cooldown applies to failed solves
			// too; without this an erroring allocator is re-invoked at every
			// tick with no backoff.
			c.last = now
			c.started = true
			return nil, solveErr
		}
	}
	c.last = now
	c.started = true
	c.lastPlan = plan
	counts := map[string]int{}
	for d := range plan.Hosted {
		if id := plan.HostedID(d); id != "" {
			counts[id]++
		}
	}
	c.history = append(c.history, PlanRecord{
		At:                now,
		Demand:            append([]float64(nil), demand...),
		PredictedAccuracy: plan.PredictedAccuracy,
		DemandScale:       plan.DemandScale,
		SolveTime:         plan.SolveTime,
		Trigger:           trigger,
		Solver:            solver,
		HostedVariants:    counts,
	})
	return plan, nil
}

// DemandChanged reports whether the demand estimate differs from the last
// plan's target by more than the relative threshold for any family (with an
// absolute floor of 1 QPS so idle families do not trigger churn).
func (c *Controller) DemandChanged(demand []float64, threshold float64) bool {
	if len(c.history) == 0 {
		return true
	}
	last := c.history[len(c.history)-1].Demand
	if len(last) != len(demand) {
		return true
	}
	for q := range demand {
		diff := demand[q] - last[q]
		if diff < 0 {
			diff = -diff
		}
		if diff > threshold*last[q]+1 {
			return true
		}
	}
	return false
}

// AllowBurst reports whether a burst-triggered re-allocation is permitted
// at time now (outside the cooldown window of the last re-allocation).
func (c *Controller) AllowBurst(now time.Duration) bool {
	if !c.started {
		return true
	}
	return now-c.last >= c.BurstCooldown
}

// CooldownRemaining returns how long until a triggered re-allocation is
// permitted at time now (0 when one is allowed immediately). Callers that
// must not lose a trigger — a failure re-allocation arriving inside the
// cooldown window — use this to schedule a retry instead of dropping it.
func (c *Controller) CooldownRemaining(now time.Duration) time.Duration {
	if !c.started {
		return 0
	}
	rem := c.last + c.BurstCooldown - now
	if rem < 0 {
		return 0
	}
	return rem
}

// History returns the re-allocation records so far.
func (c *Controller) History() []PlanRecord { return c.history }
