package serving

import (
	"math"
	"sync"
	"time"

	"proteus/internal/allocator"
	"proteus/internal/batching"
	"proteus/internal/cluster"
	"proteus/internal/numeric"
	"proteus/internal/overload"
	"proteus/internal/profiles"
	"proteus/internal/telemetry"
	"proteus/internal/tsdb"
)

// liveQuery is one in-flight query inside the live cluster.
type liveQuery struct {
	id       uint64
	family   int
	arrival  time.Duration
	deadline time.Duration
	// retries counts failure re-dispatches; a query is retried at most
	// Config.MaxRetries times before being dropped.
	retries int
	// Phase-decomposition timestamps: stamped at device enqueue and batch
	// formation, differenced into per-phase durations at completion. A
	// redispatch restamps enqueueAt, so admission absorbs the re-route wait.
	enqueueAt time.Duration
	formAt    time.Duration
	execAt    time.Duration
	done      chan Response
}

// liveWorker is the wall-clock counterpart of core's worker: a goroutine
// owning one device, consulting its batching policy, and "executing"
// batches by sleeping for the profiled latency. Arrivals and model swaps
// wake it through a notification channel; non-work-conserving waits are a
// single timer sleep, interruptible by new arrivals.
type liveWorker struct {
	sys    *Server
	dev    cluster.Device
	policy batching.Policy

	mu           sync.Mutex
	queue        []liveQuery
	hosted       *allocator.VariantRef
	maxBatch     int
	memBatch     int
	loadingUntil time.Duration
	down         bool
	closed       bool
	rng          *numeric.RNG

	notify chan struct{}
	stopc  chan struct{}

	rateEWMA   float64
	rateBucket int64
	rateCount  int

	// Execution-time accounting for the tsdb utilization series (guarded by
	// mu): busyAccum is the total executed batch latency, lastBatch the size
	// of the most recent batch.
	busyAccum time.Duration
	lastBatch int
}

func newLiveWorker(s *Server, dev cluster.Device, policy batching.Policy) *liveWorker {
	return &liveWorker{
		sys:    s,
		dev:    dev,
		policy: policy,
		rng:    numeric.NewRNG(s.cfg.Seed ^ uint64(dev.ID+1)),
		notify: make(chan struct{}, 1),
		stopc:  make(chan struct{}),
	}
}

func (w *liveWorker) wake() {
	select {
	case w.notify <- struct{}{}:
	default:
	}
}

// syncDepthLocked reports the current mailbox depth to the overload guard
// (a no-op when the guard is off). Caller holds w.mu; the guard's lock is a
// leaf, so the nesting is safe.
func (w *liveWorker) syncDepthLocked() {
	w.sys.guard.NoteDepth(w.dev.ID, len(w.queue))
}

// guardProfile snapshots the worker's hosting for the overload guard's
// admission bound and degradation ladder.
func (w *liveWorker) guardProfile() overload.DeviceProfile {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.down || w.hosted == nil || w.maxBatch < 1 {
		return overload.DeviceProfile{Family: -1}
	}
	f := w.hosted.Family
	return overload.DeviceProfile{
		Family:   f,
		Accuracy: w.hosted.Variant.Accuracy,
		MaxBatch: w.maxBatch,
		Lat1:     profiles.Latency(w.dev.Spec, w.hosted.Variant, 1),
		LatMax:   profiles.Latency(w.dev.Spec, w.hosted.Variant, w.maxBatch),
		SLO:      w.sys.slos[f],
	}
}

func (w *liveWorker) hostedID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.hosted == nil {
		return ""
	}
	return w.hosted.Variant.ID()
}

func (w *liveWorker) loadingPast(now time.Duration) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return now < w.loadingUntil
}

// setHosted swaps the hosted variant, returning the queued queries that
// must be re-routed elsewhere.
func (w *liveWorker) setHosted(ref *allocator.VariantRef, loadDelay time.Duration) []liveQuery {
	w.mu.Lock()
	requeue := w.queue
	w.queue = nil
	w.syncDepthLocked()
	w.hosted = ref
	w.policy.Reset()
	if ref == nil {
		w.maxBatch, w.memBatch = 0, 0
	} else {
		slo := w.sys.slos[ref.Family]
		w.maxBatch = profiles.MaxBatch(w.dev.Spec, ref.Variant, slo)
		w.memBatch = profiles.MaxMemoryBatch(w.dev.Spec, ref.Variant)
		w.loadingUntil = w.sys.now() + loadDelay
		w.sys.tc.ModelLoads.Inc()
	}
	w.mu.Unlock()
	w.wake()
	return requeue
}

func (w *liveWorker) enqueue(q liveQuery) {
	// Resolve the causal stamps (plan seq, overload episode) before taking
	// w.mu: traceCtx reads the guard's episode id under Guard.mu, and that
	// acquisition stays outside the worker lock.
	var ctx telemetry.Ctx
	if w.sys.tracer != nil {
		ctx = w.sys.traceCtx(q.family, telemetry.CauseNone)
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		w.sys.recordDrop(q, telemetry.CauseDraining)
		return
	}
	if w.down {
		// Routed before the table caught up with the failure; bounce back.
		w.mu.Unlock()
		w.sys.redispatch(q, telemetry.CauseStaleRoute)
		return
	}
	now := w.sys.now()
	w.noteArrival(now)
	if tr := w.sys.tracer; tr != nil {
		// The enqueue event carries the plan and overload episode in force,
		// anchoring the attribution engine's causal joins.
		//lint:allow lockorder established order liveWorker.mu → Tracer.mu; the tracer's ring lock is a leaf that never calls out
		tr.RecordCtx(now, telemetry.EvEnqueue, q.id, q.family, w.dev.ID, -1, ctx)
	}
	q.enqueueAt = now
	w.queue = append(w.queue, q)
	w.syncDepthLocked() //lint:allow lockorder established order liveWorker.mu → Guard.mu (same direction as Server.mu → Guard.mu); Guard methods are leaf locks that never call back into serving
	w.mu.Unlock()
	w.wake()
}

// fail kills the device: the queue drains back to the caller for
// re-dispatch and the hosted model is lost. An in-flight batch is handled by
// executeBatch itself, which re-dispatches its queries when it observes the
// failure after the (wasted) execution sleep.
func (w *liveWorker) fail() []liveQuery {
	w.mu.Lock()
	w.down = true
	stranded := w.queue
	w.queue = nil
	w.syncDepthLocked()
	w.hosted = nil
	w.maxBatch, w.memBatch = 0, 0
	w.policy.Reset()
	w.mu.Unlock()
	w.wake()
	return stranded
}

// recover brings the device back with an empty memory, reloading ref (the
// current plan's hosting for it, usually nil until the next re-allocation)
// with the full model-load delay.
func (w *liveWorker) recover(ref *allocator.VariantRef, loadDelay time.Duration) {
	w.mu.Lock()
	w.down = false
	w.mu.Unlock()
	w.setHosted(ref, loadDelay)
}

func (w *liveWorker) shutdown() {
	w.mu.Lock()
	if !w.closed {
		w.closed = true
		close(w.stopc)
	}
	w.mu.Unlock()
	w.wake()
}

func (w *liveWorker) noteArrival(now time.Duration) {
	sec := int64(now / time.Second)
	if sec != w.rateBucket {
		const alpha = 0.3
		w.rateEWMA = alpha*float64(w.rateCount) + (1-alpha)*w.rateEWMA
		for s := w.rateBucket + 1; s < sec && s-w.rateBucket < 30; s++ {
			w.rateEWMA *= 1 - alpha
		}
		w.rateBucket = sec
		w.rateCount = 0
	}
	w.rateCount++
}

func (w *liveWorker) arrivalRate() float64 {
	if float64(w.rateCount) > w.rateEWMA {
		return float64(w.rateCount)
	}
	return w.rateEWMA
}

// deviceState snapshots the worker for the tsdb sampler.
func (w *liveWorker) deviceState() tsdb.DeviceState {
	w.mu.Lock()
	defer w.mu.Unlock()
	variant := ""
	if w.hosted != nil {
		variant = w.hosted.Variant.ID()
	}
	return tsdb.DeviceState{
		Up:         !w.down,
		QueueDepth: len(w.queue),
		LastBatch:  w.lastBatch,
		Variant:    variant,
		BusyTime:   w.busyAccum,
	}
}

// sleepInterruptible sleeps for d, returning early on a wake-up or stop.
func (w *liveWorker) sleepInterruptible(d time.Duration) {
	if d <= 0 {
		return
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-w.notify:
	case <-w.stopc:
	}
}

// loop is the worker goroutine: wait for queries (or a policy wake-up),
// apply the batching decision, execute batches by sleeping.
func (w *liveWorker) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		w.mu.Lock()
		if w.closed {
			pending := w.queue
			w.queue = nil
			w.syncDepthLocked()
			w.mu.Unlock()
			for _, q := range pending {
				w.sys.recordDrop(q, telemetry.CauseDraining)
			}
			return
		}
		now := w.sys.now()
		if w.down {
			pending := w.queue
			w.queue = nil
			w.syncDepthLocked()
			w.mu.Unlock()
			for _, q := range pending {
				w.sys.redispatch(q, telemetry.CauseDeviceFailure)
			}
			w.idleWait()
			continue
		}
		if w.hosted == nil || w.maxBatch < 1 {
			pending := w.queue
			w.queue = nil
			w.syncDepthLocked()
			w.mu.Unlock()
			for _, q := range pending {
				w.sys.recordDrop(q, telemetry.CauseNoRoute)
			}
			w.idleWait()
			continue
		}
		if now < w.loadingUntil {
			until := w.loadingUntil - now
			w.mu.Unlock()
			time.Sleep(until)
			w.sys.rebuildTable()
			continue
		}
		if len(w.queue) == 0 {
			w.mu.Unlock()
			w.idleWait()
			continue
		}

		hosted := *w.hosted
		pq := make([]batching.Query, len(w.queue))
		for i, q := range w.queue {
			pq[i] = batching.Query{ID: uint64(i), Arrival: q.arrival, Deadline: q.deadline}
		}
		ctx := batching.Context{
			Now:      now,
			Queue:    pq,
			MaxBatch: w.maxBatch,
			MemBatch: w.memBatch,
			ProcTime: func(b int) time.Duration {
				return profiles.Latency(w.dev.Spec, hosted.Variant, b)
			},
			ArrivalRate: w.arrivalRate(),
		}
		d := w.policy.Decide(&ctx)
		switch d.Action {
		case batching.Execute:
			w.sys.tc.BatchExecutes.Inc()
		case batching.Wait:
			w.sys.tc.BatchWaits.Inc()
		case batching.Idle:
			w.sys.tc.BatchIdles.Inc()
		}
		w.sys.tc.BatchDrops.Add(int64(len(d.Drop)))
		var dropped []liveQuery
		if len(d.Drop) > 0 {
			di := 0
			keep := w.queue[:0]
			for i, q := range w.queue {
				if di < len(d.Drop) && d.Drop[di] == i {
					dropped = append(dropped, q)
					di++
					continue
				}
				keep = append(keep, q)
			}
			w.queue = keep
			w.syncDepthLocked()
		}
		var batch []liveQuery
		var wait time.Duration
		switch d.Action {
		case batching.Execute:
			b := d.BatchSize
			if b > len(w.queue) {
				b = len(w.queue)
			}
			batch = make([]liveQuery, b)
			copy(batch, w.queue[:b])
			w.queue = append(w.queue[:0], w.queue[b:]...)
			w.syncDepthLocked()
		case batching.Wait:
			// The simulator can cut waits to the exact T_max_wait edge; on
			// wall clocks, scheduler jitter would turn that into misses, so
			// the live worker wakes a few milliseconds early.
			const jitterMargin = 5 * time.Millisecond
			wait = d.WakeAt - jitterMargin - now
		}
		w.mu.Unlock()

		for _, q := range dropped {
			w.sys.recordDrop(q, telemetry.CausePolicyDrop)
		}
		switch d.Action {
		case batching.Execute:
			if len(batch) > 0 {
				w.executeBatch(hosted, batch)
			}
		case batching.Wait:
			w.sleepInterruptible(wait)
		case batching.Idle:
			w.idleWait()
		}
	}
}

// idleWait blocks until an arrival, a model swap, or shutdown.
func (w *liveWorker) idleWait() {
	select {
	case <-w.notify:
	case <-w.stopc:
	}
}

// executeBatch simulates hardware execution: sleep for the profiled batch
// latency (with noise), then complete every query.
func (w *liveWorker) executeBatch(hosted allocator.VariantRef, batch []liveQuery) {
	batchID := int(w.sys.nextBatch.Add(1) - 1)
	w.sys.tc.Batches.Inc()
	w.sys.tc.BatchQueries.Add(int64(len(batch)))
	formed := w.sys.now()
	for i := range batch {
		// Formation and execution start coincide here (the executor starts
		// immediately), so batch_form is ~0 by design — matching the
		// simulator's decomposition.
		batch[i].formAt = formed
		batch[i].execAt = formed
	}
	if w.sys.tracer != nil {
		for _, q := range batch {
			w.sys.tracer.Record(formed, telemetry.EvBatchFormed, q.id, q.family, w.dev.ID, batchID)
			w.sys.tracer.Record(formed, telemetry.EvExecStart, q.id, q.family, w.dev.ID, batchID)
		}
	}
	lat := profiles.Latency(w.dev.Spec, hosted.Variant, len(batch))
	if w.sys.cfg.ExecNoiseFrac > 0 {
		w.mu.Lock()
		noise := 1 + w.sys.cfg.ExecNoiseFrac*w.rng.NormFloat64()
		w.mu.Unlock()
		lat = time.Duration(math.Max(0, float64(lat)*noise))
	}
	time.Sleep(lat)
	w.mu.Lock()
	w.busyAccum += lat
	w.lastBatch = len(batch)
	died := w.down
	w.mu.Unlock()
	if died {
		// The device failed mid-execution: results are lost, re-dispatch.
		for _, q := range batch {
			w.sys.redispatch(q, telemetry.CauseMidflight)
		}
		return
	}
	violations := 0
	now := w.sys.now()
	for _, q := range batch {
		if now > q.deadline {
			violations++
		}
		w.sys.recordCompletion(q, hosted.Variant.ID(), hosted.Variant.Accuracy, w.dev.ID, batchID)
	}
	w.policy.Observe(len(batch), violations)
}
