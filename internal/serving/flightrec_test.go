package serving

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"proteus/internal/flightrec"
	"proteus/internal/telemetry"
	"proteus/internal/tsdb"
)

// TestMetricsPrometheusNegotiation covers the /metrics content negotiation:
// the legacy plain format by default, the Prometheus text exposition format
// under an Accept header or ?format=prometheus.
func TestMetricsPrometheusNegotiation(t *testing.T) {
	cfg := testConfig(t)
	cfg.Telemetry = telemetry.NewRegistry()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	s.Infer("efficientnet")

	get := func(path, accept string) (string, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	// Default: legacy plain key-value lines, no comment lines.
	body, ct := get("/metrics", "")
	if strings.Contains(body, "# TYPE") {
		t.Fatalf("plain format contains prometheus comments:\n%s", body)
	}
	if !strings.Contains(body, "queries_arrived_total 1") {
		t.Fatalf("plain format missing counter:\n%s", body)
	}
	if ct != "text/plain; charset=utf-8" {
		t.Fatalf("plain content type %q", ct)
	}

	// Prometheus via Accept header (as sent by a real scraper).
	promAccept := "application/openmetrics-text;version=1.0.0,text/plain;version=0.0.4;q=0.5"
	body, ct = get("/metrics", promAccept)
	if ct != telemetry.PrometheusContentType {
		t.Fatalf("prometheus content type %q", ct)
	}
	for _, w := range []string{
		"# TYPE uptime_seconds gauge",
		"# HELP queries_arrived_total ",
		"# TYPE queries_arrived_total counter\nqueries_arrived_total 1\n",
		"# TYPE devices_up gauge\ndevices_up 4\n",
		"# TYPE query_latency_seconds histogram",
		`query_latency_seconds_bucket{family="efficientnet",le="+Inf"} 1`,
		`query_latency_seconds_count{family="efficientnet"} 1`,
	} {
		if !strings.Contains(body, w) {
			t.Fatalf("prometheus format missing %q:\n%s", w, body)
		}
	}

	// Prometheus via explicit query parameter.
	body, ct = get("/metrics?format=prometheus", "")
	if ct != telemetry.PrometheusContentType || !strings.Contains(body, "# TYPE queries_arrived_total counter") {
		t.Fatalf("?format=prometheus not honored: ct=%q\n%s", ct, body)
	}
}

// TestIncidentEndpoints covers the manual-trigger POST and the incident log
// GET, including the bundle file landing in the configured directory.
func TestIncidentEndpoints(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t)
	cfg.Telemetry = telemetry.NewRegistry()
	cfg.Tracer = telemetry.NewTracer(1 << 10)
	cfg.Flight = flightrec.New(flightrec.Config{Dir: dir})
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	s.Infer("efficientnet")

	// Empty log renders as [] — not null — so clients can always range.
	resp, err := http.Get(srv.URL + "/debug/incidents")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := strings.TrimSpace(string(raw)); got != "[]" {
		t.Fatalf("empty incident log = %q, want []", got)
	}

	// GET on the trigger endpoint is refused.
	resp, err = http.Get(srv.URL + "/debug/incident")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /debug/incident status %d, want 405", resp.StatusCode)
	}

	// Manual trigger captures a bundle with the supplied detail.
	resp, err = http.Post(srv.URL+"/debug/incident?detail="+url.QueryEscape("ops drill"), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var b flightrec.Bundle
	if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /debug/incident status %d", resp.StatusCode)
	}
	if b.Reason != "manual" || b.Detail != "ops drill" || b.Seq != 1 {
		t.Fatalf("manual bundle %+v", b)
	}
	if len(b.TraceEvents) == 0 {
		t.Fatal("manual bundle captured no trace events")
	}
	if _, err := os.Stat(filepath.Join(dir, b.ID+".json")); err != nil {
		t.Fatalf("bundle file missing: %v", err)
	}

	// The log now returns the bundle.
	resp, err = http.Get(srv.URL + "/debug/incidents")
	if err != nil {
		t.Fatal(err)
	}
	var list []flightrec.Bundle
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != b.ID {
		t.Fatalf("incident log %+v", list)
	}
}

// TestIncidentEndpointDisabled asserts the POST endpoint reports 501 when
// no flight recorder is configured.
func TestIncidentEndpointDisabled(t *testing.T) {
	s, err := NewServer(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/debug/incident", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status %d, want 501", resp.StatusCode)
	}
}

// TestLivePhaseDecomposition asserts completed queries feed the per-phase
// histograms in live serving.
func TestLivePhaseDecomposition(t *testing.T) {
	cfg := testConfig(t)
	cfg.TSDB = tsdb.NewRecorder(tsdb.Config{})
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 8; i++ {
		s.Infer("efficientnet")
	}
	stats := cfg.TSDB.PhaseStats()
	if len(stats) == 0 {
		t.Fatal("no phase stats after live completions")
	}
	famExec := false
	for _, ps := range stats {
		if ps.Scope == "family" && ps.Phase == "exec" && ps.Count > 0 && ps.MeanUS > 0 {
			famExec = true
		}
	}
	if !famExec {
		t.Fatalf("no populated family exec histogram: %+v", stats)
	}
}
