package serving

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"proteus/internal/allocator"
	"proteus/internal/cluster"
	"proteus/internal/models"
	"proteus/internal/tsdb"
)

func testConfig(t *testing.T) Config {
	t.Helper()
	var fams []models.Family
	for _, f := range models.Zoo() {
		if f.Name == "mobilenet" || f.Name == "efficientnet" {
			fams = append(fams, f)
		}
	}
	return Config{
		Cluster:  cluster.ScaledTestbed(4),
		Families: fams,
		Allocator: allocator.NewMILP(&allocator.MILPOptions{
			TimeLimit: 300 * time.Millisecond, RelGap: 0.01,
		}),
		ControlPeriod: 2 * time.Second,
		InitialDemand: []float64{120, 250}, // efficientnet, mobilenet
		Seed:          3,
	}
}

func TestServeSingleQuery(t *testing.T) {
	s, err := NewServer(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// efficientnet's SLO (~176ms) leaves room for wall-clock jitter when
	// the test machine is loaded; mobilenet's 52ms SLO does not.
	resp := s.Infer("efficientnet")
	if resp.Outcome != OutcomeServed {
		t.Fatalf("outcome %s, want served (latency %.1fms, variant %s)", resp.Outcome, resp.LatencyMS, resp.Variant)
	}
	if resp.Accuracy < 80 || resp.Accuracy > 100 {
		t.Fatalf("accuracy %v", resp.Accuracy)
	}
	if resp.Variant == "" {
		t.Fatal("variant missing")
	}
}

func TestUnknownFamilyDropped(t *testing.T) {
	s, err := NewServer(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if resp := s.Infer("nonexistent"); resp.Outcome != OutcomeDropped {
		t.Fatalf("outcome %s", resp.Outcome)
	}
}

func TestConcurrentLoadMostlyServed(t *testing.T) {
	s, err := NewServer(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 200
	var wg sync.WaitGroup
	outcomes := make([]Outcome, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			fam := "mobilenet"
			if i%3 == 0 {
				fam = "efficientnet"
			}
			outcomes[i] = s.Infer(fam).Outcome
			// Spread arrivals a little.
		}()
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	served := 0
	for _, o := range outcomes {
		if o == OutcomeServed {
			served++
		}
	}
	if served < n*7/10 {
		t.Fatalf("only %d/%d served", served, n)
	}
	sum := s.Summary()
	if sum.Queries != n {
		t.Fatalf("collector saw %d queries, want %d", sum.Queries, n)
	}
	if sum.Served != served {
		t.Fatalf("collector served %d, responses said %d", sum.Served, served)
	}
}

func TestBatchingUnderBurst(t *testing.T) {
	// Fire a burst simultaneously: the worker should batch them (total time
	// far below n * proc(1)).
	s, err := NewServer(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 16
	var wg sync.WaitGroup
	start := time.Now()
	served := make([]bool, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			served[i] = s.Infer("efficientnet").Outcome == OutcomeServed
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	ok := 0
	for _, v := range served {
		if v {
			ok++
		}
	}
	if ok < n/2 {
		t.Fatalf("burst: only %d/%d served", ok, n)
	}
	// Without batching, 16 sequential batch-1 executions would far exceed
	// one SLO; batched execution should finish the burst well under 2s.
	if elapsed > 2*time.Second {
		t.Fatalf("burst took %v; batching ineffective", elapsed)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	s, err := NewServer(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/query?family=mobilenet", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var r Response
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	if r.Family != "mobilenet" || r.Outcome == "" {
		t.Fatalf("response %+v", r)
	}

	// Unknown family → 404.
	resp2, err := http.Post(srv.URL+"/v1/query?family=bogus", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp2.StatusCode)
	}

	// Missing family → 400.
	resp3, err := http.Post(srv.URL+"/v1/query", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp3.StatusCode)
	}

	// GET on query → 405.
	resp4, err := http.Get(srv.URL + "/v1/query?family=mobilenet")
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", resp4.StatusCode)
	}

	// Stats and allocation endpoints.
	for _, path := range []string{"/v1/stats", "/v1/allocation", "/v1/families"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func TestAllocationEndpointShowsHostedModels(t *testing.T) {
	s, err := NewServer(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	alloc := s.Allocation()
	if len(alloc) != 4 {
		t.Fatalf("allocation has %d devices", len(alloc))
	}
	hosted := 0
	for _, v := range alloc {
		if v != "" {
			hosted++
		}
	}
	if hosted == 0 {
		t.Fatal("no models hosted after initial allocation")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewServer(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestCloseIsIdempotentForWork(t *testing.T) {
	s, err := NewServer(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	s.Infer("mobilenet")
	s.Close()
	// After close, workers are gone; this must not hang forever thanks to
	// the routing drop path.
	done := make(chan struct{})
	go func() {
		s.Infer("mobilenet")
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Infer after Close hung")
	}
}

func TestLiveReallocationUnderLoadShift(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock test")
	}
	cfg := testConfig(t)
	cfg.ControlPeriod = time.Second
	cfg.InitialDemand = []float64{5, 5} // provisioned for almost nothing
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	before := s.Allocation()

	// Sustained load well above the initial provisioning for a few control
	// periods; the background controller must re-allocate.
	stop := time.After(3500 * time.Millisecond)
	var wg sync.WaitGroup
loop:
	for {
		select {
		case <-stop:
			break loop
		default:
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Infer("mobilenet")
		}()
		time.Sleep(8 * time.Millisecond) // ~125 QPS
	}
	wg.Wait()
	after := s.Allocation()
	changed := false
	for d, v := range after {
		if before[d] != v {
			changed = true
		}
	}
	if !changed {
		t.Fatalf("no re-allocation despite 25x load shift: before=%v after=%v", before, after)
	}
	sum := s.Summary()
	if sum.Served == 0 {
		t.Fatal("nothing served during the shift")
	}
}

// TestLiveRecorderSamplesDevices covers the wall-clock side of the shared
// tsdb sampler: the server's ticker loop must produce per-device samples
// with sane utilization, and the data path must feed the SLO monitor
// without tripping the race detector.
func TestLiveRecorderSamplesDevices(t *testing.T) {
	cfg := testConfig(t)
	rec := tsdb.NewRecorder(tsdb.Config{SampleInterval: 50 * time.Millisecond})
	cfg.TSDB = rec
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 5; i++ {
		s.Infer("efficientnet")
	}
	deadline := time.Now().Add(3 * time.Second)
	devices := cfg.Cluster.Size()
	var samples []tsdb.Sample
	for time.Now().Before(deadline) {
		samples = rec.Samples()
		if len(samples) >= 2*devices {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if len(samples) < 2*devices {
		t.Fatalf("only %d samples after 3s, want >= %d", len(samples), 2*devices)
	}
	if len(samples)%devices != 0 {
		t.Fatalf("%d samples is not a whole number of %d-device ticks", len(samples), devices)
	}
	for _, smp := range samples {
		if smp.UtilMilli < 0 || smp.UtilMilli > 1000 {
			t.Fatalf("utilization out of range: %+v", smp)
		}
		if smp.Device < 0 || smp.Device >= devices {
			t.Fatalf("device index out of range: %+v", smp)
		}
		if !smp.Up {
			t.Fatalf("healthy device sampled as down: %+v", smp)
		}
	}
}
