package serving

import (
	"sort"
	"time"

	"proteus/internal/allocator"
	"proteus/internal/telemetry"
)

// faultLoop replays the failure schedule on wall-clock timers, mirroring the
// simulation events the same schedule produces in internal/core.
func (s *Server) faultLoop() {
	defer s.wg.Done()
	type action struct {
		at     time.Duration
		device int
		fail   bool
	}
	var acts []action
	for _, ev := range s.cfg.Faults.Events {
		acts = append(acts, action{at: ev.FailAt, device: ev.Device, fail: true})
		if ev.RecoverAt > 0 {
			acts = append(acts, action{at: ev.RecoverAt, device: ev.Device})
		}
	}
	sort.SliceStable(acts, func(i, j int) bool { return acts[i].at < acts[j].at })
	for _, a := range acts {
		if delay := a.at - s.now(); delay > 0 {
			timer := time.NewTimer(delay)
			select {
			case <-timer.C:
			case <-s.stop:
				timer.Stop()
				return
			}
		}
		if a.fail {
			s.failDevice(a.device)
		} else {
			s.recoverDevice(a.device)
		}
	}
}

// failDevice kills device d: its worker stops executing, queued and
// in-flight queries are re-dispatched to surviving replicas, and the control
// loop is asked for a failure re-allocation.
func (s *Server) failDevice(d int) {
	if d < 0 || d >= len(s.workers) {
		return
	}
	now := s.now()
	s.mu.Lock()
	if s.down[d] {
		s.mu.Unlock()
		return
	}
	s.down[d] = true
	s.collector.DeviceFailed(now)
	up := int64(0)
	for _, dn := range s.down {
		if !dn {
			up++
		}
	}
	s.mu.Unlock()
	s.tc.DevicesUp.Set(up)
	stranded := s.workers[d].fail()
	s.flight.Trigger(now, "device_failure", s.cfg.Cluster.Device(d).Name, -1, d)
	s.rebuildTable()
	for _, q := range stranded {
		s.redispatch(q, telemetry.CauseDeviceFailure)
	}
	s.requestRealloc("failure")
}

// recoverDevice brings device d back with an empty memory: it reloads
// whatever the current plan hosts on it (usually nothing) and the control
// loop re-allocates to put it back to work.
func (s *Server) recoverDevice(d int) {
	if d < 0 || d >= len(s.workers) {
		return
	}
	now := s.now()
	s.mu.Lock()
	if !s.down[d] {
		s.mu.Unlock()
		return
	}
	s.down[d] = false
	s.collector.DeviceRecovered(now)
	up := int64(0)
	for _, dn := range s.down {
		if !dn {
			up++
		}
	}
	var ref *allocator.VariantRef
	if d < len(s.plan.Hosted) {
		ref = s.plan.Hosted[d]
	}
	s.mu.Unlock()
	s.tc.DevicesUp.Set(up)
	s.workers[d].recover(ref, s.cfg.ModelLoadDelay)
	s.rebuildTable()
	s.requestRealloc("recovery")
}

// redispatch returns a stranded query to the router: dropped if it already
// burned its re-route budget (Config.MaxRetries) or cannot meet its
// deadline, re-routed to a surviving replica otherwise. cause records why
// the query was stranded (device failure, stale route, mid-flight loss) on
// the requeue and retry trace events, so attribution can name the penalty.
func (s *Server) redispatch(q liveQuery, cause telemetry.Cause) {
	now := s.now()
	s.tc.Requeued.Inc()
	if s.tracer != nil {
		s.tracer.RecordCtx(now, telemetry.EvRequeued, q.id, q.family, -1, -1,
			s.traceCtx(q.family, cause))
	}
	s.mu.Lock()
	s.collector.Requeued(now, q.family)
	if q.retries >= s.cfg.MaxRetries {
		s.mu.Unlock()
		s.recordDrop(q, telemetry.CauseRetryBudget)
		return
	}
	if q.deadline <= now {
		s.mu.Unlock()
		s.recordDrop(q, telemetry.CauseExpired)
		return
	}
	q.retries++
	s.collector.Retried(now, q.family)
	s.mu.Unlock()
	s.tc.Retried.Inc()
	if s.tracer != nil {
		s.tracer.RecordCtx(now, telemetry.EvRetried, q.id, q.family, -1, -1,
			s.traceCtx(q.family, cause))
	}
	s.dispatch(q)
}
