package serving

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"proteus/internal/overload"
	"proteus/internal/telemetry"
	"proteus/internal/tsdb"
)

// TestMaxRetriesZeroDropsStranded pins the explicit-zero re-route budget:
// a stranded query must be dropped on its first redispatch, never retried.
func TestMaxRetriesZeroDropsStranded(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxRetries = -1 // the config's explicit-zero encoding
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	lq := liveQuery{
		id:       1,
		family:   0,
		arrival:  s.now(),
		deadline: s.now() + time.Minute,
		done:     make(chan Response, 1),
	}
	s.redispatch(lq, telemetry.CauseDeviceFailure)
	resp := <-lq.done
	if resp.Outcome != OutcomeDropped {
		t.Fatalf("outcome %s, want dropped (budget 0)", resp.Outcome)
	}
	sum := s.Summary()
	if sum.Requeued != 1 || sum.Retried != 0 {
		t.Fatalf("requeued=%d retried=%d, want 1/0", sum.Requeued, sum.Retried)
	}
}

// TestMaxRetriesTwoAllowsSecondRetry pins the raised budget: a query on its
// second strand (retries=1) is still re-routed when MaxRetries is 2, and a
// query that already burned both retries is dropped.
func TestMaxRetriesTwoAllowsSecondRetry(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxRetries = 2
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// A short deadline keeps the worker's non-work-conserving batch wait
	// (which can stretch to the deadline) from stalling the test.
	mk := func(id uint64, retries int) liveQuery {
		return liveQuery{
			id:       id,
			family:   0,
			retries:  retries,
			arrival:  s.now(),
			deadline: s.now() + 2*time.Second,
			done:     make(chan Response, 1),
		}
	}
	first := mk(1, 1)
	s.redispatch(first, telemetry.CauseDeviceFailure)
	if resp := <-first.done; resp.Outcome == "" {
		t.Fatal("retried query got no response")
	}
	if sum := s.Summary(); sum.Retried != 1 {
		t.Fatalf("retried=%d, want 1 (budget 2, one retry used)", sum.Retried)
	}

	spent := mk(2, 2)
	s.redispatch(spent, telemetry.CauseDeviceFailure)
	if resp := <-spent.done; resp.Outcome != OutcomeDropped {
		t.Fatalf("outcome %s, want dropped (budget exhausted)", resp.Outcome)
	}
	if sum := s.Summary(); sum.Retried != 1 {
		t.Fatalf("retried=%d after exhausted redispatch, want still 1", sum.Retried)
	}
}

// TestHealthzReportsOverloadState drives an emergency-degradation episode
// into the guard and checks /healthz exposes it: status flips to "degraded"
// with every device up (degraded by overload, not by a plan or failures),
// and the episode carries its family, level and reason.
func TestHealthzReportsOverloadState(t *testing.T) {
	cfg := testConfig(t)
	cfg.ControlPeriod = time.Minute // keep the test's synthetic guard plan
	cfg.TSDB = tsdb.NewRecorder(tsdb.Config{})
	cfg.Overload = &overload.Config{Enabled: true}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	web := httptest.NewServer(s.Handler())
	defer web.Close()

	var h Health
	get := func() {
		t.Helper()
		resp, err := http.Get(web.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		h = Health{}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
	}

	get()
	if !h.Overload.Enabled {
		t.Fatal("healthz must report the guard as enabled")
	}
	if len(h.Overload.Devices) != cfg.Cluster.Size() {
		t.Fatalf("%d device signals, want %d", len(h.Overload.Devices), cfg.Cluster.Size())
	}
	if h.Status != "ok" || len(h.Overload.Episodes) != 0 {
		t.Fatalf("pre-episode health %q with %d episodes, want ok/0", h.Status, len(h.Overload.Episodes))
	}

	// Force a two-tier plan for family 0 and start a burn: the guard must
	// open a degradation episode without any device being down.
	now := s.now()
	ms := time.Millisecond
	s.guard.SetPlan(now, []overload.DeviceProfile{
		{Family: 0, Accuracy: 80, MaxBatch: 4, Lat1: 10 * ms, LatMax: 20 * ms, SLO: 100 * ms},
		{Family: 0, Accuracy: 60, MaxBatch: 4, Lat1: 5 * ms, LatMax: 10 * ms, SLO: 100 * ms},
		{Family: -1},
		{Family: -1},
	})
	if changes := s.guard.OnBurn(now, 0, true); len(changes) == 0 {
		t.Fatal("burn start produced no degradation")
	}

	get()
	if h.Up != h.Total {
		t.Fatalf("%d/%d devices up — the episode must not come from failures", h.Up, h.Total)
	}
	if h.Status != "degraded" {
		t.Fatalf("status %q during overload episode, want degraded", h.Status)
	}
	if len(h.Overload.Episodes) != 1 {
		t.Fatalf("%d episodes, want 1", len(h.Overload.Episodes))
	}
	ep := h.Overload.Episodes[0]
	if ep.Family != 0 || ep.Level != 1 || ep.Reason != "slo_burn" {
		t.Fatalf("episode %+v, want family 0 level 1 reason slo_burn", ep)
	}
}

// TestNoGoroutineLeaks runs the full lifecycle — start, serve under the
// guard, drain, close — and requires the goroutine count to settle back to
// its pre-server baseline.
func TestNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	cfg := testConfig(t)
	cfg.TSDB = tsdb.NewRecorder(tsdb.Config{})
	cfg.Overload = &overload.Config{Enabled: true}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		s.Infer("efficientnet")
	}
	if !s.Drain(5 * time.Second) {
		t.Fatalf("drain timed out with %d in flight", s.Inflight())
	}
	s.Close() // idempotent second close

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: %d before, %d after settle\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
