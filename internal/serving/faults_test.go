package serving

import (
	"sync"
	"testing"
	"time"

	"proteus/internal/cluster"
)

// TestLiveFailureRedispatch kills a quarter of the live fleet while load is
// in flight: every Infer call must still return exactly once (served, late
// or dropped — no hangs), conservation must hold, and the failure counters
// must show the stranded queries being re-dispatched.
func TestLiveFailureRedispatch(t *testing.T) {
	cfg := testConfig(t)
	cfg.Faults = cluster.KillFraction(cfg.Cluster, 0.25, 600*time.Millisecond, 2500*time.Millisecond)
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 300
	var wg sync.WaitGroup
	outcomes := make([]Outcome, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Spread arrivals across ~1.5s so queries straddle the failure.
			time.Sleep(time.Duration(i) * 5 * time.Millisecond)
			outcomes[i] = s.Infer("efficientnet").Outcome
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Infer calls hung across the failure")
	}

	var served, late, dropped int
	for i, o := range outcomes {
		switch o {
		case OutcomeServed:
			served++
		case OutcomeLate:
			late++
		case OutcomeDropped:
			dropped++
		default:
			t.Fatalf("query %d got no outcome: %q", i, o)
		}
	}
	sum := s.Summary()
	if sum.Queries != n {
		t.Fatalf("collector saw %d arrivals, want %d", sum.Queries, n)
	}
	if sum.Served+sum.Late+sum.Dropped != sum.Queries {
		t.Fatalf("conservation violated: %d+%d+%d != %d",
			sum.Served, sum.Late, sum.Dropped, sum.Queries)
	}
	if sum.Served != served || sum.Late != late || sum.Dropped != dropped {
		t.Fatalf("collector (%d/%d/%d) disagrees with responses (%d/%d/%d)",
			sum.Served, sum.Late, sum.Dropped, served, late, dropped)
	}
	if sum.Failures != 1 {
		t.Fatalf("failures=%d, want 1 (25%% of 4 devices)", sum.Failures)
	}
	if served == 0 {
		t.Fatal("the surviving devices must keep serving")
	}
}

// TestLiveRecoveryRestoresDevice lets the failed device come back and checks
// the recovery is recorded and serving continues afterwards.
func TestLiveRecoveryRestoresDevice(t *testing.T) {
	cfg := testConfig(t)
	cfg.Faults = cluster.KillFraction(cfg.Cluster, 0.25, 200*time.Millisecond, 700*time.Millisecond)
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	deadline := time.After(10 * time.Second)
	for {
		if sum := s.Summary(); sum.Failures == 1 && sum.Recoveries == 1 {
			break
		}
		select {
		case <-deadline:
			sum := s.Summary()
			t.Fatalf("failure/recovery not observed: failures=%d recoveries=%d",
				sum.Failures, sum.Recoveries)
		case <-time.After(50 * time.Millisecond):
		}
	}
	if resp := s.Infer("efficientnet"); resp.Outcome == "" {
		t.Fatal("no response after recovery")
	}
}

// TestLiveFaultConfigValidation pins the config-path validation.
func TestLiveFaultConfigValidation(t *testing.T) {
	cfg := testConfig(t)
	cfg.Faults = &cluster.FailureSchedule{Events: []cluster.FailureEvent{
		{Device: 42, FailAt: time.Second},
	}}
	if _, err := NewServer(cfg); err == nil {
		t.Fatal("out-of-range fault device must fail config validation")
	}
}
