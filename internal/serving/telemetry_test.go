package serving

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"proteus/internal/controlplane"
	"proteus/internal/telemetry"
)

// TestIntrospectionEndpoints covers the observability surface: /metrics,
// /healthz, /debug/allocations, and the pprof index.
func TestIntrospectionEndpoints(t *testing.T) {
	cfg := testConfig(t)
	cfg.Tracer = telemetry.NewTracer(1 << 12)
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Generate one query so the counters have something to show.
	s.Infer("efficientnet")

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}

	resp, body := get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	for _, want := range []string{"uptime_seconds ", "queries_arrived_total 1", "devices_up 4", "model_loads_total "} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	resp, body = get("/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz body: %v\n%s", err, body)
	}
	if h.Status != "ok" || h.Up != 4 || h.Total != 4 || len(h.Devices) != 4 {
		t.Fatalf("/healthz report: %+v", h)
	}

	resp, body = get("/debug/allocations")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/allocations status %d", resp.StatusCode)
	}
	var recs []controlplane.PlanRecord
	if err := json.Unmarshal([]byte(body), &recs); err != nil {
		t.Fatalf("/debug/allocations body: %v\n%s", err, body)
	}
	if len(recs) == 0 {
		t.Fatal("audit log empty after initial allocation")
	}
	first := recs[0]
	if first.Solver == "" || first.Stage == "" || first.Trigger == "" {
		t.Fatalf("audit record missing provenance: %+v", first)
	}
	if first.Stats.SolverTime < 0 {
		t.Fatalf("negative solver time: %+v", first.Stats)
	}
	if first.Loads == 0 {
		t.Fatalf("initial plan loaded no models: %+v", first)
	}

	resp, _ = get("/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", resp.StatusCode)
	}

	// The lifecycle tracer saw the query from arrival to completion.
	events := cfg.Tracer.Events()
	if len(events) == 0 {
		t.Fatal("tracer recorded nothing")
	}
	seen := map[telemetry.EventKind]bool{}
	for _, ev := range events {
		seen[ev.Kind] = true
	}
	for _, kind := range []telemetry.EventKind{telemetry.EvArrival, telemetry.EvRoute, telemetry.EvEnqueue} {
		if !seen[kind] {
			t.Fatalf("tracer missing %s events (saw %v)", kind, seen)
		}
	}
	if !seen[telemetry.EvDone] && !seen[telemetry.EvLate] && !seen[telemetry.EvDropped] {
		t.Fatalf("tracer missing a completion event (saw %v)", seen)
	}
}

// TestHealthzDegraded verifies the health mask tracks device failures.
func TestHealthzDegraded(t *testing.T) {
	s, err := NewServer(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	s.failDevice(2)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d (degraded is still serving)", resp.StatusCode)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || h.Up != 3 || h.Devices[2].Up {
		t.Fatalf("health after failure: %+v", h)
	}
}
