// Package serving is the live cluster mode of Proteus: the same control
// plane and data path as the simulator (internal/core), but running on
// wall-clock time with real concurrency — an HTTP front end per §3's load
// balancers, goroutine workers whose "hardware executor" sleeps for the
// profiled batch latency (the model-execution substitution documented in
// DESIGN.md), and a background controller goroutine re-allocating
// periodically. The paper's §6.2 reports its simulator matching this kind
// of deployment within ~1%; BenchmarkSimVsLive repeats that check here.
package serving

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	rpprof "runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"proteus/internal/allocator"
	"proteus/internal/attrib"
	"proteus/internal/batching"
	"proteus/internal/buildinfo"
	"proteus/internal/cluster"
	"proteus/internal/controlplane"
	"proteus/internal/flightrec"
	"proteus/internal/metrics"
	"proteus/internal/models"
	"proteus/internal/numeric"
	"proteus/internal/overload"
	"proteus/internal/profiles"
	"proteus/internal/router"
	"proteus/internal/telemetry"
	"proteus/internal/tsdb"
)

// Config describes a live serving cluster.
type Config struct {
	Cluster       *cluster.Cluster
	Families      []models.Family
	SLOMultiplier float64
	Allocator     allocator.Allocator
	Batching      batching.Factory
	ControlPeriod time.Duration
	Headroom      float64
	// ModelLoadDelay is how long a worker is unavailable when switching
	// variants. Default 500ms (kept short for live experiments).
	ModelLoadDelay time.Duration
	// ExecNoiseFrac adds multiplicative Gaussian noise to executed batch
	// latencies, mimicking real hardware variance. Default 0.02.
	ExecNoiseFrac float64
	// MetricsInterval is the collector bin width. Default 1s.
	MetricsInterval time.Duration
	// InitialDemand pre-provisions the cluster for the expected per-family
	// QPS before any statistics exist (all zeros by default: the system
	// starts minimal and scales on the first control period).
	InitialDemand []float64
	// Faults injects device failures and recoveries on wall-clock timers —
	// the same schedule type the simulator replays as events, so failure
	// experiments run identically in both modes.
	Faults *cluster.FailureSchedule
	// Telemetry is the counters/gauges registry backing the /metrics
	// endpoint. Defaults to a fresh registry, so a live server always
	// exports metrics.
	Telemetry *telemetry.Registry
	// Tracer, when non-nil, records per-query lifecycle events with
	// wall-clock timestamps (durations since server start).
	Tracer *telemetry.Tracer
	// TSDB, when non-nil, records per-device time-series samples off a
	// wall-clock ticker and runs the sliding-window SLO burn monitor —
	// the same recorder the simulator drives off its virtual clock.
	TSDB *tsdb.Recorder
	// Flight, when non-nil, is the black-box flight recorder: bounded rings
	// of recent state refreshed on the sampling tick, snapshotted into
	// incident bundles on SLO burns, overload degradations, allocator
	// fallbacks, device failures and POST /debug/incident. Build it with
	// Live set so bundles include heap/GC/goroutine snapshots.
	Flight *flightrec.Recorder
	// PlanHistory bounds the controller's in-memory decision audit ring
	// (records beyond the bound are dropped oldest-first). Default 256.
	PlanHistory int
	// SLOBurnRealloc lets an SLO burn start trigger an early re-allocation
	// (subject to the controller cooldown). Off by default.
	SLOBurnRealloc bool
	// Overload, when non-nil and enabled, activates the fast-path overload
	// guard: deadline admission control, high/low-water mailbox
	// backpressure, and burn-triggered emergency accuracy degradation.
	// Requires TSDB for the degradation path (the burn monitor triggers it).
	Overload *overload.Config
	// MaxRetries is the per-query re-route budget after a device failure
	// strands it (0 drops stranded queries immediately, negative values are
	// treated as 0). Default 1, preserving the single re-dispatch.
	MaxRetries int
	Seed       uint64
}

func (c Config) withDefaults() (Config, error) {
	if c.Cluster == nil || c.Cluster.Size() == 0 {
		return c, fmt.Errorf("serving: config needs a cluster")
	}
	if len(c.Families) == 0 {
		return c, fmt.Errorf("serving: config needs families")
	}
	if c.Allocator == nil {
		return c, fmt.Errorf("serving: config needs an allocator")
	}
	if c.SLOMultiplier <= 0 {
		c.SLOMultiplier = 2
	}
	if c.Batching == nil {
		c.Batching = func() batching.Policy { return batching.NewAccScale() }
	}
	if c.ControlPeriod <= 0 {
		c.ControlPeriod = 10 * time.Second
	}
	if c.Headroom <= 0 {
		c.Headroom = 1.05
	}
	if c.ModelLoadDelay <= 0 {
		c.ModelLoadDelay = 500 * time.Millisecond
	}
	if c.ExecNoiseFrac < 0 {
		c.ExecNoiseFrac = 0
	} else if c.ExecNoiseFrac == 0 {
		c.ExecNoiseFrac = 0.02
	}
	if c.MetricsInterval <= 0 {
		c.MetricsInterval = time.Second
	}
	if c.Telemetry == nil {
		c.Telemetry = telemetry.NewRegistry()
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 1
	}
	if err := c.Faults.Validate(c.Cluster.Size()); err != nil {
		return c, err
	}
	return c, nil
}

// Outcome is a query's fate in a response.
type Outcome string

// Query outcomes.
const (
	OutcomeServed  Outcome = "served"
	OutcomeLate    Outcome = "late"
	OutcomeDropped Outcome = "dropped"
)

// Response is the JSON reply of the inference endpoint.
type Response struct {
	Outcome   Outcome `json:"outcome"`
	Variant   string  `json:"variant,omitempty"`
	Accuracy  float64 `json:"accuracy,omitempty"`
	LatencyMS float64 `json:"latency_ms"`
	Family    string  `json:"family"`
}

// Server is the assembled live cluster.
type Server struct {
	cfg   Config
	slos  []time.Duration
	start time.Time

	mu        sync.Mutex
	rng       *numeric.RNG
	table     *router.Table
	guard     *overload.Guard
	plan      *allocator.Allocation
	stats     *controlplane.Stats
	collector *metrics.Collector
	byName    map[string]int
	// down[d] marks device d as failed (guarded by mu).
	down []bool

	// controller is only ever touched from the control loop goroutine (and
	// NewServer before it starts); fault handlers reach it through reallocc.
	controller *controlplane.Controller
	workers    []*liveWorker

	// reallocc carries failure/recovery re-allocation triggers into the
	// control loop, keeping the controller single-goroutine.
	reallocc chan string

	// Telemetry: the registry backs /metrics; the tracer (possibly nil) and
	// counter bundles instrument the data path. nextID/nextBatch assign
	// trace identities without taking mu.
	registry *telemetry.Registry
	tracer   *telemetry.Tracer
	recorder *tsdb.Recorder
	flight   *flightrec.Recorder
	// pendingBurns defers burn-start incident bundles until the sampling
	// tick that detected them refreshes the flight recorder. Only touched
	// on the sampleLoop goroutine (burn transitions fire inside
	// Recorder.Sample), so it needs no lock.
	pendingBurns []tsdb.BurnEvent
	tc           telemetry.SystemCounters
	rc           telemetry.RouterCounters
	nextID       atomic.Uint64
	nextBatch    atomic.Int64
	// planSeq is the audit-log sequence number of the plan currently in
	// force, stamped onto trace events for latency attribution. Written on
	// the control loop, read from data-path goroutines, hence atomic.
	planSeq atomic.Int32

	// draining refuses new queries while in-flight ones (counted by
	// inflight) finish — the graceful-shutdown half of overload protection.
	draining atomic.Bool
	inflight atomic.Int64

	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewServer assembles and starts the cluster: the initial allocation is
// solved synchronously (for idle demand), workers spin up, and the
// controller loop begins.
func NewServer(cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		start:    time.Now(),
		rng:      numeric.NewRNG(cfg.Seed),
		byName:   make(map[string]int),
		down:     make([]bool, cfg.Cluster.Size()),
		reallocc: make(chan string, 8),
		registry: cfg.Telemetry,
		tracer:   cfg.Tracer,
		tc:       telemetry.NewSystemCounters(cfg.Telemetry),
		rc:       telemetry.NewRouterCounters(cfg.Telemetry),
		stop:     make(chan struct{}),
	}
	for q, f := range cfg.Families {
		s.byName[f.Name] = q
		s.slos = append(s.slos, profiles.FamilySLO(f, cfg.SLOMultiplier))
	}
	// Ring-wrap evictions surface as trace_dropped_total so truncated
	// traces are visible to attribution (both arguments are nil-safe).
	cfg.Tracer.SetDropCounter(cfg.Telemetry.Counter("trace_dropped_total"))
	s.collector = metrics.NewCollector(cfg.MetricsInterval, models.FamilyNames(cfg.Families))
	s.stats = controlplane.NewStats(len(cfg.Families), int(cfg.ControlPeriod/time.Second), 1.5)
	s.controller = controlplane.NewController(
		cfg.Allocator, cfg.Cluster, cfg.Families, s.slos, cfg.ControlPeriod, cfg.ControlPeriod/3)
	s.controller.Instrument(cfg.Telemetry)
	s.controller.SetHistoryLimit(cfg.PlanHistory)
	s.recorder = cfg.TSDB
	s.recorder.Init(len(cfg.Families), s.onBurn)
	s.flight = cfg.Flight
	s.flight.Init(flightrec.Sources{
		Tracer:   cfg.Tracer,
		Registry: cfg.Telemetry,
		TSDB:     cfg.TSDB,
		Plans:    s.controller.History,
	})
	if s.flight != nil {
		// Any plan the primary allocator did not produce is an anomaly worth
		// a bundle: the fallback chain stepped in or the solve failed. The
		// hook runs on the control loop after the history lock is released.
		s.controller.SetRecordHook(func(rec controlplane.PlanRecord) {
			if rec.Stage == "primary" {
				return
			}
			detail := fmt.Sprintf("stage=%s solver=%s", rec.Stage, rec.Solver)
			if rec.Err != "" {
				detail += " err=" + rec.Err
			}
			s.flight.Trigger(rec.At, "alloc_fallback", detail, -1, -1)
		})
	}
	if cfg.Overload != nil {
		s.guard = overload.New(*cfg.Overload, len(cfg.Families), cfg.Cluster.Size())
		s.guard.Instrument(cfg.Telemetry)
	}
	s.tc.DevicesUp.Set(int64(cfg.Cluster.Size()))

	for _, dev := range cfg.Cluster.Devices() {
		w := newLiveWorker(s, dev, cfg.Batching())
		s.workers = append(s.workers, w)
	}

	initial := make([]float64, len(cfg.Families))
	for q := range initial {
		if q < len(cfg.InitialDemand) {
			initial[q] = cfg.InitialDemand[q] * cfg.Headroom
		}
	}
	plan, err := s.controller.Reallocate(0, initial, "initial")
	if err != nil {
		return nil, fmt.Errorf("serving: initial allocation: %w", err)
	}
	s.planSeq.Store(int32(s.controller.LastPlanSeq()))
	s.applyPlan(plan, true)

	for _, w := range s.workers {
		s.wg.Add(1)
		go w.loop(&s.wg)
	}
	s.wg.Add(1)
	go s.controlLoop()
	if s.recorder != nil || s.flight != nil {
		s.wg.Add(1)
		go s.sampleLoop()
	}
	if s.guard != nil {
		s.wg.Add(1)
		go s.overloadLoop()
	}
	if !cfg.Faults.Empty() {
		s.wg.Add(1)
		go s.faultLoop()
	}
	return s, nil
}

// Close stops the workers and the controller loop. Safe to call more than
// once (Drain ends in a Close, and callers often defer another).
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.stop)
		for _, w := range s.workers {
			w.shutdown()
		}
		s.wg.Wait()
	})
}

// Drain performs a graceful shutdown: new queries are refused immediately
// (Infer returns a drop), in-flight queries keep executing, and once none
// remain — or the timeout expires — the server stops. Returns true when
// every in-flight query finished within the bound.
func (s *Server) Drain(timeout time.Duration) bool {
	s.draining.Store(true)
	deadline := time.Now().Add(timeout)
	for s.inflight.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	drained := s.inflight.Load() == 0
	s.Close()
	return drained
}

// Draining reports whether the server is refusing new queries.
func (s *Server) Draining() bool { return s.draining.Load() }

// Inflight returns the number of queries currently inside Infer.
func (s *Server) Inflight() int64 { return s.inflight.Load() }

// now returns the elapsed run time (all internal timestamps are durations
// since server start, matching the simulator's time base).
func (s *Server) now() time.Duration { return time.Since(s.start) }

func (s *Server) controlLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.ControlPeriod)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.maybeReallocate("periodic")
		case trig := <-s.reallocc:
			s.maybeReallocate(trig)
		}
	}
}

// sampleLoop drives the tsdb recorder off a wall-clock ticker: the same
// per-device snapshot the simulator takes on its virtual clock. The flight
// recorder's ring refresh rides the same tick, after the sample so it sees
// the fresh point.
func (s *Server) sampleLoop() {
	defer s.wg.Done()
	interval := s.recorder.SampleInterval()
	if interval <= 0 {
		// Flight recorder without a tsdb recorder: tick at the default
		// sampling cadence.
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			now := s.now()
			if s.recorder != nil {
				states := make([]tsdb.DeviceState, len(s.workers))
				for d, w := range s.workers {
					states[d] = w.deviceState()
					states[d].SatMilli, states[d].Pressured = s.guard.DeviceSignal(d)
				}
				s.recorder.Sample(now, states)
			}
			s.flight.Tick(now)
			// Fire burn-start bundles the sample just detected, now that the
			// tick has pulled the burn's own second into the rings.
			for _, ev := range s.pendingBurns {
				s.flight.Trigger(ev.At, "slo_burn",
					fmt.Sprintf("family=%d short=%.2f long=%.2f", ev.Family, ev.ShortBurn, ev.LongBurn),
					ev.Family, -1)
			}
			s.pendingBurns = s.pendingBurns[:0]
		}
	}
}

// onBurn receives SLO burn-state transitions from the tsdb recorder: they
// enter the lifecycle trace and the controller's audit log, and — when
// enabled — a burn start nudges the control loop. Runs under the recorder's
// lock, so it must not call back into the recorder; requestRealloc is a
// non-blocking channel send.
func (s *Server) onBurn(ev tsdb.BurnEvent) {
	kind := telemetry.EvSLOBurnStart
	if !ev.Start {
		kind = telemetry.EvSLOBurnEnd
	}
	s.tracer.Record(ev.At, kind, 0, ev.Family, -1, -1)
	s.controller.NoteBurn(controlplane.SLOBurnRecord{
		At:        ev.At,
		Family:    ev.Family,
		Start:     ev.Start,
		ShortBurn: ev.ShortBurn,
		LongBurn:  ev.LongBurn,
	})
	// Emergency accuracy degradation reacts to the burn edge immediately —
	// never waiting for the next control period. The guard's lock is a leaf,
	// so calling it under the recorder's lock is safe.
	s.applyOverloadChanges(s.guard.OnBurn(ev.At, ev.Family, ev.Start))
	// A burn's leading edge snapshots an incident bundle — deferred until
	// the sampling tick that detected it has refreshed the flight
	// recorder's rings (burn transitions only fire inside Recorder.Sample,
	// so this always runs on the sampleLoop goroutine).
	if ev.Start && s.flight != nil {
		s.pendingBurns = append(s.pendingBurns, ev)
	}
	if ev.Start && s.cfg.SLOBurnRealloc {
		s.requestRealloc("slo_burn")
	}
}

// overloadLoop advances the overload guard's time-based edges (escalation,
// deferred degrades, restores) at the same 1s cadence the simulator
// schedules on its virtual clock.
func (s *Server) overloadLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.applyOverloadChanges(s.guard.Tick(s.now()))
		}
	}
}

// applyOverloadChanges publishes the guard's degradation-ladder transitions:
// tracer events (degrade_start carries the new level in the batch field) and
// decision-audit records attached to the next PlanRecord.
func (s *Server) applyOverloadChanges(changes []overload.Change) {
	for _, ch := range changes {
		kind := telemetry.EvDegradeStart
		if ch.Kind == overload.Restore {
			kind = telemetry.EvDegradeEnd
		}
		s.tracer.RecordCtx(ch.At, kind, 0, ch.Family, -1, ch.Level,
			telemetry.Ctx{Plan: s.planSeq.Load(), Episode: int32(ch.Episode)})
		s.controller.NoteOverload(controlplane.OverloadRecord{
			At:      ch.At,
			Family:  ch.Family,
			Kind:    string(ch.Kind),
			Level:   ch.Level,
			Episode: ch.Episode,
			Reason:  ch.Reason,
		})
		// A degradation opening is the overload incident's leading edge;
		// escalations and restores are just episode progress.
		if ch.Kind == overload.Degrade {
			s.flight.Trigger(ch.At, "overload",
				fmt.Sprintf("family=%d level=%d reason=%s", ch.Family, ch.Level, ch.Reason),
				ch.Family, -1)
		}
	}
}

// requestRealloc asks the control loop for a triggered re-allocation. A full
// channel means one is already queued; the trigger coalesces into it.
func (s *Server) requestRealloc(trigger string) {
	select {
	case s.reallocc <- trigger:
	default:
	}
}

// maybeReallocate runs one controller invocation on the control loop
// goroutine. Periodic ticks are suppressed when demand has not moved;
// failure/recovery triggers honor the cooldown by re-arming themselves at
// its boundary rather than being dropped.
func (s *Server) maybeReallocate(trigger string) {
	if !s.controller.Dynamic() {
		return
	}
	now := s.now()
	s.mu.Lock()
	demand := s.stats.Estimates(now)
	downCopy := append([]bool(nil), s.down...)
	s.mu.Unlock()
	if trigger == "periodic" && !s.controller.DemandChanged(demand, 0.1) {
		return
	}
	if trigger != "periodic" {
		if rem := s.controller.CooldownRemaining(now); rem > 0 {
			trig := trigger
			time.AfterFunc(rem, func() { s.requestRealloc(trig) })
			return
		}
	}
	for q := range demand {
		demand[q] *= s.cfg.Headroom
	}
	s.controller.SetCluster(s.cfg.Cluster.WithHealth(downCopy))
	plan, err := s.controller.Reallocate(now, demand, trigger)
	if err != nil {
		return // keep serving on the old plan
	}
	s.planSeq.Store(int32(s.controller.LastPlanSeq()))
	s.applyPlan(plan, false)
	if trigger == "failure" {
		s.mu.Lock()
		s.collector.FailureHandled(s.now())
		s.mu.Unlock()
	}
}

// applyPlan installs a new allocation on the live workers.
func (s *Server) applyPlan(plan *allocator.Allocation, initial bool) {
	s.tc.DemandScaleMilli.Set(int64(plan.DemandScale * 1000))
	s.mu.Lock()
	s.plan = plan
	// Plans are produced for this server's own family set, so the shapes
	// always agree; a mismatch would only indicate an internal bug and the
	// plan is still applied.
	_ = s.stats.SetPlanned(plan.ServedQPS) //lint:allow errcheck length mismatch impossible for self-produced plans; error would only flag an internal bug and the plan applies regardless
	downCopy := append([]bool(nil), s.down...)
	s.mu.Unlock()
	var rerouted []liveQuery
	for d, w := range s.workers {
		if d < len(downCopy) && downCopy[d] {
			// Failed devices host nothing; recovery reloads from the
			// then-current plan.
			continue
		}
		if plan.HostedID(d) == w.hostedID() {
			continue
		}
		delay := s.cfg.ModelLoadDelay
		if initial {
			delay = 0
		}
		rerouted = append(rerouted, w.setHosted(plan.Hosted[d], delay)...)
	}
	s.rebuildTable()
	for _, q := range rerouted {
		s.dispatch(q)
	}
}

// rebuildTable rebuilds the routing table from the current plan, excluding
// workers that are still loading.
func (s *Server) rebuildTable() {
	s.mu.Lock()
	now := s.now()
	masked := allocator.Allocation{
		Hosted:  s.plan.Hosted,
		Routing: make([][]float64, len(s.plan.Routing)),
	}
	admit := make([]float64, len(s.plan.Routing))
	for q, row := range s.plan.Routing {
		masked.Routing[q] = make([]float64, len(row))
		for d, y := range row {
			if y <= 0 {
				continue
			}
			admit[q] += y
			if (d < len(s.down) && s.down[d]) || s.workers[d].loadingPast(now) {
				continue
			}
			masked.Routing[q][d] = y
		}
	}
	s.table = router.BuildTable(&masked, len(s.cfg.Families))
	s.table.SetCounters(s.rc)
	s.table.SetAdmission(admit)
	s.mu.Unlock()
	// Guard profiles refresh outside s.mu: guardProfile takes each worker's
	// lock, and s.mu must not nest around w.mu.
	s.syncGuardPlan()
}

// syncGuardPlan refreshes the overload guard's per-device profiles from the
// workers' current hosting (rebuildTable's call sites cover every hosting
// change: plan application, load completion, failure, recovery).
func (s *Server) syncGuardPlan() {
	if s.guard == nil {
		return
	}
	profs := make([]overload.DeviceProfile, len(s.workers))
	for d, w := range s.workers {
		profs[d] = w.guardProfile()
	}
	s.guard.SetPlan(s.now(), profs)
}

// pickDevice routes one query under the server lock, consulting the
// overload guard when enabled. Returns -1 when the query should be dropped
// (the cause distinguishes no serving device / admission-fraction shed from
// — with the guard on — a deadline admission rejection, where the query
// provably cannot meet its SLO behind the picked device's backlog).
func (s *Server) pickDevice(now time.Duration, q liveQuery) (int, telemetry.Cause) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.guard == nil {
		d := s.table.Pick(q.family, s.rng)
		if d < 0 {
			return -1, telemetry.CauseNoRoute
		}
		return d, telemetry.CauseNone
	}
	d := s.table.PickExcluding(q.family, s.rng, func(dev int) bool {
		return s.guard.Banned(q.family, dev)
	})
	//lint:allow lockorder established order Server.mu → Guard.mu (also liveWorker.mu → Guard.mu); Guard methods are leaf locks that never call back into serving
	if d >= 0 && !s.guard.Admit(now, d, q.deadline) {
		return -1, telemetry.CauseShedAdmission
	}
	if d < 0 {
		return -1, telemetry.CauseNoRoute
	}
	return d, telemetry.CauseNone
}

// traceCtx assembles the causal context stamped onto trace events: the plan
// in force, the family's active degradation episode, and the event's cause.
// Call only when the tracer is non-nil — the guard lookup is not free.
func (s *Server) traceCtx(family int, cause telemetry.Cause) telemetry.Ctx {
	ctx := telemetry.Ctx{Plan: s.planSeq.Load(), Cause: cause}
	if s.guard != nil {
		ctx.Episode = int32(s.guard.EpisodeID(family))
	}
	return ctx
}

// Infer serves one query synchronously: routed, queued, batched, executed.
func (s *Server) Infer(family string) Response {
	q, ok := s.byName[family]
	if !ok {
		return Response{Outcome: OutcomeDropped, Family: family}
	}
	now := s.now()
	id := s.nextID.Add(1) - 1
	s.inflight.Add(1)
	s.tc.Arrivals.Inc()
	s.tracer.Record(now, telemetry.EvArrival, id, q, -1, -1)
	s.recorder.Arrival(now, q)
	s.mu.Lock()
	s.stats.Observe(now, q)
	s.collector.Arrival(now, q)
	s.mu.Unlock()

	lq := liveQuery{
		id:       id,
		family:   q,
		arrival:  now,
		deadline: now + s.slos[q],
		done:     make(chan Response, 1),
	}
	if s.draining.Load() {
		// Graceful drain: refuse new work immediately; in-flight batches
		// keep executing.
		s.recordDrop(lq, telemetry.CauseDraining)
		return <-lq.done
	}
	d, cause := s.pickDevice(now, lq)
	if d < 0 {
		s.recordDrop(lq, cause)
		return <-lq.done
	}
	s.tracer.Record(now, telemetry.EvRoute, id, q, d, -1)
	s.workers[d].enqueue(lq)
	return <-lq.done
}

func (s *Server) dispatch(q liveQuery) {
	d, cause := s.pickDevice(s.now(), q)
	if d < 0 {
		s.recordDrop(q, cause)
		return
	}
	s.tracer.Record(s.now(), telemetry.EvRoute, q.id, q.family, d, -1)
	s.workers[d].enqueue(q)
}

func (s *Server) recordDrop(q liveQuery, cause telemetry.Cause) {
	now := s.now()
	s.tc.Dropped.Inc()
	if s.tracer != nil {
		s.tracer.RecordCtx(now, telemetry.EvDropped, q.id, q.family, -1, -1,
			s.traceCtx(q.family, cause))
	}
	s.recorder.Violation(now, q.family)
	s.mu.Lock()
	s.collector.Dropped(now, q.family)
	s.mu.Unlock()
	s.inflight.Add(-1)
	q.done <- Response{Outcome: OutcomeDropped, Family: s.cfg.Families[q.family].Name,
		LatencyMS: float64(now-q.arrival) / float64(time.Millisecond)}
}

func (s *Server) recordCompletion(q liveQuery, variant string, accuracy float64, device, batch int) {
	now := s.now()
	latency := now - q.arrival
	resp := Response{
		Variant:   variant,
		Accuracy:  accuracy,
		Family:    s.cfg.Families[q.family].Name,
		LatencyMS: float64(latency) / float64(time.Millisecond),
	}
	served := now <= q.deadline
	if served {
		s.tc.Served.Inc()
		if s.tracer != nil {
			s.tracer.RecordCtx(now, telemetry.EvDone, q.id, q.family, device, batch,
				s.traceCtx(q.family, telemetry.CauseNone))
		}
	} else {
		s.tc.Late.Inc()
		if s.tracer != nil {
			s.tracer.RecordCtx(now, telemetry.EvLate, q.id, q.family, device, batch,
				s.traceCtx(q.family, telemetry.CauseNone))
		}
		s.recorder.Violation(now, q.family)
	}
	// Per-phase latency decomposition: difference the lifecycle timestamps
	// stamped at enqueue and batch formation. Negative skews (the stamps
	// come from different wall-clock reads) clamp to zero in the recorder.
	s.recorder.RecordPhases(q.family, device, tsdb.PhaseDurations{
		Admission: q.enqueueAt - q.arrival,
		Queue:     q.formAt - q.enqueueAt,
		BatchForm: q.execAt - q.formAt,
		Exec:      now - q.execAt,
	})
	s.mu.Lock()
	if served {
		s.collector.Served(now, q.family, accuracy, latency)
		resp.Outcome = OutcomeServed
	} else {
		s.collector.Late(now, q.family, latency)
		resp.Outcome = OutcomeLate
	}
	s.mu.Unlock()
	s.inflight.Add(-1)
	q.done <- resp
}

// Summary returns the run metrics so far.
func (s *Server) Summary() metrics.Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.collector.Summarize(-1)
}

// Collector exposes the run's metrics collector for final-dump assembly
// (report.Build). Read it only after the server stopped — the collector is
// otherwise written under the server's lock.
func (s *Server) Collector() *metrics.Collector { return s.collector }

// Allocation returns the hosted variant per device of the current plan.
func (s *Server) Allocation() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string)
	for d := range s.workers {
		out[s.cfg.Cluster.Device(d).Name] = s.plan.HostedID(d)
	}
	return out
}

// History returns the controller's decision audit log.
func (s *Server) History() []controlplane.PlanRecord { return s.controller.History() }

// DeviceHealth is one device's entry in the /healthz report.
type DeviceHealth struct {
	Device int    `json:"device"`
	Name   string `json:"name"`
	Up     bool   `json:"up"`
}

// Health reports each device's up/down state, the healthy count, and the
// overload guard's state (per-device saturation plus any active emergency
// degradation episode) so external probes can distinguish "degraded by
// plan" — the controller chose cheaper variants — from "degraded by
// overload" — the guard masked accuracy tiers reactively.
type Health struct {
	Status  string         `json:"status"` // "ok" or "degraded"
	Up      int            `json:"up"`
	Total   int            `json:"total"`
	Devices []DeviceHealth `json:"devices"`
	// Draining marks a server refusing new queries during graceful
	// shutdown.
	Draining bool `json:"draining,omitempty"`
	// Overload is the guard's snapshot (Enabled false when the guard is
	// off); Overload.Episodes lists families under emergency degradation.
	Overload overload.State `json:"overload"`
	// Build identifies the serving binary (go version, module, VCS
	// revision), so probes and dashboards can tell which build is live.
	Build buildinfo.Info `json:"build"`
}

// Health returns the current device health mask.
func (s *Server) Health() Health {
	s.mu.Lock()
	downCopy := append([]bool(nil), s.down...)
	s.mu.Unlock()
	h := Health{Status: "ok", Total: len(downCopy), Build: buildinfo.Get()}
	h.Draining = s.draining.Load()
	h.Overload = s.guard.State()
	for d, dn := range downCopy {
		h.Devices = append(h.Devices, DeviceHealth{
			Device: d,
			Name:   s.cfg.Cluster.Device(d).Name,
			Up:     !dn,
		})
		if !dn {
			h.Up++
		}
	}
	if h.Up < h.Total || len(h.Overload.Episodes) > 0 {
		h.Status = "degraded"
	}
	return h
}

// Handler returns the HTTP API:
//
//	POST /v1/query?family=NAME  → Response JSON
//	GET  /v1/stats              → metrics.Summary JSON
//	GET  /v1/allocation         → device → variant JSON
//	GET  /v1/families           → registered family names
//	GET  /metrics               → counters/gauges, text "name value" lines;
//	                              Prometheus text exposition (# HELP/# TYPE)
//	                              when the Accept header asks for version
//	                              0.0.4 / OpenMetrics or ?format=prometheus
//	GET  /healthz               → device health mask JSON (503 when no
//	                              device is up)
//	GET  /debug/allocations     → controller decision audit log JSON
//	GET  /debug/incidents       → flight recorder's incident bundles JSON
//	POST /debug/incident        → trigger a manual incident bundle; with
//	                              ?profile=cpu,heap also capture pprof
//	                              profiles next to the bundle (live mode,
//	                              needs an incident directory)
//	GET  /debug/query?id=N      → live SLO attribution for one query: its
//	                              latency waterfall, causal joins and blame
//	                              label JSON (404 if not in the trace)
//	GET  /debug/pprof/...       → net/http/pprof profiles
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		family := r.URL.Query().Get("family")
		if family == "" {
			http.Error(w, "family parameter required", http.StatusBadRequest)
			return
		}
		if _, ok := s.byName[family]; !ok {
			http.Error(w, "unknown family "+family, http.StatusNotFound)
			return
		}
		writeJSON(w, s.Infer(family))
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Summary())
	})
	mux.HandleFunc("/v1/allocation", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Allocation())
	})
	mux.HandleFunc("/v1/families", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, models.FamilyNames(s.cfg.Families))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if wantsPrometheus(r) {
			w.Header().Set("Content-Type", telemetry.PrometheusContentType)
			fmt.Fprintf(w, "# HELP uptime_seconds Seconds since server start.\n# TYPE uptime_seconds gauge\nuptime_seconds %d\n",
				int64(s.now()/time.Second))
			if err := s.registry.WritePrometheus(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			// The collector's log-linear latency histograms export as one
			// native Prometheus histogram family (cumulative le buckets).
			s.mu.Lock()
			err := s.collector.WritePrometheusLatency(w)
			s.mu.Unlock()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "uptime_seconds %d\n", int64(s.now()/time.Second))
		if err := s.registry.WriteText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := s.Health()
		if h.Up == 0 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(h)
			return
		}
		writeJSON(w, h)
	})
	mux.HandleFunc("/debug/allocations", func(w http.ResponseWriter, r *http.Request) {
		// History returns a copy; sanitize it so the endpoint's output is a
		// deterministic function of the decision sequence.
		writeJSON(w, controlplane.SanitizePlans(s.History()))
	})
	mux.HandleFunc("/debug/incidents", func(w http.ResponseWriter, r *http.Request) {
		list := s.flight.Incidents()
		if list == nil {
			list = []*flightrec.Bundle{}
		}
		writeJSON(w, list)
	})
	mux.HandleFunc("/debug/incident", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		if s.flight == nil {
			http.Error(w, "flight recorder disabled", http.StatusNotImplemented)
			return
		}
		b := s.flight.Trigger(s.now(), "manual", r.URL.Query().Get("detail"), -1, -1)
		if kinds := r.URL.Query().Get("profile"); kinds != "" {
			if err := s.captureProfiles(b.ID, kinds); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
		writeJSON(w, b)
	})
	mux.HandleFunc("/debug/query", func(w http.ResponseWriter, r *http.Request) {
		if s.tracer == nil {
			http.Error(w, "lifecycle tracer disabled", http.StatusNotImplemented)
			return
		}
		id, err := strconv.ParseUint(r.URL.Query().Get("id"), 10, 64)
		if err != nil || id == 0 {
			http.Error(w, "id parameter required (positive query id)", http.StatusBadRequest)
			return
		}
		rep := attrib.Analyze(attrib.Input{
			Events:       s.tracer.Events(),
			Plans:        s.History(),
			FamilyNames:  models.FamilyNames(s.cfg.Families),
			TraceDropped: s.tracer.Dropped(),
		})
		for i := range rep.Queries {
			if rep.Queries[i].Query == id {
				writeJSON(w, &rep.Queries[i])
				return
			}
		}
		http.Error(w, "query not in trace (or unfinished)", http.StatusNotFound)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// wantsPrometheus decides the /metrics representation: the Prometheus text
// exposition format when the scraper asks for it (the standard Accept
// header carries "version=0.0.4"; OpenMetrics scrapers are close enough to
// honor too) or via ?format=prometheus, the legacy plain lines otherwise.
func wantsPrometheus(r *http.Request) bool {
	if r.URL.Query().Get("format") == "prometheus" {
		return true
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "version=0.0.4") || strings.Contains(accept, "openmetrics")
}

// captureProfiles writes pprof captures next to the incident bundle —
// <id>-cpu.pprof (a 500ms sample) and/or <id>-heap.pprof. This lives in the
// serving layer, not flightrec: CPU profiling needs a wall-clock sampling
// window, and the bundle core stays byte-deterministic without it.
func (s *Server) captureProfiles(id, kinds string) error {
	dir := s.flight.Dir()
	if dir == "" {
		return fmt.Errorf("profile capture needs an incident directory (-incident-dir)")
	}
	for _, kind := range strings.Split(kinds, ",") {
		switch strings.TrimSpace(kind) {
		case "cpu":
			f, err := os.Create(filepath.Join(dir, id+"-cpu.pprof"))
			if err != nil {
				return err
			}
			if err := rpprof.StartCPUProfile(f); err != nil {
				_ = f.Close()
				return err
			}
			time.Sleep(500 * time.Millisecond)
			rpprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				return err
			}
		case "heap":
			f, err := os.Create(filepath.Join(dir, id+"-heap.pprof"))
			if err != nil {
				return err
			}
			if err := rpprof.WriteHeapProfile(f); err != nil {
				_ = f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		case "":
		default:
			return fmt.Errorf("unknown profile kind %q (want cpu, heap)", kind)
		}
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
