// Package attrib is the latency attribution engine: it reconstructs each
// query's causal chain from the lifecycle trace, decomposes end-to-end
// latency into named components that sum exactly (integer nanoseconds) to
// the measured total, and assigns every SLO-violated query a blame label
// derived from which control plan, overload episode, or fault was active
// during the dominant component. The engine is pure and deterministic: the
// same trace produces byte-identical explanations, so same-seed runs can be
// diffed (the CI attribution smoke does exactly that).
//
// Attribution is a join, not a re-simulation. Trace events carry the plan
// sequence number and overload episode id that were in force when they were
// recorded (telemetry.Ctx), and drop/requeue/retry events carry a cause;
// the engine only differences timestamps and reads those stamps. Component
// assignment follows the query's state between consecutive events:
//
//	arrival/route  → admission      (pre-queue routing and admission)
//	enqueue        → queue_wait     (waiting in a device queue)
//	batch_formed   → batch_form     (committed to a batch, not yet running)
//	exec_start     → exec           (executing)
//	…→ requeued    → reroute_<cause> (time wasted leading into a requeue —
//	                                 queued or executing on a device whose
//	                                 work never completed — plus the span
//	                                 from the requeue to the next enqueue;
//	                                 split per retry cause)
//
// The gaps partition [first event, last event], so the components conserve
// the end-to-end latency by construction; TestConservationProperty asserts
// it to the nanosecond across seeds.
package attrib

import (
	"fmt"
	"sort"
	"time"

	"proteus/internal/controlplane"
	"proteus/internal/telemetry"
)

// Component names one slice of a query's end-to-end latency.
type Component uint8

// Latency components, in waterfall order.
const (
	CompAdmission Component = iota
	CompQueueWait
	CompBatchForm
	CompExec
	CompRerouteFailure
	CompRerouteStale
	CompRerouteMidflight

	NumComponents
)

var componentNames = [NumComponents]string{
	CompAdmission:        "admission",
	CompQueueWait:        "queue_wait",
	CompBatchForm:        "batch_form",
	CompExec:             "exec",
	CompRerouteFailure:   "reroute_device_failure",
	CompRerouteStale:     "reroute_stale_route",
	CompRerouteMidflight: "reroute_midflight",
}

// String returns the stable wire name of the component.
func (c Component) String() string {
	if int(c) < len(componentNames) {
		return componentNames[c]
	}
	return fmt.Sprintf("component(%d)", uint8(c))
}

// Blame labels a violated query's root cause. The label set is closed so
// summaries can bucket deterministically.
type Blame string

// Blame labels.
const (
	// BlameNone marks queries that met their SLO (no blame assigned).
	BlameNone Blame = ""
	// BlameBurstQueueing: queue wait dominated with no plan change or
	// overload episode in flight — the plan was simply underwater for the
	// arrival burst it was serving.
	BlameBurstQueueing Blame = "burst_queueing"
	// BlameStalePlan: queue wait dominated and a newer plan took effect
	// while the query was in flight — it queued behind a plan the
	// controller had already decided to replace.
	BlameStalePlan Blame = "stale_plan"
	// BlameOverloadQueueing: queue wait dominated while an emergency
	// degradation episode was active for the family.
	BlameOverloadQueueing Blame = "overload_queueing"
	// BlameFailureReroute: the re-route penalty dominated, or the query
	// died on its retry budget — a device failure (or stale route /
	// mid-flight death) cost it the SLO.
	BlameFailureReroute Blame = "failure_reroute"
	// BlameDegradedExec: execution dominated while an overload episode was
	// active — the query ran, but on the guard's degraded ladder.
	BlameDegradedExec Blame = "degraded_exec"
	// BlameSlowExec: execution dominated with no episode active (an
	// oversized batch or a slow variant).
	BlameSlowExec Blame = "slow_exec"
	// BlameAdmissionStall: pre-queue admission/routing dominated.
	BlameAdmissionStall Blame = "admission_stall"
	// BlameBatchFormation: the batch-formation gap dominated.
	BlameBatchFormation Blame = "batch_formation"
	// BlameAdmissionShed: dropped by deadline admission control.
	BlameAdmissionShed Blame = "admission_shed"
	// BlameBackpressureBan: dropped with no route while an overload episode
	// was active — the guard's backpressure ban masked the replicas.
	BlameBackpressureBan Blame = "backpressure_ban"
	// BlameNoRoute: dropped with no serving device and no episode active.
	BlameNoRoute Blame = "no_route"
	// BlamePolicyDrop: shed by the batching policy.
	BlamePolicyDrop Blame = "policy_drop"
	// BlameDraining: refused during graceful shutdown.
	BlameDraining Blame = "draining"
	// BlameUnknown: the trace was too truncated to attribute.
	BlameUnknown Blame = "unknown"
)

// Outcome is a query's terminal state in the trace.
type Outcome string

// Outcomes.
const (
	OutcomeServed  Outcome = "served"
	OutcomeLate    Outcome = "late"
	OutcomeDropped Outcome = "dropped"
	// OutcomeUnfinished marks queries whose trace has no terminal event
	// (still in flight when the trace was captured). They are excluded from
	// violation summaries.
	OutcomeUnfinished Outcome = "unfinished"
)

// Explanation is one query's attributed latency waterfall.
type Explanation struct {
	Query   uint64  `json:"query"`
	Family  int32   `json:"family"`
	Outcome Outcome `json:"outcome"`
	// Start and End bound the observed lifecycle (nanoseconds since trace
	// origin); E2E = End - Start and equals the component sum exactly.
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
	E2E   time.Duration `json:"e2e_ns"`
	// Components holds the per-component nanoseconds, indexed by Component.
	Components [NumComponents]int64 `json:"components_ns"`
	// Retries counts re-route grants (retried events).
	Retries int `json:"retries"`
	// Cause is the drop cause for dropped queries ("" otherwise).
	Cause string `json:"cause,omitempty"`
	// Blame is the root-cause label ("" when the query met its SLO).
	Blame Blame `json:"blame,omitempty"`
	// Detail is a one-line human explanation of the blame.
	Detail string `json:"detail,omitempty"`
	// PlanAtEnqueue and PlanAtEnd are the control-plan sequence numbers
	// stamped on the first enqueue and the terminal event; they differ when
	// a re-allocation took effect mid-flight.
	PlanAtEnqueue int32 `json:"plan_at_enqueue"`
	PlanAtEnd     int32 `json:"plan_at_end"`
	// Episode is the overload episode id observed on any of the query's
	// events (0 when none).
	Episode int32 `json:"episode,omitempty"`
	// Device is the last device the query was enqueued on (-1 if never).
	Device int32 `json:"device"`
	// Incomplete marks explanations whose first event is not an arrival —
	// the ring buffer evicted the head of this query's trace, so the
	// decomposition covers only the surviving suffix.
	Incomplete bool `json:"incomplete,omitempty"`
}

// Dominant returns the largest component (ties break toward the earlier
// waterfall stage, keeping the choice deterministic).
func (e *Explanation) Dominant() Component {
	best := Component(0)
	for c := Component(1); c < NumComponents; c++ {
		if e.Components[c] > e.Components[best] {
			best = c
		}
	}
	return best
}

// BlameCount is one blame label's tally in a summary bucket.
type BlameCount struct {
	Blame Blame `json:"blame"`
	Count int   `json:"count"`
}

// FamilySummary aggregates attribution per model family.
type FamilySummary struct {
	Family int32  `json:"family"`
	Name   string `json:"name,omitempty"`
	// Queries counts finished queries; Violated = Late + Dropped.
	Queries  int `json:"queries"`
	Violated int `json:"violated"`
	Late     int `json:"late"`
	Dropped  int `json:"dropped"`
	// Blames tallies violated queries per blame label, ordered by count
	// descending (ties by label) for stable rendering.
	Blames []BlameCount `json:"blames,omitempty"`
	// ViolatedComponents sums the per-component nanoseconds over violated
	// queries: where the missed deadlines actually went.
	ViolatedComponents [NumComponents]int64 `json:"violated_components_ns"`
}

// WindowSummary aggregates attribution per arrival-time window.
type WindowSummary struct {
	// Start is the window's inclusive start (nanoseconds since origin).
	Start    time.Duration `json:"start_ns"`
	Queries  int           `json:"queries"`
	Violated int           `json:"violated"`
	Blames   []BlameCount  `json:"blames,omitempty"`
}

// Report is the full attribution output for one run.
type Report struct {
	// Queries holds every finished query's explanation, ordered by first
	// trace appearance (ascending query id within equal start times).
	Queries []Explanation `json:"queries"`
	// Violated lists indices into Queries for late/dropped queries, worst
	// (largest E2E) first — the proteus-explain top-K order.
	Violated []int `json:"violated"`
	// Unfinished counts queries with no terminal event in the trace.
	Unfinished int `json:"unfinished"`
	// Families and Windows are the aggregate blame tables.
	Families []FamilySummary `json:"families"`
	Windows  []WindowSummary `json:"windows"`
	// TraceDropped is the ring-wrap eviction count; when nonzero (or any
	// per-query trace lost its head) Incomplete is set and explanations
	// must be read as lower bounds.
	TraceDropped uint64 `json:"trace_dropped,omitempty"`
	Incomplete   bool   `json:"incomplete,omitempty"`
}

// Input configures one attribution pass.
type Input struct {
	// Events is the lifecycle trace (any order; the engine sorts a copy).
	Events []telemetry.Event
	// Plans is the controller's decision audit history, used to name the
	// trigger behind a stale_plan blame. Optional.
	Plans []controlplane.PlanRecord
	// FamilyNames labels family summaries. Optional.
	FamilyNames []string
	// Window is the summary bucket width (default 10s).
	Window time.Duration
	// TraceDropped is the tracer's ring-wrap eviction count.
	TraceDropped uint64
}

// terminal reports whether kind ends a query's lifecycle.
func terminal(kind telemetry.EventKind) bool {
	return kind == telemetry.EvDone || kind == telemetry.EvLate || kind == telemetry.EvDropped
}

// perQuery reports whether kind belongs to a single query's lifecycle (burn
// and degrade events are per family and carry query id 0).
func perQuery(kind telemetry.EventKind) bool {
	switch kind {
	case telemetry.EvSLOBurnStart, telemetry.EvSLOBurnEnd,
		telemetry.EvDegradeStart, telemetry.EvDegradeEnd:
		return false
	}
	return true
}

// rerouteComponent maps a requeue cause to its re-route penalty component.
func rerouteComponent(cause telemetry.Cause) Component {
	switch cause {
	case telemetry.CauseStaleRoute:
		return CompRerouteStale
	case telemetry.CauseMidflight:
		return CompRerouteMidflight
	default:
		return CompRerouteFailure
	}
}

// Analyze runs the attribution pass: group the trace per query, decompose
// each finished query's latency, blame the violated ones, and aggregate.
func Analyze(in Input) *Report {
	window := in.Window
	if window <= 0 {
		window = 10 * time.Second
	}
	// Sort a copy by (query, seq): queries group into contiguous runs and
	// each run is in causal order. Burn/degrade events (query 0, per family)
	// are filtered out first so they can't interleave with a real query 0.
	events := make([]telemetry.Event, 0, len(in.Events))
	for _, ev := range in.Events {
		if perQuery(ev.Kind) {
			events = append(events, ev)
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].Query != events[j].Query {
			return events[i].Query < events[j].Query
		}
		return events[i].Seq < events[j].Seq
	})

	rep := &Report{TraceDropped: in.TraceDropped, Incomplete: in.TraceDropped > 0}
	maxFamily := int32(-1)
	for start := 0; start < len(events); {
		end := start + 1
		for end < len(events) && events[end].Query == events[start].Query {
			end++
		}
		exp, finished := explainQuery(events[start:end], in.Plans)
		start = end
		if !finished {
			rep.Unfinished++
			continue
		}
		if exp.Incomplete {
			rep.Incomplete = true
		}
		if exp.Family > maxFamily {
			maxFamily = exp.Family
		}
		rep.Queries = append(rep.Queries, exp)
	}

	// Re-order by lifecycle start (ties by query id): trace order groups
	// retries late, but readers think in arrival order.
	sort.Slice(rep.Queries, func(i, j int) bool {
		if rep.Queries[i].Start != rep.Queries[j].Start {
			return rep.Queries[i].Start < rep.Queries[j].Start
		}
		return rep.Queries[i].Query < rep.Queries[j].Query
	})

	rep.summarize(maxFamily, window, in.FamilyNames)
	return rep
}

// explainQuery decomposes one query's event run (sorted by seq). finished is
// false when the run has no terminal event.
func explainQuery(run []telemetry.Event, plans []controlplane.PlanRecord) (Explanation, bool) {
	exp := Explanation{
		Query:  run[0].Query,
		Family: run[0].Family,
		Start:  run[0].At,
		Device: -1,
	}
	if run[0].Kind != telemetry.EvArrival {
		exp.Incomplete = true
	}

	// rerouting is the active re-route penalty component while the query is
	// between a requeued event and its next enqueue (or terminal drop).
	rerouting := false
	var rerouteComp Component
	finished := false
	for i, ev := range run {
		if ev.Kind == telemetry.EvEnqueue {
			exp.Device = ev.Device
			if exp.PlanAtEnqueue == 0 {
				exp.PlanAtEnqueue = ev.Plan
			}
			rerouting = false
		}
		if ev.Episode != 0 && exp.Episode == 0 {
			exp.Episode = ev.Episode
		}
		if ev.Kind == telemetry.EvRequeued {
			// The re-route penalty starts at the requeue itself: time from
			// here until the next enqueue is charged to the retry cause.
			rerouting = true
			rerouteComp = rerouteComponent(ev.Cause)
		}
		if i+1 < len(run) {
			next := run[i+1]
			gap := (next.At - ev.At).Nanoseconds()
			if gap < 0 {
				// Wall-clock skew between stamps (live mode); clamp rather
				// than breaking conservation — the negative slack lands in
				// the next gap automatically since E2E is end-start.
				gap = 0
			}
			comp := componentAfter(ev, rerouting, rerouteComp)
			if next.Kind == telemetry.EvRequeued {
				// Time leading into a requeue was wasted — queued on (or
				// executing on) a device whose work never completed — so it
				// is the re-route penalty of the strand cause, not honest
				// queue/exec time.
				comp = rerouteComponent(next.Cause)
			}
			exp.Components[comp] += gap
		}
		switch ev.Kind {
		case telemetry.EvRetried:
			exp.Retries++
		case telemetry.EvDone:
			exp.Outcome = OutcomeServed
			finished = true
		case telemetry.EvLate:
			exp.Outcome = OutcomeLate
			finished = true
		case telemetry.EvDropped:
			exp.Outcome = OutcomeDropped
			exp.Cause = ev.Cause.String()
			finished = true
		}
		if finished {
			exp.End = ev.At
			exp.PlanAtEnd = ev.Plan
			break
		}
	}
	if !finished {
		return exp, false
	}
	// Clamp-induced slack: the gaps can undershoot End-Start when a clamp
	// fired; fold any residue into the component that precedes the terminal
	// event so the sum stays exact. (With monotone stamps — the simulator
	// always, live mode in practice — the residue is zero.)
	exp.E2E = exp.End - exp.Start
	var sum int64
	for c := Component(0); c < NumComponents; c++ {
		sum += exp.Components[c]
	}
	if residue := exp.E2E.Nanoseconds() - sum; residue != 0 {
		exp.Components[CompAdmission] += residue
	}
	if exp.Outcome != OutcomeServed {
		exp.Blame, exp.Detail = blame(&exp, plans)
	}
	return exp, true
}

// componentAfter picks the component that owns the time following ev.
func componentAfter(ev telemetry.Event, rerouting bool, rerouteComp Component) Component {
	if rerouting {
		return rerouteComp
	}
	switch ev.Kind {
	case telemetry.EvArrival, telemetry.EvRoute, telemetry.EvRetried:
		return CompAdmission
	case telemetry.EvEnqueue:
		return CompQueueWait
	case telemetry.EvBatchFormed:
		return CompBatchForm
	case telemetry.EvExecStart:
		return CompExec
	default:
		return CompAdmission
	}
}

// blame derives the root-cause label for a violated query: drop causes map
// directly; late (and expired) queries are blamed on the dominant component,
// joined against the plan/episode stamps to tell a stale plan from a burst
// and a degraded execution from a merely slow one.
func blame(exp *Explanation, plans []controlplane.PlanRecord) (Blame, string) {
	dom := exp.Dominant()
	if exp.Outcome == OutcomeDropped {
		switch exp.Cause {
		case telemetry.CauseShedAdmission.String():
			return BlameAdmissionShed, "dropped by deadline admission control"
		case telemetry.CauseNoRoute.String():
			if exp.Retries > 0 && isReroute(dom) {
				// The query only landed on an empty device because a failure
				// stranded it first; the fault is the root cause, not the
				// missing route.
				return BlameFailureReroute, fmt.Sprintf(
					"stranded %d time(s), then no admissible replica", exp.Retries)
			}
			if exp.Episode != 0 {
				return BlameBackpressureBan,
					fmt.Sprintf("no admissible replica during overload episode %d", exp.Episode)
			}
			return BlameNoRoute, "no serving device hosted the family"
		case telemetry.CauseRetryBudget.String():
			return BlameFailureReroute,
				fmt.Sprintf("retry budget exhausted after %d re-route(s)", exp.Retries)
		case telemetry.CausePolicyDrop.String():
			return BlamePolicyDrop, "shed by the batching policy"
		case telemetry.CauseDraining.String():
			return BlameDraining, "refused during graceful shutdown"
		}
		// CauseExpired (and unknown causes) fall through: the query died
		// waiting, so the dominant component says why.
	}
	if exp.E2E <= 0 {
		return BlameUnknown, "no attributable time in the surviving trace"
	}
	share := float64(exp.Components[dom]) / float64(exp.E2E.Nanoseconds()) * 100
	where := fmt.Sprintf("%s took %s of %s e2e (%.0f%%)",
		dom, time.Duration(exp.Components[dom]), exp.E2E, share)
	switch dom {
	case CompRerouteFailure, CompRerouteStale, CompRerouteMidflight:
		return BlameFailureReroute, where
	case CompExec:
		if exp.Episode != 0 {
			return BlameDegradedExec,
				fmt.Sprintf("%s under overload episode %d", where, exp.Episode)
		}
		return BlameSlowExec, where
	case CompQueueWait:
		if exp.PlanAtEnqueue > 0 && exp.PlanAtEnd > exp.PlanAtEnqueue {
			return BlameStalePlan, fmt.Sprintf("%s under plan %d, superseded by plan %d%s",
				where, exp.PlanAtEnqueue, exp.PlanAtEnd, planTrigger(plans, exp.PlanAtEnd))
		}
		if exp.Episode != 0 {
			return BlameOverloadQueueing,
				fmt.Sprintf("%s during overload episode %d", where, exp.Episode)
		}
		return BlameBurstQueueing, where
	case CompBatchForm:
		return BlameBatchFormation, where
	default:
		return BlameAdmissionStall, where
	}
}

// isReroute reports whether c is one of the re-route penalty components.
func isReroute(c Component) bool {
	return c == CompRerouteFailure || c == CompRerouteStale || c == CompRerouteMidflight
}

// planTrigger names the trigger behind plan seq, when the audit history has
// it (e.g. " (trigger periodic)").
func planTrigger(plans []controlplane.PlanRecord, seq int32) string {
	for i := range plans {
		if int32(plans[i].Seq) == seq {
			return fmt.Sprintf(" (trigger %s)", plans[i].Trigger)
		}
	}
	return ""
}

// summarize fills the violated index and the family/window tables.
func (r *Report) summarize(maxFamily int32, window time.Duration, names []string) {
	fams := make([]FamilySummary, maxFamily+1)
	for f := range fams {
		fams[f].Family = int32(f)
		if f < len(names) {
			fams[f].Name = names[f]
		}
	}
	// Window index by lifecycle start; the slice grows to the last bucket.
	var wins []WindowSummary
	famBlames := make([]map[Blame]int, maxFamily+1)
	var winBlames []map[Blame]int
	for i := range r.Queries {
		q := &r.Queries[i]
		f := int(q.Family)
		if f < 0 || f >= len(fams) {
			continue
		}
		wi := int(q.Start / window)
		for wi >= len(wins) {
			wins = append(wins, WindowSummary{Start: time.Duration(len(wins)) * window})
			winBlames = append(winBlames, nil)
		}
		fams[f].Queries++
		wins[wi].Queries++
		if q.Outcome == OutcomeServed {
			continue
		}
		r.Violated = append(r.Violated, i)
		fams[f].Violated++
		wins[wi].Violated++
		if q.Outcome == OutcomeLate {
			fams[f].Late++
		} else {
			fams[f].Dropped++
		}
		for c := Component(0); c < NumComponents; c++ {
			fams[f].ViolatedComponents[c] += q.Components[c]
		}
		if famBlames[f] == nil {
			famBlames[f] = make(map[Blame]int)
		}
		famBlames[f][q.Blame]++
		if winBlames[wi] == nil {
			winBlames[wi] = make(map[Blame]int)
		}
		winBlames[wi][q.Blame]++
	}
	for f := range fams {
		fams[f].Blames = sortedBlames(famBlames[f])
	}
	for w := range wins {
		wins[w].Blames = sortedBlames(winBlames[w])
	}
	r.Families = fams
	r.Windows = wins
	// Worst-first: largest E2E, ties by query id ascending.
	sort.Slice(r.Violated, func(a, b int) bool {
		qa, qb := &r.Queries[r.Violated[a]], &r.Queries[r.Violated[b]]
		if qa.E2E != qb.E2E {
			return qa.E2E > qb.E2E
		}
		return qa.Query < qb.Query
	})
}

// allBlames is the closed label set in a fixed order, so tallies never
// depend on map iteration.
var allBlames = []Blame{
	BlameBurstQueueing, BlameStalePlan, BlameOverloadQueueing,
	BlameFailureReroute, BlameDegradedExec, BlameSlowExec,
	BlameAdmissionStall, BlameBatchFormation, BlameAdmissionShed,
	BlameBackpressureBan, BlameNoRoute, BlamePolicyDrop, BlameDraining,
	BlameUnknown,
}

// sortedBlames converts a tally map to a count-descending slice by scanning
// the closed label set (deterministic without sorting map keys).
func sortedBlames(m map[Blame]int) []BlameCount {
	if len(m) == 0 {
		return nil
	}
	out := make([]BlameCount, 0, len(m))
	for _, b := range allBlames {
		if n := m[b]; n > 0 {
			out = append(out, BlameCount{Blame: b, Count: n})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}
