package attrib_test

import (
	"testing"
	"time"

	"proteus/internal/allocator"
	"proteus/internal/attrib"
	"proteus/internal/cluster"
	"proteus/internal/core"
	"proteus/internal/models"
	"proteus/internal/telemetry"
	"proteus/internal/trace"
	"proteus/internal/tsdb"
)

// simTrace runs one seeded simulation and returns its trace, plan history
// and family names. qps chooses the load regime; faults may be nil.
func simTrace(t *testing.T, seed uint64, qps float64, faults *cluster.FailureSchedule,
	overloaded bool) attrib.Input {
	t.Helper()
	var fams []models.Family
	for _, f := range models.Zoo() {
		if f.Name == "efficientnet" || f.Name == "mobilenet" {
			fams = append(fams, f)
		}
	}
	cfg := core.Config{
		Cluster:  cluster.ScaledTestbed(4),
		Families: fams,
		Allocator: allocator.NewMILP(&allocator.MILPOptions{
			TimeLimit: 200 * time.Millisecond, RelGap: 0.01,
		}),
		Seed:      seed,
		Tracer:    telemetry.NewTracer(1 << 18),
		Telemetry: telemetry.NewRegistry(),
		Faults:    faults,
	}
	if overloaded {
		cfg.TSDB = tsdb.NewRecorder(tsdb.Config{
			SampleInterval: time.Second,
			SLO: tsdb.SLOConfig{
				Target:      0.01,
				BurnRate:    2,
				ShortWindow: 5 * time.Second,
				LongWindow:  30 * time.Second,
			},
		})
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	per := make([]float64, len(fams))
	for i := range per {
		per[i] = qps / float64(len(fams))
	}
	res, err := sys.Run(trace.NewFlat(models.FamilyNames(fams), per, 60))
	if err != nil {
		t.Fatal(err)
	}
	return attrib.Input{
		Events:       cfg.Tracer.Events(),
		Plans:        res.Plans,
		FamilyNames:  models.FamilyNames(fams),
		TraceDropped: cfg.Tracer.Dropped(),
	}
}

// TestConservationProperty is the satellite property test: across seeds and
// load regimes, every finished query's components must sum EXACTLY (integer
// nanoseconds) to its end-to-end latency, and every violated query must
// carry a blame label.
func TestConservationProperty(t *testing.T) {
	for _, tc := range []struct {
		name  string
		seed  uint64
		qps   float64
		fault bool
	}{
		{"seed1_light", 1, 60, false},
		{"seed7_overload", 7, 600, false},
		{"seed42_faults", 42, 200, true},
		{"seed99_overload_faults", 99, 500, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var faults *cluster.FailureSchedule
			if tc.fault {
				faults = &cluster.FailureSchedule{Events: []cluster.FailureEvent{
					{Device: 0, FailAt: 15 * time.Second, RecoverAt: 35 * time.Second},
					{Device: 2, FailAt: 20 * time.Second},
				}}
			}
			in := simTrace(t, tc.seed, tc.qps, faults, tc.qps >= 500)
			rep := attrib.Analyze(in)
			if len(rep.Queries) == 0 {
				t.Fatal("no queries attributed")
			}
			for i := range rep.Queries {
				q := &rep.Queries[i]
				var sum int64
				for c := attrib.Component(0); c < attrib.NumComponents; c++ {
					sum += q.Components[c]
				}
				if sum != q.E2E.Nanoseconds() {
					t.Fatalf("query %d: components sum %d != e2e %d (%+v)",
						q.Query, sum, q.E2E.Nanoseconds(), q)
				}
				if q.E2E != q.End-q.Start {
					t.Fatalf("query %d: e2e %v != end-start %v", q.Query, q.E2E, q.End-q.Start)
				}
				switch q.Outcome {
				case attrib.OutcomeServed:
					if q.Blame != attrib.BlameNone {
						t.Fatalf("served query %d has blame %q", q.Query, q.Blame)
					}
				case attrib.OutcomeLate, attrib.OutcomeDropped:
					if q.Blame == attrib.BlameNone {
						t.Fatalf("violated query %d (%s) has no blame", q.Query, q.Outcome)
					}
				default:
					t.Fatalf("query %d has outcome %q in finished set", q.Query, q.Outcome)
				}
			}
		})
	}
}

// TestFaultBurstBlameLabels is the seeded fault+burst end-to-end: device
// failures during an overload burst must surface failure_reroute blames
// (stranded queries) and queueing blames (the burst), and the violated
// drill-down must agree with the summaries.
func TestFaultBurstBlameLabels(t *testing.T) {
	// Fail the busiest devices: under this seed's plan devices 2 and 3 carry
	// most of the routing mass, so their queues are deep when they die and
	// the strands re-route with cause device_failure.
	faults := &cluster.FailureSchedule{Events: []cluster.FailureEvent{
		{Device: 3, FailAt: 10 * time.Second, RecoverAt: 30 * time.Second},
		{Device: 2, FailAt: 20 * time.Second, RecoverAt: 40 * time.Second},
	}}
	in := simTrace(t, 7, 600, faults, true)
	rep := attrib.Analyze(in)
	if len(rep.Violated) == 0 {
		t.Fatal("overloaded fault run produced no violations")
	}
	tally := map[attrib.Blame]int{}
	for _, i := range rep.Violated {
		tally[rep.Queries[i].Blame]++
	}
	queueing := tally[attrib.BlameBurstQueueing] + tally[attrib.BlameStalePlan] +
		tally[attrib.BlameOverloadQueueing]
	if queueing == 0 {
		t.Fatalf("burst produced no queueing blame: %v", tally)
	}
	if tally[attrib.BlameFailureReroute] == 0 {
		t.Fatalf("device failure produced no failure_reroute blame: %v", tally)
	}
	// The family summaries must agree with the per-query tally.
	var sumViolated int
	for _, f := range rep.Families {
		sumViolated += f.Violated
	}
	if sumViolated != len(rep.Violated) {
		t.Fatalf("family summaries count %d violated, drill-down has %d",
			sumViolated, len(rep.Violated))
	}
}

// TestAttributionDeterministic asserts the engine end to end: two same-seed
// runs must produce identical reports (the CI smoke diffs the CLI's JSON;
// this is the in-process version).
func TestAttributionDeterministic(t *testing.T) {
	run := func() *attrib.Report {
		in := simTrace(t, 7, 400, nil, false)
		return attrib.Analyze(in)
	}
	a, b := run(), run()
	if len(a.Queries) != len(b.Queries) || len(a.Violated) != len(b.Violated) {
		t.Fatalf("report shapes diverged: %d/%d queries, %d/%d violated",
			len(a.Queries), len(b.Queries), len(a.Violated), len(b.Violated))
	}
	for i := range a.Queries {
		if a.Queries[i] != b.Queries[i] {
			t.Fatalf("query %d diverged:\n  %+v\n  %+v", i, a.Queries[i], b.Queries[i])
		}
	}
	for i := range a.Violated {
		if a.Violated[i] != b.Violated[i] {
			t.Fatalf("violated order diverged at %d", i)
		}
	}
}
