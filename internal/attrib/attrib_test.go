package attrib

import (
	"testing"
	"time"

	"proteus/internal/controlplane"
	"proteus/internal/telemetry"
)

// mkEvents records a synthetic lifecycle through a real tracer so the seq
// numbers and ring semantics match production traces.
func mkEvents(record func(tr *telemetry.Tracer)) []telemetry.Event {
	tr := telemetry.NewTracer(1 << 10)
	record(tr)
	return tr.Events()
}

func ns(d time.Duration) int64 { return d.Nanoseconds() }

// TestHappyPathDecomposition pins the component waterfall of an untroubled
// query: every consecutive gap lands in the right component and the sum is
// exactly the end-to-end latency.
func TestHappyPathDecomposition(t *testing.T) {
	ms := time.Millisecond
	events := mkEvents(func(tr *telemetry.Tracer) {
		ctx := telemetry.Ctx{Plan: 1}
		tr.RecordCtx(0, telemetry.EvArrival, 7, 0, -1, -1, ctx)
		tr.RecordCtx(1*ms, telemetry.EvRoute, 7, 0, 2, -1, ctx)
		tr.RecordCtx(2*ms, telemetry.EvEnqueue, 7, 0, 2, -1, ctx)
		tr.RecordCtx(12*ms, telemetry.EvBatchFormed, 7, 0, 2, 0, ctx)
		tr.RecordCtx(13*ms, telemetry.EvExecStart, 7, 0, 2, 0, ctx)
		tr.RecordCtx(33*ms, telemetry.EvDone, 7, 0, 2, 0, ctx)
	})
	rep := Analyze(Input{Events: events})
	if len(rep.Queries) != 1 {
		t.Fatalf("%d queries, want 1", len(rep.Queries))
	}
	q := rep.Queries[0]
	if q.Outcome != OutcomeServed || q.Blame != BlameNone {
		t.Fatalf("outcome %q blame %q, want served with no blame", q.Outcome, q.Blame)
	}
	want := [NumComponents]int64{
		CompAdmission: ns(2 * ms), CompQueueWait: ns(10 * ms),
		CompBatchForm: ns(1 * ms), CompExec: ns(20 * ms),
	}
	if q.Components != want {
		t.Fatalf("components %v, want %v", q.Components, want)
	}
	if q.E2E != 33*ms {
		t.Fatalf("e2e %v, want 33ms", q.E2E)
	}
	var sum int64
	for _, c := range q.Components {
		sum += c
	}
	if sum != q.E2E.Nanoseconds() {
		t.Fatalf("components sum %d != e2e %d", sum, q.E2E.Nanoseconds())
	}
	if q.Device != 2 || q.PlanAtEnqueue != 1 || q.PlanAtEnd != 1 {
		t.Fatalf("device/plan joins wrong: %+v", q)
	}
}

// TestRerouteDecompositionAndBlame pins the failure path: both the wait
// wasted on the dead device and the requeue→enqueue span become the
// per-cause re-route penalty, and when that penalty dominates a late query
// the blame is failure_reroute.
func TestRerouteDecompositionAndBlame(t *testing.T) {
	ms := time.Millisecond
	events := mkEvents(func(tr *telemetry.Tracer) {
		ctx := telemetry.Ctx{Plan: 2}
		fail := telemetry.Ctx{Plan: 2, Cause: telemetry.CauseDeviceFailure}
		tr.RecordCtx(0, telemetry.EvArrival, 9, 1, -1, -1, ctx)
		tr.RecordCtx(0, telemetry.EvEnqueue, 9, 1, 0, -1, ctx)
		tr.RecordCtx(5*ms, telemetry.EvRequeued, 9, 1, -1, -1, fail)
		tr.RecordCtx(45*ms, telemetry.EvRetried, 9, 1, -1, -1, fail)
		tr.RecordCtx(45*ms, telemetry.EvEnqueue, 9, 1, 3, -1, ctx)
		tr.RecordCtx(50*ms, telemetry.EvBatchFormed, 9, 1, 3, 4, ctx)
		tr.RecordCtx(50*ms, telemetry.EvExecStart, 9, 1, 3, 4, ctx)
		tr.RecordCtx(60*ms, telemetry.EvLate, 9, 1, 3, 4, ctx)
	})
	rep := Analyze(Input{Events: events})
	q := rep.Queries[0]
	if q.Outcome != OutcomeLate {
		t.Fatalf("outcome %q, want late", q.Outcome)
	}
	if got := q.Components[CompRerouteFailure]; got != ns(45*ms) {
		t.Fatalf("reroute_device_failure %d, want %d (5ms wasted wait + 40ms re-route)", got, ns(45*ms))
	}
	if got := q.Components[CompQueueWait]; got != ns(5*ms) {
		t.Fatalf("queue_wait %d, want %d (second enqueue only)", got, ns(5*ms))
	}
	if q.Retries != 1 {
		t.Fatalf("retries %d, want 1", q.Retries)
	}
	if q.Blame != BlameFailureReroute {
		t.Fatalf("blame %q, want failure_reroute (%s)", q.Blame, q.Detail)
	}
	if len(rep.Violated) != 1 || rep.Violated[0] != 0 {
		t.Fatalf("violated index %v, want [0]", rep.Violated)
	}
}

// TestBlameJoins pins the causal joins: stale_plan needs a plan change
// mid-flight, degraded_exec an active episode during a dominant exec, and
// drop causes map to their labels (backpressure_ban only under an episode).
func TestBlameJoins(t *testing.T) {
	ms := time.Millisecond
	cases := []struct {
		name   string
		record func(tr *telemetry.Tracer)
		want   Blame
	}{
		{"stale_plan", func(tr *telemetry.Tracer) {
			tr.RecordCtx(0, telemetry.EvArrival, 1, 0, -1, -1, telemetry.Ctx{Plan: 3})
			tr.RecordCtx(0, telemetry.EvEnqueue, 1, 0, 0, -1, telemetry.Ctx{Plan: 3})
			tr.RecordCtx(90*ms, telemetry.EvBatchFormed, 1, 0, 0, 0, telemetry.Ctx{Plan: 4})
			tr.RecordCtx(90*ms, telemetry.EvExecStart, 1, 0, 0, 0, telemetry.Ctx{Plan: 4})
			tr.RecordCtx(100*ms, telemetry.EvLate, 1, 0, 0, 0, telemetry.Ctx{Plan: 4})
		}, BlameStalePlan},
		{"burst_queueing", func(tr *telemetry.Tracer) {
			tr.RecordCtx(0, telemetry.EvArrival, 1, 0, -1, -1, telemetry.Ctx{Plan: 3})
			tr.RecordCtx(0, telemetry.EvEnqueue, 1, 0, 0, -1, telemetry.Ctx{Plan: 3})
			tr.RecordCtx(90*ms, telemetry.EvBatchFormed, 1, 0, 0, 0, telemetry.Ctx{Plan: 3})
			tr.RecordCtx(90*ms, telemetry.EvExecStart, 1, 0, 0, 0, telemetry.Ctx{Plan: 3})
			tr.RecordCtx(100*ms, telemetry.EvLate, 1, 0, 0, 0, telemetry.Ctx{Plan: 3})
		}, BlameBurstQueueing},
		{"overload_queueing", func(tr *telemetry.Tracer) {
			ep := telemetry.Ctx{Plan: 3, Episode: 2}
			tr.RecordCtx(0, telemetry.EvArrival, 1, 0, -1, -1, ep)
			tr.RecordCtx(0, telemetry.EvEnqueue, 1, 0, 0, -1, ep)
			tr.RecordCtx(90*ms, telemetry.EvBatchFormed, 1, 0, 0, 0, ep)
			tr.RecordCtx(90*ms, telemetry.EvExecStart, 1, 0, 0, 0, ep)
			tr.RecordCtx(100*ms, telemetry.EvLate, 1, 0, 0, 0, ep)
		}, BlameOverloadQueueing},
		{"degraded_exec", func(tr *telemetry.Tracer) {
			ep := telemetry.Ctx{Plan: 3, Episode: 5}
			tr.RecordCtx(0, telemetry.EvArrival, 1, 0, -1, -1, ep)
			tr.RecordCtx(0, telemetry.EvEnqueue, 1, 0, 0, -1, ep)
			tr.RecordCtx(1*ms, telemetry.EvBatchFormed, 1, 0, 0, 0, ep)
			tr.RecordCtx(1*ms, telemetry.EvExecStart, 1, 0, 0, 0, ep)
			tr.RecordCtx(100*ms, telemetry.EvLate, 1, 0, 0, 0, ep)
		}, BlameDegradedExec},
		{"slow_exec", func(tr *telemetry.Tracer) {
			tr.RecordCtx(0, telemetry.EvArrival, 1, 0, -1, -1, telemetry.Ctx{Plan: 3})
			tr.RecordCtx(0, telemetry.EvEnqueue, 1, 0, 0, -1, telemetry.Ctx{Plan: 3})
			tr.RecordCtx(1*ms, telemetry.EvBatchFormed, 1, 0, 0, 0, telemetry.Ctx{Plan: 3})
			tr.RecordCtx(1*ms, telemetry.EvExecStart, 1, 0, 0, 0, telemetry.Ctx{Plan: 3})
			tr.RecordCtx(100*ms, telemetry.EvLate, 1, 0, 0, 0, telemetry.Ctx{Plan: 3})
		}, BlameSlowExec},
		{"admission_shed", func(tr *telemetry.Tracer) {
			tr.RecordCtx(0, telemetry.EvArrival, 1, 0, -1, -1, telemetry.Ctx{Plan: 3})
			tr.RecordCtx(0, telemetry.EvDropped, 1, 0, -1, -1,
				telemetry.Ctx{Plan: 3, Cause: telemetry.CauseShedAdmission})
		}, BlameAdmissionShed},
		{"backpressure_ban", func(tr *telemetry.Tracer) {
			tr.RecordCtx(0, telemetry.EvArrival, 1, 0, -1, -1, telemetry.Ctx{Plan: 3, Episode: 1})
			tr.RecordCtx(0, telemetry.EvDropped, 1, 0, -1, -1,
				telemetry.Ctx{Plan: 3, Episode: 1, Cause: telemetry.CauseNoRoute})
		}, BlameBackpressureBan},
		{"no_route", func(tr *telemetry.Tracer) {
			tr.RecordCtx(0, telemetry.EvArrival, 1, 0, -1, -1, telemetry.Ctx{})
			tr.RecordCtx(0, telemetry.EvDropped, 1, 0, -1, -1,
				telemetry.Ctx{Cause: telemetry.CauseNoRoute})
		}, BlameNoRoute},
		{"expired_blames_dominant", func(tr *telemetry.Tracer) {
			tr.RecordCtx(0, telemetry.EvArrival, 1, 0, -1, -1, telemetry.Ctx{Plan: 3})
			tr.RecordCtx(0, telemetry.EvEnqueue, 1, 0, 0, -1, telemetry.Ctx{Plan: 3})
			tr.RecordCtx(80*ms, telemetry.EvDropped, 1, 0, 0, -1,
				telemetry.Ctx{Plan: 3, Cause: telemetry.CauseExpired})
		}, BlameBurstQueueing},
		{"retry_budget", func(tr *telemetry.Tracer) {
			fail := telemetry.Ctx{Plan: 3, Cause: telemetry.CauseDeviceFailure}
			tr.RecordCtx(0, telemetry.EvArrival, 1, 0, -1, -1, telemetry.Ctx{Plan: 3})
			tr.RecordCtx(0, telemetry.EvEnqueue, 1, 0, 0, -1, telemetry.Ctx{Plan: 3})
			tr.RecordCtx(5*ms, telemetry.EvRequeued, 1, 0, -1, -1, fail)
			tr.RecordCtx(5*ms, telemetry.EvDropped, 1, 0, -1, -1,
				telemetry.Ctx{Plan: 3, Cause: telemetry.CauseRetryBudget})
		}, BlameFailureReroute},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := Analyze(Input{Events: mkEvents(tc.record)})
			if len(rep.Queries) != 1 {
				t.Fatalf("%d queries, want 1", len(rep.Queries))
			}
			q := rep.Queries[0]
			if q.Blame != tc.want {
				t.Fatalf("blame %q (%s), want %q", q.Blame, q.Detail, tc.want)
			}
		})
	}
}

// TestStalePlanDetailNamesTrigger pins the plan-history join: when the
// superseding plan's audit record is available, the blame detail names its
// trigger.
func TestStalePlanDetailNamesTrigger(t *testing.T) {
	ms := time.Millisecond
	events := mkEvents(func(tr *telemetry.Tracer) {
		tr.RecordCtx(0, telemetry.EvArrival, 1, 0, -1, -1, telemetry.Ctx{Plan: 1})
		tr.RecordCtx(0, telemetry.EvEnqueue, 1, 0, 0, -1, telemetry.Ctx{Plan: 1})
		tr.RecordCtx(90*ms, telemetry.EvLate, 1, 0, 0, 0, telemetry.Ctx{Plan: 2})
	})
	rep := Analyze(Input{
		Events: events,
		Plans: []controlplane.PlanRecord{
			{Seq: 1, Trigger: "initial"},
			{Seq: 2, Trigger: "burst"},
		},
	})
	q := rep.Queries[0]
	if q.Blame != BlameStalePlan {
		t.Fatalf("blame %q, want stale_plan", q.Blame)
	}
	if want := "(trigger burst)"; !contains(q.Detail, want) {
		t.Fatalf("detail %q missing %q", q.Detail, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestTruncatedTraceMarksIncomplete pins the satellite behaviour: a query
// whose arrival was evicted still decomposes its surviving suffix, but the
// explanation and report are flagged incomplete.
func TestTruncatedTraceMarksIncomplete(t *testing.T) {
	ms := time.Millisecond
	events := mkEvents(func(tr *telemetry.Tracer) {
		tr.RecordCtx(5*ms, telemetry.EvEnqueue, 3, 0, 1, -1, telemetry.Ctx{Plan: 1})
		tr.RecordCtx(8*ms, telemetry.EvBatchFormed, 3, 0, 1, 0, telemetry.Ctx{Plan: 1})
		tr.RecordCtx(8*ms, telemetry.EvExecStart, 3, 0, 1, 0, telemetry.Ctx{Plan: 1})
		tr.RecordCtx(9*ms, telemetry.EvDone, 3, 0, 1, 0, telemetry.Ctx{Plan: 1})
	})
	rep := Analyze(Input{Events: events, TraceDropped: 17})
	if !rep.Incomplete || rep.TraceDropped != 17 {
		t.Fatalf("report incomplete=%v dropped=%d, want true/17", rep.Incomplete, rep.TraceDropped)
	}
	q := rep.Queries[0]
	if !q.Incomplete {
		t.Fatal("suffix-only query must be marked incomplete")
	}
	if q.E2E != 4*ms {
		t.Fatalf("suffix e2e %v, want 4ms", q.E2E)
	}
}

// TestUnfinishedQueriesExcluded pins that in-flight queries (no terminal
// event) are counted but never explained or blamed.
func TestUnfinishedQueriesExcluded(t *testing.T) {
	events := mkEvents(func(tr *telemetry.Tracer) {
		tr.RecordCtx(0, telemetry.EvArrival, 1, 0, -1, -1, telemetry.Ctx{})
		tr.RecordCtx(0, telemetry.EvEnqueue, 1, 0, 0, -1, telemetry.Ctx{})
	})
	rep := Analyze(Input{Events: events})
	if len(rep.Queries) != 0 || rep.Unfinished != 1 {
		t.Fatalf("queries=%d unfinished=%d, want 0/1", len(rep.Queries), rep.Unfinished)
	}
}

// TestSummaries pins the family/window aggregation: counts, blame tallies in
// deterministic order, and violated-component sums.
func TestSummaries(t *testing.T) {
	ms := time.Millisecond
	events := mkEvents(func(tr *telemetry.Tracer) {
		// Family 0: one served, one late (burst_queueing) in window 0.
		tr.RecordCtx(0, telemetry.EvArrival, 1, 0, -1, -1, telemetry.Ctx{Plan: 1})
		tr.RecordCtx(0, telemetry.EvEnqueue, 1, 0, 0, -1, telemetry.Ctx{Plan: 1})
		tr.RecordCtx(1*ms, telemetry.EvDone, 1, 0, 0, 0, telemetry.Ctx{Plan: 1})
		tr.RecordCtx(0, telemetry.EvArrival, 2, 0, -1, -1, telemetry.Ctx{Plan: 1})
		tr.RecordCtx(0, telemetry.EvEnqueue, 2, 0, 0, -1, telemetry.Ctx{Plan: 1})
		tr.RecordCtx(50*ms, telemetry.EvLate, 2, 0, 0, 0, telemetry.Ctx{Plan: 1})
		// Family 1: one dropped (admission shed) in window 1 (t=11s).
		at := 11 * time.Second
		tr.RecordCtx(at, telemetry.EvArrival, 3, 1, -1, -1, telemetry.Ctx{Plan: 1})
		tr.RecordCtx(at, telemetry.EvDropped, 3, 1, -1, -1,
			telemetry.Ctx{Plan: 1, Cause: telemetry.CauseShedAdmission})
	})
	rep := Analyze(Input{Events: events, FamilyNames: []string{"resnet", "bert"}})
	if len(rep.Families) != 2 {
		t.Fatalf("%d family summaries, want 2", len(rep.Families))
	}
	f0, f1 := rep.Families[0], rep.Families[1]
	if f0.Name != "resnet" || f0.Queries != 2 || f0.Violated != 1 || f0.Late != 1 {
		t.Fatalf("family 0 summary wrong: %+v", f0)
	}
	if f1.Queries != 1 || f1.Dropped != 1 {
		t.Fatalf("family 1 summary wrong: %+v", f1)
	}
	if len(f0.Blames) != 1 || f0.Blames[0].Blame != BlameBurstQueueing {
		t.Fatalf("family 0 blames %+v", f0.Blames)
	}
	if len(f1.Blames) != 1 || f1.Blames[0].Blame != BlameAdmissionShed {
		t.Fatalf("family 1 blames %+v", f1.Blames)
	}
	if f0.ViolatedComponents[CompQueueWait] != ns(50*ms) {
		t.Fatalf("violated queue_wait %d, want %d", f0.ViolatedComponents[CompQueueWait], ns(50*ms))
	}
	if len(rep.Windows) != 2 {
		t.Fatalf("%d windows, want 2 (10s buckets)", len(rep.Windows))
	}
	if rep.Windows[0].Violated != 1 || rep.Windows[1].Violated != 1 {
		t.Fatalf("window violations %+v", rep.Windows)
	}
}

// TestViolatedWorstFirst pins the drill-down order: largest E2E first, ties
// broken by query id.
func TestViolatedWorstFirst(t *testing.T) {
	ms := time.Millisecond
	events := mkEvents(func(tr *telemetry.Tracer) {
		for i, lat := range []time.Duration{30 * ms, 90 * ms, 60 * ms} {
			id := uint64(i + 1)
			tr.RecordCtx(0, telemetry.EvArrival, id, 0, -1, -1, telemetry.Ctx{Plan: 1})
			tr.RecordCtx(0, telemetry.EvEnqueue, id, 0, 0, -1, telemetry.Ctx{Plan: 1})
			tr.RecordCtx(lat, telemetry.EvLate, id, 0, 0, 0, telemetry.Ctx{Plan: 1})
		}
	})
	rep := Analyze(Input{Events: events})
	if len(rep.Violated) != 3 {
		t.Fatalf("%d violated, want 3", len(rep.Violated))
	}
	order := [3]uint64{
		rep.Queries[rep.Violated[0]].Query,
		rep.Queries[rep.Violated[1]].Query,
		rep.Queries[rep.Violated[2]].Query,
	}
	if order != [3]uint64{2, 3, 1} {
		t.Fatalf("worst-first order %v, want [2 3 1]", order)
	}
}
