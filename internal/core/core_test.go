package core

import (
	"math"
	"testing"
	"time"

	"proteus/internal/allocator"
	"proteus/internal/batching"
	"proteus/internal/cluster"
	"proteus/internal/models"
	"proteus/internal/trace"
)

func smallFamilies(t *testing.T) []models.Family {
	t.Helper()
	var fams []models.Family
	for _, f := range models.Zoo() {
		if f.Name == "efficientnet" || f.Name == "mobilenet" {
			fams = append(fams, f)
		}
	}
	if len(fams) != 2 {
		t.Fatal("families missing")
	}
	return fams
}

func smallConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Cluster:  cluster.ScaledTestbed(8),
		Families: smallFamilies(t),
		Allocator: allocator.NewMILP(&allocator.MILPOptions{
			TimeLimit: 500 * time.Millisecond, RelGap: 0.01,
		}),
		Seed: 42,
	}
}

func flatTrace(t *testing.T, fams []models.Family, total float64, seconds int) *trace.Trace {
	t.Helper()
	per := make([]float64, len(fams))
	for i := range per {
		per[i] = total / float64(len(fams))
	}
	return trace.NewFlat(models.FamilyNames(fams), per, seconds)
}

func TestRunLowLoadServesEverythingAccurately(t *testing.T) {
	cfg := smallConfig(t)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(flatTrace(t, cfg.Families, 20, 120))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Queries == 0 {
		t.Fatal("no queries simulated")
	}
	// The SLO = 2x batch-1 latency regime is knife-edge by construction
	// (§6.6 shows ~100% violations at 1x), so a small residual is expected
	// even at trivial load.
	if res.Summary.ViolationRatio > 0.03 {
		t.Fatalf("violation ratio %v at trivial load", res.Summary.ViolationRatio)
	}
	// At trivial load the system should serve with (near-)max accuracy.
	if res.Summary.EffectiveAccuracy < 99 {
		t.Fatalf("effective accuracy %v at trivial load", res.Summary.EffectiveAccuracy)
	}
}

func TestRunAccuracyScalesDownUnderLoad(t *testing.T) {
	cfg := smallConfig(t)
	lowSys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	low, err := lowSys.Run(flatTrace(t, cfg.Families, 20, 120))
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := smallConfig(t)
	highSys, err := NewSystem(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	high, err := highSys.Run(flatTrace(t, cfg.Families, 500, 120))
	if err != nil {
		t.Fatal(err)
	}
	if !(high.Summary.EffectiveAccuracy < low.Summary.EffectiveAccuracy) {
		t.Fatalf("accuracy did not scale down: low %.2f, high %.2f",
			low.Summary.EffectiveAccuracy, high.Summary.EffectiveAccuracy)
	}
	if high.Summary.AvgThroughput < 10*low.Summary.AvgThroughput {
		t.Fatalf("throughput did not scale: low %.1f, high %.1f",
			low.Summary.AvgThroughput, high.Summary.AvgThroughput)
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	run := func() *Result {
		cfg := smallConfig(t)
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(flatTrace(t, cfg.Families, 100, 60))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Summary.Queries != b.Summary.Queries ||
		a.Summary.Served != b.Summary.Served ||
		a.Summary.Dropped != b.Summary.Dropped ||
		math.Abs(a.Summary.EffectiveAccuracy-b.Summary.EffectiveAccuracy) > 1e-9 {
		t.Fatalf("same seed diverged:\n%v\n%v", a.Summary, b.Summary)
	}
}

func TestRunSeedChangesArrivals(t *testing.T) {
	cfg := smallConfig(t)
	sys1, _ := NewSystem(cfg)
	res1, err := sys1.Run(flatTrace(t, cfg.Families, 100, 60))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 43
	sys2, _ := NewSystem(cfg)
	res2, err := sys2.Run(flatTrace(t, cfg.Families, 100, 60))
	if err != nil {
		t.Fatal(err)
	}
	if res1.Summary.Queries == res2.Summary.Queries && res1.Summary.Served == res2.Summary.Served {
		t.Log("different seeds produced identical counts (unlikely but possible)")
	}
}

func TestConservationOfQueries(t *testing.T) {
	cfg := smallConfig(t)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(flatTrace(t, cfg.Families, 300, 90))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if s.Served+s.Late+s.Dropped != s.Queries {
		t.Fatalf("conservation violated: %d + %d + %d != %d", s.Served, s.Late, s.Dropped, s.Queries)
	}
}

func TestStaticAllocatorNeverReallocates(t *testing.T) {
	cfg := smallConfig(t)
	cfg.Allocator = allocator.NewClipperHT(&allocator.MILPOptions{TimeLimit: 500 * time.Millisecond, RelGap: 0.01})
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(flatTrace(t, cfg.Families, 100, 120))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plans) != 1 {
		t.Fatalf("static allocator re-planned: %d plans", len(res.Plans))
	}
}

func TestDynamicAllocatorReallocatesOnDemandChange(t *testing.T) {
	cfg := smallConfig(t)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fams := models.FamilyNames(cfg.Families)
	tr := trace.NewBursty(trace.BurstyConfig{
		Seconds: 180, LowQPS: 30, HighQPS: 400,
		LowSeconds: 60, HighSeconds: 60, Families: fams, StartWithLow: true,
	})
	res, err := sys.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plans) < 3 {
		t.Fatalf("expected re-allocations across the burst, got %d plans", len(res.Plans))
	}
	burst := false
	for _, p := range res.Plans {
		if p.Trigger == "burst" {
			burst = true
		}
	}
	if !burst {
		t.Fatal("no burst-triggered re-allocation despite a 13x demand jump")
	}
}

func TestStableDemandSkipsReallocation(t *testing.T) {
	cfg := smallConfig(t)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(flatTrace(t, cfg.Families, 100, 300))
	if err != nil {
		t.Fatal(err)
	}
	// Perfectly flat Poisson demand: after the initial plan and at most a
	// couple of settling re-plans, the stability check must hold the plan.
	if len(res.Plans) > 4 {
		t.Fatalf("%d plans on flat demand; churn damping broken", len(res.Plans))
	}
}

func TestModelLoadDelayCausesLoadEvents(t *testing.T) {
	cfg := smallConfig(t)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fams := models.FamilyNames(cfg.Families)
	tr := trace.NewBursty(trace.BurstyConfig{
		Seconds: 120, LowQPS: 30, HighQPS: 500,
		LowSeconds: 60, HighSeconds: 60, Families: fams, StartWithLow: true,
	})
	res, err := sys.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	// The burst forces accuracy scaling, i.e. at least one variant load
	// beyond the initial ones.
	if res.ModelLoads == 0 {
		t.Fatal("no model loads recorded")
	}
}

func TestBatchingFactorySelectsPolicy(t *testing.T) {
	cfg := smallConfig(t)
	cfg.Batching = func() batching.Policy { return batching.NewStatic(1) }
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(flatTrace(t, cfg.Families, 50, 60))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Served == 0 {
		t.Fatal("static batching served nothing")
	}
}

func TestPerFamilyMetricsCoverAllFamilies(t *testing.T) {
	cfg := smallConfig(t)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(flatTrace(t, cfg.Families, 100, 60))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerFamily) != len(cfg.Families) {
		t.Fatalf("per-family summaries %d", len(res.PerFamily))
	}
	total := 0
	for _, s := range res.PerFamily {
		total += s.Queries
	}
	if total != res.Summary.Queries {
		t.Fatalf("per-family queries %d != total %d", total, res.Summary.Queries)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewSystem(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	cfg := smallConfig(t)
	cfg.Cluster = nil
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("nil cluster accepted")
	}
	cfg = smallConfig(t)
	cfg.Allocator = nil
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("nil allocator accepted")
	}
}

func TestTraceFamilyMismatchRejected(t *testing.T) {
	cfg := smallConfig(t)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.NewFlat([]string{"only-one"}, []float64{10}, 10)
	if _, err := sys.Run(tr); err == nil {
		t.Fatal("family count mismatch accepted")
	}
}

func TestProteusBeatsStaticOnBursts(t *testing.T) {
	// The headline claim, miniature: on a bursty trace Proteus (accuracy
	// scaling) must beat Clipper-HA (static most-accurate) on violations.
	fams := smallFamilies(t)
	names := models.FamilyNames(fams)
	tr := trace.NewBursty(trace.BurstyConfig{
		Seconds: 240, LowQPS: 50, HighQPS: 600,
		LowSeconds: 60, HighSeconds: 60, Families: names, StartWithLow: true,
	})
	run := func(a allocator.Allocator) *Result {
		cfg := Config{Cluster: cluster.ScaledTestbed(8), Families: fams, Allocator: a, Seed: 7}
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	opts := &allocator.MILPOptions{TimeLimit: 500 * time.Millisecond, RelGap: 0.01}
	proteus := run(allocator.NewMILP(opts))
	clipperHA := run(allocator.NewClipperHA(opts))
	if proteus.Summary.ViolationRatio >= clipperHA.Summary.ViolationRatio {
		t.Fatalf("Proteus violations %.4f not better than Clipper-HA %.4f",
			proteus.Summary.ViolationRatio, clipperHA.Summary.ViolationRatio)
	}
	if proteus.Summary.AvgThroughput <= clipperHA.Summary.AvgThroughput {
		t.Fatalf("Proteus throughput %.1f not better than Clipper-HA %.1f",
			proteus.Summary.AvgThroughput, clipperHA.Summary.AvgThroughput)
	}
}

func TestElasticProvisioningAbsorbsOverload(t *testing.T) {
	// A sustained overload on a tiny cluster: without elasticity the system
	// sheds; with it, servers arrive after the provisioning delay and both
	// throughput and accuracy recover (§7, hardware scaling in tandem).
	fams := smallFamilies(t)
	tr := flatTrace(t, fams, 900, 240) // far beyond a 4-device cluster
	run := func(elastic *ElasticConfig) *Result {
		cfg := Config{
			Cluster:  cluster.ScaledTestbed(4),
			Families: fams,
			Allocator: allocator.NewMILP(&allocator.MILPOptions{
				TimeLimit: 300 * time.Millisecond, RelGap: 0.01,
			}),
			Elastic: elastic,
			Seed:    5,
		}
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fixed := run(nil)
	elastic := run(&ElasticConfig{MaxExtra: 3, ProvisionDelay: 45 * time.Second})
	if elastic.ExtraDevices == 0 {
		t.Fatal("no servers provisioned despite sustained overload")
	}
	if fixed.ExtraDevices != 0 {
		t.Fatal("fixed cluster provisioned servers")
	}
	if elastic.Summary.AvgThroughput <= fixed.Summary.AvgThroughput {
		t.Fatalf("elasticity did not add throughput: %.1f vs %.1f",
			elastic.Summary.AvgThroughput, fixed.Summary.AvgThroughput)
	}
	if elastic.Summary.ViolationRatio >= fixed.Summary.ViolationRatio {
		t.Fatalf("elasticity did not cut violations: %.4f vs %.4f",
			elastic.Summary.ViolationRatio, fixed.Summary.ViolationRatio)
	}
}

func TestElasticRespectsMaxExtra(t *testing.T) {
	fams := smallFamilies(t)
	tr := flatTrace(t, fams, 2000, 200)
	cfg := Config{
		Cluster:  cluster.ScaledTestbed(4),
		Families: fams,
		Allocator: allocator.NewMILP(&allocator.MILPOptions{
			TimeLimit: 300 * time.Millisecond, RelGap: 0.01,
		}),
		Elastic: &ElasticConfig{MaxExtra: 2, ProvisionDelay: 20 * time.Second},
		Seed:    5,
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExtraDevices > 2 {
		t.Fatalf("provisioned %d devices, cap was 2", res.ExtraDevices)
	}
}
