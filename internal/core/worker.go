package core

import (
	"time"

	"proteus/internal/allocator"
	"proteus/internal/batching"
	"proteus/internal/cluster"
	"proteus/internal/profiles"
	"proteus/internal/simulation"
	"proteus/internal/telemetry"
)

// query is one inference request flowing through the system.
type query struct {
	id       uint64
	family   int
	arrival  time.Duration
	deadline time.Duration
	// retries counts failure re-dispatches; a query is retried at most
	// Config.MaxRetries times before being dropped.
	retries int
	// Phase-decomposition timestamps: stamped at device enqueue and batch
	// formation, differenced into per-phase durations at completion. A
	// requeue restamps enqueueAt, so admission absorbs the re-route wait.
	enqueueAt time.Duration
	formAt    time.Duration
	execAt    time.Duration
}

// worker is one device: a queue, a batching policy and a (simulated)
// hardware executor. All methods run inside engine callbacks.
type worker struct {
	sys    *System
	dev    cluster.Device
	policy batching.Policy

	hosted       *allocator.VariantRef
	maxBatch     int // SLO- and memory-capped batch for the hosted variant
	memBatch     int // memory-only cap
	queue        []query
	busy         bool
	down         bool
	loadingUntil time.Duration
	wake         *simulation.Event

	// In-flight batch and its completion event, tracked so a failure can
	// cancel the execution and strand the batch back to the router.
	inflight   []query
	inflightEv *simulation.Event

	// batchesRun counts executed batches (for reports).
	batchesRun int
	loads      int

	// Execution-time accounting for the tsdb utilization series: busyAccum
	// is the total completed execution time, busyStart the start of the
	// in-flight batch, lastBatch the size of the most recent batch.
	busyAccum time.Duration
	busyStart time.Duration
	lastBatch int

	// Arrival-rate estimation for rate-planned batching policies (Nexus):
	// per-second counts folded into an EWMA.
	rateEWMA   float64
	rateBucket int64 // second index of the open bucket
	rateCount  int
}

// noteArrival folds one arrival into the rate estimate.
func (w *worker) noteArrival(now time.Duration) {
	sec := int64(now / time.Second)
	if sec != w.rateBucket {
		// Fold closed buckets, decaying through empty seconds.
		const alpha = 0.3
		w.rateEWMA = alpha*float64(w.rateCount) + (1-alpha)*w.rateEWMA
		for s := w.rateBucket + 1; s < sec && s-w.rateBucket < 30; s++ {
			w.rateEWMA *= 1 - alpha
		}
		w.rateBucket = sec
		w.rateCount = 0
	}
	w.rateCount++
}

// arrivalRate returns the smoothed arrival rate in QPS, biased toward the
// open bucket when it already exceeds the average (fast ramp-up).
func (w *worker) arrivalRate() float64 {
	if float64(w.rateCount) > w.rateEWMA {
		return float64(w.rateCount)
	}
	return w.rateEWMA
}

// syncDepth reports the current mailbox depth to the overload guard (a
// no-op when the guard is off). Called after every queue mutation so the
// backpressure hysteresis and admission bound always see the true depth.
func (w *worker) syncDepth() {
	w.sys.guard.NoteDepth(w.dev.ID, len(w.queue))
}

func (w *worker) hostedID() string {
	if w.hosted == nil {
		return ""
	}
	return w.hosted.Variant.ID()
}

// setHosted installs a (possibly nil) variant, resetting batching state and
// simulating the model-load delay. The caller re-routes any queued queries.
func (w *worker) setHosted(ref *allocator.VariantRef, now time.Duration) {
	w.hosted = ref
	w.policy.Reset()
	if ref == nil {
		w.maxBatch, w.memBatch = 0, 0
		return
	}
	slo := w.sys.slos[ref.Family]
	w.maxBatch = profiles.MaxBatch(w.dev.Spec, ref.Variant, slo)
	w.memBatch = profiles.MaxMemoryBatch(w.dev.Spec, ref.Variant)
	w.loadingUntil = now + w.sys.cfg.ModelLoadDelay
	w.loads++
	w.sys.tc.ModelLoads.Inc()
}

// maxProfiledBatch bounds the profiler's pre-computed batch range; larger
// batches fall back to the analytical model.
const maxProfiledBatch = 64

// procTime is the batch latency of the hosted variant on this device: an
// O(1) lookup in the controller's profile store (§3), falling back to the
// analytical model for batch sizes beyond the profiled range.
func (w *worker) procTime(b int) time.Duration {
	if d, ok := w.sys.profileStore.Get(w.hosted.Variant.ID(), w.dev.Spec.Type, b); ok {
		return d
	}
	return profiles.Latency(w.dev.Spec, w.hosted.Variant, b)
}

// enqueue admits a routed query and re-evaluates the batching decision.
func (w *worker) enqueue(q query) {
	if w.down {
		// Routed before the table caught up with the failure; bounce back.
		w.sys.requeue(w.sys.engine.Now(), q, telemetry.CauseStaleRoute)
		return
	}
	now := w.sys.engine.Now()
	w.noteArrival(now)
	if tr := w.sys.tracer; tr != nil {
		// The enqueue event carries the plan and overload episode in force,
		// anchoring the attribution engine's causal joins.
		tr.RecordCtx(now, telemetry.EvEnqueue, q.id, q.family, w.dev.ID, -1,
			w.sys.traceCtx(q.family, telemetry.CauseNone))
	}
	q.enqueueAt = now
	w.queue = append(w.queue, q)
	w.syncDepth()
	w.evaluate()
}

// takeQueue removes and returns all queued queries (used when the hosted
// model changes and the queue must be re-routed).
func (w *worker) takeQueue() []query {
	qs := w.queue
	w.queue = nil
	w.syncDepth()
	w.cancelWake()
	return qs
}

func (w *worker) cancelWake() {
	if w.wake != nil {
		w.wake.Cancel()
		w.wake = nil
	}
}

// fail kills the device: the in-flight batch (its completion event is
// cancelled — the hardware died mid-execution) and the queue are returned
// stranded for the system to requeue; the hosted model is lost.
func (w *worker) fail() []query {
	w.down = true
	stranded := w.takeQueue()
	if w.busy {
		// Fold the partial execution into the busy-time account: the device
		// was working until the moment it died.
		w.busyAccum += w.sys.engine.Now() - w.busyStart
	}
	if w.inflightEv != nil {
		w.inflightEv.Cancel()
		w.inflightEv = nil
	}
	stranded = append(stranded, w.inflight...)
	w.inflight = nil
	w.busy = false
	w.hosted = nil
	w.maxBatch, w.memBatch = 0, 0
	w.loadingUntil = 0
	w.policy.Reset()
	return stranded
}

// busyTime returns the device's cumulative execution time up to now,
// including the elapsed part of an in-flight batch.
func (w *worker) busyTime(now time.Duration) time.Duration {
	if w.busy {
		return w.busyAccum + (now - w.busyStart)
	}
	return w.busyAccum
}

// recover brings the device back with an empty memory: it reloads ref (the
// current plan's hosting for it, usually nil until the next re-allocation)
// with the full model-load delay.
func (w *worker) recover(ref *allocator.VariantRef, now time.Duration) {
	w.down = false
	w.setHosted(ref, now)
	w.evaluate()
}

// dropExpired removes queries that cannot possibly complete within their
// SLO any more — even executed alone and immediately, the batch-1 latency
// would land past the deadline. Executing them would only waste capacity
// (the client has timed out regardless); they count as SLO violations.
func (w *worker) dropExpired(now time.Duration) {
	horizon := now + w.procTime(1)
	keep := w.queue[:0]
	for _, q := range w.queue {
		if q.deadline < horizon {
			w.sys.dropQuery(now, q, telemetry.CauseExpired)
			continue
		}
		keep = append(keep, q)
	}
	w.queue = keep
	w.syncDepth()
}

// evaluate runs the batching policy and acts on its decision. It is called
// on arrival, on batch completion, on load completion and on wake-up.
func (w *worker) evaluate() {
	now := w.sys.engine.Now()
	if w.busy || w.down {
		return
	}
	if w.hosted == nil || w.maxBatch < 1 {
		// Nothing runnable here; shed whatever was routed to us.
		for _, q := range w.queue {
			w.sys.dropQuery(now, q, telemetry.CauseNoRoute)
		}
		w.queue = nil
		w.syncDepth()
		return
	}
	if now < w.loadingUntil {
		// Model still loading: hold the queue and try again when ready.
		w.cancelWake()
		until := w.loadingUntil
		w.wake = w.sys.engine.Schedule(until, func() {
			w.wake = nil
			w.evaluate()
		})
		return
	}
	w.dropExpired(now)
	if len(w.queue) == 0 {
		w.cancelWake()
		return
	}

	pq := make([]batching.Query, len(w.queue))
	for i, q := range w.queue {
		pq[i] = batching.Query{ID: q.id, Arrival: q.arrival, Deadline: q.deadline}
	}
	ctx := batching.Context{
		Now:         now,
		Queue:       pq,
		MaxBatch:    w.maxBatch,
		MemBatch:    w.memBatch,
		ProcTime:    w.procTime,
		ArrivalRate: w.arrivalRate(),
	}
	d := w.policy.Decide(&ctx)
	if len(d.Drop) > 0 {
		w.sys.tc.BatchDrops.Add(int64(len(d.Drop)))
		w.applyDrops(now, d.Drop)
	}
	switch d.Action {
	case batching.Idle:
		w.sys.tc.BatchIdles.Inc()
		w.cancelWake()
	case batching.Wait:
		w.sys.tc.BatchWaits.Inc()
		w.cancelWake()
		at := d.WakeAt
		if at <= now {
			at = now
		}
		w.wake = w.sys.engine.Schedule(at, func() {
			w.wake = nil
			w.evaluate()
		})
	case batching.Execute:
		w.sys.tc.BatchExecutes.Inc()
		w.cancelWake()
		w.execute(now, d.BatchSize)
	}
}

// applyDrops removes the given ascending queue indices, recording drops.
func (w *worker) applyDrops(now time.Duration, drop []int) {
	di := 0
	keep := w.queue[:0]
	for i, q := range w.queue {
		if di < len(drop) && drop[di] == i {
			w.sys.dropQuery(now, q, telemetry.CausePolicyDrop)
			di++
			continue
		}
		keep = append(keep, q)
	}
	w.queue = keep
	w.syncDepth()
}

// execute runs the first b queued queries as one batch.
func (w *worker) execute(now time.Duration, b int) {
	if b > len(w.queue) {
		b = len(w.queue)
	}
	if b < 1 {
		return
	}
	batch := make([]query, b)
	copy(batch, w.queue[:b])
	for i := range batch {
		// Formation and execution start coincide in the simulator; the live
		// worker stamps them the same way, so batch_form is ~0 by design.
		batch[i].formAt = now
		batch[i].execAt = now
	}
	w.queue = append(w.queue[:0], w.queue[b:]...)
	w.syncDepth()

	batchID := w.sys.nextBatchID
	w.sys.nextBatchID++
	w.sys.tc.Batches.Inc()
	w.sys.tc.BatchQueries.Add(int64(b))
	if w.sys.tracer != nil {
		for _, q := range batch {
			w.sys.tracer.Record(now, telemetry.EvBatchFormed, q.id, q.family, w.dev.ID, batchID)
			w.sys.tracer.Record(now, telemetry.EvExecStart, q.id, q.family, w.dev.ID, batchID)
		}
	}

	accuracy := w.hosted.Variant.Accuracy
	done := now + w.procTime(b)
	w.busy = true
	w.busyStart = now
	w.lastBatch = b
	w.batchesRun++
	w.inflight = batch
	w.inflightEv = w.sys.engine.Schedule(done, func() {
		w.busy = false
		w.busyAccum += done - w.busyStart
		w.inflight = nil
		w.inflightEv = nil
		violations := 0
		for _, q := range batch {
			if done <= q.deadline {
				w.sys.serveQuery(done, q, accuracy, w.dev.ID, batchID)
			} else {
				w.sys.lateQuery(done, q, w.dev.ID, batchID)
				violations++
			}
		}
		w.policy.Observe(len(batch), violations)
		w.evaluate()
	})
}
