package core

import (
	"time"

	"proteus/internal/allocator"
	"proteus/internal/telemetry"
)

// failDevice takes device d down at the current simulation time: its queued
// and in-flight queries drain back to the router, the routing table stops
// admitting it, and a failure-triggered re-allocation is requested (honoring
// the control plane's cooldown).
func (s *System) failDevice(d int) {
	if d < 0 || d >= len(s.workers) || s.down[d] {
		return
	}
	now := s.engine.Now()
	s.down[d] = true
	s.controller.SetCluster(s.controller.Cluster().WithHealth(s.down))
	s.collector.DeviceFailed(now)
	s.tc.DevicesUp.Set(s.healthyCount())
	stranded := s.workers[d].fail()
	s.flight.Trigger(now, "device_failure", s.workers[d].dev.Name, -1, d)
	s.rebuildTable()
	for _, q := range stranded {
		s.requeue(now, q, telemetry.CauseDeviceFailure)
	}
	s.faultRealloc("failure")
}

// recoverDevice brings device d back at the current simulation time. The
// device rejoins with no model loaded; it reloads whatever the current plan
// hosts on it (usually nothing, since post-failure plans avoid it) and a
// recovery-triggered re-allocation puts it back to work.
func (s *System) recoverDevice(d int) {
	if d < 0 || d >= len(s.workers) || !s.down[d] {
		return
	}
	now := s.engine.Now()
	s.down[d] = false
	s.controller.SetCluster(s.controller.Cluster().WithHealth(s.down))
	s.collector.DeviceRecovered(now)
	s.tc.DevicesUp.Set(s.healthyCount())
	w := s.workers[d]
	var ref *allocator.VariantRef
	if d < len(s.plan.Hosted) {
		ref = s.plan.Hosted[d]
	}
	w.recover(ref, now)
	if w.loadingUntil > now {
		s.engine.Schedule(w.loadingUntil, func() {
			s.rebuildTable()
			w.evaluate()
		})
	}
	s.rebuildTable()
	s.faultRealloc("recovery")
}

// requeue returns a stranded query to the router: dropped if it already
// burned its re-route budget (Config.MaxRetries) or cannot meet its
// deadline, re-dispatched to a surviving replica otherwise. cause records
// why the query was stranded (device failure, stale route) on the requeue
// and retry trace events, so attribution can name the re-route penalty.
func (s *System) requeue(now time.Duration, q query, cause telemetry.Cause) {
	s.collector.Requeued(now, q.family)
	s.tc.Requeued.Inc()
	if s.tracer != nil {
		s.tracer.RecordCtx(now, telemetry.EvRequeued, q.id, q.family, -1, -1, s.traceCtx(q.family, cause))
	}
	if q.retries >= s.cfg.MaxRetries {
		s.dropQuery(now, q, telemetry.CauseRetryBudget)
		return
	}
	if q.deadline <= now {
		s.dropQuery(now, q, telemetry.CauseExpired)
		return
	}
	q.retries++
	s.collector.Retried(now, q.family)
	s.tc.Retried.Inc()
	if s.tracer != nil {
		s.tracer.RecordCtx(now, telemetry.EvRetried, q.id, q.family, -1, -1, s.traceCtx(q.family, cause))
	}
	s.route(now, q)
}

// healthyCount returns how many devices are currently up.
func (s *System) healthyCount() int64 {
	n := int64(0)
	for _, d := range s.down {
		if !d {
			n++
		}
	}
	return n
}

// faultRealloc requests a failure- or recovery-triggered re-allocation. If
// the cooldown since the last plan has not elapsed, the request is deferred
// to the cooldown boundary instead of being dropped; coalesced requests keep
// the most recent trigger.
func (s *System) faultRealloc(trigger string) {
	if !s.controller.Dynamic() {
		// Static baselines never re-plan; degradation is handled entirely by
		// the routing-table mask and the recovery reload.
		return
	}
	now := s.engine.Now()
	s.pendingFaultTrigger = trigger
	if s.pendingFaultRetry {
		return
	}
	if rem := s.controller.CooldownRemaining(now); rem > 0 {
		s.pendingFaultRetry = true
		s.engine.Schedule(now+rem, func() {
			s.pendingFaultRetry = false
			s.reallocate(s.pendingFaultTrigger)
		})
		return
	}
	s.reallocate(trigger)
}
