// Package core assembles the full Proteus system on the discrete-event
// engine: per-application load balancers (request router + monitoring
// daemon), per-device workers running a batching policy, and the controller
// that re-allocates resources periodically and on bursts. It mirrors the
// paper's simulator (§6.1.5), which tracks their 40-machine cluster testbed
// within ~1%.
package core

import (
	"fmt"
	"time"

	"proteus/internal/allocator"
	"proteus/internal/batching"
	"proteus/internal/cluster"
	"proteus/internal/flightrec"
	"proteus/internal/models"
	"proteus/internal/overload"
	"proteus/internal/profiles"
	"proteus/internal/telemetry"
	"proteus/internal/tsdb"
)

// Config describes one simulated serving system.
type Config struct {
	// Cluster is the device fleet. Required.
	Cluster *cluster.Cluster
	// Families are the registered applications (query types). Required.
	Families []models.Family
	// SLOMultiplier scales each family's SLO relative to the batch-1 CPU
	// latency of its fastest variant (§6.1.2). Default 2.
	SLOMultiplier float64
	// Allocator is the resource-management policy. Required
	// (allocator.ByName builds one from artifact config names).
	Allocator allocator.Allocator
	// Batching creates each worker's batching policy. Default AccScale.
	Batching batching.Factory
	// ControlPeriod is the periodic re-allocation interval. Default 30s.
	ControlPeriod time.Duration
	// DemandWindow is the statistics collector's estimation window.
	// Default: ControlPeriod.
	DemandWindow time.Duration
	// BurstFactor triggers an early re-allocation when a family's
	// instantaneous demand exceeds its planned capacity by this factor.
	// Default 1.5.
	BurstFactor float64
	// BurstCooldown is the minimum spacing of burst re-allocations.
	// Default 10s.
	BurstCooldown time.Duration
	// Headroom over-provisions demand estimates when re-allocating
	// (the artifact's β = 1.05 hyper-parameter). Default 1.05.
	Headroom float64
	// ModelLoadDelay is the time a device is unavailable while switching
	// hosted variants (container start + weight load). Default 2s.
	ModelLoadDelay time.Duration
	// PlanApplyDelay models the control-path latency between invoking the
	// resource manager and the new plan taking effect (solver + propagation
	// time, off the critical path per §4). Default 1s.
	PlanApplyDelay time.Duration
	// MetricsInterval is the time-series bin width. Default 10s.
	MetricsInterval time.Duration
	// Elastic enables the §7 hardware-scaling-in-tandem extension: when a
	// plan sheds demand (capacity exhausted even at the lowest accuracy),
	// the controller provisions an extra device, which joins the fleet
	// after ProvisionDelay; accuracy scaling absorbs the burst meanwhile.
	Elastic *ElasticConfig
	// Faults injects deterministic device failures and recoveries during the
	// run (nil for a healthy fleet). Must validate against the cluster size.
	Faults *cluster.FailureSchedule
	// DisableAdmission turns off load-balancer admission control: all
	// arriving queries are routed even when the plan sheds load, leaving
	// overload to pile up in worker queues. Exists for the design-ablation
	// experiments; production behaviour is admission on.
	DisableAdmission bool
	// Tracer, when non-nil, records every query's lifecycle events
	// (arrival → route → enqueue → batch → done/late/dropped) on the virtual
	// clock. Seeded runs with identical configs produce identical traces.
	Tracer *telemetry.Tracer
	// Telemetry, when non-nil, is the counters/gauges registry the system
	// (router, batching, workers, control plane) increments during the run.
	Telemetry *telemetry.Registry
	// TSDB, when non-nil, records per-device time-series samples and runs
	// the sliding-window SLO burn monitor on the virtual clock. Burn
	// transitions are traced (slo_burn_start/slo_burn_end) and audited in
	// the controller's PlanRecord history.
	TSDB *tsdb.Recorder
	// Flight, when non-nil, is the black-box flight recorder: it snapshots
	// bounded rings of recent observability state into deterministic
	// incident bundles on SLO-burn starts, overload degradations, allocator
	// fallbacks and device failures. It ticks on the TSDB sampling cadence
	// and snapshots the Tracer, Telemetry and TSDB components above, so it
	// is most useful with those set too.
	Flight *flightrec.Recorder
	// PlanHistory bounds the controller's in-memory decision audit ring
	// (records beyond the bound are dropped oldest-first). Default 256.
	PlanHistory int
	// SLOBurnRealloc lets an SLO burn start trigger an early re-allocation
	// (subject to the burst cooldown). Off by default: the monitor then only
	// observes and reports.
	SLOBurnRealloc bool
	// Overload, when non-nil and enabled, activates the fast-path overload
	// guard: deadline admission control, high/low-water mailbox
	// backpressure, and burn-triggered emergency accuracy degradation
	// between control periods. Requires TSDB for the degradation path (the
	// burn monitor is its trigger).
	Overload *overload.Config
	// MaxRetries is the per-query re-route budget after a device failure
	// strands it (0 drops stranded queries immediately, negative values are
	// treated as 0). Default 1, the paper artifact's single re-dispatch.
	MaxRetries int
	// Seed drives all simulator randomness (routing, arrival expansion).
	Seed uint64
}

func (c Config) withDefaults() (Config, error) {
	if c.Cluster == nil || c.Cluster.Size() == 0 {
		return c, fmt.Errorf("core: config needs a cluster")
	}
	if len(c.Families) == 0 {
		return c, fmt.Errorf("core: config needs families")
	}
	if c.Allocator == nil {
		return c, fmt.Errorf("core: config needs an allocator")
	}
	if c.SLOMultiplier <= 0 {
		c.SLOMultiplier = 2
	}
	if c.Batching == nil {
		c.Batching = func() batching.Policy { return batching.NewAccScale() }
	}
	if c.ControlPeriod <= 0 {
		c.ControlPeriod = 30 * time.Second
	}
	if c.DemandWindow <= 0 {
		c.DemandWindow = c.ControlPeriod
	}
	if c.BurstFactor <= 0 {
		c.BurstFactor = 1.5
	}
	if c.BurstCooldown <= 0 {
		c.BurstCooldown = 10 * time.Second
	}
	if c.Headroom <= 0 {
		c.Headroom = 1.05
	}
	if c.ModelLoadDelay < 0 {
		c.ModelLoadDelay = 0
	} else if c.ModelLoadDelay == 0 {
		c.ModelLoadDelay = 2 * time.Second
	}
	if c.PlanApplyDelay < 0 {
		c.PlanApplyDelay = 0
	} else if c.PlanApplyDelay == 0 {
		c.PlanApplyDelay = time.Second
	}
	if c.MetricsInterval <= 0 {
		c.MetricsInterval = 10 * time.Second
	}
	if c.Elastic != nil {
		c.Elastic = c.Elastic.withDefaults()
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 1
	}
	if err := c.Faults.Validate(c.Cluster.Size()); err != nil {
		return c, err
	}
	return c, nil
}

// ElasticConfig parameterizes hardware scaling in tandem with accuracy
// scaling (§7 of the paper, described there as future work).
type ElasticConfig struct {
	// MaxExtra bounds how many devices may be provisioned on top of the
	// fixed cluster.
	MaxExtra int
	// Type is the device type provisioned (default V100).
	Type cluster.DeviceType
	// ProvisionDelay is the server start-up time — the window during which
	// accuracy scaling alone carries the burst (default 60s).
	ProvisionDelay time.Duration
}

func (e *ElasticConfig) withDefaults() *ElasticConfig {
	out := *e
	if out.Type == "" {
		out.Type = cluster.V100
	}
	if out.ProvisionDelay <= 0 {
		out.ProvisionDelay = 60 * time.Second
	}
	if out.MaxExtra < 0 {
		out.MaxExtra = 0
	}
	return &out
}

// SLOs computes the per-family SLOs for the config.
func (c Config) SLOs() []time.Duration {
	out := make([]time.Duration, len(c.Families))
	for q, f := range c.Families {
		out[q] = profiles.FamilySLO(f, c.SLOMultiplier)
	}
	return out
}

// FamilyNames returns the family names in index order.
func (c Config) FamilyNames() []string {
	return models.FamilyNames(c.Families)
}
