package core

import (
	"bytes"
	"testing"

	"proteus/internal/telemetry"
)

// TestRepeatedRunFullSummaryIdentical is the determinism regression test
// backing the proteus-lint determinism checker: two complete simulation
// runs with the same seed must agree on *every* field of the aggregate
// Summary and of every per-family summary — not just the headline counts —
// plus the controller's plan history length and load accounting. Any
// wall-clock read, unseeded randomness, or unsorted map iteration on the
// simulated path shows up here as a field-level diff.
func TestRepeatedRunFullSummaryIdentical(t *testing.T) {
	run := func() *Result {
		cfg := smallConfig(t)
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(flatTrace(t, cfg.Families, 120, 90))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()

	// metrics.Summary is a flat value struct, so == compares every field,
	// float64 metrics included: determinism here means bit-identical.
	if a.Summary != b.Summary {
		t.Errorf("aggregate summaries diverged:\n  first:  %+v\n  second: %+v", a.Summary, b.Summary)
	}
	if len(a.PerFamily) != len(b.PerFamily) {
		t.Fatalf("per-family summary counts diverged: %d vs %d", len(a.PerFamily), len(b.PerFamily))
	}
	for i := range a.PerFamily {
		if a.PerFamily[i] != b.PerFamily[i] {
			t.Errorf("family %d summaries diverged:\n  first:  %+v\n  second: %+v",
				i, a.PerFamily[i], b.PerFamily[i])
		}
	}
	if len(a.Plans) != len(b.Plans) {
		t.Errorf("plan history lengths diverged: %d vs %d", len(a.Plans), len(b.Plans))
	}
	if a.ModelLoads != b.ModelLoads {
		t.Errorf("model load counts diverged: %d vs %d", a.ModelLoads, b.ModelLoads)
	}
	if a.ExtraDevices != b.ExtraDevices {
		t.Errorf("provisioned device counts diverged: %d vs %d", a.ExtraDevices, b.ExtraDevices)
	}
}

// TestRepeatedRunTraceByteIdentical is the telemetry determinism contract:
// two complete simulation runs with the same seed and config must emit
// byte-identical lifecycle traces in both export formats. Trace events carry
// virtual timestamps, monotonic sequence numbers, and query/device/batch
// identities, so any nondeterminism in arrival synthesis, routing, batching,
// or the control plane shows up here as a byte diff.
func TestRepeatedRunTraceByteIdentical(t *testing.T) {
	run := func() (*telemetry.Tracer, *telemetry.Registry) {
		cfg := smallConfig(t)
		cfg.Tracer = telemetry.NewTracer(1 << 16)
		cfg.Telemetry = telemetry.NewRegistry()
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(flatTrace(t, cfg.Families, 120, 90)); err != nil {
			t.Fatal(err)
		}
		return cfg.Tracer, cfg.Telemetry
	}
	tr1, reg1 := run()
	tr2, reg2 := run()
	if tr1.Len() == 0 {
		t.Fatal("no trace events recorded")
	}

	var a, b bytes.Buffer
	for name, write := range map[string]func(*telemetry.Tracer, *bytes.Buffer) error{
		"jsonl":  func(tr *telemetry.Tracer, w *bytes.Buffer) error { return tr.WriteJSONL(w) },
		"chrome": func(tr *telemetry.Tracer, w *bytes.Buffer) error { return tr.WriteChromeTrace(w) },
	} {
		a.Reset()
		b.Reset()
		if err := write(tr1, &a); err != nil {
			t.Fatal(err)
		}
		if err := write(tr2, &b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s traces diverged (%d vs %d bytes)", name, a.Len(), b.Len())
		}
	}

	a.Reset()
	b.Reset()
	if err := reg1.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg2.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 {
		t.Fatal("no counters exported")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("counter snapshots diverged:\n  first:\n%s\n  second:\n%s", a.String(), b.String())
	}
}
