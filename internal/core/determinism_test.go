package core

import "testing"

// TestRepeatedRunFullSummaryIdentical is the determinism regression test
// backing the proteus-lint determinism checker: two complete simulation
// runs with the same seed must agree on *every* field of the aggregate
// Summary and of every per-family summary — not just the headline counts —
// plus the controller's plan history length and load accounting. Any
// wall-clock read, unseeded randomness, or unsorted map iteration on the
// simulated path shows up here as a field-level diff.
func TestRepeatedRunFullSummaryIdentical(t *testing.T) {
	run := func() *Result {
		cfg := smallConfig(t)
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(flatTrace(t, cfg.Families, 120, 90))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()

	// metrics.Summary is a flat value struct, so == compares every field,
	// float64 metrics included: determinism here means bit-identical.
	if a.Summary != b.Summary {
		t.Errorf("aggregate summaries diverged:\n  first:  %+v\n  second: %+v", a.Summary, b.Summary)
	}
	if len(a.PerFamily) != len(b.PerFamily) {
		t.Fatalf("per-family summary counts diverged: %d vs %d", len(a.PerFamily), len(b.PerFamily))
	}
	for i := range a.PerFamily {
		if a.PerFamily[i] != b.PerFamily[i] {
			t.Errorf("family %d summaries diverged:\n  first:  %+v\n  second: %+v",
				i, a.PerFamily[i], b.PerFamily[i])
		}
	}
	if len(a.Plans) != len(b.Plans) {
		t.Errorf("plan history lengths diverged: %d vs %d", len(a.Plans), len(b.Plans))
	}
	if a.ModelLoads != b.ModelLoads {
		t.Errorf("model load counts diverged: %d vs %d", a.ModelLoads, b.ModelLoads)
	}
	if a.ExtraDevices != b.ExtraDevices {
		t.Errorf("provisioned device counts diverged: %d vs %d", a.ExtraDevices, b.ExtraDevices)
	}
}
