package core

import (
	"testing"
	"time"

	"proteus/internal/allocator"
	"proteus/internal/batching"
	"proteus/internal/trace"
)

// harness builds a 1-device system with a manually installed plan so that
// worker behaviour can be observed in isolation.
func harness(t *testing.T, policy batching.Policy) (*System, *worker) {
	t.Helper()
	cfg := smallConfig(t)
	cfg.Batching = func() batching.Policy { return policy }
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys, sys.workers[0]
}

func TestWorkerQueueExpiryDropsDoomedQueries(t *testing.T) {
	sys, w := harness(t, batching.NewAccScale())
	// Install a hosted variant manually (CPU, efficientnet b0).
	ref := &allocator.VariantRef{Family: 0, Variant: sys.cfg.Families[0].Variants[0]}
	w.setHosted(ref, 0)
	w.loadingUntil = 0

	// A query whose deadline is already closer than even a batch-1 run.
	sys.engine.Schedule(0, func() {
		w.enqueue(query{id: 1, family: 0, arrival: 0, deadline: time.Millisecond})
	})
	sys.engine.Run()
	sum := sys.collector.Summarize(-1)
	if sum.Dropped != 1 {
		t.Fatalf("doomed query not dropped: %+v", sum)
	}
	if len(w.queue) != 0 {
		t.Fatalf("queue not drained: %d", len(w.queue))
	}
}

func TestWorkerExecutesAndObservesBatch(t *testing.T) {
	sys, w := harness(t, batching.NewAIMD())
	// Worker 0 is a CPU: host the family's fastest variant, the only one
	// SLO-feasible there.
	ref := &allocator.VariantRef{Family: 0, Variant: sys.cfg.Families[0].Variants[0]}
	w.setHosted(ref, 0)
	w.loadingUntil = 0
	slo := sys.slos[0]

	sys.engine.Schedule(0, func() {
		for i := 0; i < 3; i++ {
			w.enqueue(query{id: uint64(i), family: 0, arrival: 0, deadline: 4 * slo})
		}
	})
	sys.engine.Run()
	sum := sys.collector.Summarize(-1)
	if sum.Served+sum.Late != 3 {
		t.Fatalf("batch incomplete: %+v", sum)
	}
	if w.batchesRun == 0 {
		t.Fatal("no batches recorded")
	}
}

func TestWorkerWithoutModelShedsEverything(t *testing.T) {
	sys, w := harness(t, batching.NewAccScale())
	sys.engine.Schedule(0, func() {
		w.enqueue(query{id: 1, family: 0, arrival: 0, deadline: time.Second})
	})
	sys.engine.Run()
	if sum := sys.collector.Summarize(-1); sum.Dropped != 1 {
		t.Fatalf("idle-device query not shed: %+v", sum)
	}
}

func TestWorkerLoadingDelaysExecution(t *testing.T) {
	sys, w := harness(t, batching.NewAccScale())
	ref := &allocator.VariantRef{Family: 0, Variant: sys.cfg.Families[0].Variants[0]}
	slo := sys.slos[0]
	deadline := sys.cfg.ModelLoadDelay + 3*slo
	sys.engine.Schedule(0, func() {
		w.setHosted(ref, sys.engine.Now()) // starts the load timer
		w.enqueue(query{id: 1, family: 0, arrival: 0, deadline: deadline})
	})
	sys.engine.Run()
	sum := sys.collector.Summarize(-1)
	if sum.Served != 1 {
		t.Fatalf("query not served after load: %+v", sum)
	}
	// Completion cannot precede the model-load delay.
	if sum.MeanLatency < sys.cfg.ModelLoadDelay {
		t.Fatalf("latency %v below the load delay %v", sum.MeanLatency, sys.cfg.ModelLoadDelay)
	}
}

func TestWorkerRateEstimator(t *testing.T) {
	sys, w := harness(t, batching.NewAccScale())
	_ = sys
	// 100 arrivals in second 0, then silence.
	for i := 0; i < 100; i++ {
		w.noteArrival(time.Duration(i) * 10 * time.Millisecond)
	}
	if r := w.arrivalRate(); r < 90 {
		t.Fatalf("open-bucket rate %v, want ~100", r)
	}
	// Close the bucket and decay through idle seconds.
	w.noteArrival(5 * time.Second)
	if r := w.arrivalRate(); r > 40 {
		t.Fatalf("rate %v did not decay after idle seconds", r)
	}
}

func TestRunArrivalsRejectsBadInitialDemand(t *testing.T) {
	cfg := smallConfig(t)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunArrivals(nil, time.Second, []float64{1}); err == nil {
		t.Fatal("mismatched initial demand accepted")
	}
}

func TestRunArrivalsExplicitSequence(t *testing.T) {
	cfg := smallConfig(t)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var arr []trace.Arrival
	for i := 0; i < 200; i++ {
		arr = append(arr, trace.Arrival{Time: time.Duration(i) * 50 * time.Millisecond, Family: i % 2})
	}
	res, err := sys.RunArrivals(arr, 10*time.Second, []float64{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Queries != 200 {
		t.Fatalf("queries %d", res.Summary.Queries)
	}
	if res.Summary.Served == 0 {
		t.Fatal("nothing served")
	}
}
