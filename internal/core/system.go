package core

import (
	"fmt"
	"time"

	"proteus/internal/allocator"
	"proteus/internal/cluster"
	"proteus/internal/controlplane"
	"proteus/internal/flightrec"
	"proteus/internal/metrics"
	"proteus/internal/models"
	"proteus/internal/numeric"
	"proteus/internal/overload"
	"proteus/internal/profiles"
	"proteus/internal/router"
	"proteus/internal/simulation"
	"proteus/internal/telemetry"
	"proteus/internal/trace"
	"proteus/internal/tsdb"
)

// System is one assembled inference-serving system under simulation.
type System struct {
	cfg     Config
	engine  *simulation.Engine
	rng     *numeric.RNG
	workers []*worker
	slos    []time.Duration

	table        *router.Table
	guard        *overload.Guard
	plan         *allocator.Allocation
	stats        *controlplane.Stats
	controller   *controlplane.Controller
	collector    *metrics.Collector
	profileStore *profiles.Store

	nextID      uint64
	nextBatchID int
	reallocErr  error
	// planSeq is the audit-log sequence number of the plan currently in
	// force (0 until the initial plan applies). Stamped onto trace events
	// so latency attribution can join queries to control decisions.
	planSeq int32

	// Telemetry: tracer, counter bundles and the tsdb recorder are
	// nil-safe, so an uninstrumented run pays only a nil check per event.
	tracer   *telemetry.Tracer
	tc       telemetry.SystemCounters
	rc       telemetry.RouterCounters
	recorder *tsdb.Recorder
	flight   *flightrec.Recorder
	// pendingBurns defers burn-start incident bundles until after the
	// sampling tick that detected them has refreshed the flight recorder's
	// rings, so a bundle always includes the burn's own second. Burn
	// transitions only fire inside Recorder.Sample, which the event loop
	// runs single-threaded, so no locking is needed.
	pendingBurns []tsdb.BurnEvent

	// Failure state: down[d] marks device d as failed; pendingFaultRetry
	// tracks a fault-triggered re-allocation deferred by the cooldown, with
	// pendingFaultTrigger holding the most recent coalesced trigger.
	down                []bool
	pendingFaultRetry   bool
	pendingFaultTrigger string

	// Hardware scaling in tandem (§7): extra devices provisioned and in
	// flight.
	extraProvisioned int
	extraPending     int
}

// NewSystem builds a system from the config.
func NewSystem(cfg Config) (*System, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &System{
		cfg:    cfg,
		engine: simulation.NewEngine(),
		rng:    numeric.NewRNG(cfg.Seed),
		slos:   cfg.SLOs(),
		tracer: cfg.Tracer,
		tc:     telemetry.NewSystemCounters(cfg.Telemetry),
		rc:     telemetry.NewRouterCounters(cfg.Telemetry),
	}
	// Ring-wrap evictions surface as trace_dropped_total so truncated
	// traces are visible to attribution (both arguments are nil-safe).
	cfg.Tracer.SetDropCounter(cfg.Telemetry.Counter("trace_dropped_total"))
	s.collector = metrics.NewCollector(cfg.MetricsInterval, cfg.FamilyNames())
	// The controller's model profiler (§3): every (variant, device type,
	// batch) latency is measured up front and stored in the O(1) key-value
	// store the workers consult on their hot path.
	s.profileStore = profiles.NewStore()
	reg := models.MustRegistry(cfg.Families)
	types := make(map[cluster.DeviceType]bool)
	var typeList []cluster.DeviceType
	for _, d := range cfg.Cluster.Devices() {
		if !types[d.Spec.Type] {
			types[d.Spec.Type] = true
			typeList = append(typeList, d.Spec.Type)
		}
	}
	s.profileStore.ProfileAll(reg, typeList, maxProfiledBatch)
	s.stats = controlplane.NewStats(len(cfg.Families), int(cfg.DemandWindow/time.Second), cfg.BurstFactor)
	s.controller = controlplane.NewController(
		cfg.Allocator, cfg.Cluster, cfg.Families, s.slos, cfg.ControlPeriod, cfg.BurstCooldown)
	s.controller.Instrument(cfg.Telemetry)
	s.controller.SetHistoryLimit(cfg.PlanHistory)
	s.recorder = cfg.TSDB
	s.recorder.Init(len(cfg.Families), s.onBurn)
	s.flight = cfg.Flight
	s.flight.Init(flightrec.Sources{
		Tracer:   cfg.Tracer,
		Registry: cfg.Telemetry,
		TSDB:     cfg.TSDB,
		Plans:    s.controller.History,
	})
	if s.flight != nil {
		// Any plan the primary allocator did not produce is an anomaly worth
		// a bundle: the fallback chain stepped in or the solve failed.
		s.controller.SetRecordHook(func(rec controlplane.PlanRecord) {
			if rec.Stage == "primary" {
				return
			}
			detail := fmt.Sprintf("stage=%s solver=%s", rec.Stage, rec.Solver)
			if rec.Err != "" {
				detail += " err=" + rec.Err
			}
			s.flight.Trigger(rec.At, "alloc_fallback", detail, -1, -1)
		})
	}
	if cfg.Overload != nil {
		s.guard = overload.New(*cfg.Overload, len(cfg.Families), cfg.Cluster.Size())
		s.guard.Instrument(cfg.Telemetry)
	}
	s.tc.DevicesUp.Set(int64(cfg.Cluster.Size()))
	for _, dev := range cfg.Cluster.Devices() {
		s.workers = append(s.workers, &worker{sys: s, dev: dev, policy: cfg.Batching()})
	}
	s.down = make([]bool, cfg.Cluster.Size())
	s.plan = allocator.NewAllocation(&allocator.Input{
		Cluster:  cfg.Cluster,
		Families: cfg.Families,
		SLOs:     s.slos,
		Demand:   make([]float64, len(cfg.Families)),
	})
	s.table = router.BuildTable(s.plan, len(cfg.Families))
	return s, nil
}

// Result is the outcome of a simulation run.
type Result struct {
	// Collector holds the full per-bin time series.
	Collector *metrics.Collector
	// Summary aggregates all families (§6.1.4 metrics).
	Summary metrics.Summary
	// PerFamily aggregates each family separately (Fig. 9).
	PerFamily []metrics.Summary
	// Plans is the controller's re-allocation history.
	Plans []controlplane.PlanRecord
	// ModelLoads counts model-variant load events across workers.
	ModelLoads int
	// ExtraDevices counts servers provisioned by the §7 hardware-scaling
	// extension during the run (0 unless Config.Elastic is set).
	ExtraDevices int
	// Wall is the real time the simulation took.
	Wall time.Duration
}

// Run replays the trace through the system and returns the collected
// metrics. The first allocation is computed from the trace's initial demand
// (the paper's systems likewise pre-load an initial plan).
func (s *System) Run(tr *trace.Trace) (*Result, error) {
	if len(tr.Families) != len(s.cfg.Families) {
		return nil, fmt.Errorf("core: trace has %d families, system has %d", len(tr.Families), len(s.cfg.Families))
	}
	// Initial plan from the first control period's average demand.
	warm := int(s.cfg.ControlPeriod / time.Second)
	if warm > tr.Seconds() {
		warm = tr.Seconds()
	}
	initial := make([]float64, len(s.cfg.Families))
	if warm > 0 {
		for t := 0; t < warm; t++ {
			for q := range initial {
				initial[q] += tr.Demand[t][q]
			}
		}
		for q := range initial {
			initial[q] /= float64(warm)
		}
	}
	arrivals := tr.Arrivals(s.rng.Split())
	return s.RunArrivals(arrivals, time.Duration(tr.Seconds())*time.Second, initial)
}

// RunArrivals replays an explicit arrival sequence (already sorted by time)
// for the given duration, pre-loading an initial plan for initialDemand.
// It is the entry point for the §6.4 batching experiments, whose arrival
// processes are not Poisson.
func (s *System) RunArrivals(arrivals []trace.Arrival, duration time.Duration, initialDemand []float64) (*Result, error) {
	start := time.Now() //lint:allow determinism wall-clock Result.Wall measurement; the simulated clock is engine.Now
	if len(initialDemand) != len(s.cfg.Families) {
		return nil, fmt.Errorf("core: initial demand has %d entries, want %d", len(initialDemand), len(s.cfg.Families))
	}
	initial := make([]float64, len(initialDemand))
	for q := range initial {
		initial[q] = initialDemand[q] * s.cfg.Headroom
	}
	plan, err := s.controller.Reallocate(0, initial, "initial")
	if err != nil {
		return nil, fmt.Errorf("core: initial allocation: %w", err)
	}
	s.planSeq = int32(s.controller.LastPlanSeq())
	s.applyPlan(plan, true)

	for _, a := range arrivals {
		a := a
		s.engine.Schedule(a.Time, func() { s.onArrival(a) })
	}

	// Periodic controller invocations for dynamic allocators.
	if s.controller.Dynamic() {
		for at := s.cfg.ControlPeriod; at < duration; at += s.cfg.ControlPeriod {
			at := at
			s.engine.Schedule(at, func() { s.reallocate("periodic") })
		}
	}

	// Device time-series sampling on the virtual clock (the live server
	// runs the same recorder off a wall-clock ticker).
	if si := s.recorder.SampleInterval(); si > 0 {
		for at := si; at <= duration; at += si {
			at := at
			s.engine.Schedule(at, func() { s.sampleTSDB() })
		}
	}

	// Flight-recorder ring refreshes normally ride the sampling events
	// (sampleTSDB ticks the recorder after each sample); without a tsdb
	// recorder they need their own 1s cadence for counter snapshots.
	if s.flight != nil && s.recorder.SampleInterval() <= 0 {
		for at := time.Second; at <= duration; at += time.Second {
			at := at
			s.engine.Schedule(at, func() { s.flight.Tick(at) })
		}
	}

	// Overload-guard ticks on the virtual clock: escalation, deferred
	// degrades and restores advance at a fixed 1s cadence (the live server
	// runs the same guard off a wall-clock ticker).
	if s.guard != nil {
		for at := time.Second; at <= duration; at += time.Second {
			at := at
			s.engine.Schedule(at, func() { s.applyOverloadChanges(s.guard.Tick(at)) })
		}
	}

	// Fault injection: the schedule's events become simulation events.
	if s.cfg.Faults != nil {
		for _, ev := range s.cfg.Faults.Events {
			ev := ev
			s.engine.Schedule(ev.FailAt, func() { s.failDevice(ev.Device) })
			if ev.RecoverAt > 0 {
				s.engine.Schedule(ev.RecoverAt, func() { s.recoverDevice(ev.Device) })
			}
		}
	}

	s.engine.Run()
	if s.reallocErr != nil {
		return nil, s.reallocErr
	}

	res := &Result{
		Collector: s.collector,
		Summary:   s.collector.Summarize(-1),
		Plans:     s.controller.History(),
		Wall:      time.Since(start), //lint:allow determinism reporting-only wall-clock measurement
	}
	for q := range s.cfg.Families {
		res.PerFamily = append(res.PerFamily, s.collector.Summarize(q))
	}
	for _, w := range s.workers {
		res.ModelLoads += w.loads
	}
	res.ExtraDevices = s.extraProvisioned
	return res, nil
}

// Collector exposes the metrics collector (for live inspection in tests).
func (s *System) Collector() *metrics.Collector { return s.collector }

// sampleTSDB snapshots every device into the tsdb recorder.
func (s *System) sampleTSDB() {
	now := s.engine.Now()
	states := make([]tsdb.DeviceState, len(s.workers))
	for d, w := range s.workers {
		sat, pressured := s.guard.DeviceSignal(d)
		states[d] = tsdb.DeviceState{
			Up:         !w.down,
			QueueDepth: len(w.queue) + len(w.inflight),
			LastBatch:  w.lastBatch,
			Variant:    w.hostedID(),
			BusyTime:   w.busyTime(now),
			SatMilli:   sat,
			Pressured:  pressured,
		}
	}
	s.recorder.Sample(now, states)
	// Refresh the flight recorder's rings with this tick's state, then fire
	// any burn-start bundles the sample just detected so they capture it.
	if s.flight != nil {
		s.flight.Tick(now)
		for _, ev := range s.pendingBurns {
			s.flight.Trigger(ev.At, "slo_burn",
				fmt.Sprintf("family=%d short=%.2f long=%.2f", ev.Family, ev.ShortBurn, ev.LongBurn),
				ev.Family, -1)
		}
		s.pendingBurns = s.pendingBurns[:0]
	}
}

// onBurn receives SLO burn-state transitions from the tsdb recorder: they
// enter the lifecycle trace and the controller's audit log, and — when
// enabled — a burn start triggers an early re-allocation. Runs under the
// recorder's lock, so it must not call back into the recorder.
func (s *System) onBurn(ev tsdb.BurnEvent) {
	kind := telemetry.EvSLOBurnStart
	if !ev.Start {
		kind = telemetry.EvSLOBurnEnd
	}
	s.tracer.Record(ev.At, kind, 0, ev.Family, -1, -1)
	s.controller.NoteBurn(controlplane.SLOBurnRecord{
		At:        ev.At,
		Family:    ev.Family,
		Start:     ev.Start,
		ShortBurn: ev.ShortBurn,
		LongBurn:  ev.LongBurn,
	})
	// Emergency accuracy degradation reacts to the burn edge immediately —
	// never waiting for the next control period. The guard's lock is a leaf,
	// so calling it under the recorder's lock is safe.
	s.applyOverloadChanges(s.guard.OnBurn(ev.At, ev.Family, ev.Start))
	// A burn's leading edge snapshots an incident bundle — deferred to just
	// after the sampling tick completes (sampleTSDB flushes pendingBurns),
	// both because Trigger must not run under the recorder's lock with a
	// stale ring and so the bundle includes the burn's own second.
	if ev.Start && s.flight != nil {
		s.pendingBurns = append(s.pendingBurns, ev)
	}
	if ev.Start && s.cfg.SLOBurnRealloc && s.controller.Dynamic() && s.controller.AllowBurst(ev.At) {
		s.reallocate("slo_burn")
	}
}

func (s *System) onArrival(a trace.Arrival) {
	now := s.engine.Now()
	s.stats.Observe(now, a.Family)
	s.collector.Arrival(now, a.Family)
	s.recorder.Arrival(now, a.Family)
	q := query{
		id:       s.nextID,
		family:   a.Family,
		arrival:  now,
		deadline: now + s.slos[a.Family],
	}
	s.nextID++
	s.tc.Arrivals.Inc()
	s.tracer.Record(now, telemetry.EvArrival, q.id, q.family, -1, -1)
	s.route(now, q)

	// Burst detection on the data path's monitoring daemon (§3).
	if s.controller.Dynamic() && s.stats.AnyBurst(now) && s.controller.AllowBurst(now) {
		s.reallocate("burst")
	}
}

func (s *System) route(now time.Duration, q query) {
	var d int
	if s.guard != nil {
		d = s.table.PickExcluding(q.family, s.rng, func(dev int) bool {
			return s.guard.Banned(q.family, dev)
		})
		if d >= 0 && !s.guard.Admit(now, d, q.deadline) {
			// Shed-on-arrival: the query provably cannot meet its deadline
			// behind d's backlog, so executing it would only waste capacity.
			s.dropQuery(now, q, telemetry.CauseShedAdmission)
			return
		}
	} else {
		d = s.table.Pick(q.family, s.rng)
	}
	if d < 0 {
		s.dropQuery(now, q, telemetry.CauseNoRoute)
		return
	}
	s.tracer.Record(now, telemetry.EvRoute, q.id, q.family, d, -1)
	s.workers[d].enqueue(q)
}

// traceCtx assembles the causal context stamped onto trace events: the plan
// in force, the family's active degradation episode, and the event's cause.
// Call only when the tracer is non-nil — the guard lookup is not free.
func (s *System) traceCtx(family int, cause telemetry.Cause) telemetry.Ctx {
	ctx := telemetry.Ctx{Plan: s.planSeq, Cause: cause}
	if s.guard != nil {
		ctx.Episode = int32(s.guard.EpisodeID(family))
	}
	return ctx
}

// applyOverloadChanges publishes the guard's degradation-ladder transitions:
// tracer events (degrade_start carries the new level in the batch field) and
// decision-audit records attached to the next PlanRecord.
func (s *System) applyOverloadChanges(changes []overload.Change) {
	for _, ch := range changes {
		kind := telemetry.EvDegradeStart
		if ch.Kind == overload.Restore {
			kind = telemetry.EvDegradeEnd
		}
		s.tracer.RecordCtx(ch.At, kind, 0, ch.Family, -1, ch.Level,
			telemetry.Ctx{Plan: s.planSeq, Episode: int32(ch.Episode)})
		s.controller.NoteOverload(controlplane.OverloadRecord{
			At:      ch.At,
			Family:  ch.Family,
			Kind:    string(ch.Kind),
			Level:   ch.Level,
			Episode: ch.Episode,
			Reason:  ch.Reason,
		})
		// A degradation opening is the overload incident's leading edge;
		// escalations and restores are just episode progress.
		if ch.Kind == overload.Degrade {
			s.flight.Trigger(ch.At, "overload",
				fmt.Sprintf("family=%d level=%d reason=%s", ch.Family, ch.Level, ch.Reason),
				ch.Family, -1)
		}
	}
}

func (s *System) reallocate(trigger string) {
	now := s.engine.Now()
	demand := s.stats.Estimates(now)
	for q := range demand {
		if trigger == "burst" {
			// A burst re-allocation reacts to the instantaneous rate; the
			// periodic path sticks to the windowed estimate so Poisson
			// noise does not churn the plan.
			if inst := s.stats.Monitors[q].InstantRate(now); inst > demand[q] {
				demand[q] = inst
			}
		}
		demand[q] *= s.cfg.Headroom
	}
	// §4: re-allocate in response to macro-scale demand changes. When the
	// demand estimate is close to the current plan's target, keep the plan
	// — re-solving would only churn model loads.
	if trigger == "periodic" && !s.controller.DemandChanged(demand, 0.1) {
		return
	}
	plan, err := s.controller.Reallocate(now, demand, trigger)
	if err != nil {
		if s.reallocErr == nil {
			s.reallocErr = fmt.Errorf("core: re-allocation at %v: %w", now, err)
		}
		return
	}
	// The new plan's audit sequence number becomes current only when the
	// plan itself does, so queries enqueued during the apply delay still
	// blame the plan they actually ran under.
	seq := int32(s.controller.LastPlanSeq())
	// The plan takes effect after the control-path delay (§4: the solver is
	// off the critical path, so serving continues meanwhile).
	s.engine.After(s.cfg.PlanApplyDelay, func() {
		s.planSeq = seq
		s.applyPlan(plan, false)
		if trigger == "failure" {
			// The surviving-device plan is live: failures are handled.
			s.collector.FailureHandled(s.engine.Now())
		}
	})

	// Hardware scaling in tandem (§7): a plan that sheds demand means even
	// the lowest-accuracy hosting cannot cover the load — start a server;
	// accuracy scaling carries the burst until it arrives.
	if e := s.cfg.Elastic; e != nil && plan.DemandScale < 0.999 &&
		s.extraProvisioned+s.extraPending < e.MaxExtra {
		s.extraPending++
		s.engine.After(e.ProvisionDelay, s.provisionDevice)
	}
}

// provisionDevice adds one elastic device to the fleet and re-allocates so
// the new capacity is put to use immediately.
func (s *System) provisionDevice() {
	e := s.cfg.Elastic
	s.extraPending--
	s.extraProvisioned++
	grown := s.controller.Cluster().WithExtra(e.Type)
	s.controller.SetCluster(grown)
	dev := grown.Device(grown.Size() - 1)
	s.workers = append(s.workers, &worker{sys: s, dev: dev, policy: s.cfg.Batching()})
	s.down = append(s.down, false)
	s.reallocate("provision")
}

// applyPlan installs a new allocation: per-worker hosted variants (with
// load delays and queue re-routing), planned capacities, and the routing
// table — masked to exclude devices that are still loading their new model,
// so sub-second-SLO queries never sit behind a multi-second model load.
func (s *System) applyPlan(plan *allocator.Allocation, initial bool) {
	now := s.engine.Now()
	s.plan = plan
	s.tc.DemandScaleMilli.Set(int64(plan.DemandScale * 1000))
	if err := s.stats.SetPlanned(plan.ServedQPS); err != nil {
		// Plans come from our own controller so the shapes always agree;
		// surface any disagreement as a run error rather than panicking.
		s.reallocErr = err
	}
	var rerouted []query
	for d, w := range s.workers {
		if d < len(s.down) && s.down[d] {
			// Failed devices keep hosting nothing; recovery reloads from the
			// then-current plan.
			continue
		}
		var hostedRef *allocator.VariantRef
		newID := ""
		if d < len(plan.Hosted) {
			hostedRef = plan.Hosted[d]
			newID = plan.HostedID(d)
		}
		if newID == w.hostedID() {
			continue
		}
		rerouted = append(rerouted, w.takeQueue()...)
		w.setHosted(hostedRef, now)
		if initial {
			// Initial plan: models are loaded before the experiment starts.
			w.loadingUntil = 0
		}
		if w.loadingUntil > now {
			// Re-admit the device into the routing table once ready.
			s.engine.Schedule(w.loadingUntil, func() {
				s.rebuildTable()
				w.evaluate()
			})
		}
	}
	s.rebuildTable()
	for _, q := range rerouted {
		s.route(now, q)
	}
	for _, w := range s.workers {
		w.evaluate()
	}
}

// rebuildTable rebuilds the routing table from the current plan, excluding
// devices whose model is still loading. Weights renormalize per family so
// ready devices absorb the load meanwhile.
func (s *System) rebuildTable() {
	now := s.engine.Now()
	masked := allocator.Allocation{
		Hosted:  s.plan.Hosted,
		Routing: make([][]float64, len(s.plan.Routing)),
	}
	admit := make([]float64, len(s.plan.Routing))
	for q, row := range s.plan.Routing {
		masked.Routing[q] = make([]float64, len(row))
		for d, y := range row {
			if y <= 0 {
				continue
			}
			admit[q] += y
			if w := s.workers[d]; w.down || w.loadingUntil > now {
				continue
			}
			masked.Routing[q][d] = y
		}
	}
	s.table = router.BuildTable(&masked, len(s.cfg.Families))
	s.table.SetCounters(s.rc)
	if s.cfg.DisableAdmission {
		for q := range admit {
			if admit[q] > 0 {
				admit[q] = 1
			}
		}
	}
	// Admission follows the full plan, not the load-masked subset: during a
	// model load the remaining devices absorb the full admitted load.
	s.table.SetAdmission(admit)
	s.syncGuardPlan(now)
}

// syncGuardPlan refreshes the overload guard's per-device profiles from the
// workers' current hosting (rebuildTable's call sites cover every hosting
// change: plan application, load completion, failure, recovery).
func (s *System) syncGuardPlan(now time.Duration) {
	if s.guard == nil {
		return
	}
	profs := make([]overload.DeviceProfile, len(s.workers))
	for d, w := range s.workers {
		profs[d] = overload.DeviceProfile{Family: -1}
		if w.down || w.hosted == nil || w.maxBatch < 1 {
			continue
		}
		f := w.hosted.Family
		profs[d] = overload.DeviceProfile{
			Family:   f,
			Accuracy: w.hosted.Variant.Accuracy,
			MaxBatch: w.maxBatch,
			Lat1:     w.procTime(1),
			LatMax:   w.procTime(w.maxBatch),
			SLO:      s.slos[f],
		}
	}
	s.guard.SetPlan(now, profs)
}

func (s *System) dropQuery(now time.Duration, q query, cause telemetry.Cause) {
	s.collector.Dropped(now, q.family)
	s.recorder.Violation(now, q.family)
	s.tc.Dropped.Inc()
	if s.tracer != nil {
		s.tracer.RecordCtx(now, telemetry.EvDropped, q.id, q.family, -1, -1, s.traceCtx(q.family, cause))
	}
}

func (s *System) serveQuery(now time.Duration, q query, accuracy float64, device, batch int) {
	s.collector.Served(now, q.family, accuracy, now-q.arrival)
	s.tc.Served.Inc()
	if s.tracer != nil {
		s.tracer.RecordCtx(now, telemetry.EvDone, q.id, q.family, device, batch, s.traceCtx(q.family, telemetry.CauseNone))
	}
	s.recordPhases(now, q, device)
}

func (s *System) lateQuery(now time.Duration, q query, device, batch int) {
	s.collector.Late(now, q.family, now-q.arrival)
	s.recorder.Violation(now, q.family)
	s.tc.Late.Inc()
	if s.tracer != nil {
		s.tracer.RecordCtx(now, telemetry.EvLate, q.id, q.family, device, batch, s.traceCtx(q.family, telemetry.CauseNone))
	}
	s.recordPhases(now, q, device)
}

// recordPhases differences the query's lifecycle timestamps into per-phase
// durations for the tsdb decomposition histograms. Response stays zero on
// the virtual clock: completion and response delivery coincide.
func (s *System) recordPhases(done time.Duration, q query, device int) {
	s.recorder.RecordPhases(q.family, device, tsdb.PhaseDurations{
		Admission: q.enqueueAt - q.arrival,
		Queue:     q.formAt - q.enqueueAt,
		BatchForm: q.execAt - q.formAt,
		Exec:      done - q.execAt,
	})
}
