package core

import (
	"testing"
	"time"

	"proteus/internal/cluster"
)

// TestFaultToleranceKillQuarter is the graceful-degradation scenario: a
// quarter of the fleet dies mid-trace and later recovers. The run must
// produce a "failure"-triggered re-allocation onto the survivors, conserve
// every injected query, and recover accuracy after the devices return.
func TestFaultToleranceKillQuarter(t *testing.T) {
	cfg := smallConfig(t)
	cfg.Faults = cluster.KillFraction(cfg.Cluster, 0.25, 60*time.Second, 120*time.Second)
	if len(cfg.Faults.Events) != 2 {
		t.Fatalf("expected 2 victims, got %d", len(cfg.Faults.Events))
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(flatTrace(t, cfg.Families, 300, 180))
	if err != nil {
		t.Fatal(err)
	}

	// Conservation: every injected query is accounted for exactly once.
	s := res.Summary
	if s.Queries == 0 {
		t.Fatal("no queries simulated")
	}
	if s.Served+s.Late+s.Dropped != s.Queries {
		t.Fatalf("conservation violated: %d served + %d late + %d dropped != %d queries",
			s.Served, s.Late, s.Dropped, s.Queries)
	}

	// Failure accounting.
	if s.Failures != 2 || s.Recoveries != 2 {
		t.Fatalf("failures=%d recoveries=%d, want 2/2", s.Failures, s.Recoveries)
	}
	if s.Requeued == 0 {
		t.Fatal("killing loaded devices must strand queries")
	}
	if s.MeanTimeToRecover <= 0 {
		t.Fatal("handled failures must yield a time-to-recover")
	}

	// The control plane must have re-planned on the failure (and again on
	// recovery), not just at the periodic ticks.
	var failurePlan, recoveryPlan bool
	for _, p := range res.Plans {
		switch p.Trigger {
		case "failure":
			failurePlan = true
			if p.At < 60*time.Second {
				t.Fatalf("failure plan at %v predates the failure", p.At)
			}
		case "recovery":
			recoveryPlan = true
		}
	}
	if !failurePlan {
		t.Fatalf("no failure-triggered plan in history: %+v", res.Plans)
	}
	if !recoveryPlan {
		t.Fatalf("no recovery-triggered plan in history: %+v", res.Plans)
	}

	// The failure plan must live entirely on the survivors.
	downAt := map[int]bool{}
	for _, ev := range cfg.Faults.Events {
		downAt[ev.Device] = true
	}
	for _, p := range res.Plans {
		if p.Trigger != "failure" {
			continue
		}
		for id, n := range p.HostedVariants {
			if n > sys.cfg.Cluster.Size()-len(downAt) {
				t.Fatalf("failure plan hosts %s on %d devices with only %d healthy",
					id, n, sys.cfg.Cluster.Size()-len(downAt))
			}
		}
	}

	// Accuracy over the timeline: compare the mean effective accuracy while
	// degraded (devices down) against after recovery. With a quarter of the
	// fleet gone at this load, the MILP must trade accuracy for coverage,
	// and win it back once capacity returns.
	series := res.Collector.Series(-1)
	window := func(from, to time.Duration) (float64, int) {
		sum, n := 0.0, 0
		for _, p := range series {
			if p.Start < from || p.Start >= to {
				continue
			}
			if p.EffectiveAccuracy == p.EffectiveAccuracy { // skip NaN bins
				sum += p.EffectiveAccuracy
				n++
			}
		}
		return sum / float64(max(n, 1)), n
	}
	degraded, n1 := window(70*time.Second, 120*time.Second)
	recovered, n2 := window(140*time.Second, 180*time.Second)
	if n1 == 0 || n2 == 0 {
		t.Fatal("empty accuracy windows")
	}
	if degraded >= recovered {
		t.Fatalf("accuracy should dip while degraded (%.2f) and recover afterwards (%.2f)",
			degraded, recovered)
	}
}

// TestFaultRunsAreDeterministic pins the whole failure pipeline: two runs
// with the same seed and schedule must agree query for query.
func TestFaultRunsAreDeterministic(t *testing.T) {
	run := func() (int, int, int, int, int) {
		cfg := smallConfig(t)
		cfg.Faults = cluster.KillFraction(cfg.Cluster, 0.25, 30*time.Second, 60*time.Second)
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(flatTrace(t, cfg.Families, 80, 90))
		if err != nil {
			t.Fatal(err)
		}
		s := res.Summary
		return s.Queries, s.Served, s.Dropped, s.Requeued, len(res.Plans)
	}
	q1, s1, d1, r1, p1 := run()
	q2, s2, d2, r2, p2 := run()
	if q1 != q2 || s1 != s2 || d1 != d2 || r1 != r2 || p1 != p2 {
		t.Fatalf("fault runs diverged: (%d %d %d %d %d) vs (%d %d %d %d %d)",
			q1, s1, d1, r1, p1, q2, s2, d2, r2, p2)
	}
}

// TestPermanentFailureDegradesButServes kills devices that never come back:
// the system must keep serving on the survivors for the rest of the run.
func TestPermanentFailureDegradesButServes(t *testing.T) {
	cfg := smallConfig(t)
	cfg.Faults = cluster.KillFraction(cfg.Cluster, 0.25, 40*time.Second, 0)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(flatTrace(t, cfg.Families, 60, 120))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if s.Recoveries != 0 {
		t.Fatalf("nothing should recover, got %d", s.Recoveries)
	}
	if s.Served+s.Late+s.Dropped != s.Queries {
		t.Fatal("conservation violated")
	}
	// The tail of the run still serves from the surviving devices.
	series := res.Collector.Series(-1)
	tail := series[len(series)-3:]
	for _, p := range tail {
		if p.ThroughputQPS <= 0 {
			t.Fatalf("no throughput at %v after permanent failure", p.Start)
		}
	}
}

// TestFaultScheduleValidatedByConfig pins the config-path validation.
func TestFaultScheduleValidatedByConfig(t *testing.T) {
	cfg := smallConfig(t)
	cfg.Faults = &cluster.FailureSchedule{Events: []cluster.FailureEvent{
		{Device: 99, FailAt: time.Second},
	}}
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("out-of-range fault device must fail config validation")
	}
}
