package tsdb

import (
	"testing"
	"time"
)

func testSLO() SLOConfig {
	return SLOConfig{Target: 0.01, BurnRate: 2, ShortWindow: 5 * time.Second, LongWindow: 60 * time.Second}
}

func TestSLODefaults(t *testing.T) {
	cfg := SLOConfig{}.withDefaults()
	if cfg.Target != 0.01 || cfg.BurnRate != 2 {
		t.Fatalf("defaults: target=%v burn=%v", cfg.Target, cfg.BurnRate)
	}
	if cfg.ShortWindow != 5*time.Second || cfg.LongWindow != 60*time.Second {
		t.Fatalf("defaults: short=%v long=%v", cfg.ShortWindow, cfg.LongWindow)
	}
}

func TestSLOCurrentSecondExcluded(t *testing.T) {
	m := newSLOMonitor(testSLO(), 1)
	// All activity in second 0: 10 arrivals, all violated.
	for i := 0; i < 10; i++ {
		m.observeArrival(0, 100*time.Millisecond)
		m.observeViolation(0, 100*time.Millisecond)
	}
	// Second 0 is still the current (partial) second: windows see nothing.
	if r := m.ratio(0, 900*time.Millisecond, m.shortSecs); r != 0 {
		t.Fatalf("partial current second leaked into window: ratio=%v", r)
	}
	// One tick later second 0 is complete and fully violated.
	if r := m.ratio(0, 1100*time.Millisecond, m.shortSecs); r != 1 {
		t.Fatalf("complete second not counted: ratio=%v", r)
	}
}

func TestSLOWindowEdge(t *testing.T) {
	m := newSLOMonitor(testSLO(), 1)
	// Violations confined to second 0.
	for i := 0; i < 10; i++ {
		m.observeArrival(0, 500*time.Millisecond)
		m.observeViolation(0, 500*time.Millisecond)
	}
	// Clean traffic for seconds 1..6.
	for s := 1; s <= 6; s++ {
		for i := 0; i < 10; i++ {
			m.observeArrival(0, time.Duration(s)*time.Second+500*time.Millisecond)
		}
	}
	// At now=5.x the short window covers seconds [0,5): second 0 included.
	if r := m.ratio(0, 5500*time.Millisecond, m.shortSecs); r == 0 {
		t.Fatal("second 0 should still be inside the 5s window at t=5.5s")
	}
	// At now=6.x the short window covers seconds [1,6): second 0 aged out.
	if r := m.ratio(0, 6500*time.Millisecond, m.shortSecs); r != 0 {
		t.Fatalf("second 0 should have aged out at t=6.5s: ratio=%v", r)
	}
}

func TestSLORingWrap(t *testing.T) {
	m := newSLOMonitor(testSLO(), 1)
	n := len(m.fams[0].at) // longSecs+1
	// Write a violated second, then advance far past a full ring revolution.
	m.observeArrival(0, 500*time.Millisecond)
	m.observeViolation(0, 500*time.Millisecond)
	far := time.Duration(3*n) * time.Second
	m.observeArrival(0, far+500*time.Millisecond)
	// The old slot must read as stale, not as a phantom violation.
	if r := m.ratio(0, far+time.Second+500*time.Millisecond, m.longSecs); r != 0 {
		t.Fatalf("stale slot resurfaced after ring wrap: ratio=%v", r)
	}
}

func TestSLOBurnStartRequiresBothWindows(t *testing.T) {
	m := newSLOMonitor(testSLO(), 1)
	// Seconds 0..4 violated heavily: short window burns immediately, but the
	// long window (60s) needs the same ratio, and with only 5 violated
	// seconds out of 60 the long ratio is ~8.3% -> long burn ~8.3 >= 2, so
	// actually both fire. Use a diluted long window instead: 55 clean seconds
	// of heavy traffic first, then a short violated burst whose long-window
	// ratio stays under target*burnrate.
	for s := 0; s < 52; s++ {
		at := time.Duration(s)*time.Second + 500*time.Millisecond
		for i := 0; i < 1000; i++ {
			m.observeArrival(0, at)
		}
	}
	// Seconds 52..54: no traffic. Seconds 55..56: 10 arrivals each, all
	// violated. The short window [52,57) sees only the burst (ratio 1); the
	// long window [0,57) sees 20/52020 ~ 0.04% < the 2% threshold.
	for s := 55; s < 57; s++ {
		at := time.Duration(s)*time.Second + 500*time.Millisecond
		for i := 0; i < 10; i++ {
			m.observeArrival(0, at)
			m.observeViolation(0, at)
		}
	}
	now := 57*time.Second + 100*time.Millisecond
	short := m.ratio(0, now, m.shortSecs) / m.cfg.Target
	long := m.ratio(0, now, m.longSecs) / m.cfg.Target
	if short < m.cfg.BurnRate {
		t.Fatalf("test setup: short burn %v should exceed %v", short, m.cfg.BurnRate)
	}
	if long >= m.cfg.BurnRate {
		t.Fatalf("test setup: long burn %v should stay under %v", long, m.cfg.BurnRate)
	}
	if _, changed := m.evaluate(0, now); changed {
		t.Fatal("burn must not start on short-window signal alone")
	}
	if m.fams[0].burning {
		t.Fatal("family should not be burning")
	}
}

func TestSLOBurnEpisodeTransitions(t *testing.T) {
	m := newSLOMonitor(testSLO(), 2)
	// Family 0: sustained full violation for 10 seconds.
	for s := 0; s < 10; s++ {
		at := time.Duration(s)*time.Second + 500*time.Millisecond
		for i := 0; i < 20; i++ {
			m.observeArrival(0, at)
			m.observeViolation(0, at)
		}
	}
	now := 10*time.Second + 100*time.Millisecond
	ev, changed := m.evaluate(0, now)
	if !changed || !ev.Start {
		t.Fatalf("expected burn start, got changed=%v ev=%+v", changed, ev)
	}
	if ev.Family != 0 || ev.At != now {
		t.Fatalf("bad event fields: %+v", ev)
	}
	if ev.ShortBurn < m.cfg.BurnRate || ev.LongBurn < m.cfg.BurnRate {
		t.Fatalf("start event burn rates below threshold: %+v", ev)
	}
	// Re-evaluating while still burning yields no new event.
	if _, changed := m.evaluate(0, now); changed {
		t.Fatal("duplicate burn start emitted")
	}
	// Family 1 was never touched and must be independent.
	if m.fams[1].burning {
		t.Fatal("family 1 should be untouched")
	}
	// Clean traffic until the short window drains: episode ends.
	for s := 10; s < 17; s++ {
		at := time.Duration(s)*time.Second + 500*time.Millisecond
		for i := 0; i < 20; i++ {
			m.observeArrival(0, at)
		}
	}
	endNow := 17*time.Second + 100*time.Millisecond
	ev, changed = m.evaluate(0, endNow)
	if !changed || ev.Start {
		t.Fatalf("expected burn end, got changed=%v ev=%+v", changed, ev)
	}
	if m.fams[0].burning {
		t.Fatal("family 0 should have stopped burning")
	}
}

func TestSLONoTrafficNoBurn(t *testing.T) {
	m := newSLOMonitor(testSLO(), 1)
	if _, changed := m.evaluate(0, 30*time.Second); changed {
		t.Fatal("empty monitor must not burn")
	}
}
