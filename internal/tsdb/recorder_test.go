package tsdb

import (
	"reflect"
	"testing"
	"time"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Init(3, nil)
	r.Arrival(time.Second, 0)
	r.Violation(time.Second, 0)
	r.Sample(time.Second, []DeviceState{{Up: true}})
	if r.Samples() != nil || r.Burns() != nil {
		t.Fatal("nil recorder must return nil slices")
	}
	if r.SampleInterval() != 0 || r.Burning(0) {
		t.Fatal("nil recorder accessors must return zero values")
	}
}

func TestRecorderUtilizationFromBusyDeltas(t *testing.T) {
	r := NewRecorder(Config{SampleInterval: time.Second})
	r.Init(1, nil)
	// Tick 1: device 0 busy 500ms of the first second; device 1 idle.
	r.Sample(time.Second, []DeviceState{
		{Up: true, QueueDepth: 3, LastBatch: 4, Variant: "resnet-18", BusyTime: 500 * time.Millisecond},
		{Up: true, BusyTime: 0},
	})
	// Tick 2: device 0 fully busy; device 1 reports a decreasing counter
	// (restart) which must clamp to zero, not go negative.
	r.Sample(2*time.Second, []DeviceState{
		{Up: true, QueueDepth: 1, LastBatch: 8, Variant: "resnet-34", BusyTime: 1500 * time.Millisecond},
		{Up: false, BusyTime: 0},
	})
	got := r.Samples()
	want := []Sample{
		{At: time.Second, Device: 0, Up: true, QueueDepth: 3, BatchSize: 4, UtilMilli: 500, Variant: "resnet-18"},
		{At: time.Second, Device: 1, Up: true},
		{At: 2 * time.Second, Device: 0, Up: true, QueueDepth: 1, BatchSize: 8, UtilMilli: 1000, Variant: "resnet-34"},
		{At: 2 * time.Second, Device: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("samples:\n got %+v\nwant %+v", got, want)
	}
}

func TestRecorderUtilClampsToInterval(t *testing.T) {
	r := NewRecorder(Config{SampleInterval: time.Second})
	r.Init(1, nil)
	// Busy time jumps by 3s within a 1s interval (batch completion folds a
	// long batch's full latency at once): clamp to 1000 milli.
	r.Sample(time.Second, []DeviceState{{Up: true, BusyTime: 3 * time.Second}})
	if got := r.Samples()[0].UtilMilli; got != 1000 {
		t.Fatalf("util = %d, want clamped 1000", got)
	}
}

func TestRecorderGrowsForElasticDevices(t *testing.T) {
	r := NewRecorder(Config{})
	r.Init(1, nil)
	r.Sample(time.Second, []DeviceState{{Up: true, BusyTime: time.Second}})
	// A device joined: the recorder must grow its delta state.
	r.Sample(2*time.Second, []DeviceState{
		{Up: true, BusyTime: 2 * time.Second},
		{Up: true, BusyTime: 400 * time.Millisecond},
	})
	got := r.Samples()
	if len(got) != 3 {
		t.Fatalf("want 3 samples, got %d", len(got))
	}
	if got[2].Device != 1 || got[2].UtilMilli != 400 {
		t.Fatalf("new device sample wrong: %+v", got[2])
	}
}

func TestRecorderBurnCallbackAndLog(t *testing.T) {
	r := NewRecorder(Config{SLO: SLOConfig{Target: 0.01, BurnRate: 2, ShortWindow: 2 * time.Second, LongWindow: 4 * time.Second}})
	var fired []BurnEvent
	r.Init(1, func(ev BurnEvent) { fired = append(fired, ev) })
	// Fully violated seconds 0..4.
	for s := 0; s < 5; s++ {
		at := time.Duration(s)*time.Second + 100*time.Millisecond
		for i := 0; i < 10; i++ {
			r.Arrival(at, 0)
			r.Violation(at, 0)
		}
	}
	if !r.Burning(0) {
		t.Fatal("family 0 should be burning after sustained violations")
	}
	// Sampling with quiet data path ends the episode once windows drain.
	r.Sample(20*time.Second, nil)
	if r.Burning(0) {
		t.Fatal("burn episode should end after windows drain")
	}
	burns := r.Burns()
	if len(burns) != 2 || !burns[0].Start || burns[1].Start {
		t.Fatalf("want [start end], got %+v", burns)
	}
	if !reflect.DeepEqual(fired, burns) {
		t.Fatal("callback events differ from the burn log")
	}
}

func TestRecorderIgnoresOutOfRangeFamily(t *testing.T) {
	r := NewRecorder(Config{})
	r.Init(1, nil)
	r.Arrival(time.Second, -1)
	r.Arrival(time.Second, 5)
	r.Violation(time.Second, 5)
	if len(r.Burns()) != 0 {
		t.Fatal("out-of-range families must be ignored")
	}
}

func TestRecorderDeterministicReplay(t *testing.T) {
	run := func() ([]Sample, []BurnEvent) {
		r := NewRecorder(Config{SLO: SLOConfig{ShortWindow: 2 * time.Second, LongWindow: 4 * time.Second}})
		r.Init(2, nil)
		for s := 0; s < 8; s++ {
			at := time.Duration(s) * time.Second
			for i := 0; i < 20; i++ {
				r.Arrival(at+time.Duration(i)*time.Millisecond, s%2)
				if i%3 == 0 {
					r.Violation(at+time.Duration(i)*time.Millisecond, s%2)
				}
			}
			r.Sample(at+time.Second, []DeviceState{
				{Up: true, QueueDepth: s, LastBatch: i2b(s), BusyTime: time.Duration(s) * 300 * time.Millisecond},
			})
		}
		return r.Samples(), r.Burns()
	}
	s1, b1 := run()
	s2, b2 := run()
	if !reflect.DeepEqual(s1, s2) || !reflect.DeepEqual(b1, b2) {
		t.Fatal("identical replays must produce identical recordings")
	}
}

func i2b(s int) int {
	if s == 0 {
		return 0
	}
	return 1 << uint(s%4)
}
