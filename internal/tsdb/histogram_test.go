package tsdb

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// exactQuantile is the nearest-rank quantile over raw sorted samples — the
// reference the histogram must stay within one bucket width of.
func exactQuantile(sorted []int64, p float64) int64 {
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// maxQuantileError is the error bound: the width of the bucket holding the
// exact value, i.e. one bucket width.
func maxQuantileError(v int64) int64 {
	return bucketWidth(bucketIndex(v))
}

func checkQuantiles(t *testing.T, name string, values []int64) {
	t.Helper()
	h := &Histogram{}
	var sum int64
	for _, v := range values {
		h.Record(v)
		if v < 0 {
			v = 0
		}
		sum += v
	}
	sorted := make([]int64, len(values))
	for i, v := range values {
		if v < 0 {
			v = 0
		}
		sorted[i] = v
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	if h.Count() != uint64(len(values)) {
		t.Fatalf("%s: count = %d, want %d", name, h.Count(), len(values))
	}
	if h.Sum() != sum {
		t.Fatalf("%s: sum = %d, want %d", name, h.Sum(), sum)
	}
	if h.Min() != sorted[0] {
		t.Fatalf("%s: min = %d, want %d", name, h.Min(), sorted[0])
	}
	if h.Max() != sorted[len(sorted)-1] {
		t.Fatalf("%s: max = %d, want %d", name, h.Max(), sorted[len(sorted)-1])
	}
	for _, p := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		got := h.Quantile(p)
		want := exactQuantile(sorted, p)
		bound := maxQuantileError(want)
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		if diff > bound {
			t.Errorf("%s: q(%g) = %d, exact %d, |diff| %d > bucket width %d",
				name, p, got, want, diff, bound)
		}
	}
}

func TestQuantileRankErrorBoundRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(5000)
		values := make([]int64, n)
		switch trial % 4 {
		case 0: // uniform microsecond-to-second latencies
			for i := range values {
				values[i] = rng.Int63n(int64(1e9))
			}
		case 1: // exponential-ish tail
			for i := range values {
				values[i] = int64(rng.ExpFloat64() * 5e6)
			}
		case 2: // small values exercising the linear buckets
			for i := range values {
				values[i] = rng.Int63n(64)
			}
		case 3: // full int64 range
			for i := range values {
				values[i] = rng.Int63()
			}
		}
		checkQuantiles(t, "random", values)
	}
}

func TestQuantileAdversarialInputs(t *testing.T) {
	cases := map[string][]int64{
		"single":          {7},
		"all-zero":        {0, 0, 0, 0},
		"all-identical":   {123456789, 123456789, 123456789},
		"negatives-clamp": {-5, -1, 3, 10},
		"max-int64":       {math.MaxInt64, 1, math.MaxInt64},
		"powers-of-two": {
			1, 2, 4, 8, 16, 32, 64, 128, 1 << 20, 1 << 40, 1 << 62,
		},
		"power-edges": {
			31, 32, 33, 63, 64, 65, (1 << 30) - 1, 1 << 30, (1 << 30) + 1,
		},
		"bimodal": {
			1, 1, 1, 1, 1, int64(1e9), int64(1e9), int64(1e9),
		},
	}
	for name, values := range cases {
		checkQuantiles(t, name, values)
	}
}

func TestMergeAssociativeAndEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	parts := make([][]int64, 3)
	var all []int64
	for p := range parts {
		n := 200 + rng.Intn(300)
		parts[p] = make([]int64, n)
		for i := range parts[p] {
			parts[p][i] = rng.Int63n(int64(1e8))
		}
		all = append(all, parts[p]...)
	}
	record := func(values []int64) *Histogram {
		h := &Histogram{}
		for _, v := range values {
			h.Record(v)
		}
		return h
	}
	a, b, c := record(parts[0]), record(parts[1]), record(parts[2])

	// (a+b)+c
	left := a.Clone()
	left.Merge(b)
	left.Merge(c)
	// a+(b+c)
	bc := b.Clone()
	bc.Merge(c)
	right := a.Clone()
	right.Merge(bc)
	// direct recording of the union
	direct := record(all)

	if !reflect.DeepEqual(left, right) {
		t.Fatal("merge is not associative: (a+b)+c != a+(b+c)")
	}
	if !reflect.DeepEqual(trimmed(left), trimmed(direct)) {
		t.Fatal("merged histogram differs from histogram of the union")
	}
}

// trimmed drops trailing zero buckets so histograms built through different
// grow paths compare equal when they hold the same distribution.
func trimmed(h *Histogram) *Histogram {
	out := h.Clone()
	n := len(out.counts)
	for n > 0 && out.counts[n-1] == 0 {
		n--
	}
	out.counts = out.counts[:n]
	return out
}

func TestMergeEmptyAndNil(t *testing.T) {
	h := &Histogram{}
	h.Record(100)
	before := h.Clone()
	h.Merge(nil)
	h.Merge(&Histogram{})
	if !reflect.DeepEqual(h, before) {
		t.Fatal("merging nil/empty changed the histogram")
	}
	empty := &Histogram{}
	empty.Merge(h)
	if empty.Count() != 1 || empty.Min() != 100 || empty.Max() != 100 {
		t.Fatalf("merge into empty: count=%d min=%d max=%d", empty.Count(), empty.Min(), empty.Max())
	}
}

func TestEmptyHistogram(t *testing.T) {
	h := &Histogram{}
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram accessors must all return 0")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	if h.Buckets() != nil {
		t.Fatal("empty histogram must have no buckets")
	}
}

func TestBucketGeometry(t *testing.T) {
	// Every representable boundary must round-trip: low and high of bucket i
	// both map back to i, and consecutive buckets tile the value space.
	for i := 0; i < 40*subBucketCount; i++ {
		lo, hi := bucketLow(i), bucketHigh(i)
		if hi < lo {
			break // beyond int64 range
		}
		if bucketIndex(lo) != i {
			t.Fatalf("bucketIndex(low(%d)=%d) = %d", i, lo, bucketIndex(lo))
		}
		if bucketIndex(hi) != i {
			t.Fatalf("bucketIndex(high(%d)=%d) = %d", i, hi, bucketIndex(hi))
		}
		if i > 0 && bucketHigh(i-1)+1 != lo {
			t.Fatalf("gap between bucket %d (high %d) and %d (low %d)",
				i-1, bucketHigh(i-1), i, lo)
		}
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := &Histogram{}
	h.Record(int64(1e9)) // pre-grow
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i)%int64(1e9) + 1)
	}
}
