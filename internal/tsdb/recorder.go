package tsdb

import (
	"sync"
	"time"
)

// Config parameterizes a Recorder.
type Config struct {
	// SampleInterval is the device time-series cadence. Default 1s.
	SampleInterval time.Duration
	// SLO configures the sliding-window burn monitor.
	SLO SLOConfig
}

func (c Config) withDefaults() Config {
	if c.SampleInterval <= 0 {
		c.SampleInterval = time.Second
	}
	c.SLO = c.SLO.withDefaults()
	return c
}

// DeviceState is what the hosting engine reports for one device at a
// sample tick. BusyTime is the device's cumulative execution time since
// the run started; the recorder differentiates it into per-interval
// utilization, so the engine never needs to track windows itself.
type DeviceState struct {
	Up         bool
	QueueDepth int
	LastBatch  int
	Variant    string
	BusyTime   time.Duration
	// SatMilli and Pressured carry the overload guard's saturation signal
	// (estimated queueing delay in thousandths of the SLO, and whether
	// backpressure excludes the device from routing). Zero when the guard is
	// disabled.
	SatMilli  int
	Pressured bool
}

// Sample is one recorded point of a device's time-series. UtilMilli is the
// fraction of the sample interval the device spent executing, in
// thousandths (integer so same-seed dumps are byte-identical).
type Sample struct {
	At         time.Duration `json:"at_ns"`
	Device     int           `json:"device"`
	Up         bool          `json:"up"`
	QueueDepth int           `json:"queue_depth"`
	BatchSize  int           `json:"batch_size"`
	UtilMilli  int           `json:"util_milli"`
	Variant    string        `json:"variant,omitempty"`
	// SatMilli / Pressured mirror DeviceState's overload signal; omitted
	// from JSON when the guard is off so pre-guard dumps stay byte-identical.
	SatMilli  int  `json:"sat_milli,omitempty"`
	Pressured bool `json:"pressured,omitempty"`
}

// Recorder collects the windowed observability signals of one run: the
// per-device sampled time-series and the SLO burn monitor. The hosting
// engine drives it through four calls — Arrival and Violation on the data
// path, Sample at a fixed cadence, and Init once at assembly time.
//
// A nil *Recorder turns every method into a no-op, matching the telemetry
// package's "nil is off, and off is free" convention. All methods are safe
// for concurrent use (the live serving layer calls them from many
// goroutines); the simulator's single-threaded calls pay one uncontended
// lock. The burn callback runs under the recorder's lock and must not call
// back into the recorder.
type Recorder struct {
	mu       sync.Mutex
	cfg      Config
	slo      *sloMonitor
	onBurn   func(BurnEvent)
	samples  []Sample
	lastBusy []time.Duration
	burns    []BurnEvent
	// Per-phase latency decomposition histograms, by family and by device
	// (see phases.go). phaseFam is sized at Init; phaseDev grows on demand.
	phaseFam []phaseSet
	phaseDev []phaseSet
}

// NewRecorder returns an empty recorder with defaults applied.
func NewRecorder(cfg Config) *Recorder {
	return &Recorder{cfg: cfg.withDefaults()}
}

// Init sizes the recorder for a run of the given family count and installs
// the burn-transition callback (which may be nil). The hosting engine calls
// it once at assembly time; re-initializing resets all recorded state, so a
// recorder serves exactly one run.
func (r *Recorder) Init(families int, onBurn func(BurnEvent)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.slo = newSLOMonitor(r.cfg.SLO, families)
	r.onBurn = onBurn
	r.samples = nil
	r.lastBusy = nil
	r.burns = nil
	r.phaseFam = make([]phaseSet, families)
	r.phaseDev = nil
}

// SampleInterval returns the configured sampling cadence.
func (r *Recorder) SampleInterval() time.Duration {
	if r == nil {
		return 0
	}
	return r.cfg.SampleInterval
}

// SLO returns the resolved SLO monitor configuration.
func (r *Recorder) SLO() SLOConfig {
	if r == nil {
		return SLOConfig{}
	}
	return r.cfg.SLO
}

// Arrival records a query arrival of family f at time now and re-evaluates
// that family's burn state.
func (r *Recorder) Arrival(now time.Duration, f int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.slo == nil || f < 0 || f >= len(r.slo.fams) {
		return
	}
	r.slo.observeArrival(f, now)
	r.transition(f, now)
}

// Violation records an SLO violation (late completion or drop) of family f
// at time now and re-evaluates that family's burn state.
func (r *Recorder) Violation(now time.Duration, f int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.slo == nil || f < 0 || f >= len(r.slo.fams) {
		return
	}
	r.slo.observeViolation(f, now)
	r.transition(f, now)
}

// Sample appends one time-series point per device (indexed by position in
// devices) and re-evaluates every family's burn state, so burn episodes end
// at sampling cadence even when the data path goes quiet.
func (r *Recorder) Sample(now time.Duration, devices []DeviceState) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.lastBusy) < len(devices) {
		r.lastBusy = append(r.lastBusy, 0)
	}
	interval := r.cfg.SampleInterval
	for d, st := range devices {
		busy := st.BusyTime - r.lastBusy[d]
		r.lastBusy[d] = st.BusyTime
		if busy < 0 {
			busy = 0
		}
		if busy > interval {
			busy = interval
		}
		r.samples = append(r.samples, Sample{
			At:         now,
			Device:     d,
			Up:         st.Up,
			QueueDepth: st.QueueDepth,
			BatchSize:  st.LastBatch,
			UtilMilli:  int(busy * 1000 / interval),
			Variant:    st.Variant,
			SatMilli:   st.SatMilli,
			Pressured:  st.Pressured,
		})
	}
	if r.slo != nil {
		for f := range r.slo.fams {
			r.transition(f, now)
		}
	}
}

// transition folds one family's burn-state change (if any) into the burn
// log and the callback. Caller holds r.mu.
func (r *Recorder) transition(f int, now time.Duration) {
	ev, changed := r.slo.evaluate(f, now)
	if !changed {
		return
	}
	r.burns = append(r.burns, ev)
	if r.onBurn != nil {
		r.onBurn(ev)
	}
}

// Samples returns a copy of the recorded device time-series in record
// order (time-major, device-minor — the sampling order).
func (r *Recorder) Samples() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Sample(nil), r.samples...)
}

// SamplesSince returns a copy of the samples recorded at or after cursor —
// an index into the append-only sample log — together with the new cursor.
// Incremental consumers (the flight recorder's ring) start at cursor 0 and
// feed each returned cursor back in, paying only for new samples per call.
func (r *Recorder) SamplesSince(cursor int) ([]Sample, int) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if cursor < 0 {
		cursor = 0
	}
	if cursor > len(r.samples) {
		cursor = len(r.samples)
	}
	return append([]Sample(nil), r.samples[cursor:]...), len(r.samples)
}

// BurnsSince is SamplesSince for the burn-transition log.
func (r *Recorder) BurnsSince(cursor int) ([]BurnEvent, int) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if cursor < 0 {
		cursor = 0
	}
	if cursor > len(r.burns) {
		cursor = len(r.burns)
	}
	return append([]BurnEvent(nil), r.burns[cursor:]...), len(r.burns)
}

// Burns returns a copy of the burn-transition log in record order.
func (r *Recorder) Burns() []BurnEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]BurnEvent(nil), r.burns...)
}

// Burning reports whether family f is currently in a burn episode.
func (r *Recorder) Burning(f int) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.slo == nil || f < 0 || f >= len(r.slo.fams) {
		return false
	}
	return r.slo.fams[f].burning
}
