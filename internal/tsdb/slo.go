package tsdb

import "time"

// SLOConfig parameterizes the sliding-window SLO monitor.
type SLOConfig struct {
	// Target is the violation-ratio budget (the acceptable fraction of
	// queries that miss their SLO). Default 0.01.
	Target float64
	// BurnRate is the multiple of Target at which a window is considered
	// burning. A burn episode starts when BOTH the short and the long
	// window burn above this rate, and ends when either stops. Default 2.
	BurnRate float64
	// ShortWindow is the fast-reacting window (default 5s); LongWindow the
	// confirmation window (default 60s). Both are truncated to whole
	// seconds, the monitor's bucket granularity.
	ShortWindow time.Duration
	LongWindow  time.Duration
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Target <= 0 {
		c.Target = 0.01
	}
	if c.BurnRate <= 0 {
		c.BurnRate = 2
	}
	if c.ShortWindow < time.Second {
		c.ShortWindow = 5 * time.Second
	}
	if c.LongWindow <= c.ShortWindow {
		c.LongWindow = 12 * c.ShortWindow
	}
	return c
}

// BurnEvent marks a transition of one family's SLO burn state. Start=true
// opens an episode (both windows burning above SLOConfig.BurnRate),
// Start=false closes it. ShortBurn/LongBurn carry the burn rates (window
// violation ratio divided by the target) at the transition.
type BurnEvent struct {
	At        time.Duration `json:"at_ns"`
	Family    int           `json:"family"`
	Start     bool          `json:"start"`
	ShortBurn float64       `json:"short_burn"`
	LongBurn  float64       `json:"long_burn"`
}

// sloFamily is one family's ring of one-second buckets. Slot i holds the
// counts of absolute second at[i]; a slot whose at does not match the
// queried second is stale and counts as empty, so the ring never needs
// explicit clearing.
type sloFamily struct {
	arrivals   []int
	violations []int
	at         []int64
	burning    bool
}

// sloMonitor tracks violation ratios per family over two sliding windows
// and detects burn-state transitions.
type sloMonitor struct {
	cfg       SLOConfig
	shortSecs int64
	longSecs  int64
	fams      []sloFamily
}

func newSLOMonitor(cfg SLOConfig, families int) *sloMonitor {
	cfg = cfg.withDefaults()
	m := &sloMonitor{
		cfg:       cfg,
		shortSecs: int64(cfg.ShortWindow / time.Second),
		longSecs:  int64(cfg.LongWindow / time.Second),
		fams:      make([]sloFamily, families),
	}
	// One extra slot so the partial current second never aliases the
	// oldest complete second of the long window.
	n := m.longSecs + 1
	for f := range m.fams {
		m.fams[f] = sloFamily{
			arrivals:   make([]int, n),
			violations: make([]int, n),
			at:         make([]int64, n),
		}
		for i := range m.fams[f].at {
			m.fams[f].at[i] = -1
		}
	}
	return m
}

// slot rolls family f's ring to the second containing now and returns the
// active slot index.
func (m *sloMonitor) slot(f int, now time.Duration) int {
	sec := int64(now / time.Second)
	fam := &m.fams[f]
	i := int(sec % int64(len(fam.at)))
	if fam.at[i] != sec {
		fam.at[i] = sec
		fam.arrivals[i] = 0
		fam.violations[i] = 0
	}
	return i
}

func (m *sloMonitor) observeArrival(f int, now time.Duration) {
	fam := &m.fams[f]
	fam.arrivals[m.slot(f, now)]++
}

func (m *sloMonitor) observeViolation(f int, now time.Duration) {
	fam := &m.fams[f]
	fam.violations[m.slot(f, now)]++
}

// ratio returns the violation ratio of family f over the `window` complete
// seconds ending at (and excluding) the current second of now. A window
// with no arrivals has ratio 0 unless violations landed in it (completions
// of earlier arrivals), in which case the ratio saturates at 1.
func (m *sloMonitor) ratio(f int, now time.Duration, window int64) float64 {
	fam := &m.fams[f]
	cur := int64(now / time.Second)
	var arr, vio int
	for s := cur - window; s < cur; s++ {
		if s < 0 {
			continue
		}
		i := int(s % int64(len(fam.at)))
		if fam.at[i] != s {
			continue
		}
		arr += fam.arrivals[i]
		vio += fam.violations[i]
	}
	if vio == 0 {
		return 0
	}
	if vio >= arr {
		return 1
	}
	return float64(vio) / float64(arr)
}

// evaluate re-derives family f's burn state at time now and returns the
// transition event, if any. The windows only cover complete seconds, so
// state can change only when the second rolls over or the window slides —
// evaluating on every observation is cheap and deterministic.
func (m *sloMonitor) evaluate(f int, now time.Duration) (BurnEvent, bool) {
	shortBurn := m.ratio(f, now, m.shortSecs) / m.cfg.Target
	longBurn := m.ratio(f, now, m.longSecs) / m.cfg.Target
	burning := shortBurn >= m.cfg.BurnRate && longBurn >= m.cfg.BurnRate
	fam := &m.fams[f]
	if burning == fam.burning {
		return BurnEvent{}, false
	}
	fam.burning = burning
	return BurnEvent{
		At:        now,
		Family:    f,
		Start:     burning,
		ShortBurn: shortBurn,
		LongBurn:  longBurn,
	}, true
}
