package tsdb

import "time"

// Phase identifies one segment of a query's end-to-end latency. The hosting
// engine timestamps the query's lifecycle transitions (arrival, device
// enqueue, batch formation, execution start, completion) and differences
// them into one duration per phase at completion time, so attribution costs
// a handful of subtractions per query instead of a trace-log scan.
type Phase uint8

const (
	// PhaseAdmission is arrival → device enqueue: routing, admission
	// control, and any requeue wait after a device failure or model change.
	PhaseAdmission Phase = iota
	// PhaseQueue is device enqueue → batch formation: time spent waiting in
	// the device queue for the batching policy to act.
	PhaseQueue
	// PhaseBatchForm is batch formation → execution start.
	PhaseBatchForm
	// PhaseExec is execution start → completion: the batch's model latency.
	PhaseExec
	// PhaseResponse is completion → response delivery (zero on the
	// simulator's virtual clock, where the two coincide).
	PhaseResponse

	// NumPhases is the number of decomposition phases.
	NumPhases = int(PhaseResponse) + 1
)

var phaseNames = [NumPhases]string{
	"admission", "queue", "batch_form", "exec", "response",
}

// String returns the phase's wire name ("admission", "queue", ...).
func (p Phase) String() string {
	if int(p) < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// PhaseDurations is one completed query's latency decomposition. Phases the
// engine cannot attribute stay zero and still count one observation, so
// per-phase counts agree across phases.
type PhaseDurations struct {
	Admission time.Duration
	Queue     time.Duration
	BatchForm time.Duration
	Exec      time.Duration
	Response  time.Duration
}

func (pd PhaseDurations) get(p Phase) time.Duration {
	switch p {
	case PhaseAdmission:
		return pd.Admission
	case PhaseQueue:
		return pd.Queue
	case PhaseBatchForm:
		return pd.BatchForm
	case PhaseExec:
		return pd.Exec
	default:
		return pd.Response
	}
}

// phaseSet is one scope's (family's or device's) per-phase histograms.
type phaseSet [NumPhases]Histogram

func (ps *phaseSet) record(pd PhaseDurations) {
	for p := 0; p < NumPhases; p++ {
		d := pd.get(Phase(p))
		if d < 0 {
			d = 0
		}
		ps[p].RecordDuration(d)
	}
}

// RecordPhases folds one completed query's decomposition into the
// per-family and per-device phase histograms. Negative durations (clock
// skew on the live path) clamp to zero. Out-of-range family indices are
// ignored; device histograms grow on demand so elastic clusters work.
func (r *Recorder) RecordPhases(family, device int, pd PhaseDurations) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if family >= 0 && family < len(r.phaseFam) {
		r.phaseFam[family].record(pd)
	}
	if device >= 0 && device < 1<<16 {
		for len(r.phaseDev) <= device {
			r.phaseDev = append(r.phaseDev, phaseSet{})
		}
		r.phaseDev[device].record(pd)
	}
}

// PhaseStat is one (scope, index, phase) row of the decomposition summary.
// Durations are integer microseconds so same-seed dumps stay byte-identical.
type PhaseStat struct {
	// Scope is "family" or "device"; Index is the family or device index.
	Scope  string `json:"scope"`
	Index  int    `json:"index"`
	Phase  string `json:"phase"`
	Count  uint64 `json:"count"`
	MeanUS int64  `json:"mean_us"`
	P50US  int64  `json:"p50_us"`
	P95US  int64  `json:"p95_us"`
	P99US  int64  `json:"p99_us"`
	MaxUS  int64  `json:"max_us"`
}

// PhaseStats summarizes every non-empty phase histogram, family scopes
// first, ordered by index then phase — a deterministic order independent of
// arrival interleaving.
func (r *Recorder) PhaseStats() []PhaseStat {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []PhaseStat
	appendScope := func(scope string, sets []phaseSet) {
		for i := range sets {
			for p := 0; p < NumPhases; p++ {
				h := &sets[i][p]
				if h.Count() == 0 {
					continue
				}
				out = append(out, PhaseStat{
					Scope:  scope,
					Index:  i,
					Phase:  Phase(p).String(),
					Count:  h.Count(),
					MeanUS: h.Mean() / 1e3,
					P50US:  h.Quantile(0.50) / 1e3,
					P95US:  h.Quantile(0.95) / 1e3,
					P99US:  h.Quantile(0.99) / 1e3,
					MaxUS:  h.Max() / 1e3,
				})
			}
		}
	}
	appendScope("family", r.phaseFam)
	appendScope("device", r.phaseDev)
	return out
}
