// Package tsdb is the windowed-aggregation layer of the observability
// stack: log-linear bucketed latency histograms with exact-rank quantiles
// and cheap merges, per-device sampled time-series (utilization, queue
// depth, batch size, hosted variant), and a sliding-window SLO monitor
// computing violation ratios and multi-window burn rates. Everything is
// stdlib-only, allocation-conscious, and deterministic: bucket boundaries
// are fixed integer functions of the value, timestamps are supplied by the
// caller (virtual clock in simulation, wall clock since start in live
// serving), and two same-seed simulator runs produce byte-identical dumps.
package tsdb

import (
	"math"
	"math/bits"
	"time"
)

// Histogram bucket geometry: values 0..subBucketCount-1 get unit-width
// buckets; every further power-of-two range splits into subBucketCount
// linear sub-buckets. The relative quantization error is therefore at most
// 2^-subBucketBits (~3.1%), and bucket boundaries are fixed integer
// functions of the value alone, so merging two histograms or re-running a
// seeded simulation can never move a sample across buckets.
const (
	subBucketBits  = 5
	subBucketCount = 1 << subBucketBits
)

// Histogram is a log-linear (HDR-style) histogram over non-negative int64
// values — by convention nanoseconds, so time.Duration records directly.
// The zero value is an empty histogram ready to use. Not safe for
// concurrent use; owners wrap it in their own lock.
type Histogram struct {
	counts []uint64
	count  uint64
	sum    int64
	min    int64
	max    int64
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < subBucketCount {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // 2^e <= v < 2^(e+1), e >= subBucketBits
	block := e - subBucketBits + 1
	sub := int(v>>uint(e-subBucketBits)) - subBucketCount
	return block*subBucketCount + sub
}

// bucketLow returns the smallest value mapping to bucket i.
func bucketLow(i int) int64 {
	if i < subBucketCount {
		return int64(i)
	}
	block := i / subBucketCount
	sub := i % subBucketCount
	return int64(subBucketCount+sub) << uint(block-1)
}

// bucketWidth returns the number of distinct values mapping to bucket i.
func bucketWidth(i int) int64 {
	if i < subBucketCount {
		return 1
	}
	return int64(1) << uint(i/subBucketCount-1)
}

// bucketHigh returns the largest value mapping to bucket i.
func bucketHigh(i int) int64 {
	return bucketLow(i) + bucketWidth(i) - 1
}

// Record adds one value. Negative values clamp to zero (latencies are
// non-negative by construction; clamping keeps arithmetic bugs visible in
// bucket zero instead of panicking mid-run).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	i := bucketIndex(v)
	if i >= len(h.counts) {
		grown := make([]uint64, i+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// RecordDuration adds one duration (in nanoseconds).
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the exact sum of recorded values.
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the smallest recorded value (0 when empty).
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Mean returns the exact mean (integer division, matching a sum-and-divide
// over the raw samples), or 0 when empty.
func (h *Histogram) Mean() int64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / int64(h.count)
}

// Quantile returns the exact-rank p-quantile: the upper edge of the bucket
// holding the ceil(p*count)-th smallest sample, clamped to the observed
// [min, max]. The true nearest-rank value lies in the same bucket, so the
// error is bounded by one bucket width (relative error <= 2^-subBucketBits).
// Returns 0 on an empty histogram.
func (h *Histogram) Quantile(p float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := bucketHigh(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// QuantileDuration returns Quantile as a time.Duration.
func (h *Histogram) QuantileDuration(p float64) time.Duration {
	return time.Duration(h.Quantile(p))
}

// Merge folds o into h bucket-by-bucket. Merging is associative and
// commutative, and because bucket boundaries are value-determined, a merge
// of per-window histograms is byte-identical to a histogram recorded over
// the union of their samples. A nil o is a no-op.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	if len(o.counts) > len(h.counts) {
		grown := make([]uint64, len(o.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Clone returns an independent copy.
func (h *Histogram) Clone() *Histogram {
	out := *h
	out.counts = append([]uint64(nil), h.counts...)
	return &out
}

// Bucket is one non-empty bucket of a histogram snapshot.
type Bucket struct {
	Low   int64  `json:"low"`
	High  int64  `json:"high"`
	Count uint64 `json:"count"`
}

// Buckets returns the non-empty buckets in ascending value order.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		out = append(out, Bucket{Low: bucketLow(i), High: bucketHigh(i), Count: c})
	}
	return out
}
