package tsdb

import (
	"testing"
	"time"
)

func TestPhaseNames(t *testing.T) {
	want := []string{"admission", "queue", "batch_form", "exec", "response"}
	if NumPhases != len(want) {
		t.Fatalf("NumPhases = %d, want %d", NumPhases, len(want))
	}
	for p := 0; p < NumPhases; p++ {
		if got := Phase(p).String(); got != want[p] {
			t.Errorf("Phase(%d) = %q, want %q", p, got, want[p])
		}
	}
}

func TestRecordPhasesNilSafe(t *testing.T) {
	var r *Recorder
	r.RecordPhases(0, 0, PhaseDurations{Exec: time.Second}) // must not panic
	if got := r.PhaseStats(); got != nil {
		t.Fatalf("nil recorder PhaseStats = %v, want nil", got)
	}
}

func TestRecordPhasesAndStats(t *testing.T) {
	r := NewRecorder(Config{})
	r.Init(2, nil)
	pd := PhaseDurations{
		Admission: 1 * time.Millisecond,
		Queue:     2 * time.Millisecond,
		BatchForm: 0,
		Exec:      10 * time.Millisecond,
	}
	r.RecordPhases(0, 1, pd)
	r.RecordPhases(0, 1, pd)
	r.RecordPhases(1, 0, pd)

	stats := r.PhaseStats()
	if len(stats) == 0 {
		t.Fatal("no phase stats after recording")
	}
	// Family rows come first, then device rows; within a scope rows are
	// ordered by index then phase.
	sawDevice := false
	for _, s := range stats {
		switch s.Scope {
		case "family":
			if sawDevice {
				t.Fatalf("family row after device rows: %+v", s)
			}
		case "device":
			sawDevice = true
		default:
			t.Fatalf("unknown scope %q", s.Scope)
		}
	}
	if !sawDevice {
		t.Fatal("no device-scope rows")
	}
	// Family 0 exec: two recordings of 10ms.
	found := false
	for _, s := range stats {
		if s.Scope == "family" && s.Index == 0 && s.Phase == "exec" {
			found = true
			if s.Count != 2 {
				t.Errorf("family 0 exec count = %d, want 2", s.Count)
			}
			if s.MeanUS < 9_000 || s.MeanUS > 11_000 {
				t.Errorf("family 0 exec mean = %dus, want ~10000", s.MeanUS)
			}
			if s.P95US <= 0 || s.MaxUS <= 0 {
				t.Errorf("family 0 exec quantiles missing: %+v", s)
			}
		}
	}
	if !found {
		t.Fatal("family 0 exec row missing")
	}
	// Within one scope+index, all phases carry the same count so the
	// decomposition always sums whole queries.
	counts := map[string]uint64{}
	for _, s := range stats {
		if s.Scope == "family" && s.Index == 0 {
			counts[s.Phase] = s.Count
		}
	}
	for ph, c := range counts {
		if c != 2 {
			t.Errorf("family 0 phase %s count = %d, want 2", ph, c)
		}
	}
}

func TestRecordPhasesClampsNegative(t *testing.T) {
	r := NewRecorder(Config{})
	r.Init(1, nil)
	r.RecordPhases(0, 0, PhaseDurations{Queue: -time.Second, Exec: time.Millisecond})
	for _, s := range r.PhaseStats() {
		if s.Phase == "queue" && (s.MaxUS != 0 || s.MeanUS != 0) {
			t.Fatalf("negative queue duration not clamped: %+v", s)
		}
	}
}

func TestRecordPhasesBounds(t *testing.T) {
	r := NewRecorder(Config{})
	r.Init(1, nil)
	// Out-of-range family and absurd device indexes are dropped, not panics.
	r.RecordPhases(-1, 0, PhaseDurations{Exec: time.Second})
	r.RecordPhases(5, 0, PhaseDurations{Exec: time.Second})
	r.RecordPhases(0, -1, PhaseDurations{Exec: time.Second})
	r.RecordPhases(0, 1<<20, PhaseDurations{Exec: time.Second})
	for _, s := range r.PhaseStats() {
		if s.Scope == "family" && s.Index != 0 {
			t.Fatalf("out-of-range family recorded: %+v", s)
		}
	}
	// Device side grows on demand for reasonable indexes.
	r.RecordPhases(0, 7, PhaseDurations{Exec: time.Second})
	foundDev := false
	for _, s := range r.PhaseStats() {
		if s.Scope == "device" && s.Index == 7 && s.Phase == "exec" && s.Count == 1 {
			foundDev = true
		}
	}
	if !foundDev {
		t.Fatal("device 7 exec row missing after on-demand growth")
	}
}

func TestSamplesSinceAndBurnsSince(t *testing.T) {
	var nilRec *Recorder
	if s, c := nilRec.SamplesSince(3); s != nil || c != 0 {
		t.Fatal("nil recorder SamplesSince not empty")
	}
	if b, c := nilRec.BurnsSince(3); b != nil || c != 0 {
		t.Fatal("nil recorder BurnsSince not empty")
	}

	r := NewRecorder(Config{SampleInterval: time.Second})
	r.Init(1, nil)
	devs := []DeviceState{{Up: true}, {Up: true, QueueDepth: 3}}
	r.Sample(0, devs)
	all, cur := r.SamplesSince(0)
	if len(all) != 2 || cur != 2 {
		t.Fatalf("SamplesSince(0) = %d samples cursor %d, want 2/2", len(all), cur)
	}
	r.Sample(time.Second, devs)
	tail, cur2 := r.SamplesSince(cur)
	if len(tail) != 2 || cur2 != 4 {
		t.Fatalf("SamplesSince(%d) = %d samples cursor %d, want 2/4", cur, len(tail), cur2)
	}
	// Cursors beyond the end clamp instead of panicking.
	none, cur3 := r.SamplesSince(99)
	if len(none) != 0 || cur3 != 4 {
		t.Fatalf("clamped SamplesSince = %d/%d", len(none), cur3)
	}
}
