// Package profiles implements the model profiler of Proteus's controller
// (§3): it derives per-(device type, model variant, batch size) inference
// latencies, memory footprints, SLO-feasible maximum batch sizes and peak
// throughput capacities P_{d,m,q} (§4), and stores them in an in-memory
// key-value store with O(1) lookup as the paper describes.
//
// # Latency model
//
// The paper profiles real models with ONNX Runtime; this reproduction uses
// a calibrated analytical model instead (see DESIGN.md for the substitution
// argument):
//
//	latency_ms(d, m, b) = Fixed(d) + b · GFLOPs(m)^0.7 / Eff(d)
//
// The sub-linear exponent reflects that large models utilize accelerators
// better than small ones; the per-device Fixed and Eff constants are chosen
// so that batch-1 EfficientNet throughput on V100 / GTX 1080 Ti / CPU
// reproduces Figure 1a (≈55 / 39 / 11 QPS for B0 down to ≈16 / — / — QPS
// for B7, with the largest variants SLO-infeasible on slower devices).
package profiles

import (
	"math"
	"sync"
	"time"

	"proteus/internal/cluster"
	"proteus/internal/models"
)

// costExponent is the sub-linearity of compute time in model GFLOPs.
const costExponent = 0.7

// ScaledCost returns the effective per-item compute cost of a variant.
func ScaledCost(v models.Variant) float64 {
	return math.Pow(v.GFLOPs, costExponent)
}

// Latency returns the batch inference latency of variant v on a device of
// the given spec. Batch must be >= 1.
func Latency(spec cluster.TypeSpec, v models.Variant, batch int) time.Duration {
	if batch < 1 {
		panic("profiles: batch must be >= 1")
	}
	ms := spec.FixedOverheadMS + float64(batch)*ScaledCost(v)/spec.EffGFLOPsPerMS
	return time.Duration(ms * float64(time.Millisecond))
}

// MemoryMB returns the memory needed to host v and run batches of the given
// size.
func MemoryMB(v models.Variant, batch int) float64 {
	return v.WeightsMB() + float64(batch)*v.ActivationMBPerItem()
}

// Fits reports whether v with the given batch size fits in device memory.
func Fits(spec cluster.TypeSpec, v models.Variant, batch int) bool {
	return MemoryMB(v, batch) <= spec.MemoryMB
}

// MaxMemoryBatch returns the largest batch size that fits in device memory
// (0 if even the weights do not fit).
func MaxMemoryBatch(spec cluster.TypeSpec, v models.Variant) int {
	if v.WeightsMB() > spec.MemoryMB {
		return 0
	}
	b := int((spec.MemoryMB - v.WeightsMB()) / v.ActivationMBPerItem())
	return b
}

// MaxSLOBatch returns the largest batch size whose inference latency stays
// within slo/2 — the Nexus observation used by the paper (§4): in the worst
// case a query waits for a full batch before executing, so processing must
// take at most half the SLO. Returns 0 if even batch 1 is too slow.
func MaxSLOBatch(spec cluster.TypeSpec, v models.Variant, slo time.Duration) int {
	budgetMS := float64(slo) / float64(time.Millisecond) / 2
	perItem := ScaledCost(v) / spec.EffGFLOPsPerMS
	// The small epsilon keeps boundary cases (batch-1 latency exactly equal
	// to slo/2, as for the SLO-defining variant itself) feasible despite
	// floating-point truncation.
	b := int((budgetMS-spec.FixedOverheadMS)/perItem + 1e-4)
	if b < 0 {
		return 0
	}
	return b
}

// MaxBatch returns the maximum allowed batch size for (device, variant,
// SLO): the minimum of the SLO-feasible and memory-feasible batch sizes,
// per §4.
func MaxBatch(spec cluster.TypeSpec, v models.Variant, slo time.Duration) int {
	b := MaxSLOBatch(spec, v, slo)
	if mb := MaxMemoryBatch(spec, v); mb < b {
		b = mb
	}
	return b
}

// PeakThroughput returns P_{d,m,q}: the QPS capacity of variant v on the
// device at its maximum allowed batch size, i.e. maxBatch / latency(maxBatch).
// It returns 0 when the variant cannot serve the SLO on this device at all.
func PeakThroughput(spec cluster.TypeSpec, v models.Variant, slo time.Duration) float64 {
	b := MaxBatch(spec, v, slo)
	if b <= 0 {
		return 0
	}
	lat := Latency(spec, v, b).Seconds()
	return float64(b) / lat
}

// EffectiveCapacity is the serving rate a device can actually sustain
// without blowing its SLO through queueing delay: PeakThroughput derated by
// a batch-size-dependent utilization factor b/(b+2). A device running
// batches of b has one batch-time of latency budget left for queueing
// (processing takes the other half of the SLO, per the Nexus rule); keeping
// utilization below b/(b+2) bounds the chance that a Poisson arrival burst
// spills a query past that budget. Large-batch devices tolerate high
// utilization (b=30 → 94%), single-batch CPUs need large slack (b=1 → 33%).
// The resource manager plans against this capacity, which plays the role of
// conservatively profiled peak throughput in the paper's deployment.
func EffectiveCapacity(spec cluster.TypeSpec, v models.Variant, slo time.Duration) float64 {
	b := MaxBatch(spec, v, slo)
	if b <= 0 {
		return 0
	}
	util := float64(b) / float64(b+2)
	// Even large-batch devices keep a 15% margin: after a capacity dip
	// (model load) or an estimation lag on a demand ramp, the margin is the
	// drain rate for the accumulated backlog; at 5% margin a 2-second dip
	// takes ~40 seconds of SLO violations to recover.
	if util > 0.85 {
		util = 0.85
	}
	return PeakThroughput(spec, v, slo) * util
}

// FamilySLO returns the latency SLO for a model family per §6.1.2: the
// batch-1 latency of the family's fastest variant on a CPU, times the
// multiplier (2 in the main experiments, swept 1–3.5 in §6.6).
func FamilySLO(f models.Family, multiplier float64) time.Duration {
	cpu := cluster.Spec(cluster.CPU)
	fastest := time.Duration(math.MaxInt64)
	for _, v := range f.Variants {
		if l := Latency(cpu, v, 1); l < fastest {
			fastest = l
		}
	}
	return time.Duration(float64(fastest) * multiplier)
}

// Record is one profiled measurement.
type Record struct {
	VariantID string
	Device    cluster.DeviceType
	Batch     int
	Latency   time.Duration
}

type storeKey struct {
	variantID string
	device    cluster.DeviceType
	batch     int
}

// Store is the profiler's in-memory key-value store, keyed by the 3-tuple
// (model variant, device type, batch size) for O(1) lookup (§3). It is safe
// for concurrent use: the controller refreshes it periodically while load
// balancers and workers read it.
type Store struct {
	mu sync.RWMutex
	m  map[storeKey]time.Duration
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{m: make(map[storeKey]time.Duration)}
}

// Put records a measurement, overwriting any previous value.
func (s *Store) Put(r Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[storeKey{r.VariantID, r.Device, r.Batch}] = r.Latency
}

// Get returns the stored latency for (variant, device, batch).
func (s *Store) Get(variantID string, device cluster.DeviceType, batch int) (time.Duration, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.m[storeKey{variantID, device, batch}]
	return d, ok
}

// Len returns the number of stored records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// ProfileAll populates the store with the analytical latency for every
// (variant, device type, batch) combination up to maxBatch, mimicking the
// controller's profiler pass when models are registered.
func (s *Store) ProfileAll(reg *models.Registry, types []cluster.DeviceType, maxBatch int) {
	for _, v := range reg.AllVariants() {
		for _, t := range types {
			spec := cluster.Spec(t)
			for b := 1; b <= maxBatch; b++ {
				if !Fits(spec, v, b) {
					break
				}
				s.Put(Record{VariantID: v.ID(), Device: t, Batch: b, Latency: Latency(spec, v, b)})
			}
		}
	}
}
