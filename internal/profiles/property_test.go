package profiles

import (
	"testing"
	"testing/quick"
	"time"

	"proteus/internal/cluster"
	"proteus/internal/models"
	"proteus/internal/numeric"
)

func randomVariantAndSpec(seed uint64) (models.Variant, cluster.TypeSpec) {
	rng := numeric.NewRNG(seed)
	reg := models.MustRegistry(models.Zoo())
	all := reg.AllVariants()
	v := all[rng.Intn(len(all))]
	types := cluster.KnownTypes()
	spec := cluster.Spec(types[rng.Intn(len(types))])
	return v, spec
}

// TestPropertyMaxBatchIsMaximal checks the defining property of the §4
// batch-size bound: latency(MaxBatch) fits slo/2 and memory, while
// MaxBatch+1 violates one of the two.
func TestPropertyMaxBatchIsMaximal(t *testing.T) {
	f := func(seed uint64, mult8 uint8) bool {
		v, spec := randomVariantAndSpec(seed)
		mult := 1 + float64(mult8%30)/10
		var fam models.Family
		for _, ff := range models.Zoo() {
			if ff.Name == v.Family {
				fam = ff
			}
		}
		slo := FamilySLO(fam, mult)
		b := MaxBatch(spec, v, slo)
		if b < 0 {
			return false
		}
		if b == 0 {
			// Infeasible: either batch 1 exceeds slo/2 or weights don't fit.
			return Latency(spec, v, 1) > slo/2 || !Fits(spec, v, 1)
		}
		if Latency(spec, v, b) > slo/2+time.Microsecond || !Fits(spec, v, b) {
			return false
		}
		return Latency(spec, v, b+1) > slo/2-time.Microsecond || !Fits(spec, v, b+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEffectiveCapacityBelowPeak checks the derating invariants.
func TestPropertyEffectiveCapacityBelowPeak(t *testing.T) {
	f := func(seed uint64) bool {
		v, spec := randomVariantAndSpec(seed)
		var fam models.Family
		for _, ff := range models.Zoo() {
			if ff.Name == v.Family {
				fam = ff
			}
		}
		slo := FamilySLO(fam, 2)
		peak := PeakThroughput(spec, v, slo)
		eff := EffectiveCapacity(spec, v, slo)
		if peak == 0 {
			return eff == 0
		}
		return eff > 0 && eff <= 0.85*peak+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLatencyMonotonicity checks latency grows with batch size and
// shrinks with faster devices.
func TestPropertyLatencyMonotonicity(t *testing.T) {
	f := func(seed uint64, b8 uint8) bool {
		v, spec := randomVariantAndSpec(seed)
		b := 1 + int(b8%63)
		if Latency(spec, v, b+1) <= Latency(spec, v, b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
