package profiles

import (
	"math"
	"testing"
	"time"

	"proteus/internal/cluster"
	"proteus/internal/models"
)

func effnet(t *testing.T) models.Family {
	t.Helper()
	for _, f := range models.Zoo() {
		if f.Name == "efficientnet" {
			return f
		}
	}
	t.Fatal("efficientnet missing")
	return models.Family{}
}

func variant(t *testing.T, f models.Family, name string) models.Variant {
	t.Helper()
	v, ok := f.Variant(name)
	if !ok {
		t.Fatalf("variant %s missing", name)
	}
	return v
}

// TestFig1aCalibration pins the latency model to the paper's Figure 1a:
// batch-1 EfficientNet-B0 throughput of roughly 55 / 39 / 11 QPS on
// V100 / GTX 1080 Ti / CPU, and B7 around 10-16 QPS on V100.
func TestFig1aCalibration(t *testing.T) {
	f := effnet(t)
	b0 := variant(t, f, "b0")
	b7 := variant(t, f, "b7")
	qps := func(dt cluster.DeviceType, v models.Variant) float64 {
		return 1 / Latency(cluster.Spec(dt), v, 1).Seconds()
	}
	cases := []struct {
		dev      cluster.DeviceType
		v        models.Variant
		lo, hi   float64
		describe string
	}{
		{cluster.V100, b0, 45, 65, "V100 b0"},
		{cluster.GTX1080Ti, b0, 30, 48, "1080Ti b0"},
		{cluster.CPU, b0, 7, 16, "CPU b0"},
		{cluster.V100, b7, 8, 20, "V100 b7"},
	}
	for _, c := range cases {
		got := qps(c.dev, c.v)
		if got < c.lo || got > c.hi {
			t.Errorf("%s: %.1f QPS, want in [%v, %v]", c.describe, got, c.lo, c.hi)
		}
	}
}

func TestLatencyMonotoneInBatch(t *testing.T) {
	f := effnet(t)
	v := variant(t, f, "b3")
	for _, dt := range cluster.KnownTypes() {
		spec := cluster.Spec(dt)
		prev := time.Duration(0)
		for b := 1; b <= 32; b++ {
			l := Latency(spec, v, b)
			if l <= prev {
				t.Fatalf("%s: latency not monotone at batch %d", dt, b)
			}
			prev = l
		}
	}
}

func TestBatchingImprovesThroughputOnGPU(t *testing.T) {
	// throughput(batch 8) must exceed throughput(batch 1) substantially on
	// GPUs (the fixed overhead amortizes), and marginally on CPU.
	f := effnet(t)
	v := variant(t, f, "b0")
	tput := func(dt cluster.DeviceType, b int) float64 {
		return float64(b) / Latency(cluster.Spec(dt), v, b).Seconds()
	}
	if gain := tput(cluster.V100, 8) / tput(cluster.V100, 1); gain < 3 {
		t.Errorf("V100 batch gain %.2f, want > 3x", gain)
	}
	if gain := tput(cluster.CPU, 8) / tput(cluster.CPU, 1); gain > 1.25 {
		t.Errorf("CPU batch gain %.2f, want modest (< 1.25x)", gain)
	}
}

func TestLatencyPanicsOnZeroBatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Latency(cluster.Spec(cluster.CPU), effnet(t).Variants[0], 0)
}

func TestMemoryFits(t *testing.T) {
	zoo := models.MustRegistry(models.Zoo())
	t511b, _ := zoo.Variant("t5/11b")
	if Fits(cluster.Spec(cluster.V100), t511b, 1) {
		t.Fatal("t5/11b must not fit a 16GB V100")
	}
	if !Fits(cluster.Spec(cluster.CPU), t511b, 1) {
		t.Fatal("t5/11b must fit the 64GB CPU host")
	}
	if MaxMemoryBatch(cluster.Spec(cluster.V100), t511b) != 0 {
		t.Fatal("MaxMemoryBatch must be 0 when weights do not fit")
	}
	b0, _ := zoo.Variant("efficientnet/b0")
	if MaxMemoryBatch(cluster.Spec(cluster.V100), b0) < 100 {
		t.Fatal("b0 should allow large memory batches on V100")
	}
}

func TestFamilySLO(t *testing.T) {
	f := effnet(t)
	slo := FamilySLO(f, 2)
	// The fastest EfficientNet on CPU is b0; SLO must be exactly twice its
	// batch-1 CPU latency.
	want := 2 * Latency(cluster.Spec(cluster.CPU), variant(t, f, "b0"), 1)
	if slo != want {
		t.Fatalf("SLO %v, want %v", slo, want)
	}
	if FamilySLO(f, 3) <= slo {
		t.Fatal("larger multiplier must give larger SLO")
	}
}

func TestMaxSLOBatch(t *testing.T) {
	f := effnet(t)
	b0 := variant(t, f, "b0")
	slo := FamilySLO(f, 2)
	spec := cluster.Spec(cluster.V100)
	b := MaxSLOBatch(spec, b0, slo)
	if b < 1 {
		t.Fatalf("b0 must be SLO-feasible on V100, got max batch %d", b)
	}
	// Defining property: latency at b is within slo/2, at b+1 it is not.
	if Latency(spec, b0, b) > slo/2 {
		t.Fatalf("latency at max batch %v exceeds slo/2 %v", Latency(spec, b0, b), slo/2)
	}
	if Latency(spec, b0, b+1) <= slo/2 {
		t.Fatalf("max batch %d not maximal", b)
	}
}

func TestHeterogeneousSLOFeasibility(t *testing.T) {
	// With SLO = 2x fastest CPU latency, the largest EfficientNets must be
	// feasible only on the fastest accelerator — this heterogeneity is what
	// makes model placement matter (§2.2 Factor 2).
	f := effnet(t)
	slo := FamilySLO(f, 2)
	b7 := variant(t, f, "b7")
	if MaxBatch(cluster.Spec(cluster.V100), b7, slo) < 1 {
		t.Error("b7 should be feasible on V100")
	}
	if MaxBatch(cluster.Spec(cluster.GTX1080Ti), b7, slo) != 0 {
		t.Error("b7 should NOT be feasible on 1080Ti at 2x SLO")
	}
	if MaxBatch(cluster.Spec(cluster.CPU), b7, slo) != 0 {
		t.Error("b7 should NOT be feasible on CPU")
	}
	b0 := variant(t, f, "b0")
	if MaxBatch(cluster.Spec(cluster.CPU), b0, slo) < 1 {
		t.Error("b0 must be feasible on CPU (it defines the SLO)")
	}
}

func TestPeakThroughputOrdering(t *testing.T) {
	// For a variant feasible everywhere, peak throughput must follow device
	// speed: V100 > 1080Ti > CPU.
	f := effnet(t)
	b0 := variant(t, f, "b0")
	slo := FamilySLO(f, 2)
	pV := PeakThroughput(cluster.Spec(cluster.V100), b0, slo)
	pG := PeakThroughput(cluster.Spec(cluster.GTX1080Ti), b0, slo)
	pC := PeakThroughput(cluster.Spec(cluster.CPU), b0, slo)
	if !(pV > pG && pG > pC && pC > 0) {
		t.Fatalf("peak throughput ordering broken: V100 %.1f, 1080Ti %.1f, CPU %.1f", pV, pG, pC)
	}
}

func TestPeakThroughputZeroWhenInfeasible(t *testing.T) {
	f := effnet(t)
	slo := FamilySLO(f, 2)
	if p := PeakThroughput(cluster.Spec(cluster.CPU), variant(t, f, "b7"), slo); p != 0 {
		t.Fatalf("infeasible pair must have 0 capacity, got %v", p)
	}
}

func TestAccuracyThroughputTradeoffExists(t *testing.T) {
	// §2.1: on a fixed device, less accurate variants must provide higher
	// peak throughput. Check the extremes of every family.
	slo := func(f models.Family) time.Duration { return FamilySLO(f, 2) }
	spec := cluster.Spec(cluster.V100)
	for _, f := range models.Zoo() {
		s := slo(f)
		low := PeakThroughput(spec, f.LeastAccurate(), s)
		high := PeakThroughput(spec, f.MostAccurate(), s)
		if low == 0 {
			t.Errorf("family %s: least accurate variant infeasible on V100", f.Name)
			continue
		}
		if high > low {
			t.Errorf("family %s: most accurate variant faster than least accurate (%.1f > %.1f)",
				f.Name, high, low)
		}
	}
}

func TestStore(t *testing.T) {
	s := NewStore()
	if _, ok := s.Get("x", cluster.CPU, 1); ok {
		t.Fatal("empty store returned a record")
	}
	s.Put(Record{VariantID: "resnet/50", Device: cluster.V100, Batch: 4, Latency: 33 * time.Millisecond})
	d, ok := s.Get("resnet/50", cluster.V100, 4)
	if !ok || d != 33*time.Millisecond {
		t.Fatalf("Get: %v %v", d, ok)
	}
	if _, ok := s.Get("resnet/50", cluster.V100, 5); ok {
		t.Fatal("wrong batch matched")
	}
	s.Put(Record{VariantID: "resnet/50", Device: cluster.V100, Batch: 4, Latency: 44 * time.Millisecond})
	d, _ = s.Get("resnet/50", cluster.V100, 4)
	if d != 44*time.Millisecond {
		t.Fatal("Put must overwrite")
	}
	if s.Len() != 1 {
		t.Fatalf("Len %d", s.Len())
	}
}

func TestProfileAll(t *testing.T) {
	reg := models.MustRegistry(models.Zoo())
	s := NewStore()
	s.ProfileAll(reg, cluster.KnownTypes(), 8)
	if s.Len() == 0 {
		t.Fatal("store empty after ProfileAll")
	}
	// A stored value must equal the analytical model.
	b0, _ := reg.Variant("efficientnet/b0")
	got, ok := s.Get("efficientnet/b0", cluster.V100, 4)
	if !ok {
		t.Fatal("profiled record missing")
	}
	if want := Latency(cluster.Spec(cluster.V100), b0, 4); got != want {
		t.Fatalf("stored %v, want %v", got, want)
	}
	// t5/11b on V100 must have no records (weights do not fit).
	if _, ok := s.Get("t5/11b", cluster.V100, 1); ok {
		t.Fatal("t5/11b profiled on V100 despite not fitting")
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			s.Put(Record{VariantID: "m", Device: cluster.CPU, Batch: i % 8, Latency: time.Duration(i)})
		}
	}()
	for i := 0; i < 1000; i++ {
		s.Get("m", cluster.CPU, i%8)
	}
	<-done
}

func TestScaledCostSubLinear(t *testing.T) {
	// Doubling GFLOPs must less than double the cost (accelerator
	// utilization improves with model size).
	small := models.Variant{GFLOPs: 10}
	big := models.Variant{GFLOPs: 20}
	ratio := ScaledCost(big) / ScaledCost(small)
	if ratio >= 2 || ratio <= 1 {
		t.Fatalf("cost ratio %v, want in (1, 2)", ratio)
	}
	if math.Abs(ratio-math.Pow(2, costExponent)) > 1e-9 {
		t.Fatalf("ratio %v inconsistent with exponent", ratio)
	}
}
