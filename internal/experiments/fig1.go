package experiments

import (
	"sort"

	"proteus/internal/cluster"
	"proteus/internal/models"
	"proteus/internal/profiles"
)

// Fig1aRow is one point of Figure 1a: one EfficientNet variant on one
// device type at batch size one.
type Fig1aRow struct {
	Device   cluster.DeviceType
	Variant  string
	Accuracy float64
	QPS      float64 // 1 / batch-1 latency
}

// Fig1a reproduces Figure 1a: the accuracy-throughput trade-off of the
// EfficientNet variants on the three device types at batch size one.
func Fig1a() []Fig1aRow {
	var eff models.Family
	for _, f := range models.Zoo() {
		if f.Name == "efficientnet" {
			eff = f
		}
	}
	var rows []Fig1aRow
	for _, dt := range cluster.KnownTypes() {
		spec := cluster.Spec(dt)
		for _, v := range eff.Variants {
			rows = append(rows, Fig1aRow{
				Device:   dt,
				Variant:  v.Name,
				Accuracy: v.Accuracy,
				QPS:      1 / profiles.Latency(spec, v, 1).Seconds(),
			})
		}
	}
	return rows
}

// ConfigPoint is one placement configuration of Figure 1b: a mapping of
// variants onto devices with its aggregate capacity and capacity-weighted
// accuracy.
type ConfigPoint struct {
	// Assignment[i] is the variant index placed on device i.
	Assignment []int
	// CapacityQPS is the summed peak throughput when every device serves
	// the maximum feasible load without SLO violations (the figure's
	// assumption).
	CapacityQPS float64
	// Accuracy is the capacity-weighted mean accuracy.
	Accuracy float64
	// OnFrontier marks Pareto-optimal configurations.
	OnFrontier bool
}

// Fig1b reproduces Figure 1b: all 5^5 = 3125 mappings of five EfficientNet
// variants onto five devices (one CPU, two GTX 1080 Tis, two V100s), with
// the Pareto frontier marked. Variants used are B0/B2/B4/B5/B7 (five
// evenly spread members of the family).
func Fig1b() []ConfigPoint {
	var eff models.Family
	for _, f := range models.Zoo() {
		if f.Name == "efficientnet" {
			eff = f
		}
	}
	pick := []string{"b0", "b2", "b4", "b5", "b7"}
	variants := make([]models.Variant, len(pick))
	for i, name := range pick {
		v, ok := eff.Variant(name)
		if !ok {
			panic("experiments: variant " + name + " missing")
		}
		variants[i] = v
	}
	devices := []cluster.TypeSpec{
		cluster.Spec(cluster.CPU),
		cluster.Spec(cluster.GTX1080Ti),
		cluster.Spec(cluster.GTX1080Ti),
		cluster.Spec(cluster.V100),
		cluster.Spec(cluster.V100),
	}
	slo := profiles.FamilySLO(eff, 2)

	// Peak throughput lookup per (device, variant).
	peak := make([][]float64, len(devices))
	for d := range devices {
		peak[d] = make([]float64, len(variants))
		for m, v := range variants {
			peak[d][m] = profiles.PeakThroughput(devices[d], v, slo)
		}
	}

	n := len(variants)
	total := 1
	for range devices {
		total *= n
	}
	points := make([]ConfigPoint, 0, total)
	assignment := make([]int, len(devices))
	for idx := 0; idx < total; idx++ {
		x := idx
		capQPS, accNum := 0.0, 0.0
		for d := range devices {
			assignment[d] = x % n
			x /= n
			p := peak[d][assignment[d]]
			capQPS += p
			accNum += p * variants[assignment[d]].Accuracy
		}
		pt := ConfigPoint{Assignment: append([]int(nil), assignment...), CapacityQPS: capQPS}
		if capQPS > 0 {
			pt.Accuracy = accNum / capQPS
		}
		points = append(points, pt)
	}
	markPareto(points)
	return points
}

// markPareto flags the points not dominated in (capacity, accuracy).
func markPareto(points []ConfigPoint) {
	order := make([]int, len(points))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := points[order[a]], points[order[b]]
		if pa.CapacityQPS != pb.CapacityQPS {
			return pa.CapacityQPS > pb.CapacityQPS
		}
		return pa.Accuracy > pb.Accuracy
	})
	bestAcc := -1.0
	for _, i := range order {
		if points[i].Accuracy > bestAcc {
			points[i].OnFrontier = true
			bestAcc = points[i].Accuracy
		}
	}
}

// ParetoFrontier filters the Fig1b points down to the frontier, sorted by
// capacity.
func ParetoFrontier(points []ConfigPoint) []ConfigPoint {
	var out []ConfigPoint
	for _, p := range points {
		if p.OnFrontier {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].CapacityQPS < out[b].CapacityQPS })
	return out
}
