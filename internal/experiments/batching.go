package experiments

import (
	"fmt"
	"sort"
	"time"

	"proteus/internal/batching"
	"proteus/internal/models"
	"proteus/internal/numeric"
	"proteus/internal/trace"
)

// Fig6Point is one (arrival process, batching policy) cell of Figure 6.
type Fig6Point struct {
	Process        trace.ArrivalProcess
	Batching       string
	ViolationRatio float64
	Served         int
	Queries        int
}

// Fig6BatchingNames are the three batching policies the paper compares,
// each running on top of Proteus's resource allocation (§6.4).
var Fig6BatchingNames = []string{"accscale", "nexus", "aimd"}

// Fig6 reproduces the §6.4 adaptive-batching isolation: the same constant
// offered load with uniform, Poisson, and Gamma(0.05) inter-arrival
// processes, served by Proteus with each batching policy. Resource
// allocation is identical across cells (same allocator, same demand), so
// differences come from batching alone.
func Fig6(o Options) ([]Fig6Point, error) {
	o = o.withDefaults()
	fams := models.Zoo()
	names := models.FamilyNames(fams)
	z := numeric.NewZipf(len(fams), 1.001)
	totalQPS := o.BaseQPS * 1.5
	duration := time.Duration(o.TraceSeconds) * time.Second

	var out []Fig6Point
	for _, proc := range []trace.ArrivalProcess{trace.Uniform, trace.PoissonProcess, trace.GammaProcess} {
		// One arrival sequence per process, shared by all policies.
		rng := numeric.NewRNG(o.Seed + uint64(proc) + 100)
		var arrivals []trace.Arrival
		demand := make([]float64, len(fams))
		for q := range fams {
			rate := totalQPS * z.P(q)
			demand[q] = rate
			times := trace.InterArrivalTimes(proc, rate, duration, rng.Split())
			arrivals = append(arrivals, trace.SingleFamilyArrivals(times, q)...)
		}
		sort.Slice(arrivals, func(i, j int) bool { return arrivals[i].Time < arrivals[j].Time })

		for _, bname := range Fig6BatchingNames {
			factory, err := batching.ByName(bname)
			if err != nil {
				return nil, err
			}
			sys, _, err := o.newSystem("ilp", factory, o.Seed+7)
			if err != nil {
				return nil, err
			}
			res, err := sys.RunArrivals(arrivals, duration, demand)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig6 %v/%s: %w", proc, bname, err)
			}
			out = append(out, Fig6Point{
				Process:        proc,
				Batching:       bname,
				ViolationRatio: res.Summary.ViolationRatio,
				Served:         res.Summary.Served,
				Queries:        res.Summary.Queries,
			})
		}
		_ = names
	}
	return out, nil
}
