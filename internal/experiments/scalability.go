package experiments

import (
	"time"

	"proteus/internal/allocator"
	"proteus/internal/cluster"
	"proteus/internal/models"
	"proteus/internal/profiles"
)

// Fig10Point is one measurement of the MILP scalability sweep: solve time
// of the paper's per-device formulation as one input dimension grows.
type Fig10Point struct {
	Dimension string // "devices", "variants", "types"
	Value     int
	SolveTime time.Duration
	TimedOut  bool
}

// Fig10Options parameterize the scalability sweep.
type Fig10Options struct {
	// Devices, Variants and Types are the sweep points per dimension.
	Devices  []int
	Variants []int
	Types    []int
	// TimeLimit is the per-solve cap (the paper uses 60 s; the default
	// here is 10 s to keep the bench suite fast — growth shape is what
	// matters).
	TimeLimit time.Duration
	Seed      uint64
}

func (o Fig10Options) withDefaults() Fig10Options {
	if len(o.Devices) == 0 {
		o.Devices = []int{4, 8, 12, 16, 24, 32}
	}
	if len(o.Variants) == 0 {
		o.Variants = []int{9, 17, 26, 38, 51}
	}
	if len(o.Types) == 0 {
		o.Types = []int{1, 3, 5, 7, 9}
	}
	if o.TimeLimit <= 0 {
		o.TimeLimit = 10 * time.Second
	}
	return o
}

// fig10Input builds a per-device MILP instance with the requested number
// of devices (split 2:1:1), query types (a prefix of the zoo) and total
// variants (a per-family prefix). Demand is sized to ~60% of a rough
// capacity estimate so instances are feasible but non-trivial.
func fig10Input(devices, variants, types int) *allocator.Input {
	zoo := models.Zoo()
	if types > len(zoo) {
		types = len(zoo)
	}
	fams := make([]models.Family, 0, types)
	remaining := variants
	for i := 0; i < types; i++ {
		f := zoo[i]
		// Spread the variant budget across families.
		take := remaining / (types - i)
		if take < 1 {
			take = 1
		}
		if take > len(f.Variants) {
			take = len(f.Variants)
		}
		fams = append(fams, models.Family{
			Name:     f.Name,
			Task:     f.Task,
			Variants: f.Variants[:take],
		})
		remaining -= take
	}
	c := cluster.ScaledTestbed(devices)
	slos := make([]time.Duration, len(fams))
	demand := make([]float64, len(fams))
	for q, f := range fams {
		slos[q] = profiles.FamilySLO(f, 2)
	}
	in := &allocator.Input{Cluster: c, Families: fams, SLOs: slos, Demand: demand}
	// Demand: feasible by construction. Round-robin the devices over the
	// families, give each device its highest-capacity variant for its
	// family, and ask for 80% of the resulting per-family capacity — the
	// round-robin assignment is a feasibility witness, so every sweep point
	// costs exactly one MILP solve (no β back-off inside the measurement).
	capacity := make([]float64, len(fams))
	for i, d := range c.Devices() {
		q := i % len(fams)
		best := 0.0
		for _, ref := range in.Variants() {
			if ref.Family != q {
				continue
			}
			if p := in.Peak(d, ref); p > best {
				best = p
			}
		}
		capacity[q] += best
	}
	for q := range demand {
		demand[q] = 0.8 * capacity[q]
	}
	return in
}

// Fig10 reproduces the §6.8 MILP scalability study: per-device-formulation
// solve time as devices, model variants, and query types grow, each swept
// with the other two dimensions fixed at the paper's defaults.
func Fig10(o Fig10Options) ([]Fig10Point, error) {
	o = o.withDefaults()
	const (
		baseDevices  = 12
		baseVariants = 17
		baseTypes    = 3
	)
	var out []Fig10Point
	run := func(dim string, value, devices, variants, types int) error {
		in := fig10Input(devices, variants, types)
		// The figure measures a single solve of the per-device MILP, as the
		// paper does — MaxBackoffs 1 keeps the β demand loop out of the
		// measurement; a point the solver cannot finish inside the limit is
		// reported as timed out (the paper's curves likewise stop at their
		// 60-second ceiling).
		a := allocator.NewMILP(&allocator.MILPOptions{
			PerDevice:   true,
			TimeLimit:   o.TimeLimit,
			RelGap:      0.01,
			MaxBackoffs: 1,
		})
		start := time.Now()
		_, err := a.Allocate(in)
		elapsed := time.Since(start)
		out = append(out, Fig10Point{
			Dimension: dim,
			Value:     value,
			SolveTime: elapsed,
			TimedOut:  err != nil || elapsed >= o.TimeLimit,
		})
		return nil
	}

	for _, d := range o.Devices {
		if err := run("devices", d, d, baseVariants, baseTypes); err != nil {
			return nil, err
		}
	}
	for _, m := range o.Variants {
		if err := run("variants", m, baseDevices, m, maxTypesFor(m)); err != nil {
			return nil, err
		}
	}
	for _, q := range o.Types {
		if err := run("types", q, baseDevices, q*5, q); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// maxTypesFor picks enough families to absorb the variant budget.
func maxTypesFor(variants int) int {
	switch {
	case variants <= 12:
		return 3
	case variants <= 30:
		return 6
	default:
		return 9
	}
}
