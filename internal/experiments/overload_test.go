package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"proteus/internal/telemetry"
)

// TestOverloadRobustness checks the experiment's acceptance criteria on the
// adversarial stale-plan trace: the full guard must beat the unguarded
// system on SLO violations, beat shed-only on goodput, pay only a bounded
// accuracy cost, and leave its emergency episodes visible in both the
// lifecycle trace and the controller's audit trail.
func TestOverloadRobustness(t *testing.T) {
	o := quick()
	o.Trace = true
	reports, err := OverloadRobustness(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("%d reports, want 2 (bursty, adversarial)", len(reports))
	}
	var adv OverloadReport
	for _, rep := range reports {
		if len(rep.Runs) != len(OverloadGuardNames) {
			t.Fatalf("%s: %d runs, want %d", rep.Trace, len(rep.Runs), len(OverloadGuardNames))
		}
		for i, r := range rep.Runs {
			if r.Guard != OverloadGuardNames[i] {
				t.Fatalf("%s: run %d is %q, want %q", rep.Trace, i, r.Guard, OverloadGuardNames[i])
			}
		}
		if rep.Trace == "adversarial" {
			adv = rep
		}
	}
	noGuard, shedOnly, full := adv.Runs[0], adv.Runs[1], adv.Runs[2]

	if noGuard.Rejected != 0 || noGuard.Degraded != 0 || noGuard.AuditEpisodes != 0 {
		t.Errorf("no-guard run took guard actions: rejected=%d degraded=%d audit=%d",
			noGuard.Rejected, noGuard.Degraded, noGuard.AuditEpisodes)
	}
	if shedOnly.Degraded != 0 {
		t.Errorf("shed-only degraded %d times, want 0", shedOnly.Degraded)
	}
	if shedOnly.Rejected == 0 {
		t.Error("shed-only rejected nothing on the adversarial trace")
	}

	// The headline criteria: fewer violations than no-guard, more goodput
	// than shed-only.
	if full.Result.Summary.ViolationRatio >= noGuard.Result.Summary.ViolationRatio {
		t.Errorf("degrade+shed violation ratio %.4f, want < no-guard %.4f",
			full.Result.Summary.ViolationRatio, noGuard.Result.Summary.ViolationRatio)
	}
	if full.Goodput <= shedOnly.Goodput {
		t.Errorf("degrade+shed goodput %.1f, want > shed-only %.1f",
			full.Goodput, shedOnly.Goodput)
	}
	// Emergency degradation trades accuracy for goodput, but boundedly.
	if drop := noGuard.Result.Summary.EffectiveAccuracy - full.Result.Summary.EffectiveAccuracy; drop > 2 {
		t.Errorf("degrade+shed mean accuracy dropped %.2f points vs no-guard, want <= 2", drop)
	}
	// The episode must be observable end to end.
	if full.Degraded == 0 {
		t.Error("degrade+shed never degraded on the adversarial trace")
	}
	if full.AuditEpisodes == 0 {
		t.Error("degrade+shed left no overload records in the plan audit")
	}
	if full.Result.Trace == nil {
		t.Fatal("tracing enabled but no tracer attached")
	}
	starts, ends := 0, 0
	for _, ev := range full.Result.Trace.Events() {
		switch ev.Kind {
		case telemetry.EvDegradeStart:
			starts++
		case telemetry.EvDegradeEnd:
			ends++
		}
	}
	if starts == 0 {
		t.Error("no degrade_start events in the lifecycle trace")
	}
	if ends > starts {
		t.Errorf("%d degrade_end events but only %d starts", ends, starts)
	}
}

// TestOverloadRunDeterminism runs the full guard twice from the same seed
// and requires byte-identical reports (metrics, counters, audit counts).
func TestOverloadRunDeterminism(t *testing.T) {
	o := Options{
		ClusterSize:  20,
		TraceSeconds: 90,
		BaseQPS:      150,
		PeakQPS:      420,
		Seed:         7,
		SolverBudget: 300 * time.Millisecond,
	}.withDefaults()
	tr := o.adversarialTrace()
	marshal := func() []byte {
		run, err := overloadRun(o, "degrade+shed", tr)
		if err != nil {
			t.Fatal(err)
		}
		run.Result.Trace = nil // pointer identity is not part of the comparison
		b, err := json.Marshal(run)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := marshal(), marshal()
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed overload runs differ:\n%s\n%s", a, b)
	}
}
