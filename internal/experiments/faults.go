package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"proteus/internal/cluster"
	"proteus/internal/core"
	"proteus/internal/models"
)

// FaultReport summarizes the graceful-degradation experiment: a quarter of
// the fleet is killed mid-trace and later recovers, and the report tracks
// how accuracy scaling absorbs the capacity loss.
type FaultReport struct {
	Result SystemResult
	// FailAt/RecoverAt are the injected failure and recovery times; Victims
	// is how many devices died.
	FailAt    time.Duration
	RecoverAt time.Duration
	Victims   int
	// AccuracyBefore/During/After are the mean per-bin effective accuracies
	// of the healthy, degraded and recovered phases.
	AccuracyBefore float64
	AccuracyDuring float64
	AccuracyAfter  float64
	// Triggers counts re-allocations by trigger label.
	Triggers map[string]int
}

// FaultTolerance runs the Proteus MILP system on the Twitter-like trace
// while a quarter of the cluster fails for the middle third of the run. It
// is the robustness counterpart of Fig. 4: the paper evaluates on an
// always-healthy testbed, this experiment shows the same machinery degrading
// and recovering gracefully.
func FaultTolerance(o Options) (FaultReport, error) {
	o = o.withDefaults()
	tr := o.twitterTrace()
	failAt := time.Duration(o.TraceSeconds/3) * time.Second
	recoverAt := time.Duration(2*o.TraceSeconds/3) * time.Second

	alloc, err := allocByName("ilp", o)
	if err != nil {
		return FaultReport{}, err
	}
	cl := cluster.ScaledTestbed(o.ClusterSize)
	faults := cluster.KillFraction(cl, 0.25, failAt, recoverAt)
	sys, err := core.NewSystem(core.Config{
		Cluster:       cl,
		Families:      models.Zoo(),
		SLOMultiplier: o.SLOMultiplier,
		Allocator:     alloc,
		Faults:        faults,
		Seed:          o.Seed + 1,
	})
	if err != nil {
		return FaultReport{}, err
	}
	res, err := sys.Run(tr)
	if err != nil {
		return FaultReport{}, fmt.Errorf("experiments: fault tolerance: %w", err)
	}

	rep := FaultReport{
		FailAt:    failAt,
		RecoverAt: recoverAt,
		Victims:   len(faults.Events),
		Triggers:  map[string]int{},
		Result: SystemResult{
			Name:       "ilp+faults",
			Summary:    res.Summary,
			PerFamily:  res.PerFamily,
			Series:     res.Collector.Series(-1),
			ModelLoads: res.ModelLoads,
			Plans:      len(res.Plans),
		},
	}
	for _, p := range res.Plans {
		rep.Triggers[p.Trigger]++
	}
	phase := func(from, to time.Duration) float64 {
		sum, n := 0.0, 0
		for _, p := range rep.Result.Series {
			if p.Start < from || p.Start >= to || math.IsNaN(p.EffectiveAccuracy) {
				continue
			}
			sum += p.EffectiveAccuracy
			n++
		}
		if n == 0 {
			return math.NaN()
		}
		return sum / float64(n)
	}
	end := time.Duration(o.TraceSeconds) * time.Second
	rep.AccuracyBefore = phase(0, failAt)
	rep.AccuracyDuring = phase(failAt, recoverAt)
	rep.AccuracyAfter = phase(recoverAt, end)
	return rep, nil
}

// RenderFaults writes the graceful-degradation report.
func RenderFaults(w io.Writer, r FaultReport) error {
	fmt.Fprintf(w, "killed %d devices at %v, recovered at %v\n", r.Victims, r.FailAt, r.RecoverAt)
	fmt.Fprintf(w, "accuracy: before=%.2f%% during=%.2f%% after=%.2f%%\n",
		r.AccuracyBefore, r.AccuracyDuring, r.AccuracyAfter)
	s := r.Result.Summary
	fmt.Fprintf(w, "failures=%d recoveries=%d requeued=%d retried=%d ttr=%v\n",
		s.Failures, s.Recoveries, s.Requeued, s.Retried, s.MeanTimeToRecover.Round(time.Millisecond))
	t := tw(w)
	fmt.Fprintln(t, "trigger\tplans")
	for _, trig := range []string{"initial", "periodic", "burst", "failure", "recovery"} {
		if n := r.Triggers[trig]; n > 0 {
			fmt.Fprintf(t, "%s\t%d\n", trig, n)
		}
	}
	if err := t.Flush(); err != nil {
		return err
	}
	return RenderSystems(w, []SystemResult{r.Result})
}
