package experiments

import (
	"fmt"

	"proteus/internal/batching"
	"proteus/internal/metrics"
	"proteus/internal/models"
	"proteus/internal/telemetry"
	"proteus/internal/trace"
)

// SystemResult is one serving system's outcome on a trace.
type SystemResult struct {
	Name      string
	Summary   metrics.Summary
	PerFamily []metrics.Summary
	Series    []metrics.Point
	// FamilySeries[q] is the per-family time series (Fig. 9).
	FamilySeries [][]metrics.Point
	ModelLoads   int
	Plans        int
	// AvgSolveTime is the mean resource-manager solve time (§6.8).
	AvgSolveTime float64 // seconds
	// Trace holds the run's lifecycle events when Options.Trace is set.
	Trace *telemetry.Tracer
}

func runOne(o Options, name string, batch batching.Factory, tr *trace.Trace) (SystemResult, error) {
	sys, tracer, err := o.newSystem(allocNameOf(name), batch, o.Seed+1)
	if err != nil {
		return SystemResult{}, err
	}
	res, err := sys.Run(tr)
	if err != nil {
		return SystemResult{}, fmt.Errorf("experiments: system %s: %w", name, err)
	}
	out := SystemResult{
		Name:       name,
		Summary:    res.Summary,
		PerFamily:  res.PerFamily,
		Series:     res.Collector.Series(-1),
		ModelLoads: res.ModelLoads,
		Plans:      len(res.Plans),
		Trace:      tracer,
	}
	for q := range res.PerFamily {
		out.FamilySeries = append(out.FamilySeries, res.Collector.Series(q))
	}
	if len(res.Plans) > 0 {
		total := 0.0
		for _, p := range res.Plans {
			total += p.SolveTime.Seconds()
		}
		out.AvgSolveTime = total / float64(len(res.Plans))
	}
	return out, nil
}

// allocNameOf strips the "+static" suffix of the w/o-AB ablation label.
func allocNameOf(name string) string {
	if name == "ilp+static" {
		return "ilp"
	}
	return name
}

func batchingOf(name string) batching.Factory {
	if name == "ilp+static" {
		// Proteus w/o AB: batch size statically 1 (§6.5).
		return func() batching.Policy { return batching.NewStatic(1) }
	}
	return func() batching.Policy { return batching.NewAccScale() }
}

// Fig4 reproduces the end-to-end comparison of §6.2: the five systems on
// the Twitter-like trace.
func Fig4(o Options) ([]SystemResult, error) {
	o = o.withDefaults()
	tr := o.twitterTrace()
	var out []SystemResult
	for _, name := range SystemNames {
		r, err := runOne(o, name, batchingOf(name), tr)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Fig5 reproduces the §6.3 responsiveness experiment: the five systems on
// the macro-bursty trace.
func Fig5(o Options) ([]SystemResult, error) {
	o = o.withDefaults()
	tr := o.burstyTrace()
	var out []SystemResult
	for _, name := range SystemNames {
		r, err := runOne(o, name, batchingOf(name), tr)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Fig7 reproduces the §6.5 ablation study: Proteus against itself without
// model selection, model placement, query assignment, and adaptive
// batching.
func Fig7(o Options) ([]SystemResult, error) {
	o = o.withDefaults()
	tr := o.twitterTrace()
	var out []SystemResult
	for _, name := range AblationNames {
		r, err := runOne(o, name, batchingOf(name), tr)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Fig8Point is one (system, SLO multiplier) cell of Figure 8.
type Fig8Point struct {
	System          string
	SLOMultiplier   float64
	AvgThroughput   float64
	MaxAccuracyDrop float64
	ViolationRatio  float64
}

// Fig8 reproduces the §6.6 SLO sensitivity sweep: multipliers 1x-3.5x in
// steps of 0.5 across all five systems.
func Fig8(o Options) ([]Fig8Point, error) {
	o = o.withDefaults()
	var out []Fig8Point
	for _, mult := range []float64{1, 1.5, 2, 2.5, 3, 3.5} {
		oo := o
		oo.SLOMultiplier = mult
		tr := oo.twitterTrace()
		for _, name := range SystemNames {
			r, err := runOne(oo, name, batchingOf(name), tr)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig8Point{
				System:          name,
				SLOMultiplier:   mult,
				AvgThroughput:   r.Summary.AvgThroughput,
				MaxAccuracyDrop: r.Summary.MaxAccuracyDrop,
				ViolationRatio:  r.Summary.ViolationRatio,
			})
		}
	}
	return out, nil
}

// Fig9 reproduces the §6.7 per-model-family breakdown: Proteus alone on
// the Twitter-like trace, reported per family.
func Fig9(o Options) (SystemResult, []string, error) {
	o = o.withDefaults()
	tr := o.twitterTrace()
	r, err := runOne(o, "ilp", batchingOf("ilp"), tr)
	if err != nil {
		return SystemResult{}, nil, err
	}
	return r, models.FamilyNames(models.Zoo()), nil
}

// Table2Row is one allocator's capability row of Table 2.
type Table2Row struct {
	System           string
	ModelPlacement   string
	ModelSelection   string
	AccuracyScaling  string
	AdaptiveBatching string
}

// Table2 reproduces the feature-comparison table.
func Table2(o Options) ([]Table2Row, error) {
	o = o.withDefaults()
	rows := []struct {
		display, name, batching string
	}{
		{"Clipper", "clipper-ha", "Yes"},
		{"Sommelier", "sommelier", "No"},
		{"INFaaS", "infaas_v2", "Yes"},
		{"Proteus", "ilp", "Yes"},
	}
	var out []Table2Row
	for _, r := range rows {
		a, err := allocByName(r.name, o)
		if err != nil {
			return nil, err
		}
		f := a.Features()
		row := Table2Row{System: r.display, AdaptiveBatching: r.batching}
		switch {
		case f.Method == "Static":
			row.ModelPlacement, row.ModelSelection = "Static", "Static"
		case f.Method == "MILP":
			row.ModelPlacement, row.ModelSelection = "MILP", "MILP"
		default:
			row.ModelPlacement, row.ModelSelection = "Heuristic", "Heuristic"
			if !f.DynamicPlacement {
				row.ModelPlacement = "Static"
			}
		}
		switch {
		case r.display == "Sommelier":
			row.AccuracyScaling = "Limited" // single-device scaling only
		case f.AccuracyScaling:
			row.AccuracyScaling = "Yes"
		default:
			row.AccuracyScaling = "No"
		}
		out = append(out, row)
	}
	// The paper marks Sommelier's scaling "Limited" and Clipper/INFaaS "No"
	// (INFaaS scales only after the paper's objective swap).
	return out, nil
}
