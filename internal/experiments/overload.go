package experiments

import (
	"fmt"
	"io"
	"time"

	"proteus/internal/cluster"
	"proteus/internal/core"
	"proteus/internal/models"
	"proteus/internal/overload"
	"proteus/internal/telemetry"
	"proteus/internal/trace"
	"proteus/internal/tsdb"
)

// OverloadGuardNames are the guard configurations the overload experiment
// compares, in presentation order: no guard at all, admission control and
// backpressure without emergency degradation, and the full guard.
var OverloadGuardNames = []string{"no-guard", "shed-only", "degrade+shed"}

// OverloadRun is one (trace, guard) cell of the overload experiment.
type OverloadRun struct {
	Guard  string
	Result SystemResult
	// Goodput is the on-time served rate (served minus late, per second):
	// the metric admission control is supposed to protect. Sheddding a
	// query that would have missed its deadline anyway costs no goodput but
	// frees the device for queries that can still make it.
	Goodput float64
	// Guard counters for the run (zero under no-guard).
	Rejected      int64
	Backpressured int64
	Degraded      int64
	Escalated     int64
	Restored      int64
	// AuditEpisodes counts the overload actions recorded in the
	// controller's PlanRecord audit trail.
	AuditEpisodes int
}

// OverloadReport compares the three guard configurations on one trace.
type OverloadReport struct {
	Trace string
	Runs  []OverloadRun
}

// adversarialTrace synthesizes the stale-plan spike workload: flat base
// demand with square-wave spikes on the heaviest family, each starting one
// second after a control-period boundary so the freshly applied plan is
// maximally stale for the spike's whole duration. Only the fast-path guard
// can react inside the window.
func (o Options) adversarialTrace() *trace.Trace {
	fams := models.FamilyNames(models.Zoo())
	return trace.NewAdversarial(trace.AdversarialConfig{
		Seconds:       o.TraceSeconds,
		BaseQPS:       o.BaseQPS,
		SpikeQPS:      o.PeakQPS,
		SpikeSeconds:  10,
		PeriodSeconds: 30, // core.Config default ControlPeriod
		SpikeOffset:   1,
		ZipfAlpha:     1.001,
		Families:      fams,
	})
}

// overloadGuardConfig maps a guard name to the overload configuration it
// runs under (nil for no-guard).
func overloadGuardConfig(guard string) (*overload.Config, error) {
	switch guard {
	case "no-guard":
		return nil, nil
	case "shed-only":
		return &overload.Config{Enabled: true, DisableDegradation: true}, nil
	case "degrade+shed":
		return &overload.Config{Enabled: true}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown overload guard %q", guard)
	}
}

func overloadRun(o Options, guard string, tr *trace.Trace) (OverloadRun, error) {
	guardCfg, err := overloadGuardConfig(guard)
	if err != nil {
		return OverloadRun{}, err
	}
	alloc, err := allocByName("ilp", o)
	if err != nil {
		return OverloadRun{}, err
	}
	reg := telemetry.NewRegistry()
	var tracer *telemetry.Tracer
	if o.Trace {
		tracer = telemetry.NewTracer(0)
	}
	// Tight burn windows so the monitor reacts within a spike; every guard
	// configuration shares them so the comparison isolates the guard.
	rec := tsdb.NewRecorder(tsdb.Config{SLO: tsdb.SLOConfig{
		Target:      0.01,
		BurnRate:    2,
		ShortWindow: 2 * time.Second,
		LongWindow:  8 * time.Second,
	}})
	sys, err := core.NewSystem(core.Config{
		Cluster:       cluster.ScaledTestbed(o.ClusterSize),
		Families:      models.Zoo(),
		SLOMultiplier: o.SLOMultiplier,
		Allocator:     alloc,
		Seed:          o.Seed + 7,
		Telemetry:     reg,
		Tracer:        tracer,
		TSDB:          rec,
		Overload:      guardCfg,
	})
	if err != nil {
		return OverloadRun{}, err
	}
	res, err := sys.Run(tr)
	if err != nil {
		return OverloadRun{}, fmt.Errorf("experiments: overload %s: %w", guard, err)
	}
	run := OverloadRun{
		Guard: guard,
		Result: SystemResult{
			Name:       guard,
			Summary:    res.Summary,
			PerFamily:  res.PerFamily,
			Series:     res.Collector.Series(-1),
			ModelLoads: res.ModelLoads,
			Plans:      len(res.Plans),
			Trace:      tracer,
		},
		Rejected:      reg.Counter("overload_rejected_total").Value(),
		Backpressured: reg.Counter("overload_backpressure_total").Value(),
		Degraded:      reg.Counter("overload_degraded_total").Value(),
		Escalated:     reg.Counter("overload_escalated_total").Value(),
		Restored:      reg.Counter("overload_restored_total").Value(),
	}
	if secs := tr.Seconds(); secs > 0 {
		run.Goodput = float64(res.Summary.Served-res.Summary.Late) / float64(secs)
	}
	for _, p := range res.Plans {
		run.AuditEpisodes += len(p.Overloads)
	}
	return run, nil
}

// OverloadRobustness runs the overload experiment: the Proteus MILP system
// under each guard configuration on the macro-burst trace (§6.3) and the
// adversarial stale-plan spike trace, all from the same seed. The question
// each report answers: does shedding alone protect goodput, and does
// emergency degradation recover the goodput that shedding gives away?
func OverloadRobustness(o Options) ([]OverloadReport, error) {
	o = o.withDefaults()
	cases := []struct {
		name string
		tr   *trace.Trace
	}{
		{"bursty", o.burstyTrace()},
		{"adversarial", o.adversarialTrace()},
	}
	reports := make([]OverloadReport, 0, len(cases))
	for _, c := range cases {
		rep := OverloadReport{Trace: c.name}
		for _, guard := range OverloadGuardNames {
			run, err := overloadRun(o, guard, c.tr)
			if err != nil {
				return nil, err
			}
			rep.Runs = append(rep.Runs, run)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// RenderOverload writes the overload robustness comparison.
func RenderOverload(w io.Writer, reports []OverloadReport) error {
	for _, rep := range reports {
		fmt.Fprintf(w, "trace: %s\n", rep.Trace)
		t := tw(w)
		fmt.Fprintln(t, "guard\tviol%\tgoodput\taccuracy\trejected\tpressured\tdegraded\trestored\taudit")
		for _, r := range rep.Runs {
			fmt.Fprintf(t, "%s\t%.2f\t%.1f\t%.2f\t%d\t%d\t%d\t%d\t%d\n",
				r.Guard, 100*r.Result.Summary.ViolationRatio, r.Goodput,
				r.Result.Summary.EffectiveAccuracy, r.Rejected, r.Backpressured,
				r.Degraded+r.Escalated, r.Restored, r.AuditEpisodes)
		}
		if err := t.Flush(); err != nil {
			return err
		}
	}
	return nil
}
