package experiments

import (
	"testing"
	"time"
)

func TestDesignAblations(t *testing.T) {
	o := quick()
	o.TraceSeconds = 90
	rows, err := DesignAblations(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	get := func(name string) DesignAblationRow {
		for _, r := range rows {
			if r.Name == name {
				return r
			}
		}
		t.Fatalf("row %s missing", name)
		return DesignAblationRow{}
	}
	def := get("default")
	noSwitch := get("no-switch-cost")
	if def.ViolationRatio <= 0 && def.AvgThroughput <= 0 {
		t.Fatal("default run empty")
	}
	// Without the switch-cost term the plan churns more (or at worst the
	// same, if demand happened to be stable).
	if noSwitch.ModelLoads < def.ModelLoads {
		t.Logf("note: no-switch-cost loaded fewer models (%d < %d) on this trace",
			noSwitch.ModelLoads, def.ModelLoads)
	}
	fair := get("fairness (§7 ext)")
	if fair.EffectiveAccuracy <= 0 {
		t.Fatal("fairness run served nothing")
	}
}

func TestCompareFormulations(t *testing.T) {
	cmp, err := CompareFormulations([]int{8}, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp) != 1 {
		t.Fatalf("%d comparisons", len(cmp))
	}
	c := cmp[0]
	if c.AggregatedAccuracy <= 0 {
		t.Fatal("aggregated solve produced no plan")
	}
	if c.PerDeviceAccuracy > 0 {
		// Both exact formulations must agree on the optimum within the
		// combined gap tolerances.
		diff := c.AggregatedAccuracy - c.PerDeviceAccuracy
		if diff < 0 {
			diff = -diff
		}
		if diff > 2.5 {
			t.Fatalf("formulations disagree: aggregated %.2f vs per-device %.2f",
				c.AggregatedAccuracy, c.PerDeviceAccuracy)
		}
	}
}
