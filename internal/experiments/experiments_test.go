package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"proteus/internal/cluster"
	"proteus/internal/metrics"
	"proteus/internal/trace"
)

// quick returns a fast experiment configuration for tests. End-to-end
// orderings need at least a few control periods, so the trace cannot be
// arbitrarily short.
func quick() Options {
	return Options{
		ClusterSize:  20,
		TraceSeconds: 150,
		BaseQPS:      150,
		PeakQPS:      420,
		Seed:         7,
		SolverBudget: 300 * time.Millisecond,
	}
}

func TestFig1aShape(t *testing.T) {
	rows := Fig1a()
	if len(rows) != 3*8 {
		t.Fatalf("%d rows, want 24 (3 devices x 8 variants)", len(rows))
	}
	// Within a device, lower accuracy means higher batch-1 throughput.
	byDevice := map[cluster.DeviceType][]Fig1aRow{}
	for _, r := range rows {
		byDevice[r.Device] = append(byDevice[r.Device], r)
	}
	for dev, rs := range byDevice {
		for i := 1; i < len(rs); i++ {
			if rs[i].Accuracy > rs[i-1].Accuracy && rs[i].QPS > rs[i-1].QPS {
				t.Errorf("%s: accuracy-throughput trade-off violated at %s", dev, rs[i].Variant)
			}
		}
	}
	// Headline calibration: V100 B0 around 55 QPS.
	for _, r := range rows {
		if r.Device == cluster.V100 && r.Variant == "b0" {
			if r.QPS < 45 || r.QPS > 65 {
				t.Errorf("V100 b0 at %.1f QPS, want ~55 (Fig. 1a)", r.QPS)
			}
		}
	}
}

func TestFig1bEnumeratesAllConfigs(t *testing.T) {
	points := Fig1b()
	if len(points) != 3125 {
		t.Fatalf("%d configurations, want 5^5 = 3125", len(points))
	}
	frontier := ParetoFrontier(points)
	if len(frontier) < 5 || len(frontier) > 300 {
		t.Fatalf("frontier size %d implausible", len(frontier))
	}
	// The frontier must be monotone: capacity up, accuracy down.
	for i := 1; i < len(frontier); i++ {
		if frontier[i].CapacityQPS < frontier[i-1].CapacityQPS {
			t.Fatal("frontier not sorted by capacity")
		}
		if frontier[i].Accuracy > frontier[i-1].Accuracy+1e-9 {
			t.Fatal("frontier accuracy not non-increasing in capacity")
		}
	}
	// No frontier point may be dominated by any other point.
	for _, f := range frontier {
		for _, p := range points {
			if p.CapacityQPS > f.CapacityQPS+1e-9 && p.Accuracy > f.Accuracy+1e-9 {
				t.Fatal("dominated point marked as frontier")
			}
		}
	}
}

func TestFig4Orderings(t *testing.T) {
	results, err := Fig4(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("%d systems", len(results))
	}
	get := func(name string) SystemResult {
		for _, r := range results {
			if r.Name == name {
				return r
			}
		}
		t.Fatalf("system %s missing", name)
		return SystemResult{}
	}
	ha, ht := get("clipper-ha"), get("clipper-ht")
	proteus := get("ilp")
	// The paper's headline orderings (§6.2).
	if ha.Summary.EffectiveAccuracy != 100 {
		t.Errorf("Clipper-HA accuracy %.2f, want 100", ha.Summary.EffectiveAccuracy)
	}
	if ha.Summary.MaxAccuracyDrop != 0 {
		t.Errorf("Clipper-HA max drop %.2f, want 0", ha.Summary.MaxAccuracyDrop)
	}
	if !(proteus.Summary.ViolationRatio < ht.Summary.ViolationRatio &&
		proteus.Summary.ViolationRatio < ha.Summary.ViolationRatio) {
		t.Errorf("Proteus violations %.4f not below Clipper (HT %.4f, HA %.4f)",
			proteus.Summary.ViolationRatio, ht.Summary.ViolationRatio, ha.Summary.ViolationRatio)
	}
	if proteus.Summary.AvgThroughput <= ha.Summary.AvgThroughput {
		t.Errorf("Proteus throughput %.1f not above Clipper-HA %.1f",
			proteus.Summary.AvgThroughput, ha.Summary.AvgThroughput)
	}
	for _, r := range results {
		if r.Name == "clipper-ha" || r.Name == "clipper-ht" {
			if r.Plans != 1 {
				t.Errorf("%s re-planned %d times; static baselines must not", r.Name, r.Plans)
			}
			continue
		}
		if r.Plans < 2 {
			t.Errorf("%s planned only %d times", r.Name, r.Plans)
		}
	}
	if ht.Summary.MaxAccuracyDrop <= proteus.Summary.MaxAccuracyDrop {
		t.Errorf("Clipper-HT max drop %.2f not above Proteus %.2f",
			ht.Summary.MaxAccuracyDrop, proteus.Summary.MaxAccuracyDrop)
	}
}

func TestFig5BurstResponse(t *testing.T) {
	o := quick()
	results, err := Fig5(o)
	if err != nil {
		t.Fatal(err)
	}
	var proteus, ha SystemResult
	for _, r := range results {
		switch r.Name {
		case "ilp":
			proteus = r
		case "clipper-ha":
			ha = r
		}
	}
	if proteus.Summary.ViolationRatio >= ha.Summary.ViolationRatio {
		t.Fatalf("Proteus violations %.4f not below Clipper-HA %.4f on bursts",
			proteus.Summary.ViolationRatio, ha.Summary.ViolationRatio)
	}
	// Proteus must have re-allocated in response to the bursts.
	if proteus.Plans < 2 {
		t.Fatalf("Proteus planned %d times across bursts", proteus.Plans)
	}
}

func TestFig6BatchingOrdering(t *testing.T) {
	o := quick()
	points, err := Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 9 {
		t.Fatalf("%d cells, want 9", len(points))
	}
	cell := func(p trace.ArrivalProcess, b string) Fig6Point {
		for _, pt := range points {
			if pt.Process == p && pt.Batching == b {
				return pt
			}
		}
		t.Fatalf("cell %v/%s missing", p, b)
		return Fig6Point{}
	}
	// §6.4: all policies do fine on uniform arrivals; AccScale beats both
	// baselines on the bursty Gamma trace.
	for _, b := range Fig6BatchingNames {
		u := cell(trace.Uniform, b)
		if u.ViolationRatio > 0.15 {
			t.Errorf("%s on uniform arrivals: violation ratio %.4f too high", b, u.ViolationRatio)
		}
	}
	acc := cell(trace.GammaProcess, "accscale")
	nex := cell(trace.GammaProcess, "nexus")
	aimd := cell(trace.GammaProcess, "aimd")
	if acc.ViolationRatio >= nex.ViolationRatio {
		t.Errorf("gamma: accscale %.4f not below nexus %.4f", acc.ViolationRatio, nex.ViolationRatio)
	}
	if acc.ViolationRatio >= aimd.ViolationRatio {
		t.Errorf("gamma: accscale %.4f not below aimd %.4f", acc.ViolationRatio, aimd.ViolationRatio)
	}
}

func TestFig7AblationDirections(t *testing.T) {
	results, err := Fig7(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("%d results", len(results))
	}
	get := func(name string) SystemResult {
		for _, r := range results {
			if r.Name == name {
				return r
			}
		}
		t.Fatalf("ablation %s missing", name)
		return SystemResult{}
	}
	full := get("ilp")
	noMS := get("proteus-wo-ms")
	noAB := get("ilp+static")
	// w/o MS never scales accuracy: effective accuracy pinned at ~100 and
	// the largest violation hit (§6.5).
	if noMS.Summary.EffectiveAccuracy < 99 {
		t.Errorf("w/o-MS accuracy %.2f, want ~100", noMS.Summary.EffectiveAccuracy)
	}
	if noMS.Summary.ViolationRatio <= full.Summary.ViolationRatio {
		t.Errorf("w/o-MS violations %.4f not above full Proteus %.4f",
			noMS.Summary.ViolationRatio, full.Summary.ViolationRatio)
	}
	if noAB.Summary.ViolationRatio <= full.Summary.ViolationRatio {
		t.Errorf("w/o-AB violations %.4f not above full Proteus %.4f",
			noAB.Summary.ViolationRatio, full.Summary.ViolationRatio)
	}
}

func TestFig8SLOTrends(t *testing.T) {
	o := quick()
	o.TraceSeconds = 60
	points, err := Fig8(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6*5 {
		t.Fatalf("%d points, want 30", len(points))
	}
	// For Proteus, violations must broadly decrease as SLOs relax.
	var first, last float64
	for _, p := range points {
		if p.System != "ilp" {
			continue
		}
		if p.SLOMultiplier == 1 {
			first = p.ViolationRatio
		}
		if p.SLOMultiplier == 3.5 {
			last = p.ViolationRatio
		}
	}
	if last >= first {
		t.Errorf("Proteus violations did not improve with relaxed SLOs: 1x=%.4f 3.5x=%.4f", first, last)
	}
}

func TestFig9Breakdown(t *testing.T) {
	r, families, err := Fig9(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(families) != 9 || len(r.PerFamily) != 9 {
		t.Fatalf("families %d, perFamily %d", len(families), len(r.PerFamily))
	}
	if len(r.FamilySeries) != 9 {
		t.Fatalf("family series %d", len(r.FamilySeries))
	}
	// The Zipf head (resnet) must see the highest throughput (§6.7).
	if r.PerFamily[0].AvgThroughput <= r.PerFamily[8].AvgThroughput {
		t.Errorf("Zipf ordering not visible: resnet %.1f <= gpt2 %.1f",
			r.PerFamily[0].AvgThroughput, r.PerFamily[8].AvgThroughput)
	}
}

func TestFig10Growth(t *testing.T) {
	points, err := Fig10(Fig10Options{
		Devices:   []int{4, 8},
		Variants:  []int{9, 17},
		Types:     []int{1, 3},
		TimeLimit: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("%d points", len(points))
	}
	for _, p := range points {
		if p.SolveTime <= 0 {
			t.Errorf("%s=%d: non-positive solve time", p.Dimension, p.Value)
		}
	}
}

func TestTable2(t *testing.T) {
	rows, err := Table2(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	want := map[string][3]string{
		"Clipper":   {"Static", "Static", "No"},
		"Sommelier": {"Static", "Heuristic", "Limited"},
		"INFaaS":    {"Heuristic", "Heuristic", "Yes"},
		"Proteus":   {"MILP", "MILP", "Yes"},
	}
	for _, r := range rows {
		w, ok := want[r.System]
		if !ok {
			t.Fatalf("unexpected system %q", r.System)
		}
		if r.ModelPlacement != w[0] || r.ModelSelection != w[1] || r.AccuracyScaling != w[2] {
			t.Errorf("%s: got (%s, %s, %s), want %v", r.System, r.ModelPlacement, r.ModelSelection, r.AccuracyScaling, w)
		}
	}
}

func TestRenderers(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderFig1a(&buf, Fig1a()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "v100") {
		t.Fatal("fig1a render missing device")
	}
	buf.Reset()
	if err := RenderFig1b(&buf, Fig1b()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Pareto") {
		t.Fatal("fig1b render missing frontier")
	}
	buf.Reset()
	rows, _ := Table2(Options{})
	if err := RenderTable2(&buf, rows); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Model placement", "MILP", "Limited"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("table2 render missing %q:\n%s", want, buf.String())
		}
	}

	buf.Reset()
	sys := []SystemResult{{Name: "ilp", ModelLoads: 3, Plans: 2}}
	if err := RenderSystems(&buf, sys); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ilp") || !strings.Contains(buf.String(), "violations") {
		t.Fatalf("systems render: %s", buf.String())
	}

	buf.Reset()
	if err := RenderSeriesCSV(&buf, "ilp", []metrics.Point{
		{Start: 0, DemandQPS: 10, ThroughputQPS: 9, EffectiveAccuracy: 95, Violations: 1},
		{Start: 10 * time.Second, EffectiveAccuracy: math.NaN()},
	}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "second,ilp_demand") || !strings.Contains(out, "10.00,9.00,95.00,1") {
		t.Fatalf("series CSV: %s", out)
	}
	if strings.Contains(out, "NaN") {
		t.Fatal("NaN leaked into the CSV")
	}

	buf.Reset()
	if err := RenderDesignAblations(&buf, []DesignAblationRow{{Name: "default", ModelLoads: 5}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "default") {
		t.Fatal("design render empty")
	}

	buf.Reset()
	if err := RenderFormulations(&buf, []AggregationComparison{{Devices: 8}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "aggregated time") {
		t.Fatal("formulations render empty")
	}

	buf.Reset()
	if err := RenderFig6(&buf, []Fig6Point{{Batching: "accscale"}}); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := RenderFig8(&buf, []Fig8Point{{System: "ilp", SLOMultiplier: 2}}); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := RenderFig10(&buf, []Fig10Point{{Dimension: "devices", Value: 8}}); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := RenderFig9(&buf, SystemResult{PerFamily: make([]metrics.Summary, 2)}, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "family-1") {
		t.Fatal("fig9 fallback family name missing")
	}
}
