package experiments

import (
	"time"

	"proteus/internal/allocator"
	"proteus/internal/batching"
	"proteus/internal/cluster"
	"proteus/internal/core"
	"proteus/internal/models"
)

// DesignAblationRow is one configuration of the implementation-level
// ablation study: the design choices DESIGN.md documents on top of the
// paper's algorithms, each toggled off individually.
type DesignAblationRow struct {
	Name              string
	AvgThroughput     float64
	EffectiveAccuracy float64
	MaxAccuracyDrop   float64
	ViolationRatio    float64
	ModelLoads        int
}

// DesignAblations measures the repository's own engineering choices
// (distinct from the paper's §6.5 algorithm ablations): the switch-cost
// term that damps plan churn, and load-balancer admission control under
// overload. It also runs the §7 fairness extension for comparison.
func DesignAblations(o Options) ([]DesignAblationRow, error) {
	o = o.withDefaults()
	tr := o.twitterTrace()
	type variant struct {
		name             string
		milp             allocator.MILPOptions
		disableAdmission bool
	}
	base := *o.milpOptions()
	noSwitch := base
	noSwitch.SwitchCost = -1
	fair := base
	fair.FairnessWeight = 5
	variants := []variant{
		{name: "default", milp: base},
		{name: "no-switch-cost", milp: noSwitch},
		{name: "no-admission", milp: base, disableAdmission: true},
		{name: "fairness (§7 ext)", milp: fair},
	}
	var out []DesignAblationRow
	for _, v := range variants {
		opts := v.milp
		cfg := core.Config{
			Cluster:          cluster.ScaledTestbed(o.ClusterSize),
			Families:         models.Zoo(),
			SLOMultiplier:    o.SLOMultiplier,
			Allocator:        allocator.NewMILP(&opts),
			Batching:         func() batching.Policy { return batching.NewAccScale() },
			DisableAdmission: v.disableAdmission,
			Seed:             o.Seed + 1,
		}
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		res, err := sys.Run(tr)
		if err != nil {
			return nil, err
		}
		out = append(out, DesignAblationRow{
			Name:              v.name,
			AvgThroughput:     res.Summary.AvgThroughput,
			EffectiveAccuracy: res.Summary.EffectiveAccuracy,
			MaxAccuracyDrop:   res.Summary.MaxAccuracyDrop,
			ViolationRatio:    res.Summary.ViolationRatio,
			ModelLoads:        res.ModelLoads,
		})
	}
	return out, nil
}

// AggregationComparison measures the exact type-aggregated MILP against the
// paper's literal per-device formulation on identical instances: same
// optimum (within gap), very different solve times — the justification for
// the default formulation in DESIGN.md.
type AggregationComparison struct {
	Devices            int
	AggregatedTime     time.Duration
	PerDeviceTime      time.Duration
	AggregatedAccuracy float64
	PerDeviceAccuracy  float64
}

// CompareFormulations runs both formulations across cluster sizes.
func CompareFormulations(sizes []int, timeLimit time.Duration) ([]AggregationComparison, error) {
	if len(sizes) == 0 {
		sizes = []int{8, 16, 24}
	}
	if timeLimit <= 0 {
		timeLimit = 5 * time.Second
	}
	var out []AggregationComparison
	for _, size := range sizes {
		in := fig10Input(size, 17, 3)
		agg := allocator.NewMILP(&allocator.MILPOptions{TimeLimit: timeLimit, RelGap: 0.01})
		start := time.Now()
		aggPlan, err := agg.Allocate(in)
		aggTime := time.Since(start)
		if err != nil {
			return nil, err
		}
		pd := allocator.NewMILP(&allocator.MILPOptions{PerDevice: true, TimeLimit: timeLimit, RelGap: 0.01, MaxBackoffs: 1})
		in2 := fig10Input(size, 17, 3)
		start = time.Now()
		pdPlan, err := pd.Allocate(in2)
		pdTime := time.Since(start)
		cmp := AggregationComparison{
			Devices:            size,
			AggregatedTime:     aggTime,
			PerDeviceTime:      pdTime,
			AggregatedAccuracy: aggPlan.PredictedAccuracy,
		}
		if err == nil {
			cmp.PerDeviceAccuracy = pdPlan.PredictedAccuracy
		}
		out = append(out, cmp)
	}
	return out, nil
}
