package experiments

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"
	"time"

	"proteus/internal/metrics"
)

func tw(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
}

// RenderFig1a writes the Figure 1a points as a table.
func RenderFig1a(w io.Writer, rows []Fig1aRow) error {
	t := tw(w)
	fmt.Fprintln(t, "device\tvariant\taccuracy%\tQPS(batch=1)")
	for _, r := range rows {
		fmt.Fprintf(t, "%s\t%s\t%.1f\t%.1f\n", r.Device, r.Variant, r.Accuracy, r.QPS)
	}
	return t.Flush()
}

// RenderFig1b writes the Pareto frontier of Figure 1b.
func RenderFig1b(w io.Writer, points []ConfigPoint) error {
	frontier := ParetoFrontier(points)
	fmt.Fprintf(w, "configurations: %d, on Pareto frontier: %d\n", len(points), len(frontier))
	t := tw(w)
	fmt.Fprintln(t, "capacityQPS\taccuracy%\tassignment")
	for _, p := range frontier {
		fmt.Fprintf(t, "%.1f\t%.2f\t%v\n", p.CapacityQPS, p.Accuracy, p.Assignment)
	}
	return t.Flush()
}

// RenderSystems writes the end-to-end summary table (Figures 4, 5, 7).
func RenderSystems(w io.Writer, results []SystemResult) error {
	t := tw(w)
	fmt.Fprintln(t, "system\ttput(QPS)\tdemand(QPS)\teff.acc%\tmax.drop%\tviolations\tserved\tlate\tdropped\tloads\tplans\tsolve(s)")
	for _, r := range results {
		s := r.Summary
		fmt.Fprintf(t, "%s\t%.1f\t%.1f\t%.2f\t%.2f\t%.4f\t%d\t%d\t%d\t%d\t%d\t%.2f\n",
			r.Name, s.AvgThroughput, s.AvgDemand, s.EffectiveAccuracy, s.MaxAccuracyDrop,
			s.ViolationRatio, s.Served, s.Late, s.Dropped, r.ModelLoads, r.Plans, r.AvgSolveTime)
	}
	return t.Flush()
}

// RenderSeriesCSV writes a time series as CSV (one row per bin).
func RenderSeriesCSV(w io.Writer, name string, series []metrics.Point) error {
	if _, err := fmt.Fprintf(w, "second,%s_demand,%s_tput,%s_acc,%s_violations\n", name, name, name, name); err != nil {
		return err
	}
	for _, p := range series {
		acc := p.EffectiveAccuracy
		if math.IsNaN(acc) {
			acc = 0
		}
		if _, err := fmt.Fprintf(w, "%.0f,%.2f,%.2f,%.2f,%d\n",
			p.Start.Seconds(), p.DemandQPS, p.ThroughputQPS, acc, p.Violations); err != nil {
			return err
		}
	}
	return nil
}

// RenderFig6 writes the batching comparison grid.
func RenderFig6(w io.Writer, points []Fig6Point) error {
	t := tw(w)
	fmt.Fprintln(t, "arrivals\tbatching\tviolation ratio\tserved/queries")
	for _, p := range points {
		fmt.Fprintf(t, "%s\t%s\t%.4f\t%d/%d\n", p.Process, p.Batching, p.ViolationRatio, p.Served, p.Queries)
	}
	return t.Flush()
}

// RenderFig8 writes the SLO sensitivity grid.
func RenderFig8(w io.Writer, points []Fig8Point) error {
	t := tw(w)
	fmt.Fprintln(t, "SLO\tsystem\ttput(QPS)\tmax.drop%\tviolations")
	for _, p := range points {
		fmt.Fprintf(t, "%.1fx\t%s\t%.1f\t%.2f\t%.4f\n",
			p.SLOMultiplier, p.System, p.AvgThroughput, p.MaxAccuracyDrop, p.ViolationRatio)
	}
	return t.Flush()
}

// RenderFig9 writes the per-family breakdown of a Proteus run.
func RenderFig9(w io.Writer, r SystemResult, families []string) error {
	t := tw(w)
	fmt.Fprintln(t, "family\ttput(QPS)\teff.acc%\tmax.drop%\tviolations")
	for q, s := range r.PerFamily {
		name := fmt.Sprintf("family-%d", q)
		if q < len(families) {
			name = families[q]
		}
		fmt.Fprintf(t, "%s\t%.1f\t%.2f\t%.2f\t%.4f\n",
			name, s.AvgThroughput, s.EffectiveAccuracy, s.MaxAccuracyDrop, s.ViolationRatio)
	}
	return t.Flush()
}

// RenderFig10 writes the MILP scalability sweep.
func RenderFig10(w io.Writer, points []Fig10Point) error {
	t := tw(w)
	fmt.Fprintln(t, "dimension\tvalue\tsolve time\ttimed out")
	for _, p := range points {
		fmt.Fprintf(t, "%s\t%d\t%v\t%v\n", p.Dimension, p.Value, p.SolveTime.Round(1e6), p.TimedOut)
	}
	return t.Flush()
}

// RenderDesignAblations writes the implementation-level ablation table.
func RenderDesignAblations(w io.Writer, rows []DesignAblationRow) error {
	t := tw(w)
	fmt.Fprintln(t, "configuration\ttput(QPS)\teff.acc%\tmax.drop%\tviolations\tmodel loads")
	for _, r := range rows {
		fmt.Fprintf(t, "%s\t%.1f\t%.2f\t%.2f\t%.4f\t%d\n",
			r.Name, r.AvgThroughput, r.EffectiveAccuracy, r.MaxAccuracyDrop, r.ViolationRatio, r.ModelLoads)
	}
	return t.Flush()
}

// RenderFormulations writes the aggregated-vs-per-device MILP comparison.
func RenderFormulations(w io.Writer, rows []AggregationComparison) error {
	t := tw(w)
	fmt.Fprintln(t, "devices\taggregated time\tper-device time\tagg acc%\tper-dev acc%")
	for _, r := range rows {
		fmt.Fprintf(t, "%d\t%v\t%v\t%.2f\t%.2f\n",
			r.Devices, r.AggregatedTime.Round(time.Millisecond),
			r.PerDeviceTime.Round(time.Millisecond),
			r.AggregatedAccuracy, r.PerDeviceAccuracy)
	}
	return t.Flush()
}

// RenderTable2 writes the feature-comparison matrix.
func RenderTable2(w io.Writer, rows []Table2Row) error {
	t := tw(w)
	fmt.Fprintln(t, "feature\t"+"Clipper\tSommelier\tINFaaS\tProteus")
	get := func(f func(Table2Row) string) string {
		out := ""
		for i, r := range rows {
			if i > 0 {
				out += "\t"
			}
			out += f(r)
		}
		return out
	}
	fmt.Fprintln(t, "Model placement\t"+get(func(r Table2Row) string { return r.ModelPlacement }))
	fmt.Fprintln(t, "Model selection\t"+get(func(r Table2Row) string { return r.ModelSelection }))
	fmt.Fprintln(t, "Accuracy scaling\t"+get(func(r Table2Row) string { return r.AccuracyScaling }))
	fmt.Fprintln(t, "Adaptive batching\t"+get(func(r Table2Row) string { return r.AdaptiveBatching }))
	return t.Flush()
}
