// Package experiments reproduces every table and figure of the paper's
// evaluation (§6): the accuracy-throughput motivation plots (Fig. 1), the
// end-to-end system comparison (Fig. 4), burst responsiveness (Fig. 5),
// adaptive-batching isolation (Fig. 6), the ablation study (Fig. 7), SLO
// sensitivity (Fig. 8), the per-family breakdown (Fig. 9), and MILP
// scalability (Fig. 10). cmd/proteus-bench and the top-level benchmarks are
// thin wrappers over this package; EXPERIMENTS.md records paper-vs-measured
// values.
package experiments

import (
	"time"

	"proteus/internal/allocator"
	"proteus/internal/batching"
	"proteus/internal/cluster"
	"proteus/internal/core"
	"proteus/internal/models"
	"proteus/internal/profiles"
	"proteus/internal/telemetry"
	"proteus/internal/trace"
)

// Options control the shared experiment scale. The defaults reproduce the
// paper's behaviour on a cluster scaled so that exact MILP solves fit the
// control period with the pure-Go solver (DESIGN.md).
type Options struct {
	// ClusterSize is the total device count, split 2:1:1 CPU:1080Ti:V100.
	// Default 20 (the paper uses 40).
	ClusterSize int
	// TraceSeconds is the end-to-end trace length. Default 300 (the paper
	// replays ~24 minutes; shorten for quick runs).
	TraceSeconds int
	// BaseQPS and PeakQPS shape the diurnal demand. Defaults 180 / 560,
	// calibrated so the peak overloads the scaled cluster the way the
	// paper's sped-up Twitter trace overloads theirs.
	BaseQPS float64
	PeakQPS float64
	// SLOMultiplier is the latency SLO scale (§6.1.2). Default 2.
	SLOMultiplier float64
	// Seed drives all randomness.
	Seed uint64
	// SolverBudget bounds each MILP solve inside the control loop.
	// Default 500ms.
	SolverBudget time.Duration
	// Trace attaches a lifecycle tracer to each end-to-end system run; the
	// recorded events come back in SystemResult.Trace for the caller to
	// export. Off by default (tracing a 5-system figure holds five buffers).
	Trace bool
}

func (o Options) withDefaults() Options {
	if o.ClusterSize <= 0 {
		o.ClusterSize = 20
	}
	if o.TraceSeconds <= 0 {
		o.TraceSeconds = 300
	}
	if o.BaseQPS <= 0 {
		o.BaseQPS = 180
	}
	if o.PeakQPS <= 0 {
		o.PeakQPS = 560
	}
	if o.SLOMultiplier <= 0 {
		o.SLOMultiplier = 2
	}
	if o.Seed == 0 {
		o.Seed = 20240427 // ASPLOS'24 opening day
	}
	if o.SolverBudget <= 0 {
		o.SolverBudget = 500 * time.Millisecond
	}
	return o
}

func (o Options) milpOptions() *allocator.MILPOptions {
	return &allocator.MILPOptions{
		TimeLimit:  o.SolverBudget,
		RelGap:     0.005,
		StallNodes: 600,
	}
}

// SystemNames are the artifact's model_allocation values in the order the
// paper's figures present them.
var SystemNames = []string{"clipper-ha", "clipper-ht", "sommelier", "infaas_v2", "ilp"}

// AblationNames are the §6.5 configurations (w/o AB is handled via the
// batching policy).
var AblationNames = []string{"ilp", "proteus-wo-ms", "proteus-wo-mp", "proteus-wo-qa", "ilp+static"}

// twitterTrace synthesizes the Twitter-like diurnal workload of §6.1.3:
// diurnal pattern with spikes and noise, Zipf split across the nine
// families, family peaks staggered across the day (multi-tenant phase
// spread), sped up to overload the cluster.
func (o Options) twitterTrace() *trace.Trace {
	fams := models.FamilyNames(models.Zoo())
	return trace.NewDiurnal(trace.DiurnalConfig{
		Seconds:           o.TraceSeconds,
		BaseQPS:           o.BaseQPS,
		DiurnalAmplitude:  o.PeakQPS - o.BaseQPS,
		PeriodSeconds:     o.TraceSeconds * 3, // one rising diurnal flank per run
		Spikes:            3,
		SpikeMagnitude:    o.PeakQPS / 8,
		SpikeWidthSeconds: o.TraceSeconds / 20,
		NoiseFrac:         0.03,
		ZipfAlpha:         1.001,
		FamilyPhaseSpread: 0.4,
		Families:          fams,
		Seed:              o.Seed,
	})
}

// burstyTrace synthesizes the §6.3 macro-burst workload: interleaved flat
// low and flat high demand periods.
func (o Options) burstyTrace() *trace.Trace {
	fams := models.FamilyNames(models.Zoo())
	return trace.NewBursty(trace.BurstyConfig{
		Seconds:      o.TraceSeconds,
		LowQPS:       o.BaseQPS,
		HighQPS:      o.PeakQPS,
		LowSeconds:   o.TraceSeconds / 4,
		HighSeconds:  o.TraceSeconds / 4,
		ZipfAlpha:    1.001,
		Families:     fams,
		StartWithLow: true,
	})
}

// newSystem assembles a simulated serving system for the named allocation
// policy and batching factory, returning the attached tracer (nil unless
// Options.Trace is set).
func (o Options) newSystem(allocName string, batch batching.Factory, seed uint64) (*core.System, *telemetry.Tracer, error) {
	alloc, err := allocator.ByName(allocName, o.milpOptions())
	if err != nil {
		return nil, nil, err
	}
	var tracer *telemetry.Tracer
	if o.Trace {
		tracer = telemetry.NewTracer(0)
	}
	cfg := core.Config{
		Cluster:       cluster.ScaledTestbed(o.ClusterSize),
		Families:      models.Zoo(),
		SLOMultiplier: o.SLOMultiplier,
		Allocator:     alloc,
		Batching:      batch,
		Seed:          seed,
		Tracer:        tracer,
	}
	sys, err := core.NewSystem(cfg)
	return sys, tracer, err
}

// allocByName builds an allocator with the experiment's solver options.
func allocByName(name string, o Options) (allocator.Allocator, error) {
	return allocator.ByName(name, o.milpOptions())
}

// slosFor exposes the per-family SLOs of the experiment configuration.
func (o Options) slosFor() []time.Duration {
	fams := models.Zoo()
	out := make([]time.Duration, len(fams))
	for q, f := range fams {
		out[q] = profiles.FamilySLO(f, o.SLOMultiplier)
	}
	return out
}
