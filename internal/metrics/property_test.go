package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"proteus/internal/numeric"
)

// TestPropertyConservation replays random event streams and checks the
// accounting identities: arrivals split exactly into served + late +
// dropped (when every arrival is resolved), per-family summaries sum to
// the aggregate, and series totals match the summary.
func TestPropertyConservation(t *testing.T) {
	f := func(seed uint64) bool {
		rng := numeric.NewRNG(seed)
		nf := 1 + rng.Intn(4)
		fams := make([]string, nf)
		for i := range fams {
			fams[i] = string(rune('a' + i))
		}
		c := NewCollector(time.Second, fams)
		type outcome int
		var served, late, dropped int
		n := rng.Intn(500)
		for i := 0; i < n; i++ {
			fam := rng.Intn(nf)
			at := time.Duration(rng.Intn(60000)) * time.Millisecond
			c.Arrival(at, fam)
			done := at + time.Duration(rng.Intn(500))*time.Millisecond
			switch outcome(rng.Intn(3)) {
			case 0:
				c.Served(done, fam, 80+rng.Float64()*20, done-at)
				served++
			case 1:
				c.Late(done, fam, done-at)
				late++
			case 2:
				c.Dropped(done, fam)
				dropped++
			}
		}
		s := c.Summarize(-1)
		if s.Queries != n || s.Served != served || s.Late != late || s.Dropped != dropped {
			return false
		}
		// Per-family sums equal the aggregate.
		var fq, fs, fl, fd int
		for q := 0; q < nf; q++ {
			ps := c.Summarize(q)
			fq += ps.Queries
			fs += ps.Served
			fl += ps.Late
			fd += ps.Dropped
		}
		if fq != n || fs != served || fl != late || fd != dropped {
			return false
		}
		// Series totals match.
		var seriesViol int
		var seriesServed float64
		for _, p := range c.Series(-1) {
			seriesViol += p.Violations
			seriesServed += p.ThroughputQPS * c.Interval().Seconds()
		}
		if seriesViol != late+dropped {
			return false
		}
		if math.Abs(seriesServed-float64(served)) > 1e-6 {
			return false
		}
		// Effective accuracy stays in the accuracy range when anything was
		// served.
		if served > 0 && (s.EffectiveAccuracy < 80-1e-9 || s.EffectiveAccuracy > 100+1e-9) {
			return false
		}
		return s.ViolationRatio >= 0 && s.ViolationRatio <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
