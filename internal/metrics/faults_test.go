package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestFailureCounters(t *testing.T) {
	c := NewCollector(time.Second, []string{"a", "b"})
	c.Arrival(0, 0)
	c.Served(100*time.Millisecond, 0, 90, 100*time.Millisecond)

	c.DeviceFailed(2 * time.Second)
	c.DeviceFailed(2 * time.Second)
	c.Requeued(2*time.Second, 0)
	c.Retried(2*time.Second, 0)
	c.Requeued(2*time.Second, 1)
	c.FailureHandled(5 * time.Second)
	c.DeviceRecovered(8 * time.Second)

	s := c.Summarize(-1)
	if s.Failures != 2 || s.Recoveries != 1 || s.Requeued != 2 || s.Retried != 1 {
		t.Fatalf("counters: %+v", s)
	}
	if s.MeanTimeToRecover != 3*time.Second {
		t.Fatalf("MeanTimeToRecover = %v, want 3s", s.MeanTimeToRecover)
	}
	if !strings.Contains(s.String(), "failures=2") {
		t.Fatalf("summary string omits failure info: %s", s.String())
	}

	// Per-family summaries carry no device-level failure stats but do
	// report that family's requeue/retry counts.
	if f := c.Summarize(0); f.Failures != 0 || f.Recoveries != 0 || f.Requeued != 1 || f.Retried != 1 {
		t.Fatalf("per-family summary for family 0: %+v", f)
	}
	if f := c.Summarize(1); f.Failures != 0 || f.Requeued != 1 || f.Retried != 0 {
		t.Fatalf("per-family summary for family 1: %+v", f)
	}
}

func TestFailureHandledDrainsPending(t *testing.T) {
	c := NewCollector(time.Second, []string{"a"})
	c.DeviceFailed(time.Second)
	c.FailureHandled(2 * time.Second)
	// A second handling with nothing pending must not change the stat.
	c.FailureHandled(10 * time.Second)
	s := c.Summarize(-1)
	if s.MeanTimeToRecover != time.Second {
		t.Fatalf("MeanTimeToRecover = %v, want 1s", s.MeanTimeToRecover)
	}
}

func TestSummaryStringOmitsFailuresWhenHealthy(t *testing.T) {
	c := NewCollector(time.Second, []string{"a"})
	c.Arrival(0, 0)
	if strings.Contains(c.Summarize(-1).String(), "failures") {
		t.Fatal("healthy run summary should not mention failures")
	}
}
