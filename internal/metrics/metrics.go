// Package metrics implements the evaluation metrics of the paper (§6.1.4):
// throughput (QPS served), effective accuracy (mean accuracy of
// successfully served queries), maximum accuracy drop over the trace, and
// SLO violation ratio — both as whole-run summaries and per-interval time
// series (the timeseries panels of Figures 4, 5, 7 and 9), with per-family
// breakdowns (Figure 9).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Collector accumulates query outcomes into fixed-width time bins. It is
// not safe for concurrent use; the simulator is single-threaded and the
// live serving layer wraps it in a mutex.
type Collector struct {
	interval time.Duration
	families []string
	bins     []*bin

	// lats[f] holds every completed query's end-to-end latency for family f
	// (served and late alike), for mean and percentile reporting.
	lats [][]time.Duration

	// Failure accounting. Device-level events (failures, recoveries) are
	// aggregate-only: a failure takes down every family hosted there.
	// Requeue/retry are query-level and tracked per family as well.
	failures   int
	recoveries int
	requeuedF  []int
	retriedF   []int
	requeued   int
	retried    int
	// pendingFail holds the times of failures whose re-allocation has not
	// landed yet; FailureHandled drains it into the time-to-recover stat.
	pendingFail []time.Duration
	recoverSum  time.Duration
	recoverN    int
}

type bin struct {
	arrivals []int
	served   []int // completed within SLO
	late     []int // completed after the deadline
	dropped  []int // never completed
	accSum   []float64
}

// NewCollector returns a collector with the given bin width and family
// names (family index space matches the trace/router).
func NewCollector(interval time.Duration, families []string) *Collector {
	if interval <= 0 {
		panic("metrics: interval must be positive")
	}
	return &Collector{
		interval:  interval,
		families:  append([]string(nil), families...),
		lats:      make([][]time.Duration, len(families)),
		requeuedF: make([]int, len(families)),
		retriedF:  make([]int, len(families)),
	}
}

// Interval returns the bin width.
func (c *Collector) Interval() time.Duration { return c.interval }

// Families returns the family names.
func (c *Collector) Families() []string { return c.families }

func (c *Collector) binAt(t time.Duration) *bin {
	if t < 0 {
		t = 0
	}
	idx := int(t / c.interval)
	for len(c.bins) <= idx {
		n := len(c.families)
		c.bins = append(c.bins, &bin{
			arrivals: make([]int, n),
			served:   make([]int, n),
			late:     make([]int, n),
			dropped:  make([]int, n),
			accSum:   make([]float64, n),
		})
	}
	return c.bins[idx]
}

func (c *Collector) checkFamily(f int) {
	if f < 0 || f >= len(c.families) {
		panic(fmt.Sprintf("metrics: family index %d out of range [0,%d)", f, len(c.families)))
	}
}

// Arrival records a query arrival of family f at time t.
func (c *Collector) Arrival(t time.Duration, f int) {
	c.checkFamily(f)
	c.binAt(t).arrivals[f]++
}

// Served records a query of family f completing within its SLO at time t
// with the given model accuracy and end-to-end latency.
func (c *Collector) Served(t time.Duration, f int, accuracy float64, latency time.Duration) {
	c.checkFamily(f)
	b := c.binAt(t)
	b.served[f]++
	b.accSum[f] += accuracy
	c.lats[f] = append(c.lats[f], latency)
}

// Late records a query of family f completing after its deadline at time t.
// Late completions count as SLO violations, not as successful service.
func (c *Collector) Late(t time.Duration, f int, latency time.Duration) {
	c.checkFamily(f)
	b := c.binAt(t)
	b.late[f]++
	c.lats[f] = append(c.lats[f], latency)
}

// Dropped records a query of family f dropped (never executed) at time t.
func (c *Collector) Dropped(t time.Duration, f int) {
	c.checkFamily(f)
	c.binAt(t).dropped[f]++
}

// DeviceFailed records a device failure at time t. The failure stays
// pending until FailureHandled observes the control plane's response.
func (c *Collector) DeviceFailed(t time.Duration) {
	c.failures++
	c.pendingFail = append(c.pendingFail, t)
}

// DeviceRecovered records a device coming back at time t.
func (c *Collector) DeviceRecovered(t time.Duration) { c.recoveries++ }

// Requeued records a query of family f returned to the router at time t
// because its device failed mid-flight.
func (c *Collector) Requeued(t time.Duration, f int) {
	c.checkFamily(f)
	c.requeued++
	c.requeuedF[f]++
}

// Retried records a query of family f re-dispatched to another replica at
// time t after losing its original device.
func (c *Collector) Retried(t time.Duration, f int) {
	c.checkFamily(f)
	c.retried++
	c.retriedF[f]++
}

// FailureHandled records that a failure-triggered re-allocation took effect
// at time t, closing out every pending failure: the elapsed time per failure
// feeds the mean time-to-recover stat.
func (c *Collector) FailureHandled(t time.Duration) {
	for _, ft := range c.pendingFail {
		if d := t - ft; d > 0 {
			c.recoverSum += d
			c.recoverN++
		}
	}
	c.pendingFail = c.pendingFail[:0]
}

// Bins returns the number of time bins recorded so far.
func (c *Collector) Bins() int { return len(c.bins) }

// Point is one bin of the exported time series.
type Point struct {
	Start time.Duration
	// DemandQPS is the arrival rate during the bin.
	DemandQPS float64
	// ThroughputQPS is the rate of queries served within SLO.
	ThroughputQPS float64
	// EffectiveAccuracy is the mean accuracy of served queries (NaN when
	// the bin served none).
	EffectiveAccuracy float64
	// Violations counts late plus dropped queries in the bin.
	Violations int
}

// Series exports the overall per-bin time series. A negative family selects
// the aggregate over all families.
func (c *Collector) Series(family int) []Point {
	sec := c.interval.Seconds()
	out := make([]Point, len(c.bins))
	for i, b := range c.bins {
		var arr, served, late, dropped int
		var acc float64
		for f := range c.families {
			if family >= 0 && f != family {
				continue
			}
			arr += b.arrivals[f]
			served += b.served[f]
			late += b.late[f]
			dropped += b.dropped[f]
			acc += b.accSum[f]
		}
		p := Point{
			Start:         time.Duration(i) * c.interval,
			DemandQPS:     float64(arr) / sec,
			ThroughputQPS: float64(served) / sec,
			Violations:    late + dropped,
		}
		if served > 0 {
			p.EffectiveAccuracy = acc / float64(served)
		} else {
			p.EffectiveAccuracy = math.NaN()
		}
		out[i] = p
	}
	return out
}

// Summary aggregates a whole run, matching §6.1.4.
type Summary struct {
	Queries       int
	Served        int
	Late          int
	Dropped       int
	AvgThroughput float64 // QPS served over the run
	AvgDemand     float64 // QPS arrived over the run
	// EffectiveAccuracy is the mean accuracy of all served queries.
	EffectiveAccuracy float64
	// MaxAccuracyDrop is 100 minus the minimum per-bin effective accuracy
	// (bins that served nothing are skipped), per §6.1.4.
	MaxAccuracyDrop float64
	// ViolationRatio is (late + dropped) / arrivals.
	ViolationRatio float64
	// MeanLatency is the mean completion latency of executed queries;
	// P50/P95/P99Latency are nearest-rank percentiles over the same
	// population (0 when nothing completed).
	MeanLatency time.Duration
	P50Latency  time.Duration
	P95Latency  time.Duration
	P99Latency  time.Duration

	// Device failure accounting (aggregate only; zero for per-family
	// summaries — a device failure is not attributable to one family).
	Failures   int
	Recoveries int
	// Requeued counts queries returned to the router by a failed device;
	// Retried counts those successfully re-dispatched to another replica.
	// Both are per-family in per-family summaries.
	Requeued int
	Retried  int
	// MeanTimeToRecover is the mean delay from a device failure to the
	// failure-triggered re-allocation taking effect (0 when no failure was
	// handled).
	MeanTimeToRecover time.Duration
}

// Summarize computes the run summary. A negative family selects the
// aggregate over all families.
func (c *Collector) Summarize(family int) Summary {
	var s Summary
	var accSum float64
	minBinAcc := math.Inf(1)
	for _, b := range c.bins {
		var binServed int
		var binAcc float64
		for f := range c.families {
			if family >= 0 && f != family {
				continue
			}
			s.Queries += b.arrivals[f]
			s.Served += b.served[f]
			s.Late += b.late[f]
			s.Dropped += b.dropped[f]
			accSum += b.accSum[f]
			binServed += b.served[f]
			binAcc += b.accSum[f]
		}
		if binServed > 0 {
			if a := binAcc / float64(binServed); a < minBinAcc {
				minBinAcc = a
			}
		}
	}
	var lats []time.Duration
	if family < 0 {
		total := 0
		for _, l := range c.lats {
			total += len(l)
		}
		lats = make([]time.Duration, 0, total)
		for _, l := range c.lats {
			lats = append(lats, l...)
		}
	} else {
		lats = append([]time.Duration(nil), c.lats[family]...)
	}
	dur := time.Duration(len(c.bins)) * c.interval
	if dur > 0 {
		s.AvgThroughput = float64(s.Served) / dur.Seconds()
		s.AvgDemand = float64(s.Queries) / dur.Seconds()
	}
	if s.Served > 0 {
		s.EffectiveAccuracy = accSum / float64(s.Served)
	}
	if !math.IsInf(minBinAcc, 1) {
		s.MaxAccuracyDrop = 100 - minBinAcc
	}
	if s.Queries > 0 {
		s.ViolationRatio = float64(s.Late+s.Dropped) / float64(s.Queries)
	}
	if len(lats) > 0 {
		var latSum time.Duration
		for _, l := range lats {
			latSum += l
		}
		s.MeanLatency = latSum / time.Duration(len(lats))
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		s.P50Latency = percentile(lats, 0.50)
		s.P95Latency = percentile(lats, 0.95)
		s.P99Latency = percentile(lats, 0.99)
	}
	if family < 0 {
		s.Failures = c.failures
		s.Recoveries = c.recoveries
		s.Requeued = c.requeued
		s.Retried = c.retried
		if c.recoverN > 0 {
			s.MeanTimeToRecover = c.recoverSum / time.Duration(c.recoverN)
		}
	} else {
		s.Requeued = c.requeuedF[family]
		s.Retried = c.retriedF[family]
	}
	return s
}

// percentile returns the nearest-rank p-th percentile of an ascending
// sorted, non-empty sample slice.
func percentile(sorted []time.Duration, p float64) time.Duration {
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// String formats the summary for reports.
func (s Summary) String() string {
	out := fmt.Sprintf(
		"queries=%d served=%d late=%d dropped=%d tput=%.1fqps acc=%.2f%% maxdrop=%.2f%% violations=%.4f",
		s.Queries, s.Served, s.Late, s.Dropped, s.AvgThroughput,
		s.EffectiveAccuracy, s.MaxAccuracyDrop, s.ViolationRatio)
	if s.Served+s.Late > 0 {
		out += fmt.Sprintf(" lat[mean=%v p50=%v p95=%v p99=%v]",
			s.MeanLatency.Round(time.Millisecond), s.P50Latency.Round(time.Millisecond),
			s.P95Latency.Round(time.Millisecond), s.P99Latency.Round(time.Millisecond))
	}
	if s.Failures > 0 {
		out += fmt.Sprintf(" failures=%d recoveries=%d requeued=%d retried=%d ttr=%v",
			s.Failures, s.Recoveries, s.Requeued, s.Retried,
			s.MeanTimeToRecover.Round(time.Millisecond))
	}
	return out
}
