// Package metrics implements the evaluation metrics of the paper (§6.1.4):
// throughput (QPS served), effective accuracy (mean accuracy of
// successfully served queries), maximum accuracy drop over the trace, and
// SLO violation ratio — both as whole-run summaries and per-interval time
// series (the timeseries panels of Figures 4, 5, 7 and 9), with per-family
// breakdowns (Figure 9).
package metrics

import (
	"fmt"
	"math"
	"time"

	"proteus/internal/tsdb"
)

// Collector accumulates query outcomes into fixed-width time bins. It is
// not safe for concurrent use; the simulator is single-threaded and the
// live serving layer wraps it in a mutex.
type Collector struct {
	interval time.Duration
	families []string
	bins     []*bin

	// hists[f] aggregates every completed query's end-to-end latency for
	// family f (served and late alike) into a log-linear histogram, for mean
	// and percentile reporting. Bucket boundaries are value-determined, so
	// per-bin histograms merge into exactly these whole-run ones.
	hists []*tsdb.Histogram

	// Failure accounting. Device-level events (failures, recoveries) are
	// aggregate-only: a failure takes down every family hosted there.
	// Requeue/retry are query-level and tracked per family as well.
	failures   int
	recoveries int
	requeuedF  []int
	retriedF   []int
	requeued   int
	retried    int
	// pendingFail holds the times of failures whose re-allocation has not
	// landed yet; FailureHandled drains it into the time-to-recover stat.
	pendingFail []time.Duration
	recoverSum  time.Duration
	recoverN    int
}

type bin struct {
	arrivals []int
	served   []int // completed within SLO
	late     []int // completed after the deadline
	dropped  []int // never completed
	accSum   []float64
	// lat[f] is the bin-local latency histogram of family f, allocated
	// lazily on the first completion landing in the bin.
	lat []*tsdb.Histogram
}

// NewCollector returns a collector with the given bin width and family
// names (family index space matches the trace/router).
func NewCollector(interval time.Duration, families []string) *Collector {
	if interval <= 0 {
		panic("metrics: interval must be positive")
	}
	hists := make([]*tsdb.Histogram, len(families))
	for f := range hists {
		hists[f] = &tsdb.Histogram{}
	}
	return &Collector{
		interval:  interval,
		families:  append([]string(nil), families...),
		hists:     hists,
		requeuedF: make([]int, len(families)),
		retriedF:  make([]int, len(families)),
	}
}

// Interval returns the bin width.
func (c *Collector) Interval() time.Duration { return c.interval }

// Families returns the family names.
func (c *Collector) Families() []string { return c.families }

func (c *Collector) binAt(t time.Duration) *bin {
	if t < 0 {
		t = 0
	}
	idx := int(t / c.interval)
	for len(c.bins) <= idx {
		n := len(c.families)
		c.bins = append(c.bins, &bin{
			arrivals: make([]int, n),
			served:   make([]int, n),
			late:     make([]int, n),
			dropped:  make([]int, n),
			accSum:   make([]float64, n),
			lat:      make([]*tsdb.Histogram, n),
		})
	}
	return c.bins[idx]
}

func (c *Collector) checkFamily(f int) {
	if f < 0 || f >= len(c.families) {
		panic(fmt.Sprintf("metrics: family index %d out of range [0,%d)", f, len(c.families)))
	}
}

// Arrival records a query arrival of family f at time t.
func (c *Collector) Arrival(t time.Duration, f int) {
	c.checkFamily(f)
	c.binAt(t).arrivals[f]++
}

// Served records a query of family f completing within its SLO at time t
// with the given model accuracy and end-to-end latency.
func (c *Collector) Served(t time.Duration, f int, accuracy float64, latency time.Duration) {
	c.checkFamily(f)
	b := c.binAt(t)
	b.served[f]++
	b.accSum[f] += accuracy
	c.recordLatency(b, f, latency)
}

// Late records a query of family f completing after its deadline at time t.
// Late completions count as SLO violations, not as successful service.
func (c *Collector) Late(t time.Duration, f int, latency time.Duration) {
	c.checkFamily(f)
	b := c.binAt(t)
	b.late[f]++
	c.recordLatency(b, f, latency)
}

// recordLatency feeds one completion latency into both the whole-run and
// the bin-local histogram of family f.
func (c *Collector) recordLatency(b *bin, f int, latency time.Duration) {
	c.hists[f].RecordDuration(latency)
	if b.lat[f] == nil {
		b.lat[f] = &tsdb.Histogram{}
	}
	b.lat[f].RecordDuration(latency)
}

// Dropped records a query of family f dropped (never executed) at time t.
func (c *Collector) Dropped(t time.Duration, f int) {
	c.checkFamily(f)
	c.binAt(t).dropped[f]++
}

// DeviceFailed records a device failure at time t. The failure stays
// pending until FailureHandled observes the control plane's response.
func (c *Collector) DeviceFailed(t time.Duration) {
	c.failures++
	c.pendingFail = append(c.pendingFail, t)
}

// DeviceRecovered records a device coming back at time t.
func (c *Collector) DeviceRecovered(t time.Duration) { c.recoveries++ }

// Requeued records a query of family f returned to the router at time t
// because its device failed mid-flight.
func (c *Collector) Requeued(t time.Duration, f int) {
	c.checkFamily(f)
	c.requeued++
	c.requeuedF[f]++
}

// Retried records a query of family f re-dispatched to another replica at
// time t after losing its original device.
func (c *Collector) Retried(t time.Duration, f int) {
	c.checkFamily(f)
	c.retried++
	c.retriedF[f]++
}

// FailureHandled records that a failure-triggered re-allocation took effect
// at time t, closing out every pending failure: the elapsed time per failure
// feeds the mean time-to-recover stat.
func (c *Collector) FailureHandled(t time.Duration) {
	for _, ft := range c.pendingFail {
		if d := t - ft; d > 0 {
			c.recoverSum += d
			c.recoverN++
		}
	}
	c.pendingFail = c.pendingFail[:0]
}

// Bins returns the number of time bins recorded so far.
func (c *Collector) Bins() int { return len(c.bins) }

// Point is one bin of the exported time series.
type Point struct {
	Start time.Duration
	// DemandQPS is the arrival rate during the bin.
	DemandQPS float64
	// ThroughputQPS is the rate of queries served within SLO.
	ThroughputQPS float64
	// EffectiveAccuracy is the mean accuracy of served queries (NaN when
	// the bin served none).
	EffectiveAccuracy float64
	// Violations counts late plus dropped queries in the bin.
	Violations int
}

// Series exports the overall per-bin time series. A negative family selects
// the aggregate over all families.
func (c *Collector) Series(family int) []Point {
	sec := c.interval.Seconds()
	out := make([]Point, len(c.bins))
	for i, b := range c.bins {
		var arr, served, late, dropped int
		var acc float64
		for f := range c.families {
			if family >= 0 && f != family {
				continue
			}
			arr += b.arrivals[f]
			served += b.served[f]
			late += b.late[f]
			dropped += b.dropped[f]
			acc += b.accSum[f]
		}
		p := Point{
			Start:         time.Duration(i) * c.interval,
			DemandQPS:     float64(arr) / sec,
			ThroughputQPS: float64(served) / sec,
			Violations:    late + dropped,
		}
		if served > 0 {
			p.EffectiveAccuracy = acc / float64(served)
		} else {
			p.EffectiveAccuracy = math.NaN()
		}
		out[i] = p
	}
	return out
}

// Summary aggregates a whole run, matching §6.1.4.
type Summary struct {
	Queries       int
	Served        int
	Late          int
	Dropped       int
	AvgThroughput float64 // QPS served over the run
	AvgDemand     float64 // QPS arrived over the run
	// EffectiveAccuracy is the mean accuracy of all served queries.
	EffectiveAccuracy float64
	// MaxAccuracyDrop is 100 minus the minimum per-bin effective accuracy
	// (bins that served nothing are skipped), per §6.1.4.
	MaxAccuracyDrop float64
	// ViolationRatio is (late + dropped) / arrivals.
	ViolationRatio float64
	// MeanLatency is the exact mean completion latency of executed queries;
	// P50/P95/P99/P999Latency are exact-rank quantiles read from the
	// log-linear latency histogram over the same population, accurate to one
	// bucket width (relative error <= ~3.1%; 0 when nothing completed).
	MeanLatency time.Duration
	P50Latency  time.Duration
	P95Latency  time.Duration
	P99Latency  time.Duration
	P999Latency time.Duration

	// Device failure accounting (aggregate only; zero for per-family
	// summaries — a device failure is not attributable to one family).
	Failures   int
	Recoveries int
	// Requeued counts queries returned to the router by a failed device;
	// Retried counts those successfully re-dispatched to another replica.
	// Both are per-family in per-family summaries.
	Requeued int
	Retried  int
	// MeanTimeToRecover is the mean delay from a device failure to the
	// failure-triggered re-allocation taking effect (0 when no failure was
	// handled).
	MeanTimeToRecover time.Duration
}

// Summarize computes the run summary. A negative family selects the
// aggregate over all families.
func (c *Collector) Summarize(family int) Summary {
	var s Summary
	var accSum float64
	minBinAcc := math.Inf(1)
	for _, b := range c.bins {
		var binServed int
		var binAcc float64
		for f := range c.families {
			if family >= 0 && f != family {
				continue
			}
			s.Queries += b.arrivals[f]
			s.Served += b.served[f]
			s.Late += b.late[f]
			s.Dropped += b.dropped[f]
			accSum += b.accSum[f]
			binServed += b.served[f]
			binAcc += b.accSum[f]
		}
		if binServed > 0 {
			if a := binAcc / float64(binServed); a < minBinAcc {
				minBinAcc = a
			}
		}
	}
	hist := c.LatencyHistogram(family)
	dur := time.Duration(len(c.bins)) * c.interval
	if dur > 0 {
		s.AvgThroughput = float64(s.Served) / dur.Seconds()
		s.AvgDemand = float64(s.Queries) / dur.Seconds()
	}
	if s.Served > 0 {
		s.EffectiveAccuracy = accSum / float64(s.Served)
	}
	if !math.IsInf(minBinAcc, 1) {
		s.MaxAccuracyDrop = 100 - minBinAcc
	}
	if s.Queries > 0 {
		s.ViolationRatio = float64(s.Late+s.Dropped) / float64(s.Queries)
	}
	if hist.Count() > 0 {
		s.MeanLatency = time.Duration(hist.Mean())
		s.P50Latency = hist.QuantileDuration(0.50)
		s.P95Latency = hist.QuantileDuration(0.95)
		s.P99Latency = hist.QuantileDuration(0.99)
		s.P999Latency = hist.QuantileDuration(0.999)
	}
	if family < 0 {
		s.Failures = c.failures
		s.Recoveries = c.recoveries
		s.Requeued = c.requeued
		s.Retried = c.retried
		if c.recoverN > 0 {
			s.MeanTimeToRecover = c.recoverSum / time.Duration(c.recoverN)
		}
	} else {
		s.Requeued = c.requeuedF[family]
		s.Retried = c.retriedF[family]
	}
	return s
}

// LatencyHistogram returns a copy of the whole-run latency histogram of a
// family; a negative family merges all families (which, bucket boundaries
// being value-determined, equals a histogram recorded over the union).
func (c *Collector) LatencyHistogram(family int) *tsdb.Histogram {
	if family >= 0 {
		c.checkFamily(family)
		return c.hists[family].Clone()
	}
	merged := &tsdb.Histogram{}
	for _, h := range c.hists {
		merged.Merge(h)
	}
	return merged
}

// LatencyPoint is one bin of the windowed latency-percentile series.
type LatencyPoint struct {
	Start time.Duration
	// Count is the number of completions (served + late) in the bin.
	Count uint64
	// P50..P999 are exact-rank quantiles over the bin's completions
	// (0 when the bin completed nothing).
	P50  time.Duration
	P95  time.Duration
	P99  time.Duration
	P999 time.Duration
}

// WindowPercentiles exports the per-bin latency quantile series. A negative
// family merges all families per bin.
func (c *Collector) WindowPercentiles(family int) []LatencyPoint {
	if family >= 0 {
		c.checkFamily(family)
	}
	out := make([]LatencyPoint, len(c.bins))
	for i, b := range c.bins {
		h := &tsdb.Histogram{}
		for f := range c.families {
			if family >= 0 && f != family {
				continue
			}
			h.Merge(b.lat[f])
		}
		p := LatencyPoint{Start: time.Duration(i) * c.interval, Count: h.Count()}
		if h.Count() > 0 {
			p.P50 = h.QuantileDuration(0.50)
			p.P95 = h.QuantileDuration(0.95)
			p.P99 = h.QuantileDuration(0.99)
			p.P999 = h.QuantileDuration(0.999)
		}
		out[i] = p
	}
	return out
}

// String formats the summary for reports.
func (s Summary) String() string {
	out := fmt.Sprintf(
		"queries=%d served=%d late=%d dropped=%d tput=%.1fqps acc=%.2f%% maxdrop=%.2f%% violations=%.4f",
		s.Queries, s.Served, s.Late, s.Dropped, s.AvgThroughput,
		s.EffectiveAccuracy, s.MaxAccuracyDrop, s.ViolationRatio)
	if s.Served+s.Late > 0 {
		out += fmt.Sprintf(" lat[mean=%v p50=%v p95=%v p99=%v]",
			s.MeanLatency.Round(time.Millisecond), s.P50Latency.Round(time.Millisecond),
			s.P95Latency.Round(time.Millisecond), s.P99Latency.Round(time.Millisecond))
	}
	if s.Failures > 0 {
		out += fmt.Sprintf(" failures=%d recoveries=%d requeued=%d retried=%d ttr=%v",
			s.Failures, s.Recoveries, s.Requeued, s.Retried,
			s.MeanTimeToRecover.Round(time.Millisecond))
	}
	return out
}
