package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

var fams = []string{"a", "b"}

func TestBasicSummary(t *testing.T) {
	c := NewCollector(time.Second, fams)
	// Second 0: 3 arrivals on family 0; 2 served (acc 90, 100), 1 dropped.
	c.Arrival(0, 0)
	c.Arrival(100*time.Millisecond, 0)
	c.Arrival(200*time.Millisecond, 0)
	c.Served(300*time.Millisecond, 0, 90, 50*time.Millisecond)
	c.Served(400*time.Millisecond, 0, 100, 60*time.Millisecond)
	c.Dropped(500*time.Millisecond, 0)
	s := c.Summarize(-1)
	if s.Queries != 3 || s.Served != 2 || s.Dropped != 1 || s.Late != 0 {
		t.Fatalf("counts %+v", s)
	}
	if math.Abs(s.EffectiveAccuracy-95) > 1e-9 {
		t.Fatalf("accuracy %v", s.EffectiveAccuracy)
	}
	if math.Abs(s.ViolationRatio-1.0/3.0) > 1e-9 {
		t.Fatalf("violation ratio %v", s.ViolationRatio)
	}
	if s.AvgThroughput != 2 || s.AvgDemand != 3 {
		t.Fatalf("throughput %v demand %v", s.AvgThroughput, s.AvgDemand)
	}
	if s.MeanLatency != 55*time.Millisecond {
		t.Fatalf("mean latency %v", s.MeanLatency)
	}
}

func TestLateCountsAsViolationNotService(t *testing.T) {
	c := NewCollector(time.Second, fams)
	c.Arrival(0, 0)
	c.Late(900*time.Millisecond, 0, 900*time.Millisecond)
	s := c.Summarize(-1)
	if s.Served != 0 || s.Late != 1 {
		t.Fatalf("%+v", s)
	}
	if s.ViolationRatio != 1 {
		t.Fatalf("ratio %v", s.ViolationRatio)
	}
	if s.EffectiveAccuracy != 0 {
		t.Fatalf("accuracy of zero served must be 0, got %v", s.EffectiveAccuracy)
	}
}

func TestMaxAccuracyDrop(t *testing.T) {
	c := NewCollector(time.Second, fams)
	// Bin 0 at accuracy 100, bin 1 at 85, bin 2 empty, bin 3 at 95.
	c.Served(0, 0, 100, time.Millisecond)
	c.Served(1500*time.Millisecond, 0, 85, time.Millisecond)
	c.Served(3500*time.Millisecond, 0, 95, time.Millisecond)
	s := c.Summarize(-1)
	if math.Abs(s.MaxAccuracyDrop-15) > 1e-9 {
		t.Fatalf("max drop %v, want 15", s.MaxAccuracyDrop)
	}
}

func TestMaxAccuracyDropNoService(t *testing.T) {
	c := NewCollector(time.Second, fams)
	c.Arrival(0, 0)
	c.Dropped(1, 0)
	if d := c.Summarize(-1).MaxAccuracyDrop; d != 0 {
		t.Fatalf("drop with no service %v", d)
	}
}

func TestPerFamilyBreakdown(t *testing.T) {
	c := NewCollector(time.Second, fams)
	c.Arrival(0, 0)
	c.Served(0, 0, 90, time.Millisecond)
	c.Arrival(0, 1)
	c.Dropped(0, 1)
	s0 := c.Summarize(0)
	s1 := c.Summarize(1)
	if s0.Served != 1 || s0.ViolationRatio != 0 {
		t.Fatalf("family 0: %+v", s0)
	}
	if s1.Served != 0 || s1.ViolationRatio != 1 {
		t.Fatalf("family 1: %+v", s1)
	}
}

func TestSeries(t *testing.T) {
	c := NewCollector(time.Second, fams)
	c.Arrival(0, 0)
	c.Arrival(0, 1)
	c.Served(500*time.Millisecond, 0, 92, time.Millisecond)
	c.Dropped(800*time.Millisecond, 1)
	c.Arrival(1500*time.Millisecond, 0)
	c.Late(1900*time.Millisecond, 0, 400*time.Millisecond)
	pts := c.Series(-1)
	if len(pts) != 2 {
		t.Fatalf("bins %d", len(pts))
	}
	if pts[0].DemandQPS != 2 || pts[0].ThroughputQPS != 1 || pts[0].Violations != 1 {
		t.Fatalf("bin 0: %+v", pts[0])
	}
	if math.Abs(pts[0].EffectiveAccuracy-92) > 1e-9 {
		t.Fatalf("bin 0 accuracy %v", pts[0].EffectiveAccuracy)
	}
	if pts[1].Violations != 1 || pts[1].ThroughputQPS != 0 {
		t.Fatalf("bin 1: %+v", pts[1])
	}
	if !math.IsNaN(pts[1].EffectiveAccuracy) {
		t.Fatalf("empty bin accuracy %v, want NaN", pts[1].EffectiveAccuracy)
	}
	if pts[1].Start != time.Second {
		t.Fatalf("bin 1 start %v", pts[1].Start)
	}
}

func TestSeriesPerFamily(t *testing.T) {
	c := NewCollector(time.Second, fams)
	c.Served(0, 0, 90, time.Millisecond)
	c.Served(0, 1, 80, time.Millisecond)
	p0 := c.Series(0)
	if p0[0].ThroughputQPS != 1 || math.Abs(p0[0].EffectiveAccuracy-90) > 1e-9 {
		t.Fatalf("family 0 series %+v", p0[0])
	}
}

func TestIntervalScaling(t *testing.T) {
	c := NewCollector(10*time.Second, fams)
	for i := 0; i < 50; i++ {
		c.Served(time.Duration(i)*100*time.Millisecond, 0, 100, time.Millisecond)
	}
	pts := c.Series(-1)
	if len(pts) != 1 {
		t.Fatalf("bins %d", len(pts))
	}
	if pts[0].ThroughputQPS != 5 { // 50 queries over 10 seconds
		t.Fatalf("throughput %v", pts[0].ThroughputQPS)
	}
}

func TestNegativeTimesClampToFirstBin(t *testing.T) {
	c := NewCollector(time.Second, fams)
	c.Arrival(-time.Second, 0)
	if c.Bins() != 1 {
		t.Fatalf("bins %d", c.Bins())
	}
}

func TestFamilyIndexPanics(t *testing.T) {
	c := NewCollector(time.Second, fams)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Arrival(0, 5)
}

func TestBadIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCollector(0, fams)
}

func TestSummaryString(t *testing.T) {
	c := NewCollector(time.Second, fams)
	c.Arrival(0, 0)
	c.Served(0, 0, 99, time.Millisecond)
	str := c.Summarize(-1).String()
	for _, want := range []string{"queries=1", "served=1", "acc=99.00%"} {
		if !strings.Contains(str, want) {
			t.Fatalf("summary %q missing %q", str, want)
		}
	}
}

func TestAccessors(t *testing.T) {
	c := NewCollector(2*time.Second, fams)
	if c.Interval() != 2*time.Second || len(c.Families()) != 2 {
		t.Fatal("accessors broken")
	}
}

func TestLatencyPercentiles(t *testing.T) {
	c := NewCollector(time.Second, fams)
	// 100 samples: 1ms..100ms on family 0.
	for i := 1; i <= 100; i++ {
		c.Served(0, 0, 90, time.Duration(i)*time.Millisecond)
	}
	s := c.Summarize(-1)
	// Percentiles come from the log-linear histogram: accurate to one bucket
	// width (<= want/32 for values past the linear range).
	withinBucket := func(name string, got, want time.Duration) {
		t.Helper()
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		if diff > want/32+1 {
			t.Fatalf("%s = %v, want %v within one bucket width (%v)", name, got, want, want/32+1)
		}
	}
	withinBucket("p50", s.P50Latency, 50*time.Millisecond)
	withinBucket("p95", s.P95Latency, 95*time.Millisecond)
	withinBucket("p99", s.P99Latency, 99*time.Millisecond)
	withinBucket("p99.9", s.P999Latency, 100*time.Millisecond)
	if got := s.String(); !strings.Contains(got, "p50=50ms") || !strings.Contains(got, "p99=") {
		t.Fatalf("summary string missing percentiles: %s", got)
	}
	// Late completions join the latency population too.
	c2 := NewCollector(time.Second, fams)
	c2.Served(0, 0, 90, 10*time.Millisecond)
	c2.Late(0, 0, 30*time.Millisecond)
	if s2 := c2.Summarize(-1); s2.MeanLatency != 20*time.Millisecond || s2.P99Latency != 30*time.Millisecond {
		t.Fatalf("mixed served/late latency: %+v", s2)
	}
	// Per-family percentiles only see that family's samples.
	c3 := NewCollector(time.Second, fams)
	c3.Served(0, 0, 90, 10*time.Millisecond)
	c3.Served(0, 1, 90, 70*time.Millisecond)
	if f := c3.Summarize(0); f.P99Latency != 10*time.Millisecond {
		t.Fatalf("family 0 p99 = %v, want 10ms", f.P99Latency)
	}
	// A summary with no completions reports zero percentiles and omits the
	// lat block from its string.
	c4 := NewCollector(time.Second, fams)
	c4.Arrival(0, 0)
	c4.Dropped(0, 0)
	s4 := c4.Summarize(-1)
	if s4.P50Latency != 0 || strings.Contains(s4.String(), "lat[") {
		t.Fatalf("empty-latency summary: %+v %q", s4, s4.String())
	}
}

// TestSummaryStringGolden pins the full report text format. The format is a
// compatibility surface (parsed by scripts and diffed across runs); value
// changes are fine, shape changes are not.
func TestSummaryStringGolden(t *testing.T) {
	c := NewCollector(time.Second, fams)
	for i := 0; i < 10; i++ {
		c.Arrival(0, 0)
	}
	for i := 0; i < 8; i++ {
		c.Served(0, 0, 90, 10*time.Millisecond)
	}
	c.Late(0, 0, 40*time.Millisecond)
	c.Dropped(0, 0)
	got := c.Summarize(-1).String()
	want := "queries=10 served=8 late=1 dropped=1 tput=8.0qps acc=90.00% " +
		"maxdrop=10.00% violations=0.2000 lat[mean=13ms p50=10ms p95=40ms p99=40ms]"
	if got != want {
		t.Fatalf("summary string changed:\n got %q\nwant %q", got, want)
	}
}

func TestLatencyHistogramAccessor(t *testing.T) {
	c := NewCollector(time.Second, fams)
	c.Served(0, 0, 90, 10*time.Millisecond)
	c.Served(0, 1, 90, 20*time.Millisecond)
	if n := c.LatencyHistogram(0).Count(); n != 1 {
		t.Fatalf("family 0 histogram count = %d, want 1", n)
	}
	merged := c.LatencyHistogram(-1)
	if merged.Count() != 2 || merged.Min() != int64(10*time.Millisecond) || merged.Max() != int64(20*time.Millisecond) {
		t.Fatalf("merged histogram wrong: count=%d min=%d max=%d", merged.Count(), merged.Min(), merged.Max())
	}
	// The returned histogram is a copy: mutating it must not leak back.
	merged.Record(1)
	if c.LatencyHistogram(-1).Count() != 2 {
		t.Fatal("LatencyHistogram must return a copy")
	}
}

func TestWindowPercentiles(t *testing.T) {
	c := NewCollector(time.Second, fams)
	// Bin 0: fast completions; bin 2: slow; bin 1: empty.
	for i := 0; i < 10; i++ {
		c.Served(100*time.Millisecond, 0, 90, 5*time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		c.Late(2*time.Second+100*time.Millisecond, 1, 500*time.Millisecond)
	}
	pts := c.WindowPercentiles(-1)
	if len(pts) != 3 {
		t.Fatalf("want 3 bins, got %d", len(pts))
	}
	if pts[0].Count != 10 || pts[1].Count != 0 || pts[2].Count != 10 {
		t.Fatalf("bin counts: %+v", pts)
	}
	if pts[1].P50 != 0 {
		t.Fatal("empty bin must report zero percentiles")
	}
	if pts[0].P50 >= pts[2].P50 {
		t.Fatalf("bin 0 p50 %v should be far below bin 2 p50 %v", pts[0].P50, pts[2].P50)
	}
	// Per-family view: family 0 only completed in bin 0.
	fpts := c.WindowPercentiles(0)
	if fpts[0].Count != 10 || fpts[2].Count != 0 {
		t.Fatalf("family filter broken: %+v", fpts)
	}
}
