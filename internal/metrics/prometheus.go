package metrics

import (
	"fmt"
	"io"
	"strconv"
)

// WritePrometheusLatency exports the per-family whole-run latency
// histograms in the Prometheus text exposition format (version 0.0.4), as
// one native histogram family:
//
//	query_latency_seconds_bucket{family="resnet",le="0.001"} 5
//	...
//	query_latency_seconds_bucket{family="resnet",le="+Inf"} 123
//	query_latency_seconds_sum{family="resnet"} 1.84
//	query_latency_seconds_count{family="resnet"} 123
//
// Bucket upper bounds come straight from the tsdb log-linear histogram
// (converted from nanoseconds to seconds); counts are cumulative, per the
// exposition format. Families with no completions are omitted. The output
// is deterministic: families in registration order, buckets ascending.
func (c *Collector) WritePrometheusLatency(w io.Writer) error {
	const name = "query_latency_seconds"
	wroteHeader := false
	for f, fam := range c.families {
		h := c.LatencyHistogram(f)
		if h.Count() == 0 {
			continue
		}
		if !wroteHeader {
			if _, err := fmt.Fprintf(w, "# HELP %s End-to-end query latency (served and late), by model family.\n# TYPE %s histogram\n",
				name, name); err != nil {
				return err
			}
			wroteHeader = true
		}
		var cum uint64
		for _, b := range h.Buckets() {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{family=%q,le=%q} %d\n",
				name, fam, seconds(b.High), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{family=%q,le=\"+Inf\"} %d\n%s_sum{family=%q} %s\n%s_count{family=%q} %d\n",
			name, fam, h.Count(),
			name, fam, seconds(h.Sum()),
			name, fam, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// seconds formats a nanosecond value as a seconds float, shortest exact
// representation (strconv 'g' is deterministic, so exposition bytes are
// stable across same-seed runs).
func seconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}
