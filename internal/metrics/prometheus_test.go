package metrics

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// promHistogram is one parsed family's histogram state.
type promHistogram struct {
	buckets []struct {
		le  float64
		cum uint64
	}
	sum      float64
	count    uint64
	hasInf   bool
	infCount uint64
}

// parseExposition is a minimal Prometheus text-format (0.0.4) parser for
// the query_latency_seconds family: enough to assert the exposition is
// well-formed the way a real scraper requires.
func parseExposition(t *testing.T, text string) map[string]*promHistogram {
	t.Helper()
	out := map[string]*promHistogram{}
	sawHelp, sawType := false, false
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP query_latency_seconds ") {
			sawHelp = true
			continue
		}
		if line == "# TYPE query_latency_seconds histogram" {
			sawType = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, rest, ok := strings.Cut(line, "{")
		var labels, value string
		if ok {
			labels, value, ok = strings.Cut(rest, "} ")
			if !ok {
				t.Fatalf("malformed sample line %q", line)
			}
		} else {
			t.Fatalf("unlabeled sample line %q", line)
		}
		fam := ""
		le := ""
		for _, lp := range strings.Split(labels, ",") {
			k, v, ok := strings.Cut(lp, "=")
			if !ok {
				t.Fatalf("malformed label pair %q in %q", lp, line)
			}
			uq, err := strconv.Unquote(v)
			if err != nil {
				t.Fatalf("label value %q not quoted in %q: %v", v, line, err)
			}
			switch k {
			case "family":
				fam = uq
			case "le":
				le = uq
			}
		}
		if fam == "" {
			t.Fatalf("sample without family label: %q", line)
		}
		h := out[fam]
		if h == nil {
			h = &promHistogram{}
			out[fam] = h
		}
		switch name {
		case "query_latency_seconds_bucket":
			n, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				t.Fatalf("bucket value %q: %v", value, err)
			}
			if le == "+Inf" {
				h.hasInf = true
				h.infCount = n
				continue
			}
			f, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("le %q: %v", le, err)
			}
			h.buckets = append(h.buckets, struct {
				le  float64
				cum uint64
			}{f, n})
		case "query_latency_seconds_sum":
			f, err := strconv.ParseFloat(value, 64)
			if err != nil {
				t.Fatalf("sum value %q: %v", value, err)
			}
			h.sum = f
		case "query_latency_seconds_count":
			n, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				t.Fatalf("count value %q: %v", value, err)
			}
			h.count = n
		default:
			t.Fatalf("unexpected metric name %q", name)
		}
	}
	if len(out) > 0 && (!sawHelp || !sawType) {
		t.Fatal("exposition missing # HELP / # TYPE header")
	}
	return out
}

// TestWritePrometheusLatency records known latencies and asserts the
// exposition parses with the invariants scrapers rely on: cumulative
// monotone buckets, +Inf equal to _count, and a consistent _sum.
func TestWritePrometheusLatency(t *testing.T) {
	c := NewCollector(time.Second, []string{"resnet", "bert", "idle"})
	lats := []time.Duration{
		900 * time.Microsecond, 3 * time.Millisecond, 3 * time.Millisecond,
		47 * time.Millisecond, 250 * time.Millisecond, 2 * time.Second,
	}
	var wantSum time.Duration
	for i, l := range lats {
		c.Served(time.Duration(i)*time.Second, 0, 0.8, l)
		wantSum += l
	}
	c.Late(0, 1, 10*time.Millisecond)
	// Family "idle" completes nothing and must be absent.

	var sb strings.Builder
	if err := c.WritePrometheusLatency(&sb); err != nil {
		t.Fatal(err)
	}
	hists := parseExposition(t, sb.String())
	if len(hists) != 2 {
		t.Fatalf("got %d families, want 2 (idle omitted): %v", len(hists), hists)
	}
	if _, ok := hists["idle"]; ok {
		t.Fatal("family with no completions exported")
	}

	h := hists["resnet"]
	if h == nil {
		t.Fatal("resnet histogram missing")
	}
	if !h.hasInf {
		t.Fatal("resnet histogram has no +Inf bucket")
	}
	if h.infCount != uint64(len(lats)) || h.count != uint64(len(lats)) {
		t.Fatalf("+Inf=%d count=%d, want both %d", h.infCount, h.count, len(lats))
	}
	prevLE, prevCum := -1.0, uint64(0)
	for _, b := range h.buckets {
		if b.le <= prevLE {
			t.Fatalf("le bounds not ascending: %v after %v", b.le, prevLE)
		}
		if b.cum < prevCum {
			t.Fatalf("cumulative counts decreased: %d after %d", b.cum, prevCum)
		}
		prevLE, prevCum = b.le, b.cum
	}
	if prevCum != h.infCount {
		t.Fatalf("last finite bucket %d != +Inf %d", prevCum, h.infCount)
	}
	// Every latency must sit in a bucket whose bound covers it.
	for _, l := range lats {
		s := l.Seconds()
		covered := false
		for _, b := range h.buckets {
			if s <= b.le {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("latency %v above every finite bucket bound", l)
		}
	}
	if got, want := h.sum, wantSum.Seconds(); got < want*0.999 || got > want*1.001 {
		t.Fatalf("sum %v, want ~%v", got, want)
	}

	if hists["bert"].count != 1 {
		t.Fatalf("bert count %d, want 1 (late completions count)", hists["bert"].count)
	}

	// Byte-determinism: a second write of the same state is identical.
	var sb2 strings.Builder
	if err := c.WritePrometheusLatency(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Fatal("exposition bytes not deterministic")
	}
}
