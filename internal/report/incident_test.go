package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"proteus/internal/controlplane"
	"proteus/internal/flightrec"
	"proteus/internal/telemetry"
	"proteus/internal/tsdb"
)

func testBundle() *flightrec.Bundle {
	return &flightrec.Bundle{
		ID:     "incident-000002-slo_burn",
		Seq:    2,
		AtNS:   int64(42 * time.Second),
		Reason: "slo_burn",
		Detail: "family=1 short=3.10 long=2.40 <script>",
		Family: 1,
		Device: -1,
		TraceEvents: []flightrec.TraceEvent{
			{AtUS: 41_900_000, Seq: 7, Kind: "arrival", Query: 9, Family: 1, Device: -1, Batch: -1},
			{AtUS: 41_950_000, Seq: 8, Kind: "done", Query: 9, Family: 1, Device: 2, Batch: 4},
		},
		Counters: []flightrec.CounterSnap{
			{AtNS: int64(41 * time.Second), Metrics: []telemetry.Metric{{Name: "queries_arrived_total", Value: 100, Kind: "counter"}}},
			{AtNS: int64(42 * time.Second), Metrics: []telemetry.Metric{{Name: "queries_arrived_total", Value: 140, Kind: "counter"}}},
		},
		Burns: []tsdb.BurnEvent{
			{At: 42 * time.Second, Family: 1, Start: true, ShortBurn: 3.1, LongBurn: 2.4},
		},
		Phases: []tsdb.PhaseStat{
			{Scope: "family", Index: 1, Phase: "exec", Count: 50, MeanUS: 9000, P50US: 8000, P95US: 15000, P99US: 20000, MaxUS: 30000},
			{Scope: "device", Index: 2, Phase: "queue", Count: 50, MeanUS: 500, P50US: 400, P95US: 900, P99US: 1000, MaxUS: 1200},
		},
		Plans: []controlplane.PlanRecord{
			{At: 40 * time.Second, Trigger: "periodic", Stage: "primary", Solver: "milp", PredictedAccuracy: 0.81, DemandScale: 1, Loads: 2},
		},
		Runtime: []flightrec.RuntimeSnap{
			{AtNS: int64(42 * time.Second), HeapAllocBytes: 32 << 20, HeapSysBytes: 64 << 20, GCPauseTotalNS: 1_500_000, NumGC: 3, Goroutines: 12},
		},
	}
}

func TestRenderIncident(t *testing.T) {
	b := testBundle()
	html := string(RenderIncident(b))

	for _, w := range []string{
		"incident-000002-slo_burn",
		"trigger #2", "reason slo_burn", "at 42s", "family 1",
		"<h2>Process runtime</h2>",
		"<h2>Counters at 42s (last of 2 snapshots)</h2>",
		"queries_arrived_total", "<td>140</td>",
		"<h2>Phase decomposition</h2>",
		"<td>family 1</td><td>exec</td><td>50</td><td>9</td>",
		"<td>device 2</td><td>queue</td>",
		"<h2>SLO burn transitions</h2>",
		"<td>start</td><td>3.10</td><td>2.40</td>",
		"<h2>Control decisions</h2>",
		"<td>periodic</td><td>primary</td><td>milp</td>",
		"<h2>Trace tail (2 of 2 events)</h2>",
		"<td>done</td>",
	} {
		if !strings.Contains(html, w) {
			t.Errorf("incident page missing %q", w)
		}
	}
	// Detail text is HTML-escaped.
	if strings.Contains(html, "<script>") {
		t.Error("unescaped detail text in incident page")
	}
	if !strings.Contains(html, "&lt;script&gt;") {
		t.Error("escaped detail text missing")
	}
	// Rendering is a pure function of the bundle.
	if !bytes.Equal(RenderIncident(b), RenderIncident(testBundle())) {
		t.Error("incident render not deterministic")
	}
}

func TestRenderIncidentMinimal(t *testing.T) {
	// A bundle triggered before any tick has only its header; every section
	// must degrade to absence, not panic.
	b := &flightrec.Bundle{ID: "incident-000001-manual", Seq: 1, Reason: "manual", Family: -1, Device: -1}
	html := string(RenderIncident(b))
	for _, absent := range []string{"<h2>Process runtime", "<h2>Counters", "<h2>Phase", "<h2>SLO burn", "<h2>Control decisions", "<h2>Trace tail"} {
		if strings.Contains(html, absent) {
			t.Errorf("empty bundle renders section %q", absent)
		}
	}
	if !strings.Contains(html, "incident-000001-manual") {
		t.Error("bundle ID missing")
	}
}

func TestHTMLReportPhaseSection(t *testing.T) {
	d := &Dump{
		Meta:     Meta{Devices: []string{"cpu-0", "v100-0"}},
		Families: []FamilySummary{{Name: "efficientnet"}},
		Phases: []tsdb.PhaseStat{
			{Scope: "family", Index: 0, Phase: "queue", Count: 10, MeanUS: 1500, P95US: 4000, MaxUS: 5000},
			{Scope: "device", Index: 1, Phase: "exec", Count: 10, MeanUS: 7000, P95US: 9000, MaxUS: 9500},
		},
	}
	html := string(RenderHTML(d))
	for _, w := range []string{
		"<h2>Phase decomposition</h2>",
		"<td>efficientnet</td><td>queue</td><td>10</td><td>1.5</td>",
		"<td>v100-0</td><td>exec</td>",
	} {
		if !strings.Contains(html, w) {
			t.Errorf("report missing %q", w)
		}
	}
	// No phases → no section.
	d.Phases = nil
	if strings.Contains(string(RenderHTML(d)), "Phase decomposition") {
		t.Error("phase section rendered without data")
	}
}
