package report

import (
	"fmt"
	"strings"
)

// Chart geometry shared by the SVG panels. All coordinates are formatted
// with fixed precision so renders are byte-deterministic.
const (
	chartW   = 720
	chartH   = 180
	chartPad = 36
)

// f2 formats a float with two decimals — the single formatting path for
// every SVG coordinate.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// scale maps v in [lo,hi] to pixel range [a,b] (clamping), degenerating to
// the midpoint when the domain is empty.
func scale(v, lo, hi, a, b float64) float64 {
	if hi <= lo {
		return (a + b) / 2
	}
	t := (v - lo) / (hi - lo)
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return a + t*(b-a)
}

// polyline renders one series as an SVG polyline. xs and ys must have equal
// length; an empty series renders nothing.
func polyline(sb *strings.Builder, xs, ys []float64, xLo, xHi, yLo, yHi float64, color string) {
	if len(xs) == 0 {
		return
	}
	sb.WriteString(`<polyline fill="none" stroke="`)
	sb.WriteString(color)
	sb.WriteString(`" stroke-width="1.5" points="`)
	for i := range xs {
		if i > 0 {
			sb.WriteByte(' ')
		}
		x := scale(xs[i], xLo, xHi, chartPad, chartW-chartPad)
		y := scale(ys[i], yLo, yHi, chartH-chartPad, chartPad)
		sb.WriteString(f2(x))
		sb.WriteByte(',')
		sb.WriteString(f2(y))
	}
	sb.WriteString("\"/>\n")
}

// band shades a horizontal time interval (a burn episode) across the chart.
func band(sb *strings.Builder, t0, t1, xLo, xHi float64, color string) {
	x0 := scale(t0, xLo, xHi, chartPad, chartW-chartPad)
	x1 := scale(t1, xLo, xHi, chartPad, chartW-chartPad)
	if x1 < x0 {
		x0, x1 = x1, x0
	}
	fmt.Fprintf(sb, `<rect x="%s" y="%d" width="%s" height="%d" fill="%s" opacity="0.25"/>`+"\n",
		f2(x0), chartPad, f2(x1-x0), chartH-2*chartPad, color)
}

// axes draws the chart frame with min/max labels on both axes.
func axes(sb *strings.Builder, title, yMinLabel, yMaxLabel, xMinLabel, xMaxLabel string) {
	fmt.Fprintf(sb, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#999"/>`+"\n",
		chartPad, chartPad, chartW-2*chartPad, chartH-2*chartPad)
	fmt.Fprintf(sb, `<text x="%d" y="%d" font-size="12" fill="#333">%s</text>`+"\n",
		chartPad, chartPad-8, escape(title))
	fmt.Fprintf(sb, `<text x="%d" y="%d" font-size="9" fill="#666" text-anchor="end">%s</text>`+"\n",
		chartPad-4, chartPad+8, escape(yMaxLabel))
	fmt.Fprintf(sb, `<text x="%d" y="%d" font-size="9" fill="#666" text-anchor="end">%s</text>`+"\n",
		chartPad-4, chartH-chartPad, escape(yMinLabel))
	fmt.Fprintf(sb, `<text x="%d" y="%d" font-size="9" fill="#666">%s</text>`+"\n",
		chartPad, chartH-chartPad+12, escape(xMinLabel))
	fmt.Fprintf(sb, `<text x="%d" y="%d" font-size="9" fill="#666" text-anchor="end">%s</text>`+"\n",
		chartW-chartPad, chartH-chartPad+12, escape(xMaxLabel))
}

// legend draws labeled color keys along the chart top edge.
func legend(sb *strings.Builder, entries [][2]string) {
	x := chartW - chartPad - 110*len(entries)
	for _, e := range entries {
		fmt.Fprintf(sb, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n", x, chartPad-18, e[1])
		fmt.Fprintf(sb, `<text x="%d" y="%d" font-size="10" fill="#333">%s</text>`+"\n", x+14, chartPad-9, escape(e[0]))
		x += 110
	}
}

// openSVG/closeSVG wrap one chart panel.
func openSVG(sb *strings.Builder) {
	fmt.Fprintf(sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		chartW, chartH, chartW, chartH)
}

func closeSVG(sb *strings.Builder) { sb.WriteString("</svg>\n") }

// escape makes a string safe inside SVG/HTML text nodes and attributes.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// heatColor maps utilization in [0,1000] milli to a white→red ramp with
// deterministic hex formatting.
func heatColor(utilMilli int) string {
	if utilMilli < 0 {
		utilMilli = 0
	}
	if utilMilli > 1000 {
		utilMilli = 1000
	}
	// 0 → #f7f7f7, 1000 → #c81414: linear in each channel.
	t := float64(utilMilli) / 1000
	r := int(0xf7 + t*(0xc8-0xf7))
	g := int(0xf7 + t*(0x14-0xf7))
	b := int(0xf7 + t*(0x14-0xf7))
	return fmt.Sprintf("#%02x%02x%02x", r, g, b)
}
