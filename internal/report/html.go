package report

import (
	"fmt"
	"strings"
	"time"

	"proteus/internal/tsdb"
)

// RenderHTML turns a dump into one self-contained HTML page: inline SVG
// charts and plain tables, no scripts, no external resources. Output is a
// pure function of the dump, so same-seed runs render byte-identical
// reports.
func RenderHTML(d *Dump) []byte {
	var sb strings.Builder
	title := "Proteus run report"
	if d.Meta.Label != "" {
		title += ": " + d.Meta.Label
	}
	sb.WriteString("<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n<title>")
	sb.WriteString(escape(title))
	sb.WriteString("</title>\n<style>\n")
	sb.WriteString(`body{font-family:sans-serif;margin:24px;color:#222}
h1{font-size:20px}h2{font-size:15px;margin-top:28px}
table{border-collapse:collapse;font-size:12px;margin-top:8px}
td,th{border:1px solid #ccc;padding:3px 8px;text-align:right}
th{background:#f0f0f0}td:first-child,th:first-child{text-align:left}
svg{display:block;margin-top:8px}
.meta{font-size:12px;color:#555}
`)
	sb.WriteString("</style>\n</head>\n<body>\n<h1>")
	sb.WriteString(escape(title))
	sb.WriteString("</h1>\n")

	fmt.Fprintf(&sb, `<p class="meta">seed=%d bin=%ss sample=%ss slo_target=%s burn_rate=%s windows=%s/%ss devices=%d</p>`+"\n",
		d.Meta.Seed, trimF(d.Meta.BinS), trimF(d.Meta.SampleS),
		trimF(d.Meta.SLOTarget), trimF(d.Meta.SLOBurnRate),
		trimF(d.Meta.SLOShortS), trimF(d.Meta.SLOLongS), len(d.Meta.Devices))

	sb.WriteString("<h2>Run summary</h2>\n<pre>")
	sb.WriteString(escape(d.Summary.String()))
	sb.WriteString("</pre>\n")

	renderThroughputChart(&sb, d)
	renderAccuracyChart(&sb, d)
	renderViolationChart(&sb, d)
	renderLatencyChart(&sb, d)
	renderUtilizationHeatmap(&sb, d)
	renderFamilyTable(&sb, d)
	renderPhaseSection(&sb, d)
	renderAttributionSection(&sb, d)
	renderBurnTable(&sb, d)
	renderPlanTable(&sb, d)

	sb.WriteString("</body>\n</html>\n")
	return []byte(sb.String())
}

// trimF formats a float compactly (no trailing zeros) and deterministically.
func trimF(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// window x-domain: [first bin start, last bin end].
func xDomain(d *Dump) (float64, float64) {
	if len(d.Windows) == 0 {
		return 0, 1
	}
	return d.Windows[0].StartS, d.Windows[len(d.Windows)-1].StartS + d.Meta.BinS
}

func maxF(vals ...float64) float64 {
	m := 0.0
	for _, v := range vals {
		if v > m {
			m = v
		}
	}
	return m
}

func renderThroughputChart(sb *strings.Builder, d *Dump) {
	if len(d.Windows) == 0 {
		return
	}
	sb.WriteString("<h2>Demand vs served throughput</h2>\n")
	xLo, xHi := xDomain(d)
	var xs, demand, served []float64
	yHi := 0.0
	for _, w := range d.Windows {
		xs = append(xs, w.StartS+d.Meta.BinS/2)
		demand = append(demand, w.DemandQPS)
		served = append(served, w.ServedQPS)
		yHi = maxF(yHi, w.DemandQPS, w.ServedQPS)
	}
	if yHi == 0 {
		yHi = 1
	}
	openSVG(sb)
	axes(sb, "QPS over time", "0", trimF(yHi)+" qps", trimF(xLo)+"s", trimF(xHi)+"s")
	legend(sb, [][2]string{{"demand", "#4878cf"}, {"served", "#6acc65"}})
	polyline(sb, xs, demand, xLo, xHi, 0, yHi, "#4878cf")
	polyline(sb, xs, served, xLo, xHi, 0, yHi, "#6acc65")
	closeSVG(sb)
}

func renderAccuracyChart(sb *strings.Builder, d *Dump) {
	if len(d.Windows) == 0 {
		return
	}
	sb.WriteString("<h2>Effective accuracy</h2>\n")
	xLo, xHi := xDomain(d)
	var xs, acc []float64
	for _, w := range d.Windows {
		if w.Accuracy <= 0 {
			continue // bins that served nothing carry no accuracy signal
		}
		xs = append(xs, w.StartS+d.Meta.BinS/2)
		acc = append(acc, w.Accuracy)
	}
	yLo := 50.0
	for _, a := range acc {
		if a < yLo {
			yLo = a
		}
	}
	openSVG(sb)
	axes(sb, "Mean accuracy of served queries (%)", trimF(yLo), "100", trimF(xLo)+"s", trimF(xHi)+"s")
	polyline(sb, xs, acc, xLo, xHi, yLo, 100, "#b45bcf")
	closeSVG(sb)
}

func renderViolationChart(sb *strings.Builder, d *Dump) {
	if len(d.Windows) == 0 {
		return
	}
	sb.WriteString("<h2>SLO violation ratio and burn episodes</h2>\n")
	xLo, xHi := xDomain(d)
	var xs, vr []float64
	yHi := 0.0
	for _, w := range d.Windows {
		xs = append(xs, w.StartS+d.Meta.BinS/2)
		vr = append(vr, w.ViolationRatio)
		yHi = maxF(yHi, w.ViolationRatio)
	}
	if yHi < 0.05 {
		yHi = 0.05
	}
	openSVG(sb)
	axes(sb, "Violation ratio per bin (shaded: SLO burn episodes)", "0", trimF(yHi), trimF(xLo)+"s", trimF(xHi)+"s")
	// Burn episodes as shaded bands: pair starts with ends per family; an
	// unclosed episode extends to the chart edge.
	open := map[int]float64{}
	for _, b := range d.Burns {
		at := b.At.Seconds()
		if b.Start {
			open[b.Family] = at
			continue
		}
		if t0, ok := open[b.Family]; ok {
			band(sb, t0, at, xLo, xHi, "#e8a33d")
			delete(open, b.Family)
		}
	}
	// Iterate unclosed episodes in burn-log order for determinism.
	for _, b := range d.Burns {
		if t0, ok := open[b.Family]; ok && b.Start {
			band(sb, t0, xHi, xLo, xHi, "#e8a33d")
			delete(open, b.Family)
		}
	}
	polyline(sb, xs, vr, xLo, xHi, 0, yHi, "#d65f5f")
	closeSVG(sb)
}

func renderLatencyChart(sb *strings.Builder, d *Dump) {
	if len(d.Windows) == 0 {
		return
	}
	sb.WriteString("<h2>Latency percentiles per window</h2>\n")
	xLo, xHi := xDomain(d)
	var xs, p50, p95, p99 []float64
	yHi := 0.0
	for _, w := range d.Windows {
		if w.Count == 0 {
			continue
		}
		xs = append(xs, w.StartS+d.Meta.BinS/2)
		p50 = append(p50, w.P50MS)
		p95 = append(p95, w.P95MS)
		p99 = append(p99, w.P99MS)
		yHi = maxF(yHi, w.P99MS)
	}
	if yHi == 0 {
		yHi = 1
	}
	openSVG(sb)
	axes(sb, "Completion latency (ms)", "0", trimF(yHi)+" ms", trimF(xLo)+"s", trimF(xHi)+"s")
	legend(sb, [][2]string{{"p50", "#6acc65"}, {"p95", "#e8a33d"}, {"p99", "#d65f5f"}})
	polyline(sb, xs, p50, xLo, xHi, 0, yHi, "#6acc65")
	polyline(sb, xs, p95, xLo, xHi, 0, yHi, "#e8a33d")
	polyline(sb, xs, p99, xLo, xHi, 0, yHi, "#d65f5f")
	closeSVG(sb)
}

func renderUtilizationHeatmap(sb *strings.Builder, d *Dump) {
	if len(d.Samples) == 0 {
		return
	}
	sb.WriteString("<h2>Device utilization heatmap</h2>\n")
	// Samples are time-major, device-minor; derive the device count and the
	// distinct sample times.
	devices := 0
	var times []time.Duration
	for _, s := range d.Samples {
		if s.Device+1 > devices {
			devices = s.Device + 1
		}
		if len(times) == 0 || s.At != times[len(times)-1] {
			times = append(times, s.At)
		}
	}
	if devices == 0 || len(times) == 0 {
		return
	}
	const labelW = 90
	cellW := float64(chartW-labelW-chartPad) / float64(len(times))
	cellH := 14.0
	height := int(cellH)*devices + 40
	fmt.Fprintf(sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		chartW, height, chartW, height)
	tIndex := make(map[time.Duration]int, len(times))
	for i, t := range times {
		tIndex[t] = i
	}
	for _, s := range d.Samples {
		x := float64(labelW) + float64(tIndex[s.At])*cellW
		y := 20 + float64(s.Device)*cellH
		color := heatColor(s.UtilMilli)
		if !s.Up {
			color = "#404040" // down devices read as black gaps
		}
		fmt.Fprintf(sb, `<rect x="%s" y="%s" width="%s" height="%s" fill="%s"/>`+"\n",
			f2(x), f2(y), f2(cellW), f2(cellH), color)
	}
	for dev := 0; dev < devices; dev++ {
		name := fmt.Sprintf("device %d", dev)
		if dev < len(d.Meta.Devices) {
			name = d.Meta.Devices[dev]
		}
		fmt.Fprintf(sb, `<text x="%d" y="%s" font-size="9" fill="#333" text-anchor="end">%s</text>`+"\n",
			labelW-4, f2(20+float64(dev)*cellH+cellH-4), escape(name))
	}
	fmt.Fprintf(sb, `<text x="%d" y="12" font-size="10" fill="#333">Utilization (white 0%% → red 100%%, dark: down) over %s…%ss</text>`+"\n",
		labelW, trimF(times[0].Seconds()), trimF(times[len(times)-1].Seconds()))
	sb.WriteString("</svg>\n")
}

func renderFamilyTable(sb *strings.Builder, d *Dump) {
	if len(d.Families) == 0 {
		return
	}
	sb.WriteString("<h2>Per-family results</h2>\n<table>\n<tr><th>family</th><th>queries</th><th>served</th><th>late</th><th>dropped</th><th>acc %</th><th>viol ratio</th><th>p50</th><th>p99</th></tr>\n")
	for _, f := range d.Families {
		s := f.Summary
		fmt.Fprintf(sb, "<tr><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%.2f</td><td>%.4f</td><td>%s</td><td>%s</td></tr>\n",
			escape(f.Name), s.Queries, s.Served, s.Late, s.Dropped,
			s.EffectiveAccuracy, s.ViolationRatio,
			s.P50Latency.Round(time.Millisecond), s.P99Latency.Round(time.Millisecond))
	}
	sb.WriteString("</table>\n")
}

// renderPhaseSection tabulates the per-family and per-device latency
// decomposition: where a query's time goes between arrival and completion.
func renderPhaseSection(sb *strings.Builder, d *Dump) {
	famName := func(i int) string {
		if i >= 0 && i < len(d.Families) {
			return d.Families[i].Name
		}
		return fmt.Sprintf("family %d", i)
	}
	devName := func(i int) string {
		if i >= 0 && i < len(d.Meta.Devices) {
			return d.Meta.Devices[i]
		}
		return fmt.Sprintf("device %d", i)
	}
	renderPhaseTable(sb, d.Phases, famName, devName)
}

// renderPhaseTable writes the "Phase decomposition" section shared by run
// reports and incident pages. A no-op when there are no phase stats.
func renderPhaseTable(sb *strings.Builder, phases []tsdb.PhaseStat, famName, devName func(int) string) {
	if len(phases) == 0 {
		return
	}
	sb.WriteString("<h2>Phase decomposition</h2>\n<table>\n<tr><th>scope</th><th>phase</th><th>count</th><th>mean ms</th><th>p50 ms</th><th>p95 ms</th><th>p99 ms</th><th>max ms</th></tr>\n")
	for _, ps := range phases {
		name := devName(ps.Index)
		if ps.Scope == "family" {
			name = famName(ps.Index)
		}
		fmt.Fprintf(sb, "<tr><td>%s</td><td>%s</td><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n",
			escape(name), escape(ps.Phase), ps.Count,
			usMS(ps.MeanUS), usMS(ps.P50US), usMS(ps.P95US), usMS(ps.P99US), usMS(ps.MaxUS))
	}
	sb.WriteString("</table>\n")
}

// usMS formats integer microseconds as compact milliseconds.
func usMS(us int64) string {
	return trimF(float64(us) / 1e3)
}

// renderAttributionSection writes the "SLO attribution" section: per-family
// blame tables and the worst violated queries' latency waterfalls.
func renderAttributionSection(sb *strings.Builder, d *Dump) {
	a := d.Attribution
	if a == nil {
		return
	}
	sb.WriteString("<h2>SLO attribution</h2>\n")
	fmt.Fprintf(sb, `<p class="meta">%d queries attributed, %d violated, %d unfinished</p>`+"\n",
		a.Queries, a.Violated, a.Unfinished)
	if a.Incomplete {
		fmt.Fprintf(sb, `<p class="meta"><b>explanation incomplete: trace truncated</b> (%d events evicted by ring wrap)</p>`+"\n",
			a.TraceDropped)
	}
	if len(a.Families) > 0 {
		sb.WriteString("<table>\n<tr><th>family</th><th>queries</th><th>violated</th><th>late</th><th>dropped</th><th>top blame</th></tr>\n")
		for _, f := range a.Families {
			name := f.Name
			if name == "" {
				name = fmt.Sprintf("family %d", f.Family)
			}
			top := ""
			if len(f.Blames) > 0 {
				top = fmt.Sprintf("%s (%d)", f.Blames[0].Blame, f.Blames[0].Count)
			}
			fmt.Fprintf(sb, "<tr><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%s</td></tr>\n",
				escape(name), f.Queries, f.Violated, f.Late, f.Dropped, escape(top))
		}
		sb.WriteString("</table>\n")
	}
	if len(a.TopViolated) > 0 {
		sb.WriteString("<h2>Worst violated queries</h2>\n<table>\n<tr><th>query</th><th>family</th><th>outcome</th><th>e2e ms</th><th>dominant</th><th>blame</th><th>detail</th></tr>\n")
		for _, q := range a.TopViolated {
			dom := q.Dominant()
			famName := fmt.Sprintf("%d", q.Family)
			if int(q.Family) < len(d.Families) && q.Family >= 0 {
				famName = d.Families[q.Family].Name
			}
			fmt.Fprintf(sb, "<tr><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n",
				q.Query, escape(famName), q.Outcome,
				trimF(float64(q.E2E)/1e6), dom, q.Blame, escape(q.Detail))
		}
		sb.WriteString("</table>\n")
	}
}

func renderBurnTable(sb *strings.Builder, d *Dump) {
	if len(d.Burns) == 0 {
		return
	}
	sb.WriteString("<h2>SLO burn transitions</h2>\n<table>\n<tr><th>at</th><th>family</th><th>event</th><th>short burn</th><th>long burn</th></tr>\n")
	for _, b := range d.Burns {
		kind := "end"
		if b.Start {
			kind = "start"
		}
		name := fmt.Sprintf("%d", b.Family)
		if b.Family >= 0 && b.Family < len(d.Families) {
			name = d.Families[b.Family].Name
		}
		fmt.Fprintf(sb, "<tr><td>%ss</td><td>%s</td><td>%s</td><td>%.2f</td><td>%.2f</td></tr>\n",
			trimF(b.At.Seconds()), escape(name), kind, b.ShortBurn, b.LongBurn)
	}
	sb.WriteString("</table>\n")
}

func renderPlanTable(sb *strings.Builder, d *Dump) {
	if len(d.Plans) == 0 {
		return
	}
	sb.WriteString("<h2>Control decisions</h2>\n<table>\n<tr><th>at</th><th>trigger</th><th>stage</th><th>solver</th><th>pred acc</th><th>scale</th><th>loads</th><th>unloads</th><th>burns</th></tr>\n")
	for _, p := range d.Plans {
		fmt.Fprintf(sb, "<tr><td>%ss</td><td>%s</td><td>%s</td><td>%s</td><td>%.2f</td><td>%.3f</td><td>%d</td><td>%d</td><td>%d</td></tr>\n",
			trimF(p.At.Seconds()), escape(p.Trigger), escape(p.Stage), escape(p.Solver),
			p.PredictedAccuracy, p.DemandScale, p.Loads, p.Unloads, len(p.SLOBurns))
	}
	sb.WriteString("</table>\n")
}
