package report

import (
	"fmt"
	"strings"
	"time"

	"proteus/internal/flightrec"
)

// traceTailLimit caps how many trace events the incident page tabulates so
// a full 4096-event ring does not dominate the report; the bundle JSON
// always retains the complete ring.
const traceTailLimit = 500

// RenderIncident turns an incident bundle into one self-contained HTML
// page: trigger summary, process runtime, counter state, the latency phase
// decomposition, SLO burn transitions, controller decisions, and the trace
// tail leading up to the trigger. Like RenderHTML the output is a pure
// function of its input, so same-seed bundles render byte-identical pages.
func RenderIncident(b *flightrec.Bundle) []byte {
	var sb strings.Builder
	title := "Proteus incident report: " + b.ID
	sb.WriteString("<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n<title>")
	sb.WriteString(escape(title))
	sb.WriteString("</title>\n<style>\n")
	sb.WriteString(`body{font-family:sans-serif;margin:24px;color:#222}
h1{font-size:20px}h2{font-size:15px;margin-top:28px}
table{border-collapse:collapse;font-size:12px;margin-top:8px}
td,th{border:1px solid #ccc;padding:3px 8px;text-align:right}
th{background:#f0f0f0}td:first-child,th:first-child{text-align:left}
.meta{font-size:12px;color:#555}
`)
	sb.WriteString("</style>\n</head>\n<body>\n<h1>")
	sb.WriteString(escape(title))
	sb.WriteString("</h1>\n")

	at := time.Duration(b.AtNS)
	fmt.Fprintf(&sb, "<p class=\"meta\">trigger #%d · reason %s · at %ss", b.Seq, escape(b.Reason), trimF(at.Seconds()))
	if b.Detail != "" {
		fmt.Fprintf(&sb, " · %s", escape(b.Detail))
	}
	if b.Family >= 0 {
		fmt.Fprintf(&sb, " · family %d", b.Family)
	}
	if b.Device >= 0 {
		fmt.Fprintf(&sb, " · device %d", b.Device)
	}
	sb.WriteString("</p>\n")

	renderRuntimeTable(&sb, b)
	renderCounterTable(&sb, b)
	famName := func(i int) string { return fmt.Sprintf("family %d", i) }
	devName := func(i int) string { return fmt.Sprintf("device %d", i) }
	renderPhaseTable(&sb, b.Phases, famName, devName)
	renderIncidentBurns(&sb, b)
	renderIncidentPlans(&sb, b)
	renderTraceTail(&sb, b)

	sb.WriteString("</body>\n</html>\n")
	return []byte(sb.String())
}

func renderRuntimeTable(sb *strings.Builder, b *flightrec.Bundle) {
	if len(b.Runtime) == 0 {
		return
	}
	sb.WriteString("<h2>Process runtime</h2>\n<table>\n<tr><th>at</th><th>heap alloc MB</th><th>heap sys MB</th><th>GC pause ms</th><th>GCs</th><th>goroutines</th></tr>\n")
	for _, rs := range b.Runtime {
		fmt.Fprintf(sb, "<tr><td>%ss</td><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%d</td></tr>\n",
			trimF(time.Duration(rs.AtNS).Seconds()),
			trimF(float64(rs.HeapAllocBytes)/(1<<20)),
			trimF(float64(rs.HeapSysBytes)/(1<<20)),
			trimF(float64(rs.GCPauseTotalNS)/1e6),
			rs.NumGC, rs.Goroutines)
	}
	sb.WriteString("</table>\n")
}

// renderCounterTable shows the newest counter snapshot — the state of every
// counter and gauge at the last recorder tick before the trigger.
func renderCounterTable(sb *strings.Builder, b *flightrec.Bundle) {
	if len(b.Counters) == 0 {
		return
	}
	last := b.Counters[len(b.Counters)-1]
	fmt.Fprintf(sb, "<h2>Counters at %ss (last of %d snapshots)</h2>\n<table>\n<tr><th>metric</th><th>kind</th><th>value</th></tr>\n",
		trimF(time.Duration(last.AtNS).Seconds()), len(b.Counters))
	for _, m := range last.Metrics {
		fmt.Fprintf(sb, "<tr><td>%s</td><td>%s</td><td>%d</td></tr>\n", escape(m.Name), escape(m.Kind), m.Value)
	}
	sb.WriteString("</table>\n")
}

func renderIncidentBurns(sb *strings.Builder, b *flightrec.Bundle) {
	if len(b.Burns) == 0 {
		return
	}
	sb.WriteString("<h2>SLO burn transitions</h2>\n<table>\n<tr><th>at</th><th>family</th><th>edge</th><th>short burn</th><th>long burn</th></tr>\n")
	for _, ev := range b.Burns {
		edge := "end"
		if ev.Start {
			edge = "start"
		}
		fmt.Fprintf(sb, "<tr><td>%ss</td><td>%d</td><td>%s</td><td>%.2f</td><td>%.2f</td></tr>\n",
			trimF(ev.At.Seconds()), ev.Family, edge, ev.ShortBurn, ev.LongBurn)
	}
	sb.WriteString("</table>\n")
}

func renderIncidentPlans(sb *strings.Builder, b *flightrec.Bundle) {
	if len(b.Plans) == 0 {
		return
	}
	sb.WriteString("<h2>Control decisions</h2>\n<table>\n<tr><th>at</th><th>trigger</th><th>stage</th><th>solver</th><th>pred acc</th><th>scale</th><th>loads</th><th>unloads</th></tr>\n")
	for _, p := range b.Plans {
		fmt.Fprintf(sb, "<tr><td>%ss</td><td>%s</td><td>%s</td><td>%s</td><td>%.2f</td><td>%.3f</td><td>%d</td><td>%d</td></tr>\n",
			trimF(p.At.Seconds()), escape(p.Trigger), escape(p.Stage), escape(p.Solver),
			p.PredictedAccuracy, p.DemandScale, p.Loads, p.Unloads)
	}
	sb.WriteString("</table>\n")
}

func renderTraceTail(sb *strings.Builder, b *flightrec.Bundle) {
	evs := b.TraceEvents
	if len(evs) == 0 {
		return
	}
	total := len(evs)
	if len(evs) > traceTailLimit {
		evs = evs[len(evs)-traceTailLimit:]
	}
	fmt.Fprintf(sb, "<h2>Trace tail (%d of %d events)</h2>\n<table>\n<tr><th>at</th><th>seq</th><th>kind</th><th>query</th><th>family</th><th>device</th><th>batch</th></tr>\n",
		len(evs), total)
	for _, ev := range evs {
		fmt.Fprintf(sb, "<tr><td>%ss</td><td>%d</td><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td></tr>\n",
			trimF(float64(ev.AtUS)/1e6), ev.Seq, escape(ev.Kind), ev.Query, ev.Family, ev.Device, ev.Batch)
	}
	sb.WriteString("</table>\n")
}
