package report

import (
	"bytes"
	"encoding/json"
	"regexp"
	"strings"
	"testing"
	"time"

	"proteus/internal/allocator"
	"proteus/internal/cluster"
	"proteus/internal/controlplane"
	"proteus/internal/core"
	"proteus/internal/models"
	"proteus/internal/telemetry"
	"proteus/internal/trace"
	"proteus/internal/tsdb"
)

// burnRun drives a deliberately overloaded small cluster so the SLO monitor
// enters a burn episode, then assembles the run's Dump.
func burnRun(t *testing.T) (*Dump, *telemetry.Tracer, *core.Result) {
	t.Helper()
	var fams []models.Family
	for _, f := range models.Zoo() {
		if f.Name == "efficientnet" || f.Name == "mobilenet" {
			fams = append(fams, f)
		}
	}
	if len(fams) != 2 {
		t.Fatal("families missing from zoo")
	}
	cl := cluster.ScaledTestbed(4)
	rec := tsdb.NewRecorder(tsdb.Config{
		SampleInterval: time.Second,
		SLO: tsdb.SLOConfig{
			Target:      0.01,
			BurnRate:    2,
			ShortWindow: 5 * time.Second,
			LongWindow:  30 * time.Second,
		},
	})
	tracer := telemetry.NewTracer(0) // default capacity: burns must not be evicted by later events
	sys, err := core.NewSystem(core.Config{
		Cluster:  cl,
		Families: fams,
		Allocator: allocator.NewMILP(&allocator.MILPOptions{
			TimeLimit: 200 * time.Millisecond, RelGap: 0.01,
		}),
		Seed:   7,
		TSDB:   rec,
		Tracer: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	per := []float64{300, 300} // ~5x what 4 devices can absorb
	res, err := sys.Run(trace.NewFlat(models.FamilyNames(fams), per, 90))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, d := range cl.Devices() {
		names = append(names, d.Name)
	}
	d := Build(BuildInput{
		Label:       "burn-test",
		Seed:        7,
		Collector:   res.Collector,
		Recorder:    rec,
		Plans:       res.Plans,
		DeviceNames: names,
	})
	return d, tracer, res
}

func TestEndToEndDumpAndHTMLByteIdentical(t *testing.T) {
	d1, _, _ := burnRun(t)
	d2, _, _ := burnRun(t)

	var j1, j2 bytes.Buffer
	if err := d1.WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := d2.WriteJSON(&j2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Errorf("same-seed dump JSON diverged (%d vs %d bytes)", j1.Len(), j2.Len())
	}

	h1 := RenderHTML(d1)
	h2 := RenderHTML(d2)
	if !bytes.Equal(h1, h2) {
		t.Errorf("same-seed HTML reports diverged (%d vs %d bytes)", len(h1), len(h2))
	}

	// Round-trip: a parsed dump renders the same report.
	rd, err := ReadDump(bytes.NewReader(j1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(RenderHTML(rd), h1) {
		t.Error("HTML from round-tripped dump differs from original")
	}
}

// TestBudgetedDumpInsensitiveToSolverTiming is the regression test for the
// solver-stats determinism leak: under a configured solver budget, how far
// the optimality proof gets (nodes, bound, gap, whether the clock fired) is
// a race against wall time, so two same-seed runs can legitimately differ in
// those fields. The dump must serialize byte-identically regardless. We
// simulate the worst-case divergence directly: perturb every timing-tainted
// field of one run's plan records as if the clock had behaved differently,
// and require the built dumps to still match byte for byte.
func TestBudgetedDumpInsensitiveToSolverTiming(t *testing.T) {
	d1, _, res := burnRun(t)

	perturbed := append([]controlplane.PlanRecord(nil), res.Plans...)
	for i := range perturbed {
		if !perturbed[i].Stats.Budgeted {
			t.Fatalf("plan %d: TimeLimit configured but Stats.Budgeted unset", i)
		}
		perturbed[i].SolveTime += time.Duration(i+1) * time.Millisecond
		perturbed[i].Stats.SolverTime += time.Duration(i+1) * time.Millisecond
		perturbed[i].Stats.Nodes += 1000 + i
		perturbed[i].Stats.Bound += 0.125
		perturbed[i].Stats.RelGap = 0.5
		perturbed[i].Stats.TimeLimited = !perturbed[i].Stats.TimeLimited
	}
	d2 := Build(BuildInput{
		Label:       d1.Meta.Label,
		Seed:        d1.Meta.Seed,
		Collector:   res.Collector,
		Plans:       perturbed,
		DeviceNames: d1.Meta.Devices,
	})
	// Compare only the audit section: the two Builds share the collector,
	// so the rest is identical by construction; Plans is where the leak was.
	j1, err := json.Marshal(d1.Plans)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(d2.Plans)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Errorf("budgeted plan records leaked timing-dependent fields:\n%s\nvs\n%s", j1, j2)
	}
}

func TestDumpCapturesBurnsSamplesAndWindows(t *testing.T) {
	d, tracer, res := burnRun(t)

	if len(d.Burns) == 0 {
		t.Fatal("overloaded run produced no SLO burn events")
	}
	if !d.Burns[0].Start {
		t.Error("first burn transition should be a start")
	}
	if d.Burns[0].ShortBurn < d.Meta.SLOBurnRate || d.Burns[0].LongBurn < d.Meta.SLOBurnRate {
		t.Errorf("burn start below threshold: short=%v long=%v", d.Burns[0].ShortBurn, d.Burns[0].LongBurn)
	}
	if len(d.Samples) == 0 {
		t.Fatal("no device samples recorded")
	}
	wantSamples := 90 * 4 // 90 ticks x 4 devices
	if len(d.Samples) != wantSamples {
		t.Errorf("samples = %d, want %d", len(d.Samples), wantSamples)
	}
	busy := false
	for _, s := range d.Samples {
		if s.UtilMilli < 0 || s.UtilMilli > 1000 {
			t.Fatalf("utilization out of range: %+v", s)
		}
		if s.UtilMilli > 500 {
			busy = true
		}
	}
	if !busy {
		t.Error("overloaded run shows no device above 50% utilization")
	}
	if len(d.Windows) == 0 {
		t.Fatal("no windows in dump")
	}
	// Accuracy scaling absorbs much of the overload, but the warmup bins
	// must still show violations (they triggered the burn episode).
	violated := false
	for _, w := range d.Windows {
		if w.ViolationRatio > 0 {
			violated = true
		}
	}
	if !violated {
		t.Error("overloaded run shows no window with violations")
	}

	// The burn transitions must also reach the lifecycle trace...
	var buf bytes.Buffer
	if err := tracer.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"slo_burn_start"`) {
		t.Error("trace export is missing slo_burn_start events")
	}
	// ...and the controller's decision audit.
	audited := 0
	for _, p := range res.Plans {
		audited += len(p.SLOBurns)
	}
	if audited == 0 {
		t.Error("no burn events drained into PlanRecord.SLOBurns")
	}
	if audited != len(d.Burns) {
		t.Errorf("audit has %d burn records, recorder logged %d", audited, len(d.Burns))
	}
}

func TestRenderHTMLPanels(t *testing.T) {
	d, _, _ := burnRun(t)
	html := string(RenderHTML(d))
	for _, want := range []string{
		"<!DOCTYPE html>",
		"Demand vs served throughput",
		"Effective accuracy",
		"SLO violation ratio and burn episodes",
		"Latency percentiles per window",
		"Device utilization heatmap",
		"Per-family results",
		"SLO burn transitions",
		"Control decisions",
		"<svg xmlns",
		"efficientnet",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(html, "<script") {
		t.Error("report must not contain scripts")
	}
	if strings.Contains(html, "NaN") {
		t.Error("report contains NaN")
	}
}

func TestRenderHTMLEmptyDump(t *testing.T) {
	html := string(RenderHTML(&Dump{}))
	if !strings.Contains(html, "<!DOCTYPE html>") || !strings.Contains(html, "Run summary") {
		t.Error("empty dump did not render a minimal report")
	}
}

func benchFixture(ns map[string]float64) *Baseline {
	b := &Baseline{GoOS: "linux", GoArch: "amd64"}
	// Deterministic order: fixtures are tiny, sort by insertion via slice.
	for _, name := range []string{"BenchmarkTracerDisabled", "BenchmarkTracerEnabled", "BenchmarkCounterAdd"} {
		if v, ok := ns[name]; ok {
			b.Results = append(b.Results, BenchResult{Name: name, Iterations: 1000, NsPerOp: v})
		}
	}
	return b
}

func TestCompareFlagsInjectedRegression(t *testing.T) {
	old := benchFixture(map[string]float64{"BenchmarkTracerDisabled": 0.9, "BenchmarkTracerEnabled": 50})
	// Injected 2x regression on the disabled path.
	new := benchFixture(map[string]float64{"BenchmarkTracerDisabled": 1.8, "BenchmarkTracerEnabled": 51})
	c, err := Compare(old, new, 0.25, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regressions != 1 {
		t.Fatalf("regressions = %d, want 1: %+v", c.Regressions, c.Deltas)
	}
	if !c.Deltas[0].Regressed || c.Deltas[0].Name != "BenchmarkTracerDisabled" {
		t.Fatalf("wrong benchmark flagged: %+v", c.Deltas)
	}
	var out bytes.Buffer
	c.Format(&out, 0.25)
	if !strings.Contains(out.String(), "REGRESSED") || !strings.Contains(out.String(), "FAIL") {
		t.Errorf("format missing verdict:\n%s", out.String())
	}
}

func TestCompareSelfIsClean(t *testing.T) {
	b := benchFixture(map[string]float64{"BenchmarkTracerDisabled": 0.9, "BenchmarkTracerEnabled": 50})
	c, err := Compare(b, b, 0.25, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regressions != 0 || len(c.Deltas) != 2 {
		t.Fatalf("self-compare not clean: %+v", c)
	}
}

func TestCompareRefusesCrossPlatform(t *testing.T) {
	old := benchFixture(map[string]float64{"BenchmarkTracerEnabled": 50})
	new := benchFixture(map[string]float64{"BenchmarkTracerEnabled": 50})
	new.GoArch = "arm64"
	if _, err := Compare(old, new, 0.25, nil, false); err == nil {
		t.Fatal("cross-arch compare accepted without force")
	}
	if _, err := Compare(old, new, 0.25, nil, true); err != nil {
		t.Fatalf("forced cross-arch compare refused: %v", err)
	}
}

func TestCompareFilterAndMissing(t *testing.T) {
	old := benchFixture(map[string]float64{"BenchmarkTracerDisabled": 0.9, "BenchmarkCounterAdd": 10})
	new := benchFixture(map[string]float64{"BenchmarkTracerDisabled": 5.0, "BenchmarkTracerEnabled": 50})
	// Filter excludes the regressed Disabled benchmark entirely.
	c, err := Compare(old, new, 0.25, regexp.MustCompile("Enabled|Counter"), false)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regressions != 0 {
		t.Fatalf("filtered compare flagged regressions: %+v", c.Deltas)
	}
	if len(c.OnlyOld) != 1 || c.OnlyOld[0] != "BenchmarkCounterAdd" {
		t.Errorf("OnlyOld = %v", c.OnlyOld)
	}
	if len(c.OnlyNew) != 1 || c.OnlyNew[0] != "BenchmarkTracerEnabled" {
		t.Errorf("OnlyNew = %v", c.OnlyNew)
	}
}

func TestReadBaselineRejectsGarbage(t *testing.T) {
	if _, err := ReadBaseline(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}
