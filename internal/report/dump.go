// Package report assembles a run's observability outputs — the metrics
// collector's windowed series, the tsdb device time-series and SLO burn
// log, and the controller's decision audit — into one serializable Dump,
// renders it as a self-contained HTML report (inline SVG, no scripts), and
// diffs proteus-benchjson baselines for regressions. Everything is
// byte-deterministic: same-seed runs produce identical JSON and HTML.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"proteus/internal/attrib"
	"proteus/internal/controlplane"
	"proteus/internal/metrics"
	"proteus/internal/telemetry"
	"proteus/internal/tsdb"
)

// Meta identifies the run a dump came from.
type Meta struct {
	Label string `json:"label,omitempty"`
	Seed  uint64 `json:"seed"`
	// BinS is the metrics collector's window width in seconds; SampleS the
	// tsdb device-sampling cadence (0 when no recorder ran).
	BinS    float64  `json:"bin_s"`
	SampleS float64  `json:"sample_s,omitempty"`
	Devices []string `json:"devices,omitempty"`
	// SLO echoes the resolved burn-monitor parameters.
	SLOTarget   float64 `json:"slo_target,omitempty"`
	SLOBurnRate float64 `json:"slo_burn_rate,omitempty"`
	SLOShortS   float64 `json:"slo_short_s,omitempty"`
	SLOLongS    float64 `json:"slo_long_s,omitempty"`
}

// WindowPoint is one collector bin: demand/served rates, accuracy,
// violations and latency quantiles.
type WindowPoint struct {
	StartS         float64 `json:"start_s"`
	DemandQPS      float64 `json:"demand_qps"`
	ServedQPS      float64 `json:"served_qps"`
	Accuracy       float64 `json:"accuracy"`
	Violations     int     `json:"violations"`
	ViolationRatio float64 `json:"violation_ratio"`
	Count          uint64  `json:"completions"`
	P50MS          float64 `json:"p50_ms"`
	P95MS          float64 `json:"p95_ms"`
	P99MS          float64 `json:"p99_ms"`
	P999MS         float64 `json:"p999_ms"`
}

// FamilySummary is one family's whole-run aggregate.
type FamilySummary struct {
	Name    string          `json:"name"`
	Summary metrics.Summary `json:"summary"`
}

// Dump is the full serializable state of one run.
type Dump struct {
	Meta     Meta             `json:"meta"`
	Summary  metrics.Summary  `json:"summary"`
	Families []FamilySummary  `json:"families,omitempty"`
	Windows  []WindowPoint    `json:"windows,omitempty"`
	Samples  []tsdb.Sample    `json:"samples,omitempty"`
	Burns    []tsdb.BurnEvent `json:"burns,omitempty"`
	// Phases is the per-family / per-device latency decomposition summary
	// (empty when no tsdb recorder ran or no query completed).
	Phases []tsdb.PhaseStat          `json:"phases,omitempty"`
	Plans  []controlplane.PlanRecord `json:"plans,omitempty"`
	// Attribution is the SLO-violation attribution section (nil when the
	// run had no lifecycle tracer).
	Attribution *Attribution `json:"attribution,omitempty"`
}

// Attribution is the latency-attribution section of a dump: aggregate blame
// tables plus the worst violated queries' waterfalls (the full per-query
// report stays in the trace — re-derive it with proteus-explain).
type Attribution struct {
	Queries  int `json:"queries"`
	Violated int `json:"violated"`
	// Unfinished counts queries still in flight when the trace ended.
	Unfinished int `json:"unfinished,omitempty"`
	// TraceDropped / Incomplete mirror the tracer's ring-wrap evictions:
	// when set, the explanation is incomplete — the trace was truncated.
	TraceDropped uint64                 `json:"trace_dropped,omitempty"`
	Incomplete   bool                   `json:"incomplete,omitempty"`
	TopViolated  []attrib.Explanation   `json:"top_violated,omitempty"`
	Families     []attrib.FamilySummary `json:"families,omitempty"`
	Windows      []attrib.WindowSummary `json:"windows,omitempty"`
}

// BuildAttribution trims an attribution report into the dump section,
// keeping the k worst violated queries (k <= 0 means 10).
func BuildAttribution(rep *attrib.Report, k int) *Attribution {
	if k <= 0 {
		k = 10
	}
	a := &Attribution{
		Queries:      len(rep.Queries),
		Violated:     len(rep.Violated),
		Unfinished:   rep.Unfinished,
		TraceDropped: rep.TraceDropped,
		Incomplete:   rep.Incomplete,
		Families:     rep.Families,
		Windows:      rep.Windows,
	}
	for i := 0; i < len(rep.Violated) && i < k; i++ {
		a.TopViolated = append(a.TopViolated, rep.Queries[rep.Violated[i]])
	}
	return a
}

// BuildInput names the sources a Dump is assembled from. Collector is
// required; Recorder, Plans and DeviceNames are optional.
type BuildInput struct {
	Label       string
	Seed        uint64
	Collector   *metrics.Collector
	Recorder    *tsdb.Recorder
	Plans       []controlplane.PlanRecord
	DeviceNames []string
	// Events, when non-empty, runs the latency attribution pass and fills
	// Dump.Attribution. TraceDropped is the tracer's ring-wrap eviction
	// count; AttribTopK bounds the embedded worst-violated list (default 10).
	Events       []telemetry.Event
	TraceDropped uint64
	AttribTopK   int
}

// Build assembles a Dump. NaN series values (accuracy of an empty bin) are
// sanitized to 0 so the dump always marshals.
func Build(in BuildInput) *Dump {
	c := in.Collector
	d := &Dump{
		Meta: Meta{
			Label:   in.Label,
			Seed:    in.Seed,
			BinS:    c.Interval().Seconds(),
			Devices: in.DeviceNames,
		},
		Summary: c.Summarize(-1),
		Plans:   append([]controlplane.PlanRecord(nil), in.Plans...),
	}
	// Plan records carry wall-clock measurements and (under a solver
	// budget) timing-dependent proof progress; sanitize the copy so
	// same-seed dumps stay byte-identical.
	controlplane.SanitizePlans(d.Plans)
	for f, name := range c.Families() {
		d.Families = append(d.Families, FamilySummary{Name: name, Summary: c.Summarize(f)})
	}
	series := c.Series(-1)
	lats := c.WindowPercentiles(-1)
	binS := c.Interval().Seconds()
	for i, p := range series {
		w := WindowPoint{
			StartS:     p.Start.Seconds(),
			DemandQPS:  p.DemandQPS,
			ServedQPS:  p.ThroughputQPS,
			Accuracy:   sanitize(p.EffectiveAccuracy),
			Violations: p.Violations,
		}
		if arrived := p.DemandQPS * binS; arrived > 0 {
			w.ViolationRatio = float64(p.Violations) / arrived
		}
		if i < len(lats) {
			w.Count = lats[i].Count
			w.P50MS = ms(lats[i].P50)
			w.P95MS = ms(lats[i].P95)
			w.P99MS = ms(lats[i].P99)
			w.P999MS = ms(lats[i].P999)
		}
		d.Windows = append(d.Windows, w)
	}
	if in.Recorder != nil {
		d.Meta.SampleS = in.Recorder.SampleInterval().Seconds()
		slo := in.Recorder.SLO()
		d.Meta.SLOTarget = slo.Target
		d.Meta.SLOBurnRate = slo.BurnRate
		d.Meta.SLOShortS = slo.ShortWindow.Seconds()
		d.Meta.SLOLongS = slo.LongWindow.Seconds()
		d.Samples = in.Recorder.Samples()
		d.Burns = in.Recorder.Burns()
		d.Phases = in.Recorder.PhaseStats()
	}
	if len(in.Events) > 0 {
		rep := attrib.Analyze(attrib.Input{
			Events:       in.Events,
			Plans:        in.Plans,
			FamilyNames:  c.Families(),
			TraceDropped: in.TraceDropped,
		})
		d.Attribution = BuildAttribution(rep, in.AttribTopK)
	}
	return d
}

func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

func ms(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// WriteJSON serializes the dump with a stable layout: encoding/json visits
// struct fields in declaration order, so same-seed dumps are byte-identical.
func (d *Dump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteFile writes the dump JSON to path.
func (d *Dump) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadDump parses a dump written by WriteJSON.
func ReadDump(r io.Reader) (*Dump, error) {
	var d Dump
	dec := json.NewDecoder(r)
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("report: parsing dump: %w", err)
	}
	return &d, nil
}

// ReadDumpFile parses a dump file.
func ReadDumpFile(path string) (*Dump, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDump(f)
}
