package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strings"
)

// Baseline mirrors the JSON emitted by proteus-benchjson: one converted
// `go test -bench` run with environment metadata.
type Baseline struct {
	GoOS       string        `json:"goos,omitempty"`
	GoArch     string        `json:"goarch,omitempty"`
	GoVersion  string        `json:"go_version,omitempty"`
	GoMaxProcs int           `json:"gomaxprocs,omitempty"`
	Commit     string        `json:"commit,omitempty"`
	Package    string        `json:"pkg,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	Results    []BenchResult `json:"results"`
	Failed     bool          `json:"failed,omitempty"`
}

// BenchResult is one benchmark entry of a baseline.
type BenchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// ReadBaseline parses a proteus-benchjson output.
func ReadBaseline(r io.Reader) (*Baseline, error) {
	var b Baseline
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("report: parsing baseline: %w", err)
	}
	return &b, nil
}

// ReadBaselineFile parses a baseline file.
func ReadBaselineFile(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBaseline(f)
}

// Delta is one benchmark's old-vs-new comparison.
type Delta struct {
	Name  string
	OldNs float64
	NewNs float64
	// Ratio is new/old ns_per_op; 0 when the old value was 0 (comparison
	// meaningless, never flagged).
	Ratio float64
	// Regressed is set when Ratio exceeds 1+threshold.
	Regressed bool
}

// Comparison is the outcome of diffing two baselines.
type Comparison struct {
	Deltas []Delta
	// OnlyOld / OnlyNew list benchmarks present in exactly one side (after
	// filtering) — renames or removals, reported but never failed on.
	OnlyOld []string
	OnlyNew []string
	// Regressions counts deltas whose Regressed flag is set.
	Regressions int
}

// Compare diffs two benchjson baselines, flagging benchmarks whose ns/op
// grew by more than threshold (0.25 = +25%). filter, when non-nil,
// restricts the comparison to matching benchmark names. Environments that
// differ in goos/goarch produce an error unless force is set; differing
// go versions or GOMAXPROCS are tolerated (they are advisory metadata) but
// surface in the mismatch note.
func Compare(old, new *Baseline, threshold float64, filter *regexp.Regexp, force bool) (*Comparison, error) {
	if err := checkComparable(old, new, force); err != nil {
		return nil, err
	}
	match := func(name string) bool { return filter == nil || filter.MatchString(name) }
	oldByName := map[string]BenchResult{}
	for _, r := range old.Results {
		if match(r.Name) {
			oldByName[r.Name] = r
		}
	}
	c := &Comparison{}
	seen := map[string]bool{}
	for _, r := range new.Results {
		if !match(r.Name) {
			continue
		}
		o, ok := oldByName[r.Name]
		if !ok {
			c.OnlyNew = append(c.OnlyNew, r.Name)
			continue
		}
		seen[r.Name] = true
		d := Delta{Name: r.Name, OldNs: o.NsPerOp, NewNs: r.NsPerOp}
		if o.NsPerOp > 0 {
			d.Ratio = r.NsPerOp / o.NsPerOp
			d.Regressed = d.Ratio > 1+threshold
		}
		if d.Regressed {
			c.Regressions++
		}
		c.Deltas = append(c.Deltas, d)
	}
	for _, r := range old.Results {
		if match(r.Name) && !seen[r.Name] {
			c.OnlyOld = append(c.OnlyOld, r.Name)
		}
	}
	return c, nil
}

// checkComparable refuses apples-to-oranges diffs: goos/goarch must match
// unless forced.
func checkComparable(old, new *Baseline, force bool) error {
	var mismatches []string
	if old.GoOS != "" && new.GoOS != "" && old.GoOS != new.GoOS {
		mismatches = append(mismatches, fmt.Sprintf("goos %s vs %s", old.GoOS, new.GoOS))
	}
	if old.GoArch != "" && new.GoArch != "" && old.GoArch != new.GoArch {
		mismatches = append(mismatches, fmt.Sprintf("goarch %s vs %s", old.GoArch, new.GoArch))
	}
	if len(mismatches) > 0 && !force {
		return fmt.Errorf("report: baselines not comparable (%s); pass force to override",
			strings.Join(mismatches, ", "))
	}
	return nil
}

// Format renders the comparison as an aligned text table ending with a
// verdict line.
func (c *Comparison) Format(w io.Writer, threshold float64) {
	for _, d := range c.Deltas {
		verdict := "ok"
		if d.Regressed {
			verdict = "REGRESSED"
		} else if d.Ratio == 0 {
			verdict = "n/a"
		}
		fmt.Fprintf(w, "%-40s %12.2f %12.2f %+7.1f%%  %s\n",
			d.Name, d.OldNs, d.NewNs, (d.Ratio-1)*100, verdict)
	}
	for _, n := range c.OnlyOld {
		fmt.Fprintf(w, "%-40s only in old baseline\n", n)
	}
	for _, n := range c.OnlyNew {
		fmt.Fprintf(w, "%-40s only in new baseline\n", n)
	}
	if c.Regressions > 0 {
		fmt.Fprintf(w, "FAIL: %d benchmark(s) regressed beyond +%.0f%%\n",
			c.Regressions, threshold*100)
	} else {
		fmt.Fprintf(w, "ok: %d benchmark(s) within +%.0f%%\n",
			len(c.Deltas), threshold*100)
	}
}
