package router

import (
	"math"
	"testing"
	"time"

	"proteus/internal/allocator"
	"proteus/internal/numeric"
)

func alloc2x3() *allocator.Allocation {
	// 2 families, 3 devices.
	return &allocator.Allocation{
		Hosted: make([]*allocator.VariantRef, 3),
		Routing: [][]float64{
			{0.6, 0.4, 0},
			{0, 0, 0.5}, // sheds half of family 1's load
		},
	}
}

func TestBuildTableNormalizes(t *testing.T) {
	tab := BuildTable(alloc2x3(), 2)
	if got := tab.Devices(0); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("family 0 devices %v", got)
	}
	// Family 1 routes everything to device 2 despite the 0.5 row sum.
	if got := tab.Devices(1); len(got) != 1 || got[0] != 2 {
		t.Fatalf("family 1 devices %v", got)
	}
	if tab.Entries() != 3 {
		t.Fatalf("entries %d", tab.Entries())
	}
}

func TestPickDistribution(t *testing.T) {
	tab := BuildTable(alloc2x3(), 2)
	rng := numeric.NewRNG(5)
	counts := map[int]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[tab.Pick(0, rng)]++
	}
	if got := float64(counts[0]) / n; math.Abs(got-0.6) > 0.01 {
		t.Fatalf("device 0 share %v, want ~0.6", got)
	}
	if counts[2] != 0 {
		t.Fatal("family 0 routed to device 2")
	}
	// Family 1's plan row sums to 0.5: admission control sheds ~half and
	// routes the admitted half to device 2.
	shed, routed := 0, 0
	for i := 0; i < 100000; i++ {
		switch d := tab.Pick(1, rng); d {
		case -1:
			shed++
		case 2:
			routed++
		default:
			t.Fatalf("family 1 routed to %d", d)
		}
	}
	if frac := float64(routed) / 100000; math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("admitted fraction %v, want ~0.5", frac)
	}
}

func TestAdmissionOverride(t *testing.T) {
	tab := BuildTable(alloc2x3(), 2)
	if tab.Admission(1) != 0.5 {
		t.Fatalf("admission %v, want 0.5", tab.Admission(1))
	}
	tab.SetAdmission([]float64{1, 2}) // 2 clamps to 1
	if tab.Admission(0) != 1 || tab.Admission(1) != 1 {
		t.Fatalf("override failed: %v %v", tab.Admission(0), tab.Admission(1))
	}
	rng := numeric.NewRNG(9)
	for i := 0; i < 100; i++ {
		if d := tab.Pick(1, rng); d != 2 {
			t.Fatalf("family 1 with admission 1 routed to %d", d)
		}
	}
	if tab.Admission(5) != 0 {
		t.Fatal("out-of-range admission must be 0")
	}
}

func TestPickExcludingRenormalizes(t *testing.T) {
	tab := BuildTable(alloc2x3(), 2)
	rng := numeric.NewRNG(11)
	// Banning device 0 sends all of family 0's traffic to device 1.
	for i := 0; i < 1000; i++ {
		if d := tab.PickExcluding(0, rng, func(d int) bool { return d == 0 }); d != 1 {
			t.Fatalf("pick with device 0 banned = %d, want 1", d)
		}
	}
	// Nil predicate matches Pick's distribution.
	counts := map[int]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[tab.PickExcluding(0, rng, nil)]++
	}
	if got := float64(counts[0]) / n; math.Abs(got-0.6) > 0.01 {
		t.Fatalf("device 0 share %v, want ~0.6", got)
	}
}

func TestPickExcludingAllBannedFallsBack(t *testing.T) {
	tab := BuildTable(alloc2x3(), 2)
	rng := numeric.NewRNG(13)
	// Every candidate banned: fall back to the full plan weights so the
	// deadline admission controller stays the backstop.
	counts := map[int]int{}
	for i := 0; i < 1000; i++ {
		counts[tab.PickExcluding(0, rng, func(int) bool { return true })]++
	}
	if counts[-1] != 0 || counts[0]+counts[1] != 1000 {
		t.Fatalf("all-banned fallback counts = %v", counts)
	}
}

func TestPickExcludingAdmission(t *testing.T) {
	tab := BuildTable(alloc2x3(), 2)
	rng := numeric.NewRNG(17)
	// Family 1's 0.5 admission fraction applies before the exclusion logic
	// and consumes exactly one rng draw, matching Pick.
	shed := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if tab.PickExcluding(1, rng, func(int) bool { return false }) == -1 {
			shed++
		}
	}
	if frac := float64(shed) / n; math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("shed fraction %v, want ~0.5", frac)
	}
}

func TestPickNoRoute(t *testing.T) {
	a := alloc2x3()
	a.Routing[0] = []float64{0, 0, 0}
	tab := BuildTable(a, 2)
	rng := numeric.NewRNG(1)
	if d := tab.Pick(0, rng); d != -1 {
		t.Fatalf("expected -1, got %d", d)
	}
	if d := tab.Pick(9, rng); d != -1 {
		t.Fatalf("out-of-range family must return -1, got %d", d)
	}
}

func TestMonitorRate(t *testing.T) {
	m := NewMonitor(10, 1.5)
	// 5 arrivals per second for 10 seconds.
	for s := 0; s < 10; s++ {
		for i := 0; i < 5; i++ {
			m.Observe(time.Duration(s)*time.Second + time.Duration(i)*time.Millisecond)
		}
	}
	got := m.Rate(10 * time.Second)
	if math.Abs(got-5) > 1e-9 {
		t.Fatalf("rate %v, want 5", got)
	}
}

func TestMonitorRatePartialWindow(t *testing.T) {
	m := NewMonitor(30, 1.5)
	for i := 0; i < 20; i++ {
		m.Observe(time.Duration(i) * 100 * time.Millisecond) // 20 arrivals in [0,2s)
	}
	// At t=2s only 2 seconds have elapsed; rate must be 10, not 20/30.
	if got := m.Rate(2 * time.Second); math.Abs(got-10) > 1e-9 {
		t.Fatalf("rate %v, want 10", got)
	}
}

func TestMonitorExcludesCurrentSecond(t *testing.T) {
	m := NewMonitor(10, 1.5)
	m.Observe(500 * time.Millisecond)
	if got := m.Rate(900 * time.Millisecond); got != 0 {
		t.Fatalf("rate %v includes the partial current second", got)
	}
	if got := m.Rate(1100 * time.Millisecond); math.Abs(got-1) > 1e-9 {
		t.Fatalf("rate %v after the second closed", got)
	}
}

func TestMonitorBucketRecycling(t *testing.T) {
	m := NewMonitor(3, 1.5)
	m.Observe(0)
	// Much later, the old bucket must not leak into the estimate.
	m.Observe(100 * time.Second)
	if got := m.Rate(101 * time.Second); math.Abs(got-1.0/3.0) > 1e-9 {
		t.Fatalf("rate %v, want 1/3", got)
	}
}

func TestMonitorBurst(t *testing.T) {
	m := NewMonitor(30, 1.5)
	m.SetPlanned(10)
	if m.Planned() != 10 {
		t.Fatal("planned not stored")
	}
	for i := 0; i < 12; i++ {
		m.Observe(time.Duration(i) * 80 * time.Millisecond) // 12 in second 0
	}
	if m.Burst(time.Second + time.Millisecond) {
		t.Fatal("12 QPS vs planned 10 must not trip a 1.5x burst detector")
	}
	for i := 0; i < 20; i++ {
		m.Observe(time.Second + time.Duration(i)*40*time.Millisecond) // 20 in second 1
	}
	if !m.Burst(2*time.Second + time.Millisecond) {
		t.Fatal("20 QPS vs planned 10 must trip the burst detector")
	}
}

func TestMonitorBurstWithoutPlan(t *testing.T) {
	m := NewMonitor(10, 1.5)
	for i := 0; i < 100; i++ {
		m.Observe(time.Duration(i) * time.Millisecond)
	}
	if m.Burst(2 * time.Second) {
		t.Fatal("burst without a plan baseline")
	}
}

func TestMonitorDefaults(t *testing.T) {
	m := NewMonitor(0, 0)
	if m.WindowSeconds != 1 || m.BurstFactor != 1.5 {
		t.Fatalf("defaults: %d %v", m.WindowSeconds, m.BurstFactor)
	}
}
