// Package router implements the data-path half of a Proteus load balancer
// (§3): a request router that dispatches each query to a worker according
// to the controller's query-assignment policy {y_{d,q}}, and a monitoring
// daemon that tracks per-family demand and detects bursts that warrant an
// early re-allocation.
package router

import (
	"math"
	"time"

	"proteus/internal/allocator"
	"proteus/internal/numeric"
	"proteus/internal/telemetry"
)

// Table is a routing table: normalized per-family device weights plus an
// admission fraction. The lookup path is O(number of devices serving the
// family); its space is O(D×Q) as §6.8 notes.
type Table struct {
	// devices[q] lists device IDs with positive weight for family q.
	devices [][]int
	// weights[q][i] is the normalized probability of devices[q][i].
	weights [][]float64
	// admit[q] is the fraction of family q's queries admitted; the rest are
	// shed at the load balancer. When the allocation provisions the full
	// demand this is 1; under overload it equals the plan's per-family
	// serving fraction, so workers see exactly the load the resource
	// manager sized them for instead of drowning in doomed queries.
	admit []float64

	// counters instrument the pick path; the zero value is inert.
	counters telemetry.RouterCounters
}

// SetCounters attaches telemetry counters to the pick path. Tables are
// rebuilt on every plan change, so the owner re-attaches after each
// BuildTable.
func (t *Table) SetCounters(c telemetry.RouterCounters) { t.counters = c }

// BuildTable derives a routing table from an allocation. Weights are
// normalized per family; the admission fraction defaults to the plan row's
// sum (capped at 1).
func BuildTable(alloc *allocator.Allocation, families int) *Table {
	t := &Table{
		devices: make([][]int, families),
		weights: make([][]float64, families),
		admit:   make([]float64, families),
	}
	for q := 0; q < families; q++ {
		row := alloc.Routing[q]
		sum := 0.0
		for _, y := range row {
			if y > 0 {
				sum += y
			}
		}
		if sum <= 0 {
			continue
		}
		t.admit[q] = sum
		if t.admit[q] > 1 {
			t.admit[q] = 1
		}
		for d, y := range row {
			if y > 0 {
				t.devices[q] = append(t.devices[q], d)
				t.weights[q] = append(t.weights[q], y/sum)
			}
		}
	}
	return t
}

// SetAdmission overrides the per-family admission fractions (used when the
// table is rebuilt over a subset of available devices but admission should
// still follow the full plan).
func (t *Table) SetAdmission(admit []float64) {
	for q := range t.admit {
		if q < len(admit) {
			a := admit[q]
			if a > 1 {
				a = 1
			}
			if a < 0 {
				a = 0
			}
			t.admit[q] = a
		}
	}
}

// Admission returns the admission fraction for family q.
func (t *Table) Admission(q int) float64 {
	if q < 0 || q >= len(t.admit) {
		return 0
	}
	return t.admit[q]
}

// Pick selects a device for a query of family q, or -1 when the family has
// no serving devices or the query is shed by admission control.
func (t *Table) Pick(q int, rng *numeric.RNG) int {
	if q < 0 || q >= len(t.devices) || len(t.devices[q]) == 0 {
		t.counters.Shed.Inc()
		return -1
	}
	if t.admit[q] < 1 && rng.Float64() >= t.admit[q] {
		t.counters.Shed.Inc()
		return -1
	}
	i := numeric.WeightedChoice(rng, t.weights[q])
	if i < 0 {
		t.counters.Shed.Inc()
		return -1
	}
	t.counters.Picks.Inc()
	return t.devices[q][i]
}

// PickExcluding selects a device for a query of family q like Pick, but
// renormalizes the plan's weights over the devices NOT excluded by the
// banned predicate — the overload guard's hook for backpressure (pressured
// mailboxes leave the candidate set) and emergency degradation (masked
// variant tiers leave it). When every candidate is banned the pick falls
// back to the full plan weights: sending the query somewhere keeps the
// deadline admission controller as the backstop instead of silently
// dropping whole families. Admission-fraction shed consumes exactly one
// rng draw, same as Pick, so enabling the guard does not perturb the
// shed sequence. A nil banned predicate makes this identical to Pick.
func (t *Table) PickExcluding(q int, rng *numeric.RNG, banned func(device int) bool) int {
	if q < 0 || q >= len(t.devices) || len(t.devices[q]) == 0 {
		t.counters.Shed.Inc()
		return -1
	}
	if t.admit[q] < 1 && rng.Float64() >= t.admit[q] {
		t.counters.Shed.Inc()
		return -1
	}
	weights := t.weights[q]
	if banned != nil {
		total := 0.0
		for i, d := range t.devices[q] {
			if !banned(d) {
				total += weights[i]
			}
		}
		if total > 0 {
			// Weighted pick over the allowed subset without allocating: walk
			// the cumulative allowed mass against one scaled rng draw.
			target := rng.Float64() * total
			last := -1
			for i, d := range t.devices[q] {
				if banned(d) {
					continue
				}
				last = i
				target -= weights[i]
				if target < 0 {
					break
				}
			}
			if last >= 0 {
				t.counters.Picks.Inc()
				return t.devices[q][last]
			}
		}
		// All candidates banned (or zero allowed mass): fall through to the
		// full plan weights.
	}
	i := numeric.WeightedChoice(rng, weights)
	if i < 0 {
		t.counters.Shed.Inc()
		return -1
	}
	t.counters.Picks.Inc()
	return t.devices[q][i]
}

// Devices returns the devices serving family q.
func (t *Table) Devices(q int) []int {
	if q < 0 || q >= len(t.devices) {
		return nil
	}
	return t.devices[q]
}

// Entries returns the total number of (family, device) routing entries.
func (t *Table) Entries() int {
	n := 0
	for _, d := range t.devices {
		n += len(d)
	}
	return n
}

// Monitor is a load balancer's monitoring daemon for one family (§3): it
// counts arrivals in one-second buckets, estimates demand over a sliding
// window, and flags bursts where the instantaneous rate exceeds the planned
// serving capacity by a configurable factor.
type Monitor struct {
	// WindowSeconds is the demand-estimation window (default 30, the
	// control period).
	WindowSeconds int
	// BurstFactor is the burst threshold multiplier over planned capacity
	// (default 1.5).
	BurstFactor float64

	buckets []int
	// bucketAt[i] is the absolute second index stored in buckets[i].
	bucketAt []int64
	planned  float64
}

// NewMonitor returns a monitor with the given window.
func NewMonitor(windowSeconds int, burstFactor float64) *Monitor {
	if windowSeconds < 1 {
		windowSeconds = 1
	}
	if burstFactor <= 0 {
		burstFactor = 1.5
	}
	return &Monitor{
		WindowSeconds: windowSeconds,
		BurstFactor:   burstFactor,
		buckets:       make([]int, windowSeconds+1),
		bucketAt:      make([]int64, windowSeconds+1),
	}
}

// SetPlanned records the serving capacity of the current allocation for
// this family, used by burst detection.
func (m *Monitor) SetPlanned(qps float64) { m.planned = qps }

// Planned returns the last planned capacity.
func (m *Monitor) Planned() float64 { return m.planned }

// Observe records one arrival at time t.
func (m *Monitor) Observe(t time.Duration) {
	sec := int64(t / time.Second)
	i := sec % int64(len(m.buckets))
	if m.bucketAt[i] != sec {
		m.bucketAt[i] = sec
		m.buckets[i] = 0
	}
	m.buckets[i]++
}

// Rate estimates the demand in QPS over the window ending at t, excluding
// the (partial) current second.
func (m *Monitor) Rate(t time.Duration) float64 {
	cur := int64(t / time.Second)
	total := 0
	for s := cur - int64(m.WindowSeconds); s < cur; s++ {
		if s < 0 {
			continue
		}
		i := s % int64(len(m.buckets))
		if m.bucketAt[i] == s {
			total += m.buckets[i]
		}
	}
	secs := m.WindowSeconds
	if int64(secs) > cur {
		secs = int(cur)
	}
	if secs <= 0 {
		return 0
	}
	return float64(total) / float64(secs)
}

// InstantRate returns the arrival rate of the last completed second.
func (m *Monitor) InstantRate(t time.Duration) float64 {
	sec := int64(t/time.Second) - 1
	if sec < 0 {
		return 0
	}
	i := sec % int64(len(m.buckets))
	if m.bucketAt[i] != sec {
		return 0
	}
	return float64(m.buckets[i])
}

// Burst reports whether the last completed second's demand exceeded the
// planned capacity by the burst factor — the §3 trigger for calling the
// controller outside its regular period. A 3σ Poisson-noise floor keeps
// one-second count fluctuations of low-rate families from masquerading as
// bursts.
func (m *Monitor) Burst(t time.Duration) bool {
	if m.planned <= 0 {
		return false
	}
	threshold := m.BurstFactor * m.planned
	if noise := 3 * math.Sqrt(m.planned); threshold < m.planned+noise {
		threshold = m.planned + noise
	}
	return m.InstantRate(t) > threshold
}
