package numeric

import "math"

// Exp returns an exponential sample with the given rate (mean 1/rate).
// It panics if rate <= 0.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("numeric: Exp with non-positive rate")
	}
	u := r.Float64()
	// Guard against log(0); Float64 is in [0,1).
	return -math.Log(1-u) / rate
}

// Poisson returns a Poisson sample with the given mean. For small means it
// uses Knuth's multiplication method; for large means a normal approximation
// with continuity correction, which is more than accurate enough for
// workload synthesis.
func (r *RNG) Poisson(mean float64) int {
	switch {
	case mean <= 0:
		return 0
	case mean < 30:
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	default:
		v := mean + math.Sqrt(mean)*r.NormFloat64() + 0.5
		if v < 0 {
			return 0
		}
		return int(v)
	}
}

// Gamma returns a Gamma(shape, scale) sample using the Marsaglia–Tsang
// method, with the standard boosting trick for shape < 1. The mean of the
// distribution is shape*scale. Gamma with small shape produces the highly
// bursty inter-arrival processes used in the paper's §6.4 (shape 0.05).
func (r *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("numeric: Gamma with non-positive parameter")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Zipf draws ranks in [0, n) following a Zipf distribution with exponent
// alpha. Probabilities are precomputed so sampling is O(log n).
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf distribution over n ranks with exponent alpha > 0.
// The paper uses alpha = 1.001 to split queries across model families.
func NewZipf(n int, alpha float64) *Zipf {
	if n <= 0 {
		panic("numeric: Zipf with non-positive n")
	}
	if alpha <= 0 {
		panic("numeric: Zipf with non-positive alpha")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), alpha)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// P returns the probability of rank i.
func (z *Zipf) P(i int) float64 {
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// Sample draws a rank in [0, N()).
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// WeightedChoice draws an index in [0, len(weights)) with probability
// proportional to weights[i]. Non-positive weights are treated as zero; if
// all weights are zero it returns -1.
func WeightedChoice(r *RNG, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return -1
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if u < acc {
			return i
		}
	}
	// Rounding fell off the end: return the last positive weight.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return -1
}
