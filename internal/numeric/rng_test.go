package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestRNGSplitIndependent(t *testing.T) {
	a := NewRNG(7)
	c := a.Split()
	// The child must not replay the parent's stream.
	av := make([]uint64, 50)
	cv := make([]uint64, 50)
	for i := range av {
		av[i] = a.Uint64()
		cv[i] = c.Uint64()
	}
	same := 0
	for i := range av {
		if av[i] == cv[i] {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream overlaps parent: %d identical draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var w Welford
	for i := 0; i < 100000; i++ {
		w.Add(r.Float64())
	}
	if math.Abs(w.Mean()-0.5) > 0.01 {
		t.Fatalf("uniform mean %v, want ~0.5", w.Mean())
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d values in 1000 draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(9)
	if err := quick.Check(func(seed uint64) bool {
		n := 1 + int(seed%20)
		p := NewRNG(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, &quick.Config{MaxCount: 200, Rand: nil}); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(r.NormFloat64())
	}
	if math.Abs(w.Mean()) > 0.02 {
		t.Fatalf("normal mean %v, want ~0", w.Mean())
	}
	if math.Abs(w.StdDev()-1) > 0.02 {
		t.Fatalf("normal stddev %v, want ~1", w.StdDev())
	}
}

func TestShuffle(t *testing.T) {
	r := NewRNG(17)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	orig := append([]int(nil), xs...)
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 45 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
	same := true
	for i := range xs {
		if xs[i] != orig[i] {
			same = false
		}
	}
	if same {
		t.Log("shuffle produced identity permutation (possible but unlikely)")
	}
}
