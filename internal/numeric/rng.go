// Package numeric provides deterministic pseudo-random sampling and
// streaming statistics used throughout the Proteus simulator and workload
// generators. All randomness in the repository flows through RNG so that
// experiments are reproducible from a single seed.
package numeric

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (xoshiro256** seeded via splitmix64). It is not safe for concurrent use;
// derive independent streams with Split.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 expansion of the seed into the full state, as recommended
	// by the xoshiro authors.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives a new, statistically independent generator from r.
// The parent stream advances by one draw.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("numeric: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal sample (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}
