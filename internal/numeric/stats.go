package numeric

import (
	"math"
	"sort"
)

// Welford accumulates a running mean and variance in a single pass.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples seen.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the sample variance (0 with fewer than two samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// EWMA is an exponentially weighted moving average. The zero value with a
// positive Alpha is ready to use; the first observation initializes the
// average.
type EWMA struct {
	Alpha float64
	value float64
	init  bool
}

// Observe folds x into the average.
func (e *EWMA) Observe(x float64) {
	if !e.init {
		e.value = x
		e.init = true
		return
	}
	e.value = e.Alpha*x + (1-e.Alpha)*e.value
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether any observation has been folded in.
func (e *EWMA) Initialized() bool { return e.init }

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns NaN for an empty slice.
// The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Max returns the maximum of xs (negative infinity for an empty slice).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs (positive infinity for an empty slice).
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
