package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWelfordAgainstDirect(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean %v, want 5", w.Mean())
	}
	// Sample variance of the classic dataset is 32/7.
	if math.Abs(w.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("variance %v, want %v", w.Variance(), 32.0/7.0)
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 {
		t.Fatal("zero-value Welford must report 0")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Variance() != 0 {
		t.Fatalf("single sample: mean %v var %v", w.Mean(), w.Variance())
	}
}

func TestWelfordMatchesNaiveProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var w Welford
		sum := 0.0
		for i, v := range raw {
			xs[i] = float64(v)
			w.Add(xs[i])
			sum += xs[i]
		}
		mean := sum / float64(len(xs))
		if math.Abs(w.Mean()-mean) > 1e-6 {
			return false
		}
		if len(xs) < 2 {
			return true
		}
		ss := 0.0
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naive := ss / float64(len(xs)-1)
		return math.Abs(w.Variance()-naive) <= 1e-6*(1+naive)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEWMA(t *testing.T) {
	e := EWMA{Alpha: 0.5}
	if e.Initialized() {
		t.Fatal("zero EWMA must not be initialized")
	}
	e.Observe(10)
	if e.Value() != 10 {
		t.Fatalf("first observation must initialize: %v", e.Value())
	}
	e.Observe(20)
	if e.Value() != 15 {
		t.Fatalf("value %v, want 15", e.Value())
	}
	e.Observe(15)
	if e.Value() != 15 {
		t.Fatalf("value %v, want 15", e.Value())
	}
}

func TestEWMAConverges(t *testing.T) {
	e := EWMA{Alpha: 0.3}
	for i := 0; i < 100; i++ {
		e.Observe(42)
	}
	if math.Abs(e.Value()-42) > 1e-9 {
		t.Fatalf("EWMA did not converge: %v", e.Value())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-0.5, 1}, {1.5, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.3); math.Abs(got-3) > 1e-12 {
		t.Fatalf("Quantile(0.3) = %v, want 3", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestQuantileEmpty(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile must be NaN")
	}
}

func TestAggregates(t *testing.T) {
	xs := []float64{3, -1, 4}
	if Mean(xs) != 2 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if Sum(xs) != 6 {
		t.Fatalf("Sum = %v", Sum(xs))
	}
	if Max(xs) != 4 {
		t.Fatalf("Max = %v", Max(xs))
	}
	if Min(xs) != -1 {
		t.Fatalf("Min = %v", Min(xs))
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) must be 0")
	}
	if !math.IsInf(Max(nil), -1) || !math.IsInf(Min(nil), 1) {
		t.Fatal("empty Max/Min must be infinities")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp misbehaves")
	}
}
