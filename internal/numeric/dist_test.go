package numeric

import (
	"math"
	"testing"
)

func TestExpMean(t *testing.T) {
	r := NewRNG(21)
	for _, rate := range []float64{0.5, 1, 5, 100} {
		var w Welford
		for i := 0; i < 100000; i++ {
			w.Add(r.Exp(rate))
		}
		want := 1 / rate
		if math.Abs(w.Mean()-want) > 0.05*want {
			t.Errorf("Exp(%v) mean %v, want ~%v", rate, w.Mean(), want)
		}
	}
}

func TestExpNonNegative(t *testing.T) {
	r := NewRNG(22)
	for i := 0; i < 10000; i++ {
		if v := r.Exp(3); v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Exp(0)
}

func TestPoissonMeanAndVariance(t *testing.T) {
	r := NewRNG(23)
	for _, mean := range []float64{0.5, 3, 12, 80, 400} {
		var w Welford
		for i := 0; i < 50000; i++ {
			w.Add(float64(r.Poisson(mean)))
		}
		if math.Abs(w.Mean()-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%v) mean %v", mean, w.Mean())
		}
		if math.Abs(w.Variance()-mean) > 0.12*mean+0.2 {
			t.Errorf("Poisson(%v) variance %v", mean, w.Variance())
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	r := NewRNG(24)
	for i := 0; i < 100; i++ {
		if r.Poisson(0) != 0 {
			t.Fatal("Poisson(0) must be 0")
		}
		if r.Poisson(-1) != 0 {
			t.Fatal("Poisson(negative) must be 0")
		}
	}
}

func TestGammaMoments(t *testing.T) {
	r := NewRNG(25)
	cases := []struct{ shape, scale float64 }{
		{0.05, 20}, // the paper's bursty inter-arrival shape
		{0.5, 2},
		{1, 1},
		{4, 0.25},
	}
	for _, c := range cases {
		var w Welford
		for i := 0; i < 200000; i++ {
			w.Add(r.Gamma(c.shape, c.scale))
		}
		wantMean := c.shape * c.scale
		wantVar := c.shape * c.scale * c.scale
		if math.Abs(w.Mean()-wantMean) > 0.08*wantMean+0.01 {
			t.Errorf("Gamma(%v,%v) mean %v, want ~%v", c.shape, c.scale, w.Mean(), wantMean)
		}
		if math.Abs(w.Variance()-wantVar) > 0.2*wantVar+0.02 {
			t.Errorf("Gamma(%v,%v) variance %v, want ~%v", c.shape, c.scale, w.Variance(), wantVar)
		}
	}
}

func TestGammaNonNegative(t *testing.T) {
	r := NewRNG(26)
	for i := 0; i < 10000; i++ {
		if v := r.Gamma(0.05, 10); v < 0 {
			t.Fatalf("negative gamma sample %v", v)
		}
	}
}

func TestGammaSmallShapeIsBursty(t *testing.T) {
	// Gamma with shape << 1 must have coefficient of variation >> 1,
	// i.e. much burstier than exponential (CV = 1).
	r := NewRNG(27)
	var w Welford
	for i := 0; i < 100000; i++ {
		w.Add(r.Gamma(0.05, 1))
	}
	cv := w.StdDev() / w.Mean()
	if cv < 2 {
		t.Fatalf("Gamma(0.05) CV %v, want >> 1", cv)
	}
}

func TestZipfProbabilities(t *testing.T) {
	z := NewZipf(9, 1.001)
	sum := 0.0
	prev := math.Inf(1)
	for i := 0; i < z.N(); i++ {
		p := z.P(i)
		if p <= 0 || p > 1 {
			t.Fatalf("P(%d) = %v out of range", i, p)
		}
		if p > prev+1e-12 {
			t.Fatalf("Zipf probabilities not monotone: P(%d)=%v > P(%d)=%v", i, p, i-1, prev)
		}
		prev = p
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestZipfSampleFrequencies(t *testing.T) {
	z := NewZipf(5, 1.001)
	r := NewRNG(31)
	counts := make([]int, 5)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	for i := range counts {
		got := float64(counts[i]) / n
		want := z.P(i)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("rank %d frequency %v, want ~%v", i, got, want)
		}
	}
}

func TestZipfRankOneDominates(t *testing.T) {
	z := NewZipf(9, 1.001)
	if z.P(0) <= z.P(8)*3 {
		t.Fatalf("Zipf head %v not dominant over tail %v", z.P(0), z.P(8))
	}
}

func TestWeightedChoice(t *testing.T) {
	r := NewRNG(33)
	weights := []float64{0, 1, 3, 0, 6}
	counts := make([]int, len(weights))
	const n = 100000
	for i := 0; i < n; i++ {
		idx := WeightedChoice(r, weights)
		if idx < 0 || idx >= len(weights) {
			t.Fatalf("index %d out of range", idx)
		}
		counts[idx]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Fatalf("zero-weight entries selected: %v", counts)
	}
	for i, want := range []float64{0, 0.1, 0.3, 0, 0.6} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d frequency %v, want ~%v", i, got, want)
		}
	}
}

func TestWeightedChoiceAllZero(t *testing.T) {
	r := NewRNG(34)
	if idx := WeightedChoice(r, []float64{0, 0}); idx != -1 {
		t.Fatalf("want -1 for all-zero weights, got %d", idx)
	}
	if idx := WeightedChoice(r, nil); idx != -1 {
		t.Fatalf("want -1 for empty weights, got %d", idx)
	}
}

func TestWeightedChoiceNegativeTreatedAsZero(t *testing.T) {
	r := NewRNG(35)
	for i := 0; i < 1000; i++ {
		if idx := WeightedChoice(r, []float64{-5, 2, -1}); idx != 1 {
			t.Fatalf("negative weight selected: %d", idx)
		}
	}
}
