package simulation

import (
	"testing"
	"time"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3*time.Second, func() { order = append(order, 3) })
	e.Schedule(1*time.Second, func() { order = append(order, 1) })
	e.Schedule(2*time.Second, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("final time %v", e.Now())
	}
	if e.Fired() != 3 {
		t.Fatalf("fired %d", e.Fired())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of order: %v", order)
		}
	}
}

func TestScheduleDuringRun(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	e.Schedule(time.Second, func() {
		fired = append(fired, e.Now())
		e.After(500*time.Millisecond, func() {
			fired = append(fired, e.Now())
		})
	})
	e.Run()
	if len(fired) != 2 || fired[1] != 1500*time.Millisecond {
		t.Fatalf("fired %v", fired)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.Schedule(time.Second, func() { ran = true })
	ev.Cancel()
	if !ev.Cancelled() {
		t.Fatal("Cancelled() false")
	}
	e.Run()
	if ran {
		t.Fatal("cancelled event fired")
	}
	if e.Fired() != 0 {
		t.Fatalf("fired %d", e.Fired())
	}
}

func TestCancelDuringRun(t *testing.T) {
	e := NewEngine()
	ran := false
	var later *Event
	e.Schedule(time.Second, func() { later.Cancel() })
	later = e.Schedule(2*time.Second, func() { ran = true })
	e.Run()
	if ran {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Schedule(500*time.Millisecond, func() {})
}

func TestAfterNegativeClamped(t *testing.T) {
	e := NewEngine()
	fired := false
	e.After(-time.Second, func() { fired = true })
	e.Run()
	if !fired || e.Now() != 0 {
		t.Fatalf("fired=%v now=%v", fired, e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []int
	e.Schedule(1*time.Second, func() { fired = append(fired, 1) })
	e.Schedule(2*time.Second, func() { fired = append(fired, 2) })
	e.Schedule(3*time.Second, func() { fired = append(fired, 3) })
	e.RunUntil(2 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired %v", fired)
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("now %v", e.Now())
	}
	e.RunUntil(10 * time.Second)
	if len(fired) != 3 || e.Now() != 10*time.Second {
		t.Fatalf("fired %v now %v", fired, e.Now())
	}
}

func TestRunUntilSkipsCancelled(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(time.Second, func() {})
	ev.Cancel()
	e.RunUntil(5 * time.Second)
	if e.Pending() != 0 {
		t.Fatalf("pending %d", e.Pending())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestManyEventsStress(t *testing.T) {
	e := NewEngine()
	const n = 10000
	count := 0
	for i := 0; i < n; i++ {
		at := time.Duration((i*7919)%n) * time.Millisecond
		e.Schedule(at, func() { count++ })
	}
	prev := time.Duration(-1)
	for e.Step() {
		if e.Now() < prev {
			t.Fatal("time went backwards")
		}
		prev = e.Now()
	}
	if count != n {
		t.Fatalf("count %d", count)
	}
}
