// Package simulation provides the discrete-event engine underneath the
// Proteus simulator: a virtual clock and an event queue with deterministic
// FIFO ordering among same-time events. The paper's evaluation (§6.1.5) is
// driven by exactly such an event-queue simulator; results from it match
// their cluster testbed within ~1%.
package simulation

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback. Obtain events via Engine.Schedule; cancel
// them with Cancel.
type Event struct {
	time      time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// Time returns the virtual time the event fires at.
func (e *Event) Time() time.Duration { return e.time }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() { e.cancelled = true }

// Cancelled reports whether Cancel was called.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x interface{}) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all model code runs inside event callbacks.
type Engine struct {
	now    time.Duration
	queue  eventHeap
	seq    uint64
	fired  uint64
	inStep bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued (including cancelled
// ones not yet reaped).
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule registers fn to run at absolute virtual time at. Scheduling in
// the past panics — it indicates a model bug. Events at equal times fire in
// scheduling order.
func (e *Engine) Schedule(at time.Duration, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("simulation: scheduling at %v before now %v", at, e.now))
	}
	ev := &Event{time: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After registers fn to run d after the current time.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// Step fires the next event. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.time
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the queue is exhausted.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with time <= t, then advances the clock to t.
func (e *Engine) RunUntil(t time.Duration) {
	for {
		next, ok := e.peek()
		if !ok || next > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

func (e *Engine) peek() (time.Duration, bool) {
	for len(e.queue) > 0 {
		if e.queue[0].cancelled {
			heap.Pop(&e.queue)
			continue
		}
		return e.queue[0].time, true
	}
	return 0, false
}
