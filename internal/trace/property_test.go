package trace

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
	"time"

	"proteus/internal/numeric"
)

func randomTrace(seed uint64) *Trace {
	rng := numeric.NewRNG(seed)
	nf := 1 + rng.Intn(5)
	fams := make([]string, nf)
	for i := range fams {
		fams[i] = string(rune('a' + i))
	}
	tr := &Trace{Families: fams}
	secs := 1 + rng.Intn(120)
	for t := 0; t < secs; t++ {
		row := make([]float64, nf)
		for f := range row {
			row[f] = rng.Float64() * 200
		}
		tr.Demand = append(tr.Demand, row)
	}
	return tr
}

// TestPropertyCompressPreservesVolume checks that trace speed-up keeps the
// total query volume of the covered window.
func TestPropertyCompressPreservesVolume(t *testing.T) {
	f := func(seed uint64, factor8 uint8) bool {
		tr := randomTrace(seed)
		factor := 1 + int(factor8%5)
		c := tr.Compress(factor)
		covered := c.Seconds() * factor
		want := 0.0
		for ti := 0; ti < covered; ti++ {
			want += tr.TotalQPS(ti)
		}
		got := 0.0
		for ti := 0; ti < c.Seconds(); ti++ {
			got += c.TotalQPS(ti)
		}
		return math.Abs(got-want) < 1e-6*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyScaleIsLinear checks Scale's multiplicativity.
func TestPropertyScaleIsLinear(t *testing.T) {
	f := func(seed uint64, k16 uint16) bool {
		tr := randomTrace(seed)
		k := float64(k16%100) / 10
		s := tr.Scale(k)
		for ti := range tr.Demand {
			for fi := range tr.Demand[ti] {
				if math.Abs(s.Demand[ti][fi]-k*tr.Demand[ti][fi]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCSVRoundTrip checks serialization fidelity on random traces.
func TestPropertyCSVRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		tr := randomTrace(seed)
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		if got.Seconds() != tr.Seconds() || len(got.Families) != len(tr.Families) {
			return false
		}
		for ti := range tr.Demand {
			for fi := range tr.Demand[ti] {
				if got.Demand[ti][fi] != tr.Demand[ti][fi] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyArrivalsSortedAndInWindow checks the arrival expansion
// invariants for random traces.
func TestPropertyArrivalsSortedAndInWindow(t *testing.T) {
	f := func(seed uint64) bool {
		tr := randomTrace(seed)
		arr := tr.Arrivals(numeric.NewRNG(seed ^ 0x5f5f))
		end := time.Duration(tr.Seconds()) * time.Second
		prev := time.Duration(-1)
		for _, a := range arr {
			if a.Time < prev || a.Time < 0 || a.Time >= end {
				return false
			}
			if a.Family < 0 || a.Family >= len(tr.Families) {
				return false
			}
			prev = a.Time
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyInterArrivalMeanRate checks that every arrival process hits
// the requested mean rate within sampling error.
func TestPropertyInterArrivalMeanRate(t *testing.T) {
	f := func(seed uint64, proc8 uint8) bool {
		p := []ArrivalProcess{Uniform, PoissonProcess, GammaProcess}[int(proc8)%3]
		rng := numeric.NewRNG(seed)
		rate := 50 + float64(seed%200)
		d := 40 * time.Second
		times := InterArrivalTimes(p, rate, d, rng)
		want := rate * d.Seconds()
		// Gamma(0.05) has wild variance; allow generous tolerance.
		tol := 0.25 * want
		return math.Abs(float64(len(times))-want) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
