package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"proteus/internal/numeric"
)

var fams = []string{"resnet", "bert", "yolo"}

func TestNewFlat(t *testing.T) {
	tr := NewFlat(fams, []float64{10, 5, 1}, 30)
	if tr.Seconds() != 30 {
		t.Fatalf("seconds %d", tr.Seconds())
	}
	if tr.TotalQPS(0) != 16 || tr.TotalQPS(29) != 16 {
		t.Fatalf("total QPS %v", tr.TotalQPS(0))
	}
	if tr.FamilyQPS(10, 1) != 5 {
		t.Fatalf("family QPS %v", tr.FamilyQPS(10, 1))
	}
	if tr.PeakQPS() != 16 || tr.MeanQPS() != 16 {
		t.Fatalf("peak %v mean %v", tr.PeakQPS(), tr.MeanQPS())
	}
}

func TestFlatPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFlat(fams, []float64{1}, 10)
}

func TestScale(t *testing.T) {
	tr := NewFlat(fams, []float64{10, 5, 1}, 5)
	s := tr.Scale(3)
	if s.TotalQPS(0) != 48 {
		t.Fatalf("scaled total %v", s.TotalQPS(0))
	}
	if tr.TotalQPS(0) != 16 {
		t.Fatal("Scale mutated the original")
	}
}

func TestCompressPreservesVolume(t *testing.T) {
	tr := NewFlat(fams, []float64{10, 5, 1}, 60)
	c := tr.Compress(4)
	if c.Seconds() != 15 {
		t.Fatalf("compressed seconds %d, want 15", c.Seconds())
	}
	// Total query volume (QPS * seconds) is preserved.
	if got, want := c.TotalQPS(0)*float64(c.Seconds()), tr.TotalQPS(0)*float64(tr.Seconds()); math.Abs(got-want) > 1e-9 {
		t.Fatalf("volume %v, want %v", got, want)
	}
	// Rates multiply by the factor.
	if c.TotalQPS(0) != 64 {
		t.Fatalf("compressed rate %v, want 64", c.TotalQPS(0))
	}
}

func TestCompressKeepsShape(t *testing.T) {
	cfg := DiurnalConfig{
		Seconds: 400, BaseQPS: 100, DiurnalAmplitude: 200, PeriodSeconds: 200,
		Families: fams, Seed: 1,
	}
	tr := NewDiurnal(cfg)
	c := tr.Compress(2)
	// Peak-to-mean ratio should be roughly unchanged.
	r0 := tr.PeakQPS() / tr.MeanQPS()
	r1 := c.PeakQPS() / c.MeanQPS()
	if math.Abs(r0-r1) > 0.2*r0 {
		t.Fatalf("shape changed: ratios %v vs %v", r0, r1)
	}
}

func TestSlice(t *testing.T) {
	tr := NewFlat(fams, []float64{1, 1, 1}, 10)
	s := tr.Slice(2, 5)
	if s.Seconds() != 3 {
		t.Fatalf("slice seconds %d", s.Seconds())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad slice")
		}
	}()
	tr.Slice(5, 2)
}

func TestDiurnalShape(t *testing.T) {
	cfg := DiurnalConfig{
		Seconds: 600, BaseQPS: 100, DiurnalAmplitude: 300, PeriodSeconds: 600,
		NoiseFrac: 0.02, Families: fams, Seed: 7,
	}
	tr := NewDiurnal(cfg)
	if tr.Seconds() != 600 {
		t.Fatalf("seconds %d", tr.Seconds())
	}
	// The sinusoid starts at base, peaks mid-period near base+amplitude.
	start := tr.TotalQPS(0)
	mid := tr.TotalQPS(300)
	if start > 150 {
		t.Fatalf("start level %v, want near base 100", start)
	}
	if mid < 320 || mid > 480 {
		t.Fatalf("mid level %v, want near 400", mid)
	}
	for ti := 0; ti < tr.Seconds(); ti++ {
		if tr.TotalQPS(ti) < 0 {
			t.Fatal("negative demand")
		}
	}
}

func TestDiurnalZipfSplit(t *testing.T) {
	cfg := DiurnalConfig{
		Seconds: 10, BaseQPS: 1000, Families: fams, Seed: 3, ZipfAlpha: 1.001,
	}
	tr := NewDiurnal(cfg)
	z := numeric.NewZipf(3, 1.001)
	for f := 0; f < 3; f++ {
		got := tr.FamilyQPS(0, f) / tr.TotalQPS(0)
		if math.Abs(got-z.P(f)) > 1e-9 {
			t.Fatalf("family %d share %v, want %v", f, got, z.P(f))
		}
	}
	// Rank 0 must dominate (Zipf head).
	if tr.FamilyQPS(0, 0) <= tr.FamilyQPS(0, 2) {
		t.Fatal("Zipf ordering broken")
	}
}

func TestDiurnalSpikes(t *testing.T) {
	base := DiurnalConfig{Seconds: 300, BaseQPS: 100, Families: fams, Seed: 11}
	flat := NewDiurnal(base)
	spiked := base
	spiked.Spikes = 3
	spiked.SpikeMagnitude = 500
	spiked.SpikeWidthSeconds = 5
	sp := NewDiurnal(spiked)
	if sp.PeakQPS() < flat.PeakQPS()+200 {
		t.Fatalf("spikes absent: peak %v vs flat %v", sp.PeakQPS(), flat.PeakQPS())
	}
}

func TestDiurnalDeterministic(t *testing.T) {
	cfg := DiurnalConfig{Seconds: 50, BaseQPS: 100, NoiseFrac: 0.1, Families: fams, Seed: 5}
	a := NewDiurnal(cfg)
	b := NewDiurnal(cfg)
	for ti := range a.Demand {
		for f := range a.Demand[ti] {
			if a.Demand[ti][f] != b.Demand[ti][f] {
				t.Fatal("same seed produced different traces")
			}
		}
	}
}

func TestBursty(t *testing.T) {
	tr := NewBursty(BurstyConfig{
		Seconds: 100, LowQPS: 50, HighQPS: 500,
		LowSeconds: 20, HighSeconds: 10, Families: fams, StartWithLow: true,
	})
	eq := func(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
	if !eq(tr.TotalQPS(0), 50) || !eq(tr.TotalQPS(19), 50) {
		t.Fatalf("low period wrong: %v", tr.TotalQPS(0))
	}
	if !eq(tr.TotalQPS(20), 500) || !eq(tr.TotalQPS(29), 500) {
		t.Fatalf("high period wrong: %v", tr.TotalQPS(20))
	}
	if !eq(tr.TotalQPS(30), 50) {
		t.Fatalf("second low period wrong: %v", tr.TotalQPS(30))
	}
}

func TestArrivalsMatchDemand(t *testing.T) {
	tr := NewFlat(fams, []float64{100, 50, 10}, 60)
	rng := numeric.NewRNG(13)
	arr := tr.Arrivals(rng)
	want := 160.0 * 60
	if math.Abs(float64(len(arr))-want) > 0.05*want {
		t.Fatalf("arrivals %d, want ~%v", len(arr), want)
	}
	// Sorted by time, inside the trace window, valid family indices.
	for i := 1; i < len(arr); i++ {
		if arr[i].Time < arr[i-1].Time {
			t.Fatal("arrivals not sorted")
		}
	}
	counts := make([]int, 3)
	for _, a := range arr {
		if a.Time < 0 || a.Time >= 60*time.Second {
			t.Fatalf("arrival outside window: %v", a.Time)
		}
		if a.Family < 0 || a.Family >= 3 {
			t.Fatalf("bad family %d", a.Family)
		}
		counts[a.Family]++
	}
	for f, rate := range []float64{100, 50, 10} {
		want := rate * 60
		if math.Abs(float64(counts[f])-want) > 0.1*want {
			t.Errorf("family %d count %d, want ~%v", f, counts[f], want)
		}
	}
}

func TestInterArrivalUniform(t *testing.T) {
	rng := numeric.NewRNG(17)
	times := InterArrivalTimes(Uniform, 100, time.Second, rng)
	if len(times) != 99 { // arrivals strictly inside (0, 1s)
		t.Fatalf("uniform count %d, want 99", len(times))
	}
	gap := times[1] - times[0]
	for i := 2; i < len(times); i++ {
		d := times[i] - times[i-1]
		if d < gap-2*time.Nanosecond || d > gap+2*time.Nanosecond {
			t.Fatalf("uniform gaps differ: %v vs %v", d, gap)
		}
	}
}

func TestInterArrivalRatesMatch(t *testing.T) {
	rng := numeric.NewRNG(19)
	const rate = 200.0
	const dur = 50 * time.Second
	for _, p := range []ArrivalProcess{Uniform, PoissonProcess, GammaProcess} {
		times := InterArrivalTimes(p, rate, dur, rng)
		want := rate * dur.Seconds()
		if math.Abs(float64(len(times))-want) > 0.15*want {
			t.Errorf("%v: %d arrivals, want ~%v", p, len(times), want)
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				t.Fatalf("%v: times not monotone", p)
			}
		}
	}
}

func TestGammaIsBurstier(t *testing.T) {
	rng := numeric.NewRNG(23)
	cv := func(p ArrivalProcess) float64 {
		times := InterArrivalTimes(p, 100, 100*time.Second, rng)
		var w numeric.Welford
		for i := 1; i < len(times); i++ {
			w.Add((times[i] - times[i-1]).Seconds())
		}
		return w.StdDev() / w.Mean()
	}
	u, po, g := cv(Uniform), cv(PoissonProcess), cv(GammaProcess)
	if !(u < 0.01 && po > 0.8 && po < 1.2 && g > 2) {
		t.Fatalf("CVs: uniform %v, poisson %v, gamma %v", u, po, g)
	}
}

func TestInterArrivalZeroRate(t *testing.T) {
	if InterArrivalTimes(PoissonProcess, 0, time.Second, numeric.NewRNG(1)) != nil {
		t.Fatal("zero rate must produce no arrivals")
	}
}

func TestSingleFamilyArrivals(t *testing.T) {
	times := []time.Duration{time.Millisecond, time.Second}
	arr := SingleFamilyArrivals(times, 4)
	if len(arr) != 2 || arr[0].Family != 4 || arr[1].Time != time.Second {
		t.Fatalf("bad arrivals %v", arr)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := NewDiurnal(DiurnalConfig{Seconds: 20, BaseQPS: 123.5, NoiseFrac: 0.1, Families: fams, Seed: 9})
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seconds() != tr.Seconds() || len(got.Families) != len(tr.Families) {
		t.Fatalf("shape changed: %d/%d", got.Seconds(), len(got.Families))
	}
	for ti := range tr.Demand {
		for f := range tr.Demand[ti] {
			if got.Demand[ti][f] != tr.Demand[ti][f] {
				t.Fatalf("value changed at (%d,%d)", ti, f)
			}
		}
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus,a\n1,2\n",
		"second,resnet\n0,notanumber\n",
		"second,resnet\n0,-5\n",
		"second,resnet\n0\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
