// Package trace builds and manipulates the query workloads of the paper's
// evaluation (§6.1.3): a Twitter-like diurnal demand trace split across
// model families by a Zipf distribution, macro-scale bursty traces (§6.3),
// and micro-scale inter-arrival processes (uniform, Poisson, Gamma) used to
// stress adaptive batching (§6.4).
//
// A Trace is a per-second aggregate demand curve per family, exactly like
// the paper's post-processed Twitter trace; Arrivals expands it into
// individual query arrival times with Poisson placement inside each second.
package trace

import (
	"fmt"
	"math"
	"sort"
	"time"

	"proteus/internal/numeric"
)

// Trace is a demand curve: Demand[t][f] is the arrival rate (QPS) of family
// f during second t.
type Trace struct {
	Families []string
	Demand   [][]float64
}

// NewFlat returns a trace with constant per-family demand for the given
// number of seconds.
func NewFlat(families []string, qpsPerFamily []float64, seconds int) *Trace {
	if len(families) != len(qpsPerFamily) {
		panic("trace: families and qps length mismatch")
	}
	tr := &Trace{Families: append([]string(nil), families...)}
	for t := 0; t < seconds; t++ {
		tr.Demand = append(tr.Demand, append([]float64(nil), qpsPerFamily...))
	}
	return tr
}

// Seconds returns the trace duration in seconds.
func (tr *Trace) Seconds() int { return len(tr.Demand) }

// TotalQPS returns the summed demand across families during second t.
func (tr *Trace) TotalQPS(t int) float64 {
	return numeric.Sum(tr.Demand[t])
}

// FamilyQPS returns the demand of family index f during second t.
func (tr *Trace) FamilyQPS(t, f int) float64 { return tr.Demand[t][f] }

// PeakQPS returns the maximum total QPS over the trace.
func (tr *Trace) PeakQPS() float64 {
	peak := 0.0
	for t := range tr.Demand {
		if q := tr.TotalQPS(t); q > peak {
			peak = q
		}
	}
	return peak
}

// MeanQPS returns the average total QPS over the trace.
func (tr *Trace) MeanQPS() float64 {
	if len(tr.Demand) == 0 {
		return 0
	}
	sum := 0.0
	for t := range tr.Demand {
		sum += tr.TotalQPS(t)
	}
	return sum / float64(len(tr.Demand))
}

// Scale multiplies every demand entry by factor, returning a new trace.
func (tr *Trace) Scale(factor float64) *Trace {
	out := &Trace{Families: append([]string(nil), tr.Families...)}
	for _, row := range tr.Demand {
		nr := make([]float64, len(row))
		for i, v := range row {
			nr[i] = v * factor
		}
		out.Demand = append(out.Demand, nr)
	}
	return out
}

// Compress speeds the trace up by an integer factor without changing its
// shape, the paper's mechanism for overloading the system with a month-long
// trace (§6.1.3): each output second aggregates `factor` input seconds, so
// rates multiply by the factor and the duration divides by it.
func (tr *Trace) Compress(factor int) *Trace {
	if factor < 1 {
		panic("trace: compression factor must be >= 1")
	}
	out := &Trace{Families: append([]string(nil), tr.Families...)}
	nf := len(tr.Families)
	for start := 0; start+factor <= len(tr.Demand); start += factor {
		row := make([]float64, nf)
		for k := 0; k < factor; k++ {
			for f := 0; f < nf; f++ {
				row[f] += tr.Demand[start+k][f]
			}
		}
		out.Demand = append(out.Demand, row)
	}
	return out
}

// Slice returns the sub-trace covering seconds [from, to).
func (tr *Trace) Slice(from, to int) *Trace {
	if from < 0 || to > len(tr.Demand) || from > to {
		panic(fmt.Sprintf("trace: bad slice [%d,%d) of %d", from, to, len(tr.Demand)))
	}
	out := &Trace{Families: append([]string(nil), tr.Families...)}
	for t := from; t < to; t++ {
		out.Demand = append(out.Demand, append([]float64(nil), tr.Demand[t]...))
	}
	return out
}

// DiurnalConfig parameterizes the Twitter-like synthetic trace. The shape
// follows the features the paper relies on: diurnal sinusoidal pattern,
// sudden spikes, and noise.
type DiurnalConfig struct {
	Seconds int
	// BaseQPS is the total demand floor.
	BaseQPS float64
	// DiurnalAmplitude is the peak-over-base of the sinusoid (same units).
	DiurnalAmplitude float64
	// PeriodSeconds is the diurnal period (a "day" after compression).
	PeriodSeconds int
	// Spikes is the number of random demand spikes to overlay.
	Spikes int
	// SpikeMagnitude is each spike's additional QPS at its center.
	SpikeMagnitude float64
	// SpikeWidthSeconds is each spike's half-width.
	SpikeWidthSeconds int
	// NoiseFrac is multiplicative Gaussian noise (fraction of the level).
	NoiseFrac float64
	// ZipfAlpha splits total demand across families (paper: 1.001).
	ZipfAlpha float64
	// FamilyPhaseSpread staggers each family's diurnal peak by this
	// fraction of the period across families (0 = all peak together).
	// Real multi-tenant workloads peak at different times per application,
	// which shifts the demand *mix* over time and stresses model placement.
	FamilyPhaseSpread float64
	// Families are the query types sharing the trace.
	Families []string
	Seed     uint64
}

// NewDiurnal synthesizes a Twitter-like trace per the config.
func NewDiurnal(cfg DiurnalConfig) *Trace {
	if cfg.Seconds <= 0 || len(cfg.Families) == 0 {
		panic("trace: diurnal config needs Seconds and Families")
	}
	if cfg.PeriodSeconds <= 0 {
		cfg.PeriodSeconds = cfg.Seconds
	}
	if cfg.ZipfAlpha <= 0 {
		cfg.ZipfAlpha = 1.001
	}
	rng := numeric.NewRNG(cfg.Seed)
	zipf := numeric.NewZipf(len(cfg.Families), cfg.ZipfAlpha)
	shares := make([]float64, len(cfg.Families))
	for f := range shares {
		shares[f] = zipf.P(f)
	}

	type spike struct {
		center, width int
		mag           float64
	}
	spikes := make([]spike, cfg.Spikes)
	for i := range spikes {
		spikes[i] = spike{
			center: rng.Intn(cfg.Seconds),
			width:  cfg.SpikeWidthSeconds,
			mag:    cfg.SpikeMagnitude * (0.5 + rng.Float64()),
		}
		if spikes[i].width < 1 {
			spikes[i].width = 1
		}
	}

	tr := &Trace{Families: append([]string(nil), cfg.Families...)}
	nf := len(cfg.Families)
	for t := 0; t < cfg.Seconds; t++ {
		spikeLevel := 0.0
		for _, s := range spikes {
			d := float64(t - s.center)
			spikeLevel += s.mag * math.Exp(-d*d/(2*float64(s.width*s.width)))
		}
		row := make([]float64, nf)
		for f := range row {
			offset := 0.0
			if nf > 1 {
				offset = 2 * math.Pi * cfg.FamilyPhaseSpread * float64(f) / float64(nf)
			}
			phase := 2*math.Pi*float64(t)/float64(cfg.PeriodSeconds) + offset
			level := cfg.BaseQPS + cfg.DiurnalAmplitude*(1-math.Cos(phase))/2 + spikeLevel
			if cfg.NoiseFrac > 0 {
				level *= 1 + cfg.NoiseFrac*rng.NormFloat64()
			}
			if level < 0 {
				level = 0
			}
			row[f] = level * shares[f]
		}
		tr.Demand = append(tr.Demand, row)
	}
	return tr
}

// BurstyConfig parameterizes the macro-burst trace of §6.3: flat low demand
// interleaved with flat high-demand periods.
type BurstyConfig struct {
	Seconds      int
	LowQPS       float64
	HighQPS      float64
	LowSeconds   int
	HighSeconds  int
	ZipfAlpha    float64
	Families     []string
	StartWithLow bool
}

// NewBursty synthesizes the interleaved low/high trace.
func NewBursty(cfg BurstyConfig) *Trace {
	if cfg.Seconds <= 0 || len(cfg.Families) == 0 {
		panic("trace: bursty config needs Seconds and Families")
	}
	if cfg.LowSeconds <= 0 || cfg.HighSeconds <= 0 {
		panic("trace: bursty config needs positive period lengths")
	}
	if cfg.ZipfAlpha <= 0 {
		cfg.ZipfAlpha = 1.001
	}
	zipf := numeric.NewZipf(len(cfg.Families), cfg.ZipfAlpha)
	tr := &Trace{Families: append([]string(nil), cfg.Families...)}
	low := cfg.StartWithLow
	remaining := cfg.LowSeconds
	if !low {
		remaining = cfg.HighSeconds
	}
	for t := 0; t < cfg.Seconds; t++ {
		level := cfg.HighQPS
		if low {
			level = cfg.LowQPS
		}
		row := make([]float64, len(cfg.Families))
		for f := range row {
			row[f] = level * zipf.P(f)
		}
		tr.Demand = append(tr.Demand, row)
		remaining--
		if remaining == 0 {
			low = !low
			if low {
				remaining = cfg.LowSeconds
			} else {
				remaining = cfg.HighSeconds
			}
		}
	}
	return tr
}

// AdversarialConfig parameterizes the worst-case spike trace for the
// overload experiments: a flat base load with sharp square-wave spikes that
// start just after each control-period boundary — when the freshly solved
// plan is maximally stale — and land entirely on the heaviest Zipf family.
// Between solves the plan cannot react; only the fast-path overload guard
// can.
type AdversarialConfig struct {
	Seconds int
	// BaseQPS is the aggregate demand outside spikes, split across families
	// by a Zipf law.
	BaseQPS float64
	// SpikeQPS is ADDED to family 0's demand during a spike.
	SpikeQPS float64
	// SpikeSeconds is each spike's duration; PeriodSeconds the spacing of
	// spike starts (align it with the system's control period to hit the
	// stale-plan window).
	SpikeSeconds  int
	PeriodSeconds int
	// SpikeOffset delays each spike past the period boundary (default 1s —
	// right after the periodic solve is applied).
	SpikeOffset int
	ZipfAlpha   float64
	Families    []string
}

// NewAdversarial synthesizes the stale-plan spike trace.
func NewAdversarial(cfg AdversarialConfig) *Trace {
	if cfg.Seconds <= 0 || len(cfg.Families) == 0 {
		panic("trace: adversarial config needs Seconds and Families")
	}
	if cfg.SpikeSeconds <= 0 || cfg.PeriodSeconds <= 0 {
		panic("trace: adversarial config needs positive spike and period lengths")
	}
	if cfg.SpikeOffset <= 0 {
		cfg.SpikeOffset = 1
	}
	if cfg.ZipfAlpha <= 0 {
		cfg.ZipfAlpha = 1.001
	}
	zipf := numeric.NewZipf(len(cfg.Families), cfg.ZipfAlpha)
	tr := &Trace{Families: append([]string(nil), cfg.Families...)}
	for t := 0; t < cfg.Seconds; t++ {
		row := make([]float64, len(cfg.Families))
		for f := range row {
			row[f] = cfg.BaseQPS * zipf.P(f)
		}
		if phase := t % cfg.PeriodSeconds; phase >= cfg.SpikeOffset && phase < cfg.SpikeOffset+cfg.SpikeSeconds {
			row[0] += cfg.SpikeQPS
		}
		tr.Demand = append(tr.Demand, row)
	}
	return tr
}

// Arrival is one query arrival: its time offset from trace start and the
// family (query type) index it belongs to.
type Arrival struct {
	Time   time.Duration
	Family int
}

// Arrivals expands the trace into individual queries. Within each second
// the number of arrivals per family is Poisson with the bin's rate and the
// times are uniform in the bin — i.e. a piecewise-homogeneous Poisson
// process, the paper's §6.1.3 construction. The result is sorted by time.
func (tr *Trace) Arrivals(rng *numeric.RNG) []Arrival {
	var out []Arrival
	for t, row := range tr.Demand {
		for f, rate := range row {
			n := rng.Poisson(rate)
			for i := 0; i < n; i++ {
				at := time.Duration((float64(t) + rng.Float64()) * float64(time.Second))
				out = append(out, Arrival{Time: at, Family: f})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// ArrivalProcess selects the micro-scale inter-arrival distribution of §6.4.
type ArrivalProcess int

// The three inter-arrival processes compared in Figure 6.
const (
	// Uniform spaces queries evenly (deterministic inter-arrivals).
	Uniform ArrivalProcess = iota
	// PoissonProcess draws exponential inter-arrivals.
	PoissonProcess
	// GammaProcess draws Gamma-distributed inter-arrivals with small shape
	// (0.05 in the paper), producing heavy micro-bursts at the same rate.
	GammaProcess
)

func (p ArrivalProcess) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case PoissonProcess:
		return "poisson"
	case GammaProcess:
		return "gamma"
	}
	return "unknown"
}

// GammaShape is the paper's burstiness parameter for GammaProcess.
const GammaShape = 0.05

// InterArrivalTimes generates arrival offsets at the given mean rate for
// the given duration using the selected process. The mean inter-arrival is
// 1/rate for every process; only the variance differs.
func InterArrivalTimes(p ArrivalProcess, rate float64, d time.Duration, rng *numeric.RNG) []time.Duration {
	if rate <= 0 {
		return nil
	}
	mean := 1 / rate
	var out []time.Duration
	now := 0.0
	limit := d.Seconds()
	for {
		var gap float64
		switch p {
		case Uniform:
			gap = mean
		case PoissonProcess:
			gap = rng.Exp(rate)
		case GammaProcess:
			gap = rng.Gamma(GammaShape, mean/GammaShape)
		default:
			panic("trace: unknown arrival process")
		}
		now += gap
		if now >= limit {
			return out
		}
		out = append(out, time.Duration(now*float64(time.Second)))
	}
}

// SingleFamilyArrivals converts raw times into Arrival records for family
// index f.
func SingleFamilyArrivals(times []time.Duration, f int) []Arrival {
	out := make([]Arrival, len(times))
	for i, t := range times {
		out[i] = Arrival{Time: t, Family: f}
	}
	return out
}
