package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serializes the trace as CSV: a header row of "second" followed
// by family names, then one row per second of demand values. This is the
// interchange format used by cmd/proteus-traces and cmd/proteus-sim.
func (tr *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"second"}, tr.Families...)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(tr.Families)+1)
	for t, demand := range tr.Demand {
		row[0] = strconv.Itoa(t)
		for f, v := range demand {
			row[f+1] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace previously written with WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if len(header) < 2 || header[0] != "second" {
		return nil, fmt.Errorf("trace: malformed header %v", header)
	}
	tr := &Trace{Families: append([]string(nil), header[1:]...)}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("trace: line %d has %d fields, want %d", line, len(rec), len(header))
		}
		row := make([]float64, len(tr.Families))
		for f := range row {
			v, err := strconv.ParseFloat(rec[f+1], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d field %d: %w", line, f+1, err)
			}
			if v < 0 {
				return nil, fmt.Errorf("trace: line %d: negative demand %v", line, v)
			}
			row[f] = v
		}
		tr.Demand = append(tr.Demand, row)
	}
	return tr, nil
}
