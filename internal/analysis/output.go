package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file holds proteus-lint's machine-readable surfaces: the JSON and
// SARIF emitters and the baseline mechanism. All three are byte-
// deterministic for a given finding set — structs with fixed field order,
// findings pre-sorted by SortFindings, rules sorted by ID — so CI can diff
// outputs across runs and archive them as artifacts.

// FindingJSON is the stable wire form of one finding.
type FindingJSON struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func toJSONFindings(findings []Finding) []FindingJSON {
	out := make([]FindingJSON, len(findings))
	for i, f := range findings {
		out[i] = FindingJSON{
			File:    filepath.ToSlash(f.Pos.Filename),
			Line:    f.Pos.Line,
			Column:  f.Pos.Column,
			Check:   f.Check,
			Message: f.Message,
		}
	}
	return out
}

// WriteText writes the default path:line:col report, one finding per line.
func WriteText(w io.Writer, findings []Finding) error {
	for _, f := range findings {
		if _, err := fmt.Fprintln(w, f); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the findings as an indented JSON document.
func WriteJSON(w io.Writer, findings []Finding) error {
	doc := struct {
		Findings []FindingJSON `json:"findings"`
		Count    int           `json:"count"`
	}{Findings: toJSONFindings(findings), Count: len(findings)}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// sarif* mirror the minimal subset of SARIF 2.1.0 that code-scanning
// ingesters require.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF writes the findings as a SARIF 2.1.0 log. rules is the
// registry's full check table (Registry.Rules), so consumers see every
// check, not only the ones that fired.
func WriteSARIF(w io.Writer, findings []Finding, rules []Rule) error {
	srules := make([]sarifRule, len(rules))
	for i, r := range rules {
		srules[i] = sarifRule{ID: r.ID, ShortDescription: sarifText{Text: r.Doc}}
	}
	results := make([]sarifResult, len(findings))
	for i, f := range findings {
		results[i] = sarifResult{
			RuleID:  f.Check,
			Level:   "error",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(f.Pos.Filename)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		}
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "proteus-lint",
				InformationURI: "https://github.com/proteus/proteus",
				Rules:          srules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// Baseline is a checked-in set of accepted findings. It exists so a new,
// stricter checker can land with the gate already on: known findings go into
// the baseline instead of a flood of //lint:allow comments, and the file
// shrinks monotonically as they are fixed. Matching deliberately ignores
// line and column — refactors move findings around — and is multiset-
// semantic: two identical findings need two baseline entries.
type Baseline struct {
	counts map[baselineKey]int
}

type baselineKey struct {
	File    string
	Check   string
	Message string
}

// baselineEntry is the stable file form of one accepted finding.
type baselineEntry struct {
	File    string `json:"file"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

type baselineFile struct {
	Version  int             `json:"version"`
	Findings []baselineEntry `json:"findings"`
}

// NewBaseline builds a baseline from findings (used by -write-baseline).
func NewBaseline(findings []Finding) *Baseline {
	b := &Baseline{counts: make(map[baselineKey]int)}
	for _, f := range findings {
		b.counts[baselineKey{File: filepath.ToSlash(f.Pos.Filename), Check: f.Check, Message: f.Message}]++
	}
	return b
}

// ReadBaseline loads a baseline file.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var file baselineFile
	if err := json.Unmarshal(data, &file); err != nil {
		return nil, fmt.Errorf("analysis: baseline %s: %w", path, err)
	}
	if file.Version != 1 {
		return nil, fmt.Errorf("analysis: baseline %s: unsupported version %d", path, file.Version)
	}
	b := &Baseline{counts: make(map[baselineKey]int)}
	for _, e := range file.Findings {
		b.counts[baselineKey{File: e.File, Check: e.Check, Message: e.Message}]++
	}
	return b, nil
}

// WriteBaseline serializes the baseline deterministically (sorted entries).
func (b *Baseline) WriteBaseline(w io.Writer) error {
	entries := []baselineEntry{}
	for k, n := range b.counts {
		for i := 0; i < n; i++ {
			entries = append(entries, baselineEntry{File: k.File, Check: k.Check, Message: k.Message})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		a, c := entries[i], entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Check != c.Check {
			return a.Check < c.Check
		}
		return a.Message < c.Message
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(baselineFile{Version: 1, Findings: entries})
}

// Len reports the number of accepted findings in the baseline.
func (b *Baseline) Len() int {
	n := 0
	for _, c := range b.counts {
		n += c
	}
	return n
}

// Filter splits findings into the new ones (not covered by the baseline) and
// the count of suppressed matches. Each baseline entry absorbs at most one
// finding.
func (b *Baseline) Filter(findings []Finding) (fresh []Finding, suppressed int) {
	remaining := make(map[baselineKey]int, len(b.counts))
	for k, n := range b.counts {
		remaining[k] = n
	}
	for _, f := range findings {
		k := baselineKey{File: filepath.ToSlash(f.Pos.Filename), Check: f.Check, Message: f.Message}
		if remaining[k] > 0 {
			remaining[k]--
			suppressed++
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh, suppressed
}

// WriteAllows writes the audit listing of every //lint:allow directive:
// file:line, the suppressed checks, and the reason. proteus-lint -allows
// prints this so the repo's complete suppression surface is reviewable in
// one place.
func WriteAllows(w io.Writer, directives []AllowDirective, rel func(string) string) error {
	for _, d := range directives {
		reason := d.Reason
		if reason == "" {
			reason = "(no reason — fails the allowreason check)"
		}
		if _, err := fmt.Fprintf(w, "%s:%d: %s — %s\n",
			rel(d.Position.Filename), d.Position.Line, strings.Join(d.Checks, ","), reason); err != nil {
			return err
		}
	}
	return nil
}
