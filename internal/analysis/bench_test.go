package analysis

import "testing"

// BenchmarkLintModule measures a full proteus-lint pass over this repository
// itself: load + type-check every package, run the per-package checkers, and
// run the whole-module interprocedural checkers (call graph, nondet taint,
// lock-order composition). CI archives this as BENCH_lint.json and gates on
// regressions, so the interprocedural layer cannot silently turn the lint
// gate into the slowest step of the build.
func BenchmarkLintModule(b *testing.B) {
	reg := DefaultRegistry("proteus")
	for i := 0; i < b.N; i++ {
		findings, err := reg.Run("../..", []string{"./..."})
		if err != nil {
			b.Fatal(err)
		}
		if len(findings) != 0 {
			b.Fatalf("repository is not lint-clean: %v", findings)
		}
	}
}
