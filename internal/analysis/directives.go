package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// directiveIndex records, per file and line, which checks a //lint:allow
// comment suppresses. A trailing directive suppresses its own line; a
// directive alone on a line suppresses the line directly below it (so it can
// sit above the offending statement).
type directiveIndex map[string]map[int]map[string]bool

// allowPrefix is the directive marker. The comment form is
//
//	//lint:allow check1,check2 optional free-text reason
//
// The special check name "all" suppresses every check on the line.
const allowPrefix = "//lint:allow"

// collect scans a parsed file's comments for directives. src is the file's
// source bytes, used to tell trailing directives from standalone ones.
func (idx directiveIndex) collect(fset *token.FileSet, f *ast.File, src []byte) {
	for _, group := range f.Comments {
		for _, c := range group.List {
			rest, ok := strings.CutPrefix(c.Text, allowPrefix)
			if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			pos := fset.Position(c.Pos())
			line := pos.Line
			if standaloneComment(fset, c, src) {
				line++
			}
			byLine := idx[pos.Filename]
			if byLine == nil {
				byLine = make(map[int]map[string]bool)
				idx[pos.Filename] = byLine
			}
			checks := byLine[line]
			if checks == nil {
				checks = make(map[string]bool)
				byLine[line] = checks
			}
			// Only the first field names checks; the rest is a free-text
			// reason.
			for _, name := range strings.Split(fields[0], ",") {
				if name != "" {
					checks[name] = true
				}
			}
		}
	}
}

// standaloneComment reports whether only whitespace precedes the comment on
// its line (i.e. it is not trailing a statement).
func standaloneComment(fset *token.FileSet, c *ast.Comment, src []byte) bool {
	pos := fset.Position(c.Pos())
	if pos.Offset > len(src) {
		return false
	}
	lineStart := pos.Offset - (pos.Column - 1)
	if lineStart < 0 {
		return false
	}
	return strings.TrimSpace(string(src[lineStart:pos.Offset])) == ""
}

// allows reports whether check is suppressed at file:line.
func (idx directiveIndex) allows(file string, line int, check string) bool {
	checks := idx[file][line]
	return checks != nil && (checks[check] || checks["all"])
}
