package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// AllowDirective is one parsed //lint:allow comment: the checks it
// suppresses, the free-text reason that justifies the suppression, and where
// it sits. The repo's policy (enforced by the allowreason check) is that the
// reason is mandatory: a bare suppression hides an invariant violation
// without leaving the reviewer anything to audit.
type AllowDirective struct {
	// Position is the directive comment's own location.
	Position token.Position
	// Checks are the check IDs named by the first field ("all" for every
	// check).
	Checks []string
	// Reason is the free text following the check list ("" when missing).
	Reason string

	pos token.Pos // token position for reporting
}

// directiveIndex records, per file and line, which checks a //lint:allow
// comment suppresses, plus the parsed directive list for audit tooling
// (proteus-lint -allows) and the allowreason check. A trailing directive
// suppresses its own line; a directive alone on a line suppresses the line
// directly below it (so it can sit above the offending statement).
type directiveIndex struct {
	byFile map[string]map[int]map[string]bool
	list   []AllowDirective
}

func newDirectiveIndex() *directiveIndex {
	return &directiveIndex{byFile: make(map[string]map[int]map[string]bool)}
}

// allowPrefix is the directive marker. The comment form is
//
//	//lint:allow check1,check2 reason free text
//
// The special check name "all" suppresses every check on the line. The
// reason is required by the allowreason check.
const allowPrefix = "//lint:allow"

// collect scans a parsed file's comments for directives. src is the file's
// source bytes, used to tell trailing directives from standalone ones.
func (idx *directiveIndex) collect(fset *token.FileSet, f *ast.File, src []byte) {
	for _, group := range f.Comments {
		for _, c := range group.List {
			rest, ok := strings.CutPrefix(c.Text, allowPrefix)
			if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			pos := fset.Position(c.Pos())
			line := pos.Line
			if standaloneComment(fset, c, src) {
				line++
			}
			byLine := idx.byFile[pos.Filename]
			if byLine == nil {
				byLine = make(map[int]map[string]bool)
				idx.byFile[pos.Filename] = byLine
			}
			checks := byLine[line]
			if checks == nil {
				checks = make(map[string]bool)
				byLine[line] = checks
			}
			// Only the first field names checks; the rest is the free-text
			// reason.
			var names []string
			for _, name := range strings.Split(fields[0], ",") {
				if name != "" {
					checks[name] = true
					names = append(names, name)
				}
			}
			reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
			idx.list = append(idx.list, AllowDirective{
				Position: pos,
				Checks:   names,
				Reason:   reason,
				pos:      c.Pos(),
			})
		}
	}
}

// standaloneComment reports whether only whitespace precedes the comment on
// its line (i.e. it is not trailing a statement).
func standaloneComment(fset *token.FileSet, c *ast.Comment, src []byte) bool {
	pos := fset.Position(c.Pos())
	if pos.Offset > len(src) {
		return false
	}
	lineStart := pos.Offset - (pos.Column - 1)
	if lineStart < 0 {
		return false
	}
	return strings.TrimSpace(string(src[lineStart:pos.Offset])) == ""
}

// allows reports whether check is suppressed at file:line. The allowreason
// check itself can never be suppressed: the whole point of that check is that
// every directive carries an auditable reason, and letting a reasonless
// directive suppress its own audit would defeat it.
func (idx *directiveIndex) allows(file string, line int, check string) bool {
	if check == "allowreason" {
		return false
	}
	checks := idx.byFile[file][line]
	return checks != nil && (checks[check] || checks["all"])
}

// Directives lists the package's parsed //lint:allow comments sorted by
// position.
func (p *Package) Directives() []AllowDirective {
	out := append([]AllowDirective(nil), p.directives.list...)
	sortDirectives(out)
	return out
}

func sortDirectives(ds []AllowDirective) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i].Position, ds[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}

// CollectDirectives gathers every //lint:allow directive of the given
// packages in deterministic order; proteus-lint -allows prints this list so
// suppressions stay auditable in one place.
func CollectDirectives(pkgs []*Package) []AllowDirective {
	var out []AllowDirective
	for _, pkg := range pkgs {
		out = append(out, pkg.directives.list...)
	}
	sortDirectives(out)
	return out
}

// AllowReason enforces the suppression-hygiene half of the directive
// contract: every //lint:allow must say why. A suppression without a reason
// is indistinguishable from a silenced bug.
type AllowReason struct{}

// Name implements Checker.
func (AllowReason) Name() string { return "allowreason" }

// Doc implements Checker.
func (AllowReason) Doc() string {
	return "require every //lint:allow directive to carry a free-text reason"
}

// Run implements Checker.
func (AllowReason) Run(pass *Pass) {
	for _, d := range pass.directives.list {
		if d.Reason == "" {
			pass.Reportf(d.pos,
				"//lint:allow %s has no reason; append free text explaining why the suppression is sound",
				strings.Join(d.Checks, ","))
		}
	}
}
