package analysis

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// corpusFindings runs the full corpus registry over packages in the given
// order (nil = as loaded) and returns the findings.
func corpusFindings(t *testing.T, reorder func([]*Package) []*Package) []Finding {
	t.Helper()
	mod, pkgs, err := LoadModule(corpusRoot, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if reorder != nil {
		pkgs = reorder(pkgs)
	}
	return corpusRegistry().RunPackages(mod, pkgs)
}

// render exercises all three emitters over one finding set.
func render(t *testing.T, findings []Finding) (text, jsonOut, sarif string) {
	t.Helper()
	var b1, b2, b3 bytes.Buffer
	if err := WriteText(&b1, findings); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b2, findings); err != nil {
		t.Fatal(err)
	}
	if err := WriteSARIF(&b3, findings, corpusRegistry().Rules()); err != nil {
		t.Fatal(err)
	}
	return b1.String(), b2.String(), b3.String()
}

// TestEmitterDeterminism requires every output format to be byte-identical
// across repeated runs AND across shuffled package-load orders: module
// checkers re-sort their input and per-package findings are globally sorted,
// so load order must never leak into a report CI diffs.
func TestEmitterDeterminism(t *testing.T) {
	base := corpusFindings(t, nil)
	text0, json0, sarif0 := render(t, base)
	if len(base) == 0 {
		t.Fatal("corpus produced no findings")
	}

	reorders := map[string]func([]*Package) []*Package{
		"repeat": nil,
		"reversed": func(pkgs []*Package) []*Package {
			out := make([]*Package, len(pkgs))
			for i, p := range pkgs {
				out[len(pkgs)-1-i] = p
			}
			return out
		},
		"rotated": func(pkgs []*Package) []*Package {
			if len(pkgs) < 2 {
				return pkgs
			}
			return append(append([]*Package(nil), pkgs[len(pkgs)/2:]...), pkgs[:len(pkgs)/2]...)
		},
	}
	for name, reorder := range reorders {
		text, jsonOut, sarif := render(t, corpusFindings(t, reorder))
		if text != text0 {
			t.Errorf("%s: text report diverged", name)
		}
		if jsonOut != json0 {
			t.Errorf("%s: JSON report diverged", name)
		}
		if sarif != sarif0 {
			t.Errorf("%s: SARIF report diverged", name)
		}
	}

	// Spot-check the wire shapes without re-parsing: stable field order and
	// the rules table covering every check.
	if !strings.Contains(json0, "\"count\": ") || !strings.Contains(json0, "\"check\": ") {
		t.Errorf("JSON output missing expected fields:\n%s", json0)
	}
	for _, id := range []string{"nondet", "lockorder", "allowreason"} {
		if !strings.Contains(sarif0, "\"id\": \""+id+"\"") {
			t.Errorf("SARIF rules table missing %s", id)
		}
	}
	if !strings.Contains(sarif0, "\"version\": \"2.1.0\"") {
		t.Error("SARIF output missing version 2.1.0")
	}
}

// TestBaselineRoundTrip pins the baseline mechanism: write → read → filter
// suppresses exactly the recorded findings, matching by (file, check,
// message) with multiset semantics, and rejects unknown versions.
func TestBaselineRoundTrip(t *testing.T) {
	findings := corpusFindings(t, nil)
	if len(findings) < 2 {
		t.Fatal("corpus produced too few findings for the baseline test")
	}

	var buf bytes.Buffer
	if err := NewBaseline(findings).WriteBaseline(&buf); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := NewBaseline(findings).WriteBaseline(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("baseline serialization is not deterministic")
	}

	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	baseline, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Len() != len(findings) {
		t.Fatalf("baseline.Len() = %d, want %d", baseline.Len(), len(findings))
	}
	fresh, suppressed := baseline.Filter(findings)
	if len(fresh) != 0 || suppressed != len(findings) {
		t.Fatalf("full baseline: %d fresh, %d suppressed; want 0, %d", len(fresh), suppressed, len(findings))
	}

	// An empty baseline passes everything through.
	fresh, suppressed = NewBaseline(nil).Filter(findings)
	if len(fresh) != len(findings) || suppressed != 0 {
		t.Fatalf("empty baseline: %d fresh, %d suppressed", len(fresh), suppressed)
	}

	// Multiset semantics: one recorded entry absorbs at most one duplicate.
	dup := []Finding{findings[0], findings[0]}
	fresh, suppressed = NewBaseline(findings[:1]).Filter(dup)
	if len(fresh) != 1 || suppressed != 1 {
		t.Fatalf("multiset: %d fresh, %d suppressed; want 1, 1", len(fresh), suppressed)
	}

	// Matching ignores line/column — a moved finding stays baselined.
	moved := findings[0]
	moved.Pos.Line += 100
	fresh, _ = NewBaseline(findings[:1]).Filter([]Finding{moved})
	if len(fresh) != 0 {
		t.Fatal("baseline match must ignore line and column")
	}

	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":2,"findings":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBaseline(bad); err == nil || !strings.Contains(err.Error(), "unsupported version") {
		t.Fatalf("ReadBaseline(version 2) err = %v, want unsupported version", err)
	}
}

// TestWriteAllows pins the -allows audit surface: every directive appears
// with its checks and reason, deterministically ordered, and reasonless ones
// are called out.
func TestWriteAllows(t *testing.T) {
	_, pkgs, err := LoadModule(corpusRoot, []string{"./errcheck", "./allowreason"})
	if err != nil {
		t.Fatal(err)
	}
	dump := func() string {
		var b bytes.Buffer
		rel := func(fn string) string { return filepath.Base(fn) }
		if err := WriteAllows(&b, CollectDirectives(pkgs), rel); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first, second := dump(), dump()
	if first != second {
		t.Fatal("allows listing is not deterministic")
	}
	if !strings.Contains(first, "errcheck — suppression demo: best-effort cleanup") {
		t.Errorf("allows listing missing a reasoned directive:\n%s", first)
	}
	if !strings.Contains(first, "(no reason — fails the allowreason check)") {
		t.Errorf("allows listing does not call out reasonless directives:\n%s", first)
	}
	if strings.Count(first, "\n") < 5 {
		t.Errorf("allows listing too short:\n%s", first)
	}
}
