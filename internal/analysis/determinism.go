package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism enforces that the simulated-clock and plan-construction
// packages stay reproducible from a seed: the simulator's fidelity claim
// (tracking the testbed within ~1%, §6.1.5) and every regression test that
// compares two runs depend on it.
//
// It reports:
//   - wall-clock reads: time.Now, time.Since, time.Until, and timer
//     constructors (time.After, time.Tick, time.NewTimer, time.NewTicker,
//     time.AfterFunc, time.Sleep) — simulated time must come from the event
//     engine's clock;
//   - global math/rand state: package-level functions of math/rand and
//     math/rand/v2 (rand.Intn, rand.Float64, rand.Shuffle, ...), whose shared
//     seed makes runs irreproducible — randomness must flow through an
//     injected seeded generator (numeric.RNG or a *rand.Rand built from a
//     rand.NewSource the caller seeds);
//   - rand.New calls whose source argument is not a direct rand.NewSource /
//     NewPCG / NewChaCha8 construction, since the provenance of the seed
//     cannot be seen at the call site;
//   - range over a map, whose iteration order is randomized by the runtime.
//     The canonical fix — collect the keys, sort, iterate the slice — is
//     recognized and not reported; genuinely order-insensitive loops (pure
//     reductions) should carry a //lint:allow determinism comment saying so;
//   - unaccounted goroutines: a `go` statement must be fork-join structured —
//     a sync.WaitGroup.Add call before it in the same function, and a
//     function literal that defers the matching Done — so concurrency stays
//     a bounded, joined implementation detail (like the MILP solver's
//     speculative LP workers) rather than free-running state that can leak
//     scheduling order into results;
//   - select statements with two or more communication clauses: the runtime
//     picks among simultaneously ready cases uniformly at random, so a
//     multi-way select is a nondeterministic merge. Restructure around one
//     communication clause (plus an optional default); order-insensitive
//     merges should carry a //lint:allow determinism comment saying why.
type Determinism struct{}

// Name implements Checker.
func (Determinism) Name() string { return "determinism" }

// Doc implements Checker.
func (Determinism) Doc() string {
	return "forbid wall-clock reads, global math/rand and unsorted map iteration in seed-reproducible packages"
}

// wallClockFuncs are the package-level time functions that read or depend on
// the wall clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true, "Sleep": true,
}

// seededSourceCtors construct explicitly seeded math/rand sources; a
// rand.New wrapping one of these is deterministic iff its seed expression is
// (which the wall-clock rule covers separately).
var seededSourceCtors = map[string]bool{
	"NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

func isRandPkg(path string) bool { return path == "math/rand" || path == "math/rand/v2" }

// Run implements Checker.
func (d Determinism) Run(pass *Pass) {
	for _, f := range pass.Files {
		// Forbidden calls can appear anywhere, including package-level
		// initializers.
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				d.checkCall(pass, call)
			}
			return true
		})
		// Map-range loops are checked per function body so the sorted-keys
		// idiom can consult the rest of the enclosing body.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				d.checkRanges(pass, body)
				d.checkConcurrency(pass, body)
			}
			return true
		})
	}
}

// checkConcurrency reports unaccounted goroutines and multi-way selects
// directly inside body. Nested function literals are skipped — the walk in
// Run visits them with their own enclosing body.
func (d Determinism) checkConcurrency(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			// The spawned function literal is skipped by the FuncLit case on
			// the way down; Run walks it with its own enclosing body.
			d.checkGo(pass, body, n)
		case *ast.SelectStmt:
			if commClauseCount(n) > 1 {
				pass.Reportf(n.Pos(),
					"select with %d communication clauses chooses among ready cases at random; restructure around one communication (plus optional default), or annotate an order-insensitive merge with //lint:allow determinism", commClauseCount(n))
			}
		}
		return true
	})
}

// checkGo enforces fork-join structure on one go statement: a
// sync.WaitGroup.Add call earlier in the same function, and a spawned
// function literal that defers the matching Done.
func (d Determinism) checkGo(pass *Pass, body *ast.BlockStmt, g *ast.GoStmt) {
	if !d.hasWaitGroupAddBefore(pass, body, g.Pos()) {
		pass.Reportf(g.Pos(),
			"goroutine without a preceding sync.WaitGroup.Add in this function; fork-join account it (wg.Add before go, defer wg.Done inside) so the computation joins all workers before returning")
		return
	}
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok || !d.hasDeferredDone(pass, lit) {
		pass.Reportf(g.Pos(),
			"goroutine does not visibly defer sync.WaitGroup.Done; spawn a function literal whose first statement is defer wg.Done() so the join is auditable at the fork site")
	}
}

// hasWaitGroupAddBefore reports whether a sync.WaitGroup.Add call occurs
// before pos inside body.
func (d Determinism) hasWaitGroupAddBefore(pass *Pass, body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && call.Pos() < pos && d.isWaitGroupMethod(pass, call, "Add") {
			found = true
		}
		return !found
	})
	return found
}

// hasDeferredDone reports whether lit's body (not counting nested function
// literals) defers a sync.WaitGroup.Done call.
func (d Determinism) hasDeferredDone(pass *Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if ds, ok := n.(*ast.DeferStmt); ok && d.isWaitGroupMethod(pass, ds.Call, "Done") {
			found = true
		}
		return !found
	})
	return found
}

func (d Determinism) isWaitGroupMethod(pass *Pass, call *ast.CallExpr, name string) bool {
	fn := pass.CalleeFunc(call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" &&
		fn.Name() == name && recvTypeName(fn) == "WaitGroup"
}

// commClauseCount counts a select's communication clauses (default excluded).
func commClauseCount(s *ast.SelectStmt) int {
	n := 0
	for _, clause := range s.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
			n++
		}
	}
	return n
}

// checkRanges reports nondeterministic map ranges directly inside body.
// Nested function literals are skipped — the walk in Run visits them with
// their own (narrower) enclosing body.
func (d Determinism) checkRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if rng, ok := n.(*ast.RangeStmt); ok {
			d.checkRange(pass, body, rng)
		}
		return true
	})
}

func (d Determinism) checkCall(pass *Pass, call *ast.CallExpr) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() != nil {
		// Methods (e.g. (*rand.Rand).Intn on an injected generator, or
		// (time.Time).Sub) are fine: determinism is the instance's problem,
		// and instances are constructed from seeds.
		return
	}
	path := fn.Pkg().Path()
	switch {
	case path == "time" && wallClockFuncs[fn.Name()]:
		pass.Reportf(call.Pos(),
			"time.%s reads the wall clock in a seed-reproducible package; use the simulation engine clock or an injected time source", fn.Name())
	case isRandPkg(path):
		switch {
		case seededSourceCtors[fn.Name()]:
			// Explicit source construction: the seed expression is visible
			// here and separately subject to the wall-clock rule.
		case fn.Name() == "New":
			if !isSeededSourceCall(pass, call) {
				pass.Reportf(call.Pos(),
					"rand.New with an opaque source; construct the source with rand.NewSource(seed) at the call site so the seed is auditable")
			}
		default:
			pass.Reportf(call.Pos(),
				"global %s.%s uses shared, unseeded process-wide state; inject a seeded generator (numeric.RNG or rand.New(rand.NewSource(seed)))", pathBase(path), fn.Name())
		}
	}
}

// isSeededSourceCall reports whether every argument of a rand.New call is a
// direct rand.NewSource/NewPCG/NewChaCha8 construction.
func isSeededSourceCall(pass *Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		inner, ok := ast.Unparen(arg).(*ast.CallExpr)
		if !ok {
			return false
		}
		fn := pass.CalleeFunc(inner)
		if fn == nil || fn.Pkg() == nil || !isRandPkg(fn.Pkg().Path()) || !seededSourceCtors[fn.Name()] {
			return false
		}
	}
	return len(call.Args) > 0
}

func pathBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

func (d Determinism) checkRange(pass *Pass, enclosing *ast.BlockStmt, rng *ast.RangeStmt) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if sortedKeysIdiom(pass, enclosing, rng) {
		return
	}
	pass.Reportf(rng.Pos(),
		"range over map iterates in randomized order; collect and sort the keys first, or annotate an order-insensitive reduction with //lint:allow determinism")
}

// sortedKeysIdiom recognizes the canonical deterministic map iteration:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Slice(keys, ...)        // or sort.Strings/Ints/..., slices.Sort*
//
// i.e. a key-only range whose body is a single append into a slice that a
// sort/slices call later in the same function consumes.
func sortedKeysIdiom(pass *Pass, enclosing *ast.BlockStmt, rng *ast.RangeStmt) bool {
	if rng.Value != nil || rng.Key == nil || rng.Body == nil || len(rng.Body.List) != 1 {
		return false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	lhs, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	callRhs, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	fun, ok := ast.Unparen(callRhs.Fun).(*ast.Ident)
	if !ok || fun.Name != "append" {
		return false
	}
	if b, ok := pass.ObjectOf(fun).(*types.Builtin); !ok || b == nil {
		return false
	}
	keysObj := pass.ObjectOf(lhs)
	if keysObj == nil {
		return false
	}
	// A sort call mentioning the keys slice after the loop makes the
	// iteration order deterministic.
	sorted := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() {
			return true
		}
		fn := pass.CalleeFunc(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(pass, arg, keysObj) {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// mentionsObject reports whether expr references obj anywhere.
func mentionsObject(pass *Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
