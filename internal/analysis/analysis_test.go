package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// corpusRoot is the synthetic module holding one golden package per checker.
const corpusRoot = "testdata/src"

// loadCorpusPackage loads one package of the golden module with a fresh
// module instance (so tests are independent and order-insensitive).
func loadCorpusPackage(t *testing.T, dir string) *Package {
	t.Helper()
	_, pkgs, err := LoadModule(corpusRoot, []string{"./" + dir})
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loading %s: got %d packages, want 1", dir, len(pkgs))
	}
	return pkgs[0]
}

// wantMarker is the expectation comment in corpus files: a line carrying
// `// want <check>` must produce exactly one finding of that check.
const wantMarker = "// want "

// expectedLines parses the `// want <check>` markers of every file in the
// package and returns the set of lines the checker must flag.
func expectedLines(t *testing.T, pkg *Package, check string) map[string]bool {
	t.Helper()
	want := make(map[string]bool)
	for _, fn := range pkg.Filenames {
		f, err := os.Open(fn)
		if err != nil {
			t.Fatal(err)
		}
		scanner := bufio.NewScanner(f)
		for line := 1; scanner.Scan(); line++ {
			text := scanner.Text()
			i := strings.Index(text, wantMarker)
			if i < 0 {
				continue
			}
			if got := strings.TrimSpace(text[i+len(wantMarker):]); got == check {
				want[fmt.Sprintf("%s:%d", filepath.Base(fn), line)] = true
			}
		}
		if err := scanner.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	if len(want) == 0 {
		t.Fatalf("corpus %s has no `// want %s` markers", pkg.Path, check)
	}
	return want
}

// runGolden runs one checker over its corpus package and compares the
// flagged lines against the `// want` markers, in both directions.
func runGolden(t *testing.T, checker Checker, dir string) []Finding {
	t.Helper()
	pkg := loadCorpusPackage(t, dir)
	reg := &Registry{}
	reg.Register(checker)
	findings := reg.RunPackage(pkg)

	got := make(map[string]bool)
	for _, f := range findings {
		got[fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)] = true
	}
	want := expectedLines(t, pkg, checker.Name())
	for key := range want {
		if !got[key] {
			t.Errorf("%s: expected a %s finding at %s, got none", dir, checker.Name(), key)
		}
	}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)
		if !want[key] {
			t.Errorf("%s: unexpected finding: %v", dir, f)
		}
	}
	return findings
}

func TestDeterminismGolden(t *testing.T) { runGolden(t, Determinism{}, "determinism") }

func TestLockDisciplineGolden(t *testing.T) { runGolden(t, LockDiscipline{}, "lockdiscipline") }

func TestFloatEqGolden(t *testing.T) { runGolden(t, FloatEq{}, "floateq") }

func TestErrCheckGolden(t *testing.T) { runGolden(t, ErrCheck{}, "errcheck") }

// TestSuppressionDirectives pins the two //lint:allow forms (trailing and
// standalone-above) to actual suppression: every corpus file contains at
// least one directive, and no finding may land on a directive-carrying or
// directly-following line.
func TestSuppressionDirectives(t *testing.T) {
	for _, tc := range []struct {
		dir     string
		checker Checker
	}{
		{"determinism", Determinism{}},
		{"lockdiscipline", LockDiscipline{}},
		{"floateq", FloatEq{}},
		{"errcheck", ErrCheck{}},
	} {
		pkg := loadCorpusPackage(t, tc.dir)
		allowed := make(map[int]bool)
		for _, fn := range pkg.Filenames {
			data, err := os.ReadFile(fn)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				if !strings.Contains(line, allowPrefix) {
					continue
				}
				allowed[i+1] = true
				if strings.TrimSpace(line)[:2] == "//" {
					allowed[i+2] = true // standalone form covers the next line
				}
			}
		}
		if len(allowed) == 0 {
			t.Fatalf("corpus %s has no //lint:allow directives", tc.dir)
		}
		reg := &Registry{}
		reg.Register(tc.checker)
		for _, f := range reg.RunPackage(pkg) {
			if allowed[f.Pos.Line] {
				t.Errorf("%s: finding on a suppressed line: %v", tc.dir, f)
			}
		}
	}
}

// TestOutputDeterminism loads the whole corpus twice from scratch and
// requires the two formatted reports to be byte-identical and sorted: a
// linter whose own output order wobbles cannot gate CI.
func TestOutputDeterminism(t *testing.T) {
	report := func() string {
		reg := &Registry{}
		reg.Register(Determinism{}, "example.com/lintcheck/determinism")
		reg.Register(LockDiscipline{})
		reg.Register(FloatEq{}, "example.com/lintcheck/floateq")
		reg.Register(ErrCheck{})
		findings, err := reg.Run(corpusRoot, []string{"./..."})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, f := range findings {
			fmt.Fprintln(&b, f)
		}
		return b.String()
	}
	first, second := report(), report()
	if first != second {
		t.Fatalf("two runs over identical sources diverged:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	lines := strings.Split(strings.TrimSuffix(first, "\n"), "\n")
	if len(lines) < 10 {
		t.Fatalf("corpus run produced only %d findings; corpus or checkers broken", len(lines))
	}
	// Findings must be ordered by file then numeric position.
	type key struct {
		file      string
		line, col int
	}
	var prev key
	for _, l := range lines {
		parts := strings.SplitN(l, ":", 4)
		if len(parts) < 4 {
			t.Fatalf("malformed report line: %q", l)
		}
		var k key
		k.file = parts[0]
		fmt.Sscanf(parts[1], "%d", &k.line)
		fmt.Sscanf(parts[2], "%d", &k.col)
		if prev.file != "" && (k.file < prev.file ||
			(k.file == prev.file && (k.line < prev.line || (k.line == prev.line && k.col < prev.col)))) {
			t.Fatalf("report out of order at %q (after %v)", l, prev)
		}
		prev = k
	}
}

// TestScoping pins the package-prefix scoping DefaultRegistry relies on.
func TestScoping(t *testing.T) {
	s := scopedChecker{checker: FloatEq{}, prefixes: []string{"proteus/internal/lp", "proteus/internal/milp"}}
	for path, want := range map[string]bool{
		"proteus/internal/lp":        true,
		"proteus/internal/milp":      true,
		"proteus/internal/lp/sub":    true,
		"proteus/internal/lpx":       false,
		"proteus/internal/allocator": false,
	} {
		if got := s.applies(path); got != want {
			t.Errorf("applies(%q) = %v, want %v", path, got, want)
		}
	}
	if len((scopedChecker{checker: ErrCheck{}}).prefixes) != 0 {
		t.Fatal("unscoped checker should have no prefixes")
	}
	if !(scopedChecker{checker: ErrCheck{}}).applies("anything") {
		t.Fatal("unscoped checker must apply everywhere")
	}
}

// TestDefaultRegistryChecks guards the advertised checker set.
func TestDefaultRegistryChecks(t *testing.T) {
	reg := DefaultRegistry("proteus")
	var names []string
	for _, c := range reg.Checkers() {
		names = append(names, c.Name())
		if c.Doc() == "" {
			t.Errorf("checker %s has no doc line", c.Name())
		}
	}
	want := []string{"determinism", "lockdiscipline", "floateq", "errcheck"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("registry checks = %v, want %v", names, want)
	}
}
