package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// corpusRoot is the synthetic module holding one golden package per checker.
const corpusRoot = "testdata/src"

// loadCorpusPackage loads one package of the golden module with a fresh
// module instance (so tests are independent and order-insensitive).
func loadCorpusPackage(t *testing.T, dir string) *Package {
	t.Helper()
	_, pkgs, err := LoadModule(corpusRoot, []string{"./" + dir})
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loading %s: got %d packages, want 1", dir, len(pkgs))
	}
	return pkgs[0]
}

// wantMarker is the expectation comment in corpus files: a line carrying
// `// want <check>` must produce exactly one finding of that check.
const wantMarker = "// want "

// expectedLines parses the `// want <check>` markers of every file in the
// package and returns the set of lines the checker must flag.
func expectedLines(t *testing.T, pkg *Package, check string) map[string]bool {
	t.Helper()
	want := markerLines(t, pkg.Filenames, check)
	if len(want) == 0 {
		t.Fatalf("corpus %s has no `// want %s` markers", pkg.Path, check)
	}
	return want
}

// markerLines scans files for `// want <check>` markers without requiring any
// to exist — module-checker corpora include source-side helper packages whose
// files legitimately carry none.
func markerLines(t *testing.T, filenames []string, check string) map[string]bool {
	t.Helper()
	want := make(map[string]bool)
	for _, fn := range filenames {
		f, err := os.Open(fn)
		if err != nil {
			t.Fatal(err)
		}
		scanner := bufio.NewScanner(f)
		for line := 1; scanner.Scan(); line++ {
			text := scanner.Text()
			i := strings.Index(text, wantMarker)
			if i < 0 {
				continue
			}
			if got := strings.TrimSpace(text[i+len(wantMarker):]); got == check {
				want[fmt.Sprintf("%s:%d", filepath.Base(fn), line)] = true
			}
		}
		if err := scanner.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return want
}

// runGolden runs one checker over its corpus package and compares the
// flagged lines against the `// want` markers, in both directions.
func runGolden(t *testing.T, checker Checker, dir string) []Finding {
	t.Helper()
	pkg := loadCorpusPackage(t, dir)
	reg := &Registry{}
	reg.Register(checker)
	findings := reg.RunPackage(pkg)

	got := make(map[string]bool)
	for _, f := range findings {
		got[fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)] = true
	}
	want := expectedLines(t, pkg, checker.Name())
	for key := range want {
		if !got[key] {
			t.Errorf("%s: expected a %s finding at %s, got none", dir, checker.Name(), key)
		}
	}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)
		if !want[key] {
			t.Errorf("%s: unexpected finding: %v", dir, f)
		}
	}
	return findings
}

func TestDeterminismGolden(t *testing.T) { runGolden(t, Determinism{}, "determinism") }

func TestLockDisciplineGolden(t *testing.T) { runGolden(t, LockDiscipline{}, "lockdiscipline") }

func TestFloatEqGolden(t *testing.T) { runGolden(t, FloatEq{}, "floateq") }

func TestErrCheckGolden(t *testing.T) { runGolden(t, ErrCheck{}, "errcheck") }

// loadCorpus loads several corpus packages together for module-checker tests.
func loadCorpus(t *testing.T, dirs ...string) (*Module, []*Package) {
	t.Helper()
	patterns := make([]string, len(dirs))
	for i, d := range dirs {
		patterns[i] = "./" + d
	}
	mod, pkgs, err := LoadModule(corpusRoot, patterns)
	if err != nil {
		t.Fatalf("loading %v: %v", dirs, err)
	}
	if len(pkgs) != len(dirs) {
		t.Fatalf("loading %v: got %d packages, want %d", dirs, len(pkgs), len(dirs))
	}
	return mod, pkgs
}

// runModuleGolden runs one whole-module checker over a set of corpus packages
// and compares the flagged lines against the `// want` markers of all of
// them, in both directions.
func runModuleGolden(t *testing.T, checker ModuleChecker, dirs ...string) []Finding {
	t.Helper()
	mod, pkgs := loadCorpus(t, dirs...)
	reg := &Registry{}
	reg.RegisterModule(checker)
	findings := reg.RunModule(mod, pkgs)

	var files []string
	for _, pkg := range pkgs {
		files = append(files, pkg.Filenames...)
	}
	want := markerLines(t, files, checker.Name())
	if len(want) == 0 {
		t.Fatalf("corpus %v has no `// want %s` markers", dirs, checker.Name())
	}
	got := make(map[string]bool)
	for _, f := range findings {
		got[fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)] = true
	}
	for key := range want {
		if !got[key] {
			t.Errorf("%v: expected a %s finding at %s, got none", dirs, checker.Name(), key)
		}
	}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)
		if !want[key] {
			t.Errorf("%v: unexpected finding: %v", dirs, f)
		}
	}
	return findings
}

// corpusSink is the import path the nondet corpus treats as its
// seed-reproducible set.
const corpusSink = "example.com/lintcheck/nondetsink"

func TestNondetGolden(t *testing.T) {
	findings := runModuleGolden(t, Nondet{Sinks: []string{corpusSink}},
		"nondetsink", "nondethelper")

	// The acceptance shape: a wall-clock read two calls deep must surface
	// with its complete sink→source chain and the source's file:line.
	const wantChain = "nondetsink.Sample → nondethelper.Stamp → nondethelper.nowNanos → time.Now (nondethelper.go:"
	var chains []string
	for _, f := range findings {
		chains = append(chains, f.Message)
		if strings.Contains(f.Message, wantChain) {
			return
		}
	}
	t.Errorf("no finding carries the full call chain %q; got:\n%s", wantChain, strings.Join(chains, "\n"))
}

func TestLockOrderGolden(t *testing.T) {
	findings := runModuleGolden(t, LockOrder{}, "lockorder", "lockorderx", "lockhelper")

	var cycle, cross string
	for _, f := range findings {
		if strings.Contains(f.Message, "potential deadlock") {
			cycle = f.Message
		}
		if strings.Contains(f.Message, "cross-package lock chain") {
			cross = f.Message
		}
	}
	// The cycle report must carry both acquisition sites — one per edge of
	// the two-lock inversion — and the helper call chain of the second.
	if cycle == "" {
		t.Fatal("no lock-order cycle finding")
	}
	if got := strings.Count(cycle, "while acquiring"); got != 2 {
		t.Errorf("cycle finding names %d acquisition sites, want 2: %s", got, cycle)
	}
	for _, frag := range []string{
		"(lockorder.A).mu → (lockorder.B).mu → (lockorder.A).mu",
		"in (*lockorder.Pair).TransferAB",
		"via (*lockorder.Pair).TransferBA → (*lockorder.Pair).lockA",
	} {
		if !strings.Contains(cycle, frag) {
			t.Errorf("cycle finding missing %q: %s", frag, cycle)
		}
	}
	if cross == "" {
		t.Fatal("no cross-package lock chain finding")
	}
	for _, frag := range []string{
		"(lockorderx.Coordinator).mu",
		"(lockhelper.Registry).mu",
		"via (*lockorderx.Coordinator).Update → (*lockhelper.Registry).Put",
	} {
		if !strings.Contains(cross, frag) {
			t.Errorf("cross-package finding missing %q: %s", frag, cross)
		}
	}
}

// TestAllowReasonGolden computes its expectations from the corpus text
// itself: a reasonless directive cannot carry a `// want` marker, because the
// marker text would become its reason.
func TestAllowReasonGolden(t *testing.T) {
	pkg := loadCorpusPackage(t, "allowreason")
	want := make(map[int]bool)
	for _, fn := range pkg.Filenames {
		data, err := os.ReadFile(fn)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			at := strings.Index(line, allowPrefix)
			if at < 0 {
				continue
			}
			if len(strings.Fields(line[at+len(allowPrefix):])) == 1 {
				want[i+1] = true // check list only, no reason
			}
		}
	}
	if len(want) < 3 {
		t.Fatalf("allowreason corpus has only %d reasonless directives, want at least 3 (trailing, standalone, self-naming)", len(want))
	}
	reg := &Registry{}
	reg.Register(AllowReason{})
	findings := reg.RunPackage(pkg)
	got := make(map[int]bool)
	for _, f := range findings {
		if f.Check != "allowreason" {
			t.Fatalf("unexpected check %s", f.Check)
		}
		got[f.Pos.Line] = true
	}
	for line := range want {
		if !got[line] {
			t.Errorf("expected an allowreason finding at line %d, got none", line)
		}
	}
	for line := range got {
		if !want[line] {
			t.Errorf("unexpected allowreason finding at line %d", line)
		}
	}
}

// TestSuppressionDirectives pins the two //lint:allow forms (trailing and
// standalone-above) to actual suppression: every corpus file contains at
// least one directive, and no finding may land on a directive-carrying or
// directly-following line.
func TestSuppressionDirectives(t *testing.T) {
	for _, tc := range []struct {
		dir     string
		checker Checker
	}{
		{"determinism", Determinism{}},
		{"lockdiscipline", LockDiscipline{}},
		{"floateq", FloatEq{}},
		{"errcheck", ErrCheck{}},
	} {
		pkg := loadCorpusPackage(t, tc.dir)
		allowed := make(map[int]bool)
		for _, fn := range pkg.Filenames {
			data, err := os.ReadFile(fn)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				if !strings.Contains(line, allowPrefix) {
					continue
				}
				allowed[i+1] = true
				if strings.TrimSpace(line)[:2] == "//" {
					allowed[i+2] = true // standalone form covers the next line
				}
			}
		}
		if len(allowed) == 0 {
			t.Fatalf("corpus %s has no //lint:allow directives", tc.dir)
		}
		reg := &Registry{}
		reg.Register(tc.checker)
		for _, f := range reg.RunPackage(pkg) {
			if allowed[f.Pos.Line] {
				t.Errorf("%s: finding on a suppressed line: %v", tc.dir, f)
			}
		}
	}
}

// corpusRegistry mirrors DefaultRegistry's shape over the corpus module:
// every per-package and whole-module checker, with corpus-appropriate scopes.
func corpusRegistry() *Registry {
	reg := &Registry{}
	reg.Register(Determinism{}, "example.com/lintcheck/determinism")
	reg.Register(LockDiscipline{})
	reg.Register(FloatEq{}, "example.com/lintcheck/floateq")
	reg.Register(ErrCheck{})
	reg.Register(AllowReason{})
	reg.RegisterModule(Nondet{Sinks: []string{corpusSink}})
	reg.RegisterModule(LockOrder{})
	return reg
}

// TestOutputDeterminism loads the whole corpus twice from scratch and
// requires the two formatted reports to be byte-identical and sorted: a
// linter whose own output order wobbles cannot gate CI.
func TestOutputDeterminism(t *testing.T) {
	report := func() string {
		reg := corpusRegistry()
		findings, err := reg.Run(corpusRoot, []string{"./..."})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, f := range findings {
			fmt.Fprintln(&b, f)
		}
		return b.String()
	}
	first, second := report(), report()
	if first != second {
		t.Fatalf("two runs over identical sources diverged:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	lines := strings.Split(strings.TrimSuffix(first, "\n"), "\n")
	if len(lines) < 10 {
		t.Fatalf("corpus run produced only %d findings; corpus or checkers broken", len(lines))
	}
	// Findings must be ordered by file then numeric position.
	type key struct {
		file      string
		line, col int
	}
	var prev key
	for _, l := range lines {
		parts := strings.SplitN(l, ":", 4)
		if len(parts) < 4 {
			t.Fatalf("malformed report line: %q", l)
		}
		var k key
		k.file = parts[0]
		fmt.Sscanf(parts[1], "%d", &k.line)
		fmt.Sscanf(parts[2], "%d", &k.col)
		if prev.file != "" && (k.file < prev.file ||
			(k.file == prev.file && (k.line < prev.line || (k.line == prev.line && k.col < prev.col)))) {
			t.Fatalf("report out of order at %q (after %v)", l, prev)
		}
		prev = k
	}
}

// TestScoping pins the package-prefix scoping DefaultRegistry relies on.
func TestScoping(t *testing.T) {
	s := scopedChecker{checker: FloatEq{}, prefixes: []string{"proteus/internal/lp", "proteus/internal/milp"}}
	for path, want := range map[string]bool{
		"proteus/internal/lp":        true,
		"proteus/internal/milp":      true,
		"proteus/internal/lp/sub":    true,
		"proteus/internal/lpx":       false,
		"proteus/internal/allocator": false,
	} {
		if got := s.applies(path); got != want {
			t.Errorf("applies(%q) = %v, want %v", path, got, want)
		}
	}
	if len((scopedChecker{checker: ErrCheck{}}).prefixes) != 0 {
		t.Fatal("unscoped checker should have no prefixes")
	}
	if !(scopedChecker{checker: ErrCheck{}}).applies("anything") {
		t.Fatal("unscoped checker must apply everywhere")
	}
}

// TestDefaultRegistryChecks guards the advertised checker set.
func TestDefaultRegistryChecks(t *testing.T) {
	reg := DefaultRegistry("proteus")
	var names []string
	for _, c := range reg.Checkers() {
		names = append(names, c.Name())
		if c.Doc() == "" {
			t.Errorf("checker %s has no doc line", c.Name())
		}
	}
	want := []string{"determinism", "lockdiscipline", "floateq", "errcheck", "allowreason"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("registry checks = %v, want %v", names, want)
	}
	var modNames []string
	for _, c := range reg.ModuleCheckers() {
		modNames = append(modNames, c.Name())
		if c.Doc() == "" {
			t.Errorf("module checker %s has no doc line", c.Name())
		}
	}
	wantMod := []string{"nondet", "lockorder"}
	if strings.Join(modNames, ",") != strings.Join(wantMod, ",") {
		t.Fatalf("registry module checks = %v, want %v", modNames, wantMod)
	}
	var ids []string
	for _, r := range reg.Rules() {
		ids = append(ids, r.ID)
	}
	wantIDs := []string{"allowreason", "determinism", "errcheck", "floateq", "lockdiscipline", "lockorder", "nondet"}
	if strings.Join(ids, ",") != strings.Join(wantIDs, ",") {
		t.Fatalf("registry rules = %v, want %v", ids, wantIDs)
	}
}
