package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockDiscipline flags blocking operations performed while a sync.Mutex or
// sync.RWMutex is held in the same function body: channel sends and
// receives, select statements without a default case, range over a channel,
// time.Sleep, sync.WaitGroup.Wait / sync.Cond.Wait and sync.Once.Do (which
// blocks every caller until the first call returns). Blocking under a
// lock is how the serving data path deadlocks or convoys under load — the
// repo's convention (see internal/serving/worker.go) is to copy state out,
// unlock, then block.
//
// The analysis is intraprocedural and syntactic: it tracks Lock/RLock and
// Unlock/RUnlock calls on the same receiver expression in statement order,
// treats defer Unlock as holding the lock to the end of the function, and
// propagates unlocks out of non-terminating branches. Calls into other
// functions that might block are out of scope.
type LockDiscipline struct{}

// Name implements Checker.
func (LockDiscipline) Name() string { return "lockdiscipline" }

// Doc implements Checker.
func (LockDiscipline) Doc() string {
	return "flag channel operations and blocking calls made while a sync (RW)Mutex is held"
}

// Run implements Checker.
func (l LockDiscipline) Run(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				w := &lockWalker{pass: pass, held: map[string]token.Pos{}}
				w.walkStmts(body.List)
			}
			return true
		})
	}
}

// lockWalker tracks the set of held mutexes (keyed by the receiver
// expression's source form) through one function body.
type lockWalker struct {
	pass *Pass
	held map[string]token.Pos
}

func (w *lockWalker) clone() *lockWalker {
	c := &lockWalker{pass: w.pass, held: make(map[string]token.Pos, len(w.held))}
	for k, v := range w.held {
		c.held[k] = v
	}
	return c
}

// walkStmts processes statements in order, updating the held set.
func (w *lockWalker) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.walkStmt(s)
	}
}

func (w *lockWalker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, locked, ok := w.lockOp(s.X); ok {
			if locked {
				w.held[key] = s.Pos()
			} else {
				delete(w.held, key)
			}
			return
		}
		w.checkExpr(s.X)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held for the rest of the body —
		// exactly what the held set already models, so nothing to update.
		// Other deferred calls only run at return; skip their bodies.
	case *ast.SendStmt:
		w.flagIfHeld(s.Pos(), "channel send")
		w.checkExpr(s.Chan)
		w.checkExpr(s.Value)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.checkExpr(e)
		}
		for _, e := range s.Lhs {
			w.checkExpr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.checkExpr(e)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.checkExpr(e)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.checkExpr(s.Cond)
		w.walkBranch(s.Body)
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				w.walkBranch(e)
			case *ast.IfStmt:
				w.walkStmt(e)
			}
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond)
		}
		w.walkBranch(s.Body)
	case *ast.RangeStmt:
		if t := w.pass.TypeOf(s.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				w.flagIfHeld(s.Pos(), "range over channel")
			}
		}
		w.checkExpr(s.X)
		w.walkBranch(s.Body)
	case *ast.BlockStmt:
		w.walkStmts(s.List)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	case *ast.SelectStmt:
		if !selectHasDefault(s) {
			w.flagIfHeld(s.Pos(), "select without default case")
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				sub := w.clone()
				sub.walkStmts(cc.Body)
			}
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag)
		}
		w.walkCaseBodies(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.walkCaseBodies(s.Body)
	case *ast.GoStmt:
		// Launching a goroutine does not block; its body runs with its own
		// (empty) held set via the FuncLit walk in Run.
		for _, e := range s.Call.Args {
			w.checkExpr(e)
		}
	}
}

func (w *lockWalker) walkCaseBodies(body *ast.BlockStmt) {
	for _, clause := range body.List {
		if cc, ok := clause.(*ast.CaseClause); ok {
			sub := w.clone()
			sub.walkStmts(cc.Body)
		}
	}
}

// walkBranch walks a conditional block with a copy of the held set. Locks
// taken inside the branch stay branch-local, but unlocks performed by a
// branch that falls through (does not end in return/break/continue/goto)
// propagate to the outer state — so the common
//
//	mu.Lock(); if cond { mu.Unlock(); return }  // stays held after
//	mu.Lock(); if cond { ...; mu.Unlock() } else { mu.Unlock() }  // released
//
// shapes are both modeled without false positives.
func (w *lockWalker) walkBranch(body *ast.BlockStmt) {
	sub := w.clone()
	sub.walkStmts(body.List)
	if terminates(body) {
		return
	}
	for key := range w.held {
		if _, still := sub.held[key]; !still {
			delete(w.held, key)
		}
	}
}

// terminates reports whether the block's last statement transfers control
// away (so its lock-state changes never reach the code after the branch).
func terminates(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// checkExpr flags blocking operations inside an expression evaluated while
// locks are held. Function literals are skipped: they do not run here.
func (w *lockWalker) checkExpr(e ast.Expr) {
	if e == nil || len(w.held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.flagIfHeld(n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			if name, blocking := w.blockingCall(n); blocking {
				w.flagIfHeld(n.Pos(), name)
			}
		}
		return true
	})
}

// blockingCall reports calls that block by construction: time.Sleep,
// sync.WaitGroup.Wait, sync.Cond.Wait, and acquiring another sync lock.
func (w *lockWalker) blockingCall(call *ast.CallExpr) (string, bool) {
	fn := w.pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep", true
		}
	case "sync":
		recv := recvTypeName(fn)
		if fn.Name() == "Wait" && (recv == "WaitGroup" || recv == "Cond") {
			return "sync." + recv + ".Wait", true
		}
		// Once.Do blocks every caller until the first call's fn returns, so
		// it is an arbitrary-latency wait from the second caller's view.
		if fn.Name() == "Do" && recv == "Once" {
			return "sync.Once.Do", true
		}
	}
	return "", false
}

// lockOp classifies expr as a Lock/RLock (locked=true) or Unlock/RUnlock
// (locked=false) call on a sync.Mutex or sync.RWMutex, keyed by the receiver
// expression's source text.
func (w *lockWalker) lockOp(expr ast.Expr) (key string, locked, ok bool) {
	sel, locked, ok := mutexLockOp(w.pass, expr)
	if !ok {
		return "", false, false
	}
	return types.ExprString(sel.X), locked, true
}

// mutexLockOp classifies expr as a Lock/RLock (locked=true) or
// Unlock/RUnlock (locked=false) call on a sync.Mutex or sync.RWMutex and
// returns the selector so callers can key the receiver as they see fit
// (source text for the intraprocedural checker, canonical identity for the
// lock-order checker).
func mutexLockOp(pass *Pass, expr ast.Expr) (sel *ast.SelectorExpr, locked, ok bool) {
	call, isCall := ast.Unparen(expr).(*ast.CallExpr)
	if !isCall {
		return nil, false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, false, false
	}
	fn, _ := pass.ObjectOf(sel.Sel).(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, false, false
	}
	recv := recvTypeName(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return nil, false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return sel, true, true
	case "Unlock", "RUnlock":
		return sel, false, true
	}
	return nil, false, false
}

// recvTypeName returns the name of a method's receiver type ("" for plain
// functions).
func recvTypeName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, clause := range s.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func (w *lockWalker) flagIfHeld(pos token.Pos, what string) {
	if len(w.held) == 0 {
		return
	}
	// Report against the earliest held lock for a stable message.
	var key string
	var at token.Pos
	for k, p := range w.held {
		if key == "" || p < at || (p == at && k < key) {
			key, at = k, p
		}
	}
	w.pass.Reportf(pos, "%s while %s is locked (held since line %d); copy state out and release the lock before blocking",
		what, key, w.pass.Fset.Position(at).Line)
}
