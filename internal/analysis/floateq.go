package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands. In the simplex
// and branch-and-bound code a drifted 1e-17 residue on either side of an
// exact comparison silently changes pivot choices and therefore the returned
// plan; comparisons there must go through a tolerance (lp.Options.Tol,
// milp.Options.IntTol, or math.Abs(a-b) <= tol). Deliberate exact
// comparisons — e.g. skip-work fast paths that test for a value stored as
// exactly zero — should say so with //lint:allow floateq.
type FloatEq struct{}

// Name implements Checker.
func (FloatEq) Name() string { return "floateq" }

// Doc implements Checker.
func (FloatEq) Doc() string {
	return "flag ==/!= between floating-point operands in solver packages; compare within a tolerance instead"
}

// Run implements Checker.
func (FloatEq) Run(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			x, y := pass.Info.Types[bin.X], pass.Info.Types[bin.Y]
			if !isFloat(x.Type) || !isFloat(y.Type) {
				return true
			}
			if x.Value != nil && y.Value != nil {
				// Both sides constant: evaluated exactly at compile time.
				return true
			}
			pass.Reportf(bin.Pos(),
				"%s between float operands is exact; use a tolerance (lp.Options.Tol / math.Abs(a-b) <= tol) or annotate a deliberate exact comparison with //lint:allow floateq",
				bin.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&types.IsFloat != 0
}
