package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrCheck flags statements that call an in-module function and drop its
// error result on the floor. Within this repository an ignored error is
// almost always an allocation or validation failure silently swallowed — the
// exact failure mode PR 1's fallback chain exists to surface. Only functions
// defined in this module are checked: stdlib print-style calls whose errors
// are conventionally ignored stay quiet. An explicit `_ =` assignment is
// treated as a deliberate, visible discard and is not flagged.
type ErrCheck struct{}

// Name implements Checker.
func (ErrCheck) Name() string { return "errcheck" }

// Doc implements Checker.
func (ErrCheck) Doc() string {
	return "flag discarded error results from functions defined in this module"
}

// Run implements Checker.
func (e ErrCheck) Run(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			e.checkCall(pass, call)
			return true
		})
	}
}

func (e ErrCheck) checkCall(pass *Pass, call *ast.CallExpr) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	if path != pass.Module && !strings.HasPrefix(path, pass.Module+"/") {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return
	}
	results := sig.Results()
	errAt := -1
	for i := 0; i < results.Len(); i++ {
		if isErrorType(results.At(i).Type()) {
			errAt = i
		}
	}
	if errAt < 0 {
		return
	}
	pass.Reportf(call.Pos(),
		"result %d (error) of %s.%s is discarded; handle it or assign it to _ explicitly",
		errAt, pathBase(path), fn.Name())
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}
