package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrCheck flags in-module calls whose error result is dropped — either a
// bare expression statement or a discard through the blank identifier
// (`_ = f()`, `x, _ := g()`). Within this repository an ignored error is
// almost always an allocation or validation failure silently swallowed — the
// exact failure mode PR 1's fallback chain exists to surface. Blank-
// identifier discards were originally treated as deliberate and exempt;
// experience says they hide exactly the same bugs with a veneer of intent,
// so a discard that really is sound must now carry a //lint:allow errcheck
// with its reason. Only functions defined in this module are checked: stdlib
// print-style calls whose errors are conventionally ignored stay quiet.
type ErrCheck struct{}

// Name implements Checker.
func (ErrCheck) Name() string { return "errcheck" }

// Doc implements Checker.
func (ErrCheck) Doc() string {
	return "flag discarded error results (dropped or blank-assigned) from functions defined in this module"
}

// Run implements Checker.
func (e ErrCheck) Run(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					e.checkCall(pass, call, -1)
				}
			case *ast.AssignStmt:
				e.checkAssign(pass, n)
			}
			return true
		})
	}
}

// checkAssign flags error results assigned to the blank identifier. Two
// shapes: a multi-value call (`x, _ := g()`) where the error position is
// blank, and pairwise assignment (`_ = f()`) where the sole result is an
// error.
func (e ErrCheck) checkAssign(pass *Pass, assign *ast.AssignStmt) {
	if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		errAt := e.moduleErrResult(pass, call)
		if errAt < 0 || errAt >= len(assign.Lhs) || !isBlank(assign.Lhs[errAt]) {
			return
		}
		e.checkCall(pass, call, errAt)
		return
	}
	if len(assign.Rhs) == len(assign.Lhs) {
		for i := range assign.Rhs {
			call, ok := ast.Unparen(assign.Rhs[i]).(*ast.CallExpr)
			if !ok || !isBlank(assign.Lhs[i]) {
				continue
			}
			e.checkCall(pass, call, 0)
		}
	}
}

// moduleErrResult returns the index of call's error result when the callee
// is an in-module function that has one, else -1.
func (e ErrCheck) moduleErrResult(pass *Pass, call *ast.CallExpr) int {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return -1
	}
	path := fn.Pkg().Path()
	if path != pass.Module && !strings.HasPrefix(path, pass.Module+"/") {
		return -1
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return -1
	}
	results := sig.Results()
	errAt := -1
	for i := 0; i < results.Len(); i++ {
		if isErrorType(results.At(i).Type()) {
			errAt = i
		}
	}
	return errAt
}

// checkCall reports the discarded error of one in-module call. blankAt < 0
// means the whole statement drops every result; otherwise the error result
// went to the blank identifier.
func (e ErrCheck) checkCall(pass *Pass, call *ast.CallExpr, blankAt int) {
	errAt := e.moduleErrResult(pass, call)
	if errAt < 0 {
		return
	}
	fn := pass.CalleeFunc(call)
	how := "discarded"
	if blankAt >= 0 {
		how = "discarded via the blank identifier"
	}
	pass.Reportf(call.Pos(),
		"result %d (error) of %s.%s is %s; handle it or annotate the deliberate discard with //lint:allow errcheck",
		errAt, pathBase(fn.Pkg().Path()), fn.Name(), how)
}

func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}
