package analysis

import (
	"fmt"
	"strings"
	"testing"
)

// dumpGraph renders a call graph as one deterministic string — node and edge
// order are part of the graph's contract, so the dump doubles as the
// determinism probe.
func dumpGraph(g *CallGraph) string {
	var b strings.Builder
	for _, n := range g.Nodes() {
		fmt.Fprintf(&b, "%s\n", g.shortName(n.Name))
		for _, e := range n.Edges {
			fmt.Fprintf(&b, "  -> %s [%s]\n", g.shortName(e.Callee.Name), e.Kind)
		}
	}
	return b.String()
}

// TestCallGraphEdges pins the three resolution strategies on the nondet
// corpus: static calls (direct and cross-package), interface dispatch
// over-approximated to every in-module implementation, and function values
// tracked one assignment deep.
func TestCallGraphEdges(t *testing.T) {
	mod, pkgs := loadCorpus(t, "nondetsink", "nondethelper")
	g := BuildCallGraph(mod.Path, pkgs)

	edges := make(map[string]CGEdgeKind)
	for _, n := range g.Nodes() {
		for _, e := range n.Edges {
			edges[g.shortName(n.Name)+" -> "+g.shortName(e.Callee.Name)] = e.Kind
		}
	}
	for key, kind := range map[string]CGEdgeKind{
		"nondetsink.Sample -> nondethelper.Stamp":             EdgeStatic,
		"nondethelper.Stamp -> nondethelper.nowNanos":         EdgeStatic,
		"nondetsink.Total -> nondethelper.SortedTotal":        EdgeStatic,
		"nondetsink.ViaFuncValue -> nondethelper.Stamp":       EdgeFuncValue,
		"nondetsink.Ticks -> (nondethelper.WallClock).Ticks":  EdgeInterface,
		"nondetsink.Ticks -> (nondethelper.FixedClock).Ticks": EdgeInterface,
	} {
		if got, ok := edges[key]; !ok {
			t.Errorf("missing edge %s", key)
		} else if got != kind {
			t.Errorf("edge %s resolved as %s, want %s", key, got, kind)
		}
	}
	// Out-of-module callees (time.Now, os.Environ, sort.Strings) must not
	// appear as edges.
	for key := range edges {
		if strings.Contains(key, "time.") || strings.Contains(key, "os.") || strings.Contains(key, "sort.") {
			t.Errorf("out-of-module edge leaked into the graph: %s", key)
		}
	}
}

// TestCallGraphDeterminism requires two independent loads and builds to
// produce byte-identical graphs.
func TestCallGraphDeterminism(t *testing.T) {
	build := func() string {
		mod, pkgs := loadCorpus(t, "nondetsink", "nondethelper", "lockorder", "lockorderx", "lockhelper")
		return dumpGraph(BuildCallGraph(mod.Path, pkgs))
	}
	first, second := build(), build()
	if first != second {
		t.Fatalf("call graph dump diverged between builds:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	if !strings.Contains(first, "(*lockorder.Pair).TransferBA\n  -> (*lockorder.Pair).lockA [static]") {
		t.Fatalf("expected method edge missing from dump:\n%s", first)
	}
}
