package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// LockOrder is the whole-module lock-ordering checker. The intraprocedural
// lockdiscipline check forbids blocking *operations* under a held mutex, but
// it cannot see the classic two-function deadlock: f locks A then calls into
// a function that locks B, while g locks B then (possibly packages away)
// locks A. LockOrder extracts per-function held-lock/acquire facts with the
// same mutex tracking lockdiscipline uses, composes them over the module
// call graph into a global lock-ordering graph, and reports
//
//   - cycles in that graph as potential deadlocks, with every edge's
//     acquisition site and call chain in the message, and
//   - acquire-while-holding chains that cross a package boundary (a lock in
//     one package held while a call chain into another package acquires a
//     second lock) — the shape under which independently-developed packages
//     silently establish incompatible orders.
//
// Lock identity is the struct field path keyed by the declaring named type —
// "(proteus/internal/serving.Server).mu" — so every instance of a type
// shares one graph node (the over-approximation that makes cross-instance
// deadlocks visible). Package-level mutexes are keyed by qualified variable
// name, function-local ones by function name. Acquiring a lock with the same
// identity as one already held is skipped: distinct instances of one type
// (tree nodes, per-device workers) are indistinguishable statically and
// would drown the report in false self-cycles.
//
// Function literals run with a fresh (empty) held set — closures execute as
// goroutines or callbacks, not inline under the caller's locks — and
// deferred calls contribute their transitive acquisitions but no
// held-at-call pairs, since the held set at return time is not statically
// meaningful. Both choices under-approximate; they are documented here so a
// quiet report can be audited against them.
type LockOrder struct{}

// Name implements ModuleChecker.
func (LockOrder) Name() string { return "lockorder" }

// Doc implements ModuleChecker.
func (LockOrder) Doc() string {
	return "detect lock-order cycles and cross-package acquire-while-holding chains over the module call graph"
}

// loAcquire is one direct Lock/RLock site with the locks held at that point.
type loAcquire struct {
	lock string
	pos  token.Pos
	held map[string]token.Pos // snapshot, including this lock's precursors only
}

// loCall is one in-module call made while at least zero locks are held.
// Calls with an empty held set still matter: they carry the callee's
// transitive acquisitions up the graph.
type loCall struct {
	edges []CGEdge
	pos   token.Pos
	held  map[string]token.Pos
}

// loSummary is one function's lock behavior.
type loSummary struct {
	acquires []loAcquire
	calls    []loCall
}

// loWitness explains how a function (transitively) acquires a lock: either a
// direct site or a call into via at callPos.
type loWitness struct {
	pos     token.Pos // direct acquire site, or the call site toward via
	via     *CGNode   // nil for direct acquisitions
	callPos token.Pos
}

// loEdge is one edge of the global lock-ordering graph: from held while
// acquiring to.
type loEdge struct {
	from, to string
	holder   *CGNode   // function that held from
	holdPos  token.Pos // where from was acquired (or the earliest held site)
	site     token.Pos // report anchor: the acquire or call site in holder
	chain    []*CGNode // call chain holder→…→acquirer; empty for direct
	finalPos token.Pos // the Lock() site that takes to
	acquirer *CGNode   // function whose body contains finalPos
}

// RunModule implements ModuleChecker.
func (l LockOrder) RunModule(mp *ModulePass) {
	cg := mp.CallGraph()
	summaries := make(map[*CGNode]*loSummary)
	for _, node := range cg.Nodes() {
		summaries[node] = l.summarize(mp, node)
	}
	acquired := l.transitiveAcquires(cg, summaries)
	edges, order := l.lockGraph(cg, summaries, acquired)
	inCycle := l.reportCycles(mp, cg, edges, order)
	l.reportCrossPackage(mp, cg, edges, order, inCycle)
}

// summarize walks one function body tracking the held set (Lock/RLock add,
// Unlock/RUnlock remove, defer Unlock holds to the end, branch-local unlocks
// propagate out of falling-through branches — the same model lockdiscipline
// uses) and records every acquire and every in-module call with its held
// snapshot.
func (l LockOrder) summarize(mp *ModulePass, node *CGNode) *loSummary {
	sum := &loSummary{}
	edgesAt := make(map[token.Pos][]CGEdge)
	for _, e := range node.Edges {
		edgesAt[e.Site] = append(edgesAt[e.Site], e)
	}
	w := &loWalker{
		pass:    mp.pass(node.Pkg),
		node:    node,
		sum:     sum,
		edgesAt: edgesAt,
		held:    map[string]token.Pos{},
	}
	w.walkStmts(node.Body.List)
	return sum
}

// transitiveAcquires computes, per function, every lock it may acquire
// directly or through callees, with a deterministic witness path. The
// fixpoint iterates nodes in sorted order until stable; the first witness
// found for a lock wins, so reports do not wobble between equivalent paths.
func (LockOrder) transitiveAcquires(cg *CallGraph, summaries map[*CGNode]*loSummary) map[*CGNode]map[string]loWitness {
	acquired := make(map[*CGNode]map[string]loWitness)
	for _, node := range cg.Nodes() {
		m := make(map[string]loWitness)
		for _, a := range summaries[node].acquires {
			if _, ok := m[a.lock]; !ok {
				m[a.lock] = loWitness{pos: a.pos}
			}
		}
		acquired[node] = m
	}
	for changed := true; changed; {
		changed = false
		for _, node := range cg.Nodes() {
			m := acquired[node]
			for _, e := range node.Edges {
				callee := acquired[e.Callee]
				keys := sortedKeys(callee)
				for _, lock := range keys {
					if _, ok := m[lock]; !ok {
						m[lock] = loWitness{pos: e.Site, via: e.Callee, callPos: e.Site}
						changed = true
					}
				}
			}
		}
	}
	return acquired
}

// lockGraph composes the per-function facts into global ordered-acquisition
// edges. For each (held h, acquire L) pair — direct, or through a call whose
// callee transitively acquires L — one deterministic witness edge h→L is
// kept.
func (LockOrder) lockGraph(cg *CallGraph, summaries map[*CGNode]*loSummary, acquired map[*CGNode]map[string]loWitness) (map[[2]string]*loEdge, []string) {
	edges := make(map[[2]string]*loEdge)
	keep := func(e *loEdge) {
		k := [2]string{e.from, e.to}
		if _, ok := edges[k]; !ok {
			edges[k] = e
		}
	}
	for _, node := range cg.Nodes() {
		sum := summaries[node]
		for _, a := range sum.acquires {
			for _, h := range sortedKeys2(a.held) {
				if h == a.lock {
					continue
				}
				keep(&loEdge{
					from: h, to: a.lock, holder: node, holdPos: a.held[h],
					site: a.pos, finalPos: a.pos, acquirer: node,
				})
			}
		}
		for _, c := range sum.calls {
			if len(c.held) == 0 {
				continue
			}
			for _, e := range c.edges {
				for _, lock := range sortedKeys(acquired[e.Callee]) {
					// Walk the witness chain to the function whose body
					// takes the lock.
					chain := []*CGNode{e.Callee}
					final := e.Callee
					w := acquired[e.Callee][lock]
					for w.via != nil {
						final = w.via
						chain = append(chain, w.via)
						w = acquired[w.via][lock]
					}
					for _, h := range sortedKeys2(c.held) {
						if h == lock {
							continue
						}
						keep(&loEdge{
							from: h, to: lock, holder: node, holdPos: c.held[h],
							site: c.pos, chain: chain, finalPos: w.pos, acquirer: final,
						})
					}
				}
			}
		}
	}
	var order []string
	seen := make(map[string]bool)
	for k := range edges {
		for _, id := range []string{k[0], k[1]} {
			if !seen[id] {
				seen[id] = true
				order = append(order, id)
			}
		}
	}
	sort.Strings(order)
	return edges, order
}

// reportCycles finds strongly connected components of the lock graph and
// reports one deterministic cycle per component, with every edge's
// acquisition sites. Returns the set of locks inside reported cycles so the
// cross-package report does not duplicate them.
func (l LockOrder) reportCycles(mp *ModulePass, cg *CallGraph, edges map[[2]string]*loEdge, order []string) map[string]bool {
	adj := make(map[string][]string)
	for k := range edges {
		adj[k[0]] = append(adj[k[0]], k[1])
	}
	for _, succ := range adj {
		sort.Strings(succ)
	}
	inCycle := make(map[string]bool)
	for _, scc := range stronglyConnected(order, adj) {
		if len(scc) < 2 {
			continue
		}
		inSCC := make(map[string]bool, len(scc))
		for _, id := range scc {
			inSCC[id] = true
		}
		cycle := walkCycle(scc[0], adj, inSCC)
		for _, id := range cycle[:len(cycle)-1] {
			inCycle[id] = true
		}
		var parts []string
		var anchor token.Pos
		for i := 0; i+1 < len(cycle); i++ {
			e := edges[[2]string{cycle[i], cycle[i+1]}]
			if i == 0 {
				anchor = e.site
			}
			parts = append(parts, l.edgeDesc(mp, cg, e))
		}
		mp.Reportf(anchor,
			"potential deadlock: lock-order cycle %s; %s; establish one global acquisition order or annotate the audited exception with //lint:allow lockorder",
			strings.Join(shortLocks(cg, cycle), " → "), strings.Join(parts, "; "))
	}
	return inCycle
}

// reportCrossPackage reports acquire-while-holding edges whose holder and
// acquirer live in different packages, skipping locks already reported in a
// cycle.
func (l LockOrder) reportCrossPackage(mp *ModulePass, cg *CallGraph, edges map[[2]string]*loEdge, order []string, inCycle map[string]bool) {
	for _, from := range order {
		for _, to := range order {
			e := edges[[2]string{from, to}]
			if e == nil || (inCycle[from] && inCycle[to]) {
				continue
			}
			if e.holder.Pkg.Path == e.acquirer.Pkg.Path {
				continue
			}
			mp.Reportf(e.site,
				"cross-package lock chain: %s; nested acquisition across packages fixes a lock order other call paths may invert — keep the second acquisition package-local, or annotate the established order with //lint:allow lockorder",
				l.edgeDesc(mp, cg, e))
		}
	}
}

// edgeDesc renders one lock-graph edge with both sites: where the held lock
// was taken and where the second lock is acquired, via which call chain.
func (l LockOrder) edgeDesc(mp *ModulePass, cg *CallGraph, e *loEdge) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (held since %s) while acquiring %s at %s",
		cg.shortName(e.from), shortPos(mp.Fset, e.holdPos), cg.shortName(e.to), shortPos(mp.Fset, e.finalPos))
	if len(e.chain) > 0 {
		names := []string{cg.shortName(e.holder.Name)}
		for _, n := range e.chain {
			names = append(names, cg.shortName(n.Name))
		}
		fmt.Fprintf(&b, " via %s", strings.Join(names, " → "))
	} else {
		fmt.Fprintf(&b, " in %s", cg.shortName(e.holder.Name))
	}
	return b.String()
}

func shortLocks(cg *CallGraph, ids []string) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = cg.shortName(id)
	}
	return out
}

// shortPos renders a position as basename:line so messages stay
// byte-deterministic across checkouts.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

func sortedKeys(m map[string]loWitness) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeys2(m map[string]token.Pos) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// stronglyConnected is an iterative Tarjan over the lock graph, visiting
// roots and successors in sorted order so component order is deterministic.
func stronglyConnected(order []string, adj map[string][]string) [][]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Strings(scc)
			sccs = append(sccs, scc)
		}
	}
	for _, v := range order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return sccs
}

// walkCycle extracts one deterministic cycle through start inside an SCC by
// always following the smallest in-SCC successor; it terminates because
// every node of a non-trivial SCC has an in-SCC successor.
func walkCycle(start string, adj map[string][]string, inSCC map[string]bool) []string {
	cycle := []string{start}
	visited := map[string]bool{start: true}
	cur := start
	for {
		nextHop := ""
		for _, w := range adj[cur] {
			if inSCC[w] {
				nextHop = w
				break
			}
		}
		if nextHop == "" {
			return cycle // unreachable for a non-trivial SCC; guards a stall
		}
		cycle = append(cycle, nextHop)
		if nextHop == start {
			return cycle
		}
		if visited[nextHop] {
			// Closed a loop that does not pass through start; rotate to it.
			for i, id := range cycle[:len(cycle)-1] {
				if id == nextHop {
					return cycle[i:]
				}
			}
			return cycle
		}
		visited[nextHop] = true
		cur = nextHop
	}
}

// loWalker tracks held locks through one function body, mirroring
// lockdiscipline's branch model, and records acquire/call events into the
// node summary.
type loWalker struct {
	pass    *Pass
	node    *CGNode
	sum     *loSummary
	edgesAt map[token.Pos][]CGEdge
	held    map[string]token.Pos
}

func (w *loWalker) clone() *loWalker {
	c := &loWalker{pass: w.pass, node: w.node, sum: w.sum, edgesAt: w.edgesAt,
		held: make(map[string]token.Pos, len(w.held))}
	for k, v := range w.held {
		c.held[k] = v
	}
	return c
}

func (w *loWalker) snapshot() map[string]token.Pos {
	s := make(map[string]token.Pos, len(w.held))
	for k, v := range w.held {
		s[k] = v
	}
	return s
}

func (w *loWalker) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.walkStmt(s)
	}
}

func (w *loWalker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if sel, locked, ok := mutexLockOp(w.pass, s.X); ok {
			key := lockKey(w.pass, w.node, sel.X)
			if locked {
				w.sum.acquires = append(w.sum.acquires, loAcquire{lock: key, pos: s.Pos(), held: w.snapshot()})
				w.held[key] = s.Pos()
			} else {
				delete(w.held, key)
			}
			return
		}
		w.scanExpr(s.X)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to the end of the body —
		// already what the held set models. Other deferred calls run at
		// return with an unknowable held set: record their transitive
		// acquisitions (empty held) but no held-at-call pairs.
		if _, _, ok := mutexLockOp(w.pass, s.Call); ok {
			return
		}
		if edges := w.edgesAt[s.Call.Pos()]; len(edges) > 0 {
			w.sum.calls = append(w.sum.calls, loCall{edges: edges, pos: s.Call.Pos(), held: map[string]token.Pos{}})
		}
		for _, a := range s.Call.Args {
			w.scanExpr(a)
		}
	case *ast.SendStmt:
		w.scanExpr(s.Chan)
		w.scanExpr(s.Value)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scanExpr(e)
		}
		for _, e := range s.Lhs {
			w.scanExpr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.scanExpr(e)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scanExpr(e)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.scanExpr(s.Cond)
		w.walkBranch(s.Body)
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				w.walkBranch(e)
			case *ast.IfStmt:
				w.walkStmt(e)
			}
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond)
		}
		w.walkBranch(s.Body)
	case *ast.RangeStmt:
		w.scanExpr(s.X)
		w.walkBranch(s.Body)
	case *ast.BlockStmt:
		w.walkStmts(s.List)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				sub := w.clone()
				sub.walkStmts(cc.Body)
			}
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag)
		}
		w.walkCaseBodies(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.walkCaseBodies(s.Body)
	case *ast.GoStmt:
		// The spawned call runs without the caller's locks; its transitive
		// acquisitions still propagate (empty held).
		if edges := w.edgesAt[s.Call.Pos()]; len(edges) > 0 {
			w.sum.calls = append(w.sum.calls, loCall{edges: edges, pos: s.Call.Pos(), held: map[string]token.Pos{}})
		}
		for _, e := range s.Call.Args {
			w.scanExpr(e)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.walkFuncLit(lit)
		}
	}
}

func (w *loWalker) walkCaseBodies(body *ast.BlockStmt) {
	for _, clause := range body.List {
		if cc, ok := clause.(*ast.CaseClause); ok {
			sub := w.clone()
			sub.walkStmts(cc.Body)
		}
	}
}

// walkBranch mirrors lockdiscipline: a conditional block walks a copy of the
// held set; unlocks performed by a falling-through branch propagate out.
func (w *loWalker) walkBranch(body *ast.BlockStmt) {
	sub := w.clone()
	sub.walkStmts(body.List)
	if terminates(body) {
		return
	}
	for key := range w.held {
		if _, still := sub.held[key]; !still {
			delete(w.held, key)
		}
	}
}

// scanExpr records in-module calls inside an expression with the current
// held set, and walks function literals with a fresh one.
func (w *loWalker) scanExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.walkFuncLit(n)
			return false
		case *ast.CallExpr:
			if edges := w.edgesAt[n.Pos()]; len(edges) > 0 {
				w.sum.calls = append(w.sum.calls, loCall{edges: edges, pos: n.Pos(), held: w.snapshot()})
			}
		}
		return true
	})
}

// walkFuncLit walks a literal's body with an empty held set; its events are
// recorded under the enclosing declared function (matching the call graph's
// attribution).
func (w *loWalker) walkFuncLit(lit *ast.FuncLit) {
	sub := &loWalker{pass: w.pass, node: w.node, sum: w.sum, edgesAt: w.edgesAt, held: map[string]token.Pos{}}
	sub.walkStmts(lit.Body.List)
}

// lockKey canonicalizes a mutex receiver expression to a module-wide lock
// identity:
//
//   - struct fields key by declaring named type — "(pkg.Type).mu" — merging
//     all instances;
//   - an identifier whose type is a named struct embedding the mutex keys as
//     "(pkg.Type).Mutex";
//   - package-level variables key as "pkg.var";
//   - function locals and unrecognized shapes key per function, which keeps
//     them out of cross-function ordering claims.
func lockKey(pass *Pass, node *CGNode, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if named := derefNamed(pass.TypeOf(e.X)); named != nil {
			return "(" + qualifiedTypeName(named) + ")." + e.Sel.Name
		}
		return lockKey(pass, node, e.X) + "." + e.Sel.Name
	case *ast.Ident:
		if v, ok := pass.ObjectOf(e).(*types.Var); ok {
			if named := derefNamed(v.Type()); named != nil && !isSyncLockType(named) {
				return "(" + qualifiedTypeName(named) + ").Mutex"
			}
			if pass.Pkg != nil && v.Parent() == pass.Pkg.Scope() {
				return pass.Path + "." + e.Name
			}
		}
		return node.Name + "$" + e.Name
	case *ast.UnaryExpr:
		return lockKey(pass, node, e.X)
	default:
		return node.Name + "$" + types.ExprString(e)
	}
}

// derefNamed unwraps pointers and returns the named type, or nil.
func derefNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func qualifiedTypeName(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

func isSyncLockType(named *types.Named) bool {
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}
