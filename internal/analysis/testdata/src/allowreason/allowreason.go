// Package allowreason is the golden corpus for the allowreason checker:
// every //lint:allow directive must carry a free-text reason after the check
// list. The expectations here are computed by the test (a reasonless
// directive cannot also carry a `// want` marker — the marker text would
// become its reason), so this file just exercises both directive forms with
// and without reasons.
package allowreason

import "errors"

func mayFail() error { return errors.New("boom") }

// trailing form, no reason: flagged.
func bad() {
	mayFail() //lint:allow errcheck
}

// standalone form, no reason: flagged.
func alsoBad() {
	//lint:allow errcheck
	mayFail()
}

// naming allowreason in the check list does not self-suppress the hygiene
// finding: a reasonless directive is flagged regardless.
func sneaky() {
	mayFail() //lint:allow errcheck,allowreason
}

// both forms with reasons: clean.
func good() {
	mayFail() //lint:allow errcheck corpus demo: best-effort cleanup
	//lint:allow errcheck corpus demo: standalone form with a reason
	mayFail()
}
