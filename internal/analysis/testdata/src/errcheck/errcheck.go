// Package errcheck is the golden corpus for the errcheck checker: error
// results of in-module calls dropped on the floor.
package errcheck

import (
	"errors"
	"fmt"

	"example.com/lintcheck/errhelper"
)

func mayFail() error { return errors.New("boom") }

func valueAndError() (int, error) { return 0, nil }

type store struct{}

func (store) flush() error { return nil }

func discards(s store) {
	mayFail()       // want errcheck
	valueAndError() // want errcheck
	s.flush()       // want errcheck
	errhelper.Do()  // want errcheck
}

func handled(s store) error {
	if err := mayFail(); err != nil {
		return err
	}
	n, err := valueAndError()
	_ = n
	if err != nil {
		return err
	}
	_ = s.flush()          // ok: explicit, visible discard
	fmt.Println("running") // ok: callee outside the module
	return errhelper.Do()
}

func allowAnnotated() {
	mayFail() //lint:allow errcheck suppression demo: best-effort cleanup
}
