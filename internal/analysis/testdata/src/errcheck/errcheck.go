// Package errcheck is the golden corpus for the errcheck checker: error
// results of in-module calls dropped on the floor.
package errcheck

import (
	"errors"
	"fmt"

	"example.com/lintcheck/errhelper"
)

func mayFail() error { return errors.New("boom") }

func valueAndError() (int, error) { return 0, nil }

type store struct{}

func (store) flush() error { return nil }

func discards(s store) {
	mayFail()       // want errcheck
	valueAndError() // want errcheck
	s.flush()       // want errcheck
	errhelper.Do()  // want errcheck
}

func handled(s store) error {
	if err := mayFail(); err != nil {
		return err
	}
	n, err := valueAndError()
	_ = n
	if err != nil {
		return err
	}
	fmt.Println("running") // ok: callee outside the module
	return errhelper.Do()
}

func blankDiscards(s store) int {
	_ = s.flush()           // want errcheck
	n, _ := valueAndError() // want errcheck
	_, err := valueAndError()
	if err != nil { // ok: the error result is kept, only the value is blank
		return 0
	}
	_ = n // ok: pairwise blank of a non-call value
	return n
}

func blankAllowed(s store) {
	_ = s.flush() //lint:allow errcheck flush on a zero store cannot fail; discard keeps the demo linear
}

func allowAnnotated() {
	mayFail() //lint:allow errcheck suppression demo: best-effort cleanup
}
