// Package nondetsink is the sink side of the nondet golden corpus: it stands
// in for a seed-reproducible package (the test wires it as the checker's sink
// prefix). Every call edge through which nondeterminism taint enters this
// package must be flagged, with the full call chain in the message.
package nondetsink

import (
	"os"

	"example.com/lintcheck/nondethelper"
)

// Sample reaches a wall-clock read hidden two calls deep:
// Sample → Stamp → nowNanos → time.Now.
func Sample() int64 {
	return nondethelper.Stamp() // want nondet
}

// Total calls the sorted-keys helper; no taint, no finding.
func Total(m map[string]int) int {
	return nondethelper.SortedTotal(m)
}

// Spread reaches a map range without the sorted-keys idiom.
func Spread(m map[string]int) int {
	return nondethelper.Shuffled(m) // want nondet
}

// Environ reaches a process-environment read through the helper.
func Environ() []string {
	return nondethelper.Env() // want nondet
}

// FromEnv reads the environment directly inside the sink package — the
// per-package determinism checker does not cover env reads, so nondet
// reports it here.
func FromEnv() string {
	return os.Getenv("PROTEUS_SEED") // want nondet
}

// Ticks dispatches through an interface: the call is over-approximated to
// every in-module implementation, and WallClock's is tainted.
func Ticks(c nondethelper.Clock) int64 {
	return c.Ticks() // want nondet
}

// ViaFuncValue routes the tainted helper through a function-typed variable;
// bindings are tracked one assignment deep.
func ViaFuncValue() int64 {
	f := nondethelper.Stamp
	return f() // want nondet
}

// AuditedUse calls a helper whose source is suppressed in place — audited
// sources do not taint, so this stays clean.
func AuditedUse() int64 {
	return nondethelper.Audited()
}

// Allowed shows the sink-side escape hatch: the finding on this edge is
// suppressed with a reasoned directive.
func Allowed() int64 {
	return nondethelper.Stamp() //lint:allow nondet corpus demo: audited call, value feeds a log line only
}
