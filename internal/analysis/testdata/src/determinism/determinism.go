// Package determinism is the golden corpus for the determinism checker.
// Lines carrying a `// want determinism` comment must be reported; every
// other line must stay quiet.
package determinism

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

func wallClock() time.Duration {
	start := time.Now() // want determinism
	doWork()
	return time.Since(start) // want determinism
}

func timers(ch chan int) {
	time.Sleep(time.Millisecond) // want determinism
	select {                     // want determinism
	case <-time.After(time.Second): // want determinism
	case <-ch:
	}
}

func allowedWallClock() int64 {
	return time.Now().UnixNano() //lint:allow determinism suppression demo: measurement never feeds simulated state
}

func globalRand(xs []int) int {
	n := rand.Intn(10)                                                    // want determinism
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want determinism
	return n
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // ok: source constructed and seeded in place
	return r.Intn(10)                   // ok: method on the injected generator
}

func opaqueRand(src rand.Source) int {
	r := rand.New(src) // want determinism
	return r.Intn(10)
}

func mapReduce(m map[string]int) int {
	total := 0
	for _, v := range m { // want determinism
		total += v
	}
	return total
}

func mapReduceAllowed(m map[string]int) int {
	total := 0
	//lint:allow determinism order-insensitive sum, standalone directive form
	for _, v := range m {
		total += v
	}
	for k := range m { //lint:allow determinism trailing directive form
		delete(m, k)
	}
	return total
}

func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // ok: canonical sorted-keys idiom
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want determinism
		keys = append(keys, k)
	}
	return keys
}

func forkJoinAccounted(jobs []int) {
	var wg sync.WaitGroup
	for range jobs {
		wg.Add(1)
		go func() { // ok: Add before go, deferred Done inside
			defer wg.Done()
			doWork()
		}()
	}
	wg.Wait()
}

func unaccountedGoroutine() {
	go doWork() // want determinism
}

func goWithoutDeferredDone() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want determinism
		doWork()
		wg.Done()
	}()
	wg.Wait()
}

func goNamedFuncAfterAdd(wg *sync.WaitGroup) {
	wg.Add(1)
	go doWork() // want determinism
}

func singleCommSelect(ch chan int) int {
	select { // ok: one communication clause plus default
	case v := <-ch:
		return v
	default:
		return 0
	}
}

func multiWaySelect(a, b chan int) int {
	select { // want determinism
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func multiWaySelectAllowed(a, b chan int) {
	select { //lint:allow determinism both arms are idempotent shutdown signals
	case <-a:
	case <-b:
	}
}

func doWork() {}
