// Package lockhelper is the callee side of the cross-package lockorder
// corpus: library types whose methods take their own lock. Acquiring these
// while holding a caller-package lock fixes a cross-package lock order.
package lockhelper

import "sync"

// Registry locks internally on every mutation.
type Registry struct {
	mu sync.Mutex
	v  int
}

// Put stores v under the registry's own lock.
func (r *Registry) Put(v int) {
	r.mu.Lock()
	r.v = v
	r.mu.Unlock()
}

// Journal is a second independently-locked type, used by the corpus'
// suppressed (audited established-order) example.
type Journal struct {
	mu  sync.Mutex
	log []int
}

// Append records v under the journal's own lock.
func (j *Journal) Append(v int) {
	j.mu.Lock()
	j.log = append(j.log, v)
	j.mu.Unlock()
}
