module example.com/lintcheck

go 1.22
