// Package lockorder is the golden corpus for the lockorder checker's cycle
// report: two locks acquired in opposite orders on two call paths, one of
// them through a helper so only the interprocedural composition can see it.
package lockorder

import "sync"

// A and B are the two lock-carrying types; every instance of a type shares
// one lock-graph node.
type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

// Pair holds both locks.
type Pair struct {
	a A
	b B
}

// TransferAB establishes the order A → B. The cycle finding anchors at the
// second acquisition: B taken while A is held.
func (p *Pair) TransferAB() {
	p.a.mu.Lock()
	defer p.a.mu.Unlock()
	p.b.mu.Lock() // want lockorder
	p.b.mu.Unlock()
}

// TransferBA establishes the inverse order B → A, hiding the second
// acquisition behind a helper call.
func (p *Pair) TransferBA() {
	p.b.mu.Lock()
	defer p.b.mu.Unlock()
	p.lockA()
}

func (p *Pair) lockA() {
	p.a.mu.Lock()
	p.a.mu.Unlock()
}

// Sequential takes the locks one after the other — no nesting, no edge.
func (p *Pair) Sequential() {
	p.b.mu.Lock()
	p.b.mu.Unlock()
	p.a.mu.Lock()
	p.a.mu.Unlock()
}
