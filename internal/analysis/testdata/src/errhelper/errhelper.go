// Package errhelper exists so the errcheck corpus can exercise an
// in-module cross-package call through the module importer.
package errhelper

// Do pretends to do work that can fail.
func Do() error { return nil }
