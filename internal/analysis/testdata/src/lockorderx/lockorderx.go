// Package lockorderx is the caller side of the cross-package lockorder
// corpus: it holds its own lock while calling into lockhelper, whose methods
// take a second lock — the shape under which independently-developed packages
// silently establish incompatible lock orders.
package lockorderx

import (
	"sync"

	"example.com/lintcheck/lockhelper"
)

// Coordinator nests lockhelper acquisitions under its own mutex.
type Coordinator struct {
	mu  sync.Mutex
	reg *lockhelper.Registry
	jrn *lockhelper.Journal
	v   int
}

// Update holds the coordinator lock across a registry call that locks again
// in another package.
func (c *Coordinator) Update(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.v = v
	c.reg.Put(v) // want lockorder
}

// UpdateReleased drops the coordinator lock before calling out — no nesting,
// no finding (false-positive guard).
func (c *Coordinator) UpdateReleased(v int) {
	c.mu.Lock()
	c.v = v
	c.mu.Unlock()
	c.reg.Put(v)
}

// UpdateAudited shows the escape hatch: the established order is annotated
// with its reason, so the nested journal acquisition stays quiet.
func (c *Coordinator) UpdateAudited(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.v = v
	c.jrn.Append(v) //lint:allow lockorder corpus demo: established order Coordinator.mu → Journal.mu, journal lock is a leaf
}
