// Package floateq is the golden corpus for the floateq checker: exact
// ==/!= comparisons between floating-point operands.
package floateq

const tol = 1e-9

func exactEquality(a, b float64) bool {
	return a == b // want floateq
}

func exactInequality(a, b float64) bool {
	return a != b // want floateq
}

func mixedWidths(a float64, b float32) bool {
	return a == float64(b) // want floateq
}

func float32Pair(a, b float32) bool {
	return a == b // want floateq
}

func zeroLiteral(f float64) bool {
	return f == 0 // want floateq
}

func withTolerance(a, b float64) bool {
	return abs(a-b) <= tol // ok: tolerance comparison
}

func integersAreFine(a, b int) bool {
	return a == b // ok: exact integer comparison
}

const c1, c2 = 1.5, 2.5

var constantFold = c1 == c2 // ok: both operands constant, folded exactly

func allowExactZero(f float64) bool {
	return f == 0 //lint:allow floateq suppression demo: skip-work fast path on an exactly stored zero
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
