// Package lockdiscipline is the golden corpus for the lockdiscipline
// checker: blocking operations while a sync (RW)Mutex is held.
package lockdiscipline

import (
	"sync"
	"time"
)

type box struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	wg sync.WaitGroup
}

func (b *box) blockingUnderLock(v int) int {
	b.mu.Lock()
	b.ch <- v        // want lockdiscipline
	got := <-b.ch    // want lockdiscipline
	time.Sleep(1)    // want lockdiscipline
	b.wg.Wait()      // want lockdiscipline
	for range b.ch { // want lockdiscipline
		break
	}
	b.mu.Unlock()
	return got
}

func (b *box) blockingUnderDeferredRLock() int {
	b.rw.RLock()
	defer b.rw.RUnlock()
	select { // want lockdiscipline
	case v := <-b.ch:
		return v
	}
}

func (b *box) releaseThenBlock(v int) {
	b.mu.Lock()
	queued := v + 1
	b.mu.Unlock()
	b.ch <- queued // ok: lock released first
}

func (b *box) nonBlockingNotify() {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // ok: default case makes this non-blocking
	case b.ch <- 1:
	default:
	}
}

func (b *box) branchRelease(n int) {
	b.mu.Lock()
	if n > 0 {
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
	<-b.ch // ok: every fallthrough path released the lock
}

func (b *box) earlyReturnKeepsHeld(n int) {
	b.mu.Lock()
	if n > 0 {
		n++
	}
	<-b.ch // want lockdiscipline
	b.mu.Unlock()
}

func (b *box) goroutineBodyIsSeparate() {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		<-b.ch // ok: runs without the caller's lock
	}()
}

func (b *box) allowAnnotated() {
	b.mu.Lock()
	<-b.ch //lint:allow lockdiscipline suppression demo: handshake is bounded by construction
	b.mu.Unlock()
}

func (b *box) onceUnderLock(once *sync.Once) {
	b.mu.Lock()
	once.Do(func() {}) // want lockdiscipline
	b.mu.Unlock()
	once.Do(func() {}) // ok: no lock held
}
