// Package nondethelper is the source side of the nondet golden corpus: an
// unrestricted helper package whose functions hide nondeterminism sources
// from their callers. None of these are flagged here — the findings land in
// the seed-reproducible caller package (nondetsink), with the call chain back
// to these lines in the message.
package nondethelper

import (
	"os"
	"sort"
	"time"
)

// Stamp hides a wall-clock read two calls deep from the sink:
// sink → Stamp → nowNanos → time.Now.
func Stamp() int64 { return nowNanos() }

func nowNanos() int64 { return time.Now().UnixNano() }

// Env reads the process environment.
func Env() []string { return os.Environ() }

// SortedTotal iterates a map through the sorted-keys idiom; it carries no
// taint and its callers must stay clean (false-positive guard).
func SortedTotal(m map[string]int) int {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// Shuffled iterates a map in randomized order — a source.
func Shuffled(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Audited wraps a wall-clock read that is suppressed in place: the directive
// is an audited statement that the value never feeds seed-reproducible
// results, so callers of Audited must stay clean.
func Audited() int64 {
	return time.Now().UnixNano() //lint:allow determinism corpus demo: reporting-only value, never feeds results
}

// Clock exists so the sink can exercise interface dispatch
// over-approximation: one implementation is tainted, one is not.
type Clock interface{ Ticks() int64 }

// WallClock reads the wall clock — tainted.
type WallClock struct{}

// Ticks implements Clock.
func (WallClock) Ticks() int64 { return time.Now().Unix() }

// FixedClock returns an injected value — clean.
type FixedClock struct{ T int64 }

// Ticks implements Clock.
func (f FixedClock) Ticks() int64 { return f.T }
