package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// Nondet is the interprocedural nondeterminism taint checker. The
// per-package determinism checker sees a wall-clock read only when it is
// written inside a seed-reproducible package; a `time.Now()` hidden behind a
// helper in an unrestricted package is invisible to it. Nondet closes that
// hole: it marks nondeterminism sources wherever they occur in the module —
// wall-clock reads, global math/rand state, `rand.New` with an opaque
// source, process-environment reads (os.Environ/Getenv/LookupEnv), and map
// ranges without the sorted-keys idiom — propagates "tainted" transitively
// over the module call graph, and reports every call edge through which
// taint enters the seed-reproducible set, with the full source→sink call
// chain in the message so the finding is actionable without re-running the
// analysis by hand.
//
// Sources already suppressed in place (a //lint:allow determinism or
// //lint:allow nondet on the source line, e.g. the allocators'
// reporting-only SolveTime measurements) do not taint: the suppression is an
// audited statement that the value never feeds seed-reproducible results.
// Findings are reported once per call site where taint crosses into the sink
// set; chains wholly inside the sink set are not re-reported edge by edge.
type Nondet struct {
	// Sinks are the import-path prefixes of the seed-reproducible set
	// (DefaultRegistry wires DeterministicPackages here).
	Sinks []string
}

// Name implements ModuleChecker.
func (Nondet) Name() string { return "nondet" }

// Doc implements ModuleChecker.
func (Nondet) Doc() string {
	return "trace nondeterminism sources (wall clock, global rand, env, map order) through the call graph into seed-reproducible packages"
}

// ndSource is one direct nondeterminism source inside a function body.
type ndSource struct {
	desc string    // e.g. "time.Now", "os.Environ", "map range"
	pos  token.Pos // the source expression's position
}

// ndTaint records how a function reaches a source: the next callee on the
// shortest path and the ultimate source.
type ndTaint struct {
	src  ndSource
	next *CGNode // nil when src is in this very function
	dist int
}

// RunModule implements ModuleChecker.
func (n Nondet) RunModule(mp *ModulePass) {
	cg := mp.CallGraph()
	taint := make(map[*CGNode]*ndTaint)

	// Direct sources, in deterministic node order.
	var queue []*CGNode
	for _, node := range cg.Nodes() {
		if src, ok := n.directSource(mp, node); ok {
			taint[node] = &ndTaint{src: src}
			queue = append(queue, node)
		}
	}

	// Reverse adjacency for the BFS. Callers come out in deterministic order
	// because nodes and their edges are sorted.
	callers := make(map[*CGNode][]*CGNode)
	for _, node := range cg.Nodes() {
		for _, e := range node.Edges {
			callers[e.Callee] = append(callers[e.Callee], node)
		}
	}

	// Multi-source BFS: the first (shortest, deterministically tie-broken)
	// path to a source wins.
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, c := range callers[u] {
			if taint[c] != nil {
				continue
			}
			taint[c] = &ndTaint{src: taint[u].src, next: u, dist: taint[u].dist + 1}
			queue = append(queue, c)
		}
	}

	// Report taint entering the sink set. Edges wholly inside the sink set
	// are skipped: the entry edge in the callee's own package already
	// reports the chain, so one fix (or one audited allow) clears it.
	for _, node := range cg.Nodes() {
		if !n.inSinks(node.Pkg.Path) {
			continue
		}
		// Environment reads directly inside a sink function are reported
		// here too: the per-package determinism checker does not cover them.
		if t := taint[node]; t != nil && t.next == nil && strings.HasPrefix(t.src.desc, "os.") {
			mp.Reportf(t.src.pos,
				"%s reads the process environment in a seed-reproducible package; pass configuration in explicitly so runs are reproducible from their inputs",
				t.src.desc)
		}
		reported := make(map[token.Pos]bool)
		for _, e := range node.Edges {
			if n.inSinks(e.Callee.Pkg.Path) || taint[e.Callee] == nil || reported[e.Site] {
				continue
			}
			reported[e.Site] = true
			mp.Reportf(e.Site,
				"call chain reaches %s: %s; seed-reproducible packages must take time, randomness and iteration order from injected sources — fix the helper or annotate an audited exception with //lint:allow nondet",
				taint[e.Callee].src.desc, n.chain(mp, cg, taint, node, e.Callee))
		}
	}
}

func (n Nondet) inSinks(pkgPath string) bool {
	for _, pre := range n.Sinks {
		if pkgPath == pre || strings.HasPrefix(pkgPath, pre+"/") {
			return true
		}
	}
	return false
}

// chain renders the full sink→source call chain, ending with the source
// expression's file:line (base name only, so reports are machine-independent
// and byte-deterministic).
func (n Nondet) chain(mp *ModulePass, cg *CallGraph, taint map[*CGNode]*ndTaint, sink, entry *CGNode) string {
	var b strings.Builder
	b.WriteString(cg.shortName(sink.Name))
	for node := entry; node != nil; {
		b.WriteString(" → ")
		b.WriteString(cg.shortName(node.Name))
		t := taint[node]
		if t == nil {
			break
		}
		if t.next == nil {
			pos := mp.Fset.Position(t.src.pos)
			fmt.Fprintf(&b, " → %s (%s:%d)", t.src.desc, filepath.Base(pos.Filename), pos.Line)
			break
		}
		node = t.next
	}
	return b.String()
}

// directSource scans one function body for the earliest unsuppressed
// nondeterminism source.
func (n Nondet) directSource(mp *ModulePass, node *CGNode) (ndSource, bool) {
	pass := mp.pass(node.Pkg)
	var best ndSource
	record := func(desc string, pos token.Pos) {
		p := mp.Fset.Position(pos)
		// A source already suppressed in place is an audited "never feeds
		// results" statement and must not taint the whole graph.
		if node.Pkg.directives.allows(p.Filename, p.Line, "determinism") ||
			node.Pkg.directives.allows(p.Filename, p.Line, "nondet") {
			return
		}
		if best.desc == "" || pos < best.pos {
			best = ndSource{desc: desc, pos: pos}
		}
	}

	ast.Inspect(node.Body, func(nd ast.Node) bool {
		if call, ok := nd.(*ast.CallExpr); ok {
			if desc, ok := sourceCall(pass, call); ok {
				record(desc, call.Pos())
			}
		}
		return true
	})
	n.scanMapRanges(pass, node.Body, record)
	if best.desc == "" {
		return ndSource{}, false
	}
	return best, true
}

// scanMapRanges finds map ranges without the sorted-keys idiom, tracking the
// innermost enclosing function body so the idiom check looks at the right
// scope (mirroring the per-package determinism checker).
func (n Nondet) scanMapRanges(pass *Pass, body *ast.BlockStmt, record func(string, token.Pos)) {
	ast.Inspect(body, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.FuncLit:
			n.scanMapRanges(pass, nd.Body, record)
			return false
		case *ast.RangeStmt:
			t := pass.TypeOf(nd.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			if !sortedKeysIdiom(pass, body, nd) {
				record("map range", nd.Pos())
			}
		}
		return true
	})
}

// sourceCall classifies a call expression as a direct nondeterminism source.
func sourceCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() != nil {
		// Methods (injected *rand.Rand, time.Time.Sub, ...) are the
		// instance's problem; instances are constructed from seeds.
		return "", false
	}
	path := fn.Pkg().Path()
	switch {
	case path == "time" && wallClockFuncs[fn.Name()]:
		return "time." + fn.Name(), true
	case path == "os" && (fn.Name() == "Environ" || fn.Name() == "Getenv" || fn.Name() == "LookupEnv"):
		return "os." + fn.Name(), true
	case isRandPkg(path):
		switch {
		case seededSourceCtors[fn.Name()]:
			return "", false
		case fn.Name() == "New":
			if !isSeededSourceCall(pass, call) {
				return "unseeded rand.New", true
			}
			return "", false
		default:
			return pathBase(path) + "." + fn.Name(), true
		}
	}
	return "", false
}
