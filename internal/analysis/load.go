package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module is one loaded Go module: a shared FileSet, the module path from
// go.mod, and a cache of type-checked packages.
type Module struct {
	Root string // absolute directory containing go.mod
	Path string // module path ("proteus")
	Fset *token.FileSet

	pkgs    map[string]*Package // by import path
	loading map[string]bool     // import-cycle guard
	std     types.Importer      // stdlib importer (compiles from GOROOT source)
}

// Package is one parsed and type-checked package.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Files []*ast.File
	// Filenames[i] is the absolute path of Files[i].
	Filenames []string
	Types     *types.Package
	Info      *types.Info

	mod        *Module
	directives *directiveIndex
}

// NewModule prepares a module rooted at dir (which must contain go.mod) for
// loading. No packages are loaded yet.
func NewModule(root string) (*Module, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: module root %s: %w", abs, err)
	}
	path := modulePath(string(data))
	if path == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", abs)
	}
	fset := token.NewFileSet()
	m := &Module{
		Root:    abs,
		Path:    path,
		Fset:    fset,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	m.std = importer.ForCompiler(fset, "source", nil)
	return m, nil
}

// modulePath extracts the module path from go.mod contents.
func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// LoadModule loads every package under root matching the patterns ("./...",
// "./dir/..." or "./dir") and returns them sorted by import path.
func LoadModule(root string, patterns []string) (*Module, []*Package, error) {
	m, err := NewModule(root)
	if err != nil {
		return nil, nil, err
	}
	dirs, err := m.packageDirs()
	if err != nil {
		return nil, nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		rel, _ := filepath.Rel(m.Root, dir)
		if !matchAny(patterns, rel) {
			continue
		}
		pkg, err := m.load(m.importPath(dir))
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return m, pkgs, nil
}

// matchAny reports whether the root-relative directory rel matches any of the
// "./...", "./dir/...", "./dir" patterns ("." is the module root itself).
func matchAny(patterns []string, rel string) bool {
	rel = filepath.ToSlash(rel)
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		switch {
		case pat == "..." || pat == "":
			return true
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			if rel == base || strings.HasPrefix(rel, base+"/") {
				return true
			}
		case rel == pat:
			return true
		}
	}
	return false
}

// packageDirs lists every directory under the module root holding at least
// one non-test .go file, skipping testdata, hidden and underscore dirs.
func (m *Module) packageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(m.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != m.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := sourceFiles(path)
		if err != nil {
			return err
		}
		if len(files) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// sourceFiles lists the non-test .go files of dir in sorted order.
func sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files, nil
}

// importPath maps a directory under the module root to its import path.
func (m *Module) importPath(dir string) string {
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil || rel == "." {
		return m.Path
	}
	return m.Path + "/" + filepath.ToSlash(rel)
}

// dirFor maps an in-module import path back to its directory.
func (m *Module) dirFor(path string) string {
	if path == m.Path {
		return m.Root
	}
	return filepath.Join(m.Root, filepath.FromSlash(strings.TrimPrefix(path, m.Path+"/")))
}

// inModule reports whether path names a package inside this module.
func (m *Module) inModule(path string) bool {
	return path == m.Path || strings.HasPrefix(path, m.Path+"/")
}

// load parses and type-checks the package with the given in-module import
// path, memoized per module.
func (m *Module) load(path string) (*Package, error) {
	if pkg, ok := m.pkgs[path]; ok {
		return pkg, nil
	}
	if m.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	m.loading[path] = true
	defer delete(m.loading, path)

	dir := m.dirFor(path)
	filenames, err := sourceFiles(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	if len(filenames) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	pkg := &Package{Path: path, Dir: dir, mod: m, directives: newDirectiveIndex()}
	for _, fn := range filenames {
		src, err := os.ReadFile(fn)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(m.Fset, fn, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filenames = append(pkg.Filenames, fn)
		pkg.directives.collect(m.Fset, f, src)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: (*moduleImporter)(m)}
	tpkg, err := conf.Check(path, m.Fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg.Types = tpkg
	m.pkgs[path] = pkg
	return pkg, nil
}

// moduleImporter resolves in-module imports from the module tree and
// everything else (the standard library) by compiling GOROOT source, so the
// linter needs no export data and no third-party loader.
type moduleImporter Module

func (im *moduleImporter) Import(path string) (*types.Package, error) {
	m := (*Module)(im)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if m.inModule(path) {
		pkg, err := m.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return m.std.Import(path)
}
