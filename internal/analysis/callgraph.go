package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CallGraph is a module-wide, over-approximate static call graph built from
// the type-checked packages. It is the substrate the interprocedural
// checkers (nondet, lockorder) walk: a nondeterminism source or a lock
// acquisition three helpers deep is only visible by composing per-function
// facts along these edges.
//
// Resolution strategy, by call shape:
//
//   - direct calls and concrete method calls resolve statically via
//     go/types;
//   - calls through an interface method are over-approximated to every
//     in-module named type that implements the interface (checked against
//     the pointer method set, the superset), so dynamic dispatch never hides
//     an edge — at the cost of edges that cannot happen at runtime;
//   - calls through function-typed variables are tracked one assignment
//     deep: `f := helper; f()` produces an edge to helper, but values routed
//     through a second variable or a function parameter do not.
//
// Function literals are attributed to their enclosing declared function:
// a call made inside a closure (including a goroutine body) appears as an
// edge from the declaring function. Both unresolved shapes and literal
// attribution are deliberate over/under-approximations documented here so
// checker findings can be audited against them.
type CallGraph struct {
	module string
	byFn   map[*types.Func]*CGNode
	nodes  []*CGNode // sorted by Name
}

// CGNode is one declared in-module function or method with a body.
type CGNode struct {
	Fn   *types.Func
	Name string // deterministic key, e.g. "(*proteus/internal/core.System).Run"
	Pkg  *Package
	Body *ast.BlockStmt
	// Edges are this function's in-module call sites, sorted by callee name
	// then position. A (callee, site) pair appears once.
	Edges []CGEdge
}

// CGEdgeKind says how a call site was resolved.
type CGEdgeKind string

const (
	// EdgeStatic is a direct call or concrete method call.
	EdgeStatic CGEdgeKind = "static"
	// EdgeInterface is an interface method call, over-approximated to every
	// in-module implementation.
	EdgeInterface CGEdgeKind = "interface"
	// EdgeFuncValue is a call through a function-typed variable, resolved
	// one assignment deep.
	EdgeFuncValue CGEdgeKind = "funcvalue"
)

// CGEdge is one resolved call from a node to an in-module callee.
type CGEdge struct {
	Callee *CGNode
	Site   token.Pos
	Kind   CGEdgeKind
}

// Nodes lists every function in the graph sorted by name.
func (g *CallGraph) Nodes() []*CGNode { return g.nodes }

// NodeFor returns the node of a declared in-module function (nil when fn has
// no body in the loaded packages).
func (g *CallGraph) NodeFor(fn *types.Func) *CGNode { return g.byFn[fn] }

// shortName trims the module path off a node name for human-readable call
// chains: "(*proteus/internal/core.System).Run" → "(*internal/core.System).Run".
func (g *CallGraph) shortName(name string) string {
	return strings.ReplaceAll(name, g.module+"/", "")
}

// BuildCallGraph constructs the call graph over the given packages (which
// must all belong to module and be sorted by import path for deterministic
// node order).
func BuildCallGraph(module string, pkgs []*Package) *CallGraph {
	g := &CallGraph{module: module, byFn: make(map[*types.Func]*CGNode)}

	// Pass 1: one node per declared function body.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &CGNode{Fn: fn, Name: fn.FullName(), Pkg: pkg, Body: fd.Body}
				g.byFn[fn] = node
				g.nodes = append(g.nodes, node)
			}
		}
	}
	sort.Slice(g.nodes, func(i, j int) bool { return g.nodes[i].Name < g.nodes[j].Name })

	concrete := moduleNamedTypes(pkgs)
	bindings := funcValueBindings(pkgs)

	// Pass 2: edges.
	for _, node := range g.nodes {
		b := &edgeBuilder{g: g, node: node, concrete: concrete, bindings: bindings}
		ast.Inspect(node.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				b.resolve(call)
			}
			return true
		})
		node.Edges = b.edges
		sort.Slice(node.Edges, func(i, j int) bool {
			a, c := node.Edges[i], node.Edges[j]
			if a.Callee.Name != c.Callee.Name {
				return a.Callee.Name < c.Callee.Name
			}
			return a.Site < c.Site
		})
	}
	return g
}

// moduleNamedTypes collects every exported-or-not named non-interface type
// declared in the loaded packages, sorted by type string, for interface
// dispatch over-approximation.
func moduleNamedTypes(pkgs []*Package) []*types.Named {
	var out []*types.Named
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		names := scope.Names() // already sorted
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			out = append(out, named)
		}
	}
	return out
}

// funcValueBindings records, for every function-typed variable in the loaded
// packages, the set of declared functions directly assigned to it — the "one
// assignment deep" tracking. RHS shapes recognized: a plain identifier or a
// selector (package function or method value) whose object is a *types.Func.
func funcValueBindings(pkgs []*Package) map[*types.Var][]*types.Func {
	bindings := make(map[*types.Var][]*types.Func)
	add := func(info *types.Info, lhs, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		v, ok := info.ObjectOf(id).(*types.Var)
		if !ok {
			return
		}
		var rid *ast.Ident
		switch r := ast.Unparen(rhs).(type) {
		case *ast.Ident:
			rid = r
		case *ast.SelectorExpr:
			rid = r.Sel
		default:
			return
		}
		fn, ok := info.ObjectOf(rid).(*types.Func)
		if !ok {
			return
		}
		bindings[v] = append(bindings[v], fn)
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if len(n.Lhs) == len(n.Rhs) {
						for i := range n.Lhs {
							add(pkg.Info, n.Lhs[i], n.Rhs[i])
						}
					}
				case *ast.ValueSpec:
					if len(n.Names) == len(n.Values) {
						for i := range n.Names {
							add(pkg.Info, n.Names[i], n.Values[i])
						}
					}
				}
				return true
			})
		}
	}
	for v, fns := range bindings {
		sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })
		dedup := fns[:0]
		for i, fn := range fns {
			if i == 0 || fn != fns[i-1] {
				dedup = append(dedup, fn)
			}
		}
		bindings[v] = dedup
	}
	return bindings
}

// edgeBuilder accumulates one node's outgoing edges.
type edgeBuilder struct {
	g        *CallGraph
	node     *CGNode
	concrete []*types.Named
	bindings map[*types.Var][]*types.Func
	edges    []CGEdge
	seen     map[CGEdge]bool
}

func (b *edgeBuilder) add(callee *types.Func, site token.Pos, kind CGEdgeKind) {
	target := b.g.byFn[callee]
	if target == nil {
		return // out of module, or no body (declaration without definition)
	}
	e := CGEdge{Callee: target, Site: site, Kind: kind}
	if b.seen == nil {
		b.seen = make(map[CGEdge]bool)
	}
	if b.seen[e] {
		return
	}
	b.seen[e] = true
	b.edges = append(b.edges, e)
}

func (b *edgeBuilder) resolve(call *ast.CallExpr) {
	info := b.node.Pkg.Info
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := info.ObjectOf(fun).(type) {
		case *types.Func:
			b.add(obj, call.Pos(), EdgeStatic)
		case *types.Var:
			for _, fn := range b.bindings[obj] {
				b.add(fn, call.Pos(), EdgeFuncValue)
			}
		}
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil && sel.Kind() == types.MethodVal {
			if _, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
				b.resolveInterface(fun, sel, call.Pos())
				return
			}
		}
		switch obj := info.ObjectOf(fun.Sel).(type) {
		case *types.Func:
			b.add(obj, call.Pos(), EdgeStatic)
		case *types.Var:
			for _, fn := range b.bindings[obj] {
				b.add(fn, call.Pos(), EdgeFuncValue)
			}
		}
	}
}

// resolveInterface over-approximates an interface method call with an edge
// to the matching method of every in-module type that implements the
// interface.
func (b *edgeBuilder) resolveInterface(fun *ast.SelectorExpr, sel *types.Selection, site token.Pos) {
	iface, ok := sel.Recv().Underlying().(*types.Interface)
	if !ok {
		return
	}
	m, ok := sel.Obj().(*types.Func)
	if !ok {
		return
	}
	for _, named := range b.concrete {
		ptr := types.NewPointer(named)
		if !types.Implements(ptr, iface) && !types.Implements(named, iface) {
			continue
		}
		ms := types.NewMethodSet(ptr)
		found := ms.Lookup(m.Pkg(), m.Name())
		if found == nil {
			continue
		}
		if impl, ok := found.Obj().(*types.Func); ok {
			b.add(impl, site, EdgeInterface)
		}
	}
}
