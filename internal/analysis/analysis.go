// Package analysis is a small static-analysis framework for the Proteus
// repository, built entirely on the standard library's go/parser, go/ast and
// go/types. It exists because the properties Proteus's evaluation rests on —
// the simulator tracking the testbed within ~1%, the MILP solver being exact,
// repeated runs being bit-for-bit reproducible from a seed — are invariants
// that runtime tests cannot economically cover: a stray time.Now() in the
// simulated-clock path or an unsorted map iteration in plan construction
// produces silent drift, not a crash.
//
// The framework loads the module from source, type-checks every package with
// a stdlib-only importer, and runs a registry of project-specific checkers
// (see determinism.go, lockdiscipline.go, floateq.go, errcheck.go). Findings
// carry file:line:col positions and a check ID, and can be suppressed for a
// single line with a trailing
//
//	//lint:allow <check> [reason]
//
// comment (or one placed on the line directly above). The cmd/proteus-lint
// CLI is the command-line entry point; CI runs it over ./... and fails on any
// finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one reported invariant violation.
type Finding struct {
	Pos     token.Position
	Check   string
	Message string
}

// String formats the finding as path:line:col: check: message.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// Checker is one invariant check run over a type-checked package.
type Checker interface {
	// Name is the check ID used in reports and //lint:allow directives.
	Name() string
	// Doc is a one-line description of the invariant.
	Doc() string
	// Run inspects the package and reports findings through the pass.
	Run(pass *Pass)
}

// Pass is the per-(package, checker) context handed to Checker.Run.
type Pass struct {
	Fset *token.FileSet
	// Path is the package's import path.
	Path string
	// Module is the module path; checkers use it to decide whether a callee
	// is "in-module".
	Module string
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info

	check      string
	directives directiveIndex
	findings   *[]Finding
}

// Reportf records a finding at pos unless a //lint:allow directive suppresses
// the current check on that line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.directives.allows(position.Filename, position.Line, p.check) {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Pos:     position,
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// ObjectOf resolves the object an identifier uses or defines.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Info.ObjectOf(id) }

// TypeOf returns the type of an expression (nil when untyped).
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// CalleeFunc resolves the *types.Func a call expression invokes, or nil for
// calls through function-typed variables, built-ins and type conversions.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.ObjectOf(id).(*types.Func)
	return fn
}

// scope restricts a checker to packages matching any of its import-path
// prefixes. An empty prefix list admits every package.
type scopedChecker struct {
	checker  Checker
	prefixes []string
}

func (s scopedChecker) applies(pkgPath string) bool {
	if len(s.prefixes) == 0 {
		return true
	}
	for _, pre := range s.prefixes {
		if pkgPath == pre || strings.HasPrefix(pkgPath, pre+"/") {
			return true
		}
	}
	return false
}

// Registry is an ordered set of checkers with per-checker package scopes.
type Registry struct {
	entries []scopedChecker
}

// Register adds a checker restricted to packages under the given import-path
// prefixes (all packages when none are given).
func (r *Registry) Register(c Checker, pathPrefixes ...string) {
	r.entries = append(r.entries, scopedChecker{checker: c, prefixes: pathPrefixes})
}

// Checkers lists the registered checkers in registration order.
func (r *Registry) Checkers() []Checker {
	out := make([]Checker, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.checker
	}
	return out
}

// DeterministicPackages are the import-path suffixes (relative to the module)
// whose computations must be reproducible from a seed: the simulated clock,
// plan construction and the solvers. The determinism checker runs only here.
var DeterministicPackages = []string{
	"internal/core",
	"internal/allocator",
	"internal/lp",
	"internal/milp",
	"internal/overload",
	"internal/simulation",
	"internal/tsdb",
}

// SolverPackages hold the numerical pivoting code where exact float64
// equality is almost always a bug; the floateq checker runs only here.
var SolverPackages = []string{
	"internal/lp",
	"internal/milp",
}

// DefaultRegistry returns the project's standard checker set, scoped for the
// given module path.
func DefaultRegistry(module string) *Registry {
	under := func(suffixes []string) []string {
		out := make([]string, len(suffixes))
		for i, s := range suffixes {
			out[i] = module + "/" + s
		}
		return out
	}
	r := &Registry{}
	r.Register(Determinism{}, under(DeterministicPackages)...)
	r.Register(LockDiscipline{})
	r.Register(FloatEq{}, under(SolverPackages)...)
	r.Register(ErrCheck{})
	return r
}

// RunPackage runs every applicable checker over one loaded package and
// returns its findings sorted by position then check ID.
func (r *Registry) RunPackage(pkg *Package) []Finding {
	var findings []Finding
	for _, e := range r.entries {
		if !e.applies(pkg.Path) {
			continue
		}
		pass := &Pass{
			Fset:       pkg.mod.Fset,
			Path:       pkg.Path,
			Module:     pkg.mod.Path,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			check:      e.checker.Name(),
			directives: pkg.directives,
			findings:   &findings,
		}
		e.checker.Run(pass)
	}
	SortFindings(findings)
	return findings
}

// Run loads the packages matching patterns under the module rooted at root
// and returns all findings in deterministic order.
func (r *Registry) Run(root string, patterns []string) ([]Finding, error) {
	mod, pkgs, err := LoadModule(root, patterns)
	if err != nil {
		return nil, err
	}
	_ = mod
	var findings []Finding
	for _, pkg := range pkgs {
		findings = append(findings, r.RunPackage(pkg)...)
	}
	SortFindings(findings)
	return findings, nil
}

// SortFindings orders findings by file, line, column, check and message so
// reports are reproducible run to run.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}
