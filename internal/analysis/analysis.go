// Package analysis is a small static-analysis framework for the Proteus
// repository, built entirely on the standard library's go/parser, go/ast and
// go/types. It exists because the properties Proteus's evaluation rests on —
// the simulator tracking the testbed within ~1%, the MILP solver being exact,
// repeated runs being bit-for-bit reproducible from a seed — are invariants
// that runtime tests cannot economically cover: a stray time.Now() in the
// simulated-clock path or an unsorted map iteration in plan construction
// produces silent drift, not a crash.
//
// The framework loads the module from source, type-checks every package with
// a stdlib-only importer, and runs a registry of project-specific checkers
// (see determinism.go, lockdiscipline.go, floateq.go, errcheck.go). Findings
// carry file:line:col positions and a check ID, and can be suppressed for a
// single line with a trailing
//
//	//lint:allow <check> [reason]
//
// comment (or one placed on the line directly above). The cmd/proteus-lint
// CLI is the command-line entry point; CI runs it over ./... and fails on any
// finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one reported invariant violation.
type Finding struct {
	Pos     token.Position
	Check   string
	Message string
}

// String formats the finding as path:line:col: check: message.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// Checker is one invariant check run over a type-checked package.
type Checker interface {
	// Name is the check ID used in reports and //lint:allow directives.
	Name() string
	// Doc is a one-line description of the invariant.
	Doc() string
	// Run inspects the package and reports findings through the pass.
	Run(pass *Pass)
}

// Pass is the per-(package, checker) context handed to Checker.Run.
type Pass struct {
	Fset *token.FileSet
	// Path is the package's import path.
	Path string
	// Module is the module path; checkers use it to decide whether a callee
	// is "in-module".
	Module string
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info

	check      string
	directives *directiveIndex
	findings   *[]Finding
}

// Reportf records a finding at pos unless a //lint:allow directive suppresses
// the current check on that line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.directives.allows(position.Filename, position.Line, p.check) {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Pos:     position,
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// ObjectOf resolves the object an identifier uses or defines.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Info.ObjectOf(id) }

// TypeOf returns the type of an expression (nil when untyped).
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// CalleeFunc resolves the *types.Func a call expression invokes, or nil for
// calls through function-typed variables, built-ins and type conversions.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.ObjectOf(id).(*types.Func)
	return fn
}

// ModuleChecker is an interprocedural check run once over every loaded
// package together, rather than per package. Module checkers see the whole
// call graph, so they can follow a nondeterminism source or a lock
// acquisition across package boundaries that per-package syntax checks are
// blind to.
type ModuleChecker interface {
	// Name is the check ID used in reports and //lint:allow directives.
	Name() string
	// Doc is a one-line description of the invariant.
	Doc() string
	// RunModule inspects the module and reports findings through the pass.
	RunModule(pass *ModulePass)
}

// ModulePass is the whole-module context handed to ModuleChecker.RunModule.
// Pkgs is sorted by import path regardless of load order, so module checkers
// are deterministic by construction.
type ModulePass struct {
	Fset   *token.FileSet
	Module string
	Pkgs   []*Package

	check    string
	findings *[]Finding
	cg       *CallGraph
}

// Reportf records a finding at pos unless a //lint:allow directive suppresses
// the current check on that line (in whichever package owns the file).
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	for _, pkg := range p.Pkgs {
		if pkg.directives.allows(position.Filename, position.Line, p.check) {
			return
		}
	}
	*p.findings = append(*p.findings, Finding{
		Pos:     position,
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// CallGraph returns the module-wide call graph, built once and shared by
// every module checker in the pass.
func (p *ModulePass) CallGraph() *CallGraph {
	if p.cg == nil {
		p.cg = BuildCallGraph(p.Module, p.Pkgs)
	}
	return p.cg
}

// pass builds a per-package helper Pass so module checkers can reuse the
// syntactic helpers (CalleeFunc, TypeOf, sortedKeysIdiom). It must not be
// used for reporting — its findings sink is nil.
func (p *ModulePass) pass(pkg *Package) *Pass {
	return &Pass{
		Fset:       p.Fset,
		Path:       pkg.Path,
		Module:     p.Module,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		Info:       pkg.Info,
		directives: pkg.directives,
	}
}

// scope restricts a checker to packages matching any of its import-path
// prefixes. An empty prefix list admits every package.
type scopedChecker struct {
	checker  Checker
	prefixes []string
}

func (s scopedChecker) applies(pkgPath string) bool {
	if len(s.prefixes) == 0 {
		return true
	}
	for _, pre := range s.prefixes {
		if pkgPath == pre || strings.HasPrefix(pkgPath, pre+"/") {
			return true
		}
	}
	return false
}

// Registry is an ordered set of checkers with per-checker package scopes,
// plus whole-module interprocedural checkers.
type Registry struct {
	entries    []scopedChecker
	modEntries []ModuleChecker
}

// Register adds a checker restricted to packages under the given import-path
// prefixes (all packages when none are given).
func (r *Registry) Register(c Checker, pathPrefixes ...string) {
	r.entries = append(r.entries, scopedChecker{checker: c, prefixes: pathPrefixes})
}

// RegisterModule adds a whole-module checker.
func (r *Registry) RegisterModule(c ModuleChecker) {
	r.modEntries = append(r.modEntries, c)
}

// Checkers lists the registered per-package checkers in registration order.
func (r *Registry) Checkers() []Checker {
	out := make([]Checker, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.checker
	}
	return out
}

// ModuleCheckers lists the registered whole-module checkers in registration
// order.
func (r *Registry) ModuleCheckers() []ModuleChecker {
	return append([]ModuleChecker(nil), r.modEntries...)
}

// Rule describes one registered check for machine-readable emitters (the
// SARIF rules table).
type Rule struct {
	ID  string
	Doc string
}

// Rules lists every registered check (per-package and module) sorted by ID.
func (r *Registry) Rules() []Rule {
	var rules []Rule
	for _, e := range r.entries {
		rules = append(rules, Rule{ID: e.checker.Name(), Doc: e.checker.Doc()})
	}
	for _, c := range r.modEntries {
		rules = append(rules, Rule{ID: c.Name(), Doc: c.Doc()})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	return rules
}

// DeterministicPackages are the import-path suffixes (relative to the module)
// whose computations must be reproducible from a seed: the simulated clock,
// plan construction and the solvers. The determinism checker runs only here.
var DeterministicPackages = []string{
	"internal/core",
	"internal/allocator",
	"internal/attrib",
	"internal/lp",
	"internal/milp",
	"internal/flightrec",
	"internal/overload",
	"internal/simulation",
	"internal/tsdb",
}

// SolverPackages hold the numerical pivoting code where exact float64
// equality is almost always a bug; the floateq checker runs only here.
var SolverPackages = []string{
	"internal/lp",
	"internal/milp",
}

// DefaultRegistry returns the project's standard checker set, scoped for the
// given module path.
func DefaultRegistry(module string) *Registry {
	under := func(suffixes []string) []string {
		out := make([]string, len(suffixes))
		for i, s := range suffixes {
			out[i] = module + "/" + s
		}
		return out
	}
	r := &Registry{}
	r.Register(Determinism{}, under(DeterministicPackages)...)
	r.Register(LockDiscipline{})
	r.Register(FloatEq{}, under(SolverPackages)...)
	r.Register(ErrCheck{})
	r.Register(AllowReason{})
	r.RegisterModule(Nondet{Sinks: under(DeterministicPackages)})
	r.RegisterModule(LockOrder{})
	return r
}

// RunPackage runs every applicable checker over one loaded package and
// returns its findings sorted by position then check ID.
func (r *Registry) RunPackage(pkg *Package) []Finding {
	var findings []Finding
	for _, e := range r.entries {
		if !e.applies(pkg.Path) {
			continue
		}
		pass := &Pass{
			Fset:       pkg.mod.Fset,
			Path:       pkg.Path,
			Module:     pkg.mod.Path,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			check:      e.checker.Name(),
			directives: pkg.directives,
			findings:   &findings,
		}
		e.checker.Run(pass)
	}
	SortFindings(findings)
	return findings
}

// RunModule runs every registered module checker once over the given
// packages and returns the findings sorted. The packages are re-sorted by
// import path internally, so the caller's load order cannot influence the
// report.
func (r *Registry) RunModule(mod *Module, pkgs []*Package) []Finding {
	if len(r.modEntries) == 0 {
		return nil
	}
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	var findings []Finding
	pass := &ModulePass{
		Fset:     mod.Fset,
		Module:   mod.Path,
		Pkgs:     sorted,
		findings: &findings,
	}
	for _, c := range r.modEntries {
		pass.check = c.Name()
		c.RunModule(pass)
	}
	SortFindings(findings)
	return findings
}

// RunPackages runs the per-package checkers over each package in the given
// order, then the module checkers over all of them together, and returns the
// combined findings sorted. The result is independent of the order of pkgs.
func (r *Registry) RunPackages(mod *Module, pkgs []*Package) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		findings = append(findings, r.RunPackage(pkg)...)
	}
	findings = append(findings, r.RunModule(mod, pkgs)...)
	SortFindings(findings)
	return findings
}

// Run loads the packages matching patterns under the module rooted at root
// and returns all findings in deterministic order. Module checkers see
// exactly the loaded subset: run with "./..." for whole-module analysis.
func (r *Registry) Run(root string, patterns []string) ([]Finding, error) {
	mod, pkgs, err := LoadModule(root, patterns)
	if err != nil {
		return nil, err
	}
	return r.RunPackages(mod, pkgs), nil
}

// SortFindings orders findings by file, line, column, check and message so
// reports are reproducible run to run.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}
