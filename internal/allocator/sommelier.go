package allocator

import (
	"fmt"
	"time"
)

// Sommelier is the partially dynamic baseline (§6.1.1): its initial
// placement comes from the MILP (the paper extends it the same way), but
// afterwards each device's *family* assignment is frozen — only the variant
// hosted on a device may change over time (per-device model selection, no
// cluster-level placement). This is also the "Proteus w/o MP" ablation
// (§6.5).
type Sommelier struct {
	name    string
	inner   *MILP
	assign  []int // device -> family, -1 idle; fixed after first allocate
	prepped bool
}

// NewSommelier returns the Sommelier baseline allocator.
func NewSommelier(opts *MILPOptions) *Sommelier {
	return &Sommelier{name: "sommelier", inner: NewMILP(opts)}
}

// NewWithoutPlacement returns the "Proteus w/o MP" ablation, which is the
// same algorithm under its ablation name.
func NewWithoutPlacement(opts *MILPOptions) *Sommelier {
	s := NewSommelier(opts)
	s.name = "proteus-wo-mp"
	return s
}

// Name implements Allocator.
func (s *Sommelier) Name() string { return s.name }

// Dynamic implements Allocator.
func (s *Sommelier) Dynamic() bool { return true }

// Features implements Allocator.
func (s *Sommelier) Features() Features {
	return Features{DynamicPlacement: false, DynamicSelection: true, AccuracyScaling: true, Method: "Heuristic"}
}

// Allocate implements Allocator.
func (s *Sommelier) Allocate(in *Input) (*Allocation, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if !s.prepped {
		initial, err := s.inner.Allocate(in)
		if err != nil {
			return nil, err
		}
		s.assign = make([]int, in.Cluster.Size())
		for d := range s.assign {
			s.assign[d] = -1
			if initial.Hosted[d] != nil {
				s.assign[d] = initial.Hosted[d].Family
			}
		}
		s.prepped = true
		return initial, nil
	}
	if len(s.assign) != in.Cluster.Size() {
		return nil, fmt.Errorf("allocator: sommelier initialized with a different cluster size")
	}

	start := time.Now() //lint:allow determinism wall-clock SolveTime measurement only; never feeds the plan
	alloc := NewAllocation(in)
	// Per family: start every assigned device at the most accurate feasible
	// variant, then greedily downgrade the device offering the best
	// capacity-gain per accuracy-point lost until demand is covered.
	for q := range in.Families {
		var devs []int
		for d, fq := range s.assign {
			if fq == q {
				devs = append(devs, d)
			}
		}
		if len(devs) == 0 {
			continue
		}
		chosen := make([]int, len(devs)) // index into family variants, -1 infeasible
		f := in.Families[q]
		capacity := 0.0
		peakOf := func(d, vi int) float64 {
			return in.Peak(in.Cluster.Device(d), VariantRef{Family: q, Variant: f.Variants[vi]})
		}
		for i, d := range devs {
			chosen[i] = -1
			for vi := len(f.Variants) - 1; vi >= 0; vi-- {
				if peakOf(d, vi) > 0 {
					chosen[i] = vi
					break
				}
			}
			if chosen[i] >= 0 {
				capacity += peakOf(d, chosen[i])
			}
		}
		for capacity < in.Demand[q] {
			bestI, bestVi, bestRatio := -1, -1, 0.0
			for i, d := range devs {
				if chosen[i] <= 0 {
					continue // infeasible or already at the least accurate
				}
				cur := peakOf(d, chosen[i])
				curAcc := f.Variants[chosen[i]].Accuracy
				for vi := chosen[i] - 1; vi >= 0; vi-- {
					p := peakOf(d, vi)
					if p <= cur {
						continue
					}
					lost := curAcc - f.Variants[vi].Accuracy
					if lost <= 0 {
						lost = 1e-9
					}
					ratio := (p - cur) / lost
					if ratio > bestRatio {
						bestI, bestVi, bestRatio = i, vi, ratio
					}
				}
			}
			if bestI < 0 {
				break // fully downgraded, still short: plan sheds load
			}
			capacity -= peakOf(devs[bestI], chosen[bestI])
			chosen[bestI] = bestVi
			capacity += peakOf(devs[bestI], bestVi)
		}
		for i, d := range devs {
			if chosen[i] < 0 {
				continue
			}
			alloc.Hosted[d] = &VariantRef{Family: q, Variant: f.Variants[chosen[i]]}
		}
	}
	fillRoutingByAccuracy(in, alloc)
	alloc.PredictedAccuracy = alloc.EffectiveAccuracy(in)
	alloc.SolveTime = time.Since(start) //lint:allow determinism reporting-only wall-clock measurement
	return alloc, nil
}
