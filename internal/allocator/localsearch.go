package allocator

import (
	"math"
	"sort"
)

// searchSpace is the aggregated neighbourhood the local search explores:
// device counts per (group, variant) pair with accuracy-first demand
// filling. It is used to produce high-quality warm starts for the MILP and
// to polish incumbents the branch-and-bound returns under a time limit.
type searchSpace struct {
	pairs  []aggPair
	refs   []VariantRef
	demand []float64
	// prev[i] is the previous plan's device count for pair i and switchCost
	// the objective penalty per newly loaded device (0 disables). A plan
	// that hosts more devices of a variant than before pays for the loads:
	// each load takes the device offline for the load delay, a real
	// throughput cost the pure §4 objective ignores.
	prev       []int
	switchCost []float64
	// groupOf[i] and groupSize[g] describe the slot constraint Σ n <= N_g.
	groupSize []int
	// order sorts pair indices by descending variant accuracy.
	order []int
	// pairsByGroup indexes pairs per group.
	pairsByGroup [][]int
}

func newSearchSpace(groups []groupInfo, pairs []aggPair, refs []VariantRef, demand []float64) *searchSpace {
	s := &searchSpace{pairs: pairs, refs: refs, demand: demand}
	s.groupSize = make([]int, len(groups))
	s.pairsByGroup = make([][]int, len(groups))
	for g := range groups {
		s.groupSize[g] = groups[g].size
	}
	for i, pr := range pairs {
		s.pairsByGroup[pr.g] = append(s.pairsByGroup[pr.g], i)
	}
	s.order = make([]int, len(pairs))
	for i := range s.order {
		s.order[i] = i
	}
	sort.SliceStable(s.order, func(a, b int) bool {
		return refs[pairs[s.order[a]].r].Variant.Accuracy > refs[pairs[s.order[b]].r].Variant.Accuracy
	})
	return s
}

// groupInfo is the slice of group metadata the search needs.
type groupInfo struct{ size int }

// shortfallPenalty prices unserved demand far above any accuracy gain so
// the search always prefers feasibility.
const shortfallPenalty = 1e7

// objective evaluates counts by filling each family's demand with the most
// accurate capacity first, charging switch costs for devices loaded beyond
// the previous plan. It returns the penalized objective and whether all
// demand is served.
func (s *searchSpace) objective(counts []int) (float64, bool) {
	remaining := append([]float64(nil), s.demand...)
	obj := 0.0
	for _, i := range s.order {
		pr := s.pairs[i]
		if counts[i] == 0 {
			continue
		}
		q := s.refs[pr.r].Family
		take := math.Min(remaining[q], pr.peak*float64(counts[i]))
		obj += take * s.refs[pr.r].Variant.Accuracy
		remaining[q] -= take
	}
	if s.prev != nil && s.switchCost != nil {
		for i, c := range counts {
			if loads := c - s.prev[i]; loads > 0 {
				obj -= float64(loads) * s.switchCost[i]
			}
		}
	}
	feasible := true
	for _, r := range remaining {
		if r > 1e-9 {
			obj -= shortfallPenalty * r
			feasible = false
		}
	}
	return obj, feasible
}

// improve hill-climbs from counts with two move kinds — add a device to a
// spare slot, and move a device between variants within its group — until
// no single move improves the objective or maxRounds passes elapse. It
// mutates and returns counts.
func (s *searchSpace) improve(counts []int, maxRounds int) []int {
	obj, _ := s.objective(counts)
	used := make([]int, len(s.groupSize))
	for i, c := range counts {
		used[s.pairs[i].g] += c
	}
	for round := 0; round < maxRounds; round++ {
		improved := false
		// Additions into spare slots.
		for g, slots := range s.groupSize {
			for used[g] < slots {
				bestJ, bestObj := -1, obj
				for _, j := range s.pairsByGroup[g] {
					counts[j]++
					if o, _ := s.objective(counts); o > bestObj+1e-9 {
						bestJ, bestObj = j, o
					}
					counts[j]--
				}
				if bestJ < 0 {
					break
				}
				counts[bestJ]++
				used[g]++
				obj = bestObj
				improved = true
			}
		}
		// Intra-group reassignments.
		for i := range counts {
			if counts[i] == 0 {
				continue
			}
			g := s.pairs[i].g
			for _, j := range s.pairsByGroup[g] {
				if j == i || counts[i] == 0 {
					continue
				}
				counts[i]--
				counts[j]++
				if o, _ := s.objective(counts); o > obj+1e-9 {
					obj = o
					improved = true
				} else {
					counts[i]++
					counts[j]--
				}
			}
		}
		if !improved {
			break
		}
	}
	return counts
}

// vector expands counts into a full MILP variable assignment (n, w and
// load-count entries) matching the accuracy-first fill. It returns nil when
// the counts cannot serve the demand.
func (s *searchSpace) vector(counts []int, nVars int) []float64 {
	x := make([]float64, nVars)
	remaining := append([]float64(nil), s.demand...)
	for _, i := range s.order {
		pr := s.pairs[i]
		x[pr.n] = float64(counts[i])
		if pr.l >= 0 && s.prev != nil {
			if loads := counts[i] - s.prev[i]; loads > 0 {
				x[pr.l] = float64(loads)
			}
		}
		q := s.refs[pr.r].Family
		take := math.Min(remaining[q], pr.peak*float64(counts[i]))
		x[pr.w] = take
		remaining[q] -= take
	}
	for _, r := range remaining {
		if r > 1e-9 {
			return nil
		}
	}
	return x
}

// countsFromVector recovers per-pair device counts from a MILP solution.
func (s *searchSpace) countsFromVector(x []float64) []int {
	counts := make([]int, len(s.pairs))
	for i, pr := range s.pairs {
		counts[i] = int(math.Round(x[pr.n]))
	}
	return counts
}

// shortfall reports, per family, whether the counts leave demand unserved.
func (s *searchSpace) shortfall(counts []int) []bool {
	remaining := append([]float64(nil), s.demand...)
	for _, i := range s.order {
		pr := s.pairs[i]
		if counts[i] == 0 {
			continue
		}
		q := s.refs[pr.r].Family
		take := math.Min(remaining[q], pr.peak*float64(counts[i]))
		remaining[q] -= take
	}
	out := make([]bool, len(remaining))
	for q, r := range remaining {
		out[q] = r > 1e-9
	}
	return out
}
