package allocator

import (
	"math"
	"testing"
	"time"

	"proteus/internal/cluster"
	"proteus/internal/models"
	"proteus/internal/profiles"
)

// testInput builds a small allocation problem: 2 CPU + 1 GTX 1080 Ti +
// 1 V100, serving EfficientNet and MobileNet with 2x SLOs.
func testInput(t *testing.T, demand []float64) *Input {
	t.Helper()
	c := cluster.New([]cluster.TypeCount{
		{Type: cluster.CPU, Count: 2},
		{Type: cluster.GTX1080Ti, Count: 1},
		{Type: cluster.V100, Count: 1},
	})
	var fams []models.Family
	for _, f := range models.Zoo() {
		if f.Name == "efficientnet" || f.Name == "mobilenet" {
			fams = append(fams, f)
		}
	}
	if len(fams) != 2 {
		t.Fatal("fixture families missing")
	}
	slos := make([]time.Duration, len(fams))
	for q, f := range fams {
		slos[q] = profiles.FamilySLO(f, 2)
	}
	return &Input{Cluster: c, Families: fams, SLOs: slos, Demand: demand}
}

func clusterCapacityHA(in *Input) float64 {
	// Upper bound on demand servable with most accurate variants: sum of
	// per-device best peaks.
	total := 0.0
	for _, d := range in.Cluster.Devices() {
		best := 0.0
		for _, ref := range in.Variants() {
			if p := in.Peak(d, ref); p > best {
				best = p
			}
		}
		total += best
	}
	return total
}

func TestMILPLowDemandPicksAccurateVariants(t *testing.T) {
	in := testInput(t, []float64{2, 2})
	a := NewMILP(nil)
	alloc, err := a.Allocate(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := alloc.Check(in); err != nil {
		t.Fatal(err)
	}
	if alloc.DemandScale != 1 {
		t.Fatalf("demand scale %v, want 1 at low demand", alloc.DemandScale)
	}
	if !alloc.Optimal {
		t.Fatal("small MILP must solve to optimality")
	}
	// At trivial demand the optimum serves everything with 100-accuracy
	// variants.
	if alloc.PredictedAccuracy < 99.9 {
		t.Fatalf("predicted accuracy %v, want ~100 at low demand", alloc.PredictedAccuracy)
	}
}

func TestMILPRoutingServesFullDemand(t *testing.T) {
	in := testInput(t, []float64{50, 30})
	alloc, err := NewMILP(nil).Allocate(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := alloc.Check(in); err != nil {
		t.Fatal(err)
	}
	for q := range in.Families {
		sum := 0.0
		for _, y := range alloc.Routing[q] {
			sum += y
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("family %d routing sums to %v, want 1", q, sum)
		}
	}
}

func TestMILPAccuracyDegradesWithDemand(t *testing.T) {
	a := NewMILP(nil)
	var accs []float64
	for _, demand := range []float64{5, 100, 400} {
		in := testInput(t, []float64{demand, demand / 4})
		alloc, err := a.Allocate(in)
		if err != nil {
			t.Fatal(err)
		}
		accs = append(accs, alloc.PredictedAccuracy)
	}
	if !(accs[0] >= accs[1] && accs[1] >= accs[2]) {
		t.Fatalf("accuracy not non-increasing with demand: %v", accs)
	}
	if accs[2] >= accs[0] {
		t.Fatalf("accuracy scaling never engaged: %v", accs)
	}
}

func TestMILPBacksOffWhenOverloaded(t *testing.T) {
	in := testInput(t, []float64{100000, 100000})
	alloc, err := NewMILP(nil).Allocate(in)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.DemandScale >= 1 {
		t.Fatalf("demand scale %v, want < 1 under overload", alloc.DemandScale)
	}
	if err := alloc.Check(in); err != nil {
		t.Fatal(err)
	}
	// Served QPS should be close to the achievable capacity, not tiny.
	served := alloc.ServedQPS[0] + alloc.ServedQPS[1]
	if served < 100 {
		t.Fatalf("served %v QPS under overload, suspiciously low", served)
	}
}

func TestMILPPerDeviceMatchesAggregated(t *testing.T) {
	demand := []float64{40, 20}
	inA := testInput(t, demand)
	inB := testInput(t, demand)
	aggAlloc, err := NewMILP(nil).Allocate(inA)
	if err != nil {
		t.Fatal(err)
	}
	pdAlloc, err := NewMILP(&MILPOptions{PerDevice: true}).Allocate(inB)
	if err != nil {
		t.Fatal(err)
	}
	if err := pdAlloc.Check(inB); err != nil {
		t.Fatal(err)
	}
	// The two exact formulations must agree on the optimal objective.
	if math.Abs(aggAlloc.PredictedAccuracy-pdAlloc.PredictedAccuracy) > 0.01 {
		t.Fatalf("aggregated %.4f vs per-device %.4f predicted accuracy",
			aggAlloc.PredictedAccuracy, pdAlloc.PredictedAccuracy)
	}
}

func TestMILPIdleSystemStillHostsModels(t *testing.T) {
	in := testInput(t, []float64{0, 0})
	alloc, err := NewMILP(nil).Allocate(in)
	if err != nil {
		t.Fatal(err)
	}
	hosted := 0
	for _, h := range alloc.Hosted {
		if h != nil {
			hosted++
		}
	}
	if hosted == 0 {
		t.Fatal("idle system hosts nothing; demand floor not applied")
	}
}

func TestMILPStickyPlacementAcrossCalls(t *testing.T) {
	a := NewMILP(nil)
	in := testInput(t, []float64{20, 10})
	first, err := a.Allocate(in)
	if err != nil {
		t.Fatal(err)
	}
	second, err := a.Allocate(in)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for d := range first.Hosted {
		if first.HostedID(d) != second.HostedID(d) {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d devices changed hosting with unchanged demand", moved)
	}
}

func TestMILPFilterRestrictsVariants(t *testing.T) {
	opts := &MILPOptions{Filter: func(ref VariantRef, in *Input) bool {
		return ref.Variant.Name == "b0" || ref.Variant.Name == "0.25"
	}}
	in := testInput(t, []float64{10, 10})
	alloc, err := NewMILP(opts).Allocate(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range alloc.Hosted {
		if h == nil {
			continue
		}
		if h.Variant.Name != "b0" && h.Variant.Name != "0.25" {
			t.Fatalf("filter violated: hosted %s", h.Variant.ID())
		}
	}
}

func TestInfaasProducesValidAllocation(t *testing.T) {
	in := testInput(t, []float64{50, 25})
	alloc, err := NewInfaasAccuracy().Allocate(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := alloc.Check(in); err != nil {
		t.Fatal(err)
	}
	if alloc.PredictedAccuracy <= 0 {
		t.Fatalf("predicted accuracy %v", alloc.PredictedAccuracy)
	}
}

func TestInfaasNeverBeatsMILP(t *testing.T) {
	// The MILP is optimal; the greedy heuristic can at best match it.
	for _, demand := range [][]float64{{10, 5}, {80, 40}, {300, 100}} {
		in := testInput(t, demand)
		opt, err := NewMILP(nil).Allocate(in)
		if err != nil {
			t.Fatal(err)
		}
		gr, err := NewInfaasAccuracy().Allocate(in)
		if err != nil {
			t.Fatal(err)
		}
		// Compare at equal served volume only when both serve everything.
		grServed := gr.ServedQPS[0] + gr.ServedQPS[1]
		optServed := opt.ServedQPS[0] + opt.ServedQPS[1]
		if grServed >= optServed-1e-6 && gr.PredictedAccuracy > opt.PredictedAccuracy+0.05 {
			t.Fatalf("demand %v: greedy accuracy %.3f beats optimal %.3f at served %.1f>=%.1f",
				demand, gr.PredictedAccuracy, opt.PredictedAccuracy, grServed, optServed)
		}
	}
}

func TestInfaasUsesLeftoverDevicesForAccuracy(t *testing.T) {
	// With tiny demand, all devices should still be put to work hosting
	// accurate variants.
	in := testInput(t, []float64{1, 1})
	alloc, err := NewInfaasAccuracy().Allocate(in)
	if err != nil {
		t.Fatal(err)
	}
	hosted := 0
	for _, h := range alloc.Hosted {
		if h != nil {
			hosted++
		}
	}
	if hosted < in.Cluster.Size() {
		t.Fatalf("only %d/%d devices hosted", hosted, in.Cluster.Size())
	}
}

func TestSommelierFreezesPlacement(t *testing.T) {
	s := NewSommelier(nil)
	in := testInput(t, []float64{20, 10})
	first, err := s.Allocate(in)
	if err != nil {
		t.Fatal(err)
	}
	famOf := func(a *Allocation, d int) int {
		if a.Hosted[d] == nil {
			return -1
		}
		return a.Hosted[d].Family
	}
	// Second call with much higher demand: variants may change, families
	// must not.
	in2 := testInput(t, []float64{400, 100})
	second, err := s.Allocate(in2)
	if err != nil {
		t.Fatal(err)
	}
	if err := second.Check(in2); err != nil {
		t.Fatal(err)
	}
	for d := range first.Hosted {
		f1, f2 := famOf(first, d), famOf(second, d)
		if f2 != -1 && f1 != f2 {
			t.Fatalf("device %d switched family %d -> %d", d, f1, f2)
		}
	}
}

func TestSommelierDowngradesUnderLoad(t *testing.T) {
	s := NewSommelier(nil)
	low := testInput(t, []float64{5, 2})
	first, err := s.Allocate(low)
	if err != nil {
		t.Fatal(err)
	}
	high := testInput(t, []float64{400, 100})
	second, err := s.Allocate(high)
	if err != nil {
		t.Fatal(err)
	}
	if second.EffectiveAccuracy(high) >= first.EffectiveAccuracy(low) {
		t.Fatalf("no accuracy scaling: %.2f -> %.2f",
			first.EffectiveAccuracy(low), second.EffectiveAccuracy(high))
	}
}

func TestClipperHTUsesLeastAccurate(t *testing.T) {
	in := testInput(t, []float64{20, 10})
	alloc, err := NewClipperHT(nil).Allocate(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range alloc.Hosted {
		if h == nil {
			continue
		}
		f := in.Families[h.Family]
		// The hosted variant must be the least accurate feasible one.
		for _, v := range f.Variants {
			if v.Accuracy < h.Variant.Accuracy &&
				feasibleSomewhere(in, VariantRef{Family: h.Family, Variant: v}) {
				t.Fatalf("clipper-ht hosted %s though %s is less accurate and feasible",
					h.Variant.ID(), v.ID())
			}
		}
	}
}

func TestClipperHAUsesMostAccurate(t *testing.T) {
	in := testInput(t, []float64{2, 2})
	alloc, err := NewClipperHA(nil).Allocate(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range alloc.Hosted {
		if h == nil {
			continue
		}
		f := in.Families[h.Family]
		for _, v := range f.Variants {
			if v.Accuracy > h.Variant.Accuracy &&
				feasibleSomewhere(in, VariantRef{Family: h.Family, Variant: v}) {
				t.Fatalf("clipper-ha hosted %s though %s is more accurate and feasible",
					h.Variant.ID(), v.ID())
			}
		}
	}
}

func TestClipperIsStatic(t *testing.T) {
	c := NewClipperHT(nil)
	if c.Dynamic() {
		t.Fatal("clipper must be static")
	}
	in := testInput(t, []float64{20, 10})
	first, err := c.Allocate(in)
	if err != nil {
		t.Fatal(err)
	}
	in2 := testInput(t, []float64{500, 200})
	second, err := c.Allocate(in2)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatal("clipper re-allocated")
	}
}

func TestWithoutSelectionKeepsFullAccuracy(t *testing.T) {
	in := testInput(t, []float64{10, 5})
	alloc, err := NewWithoutSelection(nil).Allocate(in)
	if err != nil {
		t.Fatal(err)
	}
	// Every hosted variant is the most accurate feasible one; with our zoo
	// those are the accuracy-100 variants for these families.
	for _, h := range alloc.Hosted {
		if h == nil {
			continue
		}
		if h.Variant.Accuracy < 99.9 {
			t.Fatalf("w/o-MS hosted %s (accuracy %v)", h.Variant.ID(), h.Variant.Accuracy)
		}
	}
}

func TestWithoutAssignmentUniformRouting(t *testing.T) {
	in := testInput(t, []float64{50, 25})
	alloc, err := NewWithoutAssignment(nil).Allocate(in)
	if err != nil {
		t.Fatal(err)
	}
	for q := range in.Families {
		var weights []float64
		for d, y := range alloc.Routing[q] {
			if alloc.Hosted[d] != nil && alloc.Hosted[d].Family == q {
				weights = append(weights, y)
			} else if y != 0 {
				t.Fatalf("family %d routed to non-hosting device %d", q, d)
			}
		}
		for _, w := range weights[1:] {
			if math.Abs(w-weights[0]) > 1e-9 {
				t.Fatalf("family %d routing not uniform: %v", q, weights)
			}
		}
	}
}

func TestByNameAllocators(t *testing.T) {
	names := []string{"ilp", "infaas_v2", "sommelier", "clipper-ht", "clipper-ha",
		"proteus-wo-ms", "proteus-wo-mp", "proteus-wo-qa"}
	for _, n := range names {
		a, err := ByName(n, nil)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if a.Name() != n {
			t.Fatalf("name %q, want %q", a.Name(), n)
		}
	}
	if _, err := ByName("bogus", nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestTable2FeatureMatrix(t *testing.T) {
	// Table 2 of the paper.
	ht, _ := ByName("clipper-ht", nil)
	som, _ := ByName("sommelier", nil)
	inf, _ := ByName("infaas_v2", nil)
	pro, _ := ByName("ilp", nil)
	if f := ht.Features(); f.Method != "Static" || f.AccuracyScaling {
		t.Fatalf("clipper features %+v", f)
	}
	if f := som.Features(); f.DynamicPlacement || !f.DynamicSelection {
		t.Fatalf("sommelier features %+v", f)
	}
	if f := inf.Features(); !f.DynamicPlacement || f.Method != "Heuristic" {
		t.Fatalf("infaas features %+v", f)
	}
	if f := pro.Features(); !f.DynamicPlacement || !f.DynamicSelection || !f.AccuracyScaling || f.Method != "MILP" {
		t.Fatalf("proteus features %+v", f)
	}
}

func TestInputValidate(t *testing.T) {
	in := testInput(t, []float64{1, 1})
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testInput(t, []float64{1, 1})
	bad.Demand = []float64{1}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected length mismatch error")
	}
	bad2 := testInput(t, []float64{-1, 1})
	if err := bad2.Validate(); err == nil {
		t.Fatal("expected negative demand error")
	}
	bad3 := testInput(t, []float64{1, 1})
	bad3.SLOs[0] = 0
	if err := bad3.Validate(); err == nil {
		t.Fatal("expected bad SLO error")
	}
}

func TestAllocationCheckCatchesBadRouting(t *testing.T) {
	in := testInput(t, []float64{10, 10})
	alloc := NewAllocation(in)
	alloc.Routing[0][0] = 0.5 // routes to an idle device
	if err := alloc.Check(in); err == nil {
		t.Fatal("Check missed routing to idle device")
	}
}

func TestHostedIDAndDevicesServing(t *testing.T) {
	in := testInput(t, []float64{10, 10})
	alloc, err := NewMILP(nil).Allocate(in)
	if err != nil {
		t.Fatal(err)
	}
	for q := range in.Families {
		for _, d := range alloc.DevicesServing(q) {
			if alloc.HostedID(d) == "" {
				t.Fatal("serving device reports empty hosting")
			}
		}
	}
}

func TestCapacitySanity(t *testing.T) {
	in := testInput(t, []float64{1, 1})
	if clusterCapacityHA(in) <= 0 {
		t.Fatal("fixture has no capacity")
	}
}
