package allocator

import (
	"fmt"
	"math"
	"sort"
	"time"

	"proteus/internal/cluster"
	"proteus/internal/lp"
	"proteus/internal/milp"
	"proteus/internal/profiles"
)

// MILPOptions tune the Proteus allocator.
type MILPOptions struct {
	// PerDevice forces the paper's literal per-device formulation with one
	// binary x_{d,m} per (device, variant) pair. By default the allocator
	// aggregates identical devices into integer counts, which is exact for
	// homogeneous device groups and much faster (see DESIGN.md).
	PerDevice bool
	// TimeLimit bounds each MILP solve (default 20s).
	TimeLimit time.Duration
	// MaxNodes bounds branch-and-bound nodes per solve.
	MaxNodes int
	// RelGap is the accepted relative optimality gap (default 1e-6, i.e.
	// effectively exact; negative demands an exact proof, gap 0). The
	// control plane relaxes it to trade optimality for solve time on large
	// instances, as the paper does by falling back to heuristics past its
	// 60-second horizon (§6.8).
	RelGap float64
	// Parallelism is the number of concurrent LP-relaxation solvers per
	// MILP solve. Results are byte-identical for every value ≥ 1; extra
	// workers only shorten wall-clock time. 1 is fully serial; 0 (the
	// default) uses runtime.GOMAXPROCS(0).
	Parallelism int
	// ColdStart disables carrying the previous solve's optimal simplex
	// basis into the next solve of a same-shaped instance. Warm starts
	// change only solve time, never the plan (the solver canonicalizes the
	// root relaxation), so this knob exists for A/B measurement and as an
	// escape hatch.
	ColdStart bool
	// StallNodes stops a solve early (keeping the incumbent) after that
	// many branch-and-bound nodes without improvement. Default 3000;
	// negative disables.
	StallNodes int
	// MaxBackoffs bounds the β demand-reduction iterations (default 600,
	// enough to shrink any family from extreme overload down to the drop
	// threshold).
	MaxBackoffs int
	// DemandFloor is the minimum demand assumed per family so that an idle
	// system still hosts (accurate) models (default 0.01 QPS).
	DemandFloor float64
	// SwitchCost is the objective penalty for loading a variant onto a
	// device that was not hosting it, expressed as the fraction of the
	// device-variant pair's capacity lost to the load (load delay over the
	// control period). Default 0.05; negative disables.
	SwitchCost float64
	// FairnessWeight > 0 enables the fairness extension the paper sketches
	// in §7: the objective gains FairnessWeight · Σs_q · t where t lower-
	// bounds every family's average served accuracy, trading system-level
	// effective accuracy for max-min fairness across applications. 0 (the
	// default) reproduces the paper's system-level objective.
	FairnessWeight float64
	// Filter restricts the candidate variants (used by the Clipper-HT/HA
	// and w/o-MS configurations). Nil admits every variant.
	Filter func(ref VariantRef, in *Input) bool
}

func (o *MILPOptions) withDefaults() MILPOptions {
	out := MILPOptions{TimeLimit: 20 * time.Second, MaxNodes: 200_000, MaxBackoffs: 600, DemandFloor: 0.01, StallNodes: 3000, SwitchCost: 0.05, RelGap: 1e-6}
	if o != nil {
		out.PerDevice = o.PerDevice
		out.ColdStart = o.ColdStart
		out.Filter = o.Filter
		if o.RelGap > 0 {
			out.RelGap = o.RelGap
		} else if o.RelGap < 0 {
			out.RelGap = 0
		}
		if o.Parallelism > 0 {
			out.Parallelism = o.Parallelism
		}
		if o.SwitchCost > 0 {
			out.SwitchCost = o.SwitchCost
		} else if o.SwitchCost < 0 {
			out.SwitchCost = 0
		}
		if o.FairnessWeight > 0 {
			out.FairnessWeight = o.FairnessWeight
		}
		if o.StallNodes > 0 {
			out.StallNodes = o.StallNodes
		} else if o.StallNodes < 0 {
			out.StallNodes = 0
		}
		if o.TimeLimit > 0 {
			out.TimeLimit = o.TimeLimit
		}
		if o.MaxNodes > 0 {
			out.MaxNodes = o.MaxNodes
		}
		if o.MaxBackoffs > 0 {
			out.MaxBackoffs = o.MaxBackoffs
		}
		if o.DemandFloor > 0 {
			out.DemandFloor = o.DemandFloor
		}
	}
	return out
}

// MILP is the Proteus resource manager: it maximizes effective accuracy
// subject to serving the full target demand, jointly choosing model
// selection, placement and query assignment (§4, Eq. 7). On infeasibility
// it divides demand by β = 1.05 and re-solves.
type MILP struct {
	opts MILPOptions
	// prev biases device expansion toward the previous hosting to minimize
	// model-loading churn.
	prev *Allocation
	// prevBasis is the canonical root-relaxation basis of the previous
	// solve, carried forward (unless ColdStart) to warm-start the next
	// solve when the instance shape is unchanged — the common steady-state
	// case across control periods. Warm starts never change the plan.
	prevBasis *lp.Basis
}

// warmBasis returns the carried basis when warm starts are enabled and the
// previous basis matches the instance shape, else nil.
func (m *MILP) warmBasis(p *milp.Problem) *lp.Basis {
	if m.opts.ColdStart || m.prevBasis == nil {
		return nil
	}
	if n, rows := m.prevBasis.Shape(); n != p.NumVariables() || rows != p.NumConstraints() {
		return nil
	}
	return m.prevBasis
}

// noteBasis stores a solve's root basis for the next control period.
func (m *MILP) noteBasis(sol *milp.Solution) {
	if sol.Basis != nil {
		m.prevBasis = sol.Basis
	}
}

// NewMILP returns the Proteus allocator ("ilp" in the artifact configs).
func NewMILP(opts *MILPOptions) *MILP {
	return &MILP{opts: opts.withDefaults()}
}

// Name implements Allocator.
func (m *MILP) Name() string { return "ilp" }

// Dynamic implements Allocator.
func (m *MILP) Dynamic() bool { return true }

// Features implements Allocator.
func (m *MILP) Features() Features {
	return Features{DynamicPlacement: true, DynamicSelection: true, AccuracyScaling: true, Method: "MILP"}
}

// Allocate implements Allocator.
func (m *MILP) Allocate(in *Input) (*Allocation, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	start := time.Now() //lint:allow determinism wall-clock SolveTime measurement only; never feeds the plan
	demand := make([]float64, len(in.Demand))
	for q, s := range in.Demand {
		demand[q] = math.Max(s, m.opts.DemandFloor)
	}
	// β back-off (§4): when the MILP is infeasible, shrink demand by β and
	// re-solve. The back-off is per-family: only the families the
	// feasibility probe reports as short get scaled, so one expensive
	// bottleneck application does not force shedding on every other one.
	scale := make([]float64, len(demand))
	for q := range scale {
		scale[q] = 1
	}
	for iter := 0; iter < m.opts.MaxBackoffs; iter++ {
		scaled := make([]float64, len(demand))
		for q := range demand {
			scaled[q] = demand[q] * scale[q]
			if scaled[q] < 1e-4 {
				// Backed off to nothing: this family is unservable in this
				// configuration (e.g. its only admissible variant fits no
				// device). Serve none of it rather than looping forever.
				scaled[q] = 0
			}
		}
		var (
			alloc *Allocation
			short []bool
			err   error
		)
		if m.opts.PerDevice {
			alloc, short, err = m.solvePerDevice(in, scaled)
		} else {
			alloc, short, err = m.solveAggregated(in, scaled)
		}
		if err != nil {
			return nil, err
		}
		if alloc != nil {
			alloc.Stats.Backoffs = iter
			total, served := 0.0, 0.0
			for q := range alloc.Routing {
				if in.Demand[q] <= 0 {
					continue
				}
				// Routing fractions are relative to the original demand.
				ratio := scaled[q] / math.Max(in.Demand[q], m.opts.DemandFloor)
				for d := range alloc.Routing[q] {
					alloc.Routing[q][d] *= ratio
				}
				alloc.ServedQPS[q] = scaled[q]
				total += in.Demand[q]
				served += math.Min(scaled[q], in.Demand[q])
			}
			alloc.DemandScale = 1
			if total > 0 {
				alloc.DemandScale = served / total
			}
			alloc.SolveTime = time.Since(start) //lint:allow determinism reporting-only wall-clock measurement
			m.prev = alloc
			return alloc, nil
		}
		backedOff := false
		for q := range scale {
			if len(short) == len(scale) && !short[q] {
				continue
			}
			scale[q] /= Beta
			backedOff = true
		}
		if !backedOff {
			// No shortfall information: shrink everything.
			for q := range scale {
				scale[q] /= Beta
			}
		}
	}
	return nil, fmt.Errorf("allocator: MILP infeasible even after %d demand back-offs", m.opts.MaxBackoffs)
}

// solveAggregated solves the exact type-aggregated formulation: integer
// counts n_{g,m} of devices in group g hosting variant m, and served rates
// w_{g,m} for the variant's family.
func (m *MILP) solveAggregated(in *Input, demand []float64) (*Allocation, []bool, error) {
	groups := in.Cluster.GroupByType()
	refs := in.Variants()

	p := milp.NewProblem()
	var pairs []aggPair
	for gi, g := range groups {
		spec := g.Spec
		for ri, ref := range refs {
			if m.excluded(ref, in) {
				continue
			}
			peak := peakFor(spec, ref, in)
			if peak <= 0 {
				continue
			}
			limit := float64(len(g.Devices))
			n := p.AddInteger(fmt.Sprintf("n[%d,%s]", gi, ref.Variant.ID()), 0, limit)
			w := p.AddVariable(fmt.Sprintf("w[%d,%s]", gi, ref.Variant.ID()), 0, peak*limit)
			p.SetObjective(w, ref.Variant.Accuracy)
			// w <= peak * n
			p.AddConstraint([]lp.Term{{Var: w, Coef: 1}, {Var: n, Coef: -peak}}, lp.LE, 0)
			pairs = append(pairs, aggPair{g: gi, r: ri, n: n, w: w, l: -1, peak: peak})
		}
	}
	if len(pairs) == 0 {
		return nil, nil, nil
	}
	// Σ_m n_{g,m} <= |g| per group.
	for gi, g := range groups {
		var terms []lp.Term
		for _, pr := range pairs {
			if pr.g == gi {
				terms = append(terms, lp.Term{Var: pr.n, Coef: 1})
			}
		}
		if len(terms) > 0 {
			p.AddConstraint(terms, lp.LE, float64(len(g.Devices)))
		}
	}
	// Σ w = s_q per family.
	for q := range in.Families {
		var terms []lp.Term
		for _, pr := range pairs {
			if refs[pr.r].Family == q {
				terms = append(terms, lp.Term{Var: pr.w, Coef: 1})
			}
		}
		if len(terms) == 0 {
			if demand[q] > 0 {
				short := make([]bool, len(in.Families))
				short[q] = true
				return nil, short, nil // family unservable at any scale
			}
			continue
		}
		p.AddConstraint(terms, lp.EQ, demand[q])
	}

	// Fairness extension (§7): t lower-bounds each family's mean served
	// accuracy; its objective weight trades total accuracy for max-min
	// fairness. Families with zero demand are unconstrained.
	tVar := -1
	if m.opts.FairnessWeight > 0 {
		tVar = p.AddVariable("t-fair", 0, 100)
		totalDemand := 0.0
		for q := range in.Families {
			if demand[q] <= 0 {
				continue
			}
			totalDemand += demand[q]
			// Σ A_m w_{g,m,q} >= t * s_q
			terms := []lp.Term{{Var: tVar, Coef: -demand[q]}}
			for _, pr := range pairs {
				if refs[pr.r].Family == q {
					terms = append(terms, lp.Term{Var: pr.w, Coef: refs[pr.r].Variant.Accuracy})
				}
			}
			p.AddConstraint(terms, lp.GE, 0)
		}
		p.SetObjective(tVar, m.opts.FairnessWeight*totalDemand)
	}

	// Switch costs: hosting more devices of a variant than the previous
	// plan requires model loads, each costing roughly SwitchCost of the
	// device's capacity during the control period. The load-count variables
	// l >= n - prev carry the penalty in the objective, so the optimizer
	// trades accuracy gains against re-placement downtime explicitly.
	prevCounts := m.prevCounts(in, groups, refs, pairs)
	var switchCosts []float64
	if prevCounts != nil && m.opts.SwitchCost > 0 {
		switchCosts = make([]float64, len(pairs))
		for i := range pairs {
			pr := &pairs[i]
			switchCosts[i] = m.opts.SwitchCost * pr.peak * 100
			pr.l = p.AddVariable(fmt.Sprintf("l[%d]", i), 0, float64(in.Cluster.Size()))
			p.SetObjective(pr.l, -switchCosts[i])
			// l >= n - prev  ⟺  n - l <= prev
			p.AddConstraint([]lp.Term{{Var: pr.n, Coef: 1}, {Var: pr.l, Coef: -1}},
				lp.LE, float64(prevCounts[i]))
		}
	}

	// Warm starts: the previous plan adapted to the new demand, and a local
	// search from scratch. The better feasible one seeds branch-and-bound.
	ginfos := make([]groupInfo, len(groups))
	for gi := range groups {
		ginfos[gi] = groupInfo{size: len(groups[gi].Devices)}
	}
	space := newSearchSpace(ginfos, pairs, refs, demand)
	space.prev = prevCounts
	space.switchCost = switchCosts
	var warm []float64
	warmObj := math.Inf(-1)
	consider := func(x []float64) {
		if x == nil {
			return
		}
		if obj, feasible := space.objective(space.countsFromVector(x)); feasible && obj > warmObj {
			warm, warmObj = x, obj
		}
	}
	if prevCounts != nil {
		consider(space.vector(append([]int(nil), prevCounts...), p.NumVariables()))
	}
	heurCounts := space.improve(make([]int, len(pairs)), 50)
	consider(space.vector(heurCounts, p.NumVariables()))

	if warm == nil {
		// Feasibility probe: if neither the previous plan nor the local
		// search can pack this demand, treat the step as infeasible and let
		// the β back-off shrink demand instead of burning the branch-and-
		// bound budget proving integer infeasibility near the capacity
		// boundary. (Slightly conservative: a packing the heuristics miss
		// costs at most one extra β step of shed demand.) The local search's
		// shortfall marks the bottleneck families for per-family back-off.
		return nil, space.shortfall(heurCounts), nil
	}

	sol := milp.Solve(p, &milp.Options{
		TimeLimit:   m.opts.TimeLimit,
		MaxNodes:    m.opts.MaxNodes,
		RelGap:      m.opts.RelGap,
		IntTol:      -1, // solver default
		StallNodes:  m.opts.StallNodes,
		Parallelism: m.opts.Parallelism,
		WarmStart:   warm,
		WarmBasis:   m.warmBasis(p),
	})
	m.noteBasis(&sol)
	switch sol.Status {
	case milp.Optimal, milp.Feasible:
	case milp.Infeasible, milp.Limit:
		return nil, nil, nil
	default:
		return nil, nil, fmt.Errorf("allocator: MILP solve ended with status %v", sol.Status)
	}

	xFinal := sol.X
	counts := space.countsFromVector(sol.X)
	objFinal, _ := space.objective(counts)
	// The local-search passes optimize the plain accuracy objective; with
	// the fairness term active they could override a fairer incumbent, so
	// they only run in the standard configuration.
	if m.opts.FairnessWeight == 0 {
		// Polish the incumbent: under a time limit the branch-and-bound may
		// stop with an improvable plan; a local-search pass is cheap and
		// only ever helps.
		polished := space.improve(append([]int(nil), counts...), 50)
		if obj, feasible := space.objective(polished); feasible && obj > objFinal+1e-9 {
			if pv := space.vector(polished, p.NumVariables()); pv != nil {
				xFinal = pv
				objFinal = obj
			}
		}
		// Churn control: if evolving the *previous* plan under the new
		// demand gets within 0.2% of the best objective, prefer it —
		// equal-accuracy optima abound in this MILP, and gratuitous
		// re-placement costs a model load (device downtime) per switched
		// device.
		if prevCounts := m.prevCounts(in, groups, refs, pairs); prevCounts != nil {
			prevCounts = space.improve(prevCounts, 50)
			if obj, feasible := space.objective(prevCounts); feasible && obj >= objFinal*0.998 {
				if pv := space.vector(prevCounts, p.NumVariables()); pv != nil {
					xFinal = pv
					objFinal = obj
				}
			}
		}
	}

	alloc := NewAllocation(in)
	alloc.Optimal = sol.Status == milp.Optimal
	alloc.Stats = solverStats(&sol, m.opts.Parallelism, m.opts.TimeLimit > 0)
	// Expand group counts to concrete devices, preferring devices that
	// already host the same variant (minimizes loading churn).
	used := make(map[int]bool)
	type placed struct {
		device int
		ref    VariantRef
		share  float64 // per-device served QPS
	}
	var placements []placed
	for _, pr := range pairs {
		count := int(math.Round(xFinal[pr.n]))
		if count <= 0 {
			continue
		}
		ref := refs[pr.r]
		devices := m.pickDevices(groups[pr.g].Devices, ref, count, used)
		share := xFinal[pr.w] / float64(count)
		for _, d := range devices {
			alloc.Hosted[d] = &VariantRef{Family: ref.Family, Variant: ref.Variant}
			placements = append(placements, placed{device: d, ref: ref, share: share})
		}
	}
	accNum, accDen := 0.0, 0.0
	for _, pl := range placements {
		if demand[pl.ref.Family] > 0 {
			alloc.Routing[pl.ref.Family][pl.device] = pl.share / demand[pl.ref.Family]
		}
		accNum += pl.share * pl.ref.Variant.Accuracy
		accDen += pl.share
	}
	if accDen > 0 {
		alloc.PredictedAccuracy = accNum / accDen
	}
	_ = objFinal
	return alloc, nil, nil
}

// aggPair links one (group, variant) choice to its MILP variables in the
// aggregated formulation.
type aggPair struct {
	g, r int // group index, variant-ref index
	n, w int // MILP variable ids
	l    int // load-count variable id (-1 when no previous plan)
	peak float64
}

// prevCounts maps the previous allocation's hosting onto the current pair
// space (nil when there is no usable previous plan).
func (m *MILP) prevCounts(in *Input, groups []cluster.TypeGroup, refs []VariantRef, pairs []aggPair) []int {
	if m.prev == nil || len(m.prev.Hosted) != in.Cluster.Size() {
		return nil
	}
	devGroup := make([]int, in.Cluster.Size())
	for d := range devGroup {
		devGroup[d] = -1 // not in any group (e.g. failed devices)
	}
	for gi, g := range groups {
		for _, d := range g.Devices {
			devGroup[d] = gi
		}
	}
	hosted := make(map[int]map[string]int)
	for d, ref := range m.prev.Hosted {
		if ref == nil || devGroup[d] < 0 {
			continue
		}
		g := devGroup[d]
		if hosted[g] == nil {
			hosted[g] = make(map[string]int)
		}
		hosted[g][ref.Variant.ID()]++
	}
	counts := make([]int, len(pairs))
	for i, pr := range pairs {
		counts[i] = hosted[pr.g][refs[pr.r].Variant.ID()]
	}
	return counts
}

// solvePerDevice solves the paper's literal formulation with one binary per
// (device, variant) pair — used by the Fig. 10 scalability experiments and
// by clusters whose devices are all distinct.
func (m *MILP) solvePerDevice(in *Input, demand []float64) (*Allocation, []bool, error) {
	refs := in.Variants()
	devices := in.Cluster.Devices()

	p := milp.NewProblem()
	type pair struct {
		d, r int
		x, w int
		peak float64
	}
	var pairs []pair
	for _, dev := range devices {
		for ri, ref := range refs {
			if m.excluded(ref, in) {
				continue
			}
			peak := in.Peak(dev, ref)
			if peak <= 0 {
				continue
			}
			x := p.AddBinary(fmt.Sprintf("x[%d,%s]", dev.ID, ref.Variant.ID()))
			w := p.AddVariable(fmt.Sprintf("w[%d,%s]", dev.ID, ref.Variant.ID()), 0, peak)
			p.SetObjective(w, ref.Variant.Accuracy)
			p.AddConstraint([]lp.Term{{Var: w, Coef: 1}, {Var: x, Coef: -peak}}, lp.LE, 0)
			pairs = append(pairs, pair{d: dev.ID, r: ri, x: x, w: w, peak: peak})
		}
	}
	if len(pairs) == 0 {
		return nil, nil, nil
	}
	// Eq. 1: at most one variant per device.
	for _, dev := range devices {
		var terms []lp.Term
		for _, pr := range pairs {
			if pr.d == dev.ID {
				terms = append(terms, lp.Term{Var: pr.x, Coef: 1})
			}
		}
		if len(terms) > 0 {
			p.AddConstraint(terms, lp.LE, 1)
		}
	}
	// Eq. 6: demand satisfied per family.
	for q := range in.Families {
		var terms []lp.Term
		for _, pr := range pairs {
			if refs[pr.r].Family == q {
				terms = append(terms, lp.Term{Var: pr.w, Coef: 1})
			}
		}
		if len(terms) == 0 {
			if demand[q] > 0 {
				short := make([]bool, len(in.Families))
				short[q] = true
				return nil, short, nil
			}
			continue
		}
		p.AddConstraint(terms, lp.EQ, demand[q])
	}

	sol := milp.Solve(p, &milp.Options{
		TimeLimit:   m.opts.TimeLimit,
		MaxNodes:    m.opts.MaxNodes,
		RelGap:      m.opts.RelGap,
		IntTol:      -1, // solver default
		StallNodes:  m.opts.StallNodes,
		Parallelism: m.opts.Parallelism,
		WarmBasis:   m.warmBasis(p),
	})
	m.noteBasis(&sol)
	switch sol.Status {
	case milp.Optimal, milp.Feasible:
	case milp.Infeasible, milp.Limit:
		return nil, nil, nil
	default:
		return nil, nil, fmt.Errorf("allocator: MILP solve ended with status %v", sol.Status)
	}

	alloc := NewAllocation(in)
	alloc.Optimal = sol.Status == milp.Optimal
	alloc.Stats = solverStats(&sol, m.opts.Parallelism, m.opts.TimeLimit > 0)
	for _, pr := range pairs {
		if sol.X[pr.x] < 0.5 {
			continue
		}
		ref := refs[pr.r]
		alloc.Hosted[pr.d] = &VariantRef{Family: ref.Family, Variant: ref.Variant}
		if demand[ref.Family] > 0 {
			alloc.Routing[ref.Family][pr.d] = sol.X[pr.w] / demand[ref.Family]
		}
	}
	alloc.PredictedAccuracy = predictedAccuracy(sol.Objective, demand)
	return alloc, nil, nil
}

func (m *MILP) excluded(ref VariantRef, in *Input) bool {
	return m.opts.Filter != nil && !m.opts.Filter(ref, in)
}

// prevHosts counts how many of the group's devices hosted ref's variant in
// the previous allocation.
func (m *MILP) prevHosts(group []int, ref VariantRef) int {
	if m.prev == nil {
		return 0
	}
	n := 0
	for _, d := range group {
		if d < len(m.prev.Hosted) && m.prev.Hosted[d] != nil &&
			m.prev.Hosted[d].Variant.ID() == ref.Variant.ID() {
			n++
		}
	}
	return n
}

// pickDevices chooses count device IDs from the group, preferring devices
// that hosted the same variant in the previous allocation.
func (m *MILP) pickDevices(group []int, ref VariantRef, count int, used map[int]bool) []int {
	var sticky, fresh []int
	for _, d := range group {
		if used[d] {
			continue
		}
		if m.prev != nil && d < len(m.prev.Hosted) && m.prev.Hosted[d] != nil &&
			m.prev.Hosted[d].Variant.ID() == ref.Variant.ID() {
			sticky = append(sticky, d)
		} else {
			fresh = append(fresh, d)
		}
	}
	sort.Ints(sticky)
	sort.Ints(fresh)
	picked := append(sticky, fresh...)
	if count > len(picked) {
		count = len(picked)
	}
	picked = picked[:count]
	for _, d := range picked {
		used[d] = true
	}
	return picked
}

// solverStats converts a branch-and-bound solution into the audit-log
// form, sanitizing infinities (a Limit-terminated solve may carry an
// unproven +Inf bound, which JSON cannot encode). budgeted records whether
// a wall-clock budget was configured for the solve — a property of the
// configuration, not of how the solve went.
func solverStats(sol *milp.Solution, parallelism int, budgeted bool) SolverStats {
	st := SolverStats{
		Objective:   sol.Objective,
		Nodes:       sol.Nodes,
		SolverTime:  sol.Elapsed,
		RelGap:      -1,
		Parallelism: milp.EffectiveParallelism(parallelism),
		Budgeted:    budgeted,
		TimeLimited: sol.TimeLimited,
	}
	if gap := sol.Gap(); !math.IsInf(gap, 0) && !math.IsNaN(gap) {
		st.RelGap = gap
	}
	if !math.IsInf(sol.Bound, 0) && !math.IsNaN(sol.Bound) {
		st.Bound = sol.Bound
	}
	return st
}

func predictedAccuracy(objective float64, demand []float64) float64 {
	total := 0.0
	for _, s := range demand {
		total += s
	}
	if total <= 0 {
		return 0
	}
	return objective / total
}

// peakFor evaluates P_{d,m,q} for a device-type spec rather than a concrete
// device (all devices in a group are identical).
func peakFor(spec cluster.TypeSpec, ref VariantRef, in *Input) float64 {
	return profiles.EffectiveCapacity(spec, ref.Variant, in.SLOs[ref.Family])
}
