package allocator

import (
	"sort"
	"time"
)

// InfaasAccuracy is the INFaaS-Accuracy baseline (§6.1.1): INFaaS's greedy
// model-selection/placement heuristic with the objective and constraint
// swapped so it minimizes accuracy drop under the fixed cluster budget
// ("infaas_v2" in the artifact configs). It is dynamic — it re-runs on
// demand changes — but, being greedy, it gets stuck in local optima the
// MILP avoids (§6.2).
//
// The heuristic, per family in descending-demand order: repeatedly commit
// the most accurate (device, variant) pair whose peak throughput covers the
// family's remaining demand; if no single pair covers it, commit the pair
// with the highest peak to close the gap fastest. Leftover devices are then
// used to upgrade the family with the largest demand-weighted accuracy
// deficit.
type InfaasAccuracy struct{}

// NewInfaasAccuracy returns the INFaaS-Accuracy baseline allocator.
func NewInfaasAccuracy() *InfaasAccuracy { return &InfaasAccuracy{} }

// Name implements Allocator.
func (*InfaasAccuracy) Name() string { return "infaas_v2" }

// Dynamic implements Allocator.
func (*InfaasAccuracy) Dynamic() bool { return true }

// Features implements Allocator.
func (*InfaasAccuracy) Features() Features {
	return Features{DynamicPlacement: true, DynamicSelection: true, AccuracyScaling: true, Method: "Heuristic"}
}

// Allocate implements Allocator.
func (g *InfaasAccuracy) Allocate(in *Input) (*Allocation, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	start := time.Now() //lint:allow determinism wall-clock SolveTime measurement only; never feeds the plan
	alloc := NewAllocation(in)
	refs := in.Variants()

	free := make(map[int]bool, in.Cluster.Size())
	for _, d := range in.Cluster.HealthyDevices() {
		free[d.ID] = true
	}

	// Families by descending demand; ties by index for determinism.
	order := make([]int, len(in.Families))
	for q := range order {
		order[q] = q
	}
	sort.SliceStable(order, func(i, j int) bool {
		return in.Demand[order[i]] > in.Demand[order[j]]
	})

	capacity := make([]float64, len(in.Families)) // provisioned QPS per family
	for _, q := range order {
		remaining := in.Demand[q]
		for remaining > 1e-9 {
			d, r := g.bestPair(in, refs, free, q, remaining)
			if d < 0 {
				break // no devices or no feasible variant left
			}
			ref := refs[r]
			alloc.Hosted[d] = &VariantRef{Family: ref.Family, Variant: ref.Variant}
			free[d] = false
			p := in.Peak(in.Cluster.Device(d), ref)
			capacity[q] += p
			remaining -= p
		}
	}

	// Upgrade pass: spend leftover devices on the family with the largest
	// demand-weighted accuracy deficit, hosting its most accurate feasible
	// variant on each.
	for {
		d := -1
		for _, dev := range in.Cluster.Devices() {
			if free[dev.ID] {
				d = dev.ID
				break
			}
		}
		if d < 0 {
			break
		}
		q := g.neediestFamily(in, alloc, capacity)
		r := g.mostAccurateFeasible(in, refs, d, q)
		if r < 0 {
			free[d] = false // nothing fits this device at all
			continue
		}
		ref := refs[r]
		alloc.Hosted[d] = &VariantRef{Family: ref.Family, Variant: ref.Variant}
		capacity[q] += in.Peak(in.Cluster.Device(d), ref)
		free[d] = false
	}

	fillRoutingByAccuracy(in, alloc)
	alloc.PredictedAccuracy = alloc.EffectiveAccuracy(in)
	alloc.SolveTime = time.Since(start) //lint:allow determinism reporting-only wall-clock measurement
	return alloc, nil
}

// bestPair picks the greedy (device, variantRef) choice for family q.
func (g *InfaasAccuracy) bestPair(in *Input, refs []VariantRef, free map[int]bool, q int, remaining float64) (int, int) {
	bestD, bestR := -1, -1
	bestCovers := false
	var bestAcc, bestPeak float64
	for _, dev := range in.Cluster.Devices() {
		if !free[dev.ID] {
			continue
		}
		for r, ref := range refs {
			if ref.Family != q {
				continue
			}
			p := in.Peak(dev, ref)
			if p <= 0 {
				continue
			}
			covers := p >= remaining
			better := false
			switch {
			case covers && !bestCovers:
				better = true
			case covers == bestCovers && covers:
				// Most accurate pair that covers; break ties with the
				// smaller peak to avoid wasting fast devices.
				better = ref.Variant.Accuracy > bestAcc ||
					(ref.Variant.Accuracy == bestAcc && p < bestPeak)
			case covers == bestCovers && !covers:
				// Nothing covers: chase throughput, then accuracy.
				better = p > bestPeak ||
					(p == bestPeak && ref.Variant.Accuracy > bestAcc)
			}
			if better {
				bestD, bestR = dev.ID, r
				bestCovers, bestAcc, bestPeak = covers, ref.Variant.Accuracy, p
			}
		}
	}
	return bestD, bestR
}

// neediestFamily returns the family with the largest demand-weighted
// accuracy deficit in the current plan.
func (g *InfaasAccuracy) neediestFamily(in *Input, alloc *Allocation, capacity []float64) int {
	best, bestScore := 0, -1.0
	for q := range in.Families {
		top := in.Families[q].MostAccurate().Accuracy
		// Current capacity-weighted accuracy for the family.
		num, den := 0.0, 0.0
		for d, ref := range alloc.Hosted {
			if ref == nil || ref.Family != q {
				continue
			}
			p := in.Peak(in.Cluster.Device(d), *ref)
			num += p * ref.Variant.Accuracy
			den += p
		}
		deficit := top
		if den > 0 {
			deficit = top - num/den
		}
		score := deficit * (in.Demand[q] + 1)
		if capacity[q] < in.Demand[q] {
			// Families still under-provisioned take absolute priority.
			score += 1e9 * (in.Demand[q] - capacity[q])
		}
		if score > bestScore {
			best, bestScore = q, score
		}
	}
	return best
}

func (g *InfaasAccuracy) mostAccurateFeasible(in *Input, refs []VariantRef, d, q int) int {
	dev := in.Cluster.Device(d)
	best, bestAcc := -1, -1.0
	for r, ref := range refs {
		if ref.Family != q {
			continue
		}
		if in.Peak(dev, ref) <= 0 {
			continue
		}
		if ref.Variant.Accuracy > bestAcc {
			best, bestAcc = r, ref.Variant.Accuracy
		}
	}
	return best
}

// fillRoutingByAccuracy computes the query assignment for a fixed placement
// by filling the most accurate hosting devices to capacity first. Routing
// rows sum to min(1, capacity/demand); ServedQPS records the provisioned
// rate.
func fillRoutingByAccuracy(in *Input, alloc *Allocation) {
	for q := range in.Families {
		type host struct {
			d    int
			acc  float64
			peak float64
		}
		var hosts []host
		for d, ref := range alloc.Hosted {
			if ref == nil || ref.Family != q {
				continue
			}
			hosts = append(hosts, host{d: d, acc: ref.Variant.Accuracy, peak: in.Peak(in.Cluster.Device(d), *ref)})
		}
		sort.SliceStable(hosts, func(i, j int) bool { return hosts[i].acc > hosts[j].acc })
		demand := in.Demand[q]
		if demand <= 0 {
			// No demand: spread nominal zero routing; leave row empty.
			alloc.ServedQPS[q] = 0
			continue
		}
		remaining := demand
		served := 0.0
		for _, h := range hosts {
			if remaining <= 0 {
				break
			}
			take := h.peak
			if take > remaining {
				take = remaining
			}
			alloc.Routing[q][h.d] = take / demand
			served += take
			remaining -= take
		}
		alloc.ServedQPS[q] = served
	}
}
