package allocator

// feasibleSomewhere reports whether the variant can serve its family's SLO
// on at least one device type in the cluster.
func feasibleSomewhere(in *Input, ref VariantRef) bool {
	for _, g := range in.Cluster.GroupByType() {
		if peakFor(g.Spec, ref, in) > 0 {
			return true
		}
	}
	return false
}

// extremeVariantFilter returns a Filter admitting, per family, only the
// most (or least) accurate variant that is SLO-feasible somewhere in the
// cluster. Clipper-HA/HT and the w/o-MS ablation use it.
func extremeVariantFilter(most bool) func(ref VariantRef, in *Input) bool {
	return func(ref VariantRef, in *Input) bool {
		f := in.Families[ref.Family]
		if most {
			for i := len(f.Variants) - 1; i >= 0; i-- {
				cand := VariantRef{Family: ref.Family, Variant: f.Variants[i]}
				if feasibleSomewhere(in, cand) {
					return ref.Variant.ID() == cand.Variant.ID()
				}
			}
		} else {
			for i := 0; i < len(f.Variants); i++ {
				cand := VariantRef{Family: ref.Family, Variant: f.Variants[i]}
				if feasibleSomewhere(in, cand) {
					return ref.Variant.ID() == cand.Variant.ID()
				}
			}
		}
		return false
	}
}

// Clipper is the fully static baseline (§6.1.1): the paper extends Clipper
// to obtain one initial allocation from the MILP and never changes it.
// Two flavours exist: Clipper-HT pins every family to its least accurate
// (highest-throughput) variant; Clipper-HA to its most accurate one. The
// same plan is returned on every call; Dynamic() is false so the control
// plane never re-invokes it. Clipper is also representative of
// TensorFlow-Serving and Triton (§6.1.1), which likewise leave allocation
// static.
type Clipper struct {
	name   string
	inner  *MILP
	cached *Allocation
}

// NewClipperHT returns the high-throughput static baseline ("clipper-ht").
func NewClipperHT(opts *MILPOptions) *Clipper {
	o := opts.withDefaults()
	o.Filter = extremeVariantFilter(false)
	return &Clipper{name: "clipper-ht", inner: NewMILP(&o)}
}

// NewClipperHA returns the high-accuracy static baseline ("clipper-ha").
func NewClipperHA(opts *MILPOptions) *Clipper {
	o := opts.withDefaults()
	o.Filter = extremeVariantFilter(true)
	return &Clipper{name: "clipper-ha", inner: NewMILP(&o)}
}

// Name implements Allocator.
func (c *Clipper) Name() string { return c.name }

// Dynamic implements Allocator.
func (c *Clipper) Dynamic() bool { return false }

// Features implements Allocator.
func (c *Clipper) Features() Features {
	return Features{Method: "Static"}
}

// Allocate implements Allocator. The first call computes the static plan
// (for the demand it is given — the experiment's initial provisioning
// point); later calls return it unchanged.
func (c *Clipper) Allocate(in *Input) (*Allocation, error) {
	if c.cached != nil {
		return c.cached, nil
	}
	a, err := c.inner.Allocate(in)
	if err != nil {
		return nil, err
	}
	c.cached = a
	return a, nil
}
