package allocator

import (
	"testing"
	"time"
)

// TestMILPWarmStartMatchesColdStart re-runs the same allocator instance
// across control periods (which arms the basis carry) and checks the plans
// are identical to a fresh cold-start allocator's: warm starts may only
// change solve time, never the plan.
func TestMILPWarmStartMatchesColdStart(t *testing.T) {
	demands := [][]float64{{40, 40}, {60, 80}, {120, 50}, {60, 80}}
	warm := NewMILP(nil)
	cold := NewMILP(&MILPOptions{ColdStart: true})
	for i, d := range demands {
		inW := testInput(t, d)
		inC := testInput(t, d)
		aw, err := warm.Allocate(inW)
		if err != nil {
			t.Fatalf("step %d warm: %v", i, err)
		}
		ac, err := cold.Allocate(inC)
		if err != nil {
			t.Fatalf("step %d cold: %v", i, err)
		}
		if len(aw.Hosted) != len(ac.Hosted) {
			t.Fatalf("step %d: hosted count %d vs %d", i, len(aw.Hosted), len(ac.Hosted))
		}
		for dev, vw := range aw.Hosted {
			vc := ac.Hosted[dev]
			switch {
			case vw == nil != (vc == nil):
				t.Fatalf("step %d device %d: warm hosts %v, cold hosts %v", i, dev, vw, vc)
			case vw != nil && (vw.Family != vc.Family || vw.Variant != vc.Variant):
				t.Fatalf("step %d device %d: warm hosts %v, cold hosts %v", i, dev, vw, vc)
			}
		}
		for q := range aw.Routing {
			for dev := range aw.Routing[q] {
				if aw.Routing[q][dev] != ac.Routing[q][dev] {
					t.Fatalf("step %d routing[%d][%d]: warm=%v cold=%v", i, q, dev, aw.Routing[q][dev], ac.Routing[q][dev])
				}
			}
		}
		if aw.PredictedAccuracy != ac.PredictedAccuracy {
			t.Fatalf("step %d: accuracy warm=%v cold=%v", i, aw.PredictedAccuracy, ac.PredictedAccuracy)
		}
	}
	if warm.prevBasis == nil {
		t.Fatal("warm allocator never captured a basis to carry forward")
	}
	if cold.prevBasis == nil {
		// noteBasis still records it; ColdStart gates the *use*, so a later
		// config flip can start warm immediately.
		t.Fatal("cold allocator should still record the basis")
	}
	if cold.warmBasis(nil) != nil {
		t.Fatal("ColdStart allocator must never hand out a warm basis")
	}
}

// TestSolverStatsBudgeted pins the Budgeted/TimeLimited mapping: Budgeted
// reflects only whether a TimeLimit was configured, independent of whether
// the clock fired.
func TestSolverStatsBudgeted(t *testing.T) {
	in := testInput(t, []float64{40, 40})
	a := NewMILP(&MILPOptions{TimeLimit: time.Minute})
	alloc, err := a.Allocate(in)
	if err != nil {
		t.Fatal(err)
	}
	if !alloc.Stats.Budgeted {
		t.Fatal("TimeLimit configured but Stats.Budgeted is false")
	}
	if alloc.Stats.TimeLimited {
		t.Fatal("a one-minute budget cannot plausibly fire on the fixture; TimeLimited must be false")
	}
}
