package allocator

import (
	"testing"
	"testing/quick"
	"time"

	"proteus/internal/cluster"
	"proteus/internal/models"
	"proteus/internal/numeric"
	"proteus/internal/profiles"
)

// randomInput builds an allocation problem with a random cluster size and
// random demands over a random subset of the zoo.
func randomInput(seed uint64) *Input {
	rng := numeric.NewRNG(seed)
	zoo := models.Zoo()
	rng.Shuffle(len(zoo), func(i, j int) { zoo[i], zoo[j] = zoo[j], zoo[i] })
	nf := 1 + rng.Intn(4)
	fams := zoo[:nf]
	slos := make([]time.Duration, nf)
	demand := make([]float64, nf)
	for q, f := range fams {
		slos[q] = profiles.FamilySLO(f, 1.5+rng.Float64()*2)
		demand[q] = rng.Float64() * 300
	}
	return &Input{
		Cluster:  cluster.ScaledTestbed(4 + 4*rng.Intn(4)),
		Families: fams,
		SLOs:     slos,
		Demand:   demand,
	}
}

// TestPropertyMILPPlansAreValid checks that every plan the Proteus
// allocator emits satisfies the structural invariants: routing only to
// devices hosting the right family, rows within [0,1], per-device load
// within capacity.
func TestPropertyMILPPlansAreValid(t *testing.T) {
	f := func(seed uint64) bool {
		in := randomInput(seed)
		a := NewMILP(&MILPOptions{TimeLimit: 200 * time.Millisecond, RelGap: 0.02, StallNodes: 300})
		alloc, err := a.Allocate(in)
		if err != nil {
			return false
		}
		if err := alloc.Check(in); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Served never exceeds demand (plus the idle floor).
		for q := range in.Families {
			if alloc.ServedQPS[q] > in.Demand[q]+1e-6 && alloc.ServedQPS[q] > 0.011 {
				return false
			}
		}
		return alloc.DemandScale > 0 && alloc.DemandScale <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyHeuristicPlansAreValid runs the same structural check on the
// INFaaS-Accuracy greedy heuristic.
func TestPropertyHeuristicPlansAreValid(t *testing.T) {
	f := func(seed uint64) bool {
		in := randomInput(seed)
		alloc, err := NewInfaasAccuracy().Allocate(in)
		if err != nil {
			return false
		}
		if err := alloc.Check(in); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLocalSearchNeverWorsens checks the hill-climbing improver's
// contract: the objective after improve() is never below the start.
func TestPropertyLocalSearchNeverWorsens(t *testing.T) {
	f := func(seed uint64) bool {
		in := randomInput(seed)
		groups := in.Cluster.GroupByType()
		refs := in.Variants()
		var pairs []aggPair
		varID := 0
		for gi := range groups {
			for ri, ref := range refs {
				peak := peakFor(groups[gi].Spec, ref, in)
				if peak <= 0 {
					continue
				}
				pairs = append(pairs, aggPair{g: gi, r: ri, n: varID, w: varID + 1, l: -1, peak: peak})
				varID += 2
			}
		}
		if len(pairs) == 0 {
			return true
		}
		ginfos := make([]groupInfo, len(groups))
		for gi := range groups {
			ginfos[gi] = groupInfo{size: len(groups[gi].Devices)}
		}
		space := newSearchSpace(ginfos, pairs, refs, in.Demand)
		rng := numeric.NewRNG(seed ^ 0xabc)
		counts := make([]int, len(pairs))
		// Random (possibly slot-violating-free) starting counts.
		for gi, g := range ginfos {
			slots := g.size
			for slots > 0 && rng.Float64() < 0.7 {
				var candidates []int
				for i, pr := range pairs {
					if pr.g == gi {
						candidates = append(candidates, i)
					}
				}
				if len(candidates) == 0 {
					break
				}
				counts[candidates[rng.Intn(len(candidates))]]++
				slots--
			}
		}
		before, _ := space.objective(counts)
		improved := space.improve(append([]int(nil), counts...), 20)
		after, _ := space.objective(improved)
		if after < before-1e-6 {
			return false
		}
		// Slot constraints still hold.
		used := make([]int, len(ginfos))
		for i, c := range improved {
			if c < 0 {
				return false
			}
			used[pairs[i].g] += c
		}
		for gi, u := range used {
			if u > ginfos[gi].size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
