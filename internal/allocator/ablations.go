package allocator

import "fmt"

// WithoutSelection is the "Proteus w/o MS" ablation (§6.5): optimal MILP
// placement and query assignment with adaptive batching, but no accuracy
// scaling — every family is pinned to its most accurate feasible variant,
// so effective accuracy stays at 100% while overload turns into SLO
// violations.
type WithoutSelection struct {
	inner *MILP
}

// NewWithoutSelection returns the w/o-MS ablation allocator.
func NewWithoutSelection(opts *MILPOptions) *WithoutSelection {
	o := opts.withDefaults()
	o.Filter = extremeVariantFilter(true)
	return &WithoutSelection{inner: NewMILP(&o)}
}

// Name implements Allocator.
func (*WithoutSelection) Name() string { return "proteus-wo-ms" }

// Dynamic implements Allocator.
func (*WithoutSelection) Dynamic() bool { return true }

// Features implements Allocator.
func (*WithoutSelection) Features() Features {
	return Features{DynamicPlacement: true, DynamicSelection: false, AccuracyScaling: false, Method: "MILP"}
}

// Allocate implements Allocator.
func (a *WithoutSelection) Allocate(in *Input) (*Allocation, error) {
	return a.inner.Allocate(in)
}

// WithoutAssignment is the "Proteus w/o QA" ablation (§6.5): the MILP's
// model selection and placement are kept, but queries are spread uniformly
// across the devices hosting each family's variants, ignoring their serving
// capacities.
type WithoutAssignment struct {
	inner *MILP
}

// NewWithoutAssignment returns the w/o-QA ablation allocator.
func NewWithoutAssignment(opts *MILPOptions) *WithoutAssignment {
	return &WithoutAssignment{inner: NewMILP(opts)}
}

// Name implements Allocator.
func (*WithoutAssignment) Name() string { return "proteus-wo-qa" }

// Dynamic implements Allocator.
func (*WithoutAssignment) Dynamic() bool { return true }

// Features implements Allocator.
func (*WithoutAssignment) Features() Features {
	return Features{DynamicPlacement: true, DynamicSelection: true, AccuracyScaling: true, Method: "MILP"}
}

// Allocate implements Allocator.
func (a *WithoutAssignment) Allocate(in *Input) (*Allocation, error) {
	alloc, err := a.inner.Allocate(in)
	if err != nil {
		return nil, err
	}
	// Replace the optimal assignment with a uniform spread: y_{d,q} =
	// scale/|D_q| for every hosting device, regardless of capacity.
	for q := range alloc.Routing {
		hosts := 0
		for d := range alloc.Routing[q] {
			if alloc.Hosted[d] != nil && alloc.Hosted[d].Family == q {
				hosts++
			}
		}
		for d := range alloc.Routing[q] {
			if alloc.Hosted[d] != nil && alloc.Hosted[d].Family == q {
				alloc.Routing[q][d] = alloc.DemandScale / float64(hosts)
			} else {
				alloc.Routing[q][d] = 0
			}
		}
	}
	return alloc, nil
}

// ByName constructs an allocator from the artifact's model_allocation
// config names: "ilp" (Proteus), "ilp-fair" (the §7 fairness extension),
// "infaas_v2", "sommelier", "clipper-ht", "clipper-ha", and the ablation
// names "proteus-wo-ms", "proteus-wo-mp", "proteus-wo-qa".
func ByName(name string, opts *MILPOptions) (Allocator, error) {
	switch name {
	case "ilp":
		return NewMILP(opts), nil
	case "ilp-fair":
		// The §7 fairness extension: max-min per-family accuracy weighted
		// into the objective.
		o := opts.withDefaults()
		if o.FairnessWeight == 0 {
			o.FairnessWeight = 5
		}
		return NewMILP(&o), nil
	case "infaas_v2":
		return NewInfaasAccuracy(), nil
	case "sommelier":
		return NewSommelier(opts), nil
	case "clipper-ht":
		return NewClipperHT(opts), nil
	case "clipper-ha":
		return NewClipperHA(opts), nil
	case "proteus-wo-ms":
		return NewWithoutSelection(opts), nil
	case "proteus-wo-mp":
		return NewWithoutPlacement(opts), nil
	case "proteus-wo-qa":
		return NewWithoutAssignment(opts), nil
	}
	return nil, fmt.Errorf("allocator: unknown allocator %q", name)
}
