// Package allocator implements the resource-management half of Proteus
// (§4): given a heterogeneous cluster, registered model families with SLOs,
// and a target per-family demand, produce a joint model-selection /
// model-placement / query-assignment plan. The Proteus allocator solves the
// paper's MILP exactly (via internal/milp); the package also implements the
// baselines of §6.1.1 — INFaaS-Accuracy's greedy heuristic, Sommelier's
// static-placement variant switching, Clipper-HT/HA static plans — and the
// §6.5 ablations (w/o model selection, w/o model placement, w/o query
// assignment).
package allocator

import (
	"fmt"
	"time"

	"proteus/internal/cluster"
	"proteus/internal/models"
	"proteus/internal/profiles"
)

// Input is the allocation problem: the cluster, the registered query types
// (one model family each), their latency SLOs and their demand.
type Input struct {
	Cluster  *cluster.Cluster
	Families []models.Family
	// SLOs[q] is the latency SLO of family q.
	SLOs []time.Duration
	// Demand[q] is the target demand s_q in QPS for family q.
	Demand []float64
}

// Validate checks dimensional consistency.
func (in *Input) Validate() error {
	if in.Cluster == nil || in.Cluster.Size() == 0 {
		return fmt.Errorf("allocator: empty cluster")
	}
	if len(in.Families) == 0 {
		return fmt.Errorf("allocator: no families")
	}
	if len(in.SLOs) != len(in.Families) || len(in.Demand) != len(in.Families) {
		return fmt.Errorf("allocator: SLOs/Demand length mismatch: %d families, %d SLOs, %d demands",
			len(in.Families), len(in.SLOs), len(in.Demand))
	}
	for q, s := range in.Demand {
		if s < 0 {
			return fmt.Errorf("allocator: negative demand for family %d", q)
		}
		if in.SLOs[q] <= 0 {
			return fmt.Errorf("allocator: non-positive SLO for family %d", q)
		}
	}
	return nil
}

// VariantRef locates a variant inside the Input's family list.
type VariantRef struct {
	Family  int // index into Input.Families
	Variant models.Variant
}

// Variants flattens all families' variants with their family indices, in
// deterministic order.
func (in *Input) Variants() []VariantRef {
	var out []VariantRef
	for q, f := range in.Families {
		for _, v := range f.Variants {
			out = append(out, VariantRef{Family: q, Variant: v})
		}
	}
	return out
}

// Peak returns P_{d,m,q}: the peak throughput of variant ref on device d
// under its family's SLO (0 when infeasible). Failed devices have zero peak,
// so every allocator that consults capacity automatically avoids them.
func (in *Input) Peak(d cluster.Device, ref VariantRef) float64 {
	if !in.Cluster.Healthy(d.ID) {
		return 0
	}
	return profiles.EffectiveCapacity(d.Spec, ref.Variant, in.SLOs[ref.Family])
}

// TotalDemand returns Σ_q s_q.
func (in *Input) TotalDemand() float64 {
	t := 0.0
	for _, s := range in.Demand {
		t += s
	}
	return t
}

// SolverStats reports how an optimizing allocator computed its plan, for
// the control plane's decision audit log. Heuristic and static allocators
// leave it zero. All fields are JSON-safe: infinities from the solver
// (e.g. no proven bound) are encoded as RelGap = -1 and Bound = 0.
type SolverStats struct {
	// Objective is the incumbent objective value of the final solve.
	Objective float64 `json:"objective"`
	// Bound is the best proven bound on the optimum (0 when unproven).
	Bound float64 `json:"bound"`
	// RelGap is the relative optimality gap of the final solve, or -1 when
	// no bound was proven.
	RelGap float64 `json:"rel_gap"`
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int `json:"nodes"`
	// Backoffs is how many β demand-reduction iterations ran before the
	// final (feasible) solve.
	Backoffs int `json:"backoffs"`
	// SolverTime is the time spent inside the final branch-and-bound solve;
	// Allocation.SolveTime additionally covers warm-start heuristics,
	// polishing and every back-off iteration.
	SolverTime time.Duration `json:"solver_time_ns"`
	// Parallelism is the resolved number of concurrent LP-relaxation
	// solvers the solve ran with (0 for allocators that never solved).
	Parallelism int `json:"parallelism,omitempty"`
	// Budgeted reports that the solve ran under a configured wall-clock
	// budget (MILPOptions.TimeLimit > 0). It depends only on configuration,
	// never on runtime timing, so it is safe for deterministic surfaces to
	// branch on: when set, Bound, Nodes, RelGap and TimeLimited reflect how
	// far the optimality proof happened to get before the clock and must be
	// dropped from byte-deterministic serializations (see
	// controlplane.SanitizePlanRecord).
	Budgeted bool `json:"budgeted,omitempty"`
	// TimeLimited reports that the wall-clock budget actually fired during
	// the final solve (diagnostics only; not byte-deterministic).
	TimeLimited bool `json:"time_limited,omitempty"`
}

// Allocation is a complete resource-management plan.
type Allocation struct {
	// Hosted[d] is the variant placed on device d, or nil for an idle
	// device.
	Hosted []*VariantRef
	// Routing[q][d] is y_{d,q}: the fraction of family q's queries routed
	// to device d. Rows sum to at most 1 (less when the plan deliberately
	// sheds load because demand exceeds cluster capacity).
	Routing [][]float64
	// PredictedAccuracy is the plan's effective accuracy (Σ A_m·w / Σ w)
	// under the target demand, as estimated by the allocator.
	PredictedAccuracy float64
	// ServedQPS[q] is the demand the plan provisions for family q.
	ServedQPS []float64
	// DemandScale is the fraction of the requested demand the plan serves
	// (1 when the MILP was feasible at full demand; < 1 after β-backoff).
	DemandScale float64
	// SolveTime is how long the allocator ran.
	SolveTime time.Duration
	// Optimal reports whether the plan is proven optimal for its
	// formulation (always false for heuristic allocators).
	Optimal bool
	// Stats carries solver internals for the decision audit log (zero for
	// heuristic and static allocators).
	Stats SolverStats
}

// NewAllocation returns an empty plan shaped for the input.
func NewAllocation(in *Input) *Allocation {
	a := &Allocation{
		Hosted:      make([]*VariantRef, in.Cluster.Size()),
		Routing:     make([][]float64, len(in.Families)),
		ServedQPS:   make([]float64, len(in.Families)),
		DemandScale: 1,
	}
	for q := range a.Routing {
		a.Routing[q] = make([]float64, in.Cluster.Size())
	}
	return a
}

// HostedID returns the variant ID hosted on device d ("" when idle).
func (a *Allocation) HostedID(d int) string {
	if a.Hosted[d] == nil {
		return ""
	}
	return a.Hosted[d].Variant.ID()
}

// DevicesServing returns the device IDs with positive routing weight for
// family q.
func (a *Allocation) DevicesServing(q int) []int {
	var out []int
	for d, y := range a.Routing[q] {
		if y > 1e-12 {
			out = append(out, d)
		}
	}
	return out
}

// Check verifies structural invariants of the plan against its input:
// routing only to devices hosting a serving variant, routing rows summing
// to <= 1, and per-device load within peak capacity (with tolerance).
// It returns the first violation found.
func (a *Allocation) Check(in *Input) error {
	const tol = 1e-6
	if len(a.Hosted) != in.Cluster.Size() || len(a.Routing) != len(in.Families) {
		return fmt.Errorf("allocation: shape mismatch")
	}
	for q, row := range a.Routing {
		sum := 0.0
		for d, y := range row {
			if y < -tol || y > 1+tol {
				return fmt.Errorf("allocation: routing[%d][%d] = %v out of [0,1]", q, d, y)
			}
			if y > tol {
				ref := a.Hosted[d]
				if ref == nil {
					return fmt.Errorf("allocation: family %d routed to idle device %d", q, d)
				}
				if ref.Family != q {
					return fmt.Errorf("allocation: family %d routed to device %d hosting family %d",
						q, d, ref.Family)
				}
			}
			sum += y
		}
		if sum > 1+tol {
			return fmt.Errorf("allocation: routing row %d sums to %v > 1", q, sum)
		}
	}
	// Per-device capacity: assigned QPS must not exceed P_{d,m,q}.
	for d := 0; d < in.Cluster.Size(); d++ {
		ref := a.Hosted[d]
		if ref == nil {
			continue
		}
		load := a.Routing[ref.Family][d] * in.Demand[ref.Family] * a.DemandScale
		peak := in.Peak(in.Cluster.Device(d), *ref)
		if load > peak*(1+1e-4)+tol {
			return fmt.Errorf("allocation: device %d loaded at %.3f QPS above peak %.3f", d, load, peak)
		}
	}
	return nil
}

// EffectiveAccuracy computes the demand-weighted accuracy the plan delivers
// if every routed query is served: Σ_q Σ_d y_{d,q}·s_q·A(hosted[d]) / Σ
// routed. It returns 0 when nothing is routed.
func (a *Allocation) EffectiveAccuracy(in *Input) float64 {
	num, den := 0.0, 0.0
	for q, row := range a.Routing {
		for d, y := range row {
			if y <= 0 {
				continue
			}
			ref := a.Hosted[d]
			if ref == nil {
				continue
			}
			w := y * in.Demand[q]
			num += w * ref.Variant.Accuracy
			den += w
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// FamilyAccuracy computes the mean accuracy the plan provisions for family
// q's routed queries (0 when nothing is routed).
func (a *Allocation) FamilyAccuracy(in *Input, q int) float64 {
	num, den := 0.0, 0.0
	for d, y := range a.Routing[q] {
		if y <= 0 || a.Hosted[d] == nil {
			continue
		}
		w := y * in.Demand[q]
		num += w * a.Hosted[d].Variant.Accuracy
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// ProjectHealthy carries a previous plan onto the input's healthy devices:
// hosting and routing entries on failed devices are vacated, everything else
// is kept. It is the control plane's last-resort fallback when every
// allocator errors — serving degrades to the surviving replicas of the old
// plan instead of aborting the run. ServedQPS, PredictedAccuracy and
// DemandScale are recomputed against the input's demand.
func ProjectHealthy(prev *Allocation, in *Input) *Allocation {
	out := NewAllocation(in)
	for d := 0; d < in.Cluster.Size() && d < len(prev.Hosted); d++ {
		if in.Cluster.Healthy(d) {
			out.Hosted[d] = prev.Hosted[d]
		}
	}
	total, served := 0.0, 0.0
	for q := range out.Routing {
		if q >= len(prev.Routing) {
			break
		}
		sum := 0.0
		for d, y := range prev.Routing[q] {
			if d >= in.Cluster.Size() || out.Hosted[d] == nil || y <= 0 {
				continue
			}
			out.Routing[q][d] = y
			sum += y
		}
		out.ServedQPS[q] = sum * in.Demand[q]
		total += in.Demand[q]
		served += out.ServedQPS[q]
	}
	out.DemandScale = 1
	if total > 0 {
		out.DemandScale = served / total
		if out.DemandScale > 1 {
			out.DemandScale = 1
		}
	}
	out.PredictedAccuracy = out.EffectiveAccuracy(in)
	return out
}

// Features is the Table 2 capability matrix entry for an allocator.
type Features struct {
	DynamicPlacement bool
	DynamicSelection bool
	AccuracyScaling  bool
	// Method names the placement/selection mechanism ("MILP", "Heuristic",
	// "Static").
	Method string
}

// Allocator produces allocation plans. Implementations must be safe to call
// repeatedly with changing demand; static baselines return their initial
// plan on every call (Dynamic() == false tells the control plane not to
// bother re-invoking them).
type Allocator interface {
	// Name matches the artifact's model_allocation config values
	// ("ilp", "infaas_v2", "sommelier", "clipper"...).
	Name() string
	// Allocate computes a plan for the input.
	Allocate(in *Input) (*Allocation, error)
	// Dynamic reports whether re-allocation over time is supported.
	Dynamic() bool
	// Features describes the allocator for the Table 2 matrix.
	Features() Features
}

// Beta is the demand back-off factor of §4 / the artifact's default
// hyper-parameter: when the MILP is infeasible, demand is divided by Beta
// and re-solved.
const Beta = 1.05
