package allocator

import (
	"math"
	"testing"
	"time"

	"proteus/internal/cluster"
	"proteus/internal/models"
	"proteus/internal/profiles"
)

// fairnessInput builds a contended instance where the system-level optimum
// starves a low-weight family's accuracy: two families, heavily skewed
// demand, a small cluster.
func fairnessInput(t *testing.T) *Input {
	t.Helper()
	var fams []models.Family
	for _, f := range models.Zoo() {
		if f.Name == "efficientnet" || f.Name == "resnest" {
			fams = append(fams, f)
		}
	}
	if len(fams) != 2 {
		t.Fatal("fixture families missing")
	}
	slos := make([]time.Duration, len(fams))
	for q, f := range fams {
		slos[q] = profiles.FamilySLO(f, 2)
	}
	return &Input{
		Cluster:  cluster.ScaledTestbed(8),
		Families: fams,
		SLOs:     slos,
		Demand:   []float64{60, 300}, // efficientnet light, resnest heavy
	}
}

func minFamilyAccuracy(in *Input, a *Allocation) float64 {
	m := math.Inf(1)
	for q := range in.Families {
		if acc := a.FamilyAccuracy(in, q); acc > 0 && acc < m {
			m = acc
		}
	}
	return m
}

func TestFairnessRaisesMinFamilyAccuracy(t *testing.T) {
	opts := &MILPOptions{TimeLimit: time.Second, RelGap: 0.005, StallNodes: 1000}
	plain, err := ByName("ilp", opts)
	if err != nil {
		t.Fatal(err)
	}
	fair, err := ByName("ilp-fair", opts)
	if err != nil {
		t.Fatal(err)
	}
	inP := fairnessInput(t)
	planP, err := plain.Allocate(inP)
	if err != nil {
		t.Fatal(err)
	}
	inF := fairnessInput(t)
	planF, err := fair.Allocate(inF)
	if err != nil {
		t.Fatal(err)
	}
	if err := planF.Check(inF); err != nil {
		t.Fatal(err)
	}
	minP := minFamilyAccuracy(inP, planP)
	minF := minFamilyAccuracy(inF, planF)
	if minF+1e-9 < minP {
		t.Fatalf("fairness lowered the min family accuracy: %.3f -> %.3f", minP, minF)
	}
	// The §7 trade-off: fairness cannot increase total effective accuracy.
	if planF.EffectiveAccuracy(inF) > planP.EffectiveAccuracy(inP)+0.5 {
		t.Fatalf("fairness improved total accuracy (%.3f > %.3f): objective wiring suspect",
			planF.EffectiveAccuracy(inF), planP.EffectiveAccuracy(inP))
	}
}

func TestFairnessAllocatorName(t *testing.T) {
	a, err := ByName("ilp-fair", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Dynamic() {
		t.Fatal("fairness allocator must be dynamic")
	}
	if !a.Features().AccuracyScaling {
		t.Fatal("fairness allocator must scale accuracy")
	}
}

func TestFamilyAccuracyHelper(t *testing.T) {
	in := fairnessInput(t)
	plan, err := NewMILP(&MILPOptions{TimeLimit: 500 * time.Millisecond, RelGap: 0.01}).Allocate(in)
	if err != nil {
		t.Fatal(err)
	}
	for q := range in.Families {
		acc := plan.FamilyAccuracy(in, q)
		if acc < 80 || acc > 100 {
			t.Fatalf("family %d accuracy %v out of range", q, acc)
		}
	}
}
