// Package buildinfo surfaces the build metadata the Go linker embeds in
// every binary (runtime/debug.ReadBuildInfo): toolchain version, main
// module path, and — for builds made inside a git checkout — the VCS
// revision, commit time, and dirty flag. One place reads it so proteusd's
// /healthz, incident bundles, and benchmark baselines all report the same
// identity and can be joined during an investigation ("which build
// produced this?").
package buildinfo

import (
	"runtime/debug"
	"sync"
)

// Info is a binary's build identity. All fields may be empty: test
// binaries and `go run` builds carry partial metadata.
type Info struct {
	GoVersion string `json:"go_version,omitempty"`
	// Path is the main module path; Version its module version ("(devel)"
	// for local builds).
	Path    string `json:"path,omitempty"`
	Version string `json:"version,omitempty"`
	// Revision / Time / Modified mirror the vcs.* build settings: the
	// commit the binary was built from, its author time, and whether the
	// working tree was dirty.
	Revision string `json:"vcs_revision,omitempty"`
	Time     string `json:"vcs_time,omitempty"`
	Modified bool   `json:"vcs_modified,omitempty"`
}

var (
	once   sync.Once
	cached Info
)

// Get returns the running binary's build identity. The read is cached:
// debug.ReadBuildInfo parses the embedded module data on every call, and
// hot paths (health probes, incident triggers) should not pay that.
func Get() Info {
	once.Do(func() {
		info, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		cached = Info{
			GoVersion: info.GoVersion,
			Path:      info.Main.Path,
			Version:   info.Main.Version,
		}
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				cached.Revision = s.Value
			case "vcs.time":
				cached.Time = s.Value
			case "vcs.modified":
				cached.Modified = s.Value == "true"
			}
		}
	})
	return cached
}
