package buildinfo

import "testing"

// TestGet asserts the embedded metadata reads and the cache is stable:
// test binaries always carry a toolchain version, and repeated calls must
// return the identical value.
func TestGet(t *testing.T) {
	a := Get()
	if a.GoVersion == "" {
		t.Fatal("GoVersion empty — ReadBuildInfo failed in a test binary")
	}
	if b := Get(); b != a {
		t.Fatalf("Get not stable: %+v then %+v", a, b)
	}
}
