package milp

import (
	"math"
	"testing"
	"testing/quick"

	"proteus/internal/lp"
	"proteus/internal/numeric"
)

// TestDiveFindsIncumbentOnWideProblems builds transportation-style MILPs —
// the structure best-first search starves on without diving — and checks
// that an incumbent is found within a small node budget.
func TestDiveFindsIncumbentOnWideProblems(t *testing.T) {
	p := NewProblem()
	const groups, items = 3, 20
	type pair struct{ n, w int }
	var pairs []pair
	caps := []float64{8, 4, 4}
	for g := 0; g < groups; g++ {
		for i := 0; i < items; i++ {
			n := p.AddInteger("n", 0, caps[g])
			w := p.AddVariable("w", 0, 100)
			p.SetObjective(w, 80+float64(i))
			p.AddConstraint([]lp.Term{{Var: w, Coef: 1}, {Var: n, Coef: -float64(10 + i)}}, lp.LE, 0)
			pairs = append(pairs, pair{n, w})
		}
	}
	for g := 0; g < groups; g++ {
		var terms []lp.Term
		for i := 0; i < items; i++ {
			terms = append(terms, lp.Term{Var: pairs[g*items+i].n, Coef: 1})
		}
		p.AddConstraint(terms, lp.LE, caps[g])
	}
	// Demand rows per item-class (each class served across groups).
	for i := 0; i < items; i += 4 {
		var terms []lp.Term
		for g := 0; g < groups; g++ {
			terms = append(terms, lp.Term{Var: pairs[g*items+i].w, Coef: 1})
		}
		p.AddConstraint(terms, lp.EQ, 15)
	}
	sol := Solve(p, &Options{MaxNodes: 4000, RelGap: 0.01})
	if sol.Status != Optimal && sol.Status != Feasible {
		t.Fatalf("status %v after %d nodes", sol.Status, sol.Nodes)
	}
	if sol.Objective <= 0 {
		t.Fatalf("objective %v", sol.Objective)
	}
}

// TestStallNodesTerminatesEarly verifies the incumbent-stagnation stop.
func TestStallNodesTerminatesEarly(t *testing.T) {
	build := func() *Problem {
		p := NewProblem()
		var terms []lp.Term
		for j := 0; j < 34; j++ {
			v := p.AddBinary("x")
			p.SetObjective(v, float64(50+(j*17)%23))
			terms = append(terms, lp.Term{Var: v, Coef: float64(5 + (j*13)%11)})
		}
		p.AddConstraint(terms, lp.LE, 90)
		return p
	}
	unbounded := Solve(build(), &Options{MaxNodes: 100000})
	stalled := Solve(build(), &Options{MaxNodes: 100000, StallNodes: 50})
	if stalled.Nodes >= unbounded.Nodes && unbounded.Nodes > 200 {
		t.Fatalf("stall did not shorten the search: %d vs %d nodes", stalled.Nodes, unbounded.Nodes)
	}
	if stalled.Status != Optimal && stalled.Status != Feasible {
		t.Fatalf("stalled status %v", stalled.Status)
	}
	// The stalled incumbent must be close to the true optimum (the dive
	// plus 50 stall nodes on a knapsack gets within a few percent).
	if unbounded.Status == Optimal && stalled.Objective < 0.9*unbounded.Objective {
		t.Fatalf("stalled incumbent %.1f far from optimum %.1f", stalled.Objective, unbounded.Objective)
	}
}

// TestPropertyKnapsackMatchesBruteForce cross-checks small knapsacks
// against exhaustive enumeration.
func TestPropertyKnapsackMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		rng := numeric.NewRNG(seed)
		n := 3 + rng.Intn(10)
		vals := make([]float64, n)
		wts := make([]float64, n)
		for i := range vals {
			vals[i] = float64(1 + rng.Intn(50))
			wts[i] = float64(1 + rng.Intn(20))
		}
		capacity := float64(5 + rng.Intn(60))

		p := NewProblem()
		var terms []lp.Term
		vars := make([]int, n)
		for i := range vars {
			vars[i] = p.AddBinary("x")
			p.SetObjective(vars[i], vals[i])
			terms = append(terms, lp.Term{Var: vars[i], Coef: wts[i]})
		}
		p.AddConstraint(terms, lp.LE, capacity)
		sol := Solve(p, nil)
		if sol.Status != Optimal {
			return false
		}

		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			v, w := 0.0, 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					v += vals[i]
					w += wts[i]
				}
			}
			if w <= capacity && v > best {
				best = v
			}
		}
		return math.Abs(sol.Objective-best) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyWarmStartNeverHurts checks that a warm start can only keep or
// improve the final objective.
func TestPropertyWarmStartNeverHurts(t *testing.T) {
	f := func(seed uint64) bool {
		rng := numeric.NewRNG(seed)
		n := 4 + rng.Intn(10)
		build := func() (*Problem, []float64) {
			p := NewProblem()
			var terms []lp.Term
			greedy := make([]float64, n)
			remaining := float64(10 + rng.Intn(40))
			r2 := numeric.NewRNG(seed ^ 1)
			for i := 0; i < n; i++ {
				v := p.AddBinary("x")
				val := float64(1 + r2.Intn(30))
				wt := float64(1 + r2.Intn(15))
				p.SetObjective(v, val)
				terms = append(terms, lp.Term{Var: v, Coef: wt})
				if wt <= remaining {
					greedy[i] = 1
					remaining -= wt
				}
			}
			p.AddConstraint(terms, lp.LE, float64(10+int(seed%40)))
			return p, greedy
		}
		// Note: the greedy point may violate the capacity (it used its own
		// budget), so only use it when it is actually feasible.
		p1, greedy := build()
		capacity := float64(10 + int(seed%40))
		wtSum := 0.0
		r3 := numeric.NewRNG(seed ^ 1)
		for i := 0; i < n; i++ {
			r3.Intn(30)
			wt := float64(1 + r3.Intn(15))
			if greedy[i] == 1 {
				wtSum += wt
			}
		}
		if wtSum > capacity {
			return true // skip: warm start infeasible by construction
		}
		cold := Solve(p1, &Options{MaxNodes: 2000})
		p2, _ := build()
		warm := Solve(p2, &Options{MaxNodes: 2000, WarmStart: greedy})
		if cold.Status == Optimal && warm.Status == Optimal {
			return math.Abs(cold.Objective-warm.Objective) < 1e-6
		}
		return warm.Objective >= cold.Objective-1e-6 || warm.Status == Optimal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
