// Speculative parallel LP relaxation solving for the branch-and-bound
// search (Options.Parallelism > 1).
//
// Determinism argument. The branch-and-bound driver in milp.go is a
// deterministic state machine: every decision — which node to pop, where to
// branch, when to dive, when an incumbent improves — is a pure function of
// LP relaxation results, and lp.Solve is itself deterministic for a given
// problem. Parallelism therefore never touches the search: the driver runs
// the exact serial order, and workers only solve relaxations *ahead* of it,
// each on a private lp.Problem.Clone. A worker's result is bit-identical to
// the inline solve it replaces (same root bounds, same override sequence,
// same float operations), so consuming a speculative result is
// observationally equivalent to solving inline; results the serial order
// never asks for are discarded unread. Hence the Solution (Status,
// Objective, X, Bound, Nodes) is byte-identical for every Parallelism ≥ 1
// and identical to the serial solver — goroutine interleaving can only move
// wall-clock time, never a decision. See DESIGN.md "Parallel branch and
// bound".
package milp

import (
	"encoding/binary"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"proteus/internal/lp"
)

// Entry lifecycle: created queued, claimed exactly once (by the worker that
// receives it or by the driver when it needs the node first), then filled
// and published through the ready channel.
const (
	specQueued int32 = iota
	specClaimed
)

// specEntry is one speculative (or on-demand) LP relaxation solve.
type specEntry struct {
	key string
	nd  *node // immutable after creation; shared with the driver's heap

	state atomic.Int32
	ready chan struct{} // closed by the claimant after sol/err are written
	sol   lp.Solution
	err   error
}

func newSpecEntry(key string, nd *node) *specEntry {
	return &specEntry{key: key, nd: nd, ready: make(chan struct{})}
}

// specPool runs Parallelism-1 worker goroutines, each owning a private
// clone of the root problem. The driver is the only goroutine that touches
// the cache and fifo; workers communicate exclusively through the jobs
// channel and per-entry ready channels, so the pool needs no mutex.
type specPool struct {
	s       *solver
	workers int

	jobs     chan *specEntry
	stopping atomic.Bool
	wg       sync.WaitGroup

	// cache and fifo are driver-private: entries awaiting consumption,
	// keyed by the node's effective bound overrides, evicted FIFO past
	// maxCached (eviction costs at most a redundant re-solve, never a
	// different answer).
	cache     map[string]*specEntry
	fifo      []*specEntry
	maxCached int

	// hits counts relaxations a worker had already claimed when the driver
	// asked (driver-only; the overlap that buys wall-clock time on
	// multicore). misses counts inline solves.
	hits, misses int
}

func newSpecPool(s *solver, parallelism int) *specPool {
	workers := parallelism - 1 // the driver itself solves misses inline
	pl := &specPool{
		s:         s,
		workers:   workers,
		jobs:      make(chan *specEntry, workers+1),
		cache:     make(map[string]*specEntry),
		maxCached: 16*workers + 32,
	}
	for w := 0; w < workers; w++ {
		clone := s.p.lp.Clone()
		pl.wg.Add(1)
		go func() {
			defer pl.wg.Done()
			pl.worker(clone)
		}()
	}
	return pl
}

// specStats, when non-nil, receives each pool's final hit/miss counts as
// it stops. Test-only observability hook; never set in production code.
var specStats func(hits, misses int)

// stop drains the queue without solving and joins the workers. At most one
// in-flight relaxation per worker delays the join.
func (pl *specPool) stop() {
	pl.stopping.Store(true)
	close(pl.jobs)
	pl.wg.Wait()
	if specStats != nil {
		specStats(pl.hits, pl.misses)
	}
}

func (pl *specPool) worker(clone *lp.Problem) {
	var applied []boundChange
	for e := range pl.jobs {
		if pl.stopping.Load() {
			continue // drain: the solve's result could never be consumed
		}
		if !e.state.CompareAndSwap(specQueued, specClaimed) {
			continue // the driver needed it first and solved inline
		}
		e.sol, e.err, applied = pl.solveOn(clone, e.nd, applied)
		close(e.ready)
	}
}

// solveOn solves nd's relaxation on a worker-private clone: undo the
// previous job's overrides, replay the node's overrides in order (exactly
// the sequence solveNode applies to the shared problem), solve with the
// node's own warm-start basis — the same options solveNode would use, so
// the result is bit-identical to the inline solve it may replace.
func (pl *specPool) solveOn(clone *lp.Problem, nd *node, applied []boundChange) (lp.Solution, error, []boundChange) {
	for _, bc := range applied {
		clone.SetBounds(bc.v, pl.s.rootLo[bc.v], pl.s.rootHi[bc.v])
	}
	applied = append(applied[:0], nd.bounds...)
	for _, bc := range nd.bounds {
		clone.SetBounds(bc.v, bc.lo, bc.hi)
	}
	sol, err := lp.Solve(clone, pl.s.lpOpts(nd))
	return sol, err, applied
}

// solve returns nd's relaxation, consuming a speculative result when one
// exists. Misses are solved inline by the driver on the shared problem —
// the driver never queues behind speculation. Either way the speculative
// queue is topped up first (hints, then the best open nodes) so workers
// overlap with the inline solve or the wait.
func (pl *specPool) solve(nd *node, hints []*node) (lp.Solution, error) {
	key := nodeKey(nd)
	e, cached := pl.cache[key]
	if cached && e.nd != nd {
		// Same bound box reached through a different branching path: the
		// cached entry was solved with a different warm-start basis, so its
		// result may not be bit-identical to the inline solve. Drop it and
		// solve inline (the worker's eventual result is simply never read).
		delete(pl.cache, key)
		cached = false
	}
	if !cached {
		e = newSpecEntry(key, nd)
	}
	claimed := e.state.CompareAndSwap(specQueued, specClaimed)
	pl.speculate(hints, key)
	if claimed {
		pl.misses++
		e.sol, e.err = pl.s.solveNode(nd)
		close(e.ready)
	} else {
		pl.hits++
		<-e.ready
	}
	if cached {
		delete(pl.cache, key)
	}
	return e.sol, e.err
}

// speculate enqueues not-yet-cached candidate nodes — the caller's hints
// first (a dive's sibling), then the prefix of the open heap's backing
// array, which holds the best-bound nodes the serial order pops next. Which
// candidates get queued affects only wall-clock time (unconsumed results
// are discarded), so the selection needs to be plausible, not perfect.
func (pl *specPool) speculate(hints []*node, exclude string) {
	for _, nd := range hints {
		if nd == nil {
			continue
		}
		if !pl.consider(nd, exclude) {
			return
		}
	}
	open := *pl.s.open
	limit := pl.workers
	if limit > len(open) {
		limit = len(open)
	}
	for i := 0; i < limit; i++ {
		if !pl.consider(open[i], exclude) {
			return
		}
	}
}

// consider enqueues one candidate; false means the queue is full and the
// caller should stop.
func (pl *specPool) consider(nd *node, exclude string) bool {
	key := nodeKey(nd)
	if key == exclude {
		return true
	}
	if _, ok := pl.cache[key]; ok {
		return true
	}
	if len(pl.cache) >= pl.maxCached && !pl.evictOne() {
		return false
	}
	e := newSpecEntry(key, nd)
	select {
	case pl.jobs <- e:
		pl.cache[key] = e
		pl.fifo = append(pl.fifo, e)
		return true
	default:
		return false
	}
}

// evictOne drops the oldest still-cached entry. An evicted entry that a
// worker later solves (or is mid-solving) is simply never read.
func (pl *specPool) evictOne() bool {
	for len(pl.fifo) > 0 {
		e := pl.fifo[0]
		pl.fifo = pl.fifo[1:]
		if cur, ok := pl.cache[e.key]; ok && cur == e {
			delete(pl.cache, e.key)
			return true
		}
	}
	return false
}

// nodeKey canonicalizes a node's effective bound overrides — last change
// per variable wins, ordered by variable index, floats encoded by their
// exact bit patterns — so nodes reaching the same box through different
// branching paths share one cache slot.
func nodeKey(nd *node) string {
	if len(nd.bounds) == 0 {
		return ""
	}
	eff := make([]boundChange, 0, len(nd.bounds))
	seen := make(map[int]bool, len(nd.bounds))
	for i := len(nd.bounds) - 1; i >= 0; i-- {
		bc := nd.bounds[i]
		if seen[bc.v] {
			continue
		}
		seen[bc.v] = true
		eff = append(eff, bc)
	}
	sort.Slice(eff, func(i, j int) bool { return eff[i].v < eff[j].v })
	buf := make([]byte, 0, 20*len(eff))
	var tmp [20]byte
	for _, bc := range eff {
		binary.LittleEndian.PutUint32(tmp[0:4], uint32(bc.v))
		binary.LittleEndian.PutUint64(tmp[4:12], math.Float64bits(bc.lo))
		binary.LittleEndian.PutUint64(tmp[12:20], math.Float64bits(bc.hi))
		buf = append(buf, tmp[:]...)
	}
	return string(buf)
}
