// Package milp implements a branch-and-bound solver for mixed integer
// linear programs on top of the simplex solver in internal/lp. Together the
// two packages replace the commercial MILP solver (Gurobi) that the Proteus
// paper uses for its resource-allocation optimization.
//
// The solver maximizes, searches best-bound-first, branches on the most
// fractional integer variable, and supports warm-start incumbents, relative
// gap tolerances, and node/time limits — the knobs the Proteus resource
// manager needs to keep solves inside its control period.
package milp

import (
	"container/heap"
	"math"
	"runtime"
	"time"

	"proteus/internal/lp"
)

// Status is the outcome of a MILP solve.
type Status int

// Solve outcomes.
const (
	// Optimal means the incumbent is proven optimal (within gap tolerance).
	Optimal Status = iota
	// Feasible means a limit was hit but an integer-feasible incumbent exists.
	Feasible
	// Infeasible means no integer-feasible point exists.
	Infeasible
	// Unbounded means the LP relaxation is unbounded.
	Unbounded
	// Limit means a limit was hit before any incumbent was found.
	Limit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Limit:
		return "limit"
	}
	return "unknown"
}

// Problem is a MILP under construction. It embeds an LP and marks a subset
// of variables as integral.
type Problem struct {
	lp       *lp.Problem
	integral []bool
}

// NewProblem returns an empty maximization MILP.
func NewProblem() *Problem {
	return &Problem{lp: lp.NewProblem()}
}

// AddVariable adds a continuous variable with bounds [lo, hi].
func (p *Problem) AddVariable(name string, lo, hi float64) int {
	v := p.lp.AddVariable(name, lo, hi)
	p.integral = append(p.integral, false)
	return v
}

// AddInteger adds an integer variable with bounds [lo, hi].
func (p *Problem) AddInteger(name string, lo, hi float64) int {
	v := p.lp.AddVariable(name, lo, hi)
	p.integral = append(p.integral, true)
	return v
}

// AddBinary adds a {0,1} variable.
func (p *Problem) AddBinary(name string) int {
	return p.AddInteger(name, 0, 1)
}

// SetObjective sets the (maximization) objective coefficient of v.
func (p *Problem) SetObjective(v int, c float64) { p.lp.SetObjective(v, c) }

// AddConstraint appends Σ terms (rel) rhs.
func (p *Problem) AddConstraint(terms []lp.Term, rel lp.Relation, rhs float64) int {
	return p.lp.AddConstraint(terms, rel, rhs)
}

// NumVariables returns the number of variables added so far.
func (p *Problem) NumVariables() int { return p.lp.NumVariables() }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return p.lp.NumConstraints() }

// NumIntegers returns the number of integral variables.
func (p *Problem) NumIntegers() int {
	n := 0
	for _, b := range p.integral {
		if b {
			n++
		}
	}
	return n
}

// Solution is the result of a MILP solve.
type Solution struct {
	Status    Status
	Objective float64   // incumbent objective (valid for Optimal/Feasible)
	X         []float64 // incumbent point, integral entries exactly integral
	Bound     float64   // best proven upper bound on the optimum
	Nodes     int       // branch-and-bound nodes processed
	Elapsed   time.Duration
	// TimeLimited reports that the wall-clock TimeLimit fired during the
	// search. Bound/Nodes (and the gap derived from them) then depend on
	// how far the optimality proof got before the clock ran out, so
	// deterministic serialization surfaces must drop them (see
	// controlplane.SanitizePlanRecord). Node- and stall-limit truncation is
	// deterministic and does not set this.
	TimeLimited bool
	// Basis is the canonicalized optimal basis of the root LP relaxation,
	// usable to warm-start a future solve of a same-shaped problem (the
	// allocator carries it across control periods). Nil when the root
	// relaxation fell back to the dense simplex.
	Basis *lp.Basis
}

// Gap returns the relative optimality gap of the incumbent, or +Inf if no
// incumbent exists.
func (s *Solution) Gap() float64 {
	if s.Status != Optimal && s.Status != Feasible {
		return math.Inf(1)
	}
	return (s.Bound - s.Objective) / math.Max(1, math.Abs(s.Objective))
}

// Options tune the branch-and-bound search. A nil *Options selects all
// defaults. In a non-nil Options, RelGap and IntTol use negative-means-
// default semantics so that an explicit zero — an exact optimality proof,
// exact integrality — stays expressible; every other field treats its zero
// value as "use the default".
type Options struct {
	// TimeLimit bounds wall-clock solve time. Default: none.
	TimeLimit time.Duration
	// MaxNodes bounds the number of explored nodes. Default 200_000.
	MaxNodes int
	// RelGap terminates when (bound - incumbent)/max(1,|incumbent|) is below
	// it. Zero demands an exact optimality proof; a negative value selects
	// the default 1e-6.
	RelGap float64
	// StallNodes, if positive, stops the search (returning the incumbent as
	// Feasible) after that many nodes without incumbent improvement — a
	// production knob for callers that value latency over proof.
	StallNodes int
	// IntTol is the integrality tolerance. Zero demands exact integrality;
	// a negative value selects the default 1e-6.
	IntTol float64
	// WarmStart, if non-nil, is a feasible point used as the initial
	// incumbent. It is trusted after a cheap feasibility spot check of
	// integrality; callers construct it from a heuristic.
	WarmStart []float64
	// WarmBasis, if non-nil, seeds the root LP relaxation with a starting
	// basis (typically Solution.Basis from a previous, same-shaped solve).
	// The root relaxation is canonicalized, so a warm basis changes only
	// solve time, never the returned Solution.
	WarmBasis *lp.Basis
	// Parallelism is the number of concurrent LP-relaxation solvers used by
	// the search. The returned Solution (Status, Objective, X, Bound, Nodes)
	// is byte-identical for every value ≥ 1: extra workers only solve
	// relaxations speculatively ahead of the deterministic search order, and
	// results the serial order would not have requested are discarded. 1
	// reproduces the fully serial solver; 0 (the default) uses
	// runtime.GOMAXPROCS(0). See DESIGN.md "Parallel branch and bound".
	Parallelism int
	// LP configures the inner simplex solves.
	LP *lp.Options
}

func (o *Options) withDefaults() Options {
	out := Options{MaxNodes: 200_000, RelGap: 1e-6, IntTol: 1e-6, Parallelism: runtime.GOMAXPROCS(0)}
	if o != nil {
		out.TimeLimit = o.TimeLimit
		out.WarmStart = o.WarmStart
		out.WarmBasis = o.WarmBasis
		out.LP = o.LP
		out.StallNodes = o.StallNodes
		if o.MaxNodes > 0 {
			out.MaxNodes = o.MaxNodes
		}
		if o.RelGap >= 0 {
			out.RelGap = o.RelGap
		}
		if o.IntTol >= 0 {
			out.IntTol = o.IntTol
		}
		if o.Parallelism > 0 {
			out.Parallelism = o.Parallelism
		}
	}
	return out
}

// EffectiveParallelism resolves a Parallelism setting the way Solve does:
// values ≤ 0 mean runtime.GOMAXPROCS(0). Callers use it to report the
// worker count a solve actually ran with.
func EffectiveParallelism(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// node is one branch-and-bound subproblem: bound overrides relative to the
// root, plus the parent's LP bound used as the search priority and the
// parent's optimal relaxation basis used to warm-start this node's LP
// (branching changes one bound, so the parent basis is usually one or two
// phase-1 pivots from feasible). basis is immutable and shared — workers
// and the driver only read it.
type node struct {
	bounds []boundChange
	bound  float64
	depth  int
	basis  *lp.Basis
}

type boundChange struct {
	v      int
	lo, hi float64
}

// nodeHeap is a max-heap on the LP bound (best-bound-first search).
type nodeHeap []*node

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].bound > h[j].bound }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Solve runs branch and bound. The problem's variable bounds are mutated
// during the search but restored before returning.
func Solve(p *Problem, opts *Options) Solution {
	o := opts.withDefaults()
	if comps := p.components(); len(comps) > 1 {
		// The constraint graph is disconnected (routing decoupled the
		// allocation): solve each component independently and merge. Each
		// recursive sub-solve is connected, so this recurses at most once.
		return solveDecomposed(p, o, comps)
	}
	s := &solver{p: p, o: o, start: wallNow()}
	if o.TimeLimit > 0 {
		s.deadline = s.start.Add(o.TimeLimit)
	}

	n := p.lp.NumVariables()
	s.rootLo = make([]float64, n)
	s.rootHi = make([]float64, n)
	for v := 0; v < n; v++ {
		s.rootLo[v], s.rootHi[v] = p.lp.Bounds(v)
	}
	defer s.restore()

	if o.WarmStart != nil && len(o.WarmStart) == n && p.integralOK(o.WarmStart, o.IntTol) {
		s.incumbent = append([]float64(nil), o.WarmStart...)
		s.incumbentObj = p.objectiveOf(s.incumbent)
	}

	s.open = &nodeHeap{}
	heap.Init(s.open)
	heap.Push(s.open, &node{bound: math.Inf(1), basis: o.WarmBasis})
	if o.Parallelism > 1 && p.NumIntegers() > 0 {
		s.pool = newSpecPool(s, o.Parallelism)
		defer s.pool.stop()
	}
	return s.run()
}

// solver is the branch-and-bound state for one Solve call.
type solver struct {
	p     *Problem
	o     Options
	start time.Time

	deadline     time.Time
	rootLo       []float64
	rootHi       []float64
	open         *nodeHeap
	incumbent    []float64
	incumbentObj float64
	nodes        int
	bestBound    float64
	// limited records that some subtree was abandoned because of a node,
	// time or LP-iteration limit; exhausting the heap then proves nothing.
	limited bool
	// timeLimited records that the wall-clock deadline specifically fired.
	timeLimited bool
	// rootBasis is the canonicalized basis of the root relaxation.
	rootBasis *lp.Basis
	// lastImprove is the node count at the last incumbent improvement.
	lastImprove int
	// applied tracks the bound overrides currently written into the shared
	// problem, so solveNode undoes only those instead of rewriting every
	// variable's bounds per node.
	applied []boundChange
	// pool, when non-nil, solves LP relaxations speculatively on worker-
	// private problem clones (Options.Parallelism > 1). The search order and
	// every decision stay those of the serial solver; see parallel.go.
	pool *specPool
}

func (s *solver) restore() {
	for v := range s.rootLo {
		s.p.lp.SetBounds(v, s.rootLo[v], s.rootHi[v])
	}
}

// lpOpts builds the LP options for one node's relaxation: the caller's LP
// options plus the node's warm-start basis. The root relaxation is
// canonicalized so that an externally supplied Options.WarmBasis can change
// only solve time, never the search (every descendant then inherits
// byte-identical bases either way).
func (s *solver) lpOpts(nd *node) *lp.Options {
	var o lp.Options
	if s.o.LP != nil {
		o = *s.o.LP
	}
	o.WarmBasis = nd.basis
	o.Canonical = len(nd.bounds) == 0 && nd.depth == 0
	return &o
}

// solveNode solves the LP relaxation of nd inline on the shared problem,
// undoing the previous node's overrides rather than rewriting all bounds.
func (s *solver) solveNode(nd *node) (lp.Solution, error) {
	for _, bc := range s.applied {
		s.p.lp.SetBounds(bc.v, s.rootLo[bc.v], s.rootHi[bc.v])
	}
	s.applied = append(s.applied[:0], nd.bounds...)
	for _, bc := range nd.bounds {
		s.p.lp.SetBounds(bc.v, bc.lo, bc.hi)
	}
	return lp.Solve(s.p.lp, s.lpOpts(nd))
}

// relax returns nd's LP relaxation. With a worker pool it consumes a
// speculatively solved result when one exists (solving inline otherwise)
// and enqueues likely future nodes — the hints plus the best open nodes —
// for the workers. Without a pool it is exactly the serial solveNode.
func (s *solver) relax(nd *node, hints ...*node) (lp.Solution, error) {
	if s.pool == nil {
		return s.solveNode(nd)
	}
	return s.pool.solve(nd, hints)
}

// nodeBounds returns the effective bound interval of variable v at node nd:
// the root interval overridden by the node's branching decisions (later
// entries win, mirroring the order SetBounds applies them in solveNode).
// Reading bounds through the node rather than the shared lp.Problem keeps
// branching correct when a pooled (cached) relaxation skipped the shared-
// problem bound mutation.
func (s *solver) nodeBounds(nd *node, v int) (lo, hi float64) {
	lo, hi = s.rootLo[v], s.rootHi[v]
	for _, bc := range nd.bounds {
		if bc.v == v {
			lo, hi = bc.lo, bc.hi
		}
	}
	return lo, hi
}

// noteBound tightens the reported global bound using a just-solved subtree
// bound: the optimum cannot exceed the best of the open frontier (the heap
// top), the subtree currently being processed, and the incumbent. Reporting
// only — no search decision reads bestBound.
func (s *solver) noteBound(subtree float64) {
	b := subtree
	if s.open.Len() > 0 {
		if t := (*s.open)[0].bound; t > b {
			b = t
		}
	}
	if s.incumbent != nil && s.incumbentObj > b {
		b = s.incumbentObj
	}
	if b < s.bestBound {
		s.bestBound = b
	}
}

func (s *solver) limitHit() bool {
	if s.nodes >= s.o.MaxNodes {
		return true
	}
	if !s.deadline.IsZero() && wallNow().After(s.deadline) {
		s.timeLimited = true
		return true
	}
	return false
}

func (s *solver) gapClosed(bound float64) bool {
	if s.incumbent == nil || math.IsInf(bound, 1) {
		return false
	}
	return bound-s.incumbentObj <= s.o.RelGap*math.Max(1, math.Abs(s.incumbentObj))
}

func (s *solver) accept(x []float64) {
	cand := roundIntegral(s.p, x)
	obj := s.p.objectiveOf(cand)
	if s.incumbent == nil || obj > s.incumbentObj {
		s.incumbent, s.incumbentObj = cand, obj
		s.lastImprove = s.nodes
	}
}

func (s *solver) finish(st Status) Solution {
	sol := Solution{
		Status:      st,
		Bound:       s.bestBound,
		Nodes:       s.nodes,
		Elapsed:     sinceStart(s.start),
		TimeLimited: s.timeLimited,
		Basis:       s.rootBasis,
	}
	if s.incumbent != nil {
		sol.Objective = s.incumbentObj
		sol.X = s.incumbent
		if st == Limit {
			sol.Status = Feasible
		}
	}
	if s.open.Len() == 0 && s.incumbent != nil && !s.limited {
		// Search exhausted with no abandoned subtrees: the incumbent is
		// optimal.
		sol.Bound = s.incumbentObj
	}
	return sol
}

// diveEvery is how often (in processed nodes) the search re-dives for a
// better incumbent once one exists.
const diveEvery = 64

func (s *solver) run() Solution {
	s.bestBound = math.Inf(1)
	for s.open.Len() > 0 {
		if s.limitHit() {
			return s.finish(Limit)
		}
		if s.o.StallNodes > 0 && s.incumbent != nil && s.nodes-s.lastImprove > s.o.StallNodes {
			s.limited = true
			return s.finish(Limit)
		}
		nd := heap.Pop(s.open).(*node)
		// Best-first: the top of the heap carries the global bound. (min:
		// noteBound may already have proven a tighter bound than the stale
		// parent bound this node was queued with.)
		s.bestBound = math.Min(s.bestBound, nd.bound)
		if s.gapClosed(nd.bound) {
			return s.finish(Optimal)
		}
		s.nodes++
		rel, err := s.relax(nd)
		if err != nil {
			return s.finish(Limit)
		}
		if len(nd.bounds) == 0 && nd.depth == 0 && rel.Status == lp.Optimal {
			s.rootBasis = rel.Basis
		}
		switch rel.Status {
		case lp.Infeasible:
			// Empty subtree: the frontier shrinks to the heap + incumbent.
			s.noteBound(math.Inf(-1))
			continue
		case lp.Unbounded:
			if nd.depth == 0 {
				sol := s.finish(Limit)
				sol.Status = Unbounded
				sol.X = nil
				return sol
			}
			continue
		case lp.IterLimit:
			s.limited = true
			if s.incumbent == nil {
				return s.finish(Limit)
			}
			continue
		}
		// The subtree's bound tightened from the parent's bound to its own
		// relaxation objective (valid for its still-unpushed children too).
		s.noteBound(rel.Objective)
		if s.incumbent != nil &&
			rel.Objective <= s.incumbentObj+s.o.RelGap*math.Max(1, math.Abs(s.incumbentObj)) {
			continue // pruned by bound
		}
		v, _ := s.p.mostFractional(rel.X, s.o.IntTol)
		if v < 0 {
			s.accept(rel.X)
			continue
		}
		if s.incumbent == nil || s.nodes%diveEvery == 0 {
			// Plunge depth-first: always for a first incumbent, and
			// periodically afterwards to keep improving it. Siblings of the
			// dive path land on the open heap, so nothing is lost.
			s.dive(nd, rel)
			continue
		}
		down, up := s.branch(nd, v, rel.X[v], rel.Objective, rel.Basis)
		if down != nil {
			heap.Push(s.open, down)
		}
		if up != nil {
			heap.Push(s.open, up)
		}
	}
	if s.limited {
		return s.finish(Limit)
	}
	if s.incumbent == nil {
		return s.finish(Infeasible)
	}
	return s.finish(Optimal)
}

// branch builds the two children of nd on variable v whose relaxation value
// is val, warm-started from nd's relaxation basis. A child whose bound
// interval would be empty is nil.
func (s *solver) branch(nd *node, v int, val, bound float64, basis *lp.Basis) (down, up *node) {
	lo, hi := s.nodeBounds(nd, v)
	floor := math.Floor(val + s.o.IntTol)
	if floor >= lo-s.o.IntTol {
		f := math.Min(floor, hi)
		down = &node{bounds: appendBound(nd.bounds, boundChange{v, lo, f}), bound: bound, depth: nd.depth + 1, basis: basis}
	}
	if floor+1 <= hi+s.o.IntTol {
		l := math.Max(floor+1, lo)
		up = &node{bounds: appendBound(nd.bounds, boundChange{v, l, hi}), bound: bound, depth: nd.depth + 1, basis: basis}
	}
	return down, up
}

// dive performs a depth-first plunge from nd, whose relaxation rel is
// already solved and fractional: at each level it takes the child nearest
// the LP value and pushes the sibling onto the open heap. The plunge stops
// at the first integer-feasible point (accepted as incumbent), an
// infeasible child, or a limit.
func (s *solver) dive(nd *node, rel lp.Solution) {
	cur, curRel := nd, rel
	maxDepth := 4*s.p.NumIntegers() + 16
	for depth := 0; depth < maxDepth; depth++ {
		// The dive path's subtree is bounded by its own relaxation; the rest
		// of the frontier sits on the heap.
		s.noteBound(curRel.Objective)
		if s.limitHit() {
			// cur's subtree is abandoned (its children were never pushed).
			s.limited = true
			return
		}
		if s.incumbent != nil &&
			curRel.Objective <= s.incumbentObj+s.o.RelGap*math.Max(1, math.Abs(s.incumbentObj)) {
			return // this subtree cannot beat the incumbent
		}
		v, _ := s.p.mostFractional(curRel.X, s.o.IntTol)
		if v < 0 {
			s.accept(curRel.X)
			return
		}
		down, up := s.branch(cur, v, curRel.X[v], curRel.Objective, curRel.Basis)
		frac := curRel.X[v] - math.Floor(curRel.X[v]+s.o.IntTol)
		first, second := down, up
		if frac >= 0.5 {
			first, second = up, down
		}
		next, nextRel, ok := s.diveStep(first, second)
		if !ok {
			return
		}
		cur, curRel = next, nextRel
	}
	// Depth budget exhausted: the final node's subtree was abandoned.
	s.limited = true
}

// diveStep descends into the preferred child, falling back to the sibling
// when the preferred one is LP-infeasible (common when rounding an integer
// count starves a demand-equality row). Whichever child is not taken as the
// dive path is pushed onto the open heap, so completeness is preserved.
func (s *solver) diveStep(first, second *node) (*node, lp.Solution, bool) {
	if first == nil {
		first, second = second, nil
		if first == nil {
			return nil, lp.Solution{}, false
		}
	}
	s.nodes++
	var rel lp.Solution
	var err error
	if second != nil {
		// The sibling is the likeliest next solve (taken on infeasibility,
		// queued otherwise), so it makes a good speculation hint.
		rel, err = s.relax(first, second)
	} else {
		rel, err = s.relax(first)
	}
	if err != nil || rel.Status == lp.IterLimit {
		s.limited = true
		if second != nil {
			heap.Push(s.open, second)
		}
		return nil, lp.Solution{}, false
	}
	if rel.Status == lp.Optimal {
		if second != nil {
			heap.Push(s.open, second)
		}
		return first, rel, true
	}
	// First child pruned as infeasible; retry with the sibling, which then
	// becomes the dive path (nothing else to queue).
	if second == nil {
		return nil, lp.Solution{}, false
	}
	s.nodes++
	rel, err = s.relax(second)
	if err != nil || rel.Status == lp.IterLimit {
		s.limited = true
		return nil, lp.Solution{}, false
	}
	if rel.Status != lp.Optimal {
		return nil, lp.Solution{}, false
	}
	return second, rel, true
}

func appendBound(bs []boundChange, bc boundChange) []boundChange {
	out := make([]boundChange, len(bs)+1)
	copy(out, bs)
	out[len(bs)] = bc
	return out
}

// mostFractional returns the integral variable whose relaxation value is
// farthest from an integer, or -1 if all are integral within tol.
func (p *Problem) mostFractional(x []float64, tol float64) (int, float64) {
	best := -1
	bestFrac := tol
	for v, isInt := range p.integral {
		if !isInt {
			continue
		}
		f := math.Abs(x[v] - math.Round(x[v]))
		if f > bestFrac {
			bestFrac = f
			best = v
		}
	}
	if best < 0 {
		return -1, 0
	}
	return best, bestFrac
}

// integralOK reports whether every integral variable in x is integer within
// tol and within its root bounds.
func (p *Problem) integralOK(x []float64, tol float64) bool {
	if len(x) != len(p.integral) {
		return false
	}
	for v, isInt := range p.integral {
		lo, hi := p.lp.Bounds(v)
		if x[v] < lo-tol || x[v] > hi+tol {
			return false
		}
		if isInt && math.Abs(x[v]-math.Round(x[v])) > tol {
			return false
		}
	}
	return true
}

// roundIntegral snaps integral entries of x to exact integers.
func roundIntegral(p *Problem, x []float64) []float64 {
	out := append([]float64(nil), x...)
	for v, isInt := range p.integral {
		if isInt {
			out[v] = math.Round(out[v])
		}
	}
	return out
}

func (p *Problem) objectiveOf(x []float64) float64 {
	obj := 0.0
	for v := 0; v < p.lp.NumVariables(); v++ {
		obj += p.lp.Objective(v) * x[v]
	}
	return obj
}
