package milp

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkSolveFig10 measures solver wall-time on the paper's Fig. 10
// shape — allocation MILPs growing in devices d and variants q — at
// parallelism 1, 2, 4 and the machine width. The solve result is identical
// at every parallelism level (see TestParallelismByteIdentical); only
// wall-clock time may differ. CI archives these numbers as BENCH_milp.json
// via proteus-benchjson.
func BenchmarkSolveFig10(b *testing.B) {
	shapes := []struct {
		devices, variants int
	}{
		{2, 6},
		{3, 10},
		{4, 14},
	}
	levels := []int{1, 2, 4}
	if w := runtime.GOMAXPROCS(0); w != 1 && w != 2 && w != 4 {
		levels = append(levels, w)
	}
	for _, sh := range shapes {
		for _, par := range levels {
			b.Run(fmt.Sprintf("d%dq%d/par%d", sh.devices, sh.variants, par), func(b *testing.B) {
				p := buildAllocInstance(42, sh.devices, sh.variants)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sol := Solve(p, &Options{MaxNodes: 20_000, Parallelism: par})
					if sol.Status != Optimal && sol.Status != Feasible {
						b.Fatalf("status %v", sol.Status)
					}
				}
			})
		}
	}
}
