package milp

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkSolveFig10 measures solver wall-time on the paper's Fig. 10
// shape — allocation MILPs growing in devices d and variants q — at
// parallelism 1, 2, 4 and the machine width, plus the fleet-scale d200q30
// shape (200 devices across 30 routing-decoupled families) that exercises
// the component decomposition. The solve result is identical at every
// parallelism level (see TestParallelismByteIdentical and
// TestFleetByteIdentical); only wall-clock time may differ. CI archives
// these numbers as BENCH_milp.json via proteus-benchjson.
func BenchmarkSolveFig10(b *testing.B) {
	shapes := []struct {
		name  string
		build func() *Problem
	}{
		{"d2q6", func() *Problem { return buildAllocInstance(42, 2, 6) }},
		{"d3q10", func() *Problem { return buildAllocInstance(42, 3, 10) }},
		{"d4q14", func() *Problem { return buildAllocInstance(42, 4, 14) }},
		{"d200q30", func() *Problem { return buildFleetInstance(42, 200, 30, 5) }},
	}
	levels := []int{1, 2, 4}
	if w := runtime.GOMAXPROCS(0); w != 1 && w != 2 && w != 4 {
		levels = append(levels, w)
	}
	for _, sh := range shapes {
		for _, par := range levels {
			b.Run(fmt.Sprintf("%s/par%d", sh.name, par), func(b *testing.B) {
				p := sh.build()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sol := Solve(p, &Options{MaxNodes: 20_000, Parallelism: par})
					if sol.Status != Optimal && sol.Status != Feasible {
						b.Fatalf("status %v", sol.Status)
					}
				}
			})
		}
	}
}
