package milp

import (
	"testing"
	"time"

	"proteus/internal/lp"
	"proteus/internal/numeric"
)

// buildFleetInstance builds a fleet-scale allocation MILP: devices are
// partitioned across families (routing decoupled the fleet), so the
// constraint graph is one independent block per family — the shape the
// component decomposition in decompose.go exists for. Each family block has
// the same structure as buildAllocInstance: an integer replica count and a
// continuous throughput variable per (device, variant) pair, linked by
// per-pair rate rows, per-device capacity rows and per-variant demand caps.
func buildFleetInstance(seed uint64, devices, families, variantsPerFamily int) *Problem {
	rng := numeric.NewRNG(seed)
	p := NewProblem()
	perFam, extra := devices/families, devices%families
	for f := 0; f < families; f++ {
		nDev := perFam
		if f < extra {
			nDev++ // spread the remainder so no family block dominates
		}
		type pair struct{ n, w int }
		pairs := make([]pair, 0, nDev*variantsPerFamily)
		caps := make([]float64, nDev)
		for d := 0; d < nDev; d++ {
			caps[d] = float64(3 + rng.Intn(6))
		}
		for d := 0; d < nDev; d++ {
			for v := 0; v < variantsPerFamily; v++ {
				n := p.AddInteger("n", 0, caps[d])
				w := p.AddVariable("w", 0, 200)
				p.SetObjective(w, float64(40+rng.Intn(60)))
				rate := float64(8 + rng.Intn(12))
				p.AddConstraint([]lp.Term{{Var: w, Coef: 1}, {Var: n, Coef: -rate}}, lp.LE, 0)
				pairs = append(pairs, pair{n, w})
			}
		}
		for d := 0; d < nDev; d++ {
			terms := make([]lp.Term, 0, variantsPerFamily)
			for v := 0; v < variantsPerFamily; v++ {
				terms = append(terms, lp.Term{Var: pairs[d*variantsPerFamily+v].n, Coef: 1})
			}
			p.AddConstraint(terms, lp.LE, caps[d])
		}
		for v := 0; v < variantsPerFamily; v += 2 {
			terms := make([]lp.Term, 0, nDev)
			for d := 0; d < nDev; d++ {
				terms = append(terms, lp.Term{Var: pairs[d*variantsPerFamily+v].w, Coef: 1})
			}
			p.AddConstraint(terms, lp.LE, float64(10+rng.Intn(25)))
		}
	}
	return p
}

// TestFleetDecomposes checks the fleet instance actually falls apart into
// one component per family — otherwise the benchmark would silently measure
// the monolithic path.
func TestFleetDecomposes(t *testing.T) {
	p := buildFleetInstance(42, 200, 30, 5)
	comps := p.components()
	if len(comps) != 30 {
		t.Fatalf("components = %d, want 30", len(comps))
	}
	nv, nr := 0, 0
	for _, c := range comps {
		nv += len(c.vars)
		nr += len(c.rows)
	}
	if nv != p.NumVariables() || nr != p.NumConstraints() {
		t.Fatalf("components cover %d vars / %d rows, problem has %d / %d",
			nv, nr, p.NumVariables(), p.NumConstraints())
	}
}

// TestFleetByteIdentical solves the d200q30 fleet shape at several
// parallelism levels, warm and cold, and demands bit-identical Solutions —
// the acceptance bar for the decomposed path.
func TestFleetByteIdentical(t *testing.T) {
	p := buildFleetInstance(42, 200, 30, 5)
	base := Solve(p, &Options{MaxNodes: 20_000, Parallelism: 1})
	if base.Status != Optimal {
		t.Fatalf("status %v, want optimal", base.Status)
	}
	if base.Basis == nil {
		t.Fatalf("decomposed solve returned no merged basis")
	}
	for _, par := range []int{2, 4} {
		sol := Solve(p, &Options{MaxNodes: 20_000, Parallelism: par})
		if diff, ok := sameSolution(base, sol); !ok {
			t.Fatalf("par %d differs from par 1: %s", par, diff)
		}
	}
	warm := Solve(p, &Options{MaxNodes: 20_000, Parallelism: 1, WarmBasis: base.Basis})
	if diff, ok := sameSolution(base, warm); !ok {
		t.Fatalf("warm-started solve differs from cold: %s", diff)
	}
	warmPar := Solve(p, &Options{MaxNodes: 20_000, Parallelism: 4, WarmBasis: base.Basis})
	if diff, ok := sameSolution(base, warmPar); !ok {
		t.Fatalf("warm par-4 solve differs from cold par 1: %s", diff)
	}
}

// TestFleetSolveUnderBudget is a smoke check that the decomposed fleet
// solve lands well inside one control period. The CI benchmark tracks the
// exact number; this test only guards against catastrophic regression (a
// lost decomposition turns 100ms into minutes).
func TestFleetSolveUnderBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing smoke test")
	}
	p := buildFleetInstance(42, 200, 30, 5)
	startN := time.Now()
	sol := Solve(p, &Options{MaxNodes: 20_000, Parallelism: 1})
	elapsed := time.Since(startN)
	if sol.Status != Optimal {
		t.Fatalf("status %v, want optimal", sol.Status)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("fleet solve took %v, expected well under 2s", elapsed)
	}
}
