// Connected-component decomposition for the branch-and-bound solver.
//
// When routing decouples the allocation MILP — no constraint row links
// variables of different model families — the problem's constraint graph
// falls apart into independent components, and branch and bound on the
// whole problem wastes its tree on a cross product of subproblems. Solve
// detects this case up front (union-find over the rows, O(variables +
// nonzeros)) and solves each component as its own MILP in canonical order
// (components sorted by their smallest variable index), merging the
// solutions. Every sub-solve is itself deterministic and canonicalizes its
// root relaxation, so the merged Solution retains the package's guarantee:
// byte-identical across Parallelism levels and warm/cold starts.
package milp

import (
	"math"
	"sync"
	"time"

	"proteus/internal/lp"
)

// component is one independent block of the constraint graph: variable and
// row index lists in ascending order, in full-problem coordinates.
type component struct {
	vars []int
	rows []int
}

// components partitions the variables into connected components of the
// constraint graph. Rows with no terms are attached to the first component
// (the LP presolve checks their consistency). Variables appearing in no row
// each form their own singleton component.
func (p *Problem) components() []component {
	n := p.lp.NumVariables()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	// Union by minimum index, so a component's root is its smallest variable.
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra < rb {
			parent[rb] = ra
		} else if rb < ra {
			parent[ra] = rb
		}
	}
	m := p.lp.NumConstraints()
	for i := 0; i < m; i++ {
		terms, _, _ := p.lp.Constraint(i)
		for k := 1; k < len(terms); k++ {
			union(terms[0].Var, terms[k].Var)
		}
	}
	compOf := make([]int, n)
	for i := range compOf {
		compOf[i] = -1
	}
	var comps []component
	for v := 0; v < n; v++ {
		r := find(v)
		if compOf[r] < 0 {
			compOf[r] = len(comps)
			comps = append(comps, component{})
		}
		c := compOf[r]
		comps[c].vars = append(comps[c].vars, v)
	}
	for i := 0; i < m; i++ {
		terms, _, _ := p.lp.Constraint(i)
		c := 0
		if len(terms) > 0 {
			c = compOf[find(terms[0].Var)]
		}
		comps[c].rows = append(comps[c].rows, i)
	}
	return comps
}

// subProblem extracts one component as a standalone MILP in local
// coordinates (variable k of the sub is c.vars[k], row r is c.rows[r]).
func (p *Problem) subProblem(c component) *Problem {
	sub := NewProblem()
	local := make([]int, p.lp.NumVariables())
	for k, v := range c.vars {
		local[v] = k
		lo, hi := p.lp.Bounds(v)
		if p.integral[v] {
			sub.AddInteger(p.lp.VarName(v), lo, hi)
		} else {
			sub.AddVariable(p.lp.VarName(v), lo, hi)
		}
		sub.SetObjective(k, p.lp.Objective(v))
	}
	for _, i := range c.rows {
		terms, rel, rhs := p.lp.Constraint(i)
		lt := make([]lp.Term, len(terms))
		for k, t := range terms {
			lt[k] = lp.Term{Var: local[t.Var], Coef: t.Coef}
		}
		sub.AddConstraint(lt, rel, rhs)
	}
	return sub
}

// subOptions narrows the full-problem options to one component: the warm
// incumbent and warm basis are sliced/projected into local coordinates and
// the time limit is the remaining share of the shared deadline.
func subOptions(o Options, c component, remaining time.Duration) *Options {
	so := o
	so.TimeLimit = remaining
	if len(o.WarmStart) > 0 {
		ws := make([]float64, len(c.vars))
		for k, v := range c.vars {
			ws[k] = o.WarmStart[v]
		}
		so.WarmStart = ws
	}
	so.WarmBasis = o.WarmBasis.Project(c.vars, c.rows)
	return &so
}

// solveDecomposed solves each component as its own MILP — sequentially at
// Parallelism 1, across a worker pool otherwise (components are fully
// independent, so running them concurrently cannot change any result) — and
// merges the results in component order: objectives and bounds sum, X and
// the optimal basis reassemble in full coordinates, node counts add,
// statuses combine by precedence (Infeasible and Unbounded end the merge
// immediately; Limit without an incumbent wins over Feasible, which wins
// over Optimal). The merge walks components in canonical order and stops at
// the first terminal status exactly like a sequential solve would, so the
// Solution is byte-identical at every parallelism level even when extra
// workers solved components the sequential order never reaches.
func solveDecomposed(p *Problem, o Options, comps []component) Solution {
	start := wallNow()
	var deadline time.Time
	if o.TimeLimit > 0 {
		deadline = start.Add(o.TimeLimit)
	}
	results := make([]Solution, len(comps))
	solveOne := func(i int, innerPar int) bool {
		remaining := time.Duration(0)
		if o.TimeLimit > 0 {
			remaining = deadline.Sub(wallNow())
			if remaining <= 0 {
				results[i] = Solution{Status: Limit, TimeLimited: true, Bound: math.Inf(1)}
				return false
			}
		}
		so := subOptions(o, comps[i], remaining)
		so.Parallelism = innerPar
		results[i] = Solve(p.subProblem(comps[i]), so)
		return results[i].Status == Optimal || results[i].Status == Feasible
	}
	if o.Parallelism > 1 && len(comps) > 1 {
		workers := o.Parallelism
		if workers > len(comps) {
			workers = len(comps)
		}
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					solveOne(i, 1)
				}
			}()
		}
		for i := range comps {
			idx <- i
		}
		close(idx)
		wg.Wait()
	} else {
		for i := range comps {
			if !solveOne(i, o.Parallelism) {
				break // terminal status: the merge below stops here anyway
			}
		}
	}

	n := p.lp.NumVariables()
	out := Solution{Status: Optimal, X: make([]float64, n)}
	basis := lp.NewLogicalBasis(n, p.lp.NumConstraints())
	haveBasis := true
	for i, c := range comps {
		res := results[i]
		out.Nodes += res.Nodes
		out.TimeLimited = out.TimeLimited || res.TimeLimited
		switch res.Status {
		case Infeasible, Unbounded:
			out.Status = res.Status
			out.X = nil
			out.Bound = math.Inf(-1)
			if res.Status == Unbounded {
				out.Bound = math.Inf(1)
			}
			out.Objective = 0
			out.Elapsed = sinceStart(start)
			return out
		case Limit:
			out.Status = Limit
			out.X = nil
			out.Bound = math.Inf(1)
			out.Elapsed = sinceStart(start)
			return out
		case Feasible:
			out.Status = Feasible
		}
		out.Objective += res.Objective
		out.Bound += res.Bound
		for k, v := range c.vars {
			out.X[v] = res.X[k]
		}
		if res.Basis != nil {
			basis.Absorb(res.Basis, c.vars, c.rows)
		} else {
			haveBasis = false
		}
	}
	if haveBasis {
		out.Basis = basis
	}
	out.Elapsed = sinceStart(start)
	return out
}
