package milp

import (
	"math"
	"testing"
	"time"

	"proteus/internal/lp"
)

func TestKnapsack(t *testing.T) {
	// Classic 0/1 knapsack: values 60,100,120 weights 10,20,30, cap 50.
	// Optimal: items 2 and 3, value 220.
	p := NewProblem()
	vals := []float64{60, 100, 120}
	wts := []float64{10, 20, 30}
	vars := make([]int, 3)
	terms := make([]lp.Term, 3)
	for i := range vars {
		vars[i] = p.AddBinary("item")
		p.SetObjective(vars[i], vals[i])
		terms[i] = lp.Term{Var: vars[i], Coef: wts[i]}
	}
	p.AddConstraint(terms, lp.LE, 50)
	sol := Solve(p, nil)
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.Objective-220) > 1e-6 {
		t.Fatalf("objective %v, want 220", sol.Objective)
	}
	want := []float64{0, 1, 1}
	for i, v := range vars {
		if math.Abs(sol.X[v]-want[i]) > 1e-9 {
			t.Fatalf("x[%d] = %v, want %v", i, sol.X[v], want[i])
		}
	}
}

func TestKnapsackFractionalRelaxationDiffers(t *testing.T) {
	// Values 10, 10, 12; weights 5, 5, 8; cap 10. LP relaxation takes a
	// fraction of item 3; MILP must pick items 1+2 (value 20).
	p := NewProblem()
	vals := []float64{10, 10, 12}
	wts := []float64{5, 5, 8}
	var terms []lp.Term
	for i := range vals {
		v := p.AddBinary("item")
		p.SetObjective(v, vals[i])
		terms = append(terms, lp.Term{Var: v, Coef: wts[i]})
	}
	p.AddConstraint(terms, lp.LE, 10)
	sol := Solve(p, nil)
	if sol.Status != Optimal || math.Abs(sol.Objective-20) > 1e-6 {
		t.Fatalf("got %v obj %v, want optimal 20", sol.Status, sol.Objective)
	}
}

func TestAssignmentProblem(t *testing.T) {
	// 3x3 assignment, maximize total score.
	// scores: [[9,2,7],[6,4,3],[5,8,1]] → optimal 9+4+8? rows to cols:
	// r0→c0 (9), r1→c2 (3), r2→c1 (8) = 20; or r0→c2(7), r1→c0(6), r2→c1(8)=21.
	scores := [][]float64{{9, 2, 7}, {6, 4, 3}, {5, 8, 1}}
	p := NewProblem()
	x := make([][]int, 3)
	for i := range x {
		x[i] = make([]int, 3)
		for j := range x[i] {
			x[i][j] = p.AddBinary("x")
			p.SetObjective(x[i][j], scores[i][j])
		}
	}
	for i := 0; i < 3; i++ {
		row := []lp.Term{{Var: x[i][0], Coef: 1}, {Var: x[i][1], Coef: 1}, {Var: x[i][2], Coef: 1}}
		p.AddConstraint(row, lp.EQ, 1)
		col := []lp.Term{{Var: x[0][i], Coef: 1}, {Var: x[1][i], Coef: 1}, {Var: x[2][i], Coef: 1}}
		p.AddConstraint(col, lp.EQ, 1)
	}
	sol := Solve(p, nil)
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.Objective-21) > 1e-6 {
		t.Fatalf("objective %v, want 21", sol.Objective)
	}
}

func TestGeneralInteger(t *testing.T) {
	// max 3x + 4y, 2x + y <= 10, x + 3y <= 15, x,y integer ≥ 0.
	// LP optimum at x=3, y=4 → 25 (integral already).
	p := NewProblem()
	x := p.AddInteger("x", 0, 100)
	y := p.AddInteger("y", 0, 100)
	p.SetObjective(x, 3)
	p.SetObjective(y, 4)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 2}, {Var: y, Coef: 1}}, lp.LE, 10)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 3}}, lp.LE, 15)
	sol := Solve(p, nil)
	if sol.Status != Optimal || math.Abs(sol.Objective-25) > 1e-6 {
		t.Fatalf("got %v obj %v, want optimal 25", sol.Status, sol.Objective)
	}
}

func TestIntegerRounding(t *testing.T) {
	// max x s.t. 2x <= 7, x integer → x=3 (LP gives 3.5).
	p := NewProblem()
	x := p.AddInteger("x", 0, 100)
	p.SetObjective(x, 1)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 2}}, lp.LE, 7)
	sol := Solve(p, nil)
	if sol.Status != Optimal || math.Abs(sol.Objective-3) > 1e-9 {
		t.Fatalf("got %v obj %v, want optimal 3", sol.Status, sol.Objective)
	}
	if sol.X[x] != 3 {
		t.Fatalf("x = %v, want exactly 3", sol.X[x])
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// Fixed-charge: y binary opens capacity 10 at cost 3; x <= 10y;
	// max 2x - 3y with x <= 4.5 → open, x=4.5, obj 6.
	p := NewProblem()
	x := p.AddVariable("x", 0, 4.5)
	y := p.AddBinary("open")
	p.SetObjective(x, 2)
	p.SetObjective(y, -3)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: -10}}, lp.LE, 0)
	sol := Solve(p, nil)
	if sol.Status != Optimal || math.Abs(sol.Objective-6) > 1e-6 {
		t.Fatalf("got %v obj %v, want optimal 6", sol.Status, sol.Objective)
	}
	if sol.X[y] != 1 {
		t.Fatalf("y = %v, want 1", sol.X[y])
	}
}

func TestFixedChargeStaysClosed(t *testing.T) {
	// Same but opening cost exceeds profit → stay closed, obj 0.
	p := NewProblem()
	x := p.AddVariable("x", 0, 1)
	y := p.AddBinary("open")
	p.SetObjective(x, 2)
	p.SetObjective(y, -3)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: -10}}, lp.LE, 0)
	sol := Solve(p, nil)
	if sol.Status != Optimal || math.Abs(sol.Objective) > 1e-6 {
		t.Fatalf("got %v obj %v, want optimal 0", sol.Status, sol.Objective)
	}
}

func TestInfeasibleMILP(t *testing.T) {
	// x + y = 1 with x, y binary and x + y >= 2 impossible... make it
	// integer-infeasible but LP-feasible: 2x = 1, x binary.
	p := NewProblem()
	x := p.AddBinary("x")
	p.SetObjective(x, 1)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 2}}, lp.EQ, 1)
	sol := Solve(p, nil)
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
}

func TestLPInfeasibleRoot(t *testing.T) {
	p := NewProblem()
	x := p.AddBinary("x")
	p.AddConstraint([]lp.Term{{Var: x, Coef: 1}}, lp.GE, 2)
	sol := Solve(p, nil)
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
}

func TestUnboundedMILP(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1))
	y := p.AddBinary("y")
	p.SetObjective(x, 1)
	p.AddConstraint([]lp.Term{{Var: y, Coef: 1}}, lp.LE, 1)
	sol := Solve(p, nil)
	if sol.Status != Unbounded {
		t.Fatalf("status %v, want unbounded", sol.Status)
	}
}

func TestWarmStartAcceleratesAndIsUsed(t *testing.T) {
	p := NewProblem()
	vals := []float64{60, 100, 120}
	wts := []float64{10, 20, 30}
	var terms []lp.Term
	vars := make([]int, 3)
	for i := range vals {
		vars[i] = p.AddBinary("item")
		p.SetObjective(vars[i], vals[i])
		terms = append(terms, lp.Term{Var: vars[i], Coef: wts[i]})
	}
	p.AddConstraint(terms, lp.LE, 50)
	// Warm start with the true optimum; solver must confirm it.
	sol := Solve(p, &Options{WarmStart: []float64{0, 1, 1}})
	if sol.Status != Optimal || math.Abs(sol.Objective-220) > 1e-6 {
		t.Fatalf("got %v obj %v", sol.Status, sol.Objective)
	}
}

func TestWarmStartWithBadIntegralityIgnored(t *testing.T) {
	p := NewProblem()
	x := p.AddBinary("x")
	p.SetObjective(x, 1)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 1}}, lp.LE, 1)
	sol := Solve(p, &Options{WarmStart: []float64{0.5}})
	if sol.Status != Optimal || sol.X[x] != 1 {
		t.Fatalf("got %v x %v", sol.Status, sol.X)
	}
}

func TestNodeLimitReturnsFeasible(t *testing.T) {
	// A problem needing branching, with MaxNodes = 1: after the root node
	// we have no incumbent → Limit; with a warm start → Feasible.
	p := NewProblem()
	x := p.AddInteger("x", 0, 100)
	p.SetObjective(x, 1)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 2}}, lp.LE, 7)
	sol := Solve(p, &Options{MaxNodes: 1})
	if sol.Status != Limit {
		t.Fatalf("status %v, want limit", sol.Status)
	}
	sol = Solve(p, &Options{MaxNodes: 1, WarmStart: []float64{1}})
	if sol.Status != Feasible || sol.Objective != 1 {
		t.Fatalf("status %v obj %v, want feasible 1", sol.Status, sol.Objective)
	}
	if sol.Gap() <= 0 {
		t.Fatalf("gap %v, want positive", sol.Gap())
	}
}

// TestFiniteBoundUnderNodeLimit is the regression test for the bound-
// reporting bug: with MaxNodes: 1 the root relaxation is solved to a finite
// objective, yet the solver used to report Bound = +Inf (and Gap() = +Inf)
// because the global bound was only tightened from popped parents. The
// solved relaxation objective itself proves a bound on the whole tree.
func TestFiniteBoundUnderNodeLimit(t *testing.T) {
	p := NewProblem()
	x := p.AddInteger("x", 0, 100)
	p.SetObjective(x, 1)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 2}}, lp.LE, 7)

	sol := Solve(p, &Options{MaxNodes: 1})
	if math.IsInf(sol.Bound, 1) {
		t.Fatalf("Bound = +Inf after solving the root relaxation; want ≤ 3.5")
	}
	if sol.Bound < 3 || sol.Bound > 3.5+1e-9 {
		t.Fatalf("Bound = %v, want the root relaxation value 3.5", sol.Bound)
	}

	sol = Solve(p, &Options{MaxNodes: 1, WarmStart: []float64{1}})
	if sol.Status != Feasible {
		t.Fatalf("status %v, want feasible", sol.Status)
	}
	if g := sol.Gap(); math.IsInf(g, 1) || g <= 0 {
		t.Fatalf("Gap() = %v under MaxNodes: 1, want finite and positive", g)
	}
}

// TestRelGapZeroProvesExactOptimality is the regression test for the
// options bug: RelGap: 0 used to be treated as "unset" and silently became
// 1e-6, making an exact optimality proof unexpressible. Explicit zeros now
// pass through (negative selects the default).
func TestRelGapZeroProvesExactOptimality(t *testing.T) {
	if got := (&Options{RelGap: 0, IntTol: 0}).withDefaults(); got.RelGap != 0 || got.IntTol != 0 {
		t.Fatalf("explicit zeros rewritten to RelGap=%v IntTol=%v", got.RelGap, got.IntTol)
	}
	if got := (&Options{RelGap: -1, IntTol: -1}).withDefaults(); got.RelGap != 1e-6 || got.IntTol != 1e-6 {
		t.Fatalf("negative-means-default broken: RelGap=%v IntTol=%v", got.RelGap, got.IntTol)
	}

	p := NewProblem()
	var terms []lp.Term
	vals := []float64{9, 7, 6, 5, 3}
	wts := []float64{4, 3, 3, 2, 2}
	for i := range vals {
		v := p.AddBinary("x")
		p.SetObjective(v, vals[i])
		terms = append(terms, lp.Term{Var: v, Coef: wts[i]})
	}
	p.AddConstraint(terms, lp.LE, 7)
	sol := Solve(p, &Options{RelGap: 0})
	if sol.Status != Optimal {
		t.Fatalf("status %v, want optimal", sol.Status)
	}
	if sol.Bound != sol.Objective { //lint:allow floateq exactness is the property under test
		t.Fatalf("Bound %v != Objective %v: gap not closed exactly", sol.Bound, sol.Objective)
	}
	if g := sol.Gap(); g != 0 { //lint:allow floateq exactness is the property under test
		t.Fatalf("Gap() = %v, want exactly 0", g)
	}
}

func TestTimeLimit(t *testing.T) {
	// Pseudo-polynomial hard-ish instance; with a tiny time limit the solver
	// must return promptly with Limit or Feasible rather than hang.
	p := NewProblem()
	var terms []lp.Term
	for i := 0; i < 40; i++ {
		v := p.AddBinary("x")
		p.SetObjective(v, float64(100+i*7%13))
		terms = append(terms, lp.Term{Var: v, Coef: float64(7 + (i*31)%17)})
	}
	p.AddConstraint(terms, lp.LE, 150)
	start := time.Now()
	sol := Solve(p, &Options{TimeLimit: 30 * time.Millisecond})
	if time.Since(start) > 2*time.Second {
		t.Fatalf("time limit not honored: %v", time.Since(start))
	}
	if sol.Status == Infeasible || sol.Status == Unbounded {
		t.Fatalf("unexpected status %v", sol.Status)
	}
}

func TestBoundsRestoredAfterSolve(t *testing.T) {
	p := NewProblem()
	x := p.AddInteger("x", 0, 9)
	p.SetObjective(x, 1)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 2}}, lp.LE, 7)
	Solve(p, nil)
	// Solve again; if bounds leaked from branching, the second solve would
	// see a narrowed domain. Both must agree.
	sol2 := Solve(p, nil)
	if sol2.Status != Optimal || sol2.Objective != 3 {
		t.Fatalf("second solve got %v obj %v", sol2.Status, sol2.Objective)
	}
}

func TestSolutionIsIntegral(t *testing.T) {
	p := NewProblem()
	var terms []lp.Term
	for i := 0; i < 10; i++ {
		v := p.AddBinary("x")
		p.SetObjective(v, float64(i%4)+0.5)
		terms = append(terms, lp.Term{Var: v, Coef: float64(1 + i%3)})
	}
	p.AddConstraint(terms, lp.LE, 7)
	sol := Solve(p, nil)
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	for i, v := range sol.X {
		if v != math.Round(v) {
			t.Fatalf("x[%d] = %v not integral", i, v)
		}
	}
}

func TestCounts(t *testing.T) {
	p := NewProblem()
	p.AddVariable("c", 0, 1)
	p.AddBinary("b")
	p.AddInteger("i", 0, 5)
	if p.NumVariables() != 3 || p.NumIntegers() != 2 {
		t.Fatalf("counts: vars %d ints %d", p.NumVariables(), p.NumIntegers())
	}
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}}, lp.LE, 1)
	if p.NumConstraints() != 1 {
		t.Fatalf("constraints %d", p.NumConstraints())
	}
}

func TestStatusStrings(t *testing.T) {
	for st, want := range map[Status]string{
		Optimal: "optimal", Feasible: "feasible", Infeasible: "infeasible",
		Unbounded: "unbounded", Limit: "limit",
	} {
		if st.String() != want {
			t.Errorf("%d.String() = %q", st, st.String())
		}
	}
}
