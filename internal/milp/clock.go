package milp

import "time"

// wallNow is the package's single wall-clock read, shared by the TimeLimit
// anchor/enforcement sites in the flat solver and the component-decomposed
// solver. Solves are byte-deterministic unless a configured time limit
// fires; reading the clock is the caller's explicit latency/optimality
// trade.
func wallNow() time.Time {
	return time.Now() //lint:allow determinism wall-clock TimeLimit anchor and enforcement; solves are deterministic unless a time limit fires
}

// sinceStart measures elapsed wall time for Solution.Elapsed, which is
// reporting-only and zeroed at every byte-deterministic serialization
// surface (see controlplane.SanitizePlanRecord).
func sinceStart(start time.Time) time.Duration {
	return time.Since(start) //lint:allow determinism reporting-only wall-clock measurement
}
