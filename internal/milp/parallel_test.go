package milp

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"proteus/internal/lp"
	"proteus/internal/numeric"
)

// buildAllocInstance generates an allocation-shaped MILP (the Fig. 10
// structure: d devices × q variants, integer replica counts coupled to
// continuous served-rate variables through capacity and demand rows) whose
// coefficients are derived deterministically from seed.
func buildAllocInstance(seed uint64, devices, variants int) *Problem {
	rng := numeric.NewRNG(seed)
	p := NewProblem()
	type pair struct{ n, w int }
	pairs := make([]pair, 0, devices*variants)
	caps := make([]float64, devices)
	for d := 0; d < devices; d++ {
		caps[d] = float64(3 + rng.Intn(6))
	}
	for d := 0; d < devices; d++ {
		for v := 0; v < variants; v++ {
			n := p.AddInteger("n", 0, caps[d])
			w := p.AddVariable("w", 0, 200)
			p.SetObjective(w, float64(40+rng.Intn(60)))
			rate := float64(8 + rng.Intn(12))
			p.AddConstraint([]lp.Term{{Var: w, Coef: 1}, {Var: n, Coef: -rate}}, lp.LE, 0)
			pairs = append(pairs, pair{n, w})
		}
	}
	for d := 0; d < devices; d++ {
		terms := make([]lp.Term, 0, variants)
		for v := 0; v < variants; v++ {
			terms = append(terms, lp.Term{Var: pairs[d*variants+v].n, Coef: 1})
		}
		p.AddConstraint(terms, lp.LE, caps[d])
	}
	for v := 0; v < variants; v += 2 {
		terms := make([]lp.Term, 0, devices)
		for d := 0; d < devices; d++ {
			terms = append(terms, lp.Term{Var: pairs[d*variants+v].w, Coef: 1})
		}
		p.AddConstraint(terms, lp.LE, float64(10+rng.Intn(25)))
	}
	return p
}

// sameSolution reports whether two Solutions are byte-identical ignoring
// Elapsed (the only wall-clock field). Floats are compared by bit pattern,
// not ==, so even a -0 vs +0 or NaN-payload divergence fails.
func sameSolution(a, b Solution) (string, bool) {
	if a.Status != b.Status {
		return fmt.Sprintf("status %v vs %v", a.Status, b.Status), false
	}
	if math.Float64bits(a.Objective) != math.Float64bits(b.Objective) {
		return fmt.Sprintf("objective %x vs %x", a.Objective, b.Objective), false
	}
	if math.Float64bits(a.Bound) != math.Float64bits(b.Bound) {
		return fmt.Sprintf("bound %x vs %x", a.Bound, b.Bound), false
	}
	if a.Nodes != b.Nodes {
		return fmt.Sprintf("nodes %d vs %d", a.Nodes, b.Nodes), false
	}
	if len(a.X) != len(b.X) {
		return fmt.Sprintf("len(X) %d vs %d", len(a.X), len(b.X)), false
	}
	for i := range a.X {
		if math.Float64bits(a.X[i]) != math.Float64bits(b.X[i]) {
			return fmt.Sprintf("X[%d] %x vs %x", i, a.X[i], b.X[i]), false
		}
	}
	return "", true
}

// TestParallelismByteIdentical is the tentpole's acceptance test: across a
// seeds × parallelism cross-product, every Parallelism ≥ 1 must return a
// Solution byte-identical to the serial solver — including under a node
// budget, where incumbent timing would expose any search-order divergence.
func TestParallelismByteIdentical(t *testing.T) {
	levels := []int{1, 2, 4, runtime.NumCPU()}
	seeds := []uint64{1, 7, 42, 1234, 99999}
	for _, seed := range seeds {
		for _, maxNodes := range []int{60, 0} {
			base := Solve(buildAllocInstance(seed, 3, 8), &Options{MaxNodes: maxNodes, Parallelism: 1})
			for _, par := range levels[1:] {
				got := Solve(buildAllocInstance(seed, 3, 8), &Options{MaxNodes: maxNodes, Parallelism: par})
				if diff, ok := sameSolution(base, got); !ok {
					t.Errorf("seed %d maxNodes %d: Parallelism %d diverges from serial: %s",
						seed, maxNodes, par, diff)
				}
			}
		}
	}
}

// TestParallelismZeroMeansGOMAXPROCS checks the default resolves to the
// machine width and still matches the serial result.
func TestParallelismZeroMeansGOMAXPROCS(t *testing.T) {
	o := (&Options{}).withDefaults()
	if o.Parallelism != runtime.GOMAXPROCS(0) {
		t.Fatalf("default Parallelism = %d, want GOMAXPROCS %d", o.Parallelism, runtime.GOMAXPROCS(0))
	}
	serial := Solve(buildAllocInstance(5, 3, 6), &Options{Parallelism: 1})
	auto := Solve(buildAllocInstance(5, 3, 6), nil)
	if diff, ok := sameSolution(serial, auto); !ok {
		t.Fatalf("default parallelism diverges from serial: %s", diff)
	}
}

// TestParallelStressIdenticalIncumbents is the -race stress test: a
// mid-size allocation instance solved repeatedly at Parallelism 1, 2 and
// NumCPU, asserting identical incumbents. Under -race this also exercises
// the pool's claim/publish protocol (CAS + ready-channel close) across many
// pool lifecycles.
func TestParallelStressIdenticalIncumbents(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const rounds = 8
	levels := []int{1, 2, runtime.NumCPU()}
	want := Solve(buildAllocInstance(17, 4, 10), &Options{MaxNodes: 3000, Parallelism: 1})
	for r := 0; r < rounds; r++ {
		for _, par := range levels {
			got := Solve(buildAllocInstance(17, 4, 10), &Options{MaxNodes: 3000, Parallelism: par})
			if diff, ok := sameSolution(want, got); !ok {
				t.Fatalf("round %d Parallelism %d: incumbent diverges: %s", r, par, diff)
			}
		}
	}
}

// TestSpeculationActuallyHits guards the machinery against silently
// degenerating into serial-plus-overhead: if the cache key ever mismatched
// between speculation and consumption (or workers never claimed jobs),
// every relaxation would miss and Parallelism > 1 would buy nothing while
// still being byte-identical. The test drives the pool directly and forces
// the worker to finish a speculated node before the driver requests it (by
// blocking on the entry's ready channel), so it is deterministic even on a
// single-core machine where the scheduler would rarely run workers ahead of
// the driver on its own.
func TestSpeculationActuallyHits(t *testing.T) {
	prob := buildAllocInstance(17, 4, 10)
	s := &solver{p: prob, o: (&Options{Parallelism: 2}).withDefaults()}
	n := prob.lp.NumVariables()
	s.rootLo = make([]float64, n)
	s.rootHi = make([]float64, n)
	for v := 0; v < n; v++ {
		s.rootLo[v], s.rootHi[v] = prob.lp.Bounds(v)
	}
	defer s.restore()
	s.open = &nodeHeap{}

	pl := newSpecPool(s, 2)
	defer pl.stop()
	s.pool = pl

	root := &node{bound: math.Inf(1)}
	child := &node{bounds: []boundChange{{v: 0, lo: 0, hi: 0}}, bound: math.Inf(1), depth: 1}

	// Solving the root with child as a hint queues child for the worker.
	want, err := s.solveNode(child)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.solve(root, []*node{child}); err != nil {
		t.Fatal(err)
	}
	e, ok := pl.cache[nodeKey(child)]
	if !ok {
		t.Fatal("hint was not speculated into the cache")
	}
	<-e.ready // worker finishes the speculative solve

	got, err := pl.solve(child, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pl.hits != 1 || pl.misses != 1 {
		t.Fatalf("hits=%d misses=%d, want exactly 1 hit (child) and 1 miss (root)", pl.hits, pl.misses)
	}
	if math.Float64bits(got.Objective) != math.Float64bits(want.Objective) {
		t.Fatalf("speculative relaxation %v differs from inline solve %v", got.Objective, want.Objective)
	}
	if _, still := pl.cache[nodeKey(child)]; still {
		t.Fatal("consumed entry not removed from the cache")
	}
}

// TestCloneIsDeep guards the worker-isolation prerequisite: mutating a
// clone's bounds, objective or rows must not leak into the original.
func TestCloneIsDeep(t *testing.T) {
	p := lp.NewProblem()
	x := p.AddVariable("x", 0, 10)
	y := p.AddVariable("y", 0, 5)
	p.SetObjective(x, 3)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 2}}, lp.LE, 8)

	q := p.Clone()
	q.SetBounds(x, 1, 2)
	q.SetObjective(y, 7)

	if lo, hi := p.Bounds(x); lo != 0 || hi != 10 {
		t.Fatalf("clone bound mutation leaked: [%v, %v]", lo, hi)
	}
	if p.Objective(y) != 0 {
		t.Fatalf("clone objective mutation leaked: %v", p.Objective(y))
	}
	a, errA := lp.Solve(p, nil)
	b, errB := lp.Solve(q, nil)
	if errA != nil || errB != nil {
		t.Fatalf("solve: %v, %v", errA, errB)
	}
	if a.Objective == b.Objective { //lint:allow floateq test asserts the problems genuinely differ
		t.Fatalf("clone and original solved identically (%v); copy is shallow?", a.Objective)
	}
}
