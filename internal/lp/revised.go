// Sparse revised simplex with warm starts.
//
// The solver keeps the constraint matrix in compressed-sparse-column form
// and represents the basis by an explicit dense inverse that is updated
// product-form on each pivot and rebuilt from scratch (deterministic
// Gauss-Jordan with partial pivoting, ties broken by lowest row) every
// refactorEvery pivots and once more at the end, so the reported solution
// never depends on the pivot path's accumulated floating-point history.
//
// Feasibility is restored by a bound-stretch composite phase 1: the bounds
// of out-of-range basic variables are temporarily stretched to their
// current values and a ±1 objective pulls them back; a variable whose value
// re-enters its true range has its bounds restored immediately (pricing is
// recomputed every iteration, so mid-phase cost edits are free).
//
// Determinism: every choice — entering column (Dantzig with lowest-index
// tie-break, Bland's rule after a degenerate stall), leaving row (lowest
// basic column index among near-ties), factorization pivots — is index-
// deterministic, and the final answer is canonicalized (see canonicalize)
// so that warm and cold solves of the same problem return byte-identical
// solutions. No maps, no wall clock, no randomness.
package lp

import "math"

const (
	refactorEvery = 128   // pivots between basis refactorizations
	stallLimit    = 200   // degenerate steps before switching to Bland's rule
	feasTol       = 1e-7  // residual infeasibility accepted after phase 1
	dualTol       = 1e-7  // reduced-cost magnitude treated as nonzero
	pivotTol      = 1e-10 // factorization pivot magnitude treated as nonsingular
)

// isZero reports f == ±0 without a float equality comparison.
func isZero(f float64) bool { return math.Float64bits(f)<<1 == 0 }

// csc is the structural constraint matrix in compressed-sparse-column form;
// duplicate terms are merged and rows appear in increasing order within
// each column.
type csc struct {
	colPtr []int32
	rowIdx []int32
	val    []float64
}

// fingerprint hashes the structural matrix (FNV-1a over the CSC arrays,
// float values by exact bit pattern). A warm basis carries the fingerprint
// of the matrix it was factorized against, so a cached inverse is only ever
// reused when the matrix is bit-identical — e.g. branch-and-bound nodes,
// which change bounds but never coefficients.
func (mat *csc) fingerprint() uint64 {
	h := uint64(1469598103934665603)
	mix := func(x uint64) {
		h ^= x
		h *= 1099511628211
	}
	for _, v := range mat.colPtr {
		mix(uint64(uint32(v)))
	}
	for _, v := range mat.rowIdx {
		mix(uint64(uint32(v)))
	}
	for _, v := range mat.val {
		mix(math.Float64bits(v))
	}
	return h
}

func buildCSC(p *Problem) csc {
	n, m := len(p.names), len(p.rows)
	// Merge duplicate terms per row into (row-major) dense scratch, keeping
	// a touched list so cost stays O(nonzeros).
	type entry struct {
		row, col int32
		val      float64
	}
	var entries []entry
	scratch := make([]float64, n)
	touched := make([]int32, 0, 8)
	for i := 0; i < m; i++ {
		touched = touched[:0]
		for _, t := range p.rows[i].terms {
			if isZero(scratch[t.Var]) {
				touched = append(touched, int32(t.Var))
			}
			scratch[t.Var] += t.Coef
		}
		for _, v := range touched {
			if !isZero(scratch[v]) {
				entries = append(entries, entry{int32(i), v, scratch[v]})
			}
			scratch[v] = 0
		}
	}
	mat := csc{colPtr: make([]int32, n+1)}
	for _, e := range entries {
		mat.colPtr[e.col+1]++
	}
	for j := 0; j < n; j++ {
		mat.colPtr[j+1] += mat.colPtr[j]
	}
	mat.rowIdx = make([]int32, len(entries))
	mat.val = make([]float64, len(entries))
	next := make([]int32, n)
	copy(next, mat.colPtr[:n])
	// Entries were produced row-major, so per-column row order is ascending.
	for _, e := range entries {
		k := next[e.col]
		mat.rowIdx[k] = e.row
		mat.val[k] = e.val
		next[e.col]++
	}
	return mat
}

// revised is the mutable solver state for one block. Columns 0..n-1 are the
// structural variables; column n+i is row i's logical: [0,+inf) for ≤,
// (-inf,0] for ≥, [0,0] for =.
type revised struct {
	opts Options

	n, m, N int
	mat     csc
	hash    uint64 // mat.fingerprint(), for warm-start inverse reuse
	rhs     []float64
	lo, hi  []float64 // working bounds per column (stretched in phase 1)
	cost    []float64 // phase-2 objective per column (0 for logicals)

	basis []int32     // column basic in row i
	inRow []int32     // row a column is basic in, or -1
	stat  []varStatus // per column
	binv  [][]float64 // m x m explicit basis inverse
	xB    []float64   // value of basis[i]

	y, z, w []float64 // scratch: duals, reduced costs, FTRAN column

	iters       int
	sinceFactor int

	// Phase-1 bound-stretch bookkeeping.
	trueLo, trueHi []float64
	p1cost         []float64
	stretched      []bool
	nStretched     int
}

func newRevised(p *Problem, o Options) *revised {
	n, m := len(p.names), len(p.rows)
	mc := p.matrix()
	r := &revised{opts: o, n: n, m: m, N: n + m, mat: mc.mat, hash: mc.hash}
	// One backing array for the float state (7 N-sized + 4 m-sized vectors)
	// and one for binv: the solver is created per solve, so allocation count
	// dominates small warm re-solves.
	buf := make([]float64, 7*r.N+4*m)
	cut := func(k int) (s []float64) { s, buf = buf[:k:k], buf[k:]; return }
	r.lo, r.hi, r.cost = cut(r.N), cut(r.N), cut(r.N)
	r.trueLo, r.trueHi, r.p1cost, r.z = cut(r.N), cut(r.N), cut(r.N), cut(r.N)
	r.rhs, r.xB, r.y, r.w = cut(m), cut(m), cut(m), cut(m)
	for j := 0; j < n; j++ {
		r.lo[j], r.hi[j] = p.lo[j], p.hi[j]
		r.cost[j] = p.obj[j]
	}
	for i := 0; i < m; i++ {
		r.rhs[i] = p.rows[i].rhs
		switch p.rows[i].rel {
		case LE:
			r.lo[n+i], r.hi[n+i] = 0, math.Inf(1)
		case GE:
			r.lo[n+i], r.hi[n+i] = math.Inf(-1), 0
		case EQ:
			r.lo[n+i], r.hi[n+i] = 0, 0
		}
	}
	r.basis = make([]int32, m)
	r.inRow = make([]int32, r.N)
	r.stat = make([]varStatus, r.N)
	bbuf := make([]float64, m*m)
	r.binv = make([][]float64, m)
	for i := range r.binv {
		r.binv[i] = bbuf[i*m : (i+1)*m : (i+1)*m]
	}
	r.stretched = make([]bool, r.N)
	return r
}

// restingStatus returns a valid nonbasic resting bound for column j given a
// requested status: a nonbasic variable must sit at a finite bound.
func (r *revised) restingStatus(j int, want varStatus) varStatus {
	if want == atUpper {
		if !math.IsInf(r.hi[j], 1) {
			return atUpper
		}
		return atLower
	}
	if !math.IsInf(r.lo[j], -1) {
		return atLower
	}
	return atUpper
}

// setBasis installs a starting basis: the warm basis when it is shape-
// compatible and factorizes, the all-logical basis otherwise. Returns false
// only when even the logical basis fails to factorize (cannot happen: it is
// the identity; kept for symmetry with refactorize).
func (r *revised) setBasis(warm *Basis) bool {
	ok := false
	if warm != nil {
		if wn, wm := warm.Shape(); wn == r.n && wm == r.m {
			ok = true
			seen := make([]bool, r.N)
			for i := 0; i < r.m; i++ {
				v := int(warm.rowVar[i])
				if v < 0 || v >= r.N || seen[v] {
					ok = false
					break
				}
				seen[v] = true
				r.basis[i] = int32(v)
			}
			if ok {
				for j := 0; j < r.N; j++ {
					if seen[j] {
						r.stat[j] = basic
					} else {
						r.stat[j] = r.restingStatus(j, varStatus(warm.stat[j]))
					}
				}
				if warm.binv != nil && warm.matHash == r.hash && warm.updates < refactorEvery {
					// The warm basis carries the inverse it was solved with and
					// the matrix is bit-identical: copy it instead of paying the
					// O(m³) refactorization. The update counter carries over so
					// drift control spans solves.
					for i := 0; i < r.m; i++ {
						copy(r.binv[i], warm.binv[i])
					}
					for j := range r.inRow {
						r.inRow[j] = -1
					}
					for i := 0; i < r.m; i++ {
						r.inRow[r.basis[i]] = int32(i)
					}
					r.sinceFactor = warm.updates
				} else {
					ok = r.factorize()
				}
			}
		}
	}
	if !ok {
		for i := 0; i < r.m; i++ {
			r.basis[i] = int32(r.n + i)
		}
		for j := 0; j < r.N; j++ {
			if j < r.n {
				r.stat[j] = r.restingStatus(j, atLower)
			} else {
				r.stat[j] = basic
			}
		}
		if !r.factorize() {
			return false
		}
	}
	r.computeXB()
	return true
}

// factorize rebuilds binv from the current basis by Gauss-Jordan with
// partial pivoting (largest magnitude, ties broken by lowest row). It also
// refreshes inRow. Returns false when the basis matrix is singular.
func (r *revised) factorize() bool {
	m := r.m
	bm := make([][]float64, m) // basis matrix, column i = A_{basis[i]}
	for i := range bm {
		bm[i] = make([]float64, m)
	}
	for k := 0; k < m; k++ {
		j := int(r.basis[k])
		if j < r.n {
			for t := r.mat.colPtr[j]; t < r.mat.colPtr[j+1]; t++ {
				bm[r.mat.rowIdx[t]][k] = r.mat.val[t]
			}
		} else {
			bm[j-r.n][k] = 1
		}
	}
	for i := 0; i < m; i++ {
		for k := 0; k < m; k++ {
			r.binv[i][k] = 0
		}
		r.binv[i][i] = 1
	}
	for k := 0; k < m; k++ {
		p, best := -1, pivotTol
		for i := k; i < m; i++ {
			if a := math.Abs(bm[i][k]); a > best {
				p, best = i, a
			}
		}
		if p < 0 {
			return false
		}
		if p != k {
			bm[p], bm[k] = bm[k], bm[p]
			r.binv[p], r.binv[k] = r.binv[k], r.binv[p]
		}
		inv := 1 / bm[k][k]
		for t := 0; t < m; t++ {
			bm[k][t] *= inv
			r.binv[k][t] *= inv
		}
		for i := 0; i < m; i++ {
			if i == k {
				continue
			}
			f := bm[i][k]
			if isZero(f) {
				continue
			}
			for t := 0; t < m; t++ {
				bm[i][t] -= f * bm[k][t]
				r.binv[i][t] -= f * r.binv[k][t]
			}
			bm[i][k] = 0
		}
	}
	for j := range r.inRow {
		r.inRow[j] = -1
	}
	for i := 0; i < m; i++ {
		r.inRow[r.basis[i]] = int32(i)
	}
	r.sinceFactor = 0
	return true
}

// nonbasicValue returns the resting value of nonbasic column j.
func (r *revised) nonbasicValue(j int) float64 {
	if r.stat[j] == atUpper {
		return r.hi[j]
	}
	return r.lo[j]
}

// value returns the current value of any column.
func (r *revised) value(j int) float64 {
	if r.stat[j] == basic {
		return r.xB[r.inRow[j]]
	}
	return r.nonbasicValue(j)
}

// computeXB recomputes the basic values from scratch: xB = binv·(rhs − N·x_N)
// with nonbasic contributions accumulated in ascending column order.
func (r *revised) computeXB() {
	res := make([]float64, r.m)
	copy(res, r.rhs)
	for j := 0; j < r.n; j++ {
		if r.stat[j] == basic {
			continue
		}
		v := r.nonbasicValue(j)
		if isZero(v) {
			continue
		}
		for t := r.mat.colPtr[j]; t < r.mat.colPtr[j+1]; t++ {
			res[r.mat.rowIdx[t]] -= r.mat.val[t] * v
		}
	}
	for i := 0; i < r.m; i++ {
		j := r.n + i
		if r.stat[j] != basic {
			res[i] -= r.nonbasicValue(j)
		}
	}
	for i := 0; i < r.m; i++ {
		s := 0.0
		row := r.binv[i]
		for k := 0; k < r.m; k++ {
			s += row[k] * res[k]
		}
		r.xB[i] = s
	}
}

// price computes duals y = c_B·binv and reduced costs z_j = c_j − y·A_j for
// every column under objective c.
func (r *revised) price(c []float64) {
	for i := 0; i < r.m; i++ {
		r.y[i] = 0
	}
	for k := 0; k < r.m; k++ {
		cb := c[r.basis[k]]
		if isZero(cb) {
			continue
		}
		row := r.binv[k]
		for i := 0; i < r.m; i++ {
			r.y[i] += cb * row[i]
		}
	}
	for j := 0; j < r.n; j++ {
		s := c[j]
		for t := r.mat.colPtr[j]; t < r.mat.colPtr[j+1]; t++ {
			s -= r.y[r.mat.rowIdx[t]] * r.mat.val[t]
		}
		r.z[j] = s
	}
	for i := 0; i < r.m; i++ {
		r.z[r.n+i] = c[r.n+i] - r.y[i]
	}
}

// chooseEntering picks an improving nonbasic column and direction (+1 from
// lower, -1 from upper), or (-1, 0) at optimality. Dantzig prefers the
// lowest index among equal scores; Bland takes the first improving index.
func (r *revised) chooseEntering(tol float64, bland bool) (int, float64) {
	bestJ, bestScore, bestDir := -1, tol, 0.0
	for j := 0; j < r.N; j++ {
		if r.stat[j] == basic || r.hi[j]-r.lo[j] < tol {
			continue
		}
		var score, dir float64
		if r.stat[j] == atLower {
			score, dir = r.z[j], 1
		} else {
			score, dir = -r.z[j], -1
		}
		if score > tol {
			if bland {
				return j, dir
			}
			if score > bestScore {
				bestScore, bestJ, bestDir = score, j, dir
			}
		}
	}
	return bestJ, bestDir
}

// ftran computes w = binv·A_j, the entering column in the current basis.
func (r *revised) ftran(j int) {
	for i := 0; i < r.m; i++ {
		r.w[i] = 0
	}
	if j < r.n {
		for t := r.mat.colPtr[j]; t < r.mat.colPtr[j+1]; t++ {
			a := r.mat.val[t]
			k := int(r.mat.rowIdx[t])
			for i := 0; i < r.m; i++ {
				r.w[i] += r.binv[i][k] * a
			}
		}
	} else {
		k := j - r.n
		for i := 0; i < r.m; i++ {
			r.w[i] = r.binv[i][k]
		}
	}
}

// ratioTest returns the maximum step for entering column j in direction
// dir, the limiting row (-1 for a bound flip) and whether the leaving basic
// variable departs at its upper bound. Ties within tol are broken toward
// the lowest basic column index, so the pivot choice is index-deterministic
// regardless of float noise.
func (r *revised) ratioTest(j int, dir, tol float64) (tMax float64, leaveRow int, leaveAtUpper bool) {
	tMax = r.hi[j] - r.lo[j] // entering variable's own span
	leaveRow = -1
	for i := 0; i < r.m; i++ {
		coef := r.w[i] * dir
		bi := r.basis[i]
		switch {
		case coef > tol:
			lob := r.lo[bi]
			if math.IsInf(lob, -1) {
				continue
			}
			lim := (r.xB[i] - lob) / coef
			if lim < tMax-tol || (lim < tMax+tol && r.betterLeave(leaveRow, i)) {
				tMax, leaveRow, leaveAtUpper = lim, i, false
			}
		case coef < -tol:
			hib := r.hi[bi]
			if math.IsInf(hib, 1) {
				continue
			}
			lim := (hib - r.xB[i]) / -coef
			if lim < tMax-tol || (lim < tMax+tol && r.betterLeave(leaveRow, i)) {
				tMax, leaveRow, leaveAtUpper = lim, i, true
			}
		}
	}
	if tMax < 0 {
		tMax = 0
	}
	return tMax, leaveRow, leaveAtUpper
}

func (r *revised) betterLeave(cur, cand int) bool {
	if cur < 0 {
		return true
	}
	return r.basis[cand] < r.basis[cur]
}

// applyStep moves entering column j by step = tMax*dir, updating xB.
// Basic values drifting a hair outside a finite bound are snapped back.
func (r *revised) applyStep(j int, dir, tMax float64) {
	if isZero(tMax) {
		return
	}
	step := tMax * dir
	for i := 0; i < r.m; i++ {
		r.xB[i] -= step * r.w[i]
		bi := r.basis[i]
		if lob := r.lo[bi]; r.xB[i] < lob && r.xB[i] > lob-1e-9 {
			r.xB[i] = lob
		} else if hib := r.hi[bi]; r.xB[i] > hib && r.xB[i] < hib+1e-9 {
			r.xB[i] = hib
		}
	}
}

// pivot replaces the basic column of leaveRow with j (entering at enterVal)
// and updates binv product-form.
func (r *revised) pivot(leaveRow, j int, enterVal float64, leaveAtUpper bool) {
	leaving := r.basis[leaveRow]
	if leaveAtUpper {
		r.stat[leaving] = atUpper
	} else {
		r.stat[leaving] = atLower
	}
	r.inRow[leaving] = -1
	piv := r.w[leaveRow]
	inv := 1 / piv
	prow := r.binv[leaveRow]
	for t := 0; t < r.m; t++ {
		prow[t] *= inv
	}
	for i := 0; i < r.m; i++ {
		if i == leaveRow {
			continue
		}
		f := r.w[i]
		if isZero(f) {
			continue
		}
		row := r.binv[i]
		for t := 0; t < r.m; t++ {
			row[t] -= f * prow[t]
		}
	}
	r.basis[leaveRow] = int32(j)
	r.stat[j] = basic
	r.inRow[j] = int32(leaveRow)
	r.xB[leaveRow] = enterVal
	r.sinceFactor++
}

// solveStatus is iterate's outcome; numTrouble asks the caller to fall back
// to the dense tableau.
type solveStatus int

const (
	solvedOptimal solveStatus = iota
	solvedUnbounded
	solvedIterLimit
	numTrouble
)

// iterate runs primal simplex to optimality under objective c. In phase 1
// (phase1 true) it additionally caps the entering step at a stretched
// variable's true bound and restores bounds of variables whose values
// re-enter their true range after every step.
func (r *revised) iterate(c []float64, phase1 bool) solveStatus {
	tol := r.opts.Tol
	stall := 0
	for ; r.iters < r.opts.MaxIters; r.iters++ {
		if r.sinceFactor >= refactorEvery {
			if !r.factorize() {
				return numTrouble
			}
			r.computeXB()
		}
		r.price(c)
		j, dir := r.chooseEntering(tol, stall > stallLimit)
		if j < 0 {
			return solvedOptimal
		}
		r.ftran(j)
		tMax, leaveRow, leaveAtUpper := r.ratioTest(j, dir, tol)
		if phase1 && r.stretched[j] {
			// The entering variable is itself stretched: cap the step at its
			// true bound so a violation-repairing move can never run away
			// along an unbounded ray.
			capStep := math.Inf(1)
			if dir > 0 && !math.IsInf(r.trueLo[j], -1) && r.nonbasicValue(j) < r.trueLo[j] {
				capStep = r.trueLo[j] - r.nonbasicValue(j)
			} else if dir < 0 && !math.IsInf(r.trueHi[j], 1) && r.nonbasicValue(j) > r.trueHi[j] {
				capStep = r.nonbasicValue(j) - r.trueHi[j]
			}
			if !math.IsInf(capStep, 1) && capStep <= tMax {
				r.applyStep(j, dir, capStep)
				if dir > 0 {
					r.lo[j] = r.trueLo[j]
					r.stat[j] = atLower
				} else {
					r.hi[j] = r.trueHi[j]
					r.stat[j] = atUpper
				}
				r.unstretchIfHome(j)
				if capStep < tol {
					stall++
				} else {
					stall = 0
				}
				continue
			}
		}
		if math.IsInf(tMax, 1) {
			if phase1 {
				return numTrouble
			}
			return solvedUnbounded
		}
		if tMax < tol {
			stall++
		} else {
			stall = 0
		}
		if leaveRow < 0 {
			r.applyStep(j, dir, tMax)
			if r.stat[j] == atLower {
				r.stat[j] = atUpper
			} else {
				r.stat[j] = atLower
			}
		} else {
			enterVal := r.nonbasicValue(j) + tMax*dir
			r.applyStep(j, dir, tMax)
			r.pivot(leaveRow, j, enterVal, leaveAtUpper)
		}
		if phase1 && r.nStretched > 0 {
			r.restoreScan()
		}
	}
	return solvedIterLimit
}

// stretchSetup stretches the bounds of every out-of-range basic variable to
// its current value and installs the ±1 phase-1 objective that pulls it
// home. Returns whether any stretching was needed.
func (r *revised) stretchSetup() bool {
	copy(r.trueLo, r.lo)
	copy(r.trueHi, r.hi)
	for j := range r.p1cost {
		r.p1cost[j] = 0
		r.stretched[j] = false
	}
	r.nStretched = 0
	tol := r.opts.Tol
	for i := 0; i < r.m; i++ {
		j := r.basis[i]
		v := r.xB[i]
		if v < r.lo[j]-tol {
			r.lo[j] = v
			r.p1cost[j] = 1
			r.stretched[j] = true
			r.nStretched++
		} else if v > r.hi[j]+tol {
			r.hi[j] = v
			r.p1cost[j] = -1
			r.stretched[j] = true
			r.nStretched++
		}
	}
	return r.nStretched > 0
}

// unstretchIfHome restores column j's true bounds when its current value
// lies inside them, removing it from the phase-1 objective.
func (r *revised) unstretchIfHome(j int) {
	if !r.stretched[j] {
		return
	}
	tol := r.opts.Tol
	v := r.value(j)
	if v >= r.trueLo[j]-tol && v <= r.trueHi[j]+tol {
		r.lo[j] = r.trueLo[j]
		r.hi[j] = r.trueHi[j]
		r.p1cost[j] = 0
		r.stretched[j] = false
		r.nStretched--
	}
}

// restoreScan applies unstretchIfHome to every still-stretched column in
// ascending index order.
func (r *revised) restoreScan() {
	for j := 0; j < r.N; j++ {
		if r.stretched[j] {
			r.unstretchIfHome(j)
		}
	}
}

// stretchResidual sums how far stretched columns still sit outside their
// true ranges.
func (r *revised) stretchResidual() float64 {
	res := 0.0
	for j := 0; j < r.N; j++ {
		if !r.stretched[j] {
			continue
		}
		v := r.value(j)
		if v < r.trueLo[j] {
			res += r.trueLo[j] - v
		} else if v > r.trueHi[j] {
			res += v - r.trueHi[j]
		}
	}
	return res
}

// finishStretch force-restores every remaining stretched column (all within
// feasTol of home after a successful phase 1), snapping values onto the
// true range.
func (r *revised) finishStretch() {
	for j := 0; j < r.N; j++ {
		if !r.stretched[j] {
			continue
		}
		r.lo[j] = r.trueLo[j]
		r.hi[j] = r.trueHi[j]
		r.p1cost[j] = 0
		r.stretched[j] = false
		if r.stat[j] == basic {
			i := r.inRow[j]
			if r.xB[i] < r.lo[j] {
				r.xB[i] = r.lo[j]
			} else if r.xB[i] > r.hi[j] {
				r.xB[i] = r.hi[j]
			}
		} else {
			// Resting at a (stretched) bound within feasTol of the true
			// range: snap onto the nearest true bound.
			v := r.value(j)
			if v <= r.lo[j] || math.IsInf(r.hi[j], 1) {
				r.stat[j] = atLower
			} else {
				r.stat[j] = atUpper
			}
		}
	}
	r.nStretched = 0
}
