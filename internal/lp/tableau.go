package lp

import "math"

// varStatus is the location of a nonbasic variable, or Basic.
type varStatus uint8

const (
	atLower varStatus = iota
	atUpper
	basic
)

// tableau is the mutable solver state. Internally every variable is shifted
// so its lower bound is 0; upper bounds are handled by the bounded-variable
// ratio test rather than explicit rows.
type tableau struct {
	opts Options

	n     int // structural variables
	nCols int // structural + slack + artificial
	nArt  int

	shift []float64 // original lower bound per structural variable
	upper []float64 // shifted upper bound per column (may be +Inf)
	cost  []float64 // phase-2 objective per column (0 for slack/artificial)

	a     [][]float64 // m x nCols current tableau
	xB    []float64   // value of the basic variable per row
	basis []int       // column basic in each row
	stat  []varStatus // per column

	z     []float64 // reduced costs per column
	iters int

	artStart int
}

func newTableau(p *Problem, o Options) *tableau {
	n := len(p.names)
	m := len(p.rows)

	t := &tableau{opts: o, n: n}
	t.shift = make([]float64, n)
	copy(t.shift, p.lo)

	// Shifted rows: rhs_i' = rhs_i - Σ a_ij * lo_j.
	type prepared struct {
		coefs []float64
		rel   Relation
		rhs   float64
	}
	rows := make([]prepared, m)
	for i, r := range p.rows {
		coefs := make([]float64, n)
		rhs := r.rhs
		for _, term := range r.terms {
			coefs[term.Var] += term.Coef
		}
		for j := 0; j < n; j++ {
			rhs -= coefs[j] * t.shift[j]
		}
		rel := r.rel
		if rhs < 0 {
			for j := range coefs {
				coefs[j] = -coefs[j]
			}
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		rows[i] = prepared{coefs: coefs, rel: rel, rhs: rhs}
	}

	nSlack := 0
	nArt := 0
	for _, r := range rows {
		if r.rel != EQ {
			nSlack++
		}
		if r.rel != LE {
			nArt++
		}
	}
	t.nArt = nArt
	t.nCols = n + nSlack + nArt
	t.artStart = n + nSlack

	t.upper = make([]float64, t.nCols)
	t.cost = make([]float64, t.nCols)
	for j := 0; j < n; j++ {
		t.upper[j] = p.hi[j] - p.lo[j]
		t.cost[j] = p.obj[j]
	}
	for j := n; j < t.nCols; j++ {
		t.upper[j] = math.Inf(1)
	}

	t.a = make([][]float64, m)
	t.xB = make([]float64, m)
	t.basis = make([]int, m)
	t.stat = make([]varStatus, t.nCols)

	slackCol := n
	artCol := t.artStart
	for i, r := range rows {
		row := make([]float64, t.nCols)
		copy(row, r.coefs)
		switch r.rel {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
		t.a[i] = row
		t.xB[i] = r.rhs
		t.stat[t.basis[i]] = basic
	}
	return t
}

func (t *tableau) solve() Solution {
	if t.nArt > 0 {
		// Phase 1: maximize -Σ artificials.
		phase1 := make([]float64, t.nCols)
		for j := t.artStart; j < t.nCols; j++ {
			phase1[j] = -1
		}
		t.resetReducedCosts(phase1)
		st := t.iterate(phase1)
		if st == IterLimit {
			return Solution{Status: IterLimit, Iters: t.iters}
		}
		infeas := 0.0
		for i, bj := range t.basis {
			if bj >= t.artStart {
				infeas += t.xB[i]
			}
		}
		if infeas > 1e-7 {
			return Solution{Status: Infeasible, Iters: t.iters}
		}
		// Fix all artificials at zero so phase 2 cannot resurrect them.
		for j := t.artStart; j < t.nCols; j++ {
			t.upper[j] = 0
			if t.stat[j] == atUpper {
				t.stat[j] = atLower
			}
		}
		t.driveOutArtificials()
	}

	t.resetReducedCosts(t.cost)
	st := t.iterate(t.cost)
	sol := Solution{Status: st, Iters: t.iters}
	if st == Optimal || st == IterLimit {
		sol.X = t.extract()
		obj := 0.0
		for j := 0; j < t.n; j++ {
			obj += t.cost[j] * sol.X[j]
		}
		sol.Objective = obj
	}
	return sol
}

// driveOutArtificials performs degenerate pivots to remove artificial
// variables from the basis where possible. Rows whose artificial cannot be
// driven out are redundant; the artificial stays basic at value 0 with an
// upper bound of 0, which blocks any future increase.
func (t *tableau) driveOutArtificials() {
	for i, bj := range t.basis {
		if bj < t.artStart {
			continue
		}
		for j := 0; j < t.artStart; j++ {
			if t.stat[j] == basic {
				continue
			}
			if math.Abs(t.a[i][j]) > 1e-7 {
				enterVal := nonbasicValue(t, j)
				t.pivot(i, j)
				t.stat[bj] = atLower
				t.stat[j] = basic
				t.basis[i] = j
				// The basis change happens at step 0, so every variable keeps
				// its current value; the entering one simply becomes basic.
				t.xB[i] = enterVal
				break
			}
		}
	}
}

func nonbasicValue(t *tableau, j int) float64 {
	if t.stat[j] == atUpper {
		return t.upper[j]
	}
	return 0
}

// resetReducedCosts recomputes the reduced-cost row for objective c.
func (t *tableau) resetReducedCosts(c []float64) {
	if t.z == nil {
		t.z = make([]float64, t.nCols)
	}
	copy(t.z, c)
	for i, bj := range t.basis {
		cb := c[bj]
		if cb == 0 { //lint:allow floateq exact-zero skip of a no-op row update; a tolerance would change which rows are eliminated
			continue
		}
		row := t.a[i]
		for j := 0; j < t.nCols; j++ {
			t.z[j] -= cb * row[j]
		}
	}
}

// iterate runs primal simplex pivots until optimality for objective c.
func (t *tableau) iterate(c []float64) Status {
	tol := t.opts.Tol
	stall := 0
	const stallLimit = 200
	for ; t.iters < t.opts.MaxIters; t.iters++ {
		bland := stall > stallLimit
		j, dir := t.chooseEntering(tol, bland)
		if j < 0 {
			return Optimal
		}
		tMax, leaveRow, leaveAtUpper := t.ratioTest(j, dir, tol, bland)
		if math.IsInf(tMax, 1) {
			return Unbounded
		}
		if tMax < tol {
			stall++
		} else {
			stall = 0
		}
		if leaveRow < 0 {
			// Bound flip: the entering variable traverses to its other bound.
			t.applyStep(j, dir, tMax)
			if t.stat[j] == atLower {
				t.stat[j] = atUpper
			} else {
				t.stat[j] = atLower
			}
			continue
		}
		t.applyStep(j, dir, tMax)
		enterVal := nonbasicValue(t, j) + tMax*dir
		leaving := t.basis[leaveRow]
		if leaveAtUpper {
			t.stat[leaving] = atUpper
		} else {
			t.stat[leaving] = atLower
		}
		t.pivot(leaveRow, j)
		t.basis[leaveRow] = j
		t.stat[j] = basic
		t.xB[leaveRow] = enterVal
	}
	return IterLimit
}

// chooseEntering picks an improving nonbasic column and its direction
// (+1 from lower bound, -1 from upper bound), or (-1, 0) at optimality.
func (t *tableau) chooseEntering(tol float64, bland bool) (int, float64) {
	bestJ := -1
	bestScore := tol
	var bestDir float64
	for j := 0; j < t.nCols; j++ {
		if t.stat[j] == basic || t.upper[j] < tol {
			continue
		}
		var score, dir float64
		switch t.stat[j] {
		case atLower:
			score, dir = t.z[j], 1
		case atUpper:
			score, dir = -t.z[j], -1
		}
		if score > tol {
			if bland {
				return j, dir
			}
			if score > bestScore {
				bestScore, bestJ, bestDir = score, j, dir
			}
		}
	}
	return bestJ, bestDir
}

// ratioTest returns the maximum step tMax for entering column j in
// direction dir, the limiting row (or -1 for a bound flip), and whether the
// leaving basic variable departs at its upper bound.
func (t *tableau) ratioTest(j int, dir, tol float64, bland bool) (tMax float64, leaveRow int, leaveAtUpper bool) {
	tMax = t.upper[j] // entering variable's own span
	leaveRow = -1
	for i := range t.a {
		coef := t.a[i][j] * dir
		switch {
		case coef > tol:
			// Basic variable decreases toward 0.
			lim := t.xB[i] / coef
			if lim < tMax-tol || (bland && lim < tMax+tol && better(t, leaveRow, i, leaveAtUpper)) {
				tMax, leaveRow, leaveAtUpper = lim, i, false
			}
		case coef < -tol:
			// Basic variable increases toward its upper bound.
			ub := t.upper[t.basis[i]]
			if math.IsInf(ub, 1) {
				continue
			}
			lim := (ub - t.xB[i]) / -coef
			if lim < tMax-tol || (bland && lim < tMax+tol && better(t, leaveRow, i, leaveAtUpper)) {
				tMax, leaveRow, leaveAtUpper = lim, i, true
			}
		}
	}
	if tMax < 0 {
		tMax = 0
	}
	return tMax, leaveRow, leaveAtUpper
}

// better implements Bland's smallest-index tie-break for the leaving row.
func better(t *tableau, cur, cand int, _ bool) bool {
	if cur < 0 {
		return true
	}
	return t.basis[cand] < t.basis[cur]
}

// applyStep moves the entering variable by tMax*dir, updating basic values.
func (t *tableau) applyStep(j int, dir, tMax float64) {
	if tMax == 0 { //lint:allow floateq exact-zero fast path for degenerate steps; nonzero tiny steps must still update xB
		return
	}
	step := tMax * dir
	for i := range t.a {
		t.xB[i] -= step * t.a[i][j]
		if t.xB[i] < 0 && t.xB[i] > -1e-9 {
			t.xB[i] = 0
		}
	}
}

// pivot performs Gaussian elimination to make column j the identity column
// for row r, updating the reduced costs as well.
func (t *tableau) pivot(r, j int) {
	prow := t.a[r]
	pv := prow[j]
	inv := 1 / pv
	for k := range prow {
		prow[k] *= inv
	}
	prow[j] = 1 // exact
	for i := range t.a {
		if i == r {
			continue
		}
		f := t.a[i][j]
		if f == 0 { //lint:allow floateq exact-zero skip of a no-op elimination row; correctness does not depend on the branch
			continue
		}
		row := t.a[i]
		for k := range row {
			row[k] -= f * prow[k]
		}
		row[j] = 0
	}
	f := t.z[j]
	if f != 0 { //lint:allow floateq exact-zero skip of a no-op reduced-cost update
		for k := range t.z {
			t.z[k] -= f * prow[k]
		}
		t.z[j] = 0
	}
}

// extract maps the tableau state back to original variable values.
func (t *tableau) extract() []float64 {
	x := make([]float64, t.n)
	for j := 0; j < t.n; j++ {
		switch t.stat[j] {
		case atUpper:
			x[j] = t.upper[j]
		default:
			x[j] = 0
		}
	}
	for i, bj := range t.basis {
		if bj < t.n {
			x[bj] = t.xB[i]
		}
	}
	for j := 0; j < t.n; j++ {
		// Clean tiny negatives from floating-point drift, then unshift.
		if x[j] < 0 && x[j] > -1e-9 {
			x[j] = 0
		}
		if !math.IsInf(t.upper[j], 1) && x[j] > t.upper[j] {
			x[j] = t.upper[j]
		}
		x[j] += t.shift[j]
	}
	return x
}
