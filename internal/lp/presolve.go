// Presolve for the revised simplex path: a deterministic reduce → solve →
// postsolve pipeline. Reductions, applied to a working copy until a fixed
// point (the input Problem is never mutated):
//
//   - empty-row consistency checks and removal
//   - singleton rows folded into variable bounds
//   - variables fixed by (tightened) bounds, folded into row activities
//   - redundant rows removed via finite activity bounds
//   - dominated columns (sign- and objective-based) fixed at a bound
//   - implied-free singleton columns in equality rows substituted out
//
// followed by decomposition of the reduced problem into independent blocks
// (connected components of the variable/row bipartite graph), which is what
// makes fleet-sized allocation problems — where routing decouples model
// families — tractable inside one control period. Postsolve maps block
// solutions back to the full variable space and assembles a full-problem
// basis, all in fixed index order so the pipeline is byte-deterministic.
package lp

import "math"

// presRow is one live constraint with merged terms (ascending variable
// index, exact-zero coefficients dropped, fixed variables folded into rhs).
type presRow struct {
	terms []Term
	rel   Relation
	rhs   float64
}

// blockProblem is one independent subproblem of the reduced LP.
type blockProblem struct {
	vars []int // original variable indices, ascending
	rows []int // original row indices, ascending
	prob *Problem
}

// substitution records one eliminated implied-free column singleton:
// variable v satisfied coef·x_v + Σ terms = rhs and is reconstructed in
// postsolve (in reverse elimination order).
type substitution struct {
	row   int
	v     int
	coef  float64
	rhs   float64
	terms []Term
}

// presolve is the outcome of the reduction loop.
type presolve struct {
	n, m int
	tol  float64

	infeasible bool
	// unboundedRay marks a free column whose objective improves without
	// limit; the verdict becomes Unbounded only if every block is feasible
	// (matching the two-phase tableau, which proves feasibility first).
	unboundedRay bool

	lo, hi  []float64 // working (tightened) bounds
	workObj []float64 // objective after substitutions

	isFixed  []bool
	fixedVal []float64
	fixedHi  []bool // fixed at the upper bound (basis bookkeeping)

	isSub      []bool
	subs       []substitution
	rowDropped []bool
	rowSubVar  []int // substituted variable basic in this row, or -1

	freeVar []bool // reduced column intersecting no live row
	rows    []presRow
	blocks  []*blockProblem
}

func runPresolve(p *Problem, o Options) *presolve {
	n, m := len(p.names), len(p.rows)
	pr := &presolve{n: n, m: m, tol: o.Tol}
	pr.lo = append([]float64(nil), p.lo...)
	pr.hi = append([]float64(nil), p.hi...)
	pr.workObj = append([]float64(nil), p.obj...)
	pr.isFixed = make([]bool, n)
	pr.fixedVal = make([]float64, n)
	pr.fixedHi = make([]bool, n)
	pr.isSub = make([]bool, n)
	pr.rowDropped = make([]bool, m)
	pr.rowSubVar = make([]int, m)
	pr.freeVar = make([]bool, n)
	for i := range pr.rowSubVar {
		pr.rowSubVar[i] = -1
	}

	const maxPasses = 8
	for pass := 0; pass < maxPasses; pass++ {
		pr.buildLiveRows(p)
		changed := pr.reduceRows()
		if pr.infeasible {
			return pr
		}
		if pr.fixFromBounds() {
			changed = true
		}
		if pr.fixDominated() {
			changed = true
		}
		if pr.substituteSingleton() {
			changed = true
		}
		if !changed {
			break
		}
	}
	// Re-merge and re-check once more: the loop may have exited on the pass
	// cap right after a fix, leaving a now-empty row unverified.
	pr.buildLiveRows(p)
	pr.reduceRows()
	if pr.infeasible {
		return pr
	}
	pr.findFreeAndBlocks(p)
	return pr
}

// buildLiveRows rebuilds the merged live rows from the original problem,
// folding fixed variables into the right-hand side.
func (pr *presolve) buildLiveRows(p *Problem) {
	pr.rows = make([]presRow, pr.m)
	scratch := make([]float64, pr.n)
	touched := make([]int32, 0, 8)
	for i := 0; i < pr.m; i++ {
		if pr.rowDropped[i] {
			continue
		}
		r := p.rows[i]
		touched = touched[:0]
		for _, t := range r.terms {
			if isZero(scratch[t.Var]) {
				touched = append(touched, int32(t.Var))
			}
			scratch[t.Var] += t.Coef
		}
		row := presRow{rel: r.rel, rhs: r.rhs}
		for v := range p.names { // ascending variable order
			c := scratch[v]
			if isZero(c) {
				continue
			}
			if pr.isFixed[v] {
				row.rhs -= c * pr.fixedVal[v]
			} else {
				row.terms = append(row.terms, Term{Var: v, Coef: c})
			}
		}
		for _, v := range touched {
			scratch[v] = 0
		}
		pr.rows[i] = row
	}
}

// reduceRows drops empty, singleton and redundant rows, tightening bounds
// and detecting infeasibility from row activities.
func (pr *presolve) reduceRows() bool {
	changed := false
	for i := 0; i < pr.m; i++ {
		if pr.rowDropped[i] {
			continue
		}
		row := &pr.rows[i]
		switch len(row.terms) {
		case 0:
			ok := true
			switch row.rel {
			case LE:
				ok = row.rhs >= -feasTol
			case GE:
				ok = row.rhs <= feasTol
			case EQ:
				ok = math.Abs(row.rhs) <= feasTol
			}
			if !ok {
				pr.infeasible = true
				return changed
			}
			pr.rowDropped[i] = true
			changed = true
			continue
		case 1:
			t := row.terms[0]
			bound := row.rhs / t.Coef
			tightenHi := row.rel == LE && t.Coef > 0 || row.rel == GE && t.Coef < 0
			tightenLo := row.rel == GE && t.Coef > 0 || row.rel == LE && t.Coef < 0
			if row.rel == EQ {
				tightenLo, tightenHi = true, true
			}
			if tightenHi && bound < pr.hi[t.Var] {
				pr.hi[t.Var] = bound
			}
			if tightenLo && bound > pr.lo[t.Var] {
				pr.lo[t.Var] = bound
			}
			if pr.hi[t.Var] < pr.lo[t.Var] {
				if pr.lo[t.Var]-pr.hi[t.Var] > feasTol {
					pr.infeasible = true
					return changed
				}
				pr.hi[t.Var] = pr.lo[t.Var]
			}
			pr.rowDropped[i] = true
			changed = true
			continue
		}
		minAct, maxAct := 0.0, 0.0
		for _, t := range row.terms {
			if t.Coef > 0 {
				minAct += t.Coef * pr.lo[t.Var]
				maxAct += t.Coef * pr.hi[t.Var]
			} else {
				minAct += t.Coef * pr.hi[t.Var]
				maxAct += t.Coef * pr.lo[t.Var]
			}
		}
		switch row.rel {
		case LE:
			if minAct > row.rhs+feasTol {
				pr.infeasible = true
				return changed
			}
			if maxAct <= row.rhs+pr.tol {
				pr.rowDropped[i] = true
				changed = true
			}
		case GE:
			if maxAct < row.rhs-feasTol {
				pr.infeasible = true
				return changed
			}
			if minAct >= row.rhs-pr.tol {
				pr.rowDropped[i] = true
				changed = true
			}
		case EQ:
			if minAct > row.rhs+feasTol || maxAct < row.rhs-feasTol {
				pr.infeasible = true
				return changed
			}
		}
	}
	return changed
}

// fixFromBounds fixes every variable whose working bound interval has
// collapsed (branching pins integer variables exactly this way).
func (pr *presolve) fixFromBounds() bool {
	changed := false
	for v := 0; v < pr.n; v++ {
		if pr.isFixed[v] || pr.isSub[v] {
			continue
		}
		if pr.hi[v]-pr.lo[v] <= pr.tol {
			pr.isFixed[v] = true
			pr.fixedVal[v] = pr.lo[v]
			changed = true
		}
	}
	return changed
}

// fixDominated fixes columns whose objective and constraint signs prove a
// bound-optimal value (dominated-variant elimination): moving the variable
// toward that bound never hurts the objective and never tightens any
// constraint. Fixing toward an infinite bound is never attempted; a free
// improving column is left for the simplex to expose as an unbounded ray.
func (pr *presolve) fixDominated() bool {
	type colSign struct {
		posLE, negLE bool // appears in ≤ with positive/negative coefficient
		posGE, negGE bool
		inEQ         bool
	}
	signs := make([]colSign, pr.n)
	for i := 0; i < pr.m; i++ {
		if pr.rowDropped[i] {
			continue
		}
		row := &pr.rows[i]
		for _, t := range row.terms {
			s := &signs[t.Var]
			switch row.rel {
			case LE:
				if t.Coef > 0 {
					s.posLE = true
				} else {
					s.negLE = true
				}
			case GE:
				if t.Coef > 0 {
					s.posGE = true
				} else {
					s.negGE = true
				}
			case EQ:
				s.inEQ = true
			}
		}
	}
	changed := false
	for v := 0; v < pr.n; v++ {
		if pr.isFixed[v] || pr.isSub[v] {
			continue
		}
		s := signs[v]
		if s.inEQ {
			continue
		}
		if pr.workObj[v] <= 0 && !s.negLE && !s.posGE {
			pr.isFixed[v] = true
			pr.fixedVal[v] = pr.lo[v]
			changed = true
			continue
		}
		if pr.workObj[v] >= 0 && !s.posLE && !s.negGE && !math.IsInf(pr.hi[v], 1) {
			pr.isFixed[v] = true
			pr.fixedVal[v] = pr.hi[v]
			pr.fixedHi[v] = true
			changed = true
		}
	}
	return changed
}

// substituteSingleton eliminates at most one implied-free column singleton
// from an equality row per pass (column counts are recomputed on the next
// pass). The variable's bounds must be implied by the row and the other
// variables' bounds, so dropping them loses nothing.
func (pr *presolve) substituteSingleton() bool {
	colCount := make([]int, pr.n)
	for i := 0; i < pr.m; i++ {
		if pr.rowDropped[i] {
			continue
		}
		for _, t := range pr.rows[i].terms {
			colCount[t.Var]++
		}
	}
	for i := 0; i < pr.m; i++ {
		if pr.rowDropped[i] || pr.rows[i].rel != EQ {
			continue
		}
		row := &pr.rows[i]
		for _, t := range row.terms {
			v := t.Var
			if colCount[v] != 1 || pr.isFixed[v] || pr.isSub[v] || math.Abs(t.Coef) < 1e-7 {
				continue
			}
			// Implied range of v over the other variables' boxes.
			impLo, impHi := row.rhs, row.rhs
			for _, u := range row.terms {
				if u.Var == v {
					continue
				}
				if u.Coef > 0 {
					impLo -= u.Coef * pr.hi[u.Var]
					impHi -= u.Coef * pr.lo[u.Var]
				} else {
					impLo -= u.Coef * pr.lo[u.Var]
					impHi -= u.Coef * pr.hi[u.Var]
				}
			}
			impLo, impHi = impLo/t.Coef, impHi/t.Coef
			if impLo > impHi {
				impLo, impHi = impHi, impLo
			}
			if impLo < pr.lo[v]-pr.tol || impHi > pr.hi[v]+pr.tol {
				continue
			}
			sub := substitution{row: i, v: v, coef: t.Coef, rhs: row.rhs}
			for _, u := range row.terms {
				if u.Var != v {
					sub.terms = append(sub.terms, u)
				}
			}
			pr.subs = append(pr.subs, sub)
			pr.isSub[v] = true
			pr.rowDropped[i] = true
			pr.rowSubVar[i] = v
			// Fold v out of the objective: c_k ← c_k − c_v·a_k/a_v.
			cv := pr.workObj[v]
			if !isZero(cv) {
				for _, u := range sub.terms {
					pr.workObj[u.Var] -= cv * u.Coef / t.Coef
				}
				pr.workObj[v] = 0
			}
			return true
		}
	}
	return false
}

// findFreeAndBlocks classifies the surviving columns: columns meeting no
// live row are decided directly (or flag an unbounded ray), the rest are
// grouped into connected components, each becoming an independent block
// subproblem.
func (pr *presolve) findFreeAndBlocks(p *Problem) {
	// Union-find over variables; the root is always the smallest index, so
	// block identity and order are canonical.
	parent := make([]int, pr.n)
	for v := range parent {
		parent[v] = v
	}
	var find func(int) int
	find = func(v int) int {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		parent[rb] = ra
	}
	inRow := make([]bool, pr.n)
	for i := 0; i < pr.m; i++ {
		if pr.rowDropped[i] {
			continue
		}
		terms := pr.rows[i].terms
		for k := range terms {
			inRow[terms[k].Var] = true
			if k > 0 {
				union(terms[0].Var, terms[k].Var)
			}
		}
	}
	for v := 0; v < pr.n; v++ {
		if pr.isFixed[v] || pr.isSub[v] || inRow[v] {
			continue
		}
		pr.freeVar[v] = true
		switch {
		case pr.workObj[v] > 0:
			if math.IsInf(pr.hi[v], 1) {
				pr.unboundedRay = true
				pr.fixedVal[v] = pr.lo[v] // bound-feasible filler if X is still assembled
			} else {
				pr.fixedVal[v] = pr.hi[v]
				pr.fixedHi[v] = true
			}
		default:
			pr.fixedVal[v] = pr.lo[v]
		}
	}

	// Group live variables by root, blocks ordered by smallest member.
	blockOf := make([]int, pr.n)
	for v := range blockOf {
		blockOf[v] = -1
	}
	for v := 0; v < pr.n; v++ {
		if !inRow[v] || pr.isFixed[v] || pr.isSub[v] {
			continue
		}
		root := find(v)
		if blockOf[root] < 0 {
			blockOf[root] = len(pr.blocks)
			pr.blocks = append(pr.blocks, &blockProblem{})
		}
		b := pr.blocks[blockOf[root]]
		blockOf[v] = blockOf[root]
		b.vars = append(b.vars, v)
	}
	for i := 0; i < pr.m; i++ {
		if pr.rowDropped[i] || len(pr.rows[i].terms) == 0 {
			continue
		}
		b := pr.blocks[blockOf[find(pr.rows[i].terms[0].Var)]]
		b.rows = append(b.rows, i)
	}
	for _, b := range pr.blocks {
		local := make(map[int]int, len(b.vars))
		b.prob = NewProblem()
		for k, v := range b.vars {
			local[v] = k
			b.prob.AddVariable(p.names[v], pr.lo[v], pr.hi[v])
			b.prob.SetObjective(k, pr.workObj[v])
		}
		for _, i := range b.rows {
			row := pr.rows[i]
			terms := make([]Term, len(row.terms))
			for k, t := range row.terms {
				terms[k] = Term{Var: local[t.Var], Coef: t.Coef}
			}
			b.prob.AddConstraint(terms, row.rel, row.rhs)
		}
	}
}

// postsolve maps block solutions back to the full variable space: fixed and
// free values first, then block values, then substituted variables in
// reverse elimination order, clamped onto their original bounds against
// floating-point drift.
func (pr *presolve) postsolve(p *Problem, blockX [][]float64) []float64 {
	x := make([]float64, pr.n)
	for v := 0; v < pr.n; v++ {
		if pr.isFixed[v] || pr.freeVar[v] {
			x[v] = pr.fixedVal[v]
		}
	}
	for bi, b := range pr.blocks {
		bx := blockX[bi]
		if bx == nil {
			continue
		}
		for k, v := range b.vars {
			x[v] = bx[k]
		}
	}
	for k := len(pr.subs) - 1; k >= 0; k-- {
		s := pr.subs[k]
		val := s.rhs
		for _, t := range s.terms {
			val -= t.Coef * x[t.Var]
		}
		val /= s.coef
		if val < p.lo[s.v] && val > p.lo[s.v]-feasTol {
			val = p.lo[s.v]
		} else if !math.IsInf(p.hi[s.v], 1) && val > p.hi[s.v] && val < p.hi[s.v]+feasTol {
			val = p.hi[s.v]
		}
		x[s.v] = val
	}
	return x
}

// assembleBasis builds a full-problem basis from the block bases: dropped
// rows keep their logical basic, substituted rows make their eliminated
// variable basic, fixed/free columns rest at the bound they were fixed to.
// Returns nil if any block solved without a basis (dense fallback).
func (pr *presolve) assembleBasis(blockBases []*Basis) *Basis {
	b := NewLogicalBasis(pr.n, pr.m)
	for v := 0; v < pr.n; v++ {
		if (pr.isFixed[v] || pr.freeVar[v]) && pr.fixedHi[v] {
			b.stat[v] = uint8(atUpper)
		}
	}
	for bi, blk := range pr.blocks {
		if blockBases[bi] == nil {
			return nil
		}
		b.Absorb(blockBases[bi], blk.vars, blk.rows)
	}
	for i := 0; i < pr.m; i++ {
		if v := pr.rowSubVar[i]; v >= 0 {
			b.rowVar[i] = int32(v)
			b.stat[v] = uint8(basic)
			b.stat[pr.n+i] = uint8(atLower)
		}
	}
	return b
}

// solveReduced is the default Solve path: presolve, solve each block with
// the revised simplex (projected warm basis, dense-tableau fallback on
// numerical trouble), postsolve, and reassemble the full solution with the
// objective recomputed against the original problem in index order.
func solveReduced(p *Problem, o Options) Solution {
	pr := runPresolve(p, o)
	if pr.infeasible {
		return Solution{Status: Infeasible}
	}

	status := Optimal
	iters := 0
	blockX := make([][]float64, len(pr.blocks))
	blockBases := make([]*Basis, len(pr.blocks))
	for bi, blk := range pr.blocks {
		var warm *Basis
		if o.WarmBasis != nil {
			if wn, wm := o.WarmBasis.Shape(); wn == pr.n && wm == pr.m {
				warm = o.WarmBasis.Project(blk.vars, blk.rows)
			}
		}
		sol, ok := solveBlock(blk.prob, o, warm)
		if !ok {
			t := newTableau(blk.prob, o)
			sol = t.solve()
			sol.Basis = nil
		}
		iters += sol.Iters
		switch sol.Status {
		case Infeasible:
			return Solution{Status: Infeasible, Iters: iters}
		case Unbounded:
			if status != Infeasible {
				status = Unbounded
			}
		case IterLimit:
			if status == Optimal {
				status = IterLimit
			}
			blockX[bi] = sol.X
		default:
			blockX[bi] = sol.X
			blockBases[bi] = sol.Basis
		}
	}
	if pr.unboundedRay && status == Optimal {
		status = Unbounded
	}
	if status == Unbounded {
		return Solution{Status: Unbounded, Iters: iters}
	}

	x := pr.postsolve(p, blockX)
	obj := 0.0
	for v := 0; v < pr.n; v++ {
		obj += p.obj[v] * x[v]
	}
	sol := Solution{Status: status, Objective: obj, X: x, Iters: iters}
	if status == Optimal {
		sol.Basis = pr.assembleBasis(blockBases)
	}
	return sol
}
