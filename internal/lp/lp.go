// Package lp implements a dense two-phase primal simplex solver for linear
// programs with bounded variables:
//
//	maximize    cᵀx
//	subject to  a_iᵀx (≤ | = | ≥) b_i   for each constraint i
//	            lo_j ≤ x_j ≤ hi_j       for each variable j
//
// It is the LP engine underneath the branch-and-bound MILP solver in
// internal/milp, standing in for the commercial solver (Gurobi) used by the
// Proteus paper. The implementation keeps an explicit tableau, supports
// finite lower bounds (shifted to zero internally) and finite or infinite
// upper bounds natively (bounded-variable simplex, so x ≤ u never costs a
// row), and falls back from Dantzig to Bland's rule to escape degenerate
// cycling.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is the sense of a linear constraint.
type Relation int

// Constraint senses.
const (
	LE Relation = iota // a·x ≤ b
	GE                 // a·x ≥ b
	EQ                 // a·x = b
)

func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Status is the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return "unknown"
}

// Term is one coefficient of a linear expression.
type Term struct {
	Var  int
	Coef float64
}

// Problem is a linear program under construction. The zero value is not
// usable; create one with NewProblem.
type Problem struct {
	names []string
	lo    []float64
	hi    []float64
	obj   []float64

	rows []row
}

type row struct {
	terms []Term
	rel   Relation
	rhs   float64
}

// NewProblem returns an empty maximization problem.
func NewProblem() *Problem { return &Problem{} }

// Clone returns a deep copy of the problem: bounds, objective and
// constraint rows share no memory with the original, so the copy can be
// solved (and have its bounds mutated) concurrently with the original. The
// MILP solver clones the root problem once per worker so each branch-and-
// bound worker owns a private simplex instance. Cost is O(variables +
// nonzeros), paid once per worker per Solve, not per node.
func (p *Problem) Clone() *Problem {
	q := &Problem{
		names: append([]string(nil), p.names...),
		lo:    append([]float64(nil), p.lo...),
		hi:    append([]float64(nil), p.hi...),
		obj:   append([]float64(nil), p.obj...),
		rows:  make([]row, len(p.rows)),
	}
	for i, r := range p.rows {
		q.rows[i] = row{terms: append([]Term(nil), r.terms...), rel: r.rel, rhs: r.rhs}
	}
	return q
}

// AddVariable adds a variable with bounds [lo, hi] and returns its column
// index. lo must be finite; hi may be math.Inf(1). It panics on invalid
// bounds, which indicate a programming error in the model builder.
func (p *Problem) AddVariable(name string, lo, hi float64) int {
	if math.IsInf(lo, 0) || math.IsNaN(lo) || math.IsNaN(hi) {
		panic(fmt.Sprintf("lp: invalid lower bound for %q: [%v, %v]", name, lo, hi))
	}
	if hi < lo {
		panic(fmt.Sprintf("lp: empty bound interval for %q: [%v, %v]", name, lo, hi))
	}
	p.names = append(p.names, name)
	p.lo = append(p.lo, lo)
	p.hi = append(p.hi, hi)
	p.obj = append(p.obj, 0)
	return len(p.names) - 1
}

// NumVariables returns the number of variables added so far.
func (p *Problem) NumVariables() int { return len(p.names) }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// VarName returns the name given to variable v.
func (p *Problem) VarName(v int) string { return p.names[v] }

// Bounds returns the bound interval of variable v.
func (p *Problem) Bounds(v int) (lo, hi float64) { return p.lo[v], p.hi[v] }

// SetBounds replaces the bound interval of variable v. It is used by the
// MILP solver to branch without rebuilding the problem.
func (p *Problem) SetBounds(v int, lo, hi float64) {
	if hi < lo {
		panic(fmt.Sprintf("lp: empty bound interval for %q: [%v, %v]", p.names[v], lo, hi))
	}
	p.lo[v] = lo
	p.hi[v] = hi
}

// SetObjective sets the objective coefficient of variable v (maximization).
func (p *Problem) SetObjective(v int, c float64) { p.obj[v] = c }

// Objective returns the objective coefficient of variable v.
func (p *Problem) Objective(v int) float64 { return p.obj[v] }

// AddConstraint appends the constraint Σ terms (rel) rhs and returns its row
// index. Terms referencing the same variable are summed.
func (p *Problem) AddConstraint(terms []Term, rel Relation, rhs float64) int {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(p.names) {
			panic(fmt.Sprintf("lp: constraint references unknown variable %d", t.Var))
		}
	}
	cp := make([]Term, len(terms))
	copy(cp, terms)
	p.rows = append(p.rows, row{terms: cp, rel: rel, rhs: rhs})
	return len(p.rows) - 1
}

// Solution is the result of a solve.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64 // value per variable, valid when Status == Optimal
	Iters     int
}

// Options tune the solver. The zero value selects defaults.
type Options struct {
	// MaxIters bounds total simplex pivots across both phases.
	// Default 50_000.
	MaxIters int
	// Tol is the numerical tolerance. Default 1e-9.
	Tol float64
}

func (o *Options) withDefaults() Options {
	out := Options{MaxIters: 50_000, Tol: 1e-9}
	if o != nil {
		if o.MaxIters > 0 {
			out.MaxIters = o.MaxIters
		}
		if o.Tol > 0 {
			out.Tol = o.Tol
		}
	}
	return out
}

// ErrNoVariables is returned when solving a problem with no variables.
var ErrNoVariables = errors.New("lp: problem has no variables")

// Solve optimizes the problem and returns the solution. The problem itself
// is not modified. Status Infeasible and Unbounded are reported in the
// Solution, not as errors; the error return covers malformed inputs only.
func Solve(p *Problem, opts *Options) (Solution, error) {
	o := opts.withDefaults()
	if len(p.names) == 0 {
		return Solution{}, ErrNoVariables
	}
	t := newTableau(p, o)
	sol := t.solve()
	return sol, nil
}
