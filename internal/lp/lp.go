// Package lp implements simplex solvers for linear programs with bounded
// variables:
//
//	maximize    cᵀx
//	subject to  a_iᵀx (≤ | = | ≥) b_i   for each constraint i
//	            lo_j ≤ x_j ≤ hi_j       for each variable j
//
// It is the LP engine underneath the branch-and-bound MILP solver in
// internal/milp, standing in for the commercial solver (Gurobi) used by the
// Proteus paper.
//
// The default pipeline (presolve.go, revised.go) presolves the problem —
// variable fixing, dominated-column elimination, redundant-row removal,
// singleton-column substitution, independent-block decomposition — and
// solves each reduced block with a sparse revised simplex (CSC constraint
// matrix, explicit basis inverse with deterministic refactorization,
// bound-stretch composite phase 1) that accepts a warm-start Basis; a
// postsolve pass maps the reduced solution back deterministically. The
// original dense two-phase tableau (tableau.go) is retained both as the
// fallback when the revised path hits numerical trouble and as an
// independent cross-check oracle (Options.Dense). Both solvers support
// finite lower bounds, finite or infinite upper bounds natively
// (bounded-variable simplex, so x ≤ u never costs a row), and fall back
// from Dantzig to Bland's rule to escape degenerate cycling.
package lp

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
)

// Relation is the sense of a linear constraint.
type Relation int

// Constraint senses.
const (
	LE Relation = iota // a·x ≤ b
	GE                 // a·x ≥ b
	EQ                 // a·x = b
)

func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Status is the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return "unknown"
}

// Term is one coefficient of a linear expression.
type Term struct {
	Var  int
	Coef float64
}

// Problem is a linear program under construction. The zero value is not
// usable; create one with NewProblem.
type Problem struct {
	names []string
	lo    []float64
	hi    []float64
	obj   []float64

	rows []row

	// mat memoizes the CSC form of the constraint matrix plus its
	// fingerprint. Bounds and objective edits keep it valid; AddVariable and
	// AddConstraint invalidate it. Atomic so concurrent solves of one
	// problem stay race-free; a matCache is immutable once published.
	mat atomic.Pointer[matCache]
}

// matCache bundles the CSC matrix with its content fingerprint.
type matCache struct {
	mat  csc
	hash uint64
}

// matrix returns the memoized CSC form, building it on first use.
func (p *Problem) matrix() *matCache {
	if c := p.mat.Load(); c != nil {
		return c
	}
	c := &matCache{mat: buildCSC(p)}
	c.hash = c.mat.fingerprint()
	p.mat.Store(c)
	return c
}

type row struct {
	terms []Term
	rel   Relation
	rhs   float64
}

// NewProblem returns an empty maximization problem.
func NewProblem() *Problem { return &Problem{} }

// Clone returns a deep copy of the problem: bounds, objective and
// constraint rows share no memory with the original, so the copy can be
// solved (and have its bounds mutated) concurrently with the original. The
// MILP solver clones the root problem once per worker so each branch-and-
// bound worker owns a private simplex instance. Cost is O(variables +
// nonzeros), paid once per worker per Solve, not per node.
func (p *Problem) Clone() *Problem {
	q := &Problem{
		names: append([]string(nil), p.names...),
		lo:    append([]float64(nil), p.lo...),
		hi:    append([]float64(nil), p.hi...),
		obj:   append([]float64(nil), p.obj...),
		rows:  make([]row, len(p.rows)),
	}
	for i, r := range p.rows {
		q.rows[i] = row{terms: append([]Term(nil), r.terms...), rel: r.rel, rhs: r.rhs}
	}
	q.mat.Store(p.mat.Load()) // the memoized matrix is immutable, share it
	return q
}

// AddVariable adds a variable with bounds [lo, hi] and returns its column
// index. lo must be finite; hi may be math.Inf(1). It panics on invalid
// bounds, which indicate a programming error in the model builder.
func (p *Problem) AddVariable(name string, lo, hi float64) int {
	if math.IsInf(lo, 0) || math.IsNaN(lo) || math.IsNaN(hi) {
		panic(fmt.Sprintf("lp: invalid lower bound for %q: [%v, %v]", name, lo, hi))
	}
	if hi < lo {
		panic(fmt.Sprintf("lp: empty bound interval for %q: [%v, %v]", name, lo, hi))
	}
	p.names = append(p.names, name)
	p.lo = append(p.lo, lo)
	p.hi = append(p.hi, hi)
	p.obj = append(p.obj, 0)
	p.mat.Store(nil)
	return len(p.names) - 1
}

// NumVariables returns the number of variables added so far.
func (p *Problem) NumVariables() int { return len(p.names) }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// VarName returns the name given to variable v.
func (p *Problem) VarName(v int) string { return p.names[v] }

// Bounds returns the bound interval of variable v.
func (p *Problem) Bounds(v int) (lo, hi float64) { return p.lo[v], p.hi[v] }

// SetBounds replaces the bound interval of variable v. It is used by the
// MILP solver to branch without rebuilding the problem.
func (p *Problem) SetBounds(v int, lo, hi float64) {
	if hi < lo {
		panic(fmt.Sprintf("lp: empty bound interval for %q: [%v, %v]", p.names[v], lo, hi))
	}
	p.lo[v] = lo
	p.hi[v] = hi
}

// SetObjective sets the objective coefficient of variable v (maximization).
func (p *Problem) SetObjective(v int, c float64) { p.obj[v] = c }

// Objective returns the objective coefficient of variable v.
func (p *Problem) Objective(v int) float64 { return p.obj[v] }

// AddConstraint appends the constraint Σ terms (rel) rhs and returns its row
// index. Terms referencing the same variable are summed.
func (p *Problem) AddConstraint(terms []Term, rel Relation, rhs float64) int {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(p.names) {
			panic(fmt.Sprintf("lp: constraint references unknown variable %d", t.Var))
		}
	}
	cp := make([]Term, len(terms))
	copy(cp, terms)
	p.rows = append(p.rows, row{terms: cp, rel: rel, rhs: rhs})
	p.mat.Store(nil)
	return len(p.rows) - 1
}

// Constraint returns row i's terms, relation and right-hand side. The
// returned slice is the problem's own storage; callers must not modify it.
// It exists so layers above (e.g. the MILP solver's component decomposition)
// can inspect the constraint graph without rebuilding it.
func (p *Problem) Constraint(i int) (terms []Term, rel Relation, rhs float64) {
	r := p.rows[i]
	return r.terms, r.rel, r.rhs
}

// Basis is a simplex basis in the coordinates of the full problem it was
// extracted from: n structural columns followed by one logical (slack)
// column per constraint row. It records which column is basic in each row
// and the resting bound of every nonbasic column. A Basis is immutable once
// published by a solve, so it can be shared freely across goroutines;
// warm-starting a solve never mutates the Basis it was given.
type Basis struct {
	rowVar []int32 // column basic in row i (structural j, or logical n+i′)
	stat   []uint8 // varStatus per column, length n+m
	// binv, when non-nil, caches the basis inverse so a warm-started solve
	// of a bit-identical matrix (matHash) can skip the O(m³)
	// refactorization; updates counts product-form updates since the last
	// true factorization, so drift control carries across solves. All three
	// are read-only once here.
	binv    [][]float64
	updates int
	matHash uint64
}

// Shape returns the (variables, constraints) dimensions the basis was
// extracted from, so callers can check compatibility before reuse.
func (b *Basis) Shape() (n, m int) {
	if b == nil {
		return 0, 0
	}
	return len(b.stat) - len(b.rowVar), len(b.rowVar)
}

// NewLogicalBasis returns the all-logical starting basis for an n-variable,
// m-row problem: every row's slack is basic and every structural variable
// rests at its lower bound. It is the deterministic cold-start basis.
func NewLogicalBasis(n, m int) *Basis {
	b := &Basis{rowVar: make([]int32, m), stat: make([]uint8, n+m)}
	for i := 0; i < m; i++ {
		b.rowVar[i] = int32(n + i)
		b.stat[n+i] = uint8(basic)
	}
	return b
}

// Project maps the basis into a subproblem whose variable k is original
// variable vars[k] and whose row r is original row rows[r]. A basic column
// that does not survive into the subproblem is replaced by the row's own
// logical, which phase 1 then repairs; projection is a performance hint, not
// a feasibility promise.
func (b *Basis) Project(vars, rows []int) *Basis {
	if b == nil {
		return nil
	}
	nOrig, _ := b.Shape()
	inv := make(map[int]int, len(vars))
	for k, v := range vars {
		inv[v] = k
	}
	n, m := len(vars), len(rows)
	out := &Basis{rowVar: make([]int32, m), stat: make([]uint8, n+m)}
	for k, v := range vars {
		out.stat[k] = b.stat[v]
	}
	for r, orig := range rows {
		out.stat[n+r] = b.stat[nOrig+orig]
		bv := int(b.rowVar[orig])
		switch {
		case bv < nOrig:
			if k, ok := inv[bv]; ok {
				out.rowVar[r] = int32(k)
				out.stat[k] = uint8(basic)
				continue
			}
		case bv == nOrig+orig:
			out.rowVar[r] = int32(n + r)
			out.stat[n+r] = uint8(basic)
			continue
		}
		out.rowVar[r] = int32(n + r)
		out.stat[n+r] = uint8(basic)
	}
	return out
}

// Absorb writes a subproblem basis back into b using the same index maps
// Project takes. It is the inverse plumbing used while assembling a full
// basis from independently solved blocks; callers must not Absorb into a
// basis that has already been published to a solve.
func (b *Basis) Absorb(sub *Basis, vars, rows []int) {
	if b == nil || sub == nil {
		return
	}
	nSub := len(vars)
	nOrig, _ := b.Shape()
	for k, v := range vars {
		b.stat[v] = sub.stat[k]
	}
	for r, orig := range rows {
		b.stat[nOrig+orig] = sub.stat[nSub+r]
		bv := int(sub.rowVar[r])
		if bv < nSub {
			b.rowVar[orig] = int32(vars[bv])
		} else {
			b.rowVar[orig] = int32(nOrig + rows[bv-nSub])
		}
	}
}

// Solution is the result of a solve.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64 // value per variable, valid when Status == Optimal
	Iters     int
	// Basis is the optimal basis in full-problem coordinates, usable to
	// warm-start a later solve of a same-shaped problem. It is nil when the
	// solve fell back to the dense tableau (Options.Dense or numerical
	// trouble) or did not reach optimality.
	Basis *Basis
}

// Options tune the solver. The zero value selects defaults.
type Options struct {
	// MaxIters bounds total simplex pivots across both phases.
	// Default 50_000.
	MaxIters int
	// Tol is the numerical tolerance. Default 1e-9.
	Tol float64
	// WarmBasis, if non-nil, seeds the revised simplex with a starting basis
	// (typically the optimal basis of a previous, similar solve). The basis
	// must match the problem shape; a mismatched or singular warm basis is
	// ignored. Warm starts change only the pivot path, never the returned
	// solution: the revised solver canonicalizes its optimum so warm and
	// cold solves of the same problem are byte-identical.
	WarmBasis *Basis
	// Canonical asks the revised solver to canonicalize its optimum (see
	// canonical.go): the returned solution and basis then depend only on
	// the problem, not on WarmBasis or the pivot path. Costs a secondary
	// optimization and one extra refactorization, so callers enable it only
	// where solves seeded with different warm bases must agree bitwise —
	// e.g. the MILP root relaxation.
	Canonical bool
	// Dense forces the legacy dense two-phase tableau solver (no presolve,
	// no warm start, nil Solution.Basis). Used by tests as an independent
	// oracle for the revised path.
	Dense bool
}

func (o *Options) withDefaults() Options {
	out := Options{MaxIters: 50_000, Tol: 1e-9}
	if o != nil {
		if o.MaxIters > 0 {
			out.MaxIters = o.MaxIters
		}
		if o.Tol > 0 {
			out.Tol = o.Tol
		}
		out.WarmBasis = o.WarmBasis
		out.Canonical = o.Canonical
		out.Dense = o.Dense
	}
	return out
}

// ErrNoVariables is returned when solving a problem with no variables.
var ErrNoVariables = errors.New("lp: problem has no variables")

// Solve optimizes the problem and returns the solution. The problem itself
// is not modified. Status Infeasible and Unbounded are reported in the
// Solution, not as errors; the error return covers malformed inputs only.
//
// The default path presolves the problem and runs the sparse revised
// simplex per independent block (see presolve.go); Options.Dense selects
// the legacy dense tableau instead.
func Solve(p *Problem, opts *Options) (Solution, error) {
	o := opts.withDefaults()
	if len(p.names) == 0 {
		return Solution{}, ErrNoVariables
	}
	if o.Dense {
		t := newTableau(p, o)
		return t.solve(), nil
	}
	if w := o.WarmBasis; w != nil && !o.Canonical {
		if wn, wm := w.Shape(); wn == len(p.names) && wm == len(p.rows) {
			// Fast warm path: re-solving the full problem from a full-shape
			// basis (the branch-and-bound per-node case) skips presolve
			// entirely — the warm basis is a better starting point than any
			// reduction, and when it carries a cached inverse for this exact
			// matrix the solve starts without factorizing at all. Numerical
			// trouble falls through to the presolved path.
			if sol, ok := solveBlock(p, o, w); ok {
				return sol, nil
			}
		}
	}
	return solveReduced(p, o), nil
}
