package lp

import (
	"math"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func solveOK(t *testing.T, p *Problem) Solution {
	t.Helper()
	sol, err := Solve(p, nil)
	if err != nil {
		t.Fatalf("Solve error: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v, want optimal", sol.Status)
	}
	return sol
}

func TestSimpleMax(t *testing.T) {
	// max 3x + 5y, x <= 4, 2y <= 12, 3x + 2y <= 18 → x=2, y=6, obj=36.
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1))
	y := p.AddVariable("y", 0, math.Inf(1))
	p.SetObjective(x, 3)
	p.SetObjective(y, 5)
	p.AddConstraint([]Term{{x, 1}}, LE, 4)
	p.AddConstraint([]Term{{y, 2}}, LE, 12)
	p.AddConstraint([]Term{{x, 3}, {y, 2}}, LE, 18)
	sol := solveOK(t, p)
	if !approx(sol.Objective, 36, 1e-6) {
		t.Fatalf("objective %v, want 36", sol.Objective)
	}
	if !approx(sol.X[x], 2, 1e-6) || !approx(sol.X[y], 6, 1e-6) {
		t.Fatalf("solution %v, want [2 6]", sol.X)
	}
}

func TestEqualityConstraints(t *testing.T) {
	// max x + 2y s.t. x + y = 10, x - y = 2 → x=6, y=4, obj=14.
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1))
	y := p.AddVariable("y", 0, math.Inf(1))
	p.SetObjective(x, 1)
	p.SetObjective(y, 2)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 10)
	p.AddConstraint([]Term{{x, 1}, {y, -1}}, EQ, 2)
	sol := solveOK(t, p)
	if !approx(sol.X[x], 6, 1e-6) || !approx(sol.X[y], 4, 1e-6) {
		t.Fatalf("solution %v, want [6 4]", sol.X)
	}
	if !approx(sol.Objective, 14, 1e-6) {
		t.Fatalf("objective %v", sol.Objective)
	}
}

func TestGEConstraints(t *testing.T) {
	// Minimize cost (maximize negative): min 2x + 3y s.t. x + y >= 4,
	// x + 3y >= 6 → x=3, y=1, cost 9.
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1))
	y := p.AddVariable("y", 0, math.Inf(1))
	p.SetObjective(x, -2)
	p.SetObjective(y, -3)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 4)
	p.AddConstraint([]Term{{x, 1}, {y, 3}}, GE, 6)
	sol := solveOK(t, p)
	if !approx(sol.Objective, -9, 1e-6) {
		t.Fatalf("objective %v, want -9", sol.Objective)
	}
	if !approx(sol.X[x], 3, 1e-6) || !approx(sol.X[y], 1, 1e-6) {
		t.Fatalf("solution %v, want [3 1]", sol.X)
	}
}

func TestUpperBoundsNative(t *testing.T) {
	// max x + y with x <= 1.5, y <= 2.5 via variable bounds and
	// x + y <= 3 as a row → obj 3, on the constraint.
	p := NewProblem()
	x := p.AddVariable("x", 0, 1.5)
	y := p.AddVariable("y", 0, 2.5)
	p.SetObjective(x, 1)
	p.SetObjective(y, 1)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 3)
	sol := solveOK(t, p)
	if !approx(sol.Objective, 3, 1e-6) {
		t.Fatalf("objective %v, want 3", sol.Objective)
	}
	if sol.X[x] > 1.5+1e-9 || sol.X[y] > 2.5+1e-9 {
		t.Fatalf("bounds violated: %v", sol.X)
	}
}

func TestBoundFlipOnly(t *testing.T) {
	// max x + y, x,y in [0,2], no rows binding → both at upper bound.
	p := NewProblem()
	x := p.AddVariable("x", 0, 2)
	y := p.AddVariable("y", 0, 2)
	p.SetObjective(x, 1)
	p.SetObjective(y, 1)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 100)
	sol := solveOK(t, p)
	if !approx(sol.Objective, 4, 1e-6) {
		t.Fatalf("objective %v, want 4", sol.Objective)
	}
}

func TestNonZeroLowerBounds(t *testing.T) {
	// max -x - y with x >= 2, y >= 3, x + y >= 6 → x+y = 6, obj -6.
	p := NewProblem()
	x := p.AddVariable("x", 2, math.Inf(1))
	y := p.AddVariable("y", 3, math.Inf(1))
	p.SetObjective(x, -1)
	p.SetObjective(y, -1)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 6)
	sol := solveOK(t, p)
	if !approx(sol.Objective, -6, 1e-6) {
		t.Fatalf("objective %v, want -6", sol.Objective)
	}
	if sol.X[x] < 2-1e-9 || sol.X[y] < 3-1e-9 {
		t.Fatalf("lower bounds violated: %v", sol.X)
	}
}

func TestNegativeLowerBounds(t *testing.T) {
	// max x with x in [-5, -1] → -1.
	p := NewProblem()
	x := p.AddVariable("x", -5, -1)
	p.SetObjective(x, 1)
	p.AddConstraint([]Term{{x, 1}}, GE, -5)
	sol := solveOK(t, p)
	if !approx(sol.X[x], -1, 1e-9) {
		t.Fatalf("x = %v, want -1", sol.X[x])
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1))
	p.SetObjective(x, 1)
	p.AddConstraint([]Term{{x, 1}}, LE, 1)
	p.AddConstraint([]Term{{x, 1}}, GE, 2)
	sol, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
}

func TestInfeasibleEquality(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, 1)
	y := p.AddVariable("y", 0, 1)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 5)
	sol, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1))
	y := p.AddVariable("y", 0, math.Inf(1))
	p.SetObjective(x, 1)
	p.AddConstraint([]Term{{x, 1}, {y, -1}}, LE, 1)
	sol, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status %v, want unbounded", sol.Status)
	}
}

func TestRedundantConstraints(t *testing.T) {
	// Duplicate equality rows create redundant artificials that must be
	// driven out or neutralized without declaring infeasibility.
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1))
	y := p.AddVariable("y", 0, math.Inf(1))
	p.SetObjective(x, 2)
	p.SetObjective(y, 1)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 4)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 4)
	p.AddConstraint([]Term{{x, 2}, {y, 2}}, EQ, 8)
	sol := solveOK(t, p)
	if !approx(sol.Objective, 8, 1e-6) {
		t.Fatalf("objective %v, want 8 (x=4,y=0)", sol.Objective)
	}
}

func TestNegativeRHS(t *testing.T) {
	// -x - y <= -4 is x + y >= 4.
	p := NewProblem()
	x := p.AddVariable("x", 0, 10)
	y := p.AddVariable("y", 0, 10)
	p.SetObjective(x, -1)
	p.SetObjective(y, -2)
	p.AddConstraint([]Term{{x, -1}, {y, -1}}, LE, -4)
	sol := solveOK(t, p)
	if !approx(sol.X[x], 4, 1e-6) || !approx(sol.X[y], 0, 1e-6) {
		t.Fatalf("solution %v, want [4 0]", sol.X)
	}
}

func TestDuplicateTermsAreSummed(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1))
	p.SetObjective(x, 1)
	// x + x <= 6 → x <= 3.
	p.AddConstraint([]Term{{x, 1}, {x, 1}}, LE, 6)
	sol := solveOK(t, p)
	if !approx(sol.X[x], 3, 1e-6) {
		t.Fatalf("x = %v, want 3", sol.X[x])
	}
}

func TestFixedVariable(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 2, 2) // fixed
	y := p.AddVariable("y", 0, math.Inf(1))
	p.SetObjective(y, 1)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 7)
	sol := solveOK(t, p)
	if !approx(sol.X[x], 2, 1e-9) {
		t.Fatalf("fixed variable moved: %v", sol.X[x])
	}
	if !approx(sol.X[y], 5, 1e-6) {
		t.Fatalf("y = %v, want 5", sol.X[y])
	}
}

func TestDegenerateLP(t *testing.T) {
	// Classic degenerate corner: multiple constraints intersect at optimum.
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1))
	y := p.AddVariable("y", 0, math.Inf(1))
	p.SetObjective(x, 1)
	p.SetObjective(y, 1)
	p.AddConstraint([]Term{{x, 1}}, LE, 1)
	p.AddConstraint([]Term{{y, 1}}, LE, 1)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 2)
	p.AddConstraint([]Term{{x, 1}, {y, 2}}, LE, 3)
	p.AddConstraint([]Term{{x, 2}, {y, 1}}, LE, 3)
	sol := solveOK(t, p)
	if !approx(sol.Objective, 2, 1e-6) {
		t.Fatalf("objective %v, want 2", sol.Objective)
	}
}

func TestBealeCyclingExample(t *testing.T) {
	// Beale's classic cycling LP (min form, converted to max by negation):
	// min -0.75x4 + 150x5 - 0.02x6 + 6x7
	// s.t. 0.25x4 - 60x5 - 0.04x6 + 9x7 <= 0
	//      0.5x4 - 90x5 - 0.02x6 + 3x7 <= 0
	//      x6 <= 1
	// Optimal value is -0.05 (max form +0.05).
	p := NewProblem()
	x4 := p.AddVariable("x4", 0, math.Inf(1))
	x5 := p.AddVariable("x5", 0, math.Inf(1))
	x6 := p.AddVariable("x6", 0, math.Inf(1))
	x7 := p.AddVariable("x7", 0, math.Inf(1))
	p.SetObjective(x4, 0.75)
	p.SetObjective(x5, -150)
	p.SetObjective(x6, 0.02)
	p.SetObjective(x7, -6)
	p.AddConstraint([]Term{{x4, 0.25}, {x5, -60}, {x6, -0.04}, {x7, 9}}, LE, 0)
	p.AddConstraint([]Term{{x4, 0.5}, {x5, -90}, {x6, -0.02}, {x7, 3}}, LE, 0)
	p.AddConstraint([]Term{{x6, 1}}, LE, 1)
	sol := solveOK(t, p)
	if !approx(sol.Objective, 0.05, 1e-6) {
		t.Fatalf("objective %v, want 0.05", sol.Objective)
	}
}

func TestSolutionSatisfiesConstraints(t *testing.T) {
	// A moderately sized random-ish LP; verify feasibility of the answer.
	p := NewProblem()
	const n = 20
	vars := make([]int, n)
	for i := range vars {
		vars[i] = p.AddVariable("v", 0, float64(1+i%5))
		p.SetObjective(vars[i], float64((i*7)%11)-3)
	}
	// Reference point: midpoint of every variable's bounds. Constraint
	// right-hand sides are derived from it so the LP is feasible by
	// construction.
	x0 := make([]float64, n)
	for i, v := range vars {
		lo, hi := p.Bounds(v)
		x0[i] = (lo + hi) / 2
	}
	var rows [][]Term
	var rels []Relation
	var rhss []float64
	for i := 0; i < 15; i++ {
		var terms []Term
		lhs0 := 0.0
		for j := 0; j < n; j++ {
			c := float64((i*j)%7) - 2
			if c != 0 {
				terms = append(terms, Term{vars[j], c})
				lhs0 += c * x0[j]
			}
		}
		rel := []Relation{LE, GE, EQ}[i%3]
		var rhs float64
		switch rel {
		case LE:
			rhs = lhs0 + float64(i%4)
		case GE:
			rhs = lhs0 - float64(i%4)
		case EQ:
			rhs = lhs0
		}
		p.AddConstraint(terms, rel, rhs)
		rows, rels, rhss = append(rows, terms), append(rels, rel), append(rhss, rhs)
	}
	sol, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	for i, terms := range rows {
		lhs := 0.0
		for _, tm := range terms {
			lhs += tm.Coef * sol.X[tm.Var]
		}
		switch rels[i] {
		case LE:
			if lhs > rhss[i]+1e-6 {
				t.Errorf("row %d: %v <= %v violated", i, lhs, rhss[i])
			}
		case GE:
			if lhs < rhss[i]-1e-6 {
				t.Errorf("row %d: %v >= %v violated", i, lhs, rhss[i])
			}
		case EQ:
			if math.Abs(lhs-rhss[i]) > 1e-6 {
				t.Errorf("row %d: %v = %v violated", i, lhs, rhss[i])
			}
		}
	}
	for j, v := range vars {
		lo, hi := p.Bounds(v)
		if sol.X[v] < lo-1e-9 || sol.X[v] > hi+1e-9 {
			t.Errorf("variable %d out of bounds: %v not in [%v,%v]", j, sol.X[v], lo, hi)
		}
	}
}

func TestTransportationProblem(t *testing.T) {
	// 2 suppliers (cap 20, 30) x 3 consumers (demand 10, 25, 15);
	// costs: s1: 2,3,1  s2: 5,4,8. Minimize cost.
	// Optimum: s1→c3 15, s1→c1 5, s2→c1 5, s2→c2 25 → cost 150.
	p := NewProblem()
	x := make([][]int, 2)
	costs := [][]float64{{2, 3, 1}, {5, 4, 8}}
	for i := range x {
		x[i] = make([]int, 3)
		for j := range x[i] {
			x[i][j] = p.AddVariable("x", 0, math.Inf(1))
			p.SetObjective(x[i][j], -costs[i][j])
		}
	}
	p.AddConstraint([]Term{{x[0][0], 1}, {x[0][1], 1}, {x[0][2], 1}}, LE, 20)
	p.AddConstraint([]Term{{x[1][0], 1}, {x[1][1], 1}, {x[1][2], 1}}, LE, 30)
	for j := 0; j < 3; j++ {
		p.AddConstraint([]Term{{x[0][j], 1}, {x[1][j], 1}}, EQ, []float64{10, 25, 15}[j])
	}
	sol := solveOK(t, p)
	if !approx(sol.Objective, -150, 1e-6) {
		t.Fatalf("objective %v, want -150", sol.Objective)
	}
}

func TestNoVariables(t *testing.T) {
	p := NewProblem()
	if _, err := Solve(p, nil); err == nil {
		t.Fatal("expected error for empty problem")
	}
}

func TestSetBounds(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, 10)
	p.SetObjective(x, 1)
	p.AddConstraint([]Term{{x, 1}}, LE, 100)
	sol := solveOK(t, p)
	if !approx(sol.X[x], 10, 1e-9) {
		t.Fatalf("x = %v", sol.X[x])
	}
	p.SetBounds(x, 0, 4)
	sol = solveOK(t, p)
	if !approx(sol.X[x], 4, 1e-9) {
		t.Fatalf("after SetBounds x = %v", sol.X[x])
	}
}

func TestAddVariablePanics(t *testing.T) {
	p := NewProblem()
	for _, c := range []struct{ lo, hi float64 }{
		{math.Inf(-1), 0},
		{1, 0},
		{math.NaN(), 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddVariable(%v, %v) did not panic", c.lo, c.hi)
				}
			}()
			p.AddVariable("bad", c.lo, c.hi)
		}()
	}
}

func TestRelationAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Fatal("Relation strings wrong")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || IterLimit.String() != "iteration-limit" {
		t.Fatal("Status strings wrong")
	}
}
