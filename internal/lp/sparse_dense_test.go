package lp

import (
	"math"
	"testing"

	"proteus/internal/numeric"
)

// lpShape names one random-instance generator used by the seeded
// sparse-vs-dense property tests. Four shapes cover the regimes the two
// solvers disagree on first when one of them is wrong: square dense rows,
// wide (many columns, few rows), tall (many rows, few columns), and blocky
// (independent variable groups the presolve splits into sub-LPs).
type lpShape struct {
	name string
	n, m int
	// density is the per-term inclusion probability; block > 0 partitions
	// variables into that many independent groups (each row draws from one).
	density float64
	block   int
}

var lpShapes = []lpShape{
	{name: "square", n: 12, m: 12, density: 0.5},
	{name: "wide", n: 30, m: 6, density: 0.4},
	{name: "tall", n: 6, m: 24, density: 0.6},
	{name: "blocky", n: 24, m: 16, density: 0.6, block: 4},
}

// buildSeededLP generates a random LP that is feasible by construction:
// right-hand sides are derived from a random interior point, so Optimal (or
// Unbounded, when open upper bounds line up with the objective) is the only
// legal outcome.
func buildSeededLP(seed uint64, sh lpShape) *Problem {
	rng := numeric.NewRNG(seed)
	p := NewProblem()
	vars := make([]int, sh.n)
	x0 := make([]float64, sh.n)
	for i := range vars {
		lo := math.Floor(rng.Float64()*8 - 4)
		hi := lo + 1 + rng.Float64()*9
		if rng.Float64() < 0.15 {
			hi = math.Inf(1)
		}
		vars[i] = p.AddVariable("v", lo, hi)
		if math.IsInf(hi, 1) {
			x0[i] = lo + rng.Float64()*4
		} else {
			x0[i] = lo + rng.Float64()*(hi-lo)
		}
		p.SetObjective(vars[i], math.Floor(rng.Float64()*10-5))
	}
	for r := 0; r < sh.m; r++ {
		group := -1
		if sh.block > 0 {
			group = r % sh.block
		}
		var terms []Term
		lhs0 := 0.0
		for i := 0; i < sh.n; i++ {
			if group >= 0 && i%sh.block != group {
				continue
			}
			if rng.Float64() > sh.density {
				continue
			}
			c := math.Floor(rng.Float64()*9 - 4)
			if c == 0 {
				continue
			}
			terms = append(terms, Term{Var: vars[i], Coef: c})
			lhs0 += c * x0[i]
		}
		if len(terms) == 0 {
			continue
		}
		rel := []Relation{LE, GE, EQ}[rng.Intn(3)]
		rhs := lhs0
		switch rel {
		case LE:
			rhs += rng.Float64() * 4
		case GE:
			rhs -= rng.Float64() * 4
		}
		p.AddConstraint(terms, rel, rhs)
	}
	return p
}

// checkFeasible verifies x satisfies every constraint and bound of p.
func checkFeasible(t *testing.T, p *Problem, x []float64, tol float64) {
	t.Helper()
	for i := 0; i < p.NumConstraints(); i++ {
		terms, rel, rhs := p.Constraint(i)
		lhs := 0.0
		for _, tm := range terms {
			lhs += tm.Coef * x[tm.Var]
		}
		switch rel {
		case LE:
			if lhs > rhs+tol {
				t.Fatalf("row %d: %v <= %v violated", i, lhs, rhs)
			}
		case GE:
			if lhs < rhs-tol {
				t.Fatalf("row %d: %v >= %v violated", i, lhs, rhs)
			}
		case EQ:
			if math.Abs(lhs-rhs) > tol {
				t.Fatalf("row %d: %v == %v violated", i, lhs, rhs)
			}
		}
	}
	for v := 0; v < p.NumVariables(); v++ {
		lo, hi := p.Bounds(v)
		if x[v] < lo-tol || x[v] > hi+tol {
			t.Fatalf("var %d: %v outside [%v, %v]", v, x[v], lo, hi)
		}
	}
}

// TestSparseMatchesDense is the cross-solver oracle: on every seeded shape
// the presolved sparse revised simplex and the dense two-phase tableau must
// agree on status and, when Optimal, on the objective — and the sparse
// solution must be feasible in the *original* (un-presolved) problem, which
// exercises the postsolve round trip on every instance.
func TestSparseMatchesDense(t *testing.T) {
	seeds := []uint64{1, 7, 42, 1234, 99991, 31337}
	for _, sh := range lpShapes {
		for _, seed := range seeds {
			p := buildSeededLP(seed, sh)
			sparse, err := Solve(p, nil)
			if err != nil {
				t.Fatalf("%s/seed%d: sparse: %v", sh.name, seed, err)
			}
			dense, err := Solve(p, &Options{Dense: true})
			if err != nil {
				t.Fatalf("%s/seed%d: dense: %v", sh.name, seed, err)
			}
			if sparse.Status != dense.Status {
				t.Fatalf("%s/seed%d: status sparse=%v dense=%v", sh.name, seed, sparse.Status, dense.Status)
			}
			if sparse.Status != Optimal {
				continue
			}
			if !approx(sparse.Objective, dense.Objective, 1e-5*(1+math.Abs(dense.Objective))) {
				t.Fatalf("%s/seed%d: objective sparse=%v dense=%v", sh.name, seed, sparse.Objective, dense.Objective)
			}
			checkFeasible(t, p, sparse.X, 1e-5)
		}
	}
}

// TestWarmStartEqualsColdStart checks the canonical-basis guarantee the MILP
// and allocator layers build on: re-solving the same problem seeded with the
// previous optimal basis yields a byte-identical solution (bit-equal X,
// objective and basis), not merely an equivalent one.
func TestWarmStartEqualsColdStart(t *testing.T) {
	opts := func(w *Basis) *Options { return &Options{Canonical: true, WarmBasis: w} }
	for _, sh := range lpShapes {
		for _, seed := range []uint64{3, 17, 404, 9001, 123457} {
			p := buildSeededLP(seed, sh)
			cold, err := Solve(p, opts(nil))
			if err != nil || cold.Status != Optimal {
				continue // unbounded/infeasible shapes carry no basis contract
			}
			if cold.Basis == nil {
				t.Fatalf("%s/seed%d: optimal canonical solve returned nil basis", sh.name, seed)
			}
			warm, err := Solve(p, opts(cold.Basis))
			if err != nil {
				t.Fatalf("%s/seed%d: warm: %v", sh.name, seed, err)
			}
			if warm.Status != Optimal {
				t.Fatalf("%s/seed%d: warm status %v", sh.name, seed, warm.Status)
			}
			if math.Float64bits(warm.Objective) != math.Float64bits(cold.Objective) {
				t.Fatalf("%s/seed%d: objective warm=%v cold=%v", sh.name, seed, warm.Objective, cold.Objective)
			}
			for v := range warm.X {
				if math.Float64bits(warm.X[v]) != math.Float64bits(cold.X[v]) {
					t.Fatalf("%s/seed%d: X[%d] warm=%v cold=%v", sh.name, seed, v, warm.X[v], cold.X[v])
				}
			}
		}
	}
}

// TestPresolveReductions pins each presolve pass with a handcrafted instance
// solved against the dense oracle: empty and redundant rows, bound-fixed
// variables, singleton-column substitution, and block decomposition.
func TestPresolveReductions(t *testing.T) {
	t.Run("fixed_and_empty", func(t *testing.T) {
		// y is fixed by its bounds; the first row becomes constant and must
		// be dropped as satisfied, not reported infeasible.
		p := NewProblem()
		x := p.AddVariable("x", 0, 10)
		y := p.AddVariable("y", 3, 3)
		p.SetObjective(x, 1)
		p.SetObjective(y, 1)
		p.AddConstraint([]Term{{y, 2}}, LE, 7)
		p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 8)
		sol := solveOK(t, p)
		if !approx(sol.X[x], 5, 1e-9) || !approx(sol.X[y], 3, 1e-9) {
			t.Fatalf("got x=%v y=%v, want 5, 3", sol.X[x], sol.X[y])
		}
	})
	t.Run("fixed_infeasible_row", func(t *testing.T) {
		p := NewProblem()
		y := p.AddVariable("y", 4, 4)
		p.SetObjective(y, 1)
		p.AddConstraint([]Term{{y, 1}}, LE, 3)
		sol, err := Solve(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Infeasible {
			t.Fatalf("status %v, want infeasible", sol.Status)
		}
	})
	t.Run("singleton_substitution", func(t *testing.T) {
		// s appears in exactly one equality row: presolve substitutes it out
		// and postsolve must reconstruct its value from the row residual.
		p := NewProblem()
		x := p.AddVariable("x", 0, 4)
		s := p.AddVariable("s", 0, math.Inf(1))
		p.SetObjective(x, 2)
		p.AddConstraint([]Term{{x, 1}, {s, 1}}, EQ, 6)
		sol := solveOK(t, p)
		if !approx(sol.X[x], 4, 1e-9) || !approx(sol.X[s], 2, 1e-9) {
			t.Fatalf("got x=%v s=%v, want 4, 2", sol.X[x], sol.X[s])
		}
	})
	t.Run("blocks_match_dense", func(t *testing.T) {
		// Two independent blocks; presolve solves them as separate sub-LPs
		// and the merged answer must match the dense whole-problem solve.
		p := NewProblem()
		a := p.AddVariable("a", 0, 5)
		b := p.AddVariable("b", 0, 5)
		c := p.AddVariable("c", 0, 5)
		d := p.AddVariable("d", 0, 5)
		for _, v := range []int{a, b, c, d} {
			p.SetObjective(v, 1)
		}
		p.AddConstraint([]Term{{a, 1}, {b, 2}}, LE, 6)
		p.AddConstraint([]Term{{c, 2}, {d, 1}}, LE, 6)
		sparse := solveOK(t, p)
		dense, err := Solve(p, &Options{Dense: true})
		if err != nil {
			t.Fatal(err)
		}
		if !approx(sparse.Objective, dense.Objective, 1e-9) {
			t.Fatalf("objective sparse=%v dense=%v", sparse.Objective, dense.Objective)
		}
		checkFeasible(t, p, sparse.X, 1e-9)
	})
}

// TestBealeCyclingDense runs Beale's cycling LP through the dense tableau
// explicitly, so the Bland's-rule fallback is covered in both solvers (the
// default route covers the revised simplex in TestBealeCyclingExample).
func TestBealeCyclingDense(t *testing.T) {
	p := NewProblem()
	x4 := p.AddVariable("x4", 0, math.Inf(1))
	x5 := p.AddVariable("x5", 0, math.Inf(1))
	x6 := p.AddVariable("x6", 0, math.Inf(1))
	x7 := p.AddVariable("x7", 0, math.Inf(1))
	p.SetObjective(x4, 0.75)
	p.SetObjective(x5, -150)
	p.SetObjective(x6, 0.02)
	p.SetObjective(x7, -6)
	p.AddConstraint([]Term{{x4, 0.25}, {x5, -60}, {x6, -0.04}, {x7, 9}}, LE, 0)
	p.AddConstraint([]Term{{x4, 0.5}, {x5, -90}, {x6, -0.02}, {x7, 3}}, LE, 0)
	p.AddConstraint([]Term{{x6, 1}}, LE, 1)
	sol, err := Solve(p, &Options{Dense: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Objective, 0.05, 1e-6) {
		t.Fatalf("dense: status %v objective %v, want optimal 0.05", sol.Status, sol.Objective)
	}
}

// TestDegenerateCube is the shared degeneracy corpus case: a hypercube with
// every facet duplicated, so almost every pivot is degenerate. Both solvers
// must terminate (anti-cycling) and agree.
func TestDegenerateCube(t *testing.T) {
	build := func() *Problem {
		p := NewProblem()
		const n = 6
		vars := make([]int, n)
		for i := range vars {
			vars[i] = p.AddVariable("v", 0, math.Inf(1))
			p.SetObjective(vars[i], 1)
		}
		for i := range vars {
			// Duplicate and scaled-duplicate facets at the same corner.
			p.AddConstraint([]Term{{vars[i], 1}}, LE, 1)
			p.AddConstraint([]Term{{vars[i], 2}}, LE, 2)
			p.AddConstraint([]Term{{vars[i], 1}, {vars[(i+1)%n], 1}}, LE, 2)
		}
		return p
	}
	sparse := solveOK(t, build())
	dense, err := Solve(build(), &Options{Dense: true})
	if err != nil {
		t.Fatal(err)
	}
	if dense.Status != Optimal {
		t.Fatalf("dense status %v", dense.Status)
	}
	if !approx(sparse.Objective, 6, 1e-6) || !approx(dense.Objective, 6, 1e-6) {
		t.Fatalf("objectives sparse=%v dense=%v, want 6", sparse.Objective, dense.Objective)
	}
}
