// Solution canonicalization for the revised simplex: makes the reported
// optimum of a block a function of the problem alone, independent of the
// warm-start basis and the pivot path that reached optimality. Three steps:
//
//  1. Nonbasic columns with decisively nonzero reduced cost are frozen at
//     their bounds; a secondary objective with strictly positive, pairwise
//     distinct weights is then optimized over the remaining optimal face,
//     selecting one vertex of it deterministically.
//  2. A deterministic basis crossover replaces the arrival basis with the
//     canonical basis of that vertex: every column strictly between its
//     bounds must be basic, and the basis is completed greedily in
//     ascending column order with a rank test.
//  3. The canonical basis is refactorized from scratch and the basic values
//     recomputed in a fixed order, so equal bases yield bitwise-equal
//     solutions regardless of the floating-point history of the solve.
package lp

import (
	"math"
	"sort"
)

// secondaryWeight is the strictly positive, column-dependent weight used by
// the canonicalization objective. The multiplier spreads the weights enough
// that distinct vertices of an optimal face almost never tie.
func secondaryWeight(j int) float64 {
	return 1 + float64((uint32(j)*2654435761)&0xffff)/65536
}

// canonicalize runs the three canonicalization steps on an optimal state.
// Returns false on numerical failure (caller falls back to the dense
// tableau).
func (r *revised) canonicalize() bool {
	// Step 1: freeze decisively-nonbasic columns, then optimize the
	// secondary objective over the optimal face.
	r.price(r.cost)
	savedLo := make([]float64, 0, r.N)
	savedHi := make([]float64, 0, r.N)
	frozen := make([]int32, 0, r.N)
	for j := 0; j < r.N; j++ {
		if r.stat[j] == basic || math.Abs(r.z[j]) <= dualTol {
			continue
		}
		savedLo = append(savedLo, r.lo[j])
		savedHi = append(savedHi, r.hi[j])
		frozen = append(frozen, int32(j))
		v := r.nonbasicValue(j)
		r.lo[j], r.hi[j] = v, v
	}
	c2 := make([]float64, r.N)
	for j := 0; j < r.n; j++ {
		c2[j] = -secondaryWeight(j)
	}
	st := r.iterate(c2, false)
	for k, j := range frozen {
		r.lo[j], r.hi[j] = savedLo[k], savedHi[k]
	}
	if st == numTrouble || st == solvedUnbounded {
		return false
	}

	// Step 2: deterministic crossover to the canonical basis of the vertex.
	oldVal := make([]float64, r.N)
	for j := 0; j < r.N; j++ {
		oldVal[j] = r.value(j)
	}
	chosen := r.crossoverSet(oldVal)
	if chosen != nil {
		sort.Slice(chosen, func(a, b int) bool { return chosen[a] < chosen[b] })
		inSet := make([]bool, r.N)
		for _, j := range chosen {
			inSet[j] = true
		}
		for i, j := range chosen {
			r.basis[i] = j
		}
		for j := 0; j < r.N; j++ {
			if inSet[j] {
				r.stat[j] = basic
				continue
			}
			if r.stat[j] != basic {
				continue // keeps its resting bound
			}
			// Previously basic, now resting: snap to the nearer bound.
			v := oldVal[j]
			switch {
			case math.IsInf(r.hi[j], 1):
				r.stat[j] = atLower
			case math.IsInf(r.lo[j], -1):
				r.stat[j] = atUpper
			case v-r.lo[j] <= r.hi[j]-v:
				r.stat[j] = atLower
			default:
				r.stat[j] = atUpper
			}
		}
	}

	// Step 3: canonical refactorization and recompute.
	if !r.factorize() {
		return false
	}
	r.computeXB()
	return true
}

// crossoverSet builds the canonical basic set for the current vertex: the
// columns strictly inside their bounds (a subset of the current basis, so
// independent), completed in ascending column order under a rank test.
// Returns nil when completion fails, in which case the caller keeps the
// arrival basis.
func (r *revised) crossoverSet(val []float64) []int32 {
	const rankTol = 1e-7
	type pivotVec struct {
		row int
		v   []float64
	}
	accepted := make([]pivotVec, 0, r.m)
	chosen := make([]int32, 0, r.m)
	used := make([]bool, r.N)
	pivoted := make([]bool, r.m)

	dense := make([]float64, r.m)
	try := func(j int32) {
		if used[j] || len(chosen) == r.m {
			return
		}
		for i := range dense {
			dense[i] = 0
		}
		if int(j) < r.n {
			for t := r.mat.colPtr[j]; t < r.mat.colPtr[j+1]; t++ {
				dense[r.mat.rowIdx[t]] = r.mat.val[t]
			}
		} else {
			dense[int(j)-r.n] = 1
		}
		for _, p := range accepted {
			f := dense[p.row]
			if isZero(f) {
				continue
			}
			for i := 0; i < r.m; i++ {
				dense[i] -= f * p.v[i]
			}
			dense[p.row] = 0
		}
		pr, best := -1, rankTol
		for i := 0; i < r.m; i++ {
			if pivoted[i] {
				continue
			}
			if a := math.Abs(dense[i]); a > best {
				pr, best = i, a
			}
		}
		if pr < 0 {
			return
		}
		inv := 1 / dense[pr]
		vec := make([]float64, r.m)
		for i := 0; i < r.m; i++ {
			vec[i] = dense[i] * inv
		}
		vec[pr] = 1
		accepted = append(accepted, pivotVec{row: pr, v: vec})
		chosen = append(chosen, j)
		used[j] = true
		pivoted[pr] = true
	}

	tol := r.opts.Tol
	// Columns strictly inside their bounds must be basic.
	for j := 0; j < r.N; j++ {
		v := val[j]
		if v > r.lo[j]+tol && v < r.hi[j]-tol {
			try(int32(j))
		}
	}
	// Complete in ascending column order.
	for j := 0; j < r.N && len(chosen) < r.m; j++ {
		try(int32(j))
	}
	if len(chosen) != r.m {
		return nil
	}
	return chosen
}

// extract maps the solver state to a Solution in the block's variable
// space, clamping residual drift onto finite bounds and accumulating the
// objective in ascending variable order.
func (r *revised) extract(st Status) Solution {
	x := make([]float64, r.n)
	for j := 0; j < r.n; j++ {
		v := r.value(j)
		if v < r.lo[j] && v > r.lo[j]-feasTol {
			v = r.lo[j]
		} else if !math.IsInf(r.hi[j], 1) && v > r.hi[j] && v < r.hi[j]+feasTol {
			v = r.hi[j]
		}
		x[j] = v
	}
	obj := 0.0
	for j := 0; j < r.n; j++ {
		obj += r.cost[j] * x[j]
	}
	return Solution{Status: st, Objective: obj, X: x, Iters: r.iters}
}

// basisOut snapshots the current basis in the block's coordinates. The
// solver's inverse is handed over by reference (the solver is discarded
// after extraction, and setBasis copies before mutating) together with the
// matrix fingerprint it is valid for, enabling factorization-free warm
// starts on same-matrix re-solves.
func (r *revised) basisOut() *Basis {
	b := &Basis{rowVar: make([]int32, r.m), stat: make([]uint8, r.N)}
	copy(b.rowVar, r.basis)
	for j := 0; j < r.N; j++ {
		b.stat[j] = uint8(r.stat[j])
	}
	b.binv = r.binv
	b.updates = r.sinceFactor
	b.matHash = r.hash
	return b
}

// solveBlock runs the revised simplex on one (sub)problem. The second
// return is false when the solver hit numerical trouble and the caller
// should fall back to the dense tableau for this block.
func solveBlock(p *Problem, o Options, warm *Basis) (Solution, bool) {
	r := newRevised(p, o)
	if !r.setBasis(warm) {
		return Solution{}, false
	}
	if r.stretchSetup() {
		switch r.iterate(r.p1cost, true) {
		case numTrouble, solvedUnbounded:
			return Solution{}, false
		case solvedIterLimit:
			return Solution{Status: IterLimit, Iters: r.iters}, true
		}
		if r.stretchResidual() > feasTol {
			return Solution{Status: Infeasible, Iters: r.iters}, true
		}
		r.finishStretch()
	}
	switch r.iterate(r.cost, false) {
	case numTrouble:
		return Solution{}, false
	case solvedUnbounded:
		return Solution{Status: Unbounded, Iters: r.iters}, true
	case solvedIterLimit:
		return r.extract(IterLimit), true
	}
	if o.Canonical {
		if !r.canonicalize() {
			return Solution{}, false
		}
	}
	sol := r.extract(Optimal)
	sol.Basis = r.basisOut()
	return sol, true
}
