package lp

import (
	"math"
	"testing"
	"testing/quick"

	"proteus/internal/numeric"
)

// TestPropertySolutionsFeasible generates random LPs that are feasible by
// construction (right-hand sides derived from a random interior point) and
// checks that every Optimal solution satisfies all constraints and bounds.
func TestPropertySolutionsFeasible(t *testing.T) {
	f := func(seed uint64) bool {
		rng := numeric.NewRNG(seed)
		n := 2 + rng.Intn(12)
		m := 1 + rng.Intn(10)
		p := NewProblem()
		vars := make([]int, n)
		x0 := make([]float64, n)
		for i := range vars {
			lo := math.Floor(rng.Float64()*10 - 5)
			span := 1 + rng.Float64()*10
			hi := lo + span
			if rng.Float64() < 0.2 {
				hi = math.Inf(1)
			}
			vars[i] = p.AddVariable("v", lo, hi)
			if math.IsInf(hi, 1) {
				x0[i] = lo + rng.Float64()*5
			} else {
				x0[i] = lo + rng.Float64()*(hi-lo)
			}
			p.SetObjective(vars[i], rng.Float64()*10-5)
		}
		type rowSpec struct {
			terms []Term
			rel   Relation
			rhs   float64
		}
		var rows []rowSpec
		for r := 0; r < m; r++ {
			var terms []Term
			lhs0 := 0.0
			for i := 0; i < n; i++ {
				if rng.Float64() < 0.4 {
					continue
				}
				c := math.Floor(rng.Float64()*9 - 4)
				if c == 0 {
					continue
				}
				terms = append(terms, Term{Var: vars[i], Coef: c})
				lhs0 += c * x0[i]
			}
			if len(terms) == 0 {
				continue
			}
			rel := []Relation{LE, GE, EQ}[rng.Intn(3)]
			rhs := lhs0
			switch rel {
			case LE:
				rhs += rng.Float64() * 3
			case GE:
				rhs -= rng.Float64() * 3
			}
			p.AddConstraint(terms, rel, rhs)
			rows = append(rows, rowSpec{terms, rel, rhs})
		}
		sol, err := Solve(p, nil)
		if err != nil {
			return false
		}
		if sol.Status == Unbounded {
			return true // possible with infinite upper bounds; fine
		}
		if sol.Status != Optimal {
			// Feasible by construction, so anything else is a solver bug.
			return false
		}
		const tol = 1e-5
		for _, row := range rows {
			lhs := 0.0
			for _, tm := range row.terms {
				lhs += tm.Coef * sol.X[tm.Var]
			}
			switch row.rel {
			case LE:
				if lhs > row.rhs+tol {
					return false
				}
			case GE:
				if lhs < row.rhs-tol {
					return false
				}
			case EQ:
				if math.Abs(lhs-row.rhs) > tol {
					return false
				}
			}
		}
		for _, v := range vars {
			lo, hi := p.Bounds(v)
			if sol.X[v] < lo-tol || sol.X[v] > hi+tol {
				return false
			}
		}
		// The optimum cannot be worse than the known feasible point.
		obj0 := 0.0
		for i, v := range vars {
			obj0 += p.Objective(v) * x0[i]
		}
		return sol.Objective >= obj0-1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
