package models

import "testing"

func TestZooMatchesTable3(t *testing.T) {
	zoo := Zoo()
	want := map[string]int{
		"resnet": 5, "densenet": 4, "resnest": 4, "efficientnet": 8,
		"mobilenet": 4, "yolov5": 5, "bert": 12, "t5": 5, "gpt2": 4,
	}
	if len(zoo) != len(want) {
		t.Fatalf("%d families, want %d", len(zoo), len(want))
	}
	total := 0
	for _, f := range zoo {
		n, ok := want[f.Name]
		if !ok {
			t.Fatalf("unexpected family %q", f.Name)
		}
		if len(f.Variants) != n {
			t.Fatalf("family %q has %d variants, want %d", f.Name, len(f.Variants), n)
		}
		total += n
	}
	if total != 51 {
		t.Fatalf("total variants %d, want 51", total)
	}
}

func TestVariantsSortedByAccuracy(t *testing.T) {
	for _, f := range Zoo() {
		for i := 1; i < len(f.Variants); i++ {
			if f.Variants[i].Accuracy < f.Variants[i-1].Accuracy {
				t.Fatalf("family %q not sorted by accuracy", f.Name)
			}
		}
	}
}

func TestAccuracyNormalization(t *testing.T) {
	// §6.1.2: normalized accuracy of the most accurate variant is 100 and
	// the rest fall in 80–100.
	for _, f := range Zoo() {
		if f.MostAccurate().Accuracy != 100 {
			t.Errorf("family %q most accurate = %v, want 100", f.Name, f.MostAccurate().Accuracy)
		}
		for _, v := range f.Variants {
			if v.Accuracy < 80 || v.Accuracy > 100 {
				t.Errorf("variant %s accuracy %v outside [80,100]", v.ID(), v.Accuracy)
			}
		}
	}
}

func TestBiggerVariantsCostMore(t *testing.T) {
	// Within a family, higher accuracy should not come with lower compute:
	// the accuracy-throughput trade-off must be monotone for the classic
	// CNN families (the BERT family mixes architectures, so ALBERT breaks
	// strict monotonicity there, as in reality).
	for _, f := range Zoo() {
		if f.Name == "bert" {
			continue
		}
		for i := 1; i < len(f.Variants); i++ {
			if f.Variants[i].GFLOPs < f.Variants[i-1].GFLOPs {
				t.Errorf("family %q: %s (acc %v) has fewer GFLOPs than %s",
					f.Name, f.Variants[i].Name, f.Variants[i].Accuracy, f.Variants[i-1].Name)
			}
		}
	}
}

func TestVariantID(t *testing.T) {
	v := Variant{Family: "resnet", Name: "50"}
	if v.ID() != "resnet/50" {
		t.Fatalf("ID %q", v.ID())
	}
}

func TestMemoryFootprints(t *testing.T) {
	zoo := Zoo()
	var t5 Family
	for _, f := range zoo {
		if f.Name == "t5" {
			t5 = f
		}
	}
	big, ok := t5.Variant("11b")
	if !ok {
		t.Fatal("t5/11b missing")
	}
	// 11B params in fp32 is ~44 GB: it must not fit a 16 GB accelerator.
	if big.WeightsMB() < 16384 {
		t.Fatalf("t5/11b weights %v MB, expected > 16 GB", big.WeightsMB())
	}
	small, _ := t5.Variant("small")
	if small.WeightsMB() >= big.WeightsMB() {
		t.Fatal("t5/small must be smaller than t5/11b")
	}
	if big.ActivationMBPerItem() <= 0 {
		t.Fatal("activation memory must be positive")
	}
}

func TestFamilyAccessors(t *testing.T) {
	zoo := Zoo()
	f := zoo[3] // efficientnet
	if f.Name != "efficientnet" {
		t.Fatalf("zoo order changed: %q", f.Name)
	}
	if f.LeastAccurate().Name != "b0" || f.MostAccurate().Name != "b7" {
		t.Fatalf("extremes: %s..%s", f.LeastAccurate().Name, f.MostAccurate().Name)
	}
	if _, ok := f.Variant("b3"); !ok {
		t.Fatal("b3 missing")
	}
	if _, ok := f.Variant("b99"); ok {
		t.Fatal("phantom variant found")
	}
}

func TestRegistry(t *testing.T) {
	r := MustRegistry(Zoo())
	if r.NumFamilies() != 9 {
		t.Fatalf("families %d", r.NumFamilies())
	}
	f, ok := r.Family("yolov5")
	if !ok || f.Task != ObjectDetection {
		t.Fatalf("yolov5 lookup: %v %v", ok, f.Task)
	}
	if _, ok := r.Family("nonexistent"); ok {
		t.Fatal("phantom family")
	}
	v, ok := r.Variant("gpt2/xl")
	if !ok || v.ParamsM != 1558 {
		t.Fatalf("gpt2/xl lookup: %v %+v", ok, v)
	}
	if idx := r.FamilyIndex("resnet"); idx != 0 {
		t.Fatalf("resnet index %d", idx)
	}
	if idx := r.FamilyIndex("nope"); idx != -1 {
		t.Fatalf("missing family index %d", idx)
	}
	if len(r.AllVariants()) != 51 {
		t.Fatalf("AllVariants %d", len(r.AllVariants()))
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	zoo := Zoo()
	if _, err := NewRegistry(append(zoo, zoo[0])); err == nil {
		t.Fatal("expected duplicate error")
	}
}

func TestRegistryRejectsEmptyFamily(t *testing.T) {
	if _, err := NewRegistry([]Family{{Name: "empty"}}); err == nil {
		t.Fatal("expected empty-family error")
	}
}

func TestFamilyNames(t *testing.T) {
	names := FamilyNames(Zoo())
	if len(names) != 9 || names[0] != "resnet" || names[8] != "gpt2" {
		t.Fatalf("names %v", names)
	}
}
