// Package models defines the synthetic model zoo used throughout the
// reproduction: the nine model families and 51 variants of the paper's
// Table 3, each with a normalized accuracy (80–100% within its family, per
// §6.1.2) and a compute/memory footprint from which internal/profiles
// derives latency and throughput.
//
// The paper obtains these models from the ONNX Model Zoo, GluonCV and
// HuggingFace; this repository is offline and stdlib-only, so the zoo is
// synthetic — but only the (accuracy, compute cost, memory) triples ever
// enter the serving system, and those are set from the public
// characteristics of the real models.
package models

import (
	"fmt"
	"sort"
)

// Task is the inference application class of a model family.
type Task string

// Tasks appearing in Table 3.
const (
	Classification    Task = "classification"
	ObjectDetection   Task = "object-detection"
	SentimentAnalysis Task = "sentiment-analysis"
	Translation       Task = "translation"
	QuestionAnswering Task = "question-answering"
)

// Variant is one member of a model family.
type Variant struct {
	Family string
	Name   string
	// Accuracy is normalized within the family: the most accurate variant
	// is 100 and the rest are scaled relative to it (§6.1.2).
	Accuracy float64
	// GFLOPs is the per-query compute cost, the driver of latency.
	GFLOPs float64
	// ParamsM is the parameter count in millions, the driver of weight
	// memory.
	ParamsM float64
}

// ID returns the canonical "family/name" identifier of the variant.
func (v Variant) ID() string { return v.Family + "/" + v.Name }

// WeightsMB returns the model weight footprint (fp32 parameters plus a
// fixed runtime overhead).
func (v Variant) WeightsMB() float64 { return 4*v.ParamsM + 200 }

// ActivationMBPerItem returns the per-batch-item activation memory.
func (v Variant) ActivationMBPerItem() float64 { return 4 + 0.4*v.GFLOPs }

// Family is a set of variants serving one query type (application).
type Family struct {
	Name     string
	Task     Task
	Variants []Variant // sorted by ascending accuracy
}

// MostAccurate returns the highest-accuracy variant.
func (f Family) MostAccurate() Variant { return f.Variants[len(f.Variants)-1] }

// LeastAccurate returns the lowest-accuracy variant.
func (f Family) LeastAccurate() Variant { return f.Variants[0] }

// Variant returns the named variant and whether it exists.
func (f Family) Variant(name string) (Variant, bool) {
	for _, v := range f.Variants {
		if v.Name == name {
			return v, true
		}
	}
	return Variant{}, false
}

func fam(name string, task Task, vs ...Variant) Family {
	for i := range vs {
		vs[i].Family = name
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i].Accuracy < vs[j].Accuracy })
	return Family{Name: name, Task: task, Variants: vs}
}

// Zoo returns the full Table 3 model zoo: nine families, 51 variants.
// Accuracies are family-normalized percentages; GFLOPs and ParamsM follow
// the public characteristics of each architecture.
func Zoo() []Family {
	return []Family{
		fam("resnet", Classification,
			Variant{Name: "18", Accuracy: 89.1, GFLOPs: 1.8, ParamsM: 11.7},
			Variant{Name: "34", Accuracy: 93.6, GFLOPs: 3.6, ParamsM: 21.8},
			Variant{Name: "50", Accuracy: 97.2, GFLOPs: 4.1, ParamsM: 25.6},
			Variant{Name: "101", Accuracy: 98.9, GFLOPs: 7.8, ParamsM: 44.5},
			Variant{Name: "152", Accuracy: 100, GFLOPs: 11.5, ParamsM: 60.2},
		),
		fam("densenet", Classification,
			Variant{Name: "121", Accuracy: 96.5, GFLOPs: 2.9, ParamsM: 8.0},
			Variant{Name: "169", Accuracy: 98.1, GFLOPs: 3.4, ParamsM: 14.1},
			Variant{Name: "201", Accuracy: 99.7, GFLOPs: 4.3, ParamsM: 20.0},
			Variant{Name: "161", Accuracy: 100, GFLOPs: 7.8, ParamsM: 28.7},
		),
		fam("resnest", Classification,
			Variant{Name: "14", Accuracy: 89.3, GFLOPs: 2.8, ParamsM: 10.6},
			Variant{Name: "26", Accuracy: 92.9, GFLOPs: 3.6, ParamsM: 17.1},
			Variant{Name: "50", Accuracy: 96.0, GFLOPs: 5.4, ParamsM: 27.5},
			Variant{Name: "269", Accuracy: 100, GFLOPs: 46.0, ParamsM: 110.9},
		),
		fam("efficientnet", Classification,
			Variant{Name: "b0", Accuracy: 91.5, GFLOPs: 0.39, ParamsM: 5.3},
			Variant{Name: "b1", Accuracy: 93.8, GFLOPs: 0.70, ParamsM: 7.8},
			Variant{Name: "b2", Accuracy: 95.0, GFLOPs: 1.0, ParamsM: 9.2},
			Variant{Name: "b3", Accuracy: 96.8, GFLOPs: 1.8, ParamsM: 12.0},
			Variant{Name: "b4", Accuracy: 98.3, GFLOPs: 4.2, ParamsM: 19.0},
			Variant{Name: "b5", Accuracy: 99.2, GFLOPs: 9.9, ParamsM: 30.0},
			Variant{Name: "b6", Accuracy: 99.6, GFLOPs: 19.0, ParamsM: 43.0},
			Variant{Name: "b7", Accuracy: 100, GFLOPs: 37.0, ParamsM: 66.0},
		),
		fam("mobilenet", Classification,
			Variant{Name: "0.25", Accuracy: 80.2, GFLOPs: 0.041, ParamsM: 0.5},
			Variant{Name: "0.5", Accuracy: 89.3, GFLOPs: 0.15, ParamsM: 1.3},
			Variant{Name: "0.75", Accuracy: 96.5, GFLOPs: 0.32, ParamsM: 2.6},
			Variant{Name: "1.0", Accuracy: 100, GFLOPs: 0.57, ParamsM: 4.2},
		),
		fam("yolov5", ObjectDetection,
			Variant{Name: "n", Accuracy: 80.5, GFLOPs: 4.5, ParamsM: 1.9},
			Variant{Name: "s", Accuracy: 87.6, GFLOPs: 16.5, ParamsM: 7.2},
			Variant{Name: "m", Accuracy: 93.9, GFLOPs: 49.0, ParamsM: 21.2},
			Variant{Name: "l", Accuracy: 97.5, GFLOPs: 109.0, ParamsM: 46.5},
			Variant{Name: "x", Accuracy: 100, GFLOPs: 205.0, ParamsM: 86.7},
		),
		fam("bert", SentimentAnalysis,
			Variant{Name: "bert-tiny", Accuracy: 86.3, GFLOPs: 0.6, ParamsM: 4.4},
			Variant{Name: "bert-mini", Accuracy: 89.1, GFLOPs: 1.2, ParamsM: 11.3},
			Variant{Name: "bert-small", Accuracy: 93.0, GFLOPs: 3.7, ParamsM: 29.1},
			Variant{Name: "albert-base", Accuracy: 93.7, GFLOPs: 22.5, ParamsM: 12.0},
			Variant{Name: "bert-medium", Accuracy: 94.5, GFLOPs: 7.4, ParamsM: 41.7},
			Variant{Name: "albert-large", Accuracy: 95.1, GFLOPs: 78.0, ParamsM: 18.0},
			Variant{Name: "bert-base", Accuracy: 96.2, GFLOPs: 22.5, ParamsM: 110.0},
			Variant{Name: "albert-xlarge", Accuracy: 95.9, GFLOPs: 290.0, ParamsM: 60.0},
			Variant{Name: "bert-large", Accuracy: 97.0, GFLOPs: 80.0, ParamsM: 340.0},
			Variant{Name: "albert-xxlarge", Accuracy: 98.3, GFLOPs: 450.0, ParamsM: 235.0},
			Variant{Name: "roberta-base", Accuracy: 98.3, GFLOPs: 22.5, ParamsM: 125.0},
			Variant{Name: "roberta-large", Accuracy: 100, GFLOPs: 80.0, ParamsM: 355.0},
		),
		fam("t5", Translation,
			Variant{Name: "small", Accuracy: 87.9, GFLOPs: 7.0, ParamsM: 60.0},
			Variant{Name: "base", Accuracy: 92.6, GFLOPs: 25.0, ParamsM: 220.0},
			Variant{Name: "large", Accuracy: 95.8, GFLOPs: 85.0, ParamsM: 770.0},
			Variant{Name: "3b", Accuracy: 98.2, GFLOPs: 450.0, ParamsM: 3000.0},
			Variant{Name: "11b", Accuracy: 100, GFLOPs: 1600.0, ParamsM: 11000.0},
		),
		fam("gpt2", QuestionAnswering,
			Variant{Name: "base", Accuracy: 84.8, GFLOPs: 30.0, ParamsM: 124.0},
			Variant{Name: "medium", Accuracy: 91.4, GFLOPs: 90.0, ParamsM: 355.0},
			Variant{Name: "large", Accuracy: 96.6, GFLOPs: 180.0, ParamsM: 774.0},
			Variant{Name: "xl", Accuracy: 100, GFLOPs: 350.0, ParamsM: 1558.0},
		),
	}
}

// FamilyNames returns the family names in Zoo order.
func FamilyNames(zoo []Family) []string {
	out := make([]string, len(zoo))
	for i, f := range zoo {
		out[i] = f.Name
	}
	return out
}

// Registry resolves families and variants by name. It plays the role of the
// controller's model registry (§3): applications register a family and the
// system chooses among its variants.
type Registry struct {
	families []Family
	byName   map[string]int
	variants map[string]Variant
}

// NewRegistry builds a registry over the given families. Duplicate family
// names are rejected.
func NewRegistry(families []Family) (*Registry, error) {
	r := &Registry{
		byName:   make(map[string]int, len(families)),
		variants: make(map[string]Variant),
	}
	for _, f := range families {
		if len(f.Variants) == 0 {
			return nil, fmt.Errorf("models: family %q has no variants", f.Name)
		}
		if _, dup := r.byName[f.Name]; dup {
			return nil, fmt.Errorf("models: duplicate family %q", f.Name)
		}
		r.byName[f.Name] = len(r.families)
		r.families = append(r.families, f)
		for _, v := range f.Variants {
			r.variants[v.ID()] = v
		}
	}
	return r, nil
}

// MustRegistry is NewRegistry that panics on error, for static zoos.
func MustRegistry(families []Family) *Registry {
	r, err := NewRegistry(families)
	if err != nil {
		panic(err)
	}
	return r
}

// Families returns the registered families in registration order.
func (r *Registry) Families() []Family { return r.families }

// NumFamilies returns the number of registered families.
func (r *Registry) NumFamilies() int { return len(r.families) }

// Family returns a family by name.
func (r *Registry) Family(name string) (Family, bool) {
	i, ok := r.byName[name]
	if !ok {
		return Family{}, false
	}
	return r.families[i], true
}

// FamilyIndex returns the registration index of a family name, or -1.
func (r *Registry) FamilyIndex(name string) int {
	i, ok := r.byName[name]
	if !ok {
		return -1
	}
	return i
}

// Variant resolves a "family/name" identifier.
func (r *Registry) Variant(id string) (Variant, bool) {
	v, ok := r.variants[id]
	return v, ok
}

// AllVariants returns every registered variant in deterministic order
// (family registration order, then ascending accuracy).
func (r *Registry) AllVariants() []Variant {
	var out []Variant
	for _, f := range r.families {
		out = append(out, f.Variants...)
	}
	return out
}
