package overload

import (
	"testing"
	"time"

	"proteus/internal/telemetry"
)

const (
	ms  = time.Millisecond
	sec = time.Second
)

// twoTierPlan hosts family 0 on two accuracy tiers (devices 0,1 high; device
// 2 low) and family 1 on a single tier (device 3). Device 4 is idle.
func twoTierPlan() []DeviceProfile {
	return []DeviceProfile{
		{Family: 0, Accuracy: 80, MaxBatch: 8, Lat1: 10 * ms, LatMax: 45 * ms, SLO: 100 * ms},
		{Family: 0, Accuracy: 80, MaxBatch: 8, Lat1: 10 * ms, LatMax: 45 * ms, SLO: 100 * ms},
		{Family: 0, Accuracy: 65, MaxBatch: 16, Lat1: 4 * ms, LatMax: 34 * ms, SLO: 100 * ms},
		{Family: 1, Accuracy: 90, MaxBatch: 4, Lat1: 20 * ms, LatMax: 50 * ms, SLO: 200 * ms},
		{Family: -1},
	}
}

func newTestGuard(t *testing.T, cfg Config) *Guard {
	t.Helper()
	cfg.Enabled = true
	g := New(cfg, 2, 5)
	if g == nil {
		t.Fatal("New returned nil for an enabled config")
	}
	g.SetPlan(0, twoTierPlan())
	return g
}

func TestNewDisabledReturnsNil(t *testing.T) {
	if g := New(Config{}, 2, 5); g != nil {
		t.Fatal("New should return nil when Enabled is false")
	}
}

func TestNilGuardIsNoOp(t *testing.T) {
	var g *Guard
	g.Instrument(telemetry.NewRegistry())
	g.SetPlan(0, twoTierPlan())
	g.NoteDepth(0, 100)
	if !g.Admit(0, 0, 50*ms) {
		t.Error("nil guard must admit everything")
	}
	if g.Banned(0, 0) {
		t.Error("nil guard must ban nothing")
	}
	if ch := g.OnBurn(0, 0, true); ch != nil {
		t.Errorf("nil guard OnBurn returned %v", ch)
	}
	if ch := g.Tick(sec); ch != nil {
		t.Errorf("nil guard Tick returned %v", ch)
	}
	if sat, p := g.DeviceSignal(0); sat != 0 || p {
		t.Errorf("nil guard DeviceSignal = %d,%v", sat, p)
	}
	if st := g.State(); st.Enabled {
		t.Error("nil guard State reports Enabled")
	}
	if g.Level(0) != 0 {
		t.Error("nil guard Level non-zero")
	}
	if g.Config() != (Config{}) {
		t.Error("nil guard Config non-zero")
	}
}

func TestConfigDefaults(t *testing.T) {
	g := New(Config{Enabled: true}, 1, 1)
	cfg := g.Config()
	if cfg.HighWater != 64 || cfg.LowWater != 32 {
		t.Errorf("water marks = %d/%d, want 64/32", cfg.HighWater, cfg.LowWater)
	}
	if cfg.RestoreHold != 5*sec || cfg.EscalateAfter != 10*sec || cfg.RedegradeCooldown != 10*sec {
		t.Errorf("hysteresis defaults = %v/%v/%v", cfg.RestoreHold, cfg.EscalateAfter, cfg.RedegradeCooldown)
	}
	// LowWater >= HighWater is invalid and snaps back to half.
	g = New(Config{Enabled: true, HighWater: 10, LowWater: 12}, 1, 1)
	if cfg := g.Config(); cfg.LowWater != 5 {
		t.Errorf("invalid LowWater resolved to %d, want 5", cfg.LowWater)
	}
}

func TestBackpressureHysteresis(t *testing.T) {
	g := newTestGuard(t, Config{HighWater: 10, LowWater: 4})
	reg := telemetry.NewRegistry()
	g.Instrument(reg)
	if g.Banned(0, 0) {
		t.Fatal("fresh device banned")
	}
	g.NoteDepth(0, 9)
	if g.Banned(0, 0) {
		t.Fatal("banned below high water")
	}
	g.NoteDepth(0, 10)
	if !g.Banned(0, 0) {
		t.Fatal("not banned at high water")
	}
	// Hysteresis: stays pressured between low and high water.
	g.NoteDepth(0, 7)
	if !g.Banned(0, 0) {
		t.Fatal("released above low water")
	}
	g.NoteDepth(0, 4)
	if g.Banned(0, 0) {
		t.Fatal("still banned at low water")
	}
	// Only the engagement edge counts.
	g.NoteDepth(0, 10)
	if got := reg.Counter("overload_backpressure_total").Value(); got != 2 {
		t.Errorf("backpressure count = %d, want 2", got)
	}
}

func TestBackpressureDisabled(t *testing.T) {
	g := newTestGuard(t, Config{DisableBackpressure: true, HighWater: 10})
	g.NoteDepth(0, 1000)
	if g.Banned(0, 0) {
		t.Fatal("DisableBackpressure still banned the device")
	}
}

func TestAdmissionBound(t *testing.T) {
	// Device 0: MaxBatch 8, Lat1 10ms, LatMax 45ms → marginal 5ms.
	g := newTestGuard(t, Config{HighWater: 1 << 20})
	cases := []struct {
		depth    int
		deadline time.Duration
		admit    bool
	}{
		// Empty queue: bound is Lat1 = 10ms.
		{0, 10 * ms, true},
		{0, 9 * ms, false},
		// 3 ahead share the batch: 10 + 3*5 = 25ms.
		{3, 25 * ms, true},
		{3, 24 * ms, false},
		// 8 ahead: one full batch (45ms) then the query alone: 55ms.
		{8, 55 * ms, true},
		{8, 54 * ms, false},
		// 19 ahead: 2*45 + 10 + 3*5 = 115ms.
		{19, 115 * ms, true},
		{19, 114 * ms, false},
	}
	for _, tc := range cases {
		g.NoteDepth(0, tc.depth)
		if got := g.Admit(0, 0, tc.deadline); got != tc.admit {
			t.Errorf("depth %d deadline %v: admit = %v, want %v", tc.depth, tc.deadline, got, tc.admit)
		}
	}
	// Admission is relative to now.
	g.NoteDepth(0, 0)
	if g.Admit(100*ms, 0, 105*ms) {
		t.Error("admitted a query whose remaining slack is below Lat1")
	}
}

func TestAdmissionDisabled(t *testing.T) {
	g := newTestGuard(t, Config{DisableAdmission: true})
	g.NoteDepth(0, 1000)
	if !g.Admit(0, 0, 1*ms) {
		t.Fatal("DisableAdmission still rejected a doomed query")
	}
}

func TestDegradationLadder(t *testing.T) {
	g := newTestGuard(t, Config{RestoreHold: 5 * sec, EscalateAfter: 10 * sec, RedegradeCooldown: 10 * sec})
	reg := telemetry.NewRegistry()
	g.Instrument(reg)

	// Burn start degrades immediately, masking the high-accuracy tier.
	ch := g.OnBurn(1*sec, 0, true)
	if len(ch) != 1 || ch[0].Kind != Degrade || ch[0].Level != 1 || ch[0].Family != 0 {
		t.Fatalf("burn start changes = %+v", ch)
	}
	if !g.Banned(0, 0) || !g.Banned(0, 1) {
		t.Fatal("tier-0 devices not masked at level 1")
	}
	if g.Banned(0, 2) {
		t.Fatal("low tier masked at level 1")
	}
	if g.Level(0) != 1 {
		t.Fatalf("Level = %d, want 1", g.Level(0))
	}

	// The two-tier ladder cannot escalate past the last tier.
	if ch := g.Tick(30 * sec); len(ch) != 0 {
		t.Fatalf("escalated past the last tier: %+v", ch)
	}

	// Burn end starts the restore hold; restore only after it elapses.
	g.OnBurn(31*sec, 0, false)
	if ch := g.Tick(35 * sec); len(ch) != 0 {
		t.Fatalf("restored before the hold elapsed: %+v", ch)
	}
	ch = g.Tick(36 * sec)
	if len(ch) != 1 || ch[0].Kind != Restore || ch[0].Level != 0 {
		t.Fatalf("restore changes = %+v", ch)
	}
	if g.Banned(0, 0) || g.Level(0) != 0 {
		t.Fatal("mask not lifted after restore")
	}

	// Redegrade cooldown: a burn right after the restore is deferred...
	if ch := g.OnBurn(40*sec, 0, true); len(ch) != 0 {
		t.Fatalf("degraded inside the redegrade cooldown: %+v", ch)
	}
	if ch := g.Tick(41 * sec); len(ch) != 0 {
		t.Fatalf("Tick degraded inside the cooldown: %+v", ch)
	}
	// ...and picked up by Tick once the cooldown elapses.
	ch = g.Tick(46 * sec)
	if len(ch) != 1 || ch[0].Kind != Degrade || ch[0].Reason != "slo_burn_pending" {
		t.Fatalf("deferred degrade changes = %+v", ch)
	}

	if got := reg.Counter("overload_degraded_total").Value(); got != 2 {
		t.Errorf("degraded count = %d, want 2", got)
	}
	if got := reg.Counter("overload_restored_total").Value(); got != 1 {
		t.Errorf("restored count = %d, want 1", got)
	}
}

func TestEscalation(t *testing.T) {
	g := New(Config{Enabled: true, EscalateAfter: 10 * sec}, 1, 3)
	// Three distinct accuracy tiers.
	g.SetPlan(0, []DeviceProfile{
		{Family: 0, Accuracy: 90, MaxBatch: 4, Lat1: 10 * ms, LatMax: 40 * ms, SLO: 100 * ms},
		{Family: 0, Accuracy: 80, MaxBatch: 8, Lat1: 8 * ms, LatMax: 32 * ms, SLO: 100 * ms},
		{Family: 0, Accuracy: 70, MaxBatch: 16, Lat1: 4 * ms, LatMax: 24 * ms, SLO: 100 * ms},
	})
	g.OnBurn(0, 0, true)
	if g.Level(0) != 1 {
		t.Fatalf("Level = %d after burn, want 1", g.Level(0))
	}
	if ch := g.Tick(9 * sec); len(ch) != 0 {
		t.Fatalf("escalated before EscalateAfter: %+v", ch)
	}
	ch := g.Tick(10 * sec)
	if len(ch) != 1 || ch[0].Kind != Escalate || ch[0].Level != 2 {
		t.Fatalf("escalate changes = %+v", ch)
	}
	if !g.Banned(0, 0) || !g.Banned(0, 1) || g.Banned(0, 2) {
		t.Fatal("level-2 mask wrong")
	}
	// Never masks the last tier.
	if ch := g.Tick(60 * sec); len(ch) != 0 {
		t.Fatalf("masked the last tier: %+v", ch)
	}
}

func TestSingleTierFamilyNeverDegrades(t *testing.T) {
	g := newTestGuard(t, Config{})
	if ch := g.OnBurn(0, 1, true); len(ch) != 0 {
		t.Fatalf("single-tier family degraded: %+v", ch)
	}
	if g.Banned(1, 3) {
		t.Fatal("single-tier family's device banned")
	}
}

func TestDegradationDisabled(t *testing.T) {
	g := newTestGuard(t, Config{DisableDegradation: true})
	if ch := g.OnBurn(0, 0, true); len(ch) != 0 {
		t.Fatalf("DisableDegradation still degraded: %+v", ch)
	}
	if ch := g.Tick(30 * sec); len(ch) != 0 {
		t.Fatalf("DisableDegradation Tick degraded: %+v", ch)
	}
}

func TestSetPlanPreservesEpisode(t *testing.T) {
	g := newTestGuard(t, Config{})
	g.OnBurn(0, 0, true)
	if g.Level(0) != 1 {
		t.Fatal("setup: no episode")
	}
	// Re-applying a plan keeps the episode (the burn usually persists).
	g.SetPlan(10*sec, twoTierPlan())
	if g.Level(0) != 1 {
		t.Fatal("plan change dropped the episode")
	}
	// A plan that collapses the family to one tier clamps the level to 0.
	one := twoTierPlan()
	one[2].Family = -1
	g.SetPlan(20*sec, one)
	if g.Level(0) != 0 {
		t.Fatalf("level not clamped to the new ladder: %d", g.Level(0))
	}
}

func TestDeviceSignalAndState(t *testing.T) {
	g := newTestGuard(t, Config{HighWater: 16, LowWater: 8})
	// Depth 8 on device 0: bound = 45ms + 10ms = wait, 8/8=1 full batch →
	// 45 + 10 = 55ms over a 100ms SLO → 550 milli.
	g.NoteDepth(0, 8)
	sat, pressured := g.DeviceSignal(0)
	if sat != 550 || pressured {
		t.Errorf("DeviceSignal = %d,%v, want 550,false", sat, pressured)
	}
	// Saturation caps at 10000 (10x the SLO).
	g.NoteDepth(0, 10000)
	if sat, _ := g.DeviceSignal(0); sat != 10000 {
		t.Errorf("saturation cap = %d, want 10000", sat)
	}
	// Idle device signals zero.
	if sat, _ := g.DeviceSignal(4); sat != 0 {
		t.Errorf("idle device sat = %d", sat)
	}

	g.OnBurn(1*sec, 0, true)
	st := g.State()
	if !st.Enabled || len(st.Devices) != 5 {
		t.Fatalf("State = %+v", st)
	}
	if !st.Devices[0].Pressured || st.Devices[0].QueueDepth != 10000 {
		t.Errorf("device 0 state = %+v", st.Devices[0])
	}
	if len(st.Episodes) != 1 || st.Episodes[0].Family != 0 || st.Episodes[0].Level != 1 ||
		st.Episodes[0].Since != 1*sec || st.Episodes[0].Reason != "slo_burn" {
		t.Errorf("episodes = %+v", st.Episodes)
	}
}

func TestAdmissionCounters(t *testing.T) {
	g := newTestGuard(t, Config{HighWater: 1 << 20})
	reg := telemetry.NewRegistry()
	g.Instrument(reg)
	g.NoteDepth(0, 0)
	g.Admit(0, 0, 100*ms) // admitted
	g.Admit(0, 0, 1*ms)   // rejected
	if got := reg.Counter("overload_admitted_total").Value(); got != 1 {
		t.Errorf("admitted = %d, want 1", got)
	}
	if got := reg.Counter("overload_rejected_total").Value(); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
}
